(* cgcm — command-line driver for the CGCM reproduction.

     cgcm run prog.cgc [--mode seq|unopt|opt|ie|unified] [--trace]
     cgcm ir prog.cgc [--level unmanaged|managed|optimized]
     cgcm ast prog.cgc [--no-doall]
     cgcm report prog.cgc        compare all execution modes
*)

open Cmdliner
module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Trace = Cgcm_gpusim.Trace
module Faults = Cgcm_gpusim.Faults
module Errors = Cgcm_support.Errors
module Runtime = Cgcm_runtime.Runtime
module Mem_backend = Cgcm_runtime.Mem_backend
module Paged = Cgcm_runtime.Paged
module Bytesize = Cgcm_support.Bytesize
module Pass = Cgcm_transform.Pass
module Manager = Pass.Manager

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Distinct exit codes per failure class, with the rendered diagnostic on
   stderr instead of an OCaml backtrace. The code/message mapping lives in
   Cgcm_core.Diagnostics, shared with the golden diagnostics tests. *)
let guarded f =
  try f ()
  with e -> (
    match Cgcm_core.Diagnostics.classify e with
    | Some (code, msg) ->
      Fmt.epr "%s@." msg;
      exit code
    | None -> raise e)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"CGC source file")

let mode_conv =
  Arg.enum
    [
      ("seq", Pipeline.Sequential);
      ("unopt", Pipeline.Cgcm_unoptimized);
      ("opt", Pipeline.Cgcm_optimized);
      ("ie", Pipeline.Inspector_executor_exec);
      ("unified", Pipeline.Unified_oracle Pipeline.Optimized);
    ]

let mode_arg =
  Arg.(
    value
    & opt mode_conv Pipeline.Cgcm_optimized
    & info [ "mode"; "m" ]
        ~doc:
          "Execution mode: seq, unopt, opt, ie, unified. Note that \
           $(b,unified) is the paper's unified address-space $(i,oracle) — \
           one flat memory, zero-cost intrinsics, used for differential \
           testing — not a managed-memory model; for on-demand paging with \
           migration costs, use $(b,--mem-backend paged) with a split-memory \
           mode (unopt, opt).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Render the execution schedule")

let engine_arg =
  Arg.(
    value
    & opt (some (enum [ ("closures", Interp.Closures);
                        ("tree", Interp.Tree_walk);
                        ("parallel", Interp.Parallel) ])) None
    & info [ "engine" ]
        ~doc:
          "Interpreter engine: closures (default), tree, or parallel (the \
           closure engine sharding kernel launches across a domain pool). \
           $(b,--jobs) implies parallel.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for the parallel engine; selects $(b,--engine parallel) \
           unless an engine is given explicitly. 0 picks an automatic count \
           (the CGCM_JOBS environment variable when set, otherwise the \
           machine's recommended domain count); 1 is the exact sequential \
           closure path.")

(* --jobs without --engine means the parallel engine; CGCM_JOBS alone
   only sizes the pool once that engine is selected. *)
let resolve_engine engine jobs =
  let engine =
    match (engine, jobs) with
    | Some e, _ -> e
    | None, Some _ -> Interp.Parallel
    | None, None -> Interp.default_config.Interp.engine
  in
  (engine, Option.value jobs ~default:0)

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ] ~doc:"Print per-function dynamic instruction counts")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SEED[:SPEC]"
        ~doc:
          "Arm a deterministic driver fault plan. SPEC is comma-separated \
           clauses op@N (fail the N-th call) or op%P (fail with probability \
           P), op one of alloc|htod|dtoh|launch; without SPEC every \
           operation fails with probability 0.05.")

(* Byte counts accept KiB/MiB/GiB suffixes; the parse error message is
   pinned by a golden test (Bytesize.error_message). *)
let bytes_conv =
  let parse s =
    match Bytesize.parse s with Ok n -> Ok n | Error e -> Error (`Msg e)
  in
  Arg.conv ~docv:"BYTES"
    (parse, fun ppf n -> Format.pp_print_string ppf (Bytesize.to_string n))

let device_mem_arg =
  Arg.(
    value
    & opt (some bytes_conv) None
    & info [ "device-mem" ] ~docv:"BYTES"
        ~doc:
          "Cap the simulated device memory (default: unbounded). Accepts \
           KiB/MiB/GiB suffixes, e.g. 64KiB.")

let backend_arg =
  Arg.(
    value
    & opt (enum Mem_backend.all) Mem_backend.Explicit
    & info [ "mem-backend" ] ~docv:"BACKEND"
        ~doc:
          "Memory backend for the split-memory modes: $(b,explicit) (the \
           CGCM-managed explicit-copy model, the default) or $(b,paged) (a \
           single shared address space charging touch-driven page-granular \
           migration; cgcm.* intrinsics become no-ops and all communication \
           cost comes from page faults).")

let page_bytes_arg =
  Arg.(
    value
    & opt (some bytes_conv) None
    & info [ "page-bytes" ] ~docv:"BYTES"
        ~doc:
          "Migration granularity for $(b,--mem-backend paged) (default: \
           4KiB). Accepts KiB/MiB/GiB suffixes.")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Arm the shadow-memory coherence sanitizer: every allocation unit \
           is mirrored with an independent byte-version map and stale reads, \
           lost updates, premature releases and double frees abort with a \
           diagnostic (exit code 8). Split-memory modes only.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"MUTATION"
        ~doc:
          "Break the compiled program on purpose before running it: \
           drop-map@N, drop-unmap@N or drop-release@N deletes the N-th \
           (0-based) inserted management call. Combine with $(b,--sanitize) \
           to watch the sanitizer name the bug.")

let parse_chaos spec =
  let fail () =
    failwith
      (Fmt.str
         "bad --chaos %S (expected drop-map@N, drop-unmap@N or drop-release@N)"
         spec)
  in
  match String.index_opt spec '@' with
  | None -> fail ()
  | Some i ->
    let which = String.sub spec 0 i in
    let n =
      match
        int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
      with
      | Some n when n >= 0 -> n
      | _ -> fail ()
    in
    let intrinsic =
      match which with
      | "drop-map" -> Cgcm_ir.Ir.Intrinsic.map
      | "drop-unmap" -> Cgcm_ir.Ir.Intrinsic.unmap
      | "drop-release" -> Cgcm_ir.Ir.Intrinsic.release
      | _ -> fail ()
    in
    (intrinsic, n)

let parse_faults = Option.map Faults.parse

(* --- pass-pipeline surfaces (shared by run and ir) ------------------- *)

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"SPEC"
        ~doc:
          "Run a custom pass plan instead of the one the level/mode \
           implies: comma-separated pass names with $(b,fixpoint(...)) \
           sub-plans, e.g. \
           $(b,simplify,comm-mgmt,fixpoint(map-promotion)). The named \
           plans unmanaged, managed and optimized are accepted as items.")

let dump_ir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-ir" ] ~docv:"after:PASS"
        ~doc:
          "Print the IR after every execution of PASS \
           ($(b,after:all) dumps after every pass execution)")

let pass_stats_arg =
  Arg.(
    value
    & opt
        ~vopt:(Some `Table)
        (some (enum [ ("table", `Table); ("json", `Json) ]))
        None
    & info [ "pass-stats" ] ~docv:"FORMAT"
        ~doc:
          "Print per-pass statistics (wall time; instruction, launch and \
           run-time-call deltas) and the analysis manager's cache \
           hit/miss counters. FORMAT is table (default) or json.")

let analysis_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("cached", Manager.Cached);
             ("uncached", Manager.Uncached);
             ("paranoid", Manager.Paranoid);
           ])
        Manager.Cached
    & info [ "analysis" ] ~docv:"MODE"
        ~doc:
          "Analysis manager discipline: cached (default), uncached \
           (recompute on every query — the restart-from-scratch \
           baseline), or paranoid (recompute anyway and cross-check \
           every cached result, aborting on staleness)")

let parse_passes = function
  | None -> None
  | Some spec -> (
    match Pass.parse_plan spec with
    | Ok plan -> Some plan
    | Error e -> failwith (Fmt.str "bad --passes: %s" e))

let parse_dump_ir = function
  | None -> None
  | Some spec ->
    let n = String.length spec in
    if n > 6 && String.sub spec 0 6 = "after:" then begin
      let name = String.sub spec 6 (n - 6) in
      if name <> "all" && Pass.find name = None then
        failwith
          (Fmt.str "bad --dump-ir: unknown pass %S (available: %s)" name
             (String.concat ", " (List.map (fun p -> p.Pass.name) Pass.all)));
      Some name
    end
    else
      failwith
        (Fmt.str "bad --dump-ir %S (expected after:PASS or after:all)" spec)

let dump_hooks = function
  | None -> Pass.default_hooks
  | Some sel ->
    {
      Pass.default_hooks with
      Pass.after_pass =
        (fun name m ->
          if sel = "all" || sel = name then begin
            Fmt.pr ";; === IR after %s ===@." name;
            print_string (Cgcm_ir.Printer.modul_to_string m)
          end);
    }

let print_pass_stats format (c : Pipeline.compiled) =
  match format with
  | `Table ->
    Fmt.pr "--- pass statistics:@.";
    Fmt.pr "    %-18s %9s %8s %7s %8s %8s@." "pass" "ms" "changed" "dinstr"
      "dlaunch" "drtcall";
    List.iter
      (fun (s : Pass.pass_stat) ->
        Fmt.pr "    %-18s %9.2f %8s %+7d %+8d %+8d@." s.Pass.ps_pass
          s.Pass.ps_wall_ms
          (if s.Pass.ps_changed then "yes" else "-")
          (s.Pass.ps_instrs_after - s.Pass.ps_instrs_before)
          (s.Pass.ps_launches_after - s.Pass.ps_launches_before)
          (s.Pass.ps_rtcalls_after - s.Pass.ps_rtcalls_before))
      c.Pipeline.pass_stats;
    Fmt.pr "--- analysis cache:@.";
    Fmt.pr "    %-18s %9s %8s@." "analysis" "hits" "misses";
    List.iter
      (fun (name, h, m) ->
        if h + m > 0 then Fmt.pr "    %-18s %9d %8d@." name h m)
      c.Pipeline.cache_stats
  | `Json ->
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n  \"passes\": [";
    List.iteri
      (fun i (s : Pass.pass_stat) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "\n    {\"pass\": %S, \"wall_ms\": %.3f, \"changed\": %b, \
              \"instrs\": [%d, %d], \"launches\": [%d, %d], \
              \"runtime_calls\": [%d, %d]%s}"
             s.Pass.ps_pass s.Pass.ps_wall_ms s.Pass.ps_changed
             s.Pass.ps_instrs_before s.Pass.ps_instrs_after
             s.Pass.ps_launches_before s.Pass.ps_launches_after
             s.Pass.ps_rtcalls_before s.Pass.ps_rtcalls_after
             (match s.Pass.ps_ir_changed with
             | None -> ""
             | Some ir -> Printf.sprintf ", \"ir_changed\": %b" ir)))
      c.Pipeline.pass_stats;
    Buffer.add_string b "\n  ],\n  \"analysis_cache\": [";
    List.iteri
      (fun i (name, h, m) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\n    {\"analysis\": %S, \"hits\": %d, \"misses\": %d}"
             name h m))
      c.Pipeline.cache_stats;
    Buffer.add_string b "\n  ]\n}\n";
    print_string (Buffer.contents b)

let print_result (r : Interp.result) ~trace =
  print_string r.Interp.output;
  Fmt.pr "--- exit code   : %Ld@." r.Interp.exit_code;
  Fmt.pr "--- wall cycles : %.0f@." r.Interp.wall;
  Fmt.pr "--- cpu compute : %.0f@." r.Interp.cpu_compute;
  Fmt.pr "--- gpu kernels : %.0f (%d launches, %d insts)@." r.Interp.gpu
    r.Interp.dev_stats.Cgcm_gpusim.Device.launches r.Interp.kernel_insts;
  Fmt.pr "--- comm        : %.0f (HtoD %d B in %d, DtoH %d B in %d)@."
    r.Interp.comm r.Interp.dev_stats.Cgcm_gpusim.Device.htod_bytes
    r.Interp.dev_stats.Cgcm_gpusim.Device.htod_count
    r.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_bytes
    r.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count;
  (match r.Interp.page_stats with
  | Some ps ->
    Fmt.pr
      "--- page faults : %d to-dev (%d B), %d to-host (%d B), %d pages \
       touched@."
      ps.Paged.faults_to_dev ps.Paged.bytes_to_dev ps.Paged.faults_to_host
      ps.Paged.bytes_to_host ps.Paged.touched_pages
  | None -> ());
  let rs = r.Interp.rt_stats in
  if
    rs.Runtime.evictions > 0 || rs.Runtime.retries > 0
    || rs.Runtime.cpu_fallbacks > 0
  then
    Fmt.pr "--- recovery    : %d evictions, %d retries, %d cpu fallbacks@."
      rs.Runtime.evictions rs.Runtime.retries rs.Runtime.cpu_fallbacks;
  let leaks = r.Interp.leaks in
  if leaks.Runtime.resident_nonglobal > 0 || leaks.Runtime.leaked_dev_blocks > 0
  then
    Fmt.pr "--- LEAKS       : %d resident units, %d device blocks (%d B)@."
      leaks.Runtime.resident_nonglobal leaks.Runtime.leaked_dev_blocks
      leaks.Runtime.leaked_dev_bytes;
  (match r.Interp.san_report with
  | Some rep ->
    Fmt.pr "--- sanitizer   : %s@." (Cgcm_sanitizer.Sanitizer.render_report rep)
  | None -> ());
  if trace then print_string (Trace.render r.Interp.trace)

let run_cmd =
  let doc = "Compile and run a CGC program under a given execution mode" in
  let f file mode trace profile faults device_mem backend page_bytes sanitize
      chaos engine jobs passes dump_ir pass_stats analysis =
    guarded @@ fun () ->
    let src = read_file file in
    let faults = parse_faults faults in
    let engine, jobs = resolve_engine engine jobs in
    let plan = parse_passes passes in
    let dump = parse_dump_ir dump_ir in
    let stats_out = ref None in
    let r =
      if
        profile || chaos <> None || plan <> None || dump <> None
        || pass_stats <> None
        || analysis <> Manager.Cached
      then begin
        (* re-run through the pipeline by hand: profiling needs a custom
           config, --chaos must mutate the module between compile and
           run, and the pass-pipeline surfaces need compile-time knobs
           Pipeline.run does not expose *)
        let level, imode =
          match mode with
          | Pipeline.Sequential -> (Pipeline.Unmanaged, Interp.Unified)
          | Pipeline.Cgcm_unoptimized -> (Pipeline.Managed, Interp.Split)
          | Pipeline.Cgcm_optimized -> (Pipeline.Optimized, Interp.Split)
          | Pipeline.Inspector_executor_exec ->
            (Pipeline.Unmanaged, Interp.Inspector_executor)
          | Pipeline.Unified_oracle l -> (l, Interp.Unified)
        in
        let parallel =
          match mode with
          | Pipeline.Sequential -> Cgcm_frontend.Doall.Off
          | _ -> Cgcm_frontend.Doall.Auto
        in
        let cost =
          match device_mem with
          | Some bytes ->
            { Cgcm_gpusim.Cost_model.default with device_mem_bytes = bytes }
          | None -> Cgcm_gpusim.Cost_model.default
        in
        let cost =
          match page_bytes with
          | Some bytes -> { cost with Cgcm_gpusim.Cost_model.page_bytes = bytes }
          | None -> cost
        in
        let c =
          Pipeline.compile ~parallel ~level ?plan ~analysis
            ~hooks:(dump_hooks dump) src
        in
        stats_out := Some c;
        (match chaos with
        | Some spec ->
          let intrinsic, n = parse_chaos spec in
          if
            not
              (Cgcm_transform.Comm_mgmt.drop_nth_call c.Pipeline.modul
                 ~intrinsic ~n)
          then
            failwith
              (Fmt.str "--chaos %s: the module has no such call (try a \
                        smaller N, or --mode unopt/opt)" spec)
        | None -> ());
        Interp.run
          ~config:
            { Interp.default_config with Interp.mode = imode; cost; trace;
              profile; faults; sanitize; engine; jobs; backend }
          c.Pipeline.modul
      end
      else
        snd
          (Pipeline.run ~trace ?faults ?device_mem ?page_bytes ~backend
             ~sanitize ~engine ~jobs mode src)
    in
    print_result r ~trace;
    (match (pass_stats, !stats_out) with
    | Some format, Some c -> print_pass_stats format c
    | _ -> ());
    if profile then begin
      Fmt.pr "--- per-function dynamic instructions:@.";
      List.iter
        (fun (name, n) -> Fmt.pr "    %-30s %12d@." name n)
        r.Interp.profile
    end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const f $ file_arg $ mode_arg $ trace_arg $ profile_arg $ faults_arg
      $ device_mem_arg $ backend_arg $ page_bytes_arg $ sanitize_arg
      $ chaos_arg $ engine_arg $ jobs_arg $ passes_arg $ dump_ir_arg
      $ pass_stats_arg $ analysis_arg)

let level_conv =
  Arg.enum
    [
      ("unmanaged", Pipeline.Unmanaged);
      ("managed", Pipeline.Managed);
      ("optimized", Pipeline.Optimized);
    ]

let level_arg =
  Arg.(
    value
    & opt level_conv Pipeline.Optimized
    & info [ "level"; "l" ] ~doc:"Pipeline level: unmanaged, managed, optimized")

let ir_cmd =
  let doc = "Dump the IR after the selected pipeline level (or pass plan)" in
  let f file level passes dump_ir pass_stats analysis =
    guarded @@ fun () ->
    let plan = parse_passes passes in
    let dump = parse_dump_ir dump_ir in
    let c =
      Pipeline.compile ~level ?plan ~analysis ~hooks:(dump_hooks dump)
        (read_file file)
    in
    print_string (Cgcm_ir.Printer.modul_to_string c.Pipeline.modul);
    match pass_stats with
    | Some format -> print_pass_stats format c
    | None -> ()
  in
  Cmd.v (Cmd.info "ir" ~doc)
    Term.(
      const f $ file_arg $ level_arg $ passes_arg $ dump_ir_arg
      $ pass_stats_arg $ analysis_arg)

let ast_cmd =
  let doc = "Dump the AST (after DOALL outlining unless --no-doall)" in
  let no_doall =
    Arg.(value & flag & info [ "no-doall" ] ~doc:"Skip the DOALL outliner")
  in
  let f file no_doall =
    guarded @@ fun () ->
    let ast = Cgcm_frontend.Parser.parse_string (read_file file) in
    let ast =
      if no_doall then ast
      else fst (Cgcm_frontend.Doall.transform ~mode:Cgcm_frontend.Doall.Auto ast)
    in
    print_string (Cgcm_frontend.Ast.program_to_string ast)
  in
  Cmd.v (Cmd.info "ast" ~doc) Term.(const f $ file_arg $ no_doall)

let fmt_cmd =
  let doc = "Pretty-print a CGC program (parse + print; output re-parses)" in
  let f file =
    guarded @@ fun () ->
    print_string
      (Cgcm_frontend.Ast.program_to_string
         (Cgcm_frontend.Parser.parse_string (read_file file)))
  in
  Cmd.v (Cmd.info "fmt" ~doc) Term.(const f $ file_arg)

let report_cmd =
  let doc = "Run all execution modes and report speedups over sequential" in
  let f file faults device_mem backend page_bytes engine jobs =
    guarded @@ fun () ->
    let src = read_file file in
    let faults = parse_faults faults in
    let engine, jobs = resolve_engine engine jobs in
    (* The sequential baseline never touches the device, so faults, the
       memory cap and the backend only shape the managed configurations. *)
    let _, seq = Pipeline.run Pipeline.Sequential src in
    Fmt.pr "%-22s %14s %9s@." "mode" "wall cycles" "speedup";
    let show name (r : Interp.result) =
      Fmt.pr "%-22s %14.0f %8.2fx@." name r.Interp.wall
        (seq.Interp.wall /. r.Interp.wall)
    in
    show "sequential" seq;
    let mismatched = ref false in
    List.iter
      (fun (name, mode) ->
        let _, r =
          Pipeline.run ?faults ?device_mem ?page_bytes ~backend ~engine ~jobs
            mode src
        in
        if r.Interp.output <> seq.Interp.output then begin
          mismatched := true;
          Fmt.pr "!! %s: OUTPUT MISMATCH vs sequential@." name
        end;
        show name r)
      [
        ("inspector-executor", Pipeline.Inspector_executor_exec);
        ("cgcm-unoptimized", Pipeline.Cgcm_unoptimized);
        ("cgcm-optimized", Pipeline.Cgcm_optimized);
      ];
    if !mismatched then exit 1
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const f $ file_arg $ faults_arg $ device_mem_arg $ backend_arg
      $ page_bytes_arg $ engine_arg $ jobs_arg)

let suite_cmd =
  let doc = "Run the 24-program suite and print the paper's artifacts" in
  let what_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~doc:"Run a single named program")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some (enum [ ("source", `Source); ("ir", `Ir) ])) None
      & info [ "dump" ] ~doc:"With --only: dump the program source or optimized IR")
  in
  let f only dump backend page_bytes engine jobs =
    guarded @@ fun () ->
    let module E = Cgcm_core.Experiments in
    let engine, jobs = resolve_engine engine jobs in
    match only with
    | Some name -> begin
      match Cgcm_progs.Registry.find name with
      | None -> Fmt.epr "unknown program %s@." name
      | Some p when dump = Some `Source ->
        print_string p.Cgcm_progs.Registry.source
      | Some p when dump = Some `Ir ->
        let c =
          Pipeline.compile ~level:Pipeline.Optimized
            p.Cgcm_progs.Registry.source
        in
        print_string (Cgcm_ir.Printer.modul_to_string c.Pipeline.modul)
      | Some p ->
        let r = E.run_program ~engine ~jobs ~backend ?page_bytes p in
        Fmt.pr "%s: seq=%.0f ie=%.2fx unopt=%.2fx opt=%.2fx kernels=%d %s@."
          name r.E.seq.Interp.wall
          (E.speedup ~seq:r.E.seq r.E.ie)
          (E.speedup ~seq:r.E.seq r.E.unopt)
          (E.speedup ~seq:r.E.seq r.E.opt)
          r.E.kernels
          (if r.E.outputs_match then "outputs-ok" else "OUTPUT MISMATCH")
    end
    | None ->
      let results =
        E.run_suite ~engine ~jobs ~backend ?page_bytes
          ~progress:(fun name -> Fmt.epr "running %s...@." name)
          ()
      in
      Fmt.pr "%s@." (E.figure4 results);
      Fmt.pr "%s@." (E.table3 results);
      Fmt.pr "%s@." (E.applicability results);
      List.iter
        (fun (r : E.prog_result) ->
          if not r.E.outputs_match then
            Fmt.pr "!! %s: OUTPUT MISMATCH@." r.E.prog.Cgcm_progs.Registry.name)
        results
  in
  Cmd.v (Cmd.info "suite" ~doc)
    Term.(
      const f $ what_arg $ dump_arg $ backend_arg $ page_bytes_arg
      $ engine_arg $ jobs_arg)

let run_ir_cmd =
  let doc = "Execute a textual IR module (as produced by 'cgcm ir')" in
  let unified =
    Arg.(value & flag & info [ "unified" ] ~doc:"Run in unified memory")
  in
  let f file unified trace =
    guarded @@ fun () ->
    let m = Cgcm_ir.Reader.parse_verified (read_file file) in
    let config =
      {
        Interp.default_config with
        Interp.mode = (if unified then Interp.Unified else Interp.Split);
        trace;
      }
    in
    print_result (Interp.run ~config m) ~trace
  in
  Cmd.v (Cmd.info "run-ir" ~doc) Term.(const f $ file_arg $ unified $ trace_arg)

let fuzz_cmd =
  let doc =
    "Fuzz the whole pipeline: random CGC programs run under every \
     optimization level and both engines with the coherence sanitizer \
     armed; failures are shrunk to minimal counterexamples"
  in
  let count_arg =
    Arg.(
      value & opt int 50
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of programs to generate")
  in
  let seed_arg =
    Arg.(
      value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Campaign seed")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Also write the failure reports to FILE (for CI artifacts)")
  in
  let fuzz_jobs_arg =
    Arg.(
      value & opt int 4
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains for the parallel-engine configuration of each \
             differential check (default 4 so kernels shard even on \
             single-core hosts)")
  in
  let plan_rounds_arg =
    Arg.(
      value & opt int 1
      & info [ "plan-rounds" ] ~docv:"N"
          ~doc:
            "Rounds of fuzzed pass plans per program (each round adds a \
             schedule-ordered subset plan run under split memory and a \
             random subset/permutation plan run in unified memory); 0 \
             disables pass-plan fuzzing")
  in
  let shrink_budget_arg =
    Arg.(
      value & opt float 60_000.0
      & info [ "shrink-budget-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for shrinking each failing program; when \
             it lapses the smallest counterexample found so far is \
             reported")
  in
  let wire_arg =
    Arg.(
      value & opt int 0
      & info [ "wire" ] ~docv:"N"
          ~doc:
            "Also fuzz the serve wire protocol with N cases: random frame \
             streams — pristine and corrupted (bit flips, truncation, \
             hostile length headers, injected garbage) — fed to the \
             incremental decoder in random chunks; the decoder must \
             decode pristine streams exactly and reject hostile ones \
             with nothing but a protocol error")
  in
  let f count seed out jobs plan_rounds shrink_budget_ms wire =
    guarded @@ fun () ->
    let wire_reports =
      if wire <= 0 then []
      else
        Cgcm_fuzz.Wire_fuzz.campaign
          ~progress:(fun k ->
            if k mod 100 = 0 then Fmt.epr "fuzz: wire case %d/%d...@." k wire)
          ~count:wire ~seed ()
    in
    List.iter
      (fun r -> Fmt.pr "%s@." (Cgcm_fuzz.Wire_fuzz.render_report r))
      wire_reports;
    if wire > 0 && wire_reports = [] then
      Fmt.pr "fuzz: %d wire cases clean (seed %d)@." wire seed;
    let reports =
      Cgcm_fuzz.Fuzz.campaign
        ~progress:(fun k ->
          if k mod 10 = 0 then Fmt.epr "fuzz: program %d/%d...@." k count)
        ~jobs ~plan_rounds ~shrink_budget_ms ~count ~seed ()
    in
    let rendered = List.map Cgcm_fuzz.Fuzz.render_report reports in
    List.iter (Fmt.pr "%s@.") rendered;
    (match out with
    | Some path ->
      let oc = open_out path in
      List.iter (fun r -> output_string oc (r ^ "\n")) rendered;
      close_out oc
    | None -> ());
    if reports = [] then Fmt.pr "fuzz: %d programs clean (seed %d)@." count seed
    else
      Fmt.epr "fuzz: %d of %d programs failed@." (List.length reports) count;
    if reports <> [] || wire_reports <> [] then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const f $ count_arg $ seed_arg $ out_arg $ fuzz_jobs_arg
      $ plan_rounds_arg $ shrink_budget_arg $ wire_arg)

let figure2_cmd =
  let doc = "Render the Figure 2 execution schedules" in
  let f () = print_string (Cgcm_core.Experiments.figure2 ()) in
  Cmd.v (Cmd.info "figure2" ~doc) Term.(const f $ const ())

(* --- the serve daemon and its client -------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/cgcm-serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path of the daemon")

let serve_cmd =
  let doc =
    "Run the compile-and-run daemon: a unix-socket service accepting \
     requests from named tenants, with a cross-request compilation cache, \
     per-tenant warm device residency, admission control, per-request \
     deadlines, transient-fault retry and per-tenant circuit breakers"
  in
  let max_queue_arg =
    Arg.(
      value & opt int Cgcm_serve.Engine.default_config.Cgcm_serve.Engine.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Admission bound: shed requests beyond this queue depth")
  in
  let deadline_arg =
    Arg.(
      value
      & opt int
          Cgcm_serve.Engine.default_config.Cgcm_serve.Engine.default_deadline
      & info [ "deadline" ] ~docv:"FUEL"
          ~doc:
            "Default per-request deadline, in interpreter fuel \
             (instructions); a request's own deadline overrides it")
  in
  let max_retries_arg =
    Arg.(
      value
      & opt int Cgcm_serve.Engine.default_config.Cgcm_serve.Engine.max_retries
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Extra attempts for injected (transient) driver faults")
  in
  let backoff_arg =
    Arg.(
      value & opt float 1.0
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base backoff between retry attempts; doubles per attempt")
  in
  let threshold_arg =
    Arg.(
      value
      & opt int
          Cgcm_serve.Engine.default_config.Cgcm_serve.Engine.circuit_threshold
      & info [ "circuit-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive device-path failures that trip a tenant's \
             circuit breaker (degrading it to CPU-only execution)")
  in
  let cache_arg =
    Arg.(
      value
      & opt int
          Cgcm_serve.Engine.default_config.Cgcm_serve.Engine.cache_capacity
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Compiled-module LRU cache capacity")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Write-ahead journal of recoverable state (compiled modules, \
             warm residency, circuit breakers). If the file already holds \
             records from a previous run — crashed or clean — the daemon \
             replays them on startup and rebuilds its warm state before \
             accepting connections. With --shards N > 1 each shard keeps \
             its own segment at PATH.shardI.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Worker shards: each owns a full engine (compiled-module \
             cache, warm residency, breakers, journal segment) on its own \
             domain, with tenants hashed to shards deterministically. 1 \
             (the default) keeps the original single-threaded loop.")
  in
  let f socket max_queue device_mem deadline max_retries backoff threshold
      cache_entries faults journal_path shards =
    guarded @@ fun () ->
    let config =
      {
        Cgcm_serve.Engine.default_config with
        Cgcm_serve.Engine.max_queue;
        device_mem = Option.value device_mem ~default:max_int;
        default_deadline = deadline;
        max_retries;
        backoff_ms = backoff;
        circuit_threshold = threshold;
        cache_capacity = cache_entries;
        faults = parse_faults faults;
      }
    in
    let server =
      Cgcm_serve.Server.create ~engine_config:config ?journal_path ~shards
        ~log:(fun s -> Fmt.epr "%s@." s)
        ~socket_path:socket ()
    in
    Option.iter
      (fun r ->
        Fmt.epr
          "cgcm serve: recovered %d journal records (%d modules recompiled, \
           %d rewarmed, %d tenants%s%s)@."
          r.Cgcm_serve.Engine.rec_records r.Cgcm_serve.Engine.rec_compiled
          r.Cgcm_serve.Engine.rec_rewarmed r.Cgcm_serve.Engine.rec_tenants
          (if r.Cgcm_serve.Engine.rec_torn then ", torn tail dropped" else "")
          (if r.Cgcm_serve.Engine.rec_skipped > 0 then
             Printf.sprintf ", %d stale records skipped"
               r.Cgcm_serve.Engine.rec_skipped
           else ""))
      (Cgcm_serve.Server.recovered server);
    let stop _ = Cgcm_serve.Server.stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    Fmt.epr "cgcm serve: listening on %s (%d shard%s)@." socket shards
      (if shards = 1 then "" else "s");
    let line, residual = Cgcm_serve.Server.run server in
    Fmt.pr "%s@." line;
    if residual <> 0 then exit 1
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const f $ socket_arg $ max_queue_arg $ device_mem_arg $ deadline_arg
      $ max_retries_arg $ backoff_arg $ threshold_arg $ cache_arg $ faults_arg
      $ journal_arg $ shards_arg)

let request_cmd =
  let doc =
    "Send one request to a running serve daemon and print the program \
     output; typed rejections exit with their own codes (overloaded 9, \
     deadline exceeded 10, circuit open 11, reply timeout 13)"
  in
  let file_opt_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"CGC source file (omit for --ping etc.)")
  in
  let tenant_arg =
    Arg.(
      value & opt string "anonymous"
      & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant this request bills to")
  in
  let smode_arg =
    Arg.(
      value
      & opt
          (enum
             (List.map
                (fun m -> (m, m))
                [ "seq"; "unopt"; "opt"; "ie"; "unified"; "unopt+paged";
                  "opt+paged"; "unopt+explicit"; "opt+explicit" ]))
          "opt"
      & info [ "mode"; "m" ]
          ~doc:
            "Execution mode: seq, unopt, opt, ie, unified; the split modes \
             take an optional memory-backend suffix, e.g. $(b,opt+paged). \
             As with $(b,cgcm run), $(b,unified) is the paper's unified \
             address-space oracle, not a managed-memory model.")
  in
  let req_deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"FUEL"
          ~doc:"Per-request deadline in interpreter fuel")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Fail with exit code 11 when the tenant's circuit breaker is \
             open, instead of degrading to CPU-only execution")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Just check the daemon is alive")
  in
  let stats_arg =
    Arg.(
      value & flag & info [ "stats" ] ~doc:"Print the daemon's stats as JSON")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the daemon to drain and exit")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout" ] ~docv:"MS"
          ~doc:
            "Give up waiting for the reply after this many milliseconds \
             (exit code 13) instead of hanging on a wedged daemon")
  in
  let f socket file tenant mode deadline strict faults ping stats shutdown
      timeout_ms =
    guarded @@ fun () ->
    if ping then begin
      if Cgcm_serve.Client.ping ~socket_path:socket then Fmt.pr "pong@."
      else begin
        Fmt.epr "cgcm request: no daemon at %s@." socket;
        exit 1
      end
    end
    else if stats then
      Fmt.pr "%s@."
        (Cgcm_serve.Json.print (Cgcm_serve.Client.stats ~socket_path:socket))
    else if shutdown then begin
      if not (Cgcm_serve.Client.shutdown ~socket_path:socket) then begin
        Fmt.epr "cgcm request: no daemon at %s@." socket;
        exit 1
      end
    end
    else begin
      let file =
        match file with
        | Some f -> f
        | None -> failwith "cgcm request: FILE required (or --ping/--stats/--shutdown)"
      in
      let req =
        {
          Cgcm_serve.Wire.rq_id = Unix.getpid ();
          rq_tenant = tenant;
          rq_source = read_file file;
          rq_mode = mode;
          rq_deadline = deadline;
          rq_strict = strict;
          rq_faults = faults;
        }
      in
      let reply =
        Cgcm_serve.Client.request ?timeout_ms ~socket_path:socket req
      in
      print_string reply.Cgcm_serve.Wire.rp_output;
      Fmt.epr "--- status : %s (cache %s%s%s)@."
        (Cgcm_serve.Wire.status_name reply.Cgcm_serve.Wire.rp_status)
        reply.Cgcm_serve.Wire.rp_cache
        (if reply.Cgcm_serve.Wire.rp_degraded then ", degraded" else "")
        (if reply.Cgcm_serve.Wire.rp_retries > 0 then
           Printf.sprintf ", %d retries" reply.Cgcm_serve.Wire.rp_retries
         else "");
      match reply.Cgcm_serve.Wire.rp_status with
      | Cgcm_serve.Wire.Ok -> ()
      | _ ->
        Fmt.epr "%s@." reply.Cgcm_serve.Wire.rp_error;
        exit reply.Cgcm_serve.Wire.rp_exit_code
    end
  in
  Cmd.v (Cmd.info "request" ~doc)
    Term.(
      const f $ socket_arg $ file_opt_arg $ tenant_arg $ smode_arg
      $ req_deadline_arg $ strict_arg $ faults_arg $ ping_arg $ stats_arg
      $ shutdown_arg $ timeout_arg)

let chaos_cmd =
  let doc =
    "Kill-restart chaos harness for the serve daemon: fork a journal-armed \
     daemon, drive a seeded request burst, kill -9 it mid-burst (optionally \
     tearing the journal tail), restart it with recovery, and gate on \
     bit-identical replies, journal durability, zero invariant violations \
     and zero device leaks; failing schedules are shrunk to a minimal \
     reproduction"
  in
  let seeds_arg =
    Arg.(
      value
      & opt (list ~sep:',' int) [ 1; 7; 42 ]
      & info [ "seeds" ] ~docv:"A,B,C" ~doc:"Comma-separated schedule seeds")
  in
  let requests_arg =
    Arg.(
      value & opt int 30
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per schedule")
  in
  let dir_arg =
    Arg.(
      value
      & opt string (Filename.concat (Filename.get_temp_dir_name ()) "cgcm-chaos")
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Working directory for sockets, journals and daemon logs")
  in
  let no_torn_arg =
    Arg.(
      value & flag
      & info [ "no-torn-tail" ]
          ~doc:"Skip the injected torn journal record before the restart")
  in
  let chaos_shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run the daemons under test with N shards: the kill lands while \
             several shard journal segments are live, and recovery must \
             reassemble all of them")
  in
  let f seeds requests dir no_torn shards =
    guarded @@ fun () ->
    let failed = ref false in
    List.iter
      (fun seed ->
        let cfg =
          {
            (Cgcm_serve.Chaos.default_config ~seed ~dir) with
            Cgcm_serve.Chaos.ch_requests = requests;
            ch_torn_tail = not no_torn;
            ch_shards = shards;
          }
        in
        let outcome = Cgcm_serve.Chaos.run cfg in
        Fmt.pr "%s@." (Cgcm_serve.Chaos.render_outcome outcome);
        if outcome.Cgcm_serve.Chaos.oc_violations <> [] then begin
          failed := true;
          Fmt.epr "chaos seed=%d: shrinking the failing schedule...@." seed;
          let sched, shrunk =
            Cgcm_serve.Chaos.shrink
              ~run:(Cgcm_serve.Chaos.run_schedule cfg)
              outcome.Cgcm_serve.Chaos.oc_schedule outcome
          in
          Fmt.epr "%s@." (Cgcm_serve.Chaos.render_schedule sched);
          Fmt.epr "%s@." (Cgcm_serve.Chaos.render_outcome shrunk);
          let art = Filename.concat dir (Printf.sprintf "repro-%d.txt" seed) in
          let oc = open_out art in
          output_string oc (Cgcm_serve.Chaos.render_schedule sched);
          output_string oc (Cgcm_serve.Chaos.render_outcome shrunk);
          output_string oc "\n";
          close_out oc;
          Fmt.epr "chaos seed=%d: minimal reproduction written to %s@." seed
            art
        end)
      seeds;
    if !failed then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const f $ seeds_arg $ requests_arg $ dir_arg $ no_torn_arg
      $ chaos_shards_arg)

let main_cmd =
  let doc = "CGCM: automatic CPU-GPU communication management (PLDI 2011)" in
  Cmd.group (Cmd.info "cgcm" ~version:"0.1.0" ~doc)
    [
      run_cmd; run_ir_cmd; ir_cmd; ast_cmd; fmt_cmd; report_cmd; suite_cmd;
      fuzz_cmd; figure2_cmd; serve_cmd; request_cmd; chaos_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
