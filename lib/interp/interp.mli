(** IR interpreter with the split CPU/GPU memory model and the analytic
    cost model attached.

    Execution modes:
    - {!Split} — the real model: kernels execute against device memory,
      all data movement must go through the CGCM run-time (or explicit
      driver calls), and the clock advances per the cost model.
    - {!Unified} — a debugging oracle: one flat memory, kernels read host
      memory directly, [cgcm.*] intrinsics are identity/no-ops, kernel
      work is charged as CPU time. Every transformed program must produce
      the same observable output under [Unified] as the untransformed
      program — the differential tests lean on this. It is also the
      sequential baseline for programs with explicitly written kernels.
    - {!Inspector_executor} — the idealized baseline of Section 6.3: an
      oracle scheduler, one byte transferred per accessed allocation unit
      (batched into one DMA per direction per launch), a sequential
      inspection pass before every launch, fully cyclic synchronisation.
      Runs on the plain DOALL-parallelized module with no management. *)

module Ir = Cgcm_ir.Ir
module Memspace = Cgcm_memory.Memspace
module Device = Cgcm_gpusim.Device
module Trace = Cgcm_gpusim.Trace
module Cost_model = Cgcm_gpusim.Cost_model
module Faults = Cgcm_gpusim.Faults
module Runtime = Cgcm_runtime.Runtime
module Mem_backend = Cgcm_runtime.Mem_backend
module Paged = Cgcm_runtime.Paged

exception Exec_error of string
(** Raised on dynamic errors the memory model does not already catch:
    division by zero, type confusion (float used as pointer), calls to
    unknown functions, fuel exhaustion, arity mismatches. *)

type mode = Split | Unified | Inspector_executor

(** Execution engines:
    - {!Closures} — the default: each function is pre-decoded once per
      run into arrays of closures (threaded-code style) with operand
      shapes, binop/unop dispatch, and callee lookups resolved at decode
      time; loads and stores cache a validated block handle per site.
    - {!Tree_walk} — the original AST interpreter, kept for differential
      testing: both engines must produce bit-identical outputs, stats,
      and traces on every program.
    - {!Parallel} — the closure engine plus a persistent domain pool
      (see {!Cgcm_support.Pool}): each eligible kernel launch statically
      chunks its DOALL trip count across [config.jobs] domains, each
      with per-domain closure instantiations, and a join barrier merges
      shard state in iteration order — outputs, stats, traces and
      simulated timelines stay bit-identical to {!Closures}. Launches
      below the {!Cost_model.t.par_min_trip} threshold, kernels the
      static shardability check rejects, and everything outside kernels
      run on the sequential closure path. *)
type engine = Closures | Tree_walk | Parallel

type config = {
  mode : mode;
  cost : Cost_model.t;
  trace : bool;  (** record a {!Trace.t} of transfers/kernels/stalls *)
  inspector_fraction : float;
      (** fraction of kernel work the sequential inspector replays *)
  fuel : int;  (** dynamic instruction budget; guards infinite loops *)
  profile : bool;  (** collect per-function instruction counts *)
  engine : engine;
  dirty_spans : bool;
      (** run-time transfers only dirty spans instead of whole units *)
  faults : Faults.spec option;
      (** deterministic driver fault plan ([None] = infallible driver);
          the run-time recovers via eviction, retry and CPU fallback *)
  paranoid : bool;
      (** re-run {!Runtime.check_invariants} after every run-time call *)
  sanitize : bool;
      (** shadow-memory coherence sanitizer: mirror every allocation unit
          with an independent byte-version map and raise
          {!Cgcm_support.Errors.Coherence_violation} fail-fast on stale
          reads, lost updates, premature releases and double frees
          ({!Split} mode only; the oracle modes have nothing to check) *)
  jobs : int;
      (** {!Parallel} engine only: domains executing kernel launches;
          0 (the default) resolves via [CGCM_JOBS] then
          [Domain.recommended_domain_count]. [jobs = 1] selects the
          exact sequential closure path. *)
  backend : Mem_backend.kind;
      (** Memory backend, {!Split} mode only. [Explicit] (the default)
          is the CGCM-managed split-memory explicit-copy model.
          [Paged] is a single shared address space with touch-driven
          page-granular migration (managed memory): the [cgcm.*]
          intrinsics become no-ops and all communication cost comes
          from page faults priced by
          {!Cost_model.t.page_bytes}/[page_fault_cycles]. Outputs must
          be bit-identical across backends; only the timeline and
          transfer accounting differ. Not to be confused with the
          {!Unified} {e mode}, the zero-cost address-space oracle used
          for differential testing. *)
}

val default_config : config

type result = {
  exit_code : int64;
  output : string;  (** everything the program printed *)
  wall : float;  (** total simulated cycles, including the final sync *)
  cpu_compute : float;  (** cycles spent in interpreted CPU instructions *)
  gpu : float;  (** device busy cycles in kernels *)
  comm : float;  (** cycles spent in CPU-GPU transfers *)
  sync : float;  (** CPU cycles stalled on the device *)
  cpu_insts : int;
  kernel_insts : int;
  dev_stats : Device.stats;
  rt_stats : Runtime.stats;
  leaks : Runtime.leak_report;
      (** device residency at program exit: non-global resident units and
          live driver-heap blocks must both be zero for a leak-free run *)
  dev_peak_bytes : int;  (** high-water mark of device memory use *)
  trace : Trace.t;
  profile : (string * int) list;
      (** per-function dynamic instruction counts, descending; empty
          unless [config.profile] *)
  san_report : Cgcm_sanitizer.Sanitizer.report option;
      (** coherence-sanitizer statistics (redundant transfers, live
          units); present iff [config.sanitize] ran *)
  page_stats : Paged.stats option;
      (** page-migration accounting (touches, faults and migrated bytes
          per direction); present iff the paged backend ran *)
}

val run : ?config:config -> Ir.modul -> result
(** Load the module's globals (registering each with the run-time, the
    compiler's declareGlobal calls), execute [main], and account timing
    per the configuration. *)

val module_shardable : Ir.modul -> bool
(** Whether every kernel in the module passes the parallel engine's
    static shardability scan (promoted allocas only, no nested launches,
    par-safe callees). The serve daemon's batching layer uses this as
    its compatible-launch-shapes gate before fusing cross-request
    episodes over a compiled module. *)
