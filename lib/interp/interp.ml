(* IR interpreter with a split CPU/GPU memory model and the analytic cost
   model attached.

   Two execution modes:
   - [Split]   the real model: kernels execute against device memory, all
               data movement must go through the CGCM run-time (or explicit
               driver calls), and the clock advances per the cost model.
   - [Unified] a debugging oracle: one flat memory, kernels read host
               memory directly, cgcm.* intrinsics are identity/no-ops.
               Every transformed program must produce the same observable
               output under [Unified] as the untransformed program — the
               differential tests lean on this.

   Three execution engines:
   - [Closures]  the default: each function is pre-decoded once per run
                 into an array of closures (threaded-code style) with the
                 operand shapes, the binop/unop dispatch, and the callee
                 lookups resolved at decode time. Loads and stores hold a
                 per-site block handle so repeated accesses to the same
                 allocation unit skip the greatest-leq lookup and the span
                 check entirely (Memspace.handle_valid).
   - [Tree_walk] the original AST interpreter, kept for differential
                 testing: both engines must produce bit-identical outputs,
                 stats, and traces on every program.
   - [Parallel]  the closure engine plus a host-side domain pool for
                 kernel launches: DOALL iterations are independent by
                 construction (that is what makes them GPU-legal), so a
                 launch's trip count is statically chunked across
                 [config.jobs] domains, each executing its contiguous
                 slice on a private shard machine with its own decoded
                 closures; the join barrier merges shard state back in
                 shard (= iteration) order, keeping results bit-identical
                 to [Closures]. See exec_launch_parallel below. *)

module Ir = Cgcm_ir.Ir
module Memspace = Cgcm_memory.Memspace
module Device = Cgcm_gpusim.Device
module Trace = Cgcm_gpusim.Trace
module Cost_model = Cgcm_gpusim.Cost_model
module Faults = Cgcm_gpusim.Faults
module Runtime = Cgcm_runtime.Runtime
module Errors = Cgcm_support.Errors
module Sanitizer = Cgcm_sanitizer.Sanitizer
module Modref = Cgcm_analysis.Modref
module Pool = Cgcm_support.Pool
module Mem_backend = Cgcm_runtime.Mem_backend
module Paged = Cgcm_runtime.Paged

exception Exec_error of string

let error fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

(* - [Inspector_executor] models the idealized baseline of Section 6.3:
     an oracle scheduler, exactly one byte transferred per accessed
     allocation unit, a sequential inspection pass before every launch,
     and fully cyclic (synchronous) communication. It runs on the plain
     DOALL-parallelized module, with no CGCM management. *)
type mode = Split | Unified | Inspector_executor

type engine = Closures | Tree_walk | Parallel

type config = {
  mode : mode;
  cost : Cost_model.t;
  trace : bool;
  (* fraction of kernel work the sequential inspector replays on the CPU *)
  inspector_fraction : float;
  (* dynamic instruction budget: guards against infinite loops *)
  fuel : int;
  (* per-function dynamic instruction counts in the result *)
  profile : bool;
  engine : engine;
  (* run-time transfers only dirty spans instead of whole units *)
  dirty_spans : bool;
  (* deterministic driver fault plan (None = infallible driver) *)
  faults : Faults.spec option;
  (* re-check all run-time invariants after every run-time call *)
  paranoid : bool;
  (* shadow-memory coherence sanitizer: mirror every allocation unit
     with a byte-version map and fail fast on stale reads, lost updates,
     premature releases and double frees (Split mode only) *)
  sanitize : bool;
  (* Parallel engine only: how many domains execute kernel launches
     (0 = CGCM_JOBS / Domain.recommended_domain_count). With jobs = 1
     the Parallel engine is exactly the sequential closure engine. *)
  jobs : int;
  (* memory backend (Split mode only): [Explicit] is the CGCM-managed
     split-memory model; [Paged] is a single shared address space with
     touch-driven page-granular migration, under which the cgcm.*
     intrinsics are no-ops and all cost comes from page faults. *)
  backend : Mem_backend.kind;
}

let default_config =
  {
    mode = Split;
    cost = Cost_model.default;
    trace = false;
    inspector_fraction = 0.25;
    fuel = 4_000_000_000;
    profile = false;
    engine = Closures;
    dirty_spans = true;
    faults = None;
    paranoid = false;
    sanitize = false;
    jobs = 0;
    backend = Mem_backend.Explicit;
  }

type rtval = VI of int64 | VF of float

(* Shared boxes for the two boolean results: comparisons are a large
   fraction of executed instructions (every loop back-edge), and the
   shared values save an allocation each. *)
let vtrue = VI 1L
let vfalse = VI 0L

(* Pre-box an immediate operand at decode time. *)
let imm_val = function
  | Ir.Imm_int i -> VI i
  | Ir.Imm_float x -> VF x
  | Ir.Reg _ | Ir.Global _ -> assert false

let as_int = function
  | VI i -> i
  | VF _ -> error "type confusion: float used as integer/pointer"

let as_float = function
  | VF f -> f
  | VI _ -> error "type confusion: integer used as float"

type result = {
  exit_code : int64;
  output : string;
  wall : float;  (* total simulated cycles, including the final sync *)
  cpu_compute : float;  (* cycles spent in interpreted CPU instructions *)
  gpu : float;  (* device busy cycles in kernels *)
  comm : float;  (* cycles spent in CPU-GPU transfers *)
  sync : float;  (* CPU cycles stalled on the device *)
  cpu_insts : int;
  kernel_insts : int;
  dev_stats : Device.stats;
  rt_stats : Runtime.stats;
  leaks : Runtime.leak_report;  (* device residency at program exit *)
  dev_peak_bytes : int;  (* high-water mark of device memory *)
  trace : Trace.t;
  profile : (string * int) list;
      (* per-function dynamic instruction counts, descending; empty unless
         config.profile *)
  san_report : Cgcm_sanitizer.Sanitizer.report option;
      (* coherence-sanitizer statistics; present iff config.sanitize ran *)
  page_stats : Paged.stats option;
      (* page-migration accounting; present iff the paged backend ran *)
}

(* Per-call state threaded through compiled closures. *)
type ctx = {
  fr : rtval array;  (* the register frame *)
  lv : float array;
  (* promoted alloca slots, stored as raw IEEE bits (int64 accesses
     reinterpret via Int64.bits_of_float, which is exact) *)
  sp : Memspace.t;  (* memory space of the executing context *)
  mutable ret : rtval option;
  mutable allocas : int list;  (* frame allocation units, freed on exit *)
  mutable registered : int list;  (* declareAlloca registrations to expire *)
}

type cinstr = ctx -> unit

(* A run of instructions whose ticks are batched into one accounting call:
   pure instructions (arithmetic, loads, stores) cannot observe the
   machine's counters, so only call-like instructions — which can flush
   the clock, print, or recurse — bound a run. Each run holds the pure
   prefix plus at most one trailing call-like instruction; [ticks] is the
   instruction count (the last run also carries the terminator's tick).
   Every observation point (flush_time, output, traces) sees counter
   values identical to the per-instruction schedule. *)
type crun = { ticks : int; ops : cinstr array }

type cblock = {
  runs : crun array;
  (* returns the next block index, or -1 after storing into ctx.ret *)
  ct : ctx -> int;
}

type cfunc = { cfn : Ir.func; cblocks : cblock array; nlocals : int }

type machine = {
  m : Ir.modul;
  host : Memspace.t;
  dev : Device.t;
  rt : Runtime.t;
  mode : mode;
  engine : engine;
  cost : Cost_model.t;
  funcs : (string, Ir.func) Hashtbl.t;
  decoded : (string, cfunc) Hashtbl.t;
  globals_host : (string, int) Hashtbl.t;
  out : Buffer.t;
  mutable now : float;
  mutable pending_insts : int;  (* CPU instructions not yet folded into now *)
  mutable cpu_insts : int;
  mutable kernel_insts : int;
  mutable in_kernel : bool;
  mutable fuel : int;  (* dynamic instruction budget; guards infinite loops *)
  inspector_fraction : float;
  (* Inspector-executor: allocation units touched by the current kernel,
     base address -> was written. Units allocated after [threshold]
     (thread-local stack slots) are not program data and are excluded. *)
  mutable track_units : (int, bool) Hashtbl.t option;
  mutable track_threshold : int;
  (* profiling *)
  profile_on : bool;
  profile_counts : (string, int ref) Hashtbl.t;
  mutable cur_fn : string;
  (* memory backend: the cold management surface (intrinsics, heap
     tracking, leak reporting) behind one closure record *)
  bk : Mem_backend.ops;
  (* Some iff Split mode runs under the paged backend; the hot access
     hooks key off this directly *)
  paged : Paged.t option;
  (* coherence sanitizer (Split + explicit backend + config.sanitize);
     the same instance the device and run-time hooks drive *)
  san : Sanitizer.t option;
  (* per-kernel static read/write sets for the sanitizer's launch hook *)
  rw_cache : (string, Modref.rw) Hashtbl.t;
  (* ---- parallel engine ---- *)
  (* resolved job count: > 1 only for the Parallel engine *)
  jobs : int;
  (* kernel name -> Some (transitively referenced globals) when every
     launch of it may shard across domains, None when it must stay
     sequential (see par_kernel_info) *)
  par_cache : (string, string list option) Hashtbl.t;
  (* persistent per-domain shard machines, grown on demand; each holds
     its own decoded-closure tables, output buffer and dirty log *)
  mutable shards : machine array;
  (* Some on shard machines only: the per-shard deferred dirty-span log,
     replayed at the join. Doubles as the "am I a shard?" flag. *)
  shard_log : Memspace.dirty_log option;
}

let flush_time mc =
  if mc.pending_insts > 0 then begin
    mc.now <- mc.now +. (float_of_int mc.pending_insts *. mc.cost.Cost_model.cpu_cycle);
    mc.pending_insts <- 0
  end

let tick mc =
  mc.fuel <- mc.fuel - 1;
  if mc.fuel <= 0 then error "instruction budget exhausted (infinite loop?)";
  if mc.profile_on then begin
    match Hashtbl.find_opt mc.profile_counts mc.cur_fn with
    | Some r -> incr r
    | None -> Hashtbl.replace mc.profile_counts mc.cur_fn (ref 1)
  end;
  (* In unified mode there is no device: kernel work is CPU work (this is
     what makes it the sequential baseline for explicitly-written
     kernels). *)
  if mc.in_kernel && mc.mode <> Unified then
    mc.kernel_insts <- mc.kernel_insts + 1
  else begin
    mc.cpu_insts <- mc.cpu_insts + 1;
    mc.pending_insts <- mc.pending_insts + 1
  end

(* Batched tick for a run of [n] instructions (closure engine). The
   context (kernel vs CPU) cannot change inside a run, so one test
   covers all [n]. *)
let seg_tick mc n =
  mc.fuel <- mc.fuel - n;
  if mc.fuel <= 0 then error "instruction budget exhausted (infinite loop?)";
  if mc.profile_on then begin
    match Hashtbl.find_opt mc.profile_counts mc.cur_fn with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace mc.profile_counts mc.cur_fn (ref n)
  end;
  if mc.in_kernel && mc.mode <> Unified then
    mc.kernel_insts <- mc.kernel_insts + n
  else begin
    mc.cpu_insts <- mc.cpu_insts + n;
    mc.pending_insts <- mc.pending_insts + n
  end

(* Memory space for the executing context. Under the paged backend there
   is one shared address space: kernels read and write host memory, and
   the cost of getting the bytes across shows up as page faults. *)
let space mc =
  if mc.in_kernel && mc.mode = Split && mc.paged == None then
    mc.dev.Device.mem
  else mc.host

let global_addr mc g =
  if mc.in_kernel && mc.mode = Split && mc.paged == None then begin
    match mc.shard_log with
    | Some _ -> (
      (* Parallel shard: the pre-launch check guarantees every global the
         kernel can reference is already device-resident, so resolution
         is a pure table lookup — the driver and run-time are not
         domain-safe and must not run here. For a resident global the
         sequential path below is equally charge-free, so the timelines
         agree. *)
      match Hashtbl.find_opt mc.dev.Device.globals g with
      | Some a -> a
      | None -> error "parallel shard: global %s not device-resident" g)
    | None ->
      (* Resolve through the run-time so a first touch (or a re-touch
         after an eviction) gets the same OOM recovery as map, and an
         evicted global is refilled from its written-back host copy. *)
      mc.rt.Runtime.now <- mc.now;
      let addr = Runtime.device_global_addr mc.rt g in
      mc.now <- mc.rt.Runtime.now;
      addr
  end
  else begin
    match Hashtbl.find_opt mc.globals_host g with
    | Some a -> a
    | None -> error "unknown global %s" g
  end

(* ------------------------------------------------------------------ *)
(* Program loading: allocate and initialise globals, register them with
   the run-time (the compiler's declareGlobal calls before main).        *)

let load_globals mc =
  List.iter
    (fun (g : Ir.global) ->
      let base = Memspace.alloc ~tag:("g:" ^ g.gname) mc.host g.gsize in
      Hashtbl.replace mc.globals_host g.gname base)
    mc.m.Ir.globals;
  (* Initialise after all bases are known (pointer initialisers). *)
  List.iter
    (fun (g : Ir.global) ->
      let base = Hashtbl.find mc.globals_host g.gname in
      match g.ginit with
      | Ir.Zeroed -> ()
      | Ir.I64s a ->
        Array.iteri (fun i v -> Memspace.store_i64 mc.host (base + (8 * i)) v) a
      | Ir.F64s a ->
        Array.iteri (fun i v -> Memspace.store_f64 mc.host (base + (8 * i)) v) a
      | Ir.Str s -> Memspace.store_string mc.host base s
      | Ir.Ptrs names ->
        Array.iteri
          (fun i n ->
            let v =
              if n = "" then 0L
              else Int64.of_int (Hashtbl.find mc.globals_host n)
            in
            Memspace.store_i64 mc.host (base + (8 * i)) v)
          names)
    mc.m.Ir.globals;
  List.iter
    (fun (g : Ir.global) ->
      let base = Hashtbl.find mc.globals_host g.gname in
      Runtime.declare_global mc.rt ~name:g.gname ~base ~size:g.gsize
        ~read_only:g.gread_only)
    mc.m.Ir.globals;
  (* Paged backend: globals carry load-time initial values, so their
     backing pages start host-resident (free, like the host arrays
     cudaMallocManaged zero-fills). *)
  match mc.paged with
  | Some pg ->
    List.iter
      (fun (g : Ir.global) ->
        let base = Hashtbl.find mc.globals_host g.gname in
        Paged.place_host pg ~addr:base ~len:g.gsize)
      mc.m.Ir.globals
  | None -> ()

(* Paged backend: note an access to [addr, addr+len) and charge any
   host-side migration synchronously. Kernel-side fault time pools
   inside [pg] until the launch ends (Paged.flush_launch). *)
let paged_touch mc pg ~addr ~len =
  if mc.in_kernel then ignore (Paged.touch pg ~kernel:true ~addr ~len)
  else begin
    let cyc = Paged.touch pg ~kernel:false ~addr ~len in
    if cyc > 0.0 then begin
      (* the migrated pages may hold kernel output: stall for the
         device, then pay the migration before the access completes *)
      flush_time mc;
      mc.now <- Device.sync mc.dev ~now:mc.now;
      Paged.note_host_migration pg ~start:mc.now ~cycles:cyc
        ~pages:(Paged.last_host_fault_pages pg);
      mc.now <- mc.now +. cyc
    end
  end

(* ------------------------------------------------------------------ *)
(* Instruction evaluation (tree-walking engine)                         *)

let eval_binop op a b =
  let open Ir in
  let i op2 = VI (op2 (as_int a) (as_int b)) in
  let f op2 = VF (op2 (as_float a) (as_float b)) in
  let icmp op2 = VI (if op2 (compare (as_int a) (as_int b)) 0 then 1L else 0L) in
  (* direct float operators: IEEE semantics (NaN <> NaN), unlike the
     polymorphic compare *)
  let fcmp op2 = VI (if op2 (as_float a) (as_float b) then 1L else 0L) in
  match op with
  | Add -> i Int64.add
  | Sub -> i Int64.sub
  | Mul -> i Int64.mul
  | Div ->
    if as_int b = 0L then error "integer division by zero";
    i Int64.div
  | Rem ->
    if as_int b = 0L then error "integer remainder by zero";
    i Int64.rem
  | And -> i Int64.logand
  | Or -> i Int64.logor
  | Xor -> i Int64.logxor
  | Shl -> VI (Int64.shift_left (as_int a) (Int64.to_int (as_int b) land 63))
  | Shr ->
    VI (Int64.shift_right_logical (as_int a) (Int64.to_int (as_int b) land 63))
  | Fadd -> f ( +. )
  | Fsub -> f ( -. )
  | Fmul -> f ( *. )
  | Fdiv -> f ( /. )
  | Eq -> icmp ( = )
  | Ne -> icmp ( <> )
  | Lt -> icmp ( < )
  | Le -> icmp ( <= )
  | Gt -> icmp ( > )
  | Ge -> icmp ( >= )
  | Feq -> fcmp (fun (x : float) y -> x = y)
  | Fne -> fcmp (fun (x : float) y -> x <> y)
  | Flt -> fcmp (fun (x : float) y -> x < y)
  | Fle -> fcmp (fun (x : float) y -> x <= y)
  | Fgt -> fcmp (fun (x : float) y -> x > y)
  | Fge -> fcmp (fun (x : float) y -> x >= y)

let eval_unop op a =
  let open Ir in
  match op with
  | Neg -> VI (Int64.neg (as_int a))
  | Not -> VI (Int64.lognot (as_int a))
  | Fneg -> VF (-.as_float a)
  | Int_to_float -> VF (Int64.to_float (as_int a))
  | Float_to_int -> VI (Int64.of_float (as_float a))

let math1 name =
  match name with
  | "sqrt" -> Some sqrt
  | "exp" -> Some exp
  | "log" -> Some log
  | "fabs" -> Some abs_float
  | "floor" -> Some floor
  | "ceil" -> Some ceil
  | "sin" -> Some sin
  | "cos" -> Some cos
  | "tan" -> Some tan
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Decode-time operator specialisation (closure engine). Each function
   matches its constructor exactly once, at decode; the returned closure
   performs only the arithmetic. Operand evaluation order mirrors the
   tree engine (right-to-left, as in OCaml application), so type-
   confusion faults surface identically in both engines. *)

let bin_fn (op : Ir.binop) : rtval -> rtval -> rtval =
  let open Ir in
  match op with
  | Add -> fun a b -> let y = as_int b in let x = as_int a in VI (Int64.add x y)
  | Sub -> fun a b -> let y = as_int b in let x = as_int a in VI (Int64.sub x y)
  | Mul -> fun a b -> let y = as_int b in let x = as_int a in VI (Int64.mul x y)
  | Div ->
    fun a b ->
      if as_int b = 0L then error "integer division by zero";
      let y = as_int b in let x = as_int a in VI (Int64.div x y)
  | Rem ->
    fun a b ->
      if as_int b = 0L then error "integer remainder by zero";
      let y = as_int b in let x = as_int a in VI (Int64.rem x y)
  | And -> fun a b -> let y = as_int b in let x = as_int a in VI (Int64.logand x y)
  | Or -> fun a b -> let y = as_int b in let x = as_int a in VI (Int64.logor x y)
  | Xor -> fun a b -> let y = as_int b in let x = as_int a in VI (Int64.logxor x y)
  | Shl ->
    fun a b ->
      let s = Int64.to_int (as_int b) land 63 in
      VI (Int64.shift_left (as_int a) s)
  | Shr ->
    fun a b ->
      let s = Int64.to_int (as_int b) land 63 in
      VI (Int64.shift_right_logical (as_int a) s)
  | Fadd -> fun a b -> let y = as_float b in let x = as_float a in VF (x +. y)
  | Fsub -> fun a b -> let y = as_float b in let x = as_float a in VF (x -. y)
  | Fmul -> fun a b -> let y = as_float b in let x = as_float a in VF (x *. y)
  | Fdiv -> fun a b -> let y = as_float b in let x = as_float a in VF (x /. y)
  | Eq -> fun a b -> let y = as_int b in let x = as_int a in if Int64.equal x y then vtrue else vfalse
  | Ne -> fun a b -> let y = as_int b in let x = as_int a in if Int64.equal x y then vfalse else vtrue
  | Lt -> fun a b -> let y = as_int b in let x = as_int a in if Int64.compare x y < 0 then vtrue else vfalse
  | Le -> fun a b -> let y = as_int b in let x = as_int a in if Int64.compare x y <= 0 then vtrue else vfalse
  | Gt -> fun a b -> let y = as_int b in let x = as_int a in if Int64.compare x y > 0 then vtrue else vfalse
  | Ge -> fun a b -> let y = as_int b in let x = as_int a in if Int64.compare x y >= 0 then vtrue else vfalse
  | Feq -> fun a b -> let y = as_float b in let x = as_float a in if x = y then vtrue else vfalse
  | Fne -> fun a b -> let y = as_float b in let x = as_float a in if x <> y then vtrue else vfalse
  | Flt -> fun a b -> let y = as_float b in let x = as_float a in if x < y then vtrue else vfalse
  | Fle -> fun a b -> let y = as_float b in let x = as_float a in if x <= y then vtrue else vfalse
  | Fgt -> fun a b -> let y = as_float b in let x = as_float a in if x > y then vtrue else vfalse
  | Fge -> fun a b -> let y = as_float b in let x = as_float a in if x >= y then vtrue else vfalse

let un_fn (op : Ir.unop) : rtval -> rtval =
  let open Ir in
  match op with
  | Neg -> fun a -> VI (Int64.neg (as_int a))
  | Not -> fun a -> VI (Int64.lognot (as_int a))
  | Fneg -> fun a -> VF (-.as_float a)
  | Int_to_float -> fun a -> VF (Int64.to_float (as_int a))
  | Float_to_int -> fun a -> VI (Int64.of_float (as_float a))

(* Operator classification for the expression folder: operand and result
   types are a function of the operator alone, so the folder can build
   unboxed int64/float expression chains at decode time. Div and Rem keep
   their own kinds because their zero check sits between the two operand
   unboxings in [bin_fn] and the fault order must not change. *)
type bkind =
  | KI of (int64 -> int64 -> int64)  (* int op int -> int *)
  | KIC of (int64 -> int64 -> bool)  (* int comparison *)
  | KF of (float -> float -> float)  (* float op float -> float *)
  | KFC of (float -> float -> bool)  (* float comparison *)
  | KDiv
  | KRem

let bin_kind (op : Ir.binop) : bkind =
  let open Ir in
  match op with
  | Add -> KI Int64.add
  | Sub -> KI Int64.sub
  | Mul -> KI Int64.mul
  | Div -> KDiv
  | Rem -> KRem
  | And -> KI Int64.logand
  | Or -> KI Int64.logor
  | Xor -> KI Int64.logxor
  | Shl -> KI (fun x y -> Int64.shift_left x (Int64.to_int y land 63))
  | Shr -> KI (fun x y -> Int64.shift_right_logical x (Int64.to_int y land 63))
  | Fadd -> KF ( +. )
  | Fsub -> KF ( -. )
  | Fmul -> KF ( *. )
  | Fdiv -> KF ( /. )
  | Eq -> KIC Int64.equal
  | Ne -> KIC (fun x y -> not (Int64.equal x y))
  | Lt -> KIC (fun x y -> Int64.compare x y < 0)
  | Le -> KIC (fun x y -> Int64.compare x y <= 0)
  | Gt -> KIC (fun x y -> Int64.compare x y > 0)
  | Ge -> KIC (fun x y -> Int64.compare x y >= 0)
  | Feq -> KFC (fun x y -> x = y)
  | Fne -> KFC (fun x y -> x <> y)
  | Flt -> KFC (fun x y -> x < y)
  | Fle -> KFC (fun x y -> x <= y)
  | Fgt -> KFC (fun x y -> x > y)
  | Fge -> KFC (fun x y -> x >= y)

(* Names the run-time resolves before user functions (dispatch_call's
   match order): a call to one of these never binds to a user function
   of the same name. *)
let builtin_names =
  [
    "malloc"; "calloc"; "realloc"; "free";
    "gpu_malloc"; "gpu_free"; "gpu_memcpy_h2d"; "gpu_memcpy_d2h";
    "strlen"; "print_i64"; "print_f64"; "prints"; "pow";
  ]

let is_builtin name =
  List.mem name builtin_names || math1 name <> None
  || Ir.Intrinsic.is_cgcm name

(* ------------------------------------------------------------------ *)
(* Static per-function analysis, shared by the closure decoder and the
   parallel engine's shardability check.

   Per-register use counts over the whole function drive the expression
   folder: a pure def read exactly once can evaluate at its use site
   instead of through the frame. Folding relies on registers being
   single-assignment; the verifier enforces that for compiled modules,
   but hand-written .ir files reach the interpreter unverified, so
   re-check here and fold only when it holds.

   Scalar alloca promotion: an 8-byte-or-larger unregistered alloca
   whose address register is used only as the address of whole-word
   (I64/F64) loads and stores never escapes, never faults, and is
   indistinguishable from a frame slot — so it gets one, skipping the
   memory space entirely. The verifier's def-dominates-use rule means
   the alloca always executes (and zeroes the slot) before any access;
   ticks still count every source instruction, so timing and instruction
   counts are unchanged. Like folding, this needs single-assignment
   registers. *)

type fanalysis = {
  fa_uses : int array;  (* per-register use counts *)
  fa_fold_ok : bool;  (* registers are single-assignment *)
  fa_promo : (int, int) Hashtbl.t;  (* promoted alloca reg -> local slot *)
  fa_nlocals : int;
}

let analyze_func (f : Ir.func) : fanalysis =
  let nregs = max f.Ir.nregs 1 in
  let uses = Array.make nregs 0 in
  let defs = Array.make nregs 0 in
  let single_assign = ref true in
  for i = 0 to min f.Ir.nargs nregs - 1 do
    defs.(i) <- 1
  done;
  Array.iter
    (fun (b : Ir.block) ->
      let see = function
        | Ir.Reg r when r >= 0 && r < nregs -> uses.(r) <- uses.(r) + 1
        | _ -> ()
      in
      List.iter
        (fun i ->
          (match Ir.def_of_instr i with
          | Some d when d >= 0 && d < nregs ->
            defs.(d) <- defs.(d) + 1;
            if defs.(d) > 1 then single_assign := false
          | Some _ -> single_assign := false
          | None -> ());
          List.iter see (Ir.uses_of_instr i))
        b.Ir.instrs;
      List.iter see (Ir.uses_of_term b.Ir.term))
    f.Ir.blocks;
  let fold_ok = !single_assign in
  let promo : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let nlocals = ref 0 in
  if fold_ok then begin
    let cand = Hashtbl.create 8 in
    Array.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun i ->
            match i with
            | Ir.Alloca (d, Ir.Imm_int s, info)
              when (not info.Ir.aregistered) && s >= 8L ->
              Hashtbl.replace cand d ()
            | _ -> ())
          b.Ir.instrs)
      f.Ir.blocks;
    let disq = function Ir.Reg r -> Hashtbl.remove cand r | _ -> () in
    Array.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun i ->
            match i with
            | Ir.Load (_, (Ir.I64 | Ir.F64), Ir.Reg _) -> ()
            | Ir.Store ((Ir.I64 | Ir.F64), Ir.Reg _, v) -> disq v
            | _ -> List.iter disq (Ir.uses_of_instr i))
          b.Ir.instrs;
        List.iter disq (Ir.uses_of_term b.Ir.term))
      f.Ir.blocks;
    Array.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun i ->
            match i with
            | Ir.Alloca (d, _, _) when Hashtbl.mem cand d ->
              Hashtbl.replace promo d !nlocals;
              incr nlocals
            | _ -> ())
          b.Ir.instrs)
      f.Ir.blocks
  end;
  { fa_uses = uses; fa_fold_ok = fold_ok; fa_promo = promo; fa_nlocals = !nlocals }

(* ------------------------------------------------------------------ *)
(* Parallel-engine shardability.

   A kernel may execute across domains only when every iteration's work
   is confined to shard-private state plus race-free shared state:
   frame registers, promoted alloca slots, `Bytes` writes to disjoint
   allocation-unit bytes (the DOALL guarantee), the shard's own output
   buffer, and pure resolution of already-resident module globals.
   Anything that would call into the run-time, the driver, or the host
   allocator mid-kernel — none of which are domain-safe — disqualifies
   the kernel, and its launches take the sequential closure path
   instead. *)

(* Builtins whose kernel-side execution touches only shard-private or
   read-only state: pure math, proportional-work string length, and
   printing into the shard's buffer. *)
let par_safe_builtin name =
  math1 name <> None
  || List.mem name [ "pow"; "strlen"; "print_i64"; "print_f64"; "prints" ]

(* Decide, once per kernel, whether its launches may shard, and collect
   the transitive set of module globals it can reference (each launch
   additionally checks that all of them are device-resident, so shard-
   side resolution never has to allocate). Disqualifiers: any alloca the
   decoder cannot promote to a frame slot (a real alloca mutates the
   shared device memspace), nested launches, and calls to anything but
   par-safe builtins or transitively-shardable user CPU functions. *)
let kernel_shardable ~funcs (f : Ir.func) : string list option =
  let exception Not_par in
  let visited = Hashtbl.create 8 in
  let globals = Hashtbl.create 8 in
  let rec scan (fn : Ir.func) =
    if not (Hashtbl.mem visited fn.Ir.fname) then begin
      Hashtbl.replace visited fn.Ir.fname ();
      let a = analyze_func fn in
      let value = function
        | Ir.Global g -> Hashtbl.replace globals g ()
        | _ -> ()
      in
      Array.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun i ->
              (match i with
              | Ir.Alloca (d, _, _) ->
                if not (Hashtbl.mem a.fa_promo d) then raise Not_par
              | Ir.Launch _ -> raise Not_par
              | Ir.Call (_, name, _) ->
                if par_safe_builtin name then ()
                else if is_builtin name then raise Not_par
                else (
                  match Hashtbl.find_opt funcs name with
                  | Some g when g.Ir.fkind = Ir.Cpu -> scan g
                  | _ -> raise Not_par)
              | _ -> ());
              List.iter value (Ir.uses_of_instr i))
            b.Ir.instrs;
          List.iter value (Ir.uses_of_term b.Ir.term))
        fn.Ir.blocks
    end
  in
  match scan f with
  | () -> Some (Hashtbl.fold (fun g () acc -> g :: acc) globals [])
  | exception Not_par -> None

let par_kernel_info mc (f : Ir.func) : string list option =
  match Hashtbl.find_opt mc.par_cache f.Ir.fname with
  | Some r -> r
  | None ->
    let r = kernel_shardable ~funcs:mc.funcs f in
    Hashtbl.replace mc.par_cache f.Ir.fname r;
    r

(* Standalone entry point for the serve batching layer: a module whose
   every kernel passes the shardability scan has launches with
   statically-known shapes (promoted allocas only, no nested launches,
   par-safe callees), so cross-request episodes over it may be fused. *)
let module_shardable (m : Ir.modul) : bool =
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.Ir.fname f) m.Ir.funcs;
  List.for_all
    (fun (f : Ir.func) ->
      f.Ir.fkind <> Ir.Kernel || kernel_shardable ~funcs f <> None)
    m.Ir.funcs

(* Inspector-executor access tracking, shared by both engines. *)
let track_load mc sp tbl addr =
  let base, _ = Memspace.unit_bounds sp addr in
  if base < mc.track_threshold && not (Hashtbl.mem tbl base) then
    Hashtbl.replace tbl base false

let track_store mc sp tbl addr =
  let base, _ = Memspace.unit_bounds sp addr in
  if base < mc.track_threshold then Hashtbl.replace tbl base true

(* Handle-based variants (closure engine): the access already resolved
   its unit, so tracking reuses the handle's base instead of a second
   index lookup. *)
let track_load_h mc tbl base =
  if base < mc.track_threshold && not (Hashtbl.mem tbl base) then
    Hashtbl.replace tbl base false

let track_store_h mc tbl base =
  if base < mc.track_threshold then Hashtbl.replace tbl base true

(* ------------------------------------------------------------------ *)
(* Execution: the two engines plus the shared call/launch machinery     *)

let rec exec_func mc (f : Ir.func) (args : rtval array) : rtval option =
  if Array.length args <> f.Ir.nargs then
    error "%s called with %d args, expected %d" f.Ir.fname (Array.length args)
      f.Ir.nargs;
  let caller_fn = mc.cur_fn in
  mc.cur_fn <- f.Ir.fname;
  let frame = Array.make (max f.Ir.nregs 1) (VI 0L) in
  Array.blit args 0 frame 0 (Array.length args);
  let frame_allocas = ref [] in
  let registered = ref [] in
  let sp = space mc in
  let eval = function
    | Ir.Reg r -> frame.(r)
    | Ir.Imm_int i -> VI i
    | Ir.Imm_float x -> VF x
    | Ir.Global g -> VI (Int64.of_int (global_addr mc g))
  in
  let finish () =
    (* Stack frame unwinding: expire declareAlloca registrations, free the
       frame's allocation units. *)
    List.iter
      (fun base ->
        if mc.mode = Split then mc.bk.Mem_backend.bk_expire_alloca ~base)
      !registered;
    List.iter (fun base -> Memspace.free_local sp base) !frame_allocas
  in
  let rec run_block b =
    let block = f.Ir.blocks.(b) in
    List.iter exec_instr block.Ir.instrs;
    match block.Ir.term with
    | Ir.Br b' ->
      tick mc;
      run_block b'
    | Ir.Cbr (v, b1, b2) ->
      tick mc;
      if as_int (eval v) <> 0L then run_block b1 else run_block b2
    | Ir.Ret v ->
      tick mc;
      Option.map eval v
  and exec_instr i =
    tick mc;
    match i with
    | Ir.Binop (d, op, a, b) -> frame.(d) <- eval_binop op (eval a) (eval b)
    | Ir.Unop (d, op, a) -> frame.(d) <- eval_unop op (eval a)
    | Ir.Load (d, ty, a) -> begin
      let addr = Int64.to_int (as_int (eval a)) in
      (match mc.track_units with
      | Some tbl -> track_load mc sp tbl addr
      | None -> ());
      (match mc.san with
      | Some s ->
        Sanitizer.on_load s ~addr
          ~len:(match ty with Ir.I8 -> 1 | _ -> 8)
          ~fn:mc.cur_fn ~kernel:mc.in_kernel
      | None -> ());
      (match mc.paged with
      | Some pg ->
        paged_touch mc pg ~addr ~len:(match ty with Ir.I8 -> 1 | _ -> 8)
      | None -> ());
      frame.(d) <-
        (match ty with
        | Ir.I8 -> VI (Int64.of_int (Memspace.load_u8 sp addr))
        | Ir.I64 -> VI (Memspace.load_i64 sp addr)
        | Ir.F64 -> VF (Memspace.load_f64 sp addr))
    end
    | Ir.Store (ty, a, v) -> begin
      let addr = Int64.to_int (as_int (eval a)) in
      (match mc.track_units with
      | Some tbl -> track_store mc sp tbl addr
      | None -> ());
      (match mc.san with
      | Some s ->
        Sanitizer.on_store s ~addr
          ~len:(match ty with Ir.I8 -> 1 | _ -> 8)
          ~fn:mc.cur_fn ~kernel:mc.in_kernel
      | None -> ());
      (match mc.paged with
      | Some pg ->
        paged_touch mc pg ~addr ~len:(match ty with Ir.I8 -> 1 | _ -> 8)
      | None -> ());
      match ty with
      | Ir.I8 -> Memspace.store_u8 sp addr (Int64.to_int (as_int (eval v)) land 0xff)
      | Ir.I64 -> Memspace.store_i64 sp addr (as_int (eval v))
      | Ir.F64 -> Memspace.store_f64 sp addr (as_float (eval v))
    end
    | Ir.Alloca (d, size, info) -> begin
      let size = Int64.to_int (as_int (eval size)) in
      let base = Memspace.alloc ~tag:info.Ir.aname sp size in
      frame_allocas := base :: !frame_allocas;
      frame.(d) <- VI (Int64.of_int base);
      if info.Ir.aregistered && (not mc.in_kernel) && mc.mode = Split then begin
        flush_time mc;
        mc.now <- mc.bk.Mem_backend.bk_declare_alloca ~now:mc.now ~base ~size;
        registered := base :: !registered
      end
    end
    | Ir.Call (d, name, args) -> begin
      let argv = List.map eval args in
      let res = dispatch_call mc name argv in
      match d with
      | Some d -> frame.(d) <- (match res with Some v -> v | None -> VI 0L)
      | None -> ()
    end
    | Ir.Launch { kernel; trip; args } ->
      exec_launch mc ~kernel ~trip:(Int64.to_int (as_int (eval trip)))
        ~args:(List.map eval args)
  in
  let res =
    try run_block 0
    with e ->
      finish ();
      mc.cur_fn <- caller_fn;
      raise e
  in
  finish ();
  mc.cur_fn <- caller_fn;
  res

and dispatch_call mc name argv : rtval option =
  match (name, argv) with
  | ("malloc" | "calloc"), [ size ] ->
    (* our memory model zero-initialises, so calloc = malloc *)
    let size = Int64.to_int (as_int size) in
    if mc.in_kernel then error "malloc on the device";
    let base = Memspace.alloc ~tag:"heap" mc.host size in
    flush_time mc;
    mc.now <- mc.now +. 100.0;
    if mc.mode = Split then mc.bk.Mem_backend.bk_register_heap ~base ~size;
    Some (VI (Int64.of_int base))
  | "realloc", [ p; size ] ->
    (* the run-time wrapper: the old unit leaves the allocation map, the
       new one enters it (Section 3.1) *)
    if mc.in_kernel then error "realloc on the device";
    let old_base = Int64.to_int (as_int p) in
    let size = Int64.to_int (as_int size) in
    let base = Memspace.alloc ~tag:"heap" mc.host size in
    flush_time mc;
    mc.now <- mc.now +. 150.0;
    if old_base <> 0 then begin
      let _, old_size = Memspace.unit_bounds mc.host old_base in
      Memspace.blit ~src:mc.host ~src_addr:old_base ~dst:mc.host
        ~dst_addr:base ~len:(min old_size size);
      if mc.mode = Split then
        mc.now <- mc.bk.Mem_backend.bk_unregister_heap ~now:mc.now ~base:old_base;
      Memspace.free mc.host old_base
    end;
    if mc.mode = Split then mc.bk.Mem_backend.bk_register_heap ~base ~size;
    Some (VI (Int64.of_int base))
  | "free", [ p ] ->
    let base = Int64.to_int (as_int p) in
    if mc.mode = Split then begin
      flush_time mc;
      mc.now <- mc.bk.Mem_backend.bk_unregister_heap ~now:mc.now ~base
    end;
    Memspace.free mc.host base;
    None
  (* ---- explicit driver API (manual management, Listing 1 style) ----
     Under the paged backend (like Unified mode) there is no separate
     device memory: gpu_malloc hands out host storage, the copies are
     host-side blits, and the data pays page faults when kernels touch
     it — manual staging buys nothing, which is the point of managed
     memory. *)
  | "gpu_malloc", [ size ] ->
    let size = Int64.to_int (as_int size) in
    if mc.in_kernel then error "gpu_malloc on the device";
    flush_time mc;
    if mc.mode = Split && mc.paged == None then begin
      let d, now = Device.mem_alloc mc.dev ~now:mc.now size in
      mc.now <- now;
      Some (VI (Int64.of_int d))
    end
    else
      (* unified memory: device allocations are just host allocations *)
      Some (VI (Int64.of_int (Memspace.alloc ~tag:"gpu" mc.host size)))
  | "gpu_free", [ p ] ->
    let d = Int64.to_int (as_int p) in
    flush_time mc;
    if mc.mode = Split && mc.paged == None then
      mc.now <- Device.mem_free mc.dev ~now:mc.now d
    else Memspace.free mc.host d;
    None
  | "gpu_memcpy_h2d", [ dst; src; len ] ->
    let dst = Int64.to_int (as_int dst)
    and src = Int64.to_int (as_int src)
    and len = Int64.to_int (as_int len) in
    flush_time mc;
    if mc.mode = Split && mc.paged == None then
      mc.now <-
        Device.memcpy_h_to_d mc.dev ~now:mc.now ~host:mc.host ~host_addr:src
          ~dev_addr:dst ~len
    else begin
      (match mc.paged with
      | Some pg ->
        paged_touch mc pg ~addr:src ~len;
        paged_touch mc pg ~addr:dst ~len
      | None -> ());
      Memspace.blit ~src:mc.host ~src_addr:src ~dst:mc.host ~dst_addr:dst ~len
    end;
    None
  | "gpu_memcpy_d2h", [ dst; src; len ] ->
    let dst = Int64.to_int (as_int dst)
    and src = Int64.to_int (as_int src)
    and len = Int64.to_int (as_int len) in
    flush_time mc;
    if mc.mode = Split && mc.paged == None then
      mc.now <-
        Device.memcpy_d_to_h mc.dev ~now:mc.now ~host:mc.host ~host_addr:dst
          ~dev_addr:src ~len
    else begin
      (match mc.paged with
      | Some pg ->
        paged_touch mc pg ~addr:src ~len;
        paged_touch mc pg ~addr:dst ~len
      | None -> ());
      Memspace.blit ~src:mc.host ~src_addr:src ~dst:mc.host ~dst_addr:dst ~len
    end;
    None
  | "strlen", [ p ] ->
    let addr = Int64.to_int (as_int p) in
    let s = Memspace.load_string (space mc) addr in
    (match mc.paged with
    | Some pg -> paged_touch mc pg ~addr ~len:(String.length s + 1)
    | None -> ());
    (* charge proportional work *)
    for _ = 1 to String.length s do tick mc done;
    Some (VI (Int64.of_int (String.length s)))
  | "print_i64", [ v ] ->
    Buffer.add_string mc.out (Int64.to_string (as_int v));
    Buffer.add_char mc.out '\n';
    None
  | "print_f64", [ v ] ->
    Buffer.add_string mc.out (Printf.sprintf "%.6g" (as_float v));
    Buffer.add_char mc.out '\n';
    None
  | "prints", [ p ] ->
    let addr = Int64.to_int (as_int p) in
    let s = Memspace.load_string (space mc) addr in
    (match mc.paged with
    | Some pg -> paged_touch mc pg ~addr ~len:(String.length s + 1)
    | None -> ());
    Buffer.add_string mc.out s;
    Buffer.add_char mc.out '\n';
    None
  | "pow", [ a; b ] -> Some (VF (Float.pow (as_float a) (as_float b)))
  | _ when math1 name <> None -> (
    match argv with
    | [ a ] -> Some (VF ((Option.get (math1 name)) (as_float a)))
    | _ -> error "%s expects one argument" name)
  (* ---- the CGCM run-time library ---- *)
  | _ when Ir.Intrinsic.is_cgcm name -> dispatch_cgcm mc name argv
  | _ -> (
    match Hashtbl.find_opt mc.funcs name with
    | Some f ->
      if f.Ir.fkind = Ir.Kernel then error "direct call to kernel %s" name;
      call_func mc f (Array.of_list argv)
    | None -> error "call to unknown function '%s'" name)

and dispatch_cgcm mc name argv : rtval option =
  let ptr_of v = Int64.to_int (as_int v) in
  match (mc.mode, name, argv) with
  (* Unified mode: the runtime is an identity — used to differentially
     test that the compiler transformations preserve semantics. The
     inspector-executor baseline runs unmanaged modules, but treat stray
     cgcm calls the same way. *)
  | (Unified | Inspector_executor), ("cgcm.map" | "cgcm.map_array"), [ p ] ->
    Some p
  | (Unified | Inspector_executor), _, _ -> None
  (* Split mode routes through the selected memory backend: the explicit
     instance is the CGCM run-time (copies, refcounts, epochs); the
     paged instance is an identity/no-op surface — the hardware manages
     communication, so the same compiled module runs under both and the
     A/B isolates the management cost. *)
  | Split, "cgcm.map", [ p ] ->
    flush_time mc;
    let d, now = mc.bk.Mem_backend.bk_map ~now:mc.now (ptr_of p) in
    mc.now <- now;
    Some (VI (Int64.of_int d))
  | Split, "cgcm.unmap", [ p ] ->
    flush_time mc;
    mc.now <- mc.bk.Mem_backend.bk_unmap ~now:mc.now (ptr_of p);
    None
  | Split, "cgcm.release", [ p ] ->
    flush_time mc;
    mc.now <- mc.bk.Mem_backend.bk_release ~now:mc.now (ptr_of p);
    None
  | Split, "cgcm.map_array", [ p ] ->
    flush_time mc;
    let d, now = mc.bk.Mem_backend.bk_map_array ~now:mc.now (ptr_of p) in
    mc.now <- now;
    Some (VI (Int64.of_int d))
  | Split, "cgcm.unmap_array", [ p ] ->
    flush_time mc;
    mc.now <- mc.bk.Mem_backend.bk_unmap_array ~now:mc.now (ptr_of p);
    None
  | Split, "cgcm.release_array", [ p ] ->
    flush_time mc;
    mc.now <- mc.bk.Mem_backend.bk_release_array ~now:mc.now (ptr_of p);
    None
  | Split, _, _ -> error "unknown cgcm intrinsic '%s'" name

and exec_launch mc ~kernel ~trip ~args =
  let f =
    match Hashtbl.find_opt mc.funcs kernel with
    | Some f when f.Ir.fkind = Ir.Kernel -> f
    | _ -> error "launch of unknown kernel %s" kernel
  in
  if trip > 0 then begin
    flush_time mc;
    if mc.mode = Split then mc.bk.Mem_backend.bk_bump_epoch ();
    (match mc.san with
    | Some s ->
      let rw =
        match Hashtbl.find_opt mc.rw_cache kernel with
        | Some rw -> rw
        | None ->
          let rw = Modref.kernel_rw f in
          Hashtbl.replace mc.rw_cache kernel rw;
          rw
      in
      Sanitizer.on_launch s ~kernel ~reads:rw.Modref.reads
        ~writes:rw.Modref.writes ~unknown:rw.Modref.rw_unknown
    | None -> ());
    let saved_in_kernel = mc.in_kernel in
    let insts_before = mc.kernel_insts in
    let tracking =
      if mc.mode = Inspector_executor then begin
        let tbl = Hashtbl.create 16 in
        mc.track_units <- Some tbl;
        Memspace.pool_flush mc.host;
        mc.track_threshold <- mc.host.Memspace.next;
        Some tbl
      end
      else None
    in
    mc.in_kernel <- true;
    (* Resolve the kernel body once, not once per thread. *)
    let invoke =
      match mc.engine with
      | Tree_walk -> fun args -> ignore (exec_func mc f args)
      | Closures | Parallel ->
        let cf = decode mc f in
        fun args -> ignore (exec_compiled mc cf args)
    in
    (* The Parallel engine shards a launch across the domain pool when
       the launch is worth it (trip over the cost-model threshold), the
       kernel is statically shardable, and every global it can touch is
       already device-resident (so shard-side resolution is pure). A
       launch that fails any test takes the sequential path — which is
       why jobs = 1 is exactly the closure engine. *)
    let par =
      mc.engine = Parallel && mc.jobs > 1 && mc.mode = Split
      && mc.paged == None
      && (not saved_in_kernel)
      && Option.is_none mc.shard_log
      && trip >= mc.cost.Cost_model.par_min_trip
      &&
      match par_kernel_info mc f with
      | None -> false
      | Some gs -> List.for_all (Hashtbl.mem mc.dev.Device.globals) gs
    in
    (try
       if par then exec_launch_parallel mc f ~trip ~args
       else
         for tid = 0 to trip - 1 do
           invoke (Array.of_list (VI (Int64.of_int tid) :: args))
         done
     with e ->
       mc.in_kernel <- saved_in_kernel;
       mc.track_units <- None;
       raise e);
    mc.in_kernel <- saved_in_kernel;
    mc.track_units <- None;
    let insts = mc.kernel_insts - insts_before in
    (* Graceful degradation: if the driver refuses the launch, the kernel
       body (already executed functionally against device memory — the
       data outcome is identical) is re-attributed to the CPU timeline as
       synchronous CPU work: the instructions move from the kernel to the
       CPU account, the clock advances at CPU speed, and the device
       timeline, launch stats and trace stay untouched. *)
    let cpu_fallback () =
      Runtime.note_cpu_fallback mc.rt;
      mc.kernel_insts <- mc.kernel_insts - insts;
      mc.cpu_insts <- mc.cpu_insts + insts;
      let start = mc.now in
      mc.now <-
        mc.now +. (float_of_int insts *. mc.cost.Cost_model.cpu_cycle);
      Trace.record mc.dev.Device.trace Trace.Kernel ~start ~finish:mc.now
        ~label:(kernel ^ "+cpu-fallback") ~bytes:0
    in
    match mc.mode with
    | Split ->
      (match Device.launch mc.dev ~now:mc.now ~name:kernel ~insts ~trip with
      | now -> mc.now <- now
      | exception Errors.Device_error (Errors.Launch_failed _) ->
        cpu_fallback ());
      (* Paged backend: the kernel's demand faults extend the device's
         busy window once the driver work is accounted — even on CPU
         fallback the pages migrated and the cost was paid. *)
      (match mc.paged with
      | Some pg -> Paged.flush_launch pg
      | None -> ())
    | Unified -> ()
    | Inspector_executor ->
      (* 1. sequential inspection on the CPU: replay the loop's address
            slice (a fraction of the kernel's dynamic instructions) *)
      let inspect =
        float_of_int insts *. mc.inspector_fraction
        *. mc.cost.Cost_model.cpu_cycle
      in
      mc.now <- mc.now +. inspect;
      mc.cpu_insts <-
        mc.cpu_insts + int_of_float (float_of_int insts *. mc.inspector_fraction);
      (* 2. oracle transfers: one byte per accessed allocation unit,
            batched into a single DMA each way (the scheduler is an
            oracle, so it gathers perfectly) *)
      let st = Device.stats mc.dev in
      let tbl = Option.get tracking in
      let read_units = Hashtbl.length tbl in
      let written_units =
        Hashtbl.fold (fun _ w n -> if w then n + 1 else n) tbl 0
      in
      if read_units > 0 then begin
        let dur = Cost_model.transfer_cycles mc.cost read_units in
        Trace.record mc.dev.Device.trace Trace.Htod ~start:mc.now
          ~finish:(mc.now +. dur) ~label:"ie-in" ~bytes:read_units;
        mc.now <- mc.now +. dur;
        st.Device.comm_cycles <- st.Device.comm_cycles +. dur;
        st.Device.htod_bytes <- st.Device.htod_bytes + read_units;
        st.Device.htod_count <- st.Device.htod_count + 1
      end;
      if written_units > 0 then begin
        let dur = Cost_model.transfer_cycles mc.cost written_units in
        Trace.record mc.dev.Device.trace Trace.Dtoh ~start:mc.now
          ~finish:(mc.now +. dur) ~label:"ie-out" ~bytes:written_units;
        mc.now <- mc.now +. dur;
        st.Device.comm_cycles <- st.Device.comm_cycles +. dur;
        st.Device.dtoh_bytes <- st.Device.dtoh_bytes + written_units;
        st.Device.dtoh_count <- st.Device.dtoh_count + 1
      end;
      (* 3. the kernel itself, fully synchronous (cyclic schedule) *)
      (match Device.launch mc.dev ~now:mc.now ~name:kernel ~insts ~trip with
      | now -> mc.now <- now
      | exception Errors.Device_error (Errors.Launch_failed _) ->
        cpu_fallback ());
      mc.now <- Device.sync mc.dev ~now:mc.now
  end

(* Engine dispatch for an internal (non-kernel) function call. The
   Parallel engine is the closure engine everywhere except inside
   exec_launch. *)
and call_func mc (f : Ir.func) (args : rtval array) : rtval option =
  match mc.engine with
  | Tree_walk -> exec_func mc f args
  | Closures | Parallel -> exec_compiled mc (decode mc f) args

(* ------------------------------------------------------------------ *)
(* The parallel engine: shard a DOALL launch across the domain pool     *)

(* Grow the persistent shard-machine array to [n]. A shard machine
   shares the module, memory spaces, device, cost model and sanitizer
   with the main machine, but owns its decoded-closure tables (per-site
   handle and global-address caches must not be shared across domains),
   its output buffer, its profile counts and its dirty log. Its mutable
   counters are reset at every launch. *)
and ensure_shards mc n =
  let cur = Array.length mc.shards in
  if cur < n then
    mc.shards <-
      Array.init n (fun i ->
          if i < cur then mc.shards.(i)
          else
            {
              mc with
              decoded = Hashtbl.create 32;
              out = Buffer.create 256;
              profile_counts = Hashtbl.create 16;
              shard_log = Some (Memspace.log_create ());
              shards = [||];
            })

and merge_profile mc smc =
  Hashtbl.iter
    (fun k r ->
      match Hashtbl.find_opt mc.profile_counts k with
      | Some r0 -> r0 := !r0 + !r
      | None -> Hashtbl.replace mc.profile_counts k (ref !r))
    smc.profile_counts;
  Hashtbl.reset smc.profile_counts

(* Execute one launch across min(jobs, trip) domains. Called from
   exec_launch with in_kernel already set and the epoch bumped; device-
   timeline accounting (Device.launch) stays in exec_launch, driven by
   the merged instruction count, so gpusim sees exactly the sequential
   schedule.

   Determinism argument: iterations are DOALL (disjoint allocation-unit
   bytes), chunks are contiguous and assigned in increasing shard order,
   and each shard's work is a pure function of its chunk plus pre-launch
   state. The join then merges all order-sensitive state in shard order:
   output buffers concatenate to the sequential print order, dirty logs
   replay through the span accumulator in iteration order, and
   instruction counts sum associatively. Shared hot-path state is either
   atomic (the sanitizer's check counter), byte-disjoint by the DOALL
   guarantee (Bytes writes, sanitizer version maps), or validated-
   before-use caches whose races are benign (memspace last-block,
   sanitizer claim memos). Everything else the shards touch is
   shard-private, so the result is bit-identical to the sequential
   engine. *)
and exec_launch_parallel mc (f : Ir.func) ~trip ~args =
  let nshards = min mc.jobs trip in
  ensure_shards mc nshards;
  let args = Array.of_list args in
  let nargs = Array.length args in
  (* contiguous balanced chunks: shard s owns [lo s, lo (s+1)) *)
  let q = trip / nshards and r = trip mod nshards in
  let chunk_lo s = (s * q) + min s r in
  let failures = Array.make nshards None in
  Pool.run ~jobs:nshards nshards (fun s ->
      let smc = mc.shards.(s) in
      smc.in_kernel <- true;
      smc.fuel <- mc.fuel;
      smc.kernel_insts <- 0;
      smc.cur_fn <- mc.cur_fn;
      Buffer.clear smc.out;
      (match smc.shard_log with Some l -> Memspace.log_clear l | None -> ());
      try
        let cf = decode smc f in
        let hi = chunk_lo (s + 1) in
        for tid = chunk_lo s to hi - 1 do
          let argv = Array.make (nargs + 1) (VI (Int64.of_int tid)) in
          Array.blit args 0 argv 1 nargs;
          ignore (exec_compiled smc cf argv)
        done
      with e -> failures.(s) <- Some e);
  (* Join barrier: merge shard state in shard (= iteration) order. On a
     shard failure, merge up to and including the failing shard — the
     sequential engine would have applied everything before the faulting
     iteration — and re-raise its exception; later chunks' memory writes
     have already happened, but state past a fault is unspecified (as on
     a real GPU). *)
  let total = ref 0 in
  let failure = ref None in
  let s = ref 0 in
  while !failure = None && !s < nshards do
    let smc = mc.shards.(!s) in
    (match smc.shard_log with Some l -> Memspace.log_replay l | None -> ());
    Buffer.add_buffer mc.out smc.out;
    Buffer.clear smc.out;
    total := !total + smc.kernel_insts;
    if mc.profile_on then merge_profile mc smc;
    failure := failures.(!s);
    incr s
  done;
  mc.kernel_insts <- mc.kernel_insts + !total;
  mc.fuel <- mc.fuel - !total;
  (match !failure with Some e -> raise e | None -> ());
  if mc.fuel <= 0 then error "instruction budget exhausted (infinite loop?)"

(* ------------------------------------------------------------------ *)
(* The closure engine: decode once, dispatch via closure call           *)

and decode mc (f : Ir.func) : cfunc =
  match Hashtbl.find_opt mc.decoded f.Ir.fname with
  | Some cf -> cf
  | None ->
    (* The use-count / folding / alloca-promotion analysis is shared with
       the parallel engine's shardability check (analyze_func above). *)
    let a = analyze_func f in
    let uses = a.fa_uses and fold_ok = a.fa_fold_ok and promo = a.fa_promo in
    let cf =
      {
        cfn = f;
        cblocks = Array.map (decode_block mc ~uses ~fold_ok ~promo) f.Ir.blocks;
        nlocals = a.fa_nlocals;
      }
    in
    Hashtbl.replace mc.decoded f.Ir.fname cf;
    cf

and decode_block mc ~uses ~fold_ok ~promo (b : Ir.block) : cblock =
  (* Call-like instructions bound a tick run: they can flush the clock,
     print, or recurse, so counters must be exact when they execute.
     Everything else is invisible to the counters. *)
  let call_like = function
    | Ir.Call _ | Ir.Launch _ -> true
    | Ir.Alloca (_, _, info) -> info.Ir.aregistered
    | _ -> false
  in
  let instrs = Array.of_list b.Ir.instrs in
  let n = Array.length instrs in
  (* The folder: a Binop/Unop whose single use sits later in the same
     run (no call-like instruction strictly between def and use; the
     block terminator belongs to the trailing run) is not emitted — its
     consumer rebuilds the expression inline. Folded expressions read
     only registers (single-assignment, so stable) and global addresses
     (fixed after first resolution), so evaluating them at the use site
     is observationally identical on non-faulting programs; staying
     inside one run keeps prints and clock flushes out of the def-to-use
     window. Ticks count source instructions, folded or not. *)
  let folded = Array.make n false in
  if fold_ok then begin
    let uses_reg r vs =
      List.exists (function Ir.Reg x -> x = r | _ -> false) vs
    in
    for idx = 0 to n - 1 do
      match instrs.(idx) with
      | (Ir.Binop (d, _, _, _) | Ir.Unop (d, _, _))
        when d < Array.length uses && uses.(d) = 1 ->
        let rec scan j =
          if j >= n then uses_reg d (Ir.uses_of_term b.Ir.term)
          else if uses_reg d (Ir.uses_of_instr instrs.(j)) then true
          else if call_like instrs.(j) then false
          else scan (j + 1)
        in
        folded.(idx) <- scan (idx + 1)
      | _ -> ()
    done
  end;
  let avail : (int, Ir.instr) Hashtbl.t = Hashtbl.create 8 in
  let runs = ref [] and cur = ref [] and nticks = ref 0 in
  let close extra =
    runs :=
      { ticks = !nticks + extra; ops = Array.of_list (List.rev !cur) } :: !runs;
    cur := [];
    nticks := 0
  in
  Array.iteri
    (fun idx i ->
      incr nticks;
      if folded.(idx) then (
        match Ir.def_of_instr i with
        | Some d -> Hashtbl.replace avail d i
        | None -> ())
      else cur := decode_instr mc avail promo i :: !cur;
      if call_like i then close 0)
    instrs;
  (* the trailing run also accounts the terminator's tick *)
  close 1;
  { runs = Array.of_list (List.rev !runs); ct = decode_term mc avail b.Ir.term }

(* Cached global-address resolution. Host addresses are fixed after
   load_globals. Device addresses are allocated by the driver on first
   touch (which charges alloc_overhead, exactly once — the first call
   here is the first touch, as in the tree engine) and stay put while no
   global is evicted, so the device side caches the address together
   with the globals generation it was resolved under: an eviction bumps
   [Device.globals_gen] and invalidates every cached address at the cost
   of one integer compare per access. *)
and gaddr mc g : ctx -> int =
  let haddr = ref (-1) and daddr = ref (-1) and dgen = ref (-1) in
  fun _ ->
    if mc.in_kernel && mc.mode = Split && mc.paged == None then begin
      let a = !daddr in
      if a >= 0 && !dgen = mc.dev.Device.globals_gen then a
      else begin
        let a = global_addr mc g in
        daddr := a;
        dgen := mc.dev.Device.globals_gen;
        a
      end
    end
    else begin
      let a = !haddr in
      if a >= 0 then a
      else begin
        let a = global_addr mc g in
        haddr := a;
        a
      end
    end

(* ---- Typed operand folding --------------------------------------- *)
(* fold_* resolve an operand in the representation its consumer wants,
   looking through the avail table to inline folded single-use defs.
   expr_* rebuild a folded defining instruction as a typed expression.
   A type mismatch (e.g. a float expression consumed as an integer)
   evaluates the expression and then faults with the same message the
   tree engine's as_int/as_float would produce. *)

and fold_i mc avail (v : Ir.value) : ctx -> int64 =
  match v with
  | Ir.Reg r -> (
    match Hashtbl.find_opt avail r with
    | Some i -> expr_i mc avail i
    | None -> fun c -> as_int (Array.unsafe_get c.fr r))
  | Ir.Imm_int i -> fun _ -> i
  | Ir.Imm_float _ ->
    fun _ -> error "type confusion: float used as integer/pointer"
  | Ir.Global g ->
    let ga = gaddr mc g in
    fun c -> Int64.of_int (ga c)

and fold_f mc avail (v : Ir.value) : ctx -> float =
  match v with
  | Ir.Reg r -> (
    match Hashtbl.find_opt avail r with
    | Some i -> expr_f mc avail i
    | None -> fun c -> as_float (Array.unsafe_get c.fr r))
  | Ir.Imm_float x -> fun _ -> x
  | Ir.Imm_int _ | Ir.Global _ ->
    fun _ -> error "type confusion: integer used as float"

(* Native-int variant for address arithmetic. Add/Sub/Mul chains compute
   in native ints: truncation to 63 bits commutes with +,-,* (modular
   arithmetic), and the tree engine truncates the final int64 with
   Int64.to_int anyway, so the resulting address is bit-identical. *)
and fold_addr mc avail (v : Ir.value) : ctx -> int =
  match v with
  | Ir.Reg r -> (
    match Hashtbl.find_opt avail r with
    | Some i -> expr_addr mc avail i
    | None -> fun c -> Int64.to_int (as_int (Array.unsafe_get c.fr r)))
  | Ir.Imm_int i ->
    let a = Int64.to_int i in
    fun _ -> a
  | Ir.Imm_float _ ->
    fun _ -> error "type confusion: float used as integer/pointer"
  | Ir.Global g -> gaddr mc g

(* Boxed variant, for call/launch arguments and returns. *)
and fold_rt mc avail (v : Ir.value) : ctx -> rtval =
  match v with
  | Ir.Reg r -> (
    match Hashtbl.find_opt avail r with
    | Some i -> expr_rt mc avail i
    | None -> fun c -> Array.unsafe_get c.fr r)
  | _ -> cval mc v

and expr_i mc avail (i : Ir.instr) : ctx -> int64 =
  match i with
  | Ir.Binop (_, op, a, b) -> (
    match bin_kind op with
    | KI f ->
      let fb = fold_i mc avail b in
      let fa = fold_i mc avail a in
      fun c ->
        let y = fb c in
        let x = fa c in
        f x y
    | KDiv ->
      let fb = fold_i mc avail b in
      let fa = fold_i mc avail a in
      fun c ->
        let y = fb c in
        if y = 0L then error "integer division by zero";
        let x = fa c in
        Int64.div x y
    | KRem ->
      let fb = fold_i mc avail b in
      let fa = fold_i mc avail a in
      fun c ->
        let y = fb c in
        if y = 0L then error "integer remainder by zero";
        let x = fa c in
        Int64.rem x y
    | KIC f ->
      let fb = fold_i mc avail b in
      let fa = fold_i mc avail a in
      fun c ->
        let y = fb c in
        let x = fa c in
        if f x y then 1L else 0L
    | KFC f ->
      let fb = fold_f mc avail b in
      let fa = fold_f mc avail a in
      fun c ->
        let y = fb c in
        let x = fa c in
        if f x y then 1L else 0L
    | KF _ ->
      let ff = expr_f mc avail i in
      fun c -> as_int (VF (ff c)))
  | Ir.Unop (_, op, a) -> (
    match op with
    | Ir.Neg ->
      let fa = fold_i mc avail a in
      fun c -> Int64.neg (fa c)
    | Ir.Not ->
      let fa = fold_i mc avail a in
      fun c -> Int64.lognot (fa c)
    | Ir.Float_to_int ->
      let fa = fold_f mc avail a in
      fun c -> Int64.of_float (fa c)
    | Ir.Fneg | Ir.Int_to_float ->
      let ff = expr_f mc avail i in
      fun c -> as_int (VF (ff c)))
  | _ -> assert false (* only pure Binop/Unop defs are folded *)

and expr_f mc avail (i : Ir.instr) : ctx -> float =
  match i with
  | Ir.Binop (_, op, a, b) -> (
    match bin_kind op with
    | KF f ->
      let fb = fold_f mc avail b in
      let fa = fold_f mc avail a in
      fun c ->
        let y = fb c in
        let x = fa c in
        f x y
    | _ ->
      let fi = expr_i mc avail i in
      fun c -> as_float (VI (fi c)))
  | Ir.Unop (_, op, a) -> (
    match op with
    | Ir.Fneg ->
      let fa = fold_f mc avail a in
      fun c -> -.fa c
    | Ir.Int_to_float ->
      let fa = fold_i mc avail a in
      fun c -> Int64.to_float (fa c)
    | Ir.Neg | Ir.Not | Ir.Float_to_int ->
      let fi = expr_i mc avail i in
      fun c -> as_float (VI (fi c)))
  | _ -> assert false

and expr_addr mc avail (i : Ir.instr) : ctx -> int =
  match i with
  | Ir.Binop (_, Ir.Add, a, b) ->
    let fb = fold_addr mc avail b in
    let fa = fold_addr mc avail a in
    fun c ->
      let y = fb c in
      let x = fa c in
      x + y
  | Ir.Binop (_, Ir.Sub, a, b) ->
    let fb = fold_addr mc avail b in
    let fa = fold_addr mc avail a in
    fun c ->
      let y = fb c in
      let x = fa c in
      x - y
  | Ir.Binop (_, Ir.Mul, a, b) ->
    let fb = fold_addr mc avail b in
    let fa = fold_addr mc avail a in
    fun c ->
      let y = fb c in
      let x = fa c in
      x * y
  | _ ->
    let fi = expr_i mc avail i in
    fun c -> Int64.to_int (fi c)

and expr_rt mc avail (i : Ir.instr) : ctx -> rtval =
  match i with
  | Ir.Binop (_, op, _, _) -> (
    match bin_kind op with
    | KF _ ->
      let ff = expr_f mc avail i in
      fun c -> VF (ff c)
    | KIC _ | KFC _ ->
      let fi = expr_i mc avail i in
      fun c -> if fi c <> 0L then vtrue else vfalse
    | KI _ | KDiv | KRem ->
      let fi = expr_i mc avail i in
      fun c -> VI (fi c))
  | Ir.Unop (_, (Ir.Fneg | Ir.Int_to_float), _) ->
    let ff = expr_f mc avail i in
    fun c -> VF (ff c)
  | Ir.Unop _ ->
    let fi = expr_i mc avail i in
    fun c -> VI (fi c)
  | _ -> assert false

(* Compiled operand: resolved to a closure over the frame. *)
and cval mc (v : Ir.value) : ctx -> rtval =
  match v with
  | Ir.Reg r -> fun c -> Array.unsafe_get c.fr r
  | Ir.Imm_int i ->
    let v = VI i in
    fun _ -> v
  | Ir.Imm_float x ->
    let v = VF x in
    fun _ -> v
  | Ir.Global g ->
    let ga = gaddr mc g in
    fun c -> VI (Int64.of_int (ga c))

(* Instruction decode. Ticks are accounted by the enclosing run
   (decode_block), not by the closures. Operand shapes are resolved here:
   the register/register and register/immediate forms of the hot
   operators compile to closures with no inner indirect calls. Reordering
   a Reg/Imm operand fetch is safe (they are pure); only Global operands
   can have effects, and those take the generic right-to-left path. *)
and decode_instr mc avail promo (i : Ir.instr) : cinstr =
  match i with
  | Ir.Binop (d, op, a, b) -> decode_binop mc avail d op a b
  | Ir.Unop (d, op, a) -> (
    let f = un_fn op in
    match a with
    | Ir.Reg r when not (Hashtbl.mem avail r) ->
      fun c -> c.fr.(d) <- f (Array.unsafe_get c.fr r)
    | _ ->
      let fa = fold_rt mc avail a in
      fun c -> c.fr.(d) <- f (fa c))
  (* Promoted alloca slots: the access is a frame-array move. I64
     accesses reinterpret the slot's IEEE bits, exactly as the byte store
     in the memory space would. *)
  | Ir.Load (d, Ir.F64, Ir.Reg r) when Hashtbl.mem promo r ->
    let ix = Hashtbl.find promo r in
    fun c -> Array.unsafe_set c.fr d (VF (Array.unsafe_get c.lv ix))
  | Ir.Load (d, Ir.I64, Ir.Reg r) when Hashtbl.mem promo r ->
    let ix = Hashtbl.find promo r in
    fun c ->
      Array.unsafe_set c.fr d
        (VI (Int64.bits_of_float (Array.unsafe_get c.lv ix)))
  | Ir.Store (Ir.F64, Ir.Reg r, v) when Hashtbl.mem promo r ->
    let ix = Hashtbl.find promo r in
    let fv = fold_f mc avail v in
    fun c -> Array.unsafe_set c.lv ix (fv c)
  | Ir.Store (Ir.I64, Ir.Reg r, v) when Hashtbl.mem promo r ->
    let ix = Hashtbl.find promo r in
    let fv = fold_i mc avail v in
    fun c -> Array.unsafe_set c.lv ix (Int64.float_of_bits (fv c))
  | Ir.Alloca (d, _, _) when Hashtbl.mem promo d ->
    let ix = Hashtbl.find promo d in
    fun c -> Array.unsafe_set c.lv ix 0.0
  | Ir.Load (d, ty, a) -> decode_load mc avail d ty a
  | Ir.Store (ty, a, v) -> decode_store mc avail ty a v
  | Ir.Alloca (d, size, info) ->
    let fs = fold_rt mc avail size in
    fun c ->
      let size = Int64.to_int (as_int (fs c)) in
      let base = Memspace.alloc ~tag:info.Ir.aname c.sp size in
      c.allocas <- base :: c.allocas;
      c.fr.(d) <- VI (Int64.of_int base);
      if info.Ir.aregistered && (not mc.in_kernel) && mc.mode = Split then begin
        flush_time mc;
        mc.rt.Runtime.now <- mc.now;
        Runtime.declare_alloca mc.rt ~base ~size;
        mc.now <- mc.rt.Runtime.now;
        c.registered <- base :: c.registered
      end
  | Ir.Call (d, name, args) ->
    let fargs = List.map (fold_rt mc avail) args in
    let set_res =
      match d with
      | Some d ->
        fun c res ->
          c.fr.(d) <- (match res with Some v -> v | None -> VI 0L)
      | None -> fun _ _ -> ()
    in
    let generic () =
      fun c ->
        let argv = List.map (fun g -> g c) fargs in
        set_res c (dispatch_call mc name argv)
    in
    if is_builtin name then begin
      (* Pure math calls are the only builtins hot enough to specialise;
         everything else keeps the tree engine's dispatch (which the
         closure still reaches without re-matching the instruction). *)
      match (math1 name, fargs) with
      | Some g, [ fa ] -> fun c -> set_res c (Some (VF (g (as_float (fa c)))))
      | _ -> (
        match (name, fargs) with
        | "pow", [ fa; fb ] ->
          fun c ->
            let va = fa c in
            let vb = fb c in
            set_res c (Some (VF (Float.pow (as_float va) (as_float vb))))
        | _ -> generic ())
    end
    else begin
      match Hashtbl.find_opt mc.funcs name with
      | Some f when f.Ir.fkind = Ir.Cpu ->
        (* Direct call to a user function: callee resolved at decode, its
           body decoded lazily on first execution (handles recursion). *)
        let fargs = Array.of_list fargs in
        let n = Array.length fargs in
        let resolved = ref None in
        fun c ->
          let argv = if n = 0 then [||] else Array.make n (VI 0L) in
          for i = 0 to n - 1 do
            argv.(i) <- (Array.unsafe_get fargs i) c
          done;
          let cf =
            match !resolved with
            | Some cf -> cf
            | None ->
              let cf = decode mc f in
              resolved := Some cf;
              cf
          in
          set_res c (exec_compiled mc cf argv)
      | _ ->
        (* kernels called directly, or unknown names: fault at execution
           time with the tree engine's message *)
        generic ()
    end
  | Ir.Launch { kernel; trip; args } ->
    let ft = fold_rt mc avail trip in
    let fargs = List.map (fold_rt mc avail) args in
    fun c ->
      let args = List.map (fun g -> g c) fargs in
      let trip = Int64.to_int (as_int (ft c)) in
      exec_launch mc ~kernel ~trip ~args

and decode_binop mc avail d op a b : cinstr =
  let is_folded = function Ir.Reg r -> Hashtbl.mem avail r | _ -> false in
  if is_folded a || is_folded b then begin
    (* An operand is a folded def: rebuild the whole expression inline
       and write the (multi-use) result to the frame. *)
    let g = expr_rt mc avail (Ir.Binop (d, op, a, b)) in
    fun c -> c.fr.(d) <- g c
  end
  else begin
  let open Ir in
  match (op, a, b) with
  (* fully inlined forms of the operators that dominate executed code:
     address arithmetic, float kernels, loop conditions *)
  | Add, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        VI (Int64.add (as_int (Array.unsafe_get c.fr ra))
              (as_int (Array.unsafe_get c.fr rb)))
  | Add, Reg ra, Imm_int ib ->
    fun c -> c.fr.(d) <- VI (Int64.add (as_int (Array.unsafe_get c.fr ra)) ib)
  | Sub, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        VI (Int64.sub (as_int (Array.unsafe_get c.fr ra))
              (as_int (Array.unsafe_get c.fr rb)))
  | Sub, Reg ra, Imm_int ib ->
    fun c -> c.fr.(d) <- VI (Int64.sub (as_int (Array.unsafe_get c.fr ra)) ib)
  | Mul, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        VI (Int64.mul (as_int (Array.unsafe_get c.fr ra))
              (as_int (Array.unsafe_get c.fr rb)))
  | Mul, Reg ra, Imm_int ib ->
    fun c -> c.fr.(d) <- VI (Int64.mul (as_int (Array.unsafe_get c.fr ra)) ib)
  | Fadd, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        VF (as_float (Array.unsafe_get c.fr ra)
            +. as_float (Array.unsafe_get c.fr rb))
  | Fsub, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        VF (as_float (Array.unsafe_get c.fr ra)
            -. as_float (Array.unsafe_get c.fr rb))
  | Fmul, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        VF (as_float (Array.unsafe_get c.fr ra)
            *. as_float (Array.unsafe_get c.fr rb))
  | Fdiv, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        VF (as_float (Array.unsafe_get c.fr ra)
            /. as_float (Array.unsafe_get c.fr rb))
  | Lt, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        (if Int64.compare (as_int (Array.unsafe_get c.fr ra))
              (as_int (Array.unsafe_get c.fr rb)) < 0
         then vtrue else vfalse)
  | Lt, Reg ra, Imm_int ib ->
    fun c ->
      c.fr.(d) <-
        (if Int64.compare (as_int (Array.unsafe_get c.fr ra)) ib < 0 then vtrue
         else vfalse)
  | Le, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        (if Int64.compare (as_int (Array.unsafe_get c.fr ra))
              (as_int (Array.unsafe_get c.fr rb)) <= 0
         then vtrue else vfalse)
  | Le, Reg ra, Imm_int ib ->
    fun c ->
      c.fr.(d) <-
        (if Int64.compare (as_int (Array.unsafe_get c.fr ra)) ib <= 0 then vtrue
         else vfalse)
  | Gt, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        (if Int64.compare (as_int (Array.unsafe_get c.fr ra))
              (as_int (Array.unsafe_get c.fr rb)) > 0
         then vtrue else vfalse)
  | Ge, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        (if Int64.compare (as_int (Array.unsafe_get c.fr ra))
              (as_int (Array.unsafe_get c.fr rb)) >= 0
         then vtrue else vfalse)
  | Eq, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        (if Int64.equal (as_int (Array.unsafe_get c.fr ra))
              (as_int (Array.unsafe_get c.fr rb))
         then vtrue else vfalse)
  | Ne, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        (if Int64.equal (as_int (Array.unsafe_get c.fr ra))
              (as_int (Array.unsafe_get c.fr rb))
         then vfalse else vtrue)
  | Flt, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        (if as_float (Array.unsafe_get c.fr ra)
            < as_float (Array.unsafe_get c.fr rb)
         then vtrue else vfalse)
  | Fle, Reg ra, Reg rb ->
    fun c ->
      c.fr.(d) <-
        (if as_float (Array.unsafe_get c.fr ra)
            <= as_float (Array.unsafe_get c.fr rb)
         then vtrue else vfalse)
  (* everything else: shape-specialised operand fetch, operator via the
     decode-time-resolved bin_fn closure *)
  | _, Reg ra, Reg rb ->
    let f = bin_fn op in
    fun c -> c.fr.(d) <- f (Array.unsafe_get c.fr ra) (Array.unsafe_get c.fr rb)
  | _, Reg ra, (Imm_int _ | Imm_float _) ->
    let f = bin_fn op in
    let vb = imm_val b in
    fun c -> c.fr.(d) <- f (Array.unsafe_get c.fr ra) vb
  | _, (Imm_int _ | Imm_float _), Reg rb ->
    let f = bin_fn op in
    let va = imm_val a in
    fun c -> c.fr.(d) <- f va (Array.unsafe_get c.fr rb)
  | _ ->
    let f = bin_fn op in
    let fb = cval mc b in
    let fa = cval mc a in
    fun c ->
      let vb = fb c in
      let va = fa c in
      c.fr.(d) <- f va vb
  end

and decode_load mc avail d ty a : cinstr =
  (* Access tracking only exists in inspector-executor mode, the
     sanitizer only in Split mode, and the paged touch hook only under
     the paged backend — all known at decode time; every other
     configuration skips the checks entirely. *)
  let track = mc.mode = Inspector_executor in
  let sanit = mc.san <> None in
  let pgd = mc.paged in
  let cache = ref Memspace.null_handle in
  match (ty, a) with
  | Ir.I64, Ir.Reg r
    when (not track) && (not sanit) && pgd == None
         && not (Hashtbl.mem avail r) ->
    fun c ->
      let addr = Int64.to_int (as_int (Array.unsafe_get c.fr r)) in
      let h = !cache in
      let h =
        if Memspace.handle_valid h c.sp addr 8 then h
        else begin
          let h = Memspace.acquire_handle c.sp addr 8 "load" in
          cache := h;
          h
        end
      in
      c.fr.(d) <- VI (Memspace.h_load_i64 h addr)
  | Ir.F64, Ir.Reg r
    when (not track) && (not sanit) && pgd == None
         && not (Hashtbl.mem avail r) ->
    fun c ->
      let addr = Int64.to_int (as_int (Array.unsafe_get c.fr r)) in
      let h = !cache in
      let h =
        if Memspace.handle_valid h c.sp addr 8 then h
        else begin
          let h = Memspace.acquire_handle c.sp addr 8 "load" in
          cache := h;
          h
        end
      in
      c.fr.(d) <- VF (Memspace.h_load_f64 h addr)
  | Ir.I8, Ir.Reg r
    when (not track) && (not sanit) && pgd == None
         && not (Hashtbl.mem avail r) ->
    fun c ->
      let addr = Int64.to_int (as_int (Array.unsafe_get c.fr r)) in
      let h = !cache in
      let h =
        if Memspace.handle_valid h c.sp addr 1 then h
        else begin
          let h = Memspace.acquire_handle c.sp addr 1 "load" in
          cache := h;
          h
        end
      in
      c.fr.(d) <- VI (Int64.of_int (Memspace.h_load_u8 h addr))
  | _ ->
    let fa = fold_addr mc avail a in
    let len = match ty with Ir.I8 -> 1 | _ -> 8 in
    let finish : ctx -> Memspace.handle -> int -> unit =
      match ty with
      | Ir.I8 ->
        fun c h addr -> c.fr.(d) <- VI (Int64.of_int (Memspace.h_load_u8 h addr))
      | Ir.I64 -> fun c h addr -> c.fr.(d) <- VI (Memspace.h_load_i64 h addr)
      | Ir.F64 -> fun c h addr -> c.fr.(d) <- VF (Memspace.h_load_f64 h addr)
    in
    if track then
      (* Tracked (inspector-executor) path: the handle resolution already
         found the unit, so tracking reuses its base. *)
      fun c ->
        let addr = fa c in
        let h = !cache in
        let h =
          if Memspace.handle_valid h c.sp addr len then h
          else begin
            let h = Memspace.acquire_handle c.sp addr len "load" in
            cache := h;
            h
          end
        in
        (match mc.track_units with
        | Some tbl -> track_load_h mc tbl (Memspace.handle_base h)
        | None -> ());
        finish c h addr
    else
      match mc.san with
      | Some s ->
        (* Sanitized path: the coherence check runs before the access
           (the read of a stale byte IS the violation), in the same
           position the tree engine checks. *)
        fun c ->
          let addr = fa c in
          Sanitizer.on_load s ~addr ~len ~fn:mc.cur_fn ~kernel:mc.in_kernel;
          let h = !cache in
          let h =
            if Memspace.handle_valid h c.sp addr len then h
            else begin
              let h = Memspace.acquire_handle c.sp addr len "load" in
              cache := h;
              h
            end
          in
          finish c h addr
      | None -> (
        match pgd with
        | Some pg ->
          (* Paged path: the touch (and any host-side migration stall)
             happens before the access, where the hardware would fault. *)
          fun c ->
            let addr = fa c in
            paged_touch mc pg ~addr ~len;
            let h = !cache in
            let h =
              if Memspace.handle_valid h c.sp addr len then h
              else begin
                let h = Memspace.acquire_handle c.sp addr len "load" in
                cache := h;
                h
              end
            in
            finish c h addr
        | None ->
          fun c ->
            let addr = fa c in
            let h = !cache in
            let h =
              if Memspace.handle_valid h c.sp addr len then h
              else begin
                let h = Memspace.acquire_handle c.sp addr len "load" in
                cache := h;
                h
              end
            in
            finish c h addr)

and decode_store mc avail ty a v : cinstr =
  match mc.shard_log with
  | Some l -> decode_store_log mc l avail ty a v
  | None -> decode_store_seq mc avail ty a v

(* Shard-machine stores (parallel engine): identical to the sequential
   paths below except that the order-sensitive dirty-span bookkeeping is
   appended to the shard's private log (the Bytes write itself happens
   immediately) for replay at the join. Shards only exist in Split mode,
   so there is no inspector-executor tracking here. *)
and decode_store_log mc l avail ty a v : cinstr =
  let cache = ref Memspace.null_handle in
  let acquire c addr len =
    let h = !cache in
    if Memspace.handle_valid h c.sp addr len then h
    else begin
      let h = Memspace.acquire_handle c.sp addr len "store" in
      cache := h;
      h
    end
  in
  match (ty, a, v) with
  | Ir.F64, Ir.Reg ra, Ir.Reg rv
    when mc.san = None
         && (not (Hashtbl.mem avail ra))
         && not (Hashtbl.mem avail rv) ->
    fun c ->
      let addr = Int64.to_int (as_int (Array.unsafe_get c.fr ra)) in
      let x = as_float (Array.unsafe_get c.fr rv) in
      Memspace.h_store_f64_log l (acquire c addr 8) addr x
  | Ir.I64, Ir.Reg ra, Ir.Reg rv
    when mc.san = None
         && (not (Hashtbl.mem avail ra))
         && not (Hashtbl.mem avail rv) ->
    fun c ->
      let addr = Int64.to_int (as_int (Array.unsafe_get c.fr ra)) in
      let x = as_int (Array.unsafe_get c.fr rv) in
      Memspace.h_store_i64_log l (acquire c addr 8) addr x
  | Ir.I64, Ir.Reg ra, Ir.Imm_int iv
    when mc.san = None && not (Hashtbl.mem avail ra) ->
    fun c ->
      let addr = Int64.to_int (as_int (Array.unsafe_get c.fr ra)) in
      Memspace.h_store_i64_log l (acquire c addr 8) addr iv
  | _ -> (
    let fa = fold_addr mc avail a in
    (* sequential-engine order preserved: address, (sanitizer), value
       unboxing, then the store *)
    match ty with
    | Ir.I8 ->
      let fv = fold_i mc avail v in
      (match mc.san with
      | Some s ->
        fun c ->
          let addr = fa c in
          Sanitizer.on_store s ~addr ~len:1 ~fn:mc.cur_fn ~kernel:mc.in_kernel;
          let h = acquire c addr 1 in
          Memspace.h_store_u8_log l h addr
            (Int64.to_int (fv c) land 0xff)
      | None ->
        fun c ->
          let addr = fa c in
          let x = Int64.to_int (fv c) land 0xff in
          Memspace.h_store_u8_log l (acquire c addr 1) addr x)
    | Ir.I64 ->
      let fv = fold_i mc avail v in
      (match mc.san with
      | Some s ->
        fun c ->
          let addr = fa c in
          Sanitizer.on_store s ~addr ~len:8 ~fn:mc.cur_fn ~kernel:mc.in_kernel;
          let h = acquire c addr 8 in
          Memspace.h_store_i64_log l h addr (fv c)
      | None ->
        fun c ->
          let addr = fa c in
          let x = fv c in
          Memspace.h_store_i64_log l (acquire c addr 8) addr x)
    | Ir.F64 ->
      let fv = fold_f mc avail v in
      (match mc.san with
      | Some s ->
        fun c ->
          let addr = fa c in
          Sanitizer.on_store s ~addr ~len:8 ~fn:mc.cur_fn ~kernel:mc.in_kernel;
          let h = acquire c addr 8 in
          Memspace.h_store_f64_log l h addr (fv c)
      | None ->
        fun c ->
          let addr = fa c in
          let x = fv c in
          Memspace.h_store_f64_log l (acquire c addr 8) addr x))

and decode_store_seq mc avail ty a v : cinstr =
  let track = mc.mode = Inspector_executor in
  let sanit = mc.san <> None in
  let pgd = mc.paged in
  let cache = ref Memspace.null_handle in
  match (ty, a, v) with
  | Ir.F64, Ir.Reg ra, Ir.Reg rv
    when (not track) && (not sanit) && pgd == None
         && (not (Hashtbl.mem avail ra))
         && not (Hashtbl.mem avail rv) ->
    fun c ->
      let addr = Int64.to_int (as_int (Array.unsafe_get c.fr ra)) in
      let x = as_float (Array.unsafe_get c.fr rv) in
      let h = !cache in
      let h =
        if Memspace.handle_valid h c.sp addr 8 then h
        else begin
          let h = Memspace.acquire_handle c.sp addr 8 "store" in
          cache := h;
          h
        end
      in
      Memspace.h_store_f64 h addr x
  | Ir.I64, Ir.Reg ra, Ir.Reg rv
    when (not track) && (not sanit) && pgd == None
         && (not (Hashtbl.mem avail ra))
         && not (Hashtbl.mem avail rv) ->
    fun c ->
      let addr = Int64.to_int (as_int (Array.unsafe_get c.fr ra)) in
      let x = as_int (Array.unsafe_get c.fr rv) in
      let h = !cache in
      let h =
        if Memspace.handle_valid h c.sp addr 8 then h
        else begin
          let h = Memspace.acquire_handle c.sp addr 8 "store" in
          cache := h;
          h
        end
      in
      Memspace.h_store_i64 h addr x
  | Ir.I64, Ir.Reg ra, Ir.Imm_int iv
    when (not track) && (not sanit) && pgd == None
         && not (Hashtbl.mem avail ra) ->
    fun c ->
      let addr = Int64.to_int (as_int (Array.unsafe_get c.fr ra)) in
      let h = !cache in
      let h =
        if Memspace.handle_valid h c.sp addr 8 then h
        else begin
          let h = Memspace.acquire_handle c.sp addr 8 "store" in
          cache := h;
          h
        end
      in
      Memspace.h_store_i64 h addr iv
  | _ -> (
    let fa = fold_addr mc avail a in
    let acquire c addr len =
      let h = !cache in
      if Memspace.handle_valid h c.sp addr len then h
      else begin
        let h = Memspace.acquire_handle c.sp addr len "store" in
        cache := h;
        h
      end
    in
    (* Tracked (inspector-executor) path: when the cached handle is
       valid, tracking reuses its base (no index lookup) and the only
       possible fault is the value unboxing, in tree-engine order. On a
       cache miss, fall back to the tree engine's checked store so the
       fault order (track's wild-pointer fault, value confusion, span
       overrun) is preserved exactly, then warm the cache. *)
    let tracked_store (h_store : ctx -> Memspace.handle -> int -> unit)
        (slow_store : ctx -> int -> unit) len : cinstr =
      fun c ->
        let addr = fa c in
        let h = !cache in
        if Memspace.handle_valid h c.sp addr len then begin
          (match mc.track_units with
          | Some tbl -> track_store_h mc tbl (Memspace.handle_base h)
          | None -> ());
          h_store c h addr
        end
        else begin
          (match mc.track_units with
          | Some tbl -> track_store mc c.sp tbl addr
          | None -> ());
          slow_store c addr;
          cache := Memspace.acquire_handle c.sp addr len "store"
        end
    in
    (* Sanitized path: the dirty-bit update runs where the tree engine
       runs it — after the address, before the value unboxing. *)
    let sanit_store (h_store : ctx -> Memspace.handle -> int -> unit) len
        (s : Sanitizer.t) : cinstr =
      fun c ->
        let addr = fa c in
        Sanitizer.on_store s ~addr ~len ~fn:mc.cur_fn ~kernel:mc.in_kernel;
        h_store c (acquire c addr len) addr
    in
    (* Paged path: the touch (and any host-side migration stall) runs
       where the hardware would fault — after the address, before the
       bytes move. *)
    let paged_store (h_store : ctx -> Memspace.handle -> int -> unit) len pg :
        cinstr =
      fun c ->
        let addr = fa c in
        paged_touch mc pg ~addr ~len;
        h_store c (acquire c addr len) addr
    in
    (* tree-engine order: address, track, value (with its unboxing
       fault), then the store itself *)
    match ty with
    | Ir.I8 ->
      let fv = fold_i mc avail v in
      if track then
        tracked_store
          (fun c h addr -> Memspace.h_store_u8 h addr (Int64.to_int (fv c) land 0xff))
          (fun c addr -> Memspace.store_u8 c.sp addr (Int64.to_int (fv c) land 0xff))
          1
      else (
        match mc.san with
        | Some s ->
          sanit_store
            (fun c h addr ->
              Memspace.h_store_u8 h addr (Int64.to_int (fv c) land 0xff))
            1 s
        | None -> (
          match pgd with
          | Some pg ->
            paged_store
              (fun c h addr ->
                Memspace.h_store_u8 h addr (Int64.to_int (fv c) land 0xff))
              1 pg
          | None ->
            fun c ->
              let addr = fa c in
              let x = Int64.to_int (fv c) land 0xff in
              Memspace.h_store_u8 (acquire c addr 1) addr x))
    | Ir.I64 ->
      let fv = fold_i mc avail v in
      if track then
        tracked_store
          (fun c h addr -> Memspace.h_store_i64 h addr (fv c))
          (fun c addr -> Memspace.store_i64 c.sp addr (fv c))
          8
      else (
        match mc.san with
        | Some s ->
          sanit_store (fun c h addr -> Memspace.h_store_i64 h addr (fv c)) 8 s
        | None -> (
          match pgd with
          | Some pg ->
            paged_store (fun c h addr -> Memspace.h_store_i64 h addr (fv c)) 8 pg
          | None ->
            fun c ->
              let addr = fa c in
              let x = fv c in
              Memspace.h_store_i64 (acquire c addr 8) addr x))
    | Ir.F64 ->
      let fv = fold_f mc avail v in
      if track then
        tracked_store
          (fun c h addr -> Memspace.h_store_f64 h addr (fv c))
          (fun c addr -> Memspace.store_f64 c.sp addr (fv c))
          8
      else (
        match mc.san with
        | Some s ->
          sanit_store (fun c h addr -> Memspace.h_store_f64 h addr (fv c)) 8 s
        | None -> (
          match pgd with
          | Some pg ->
            paged_store (fun c h addr -> Memspace.h_store_f64 h addr (fv c)) 8 pg
          | None ->
            fun c ->
              let addr = fa c in
              let x = fv c in
              Memspace.h_store_f64 (acquire c addr 8) addr x)))

and decode_term mc avail (t : Ir.terminator) : ctx -> int =
  match t with
  | Ir.Br b -> fun _ -> b
  | Ir.Cbr (Ir.Reg r, b1, b2) when Hashtbl.mem avail r -> (
    (* Fuse a folded comparison straight into the branch: no boolean
       box, no frame traffic. *)
    match Hashtbl.find avail r with
    | Ir.Binop (_, op, a, b) as def -> (
      match bin_kind op with
      | KIC f ->
        let fb = fold_i mc avail b in
        let fa = fold_i mc avail a in
        fun c ->
          let y = fb c in
          let x = fa c in
          if f x y then b1 else b2
      | KFC f ->
        let fb = fold_f mc avail b in
        let fa = fold_f mc avail a in
        fun c ->
          let y = fb c in
          let x = fa c in
          if f x y then b1 else b2
      | _ ->
        let fv = expr_i mc avail def in
        fun c -> if fv c <> 0L then b1 else b2)
    | def ->
      let fv = expr_i mc avail def in
      fun c -> if fv c <> 0L then b1 else b2)
  | Ir.Cbr (Ir.Reg r, b1, b2) ->
    fun c -> if as_int (Array.unsafe_get c.fr r) <> 0L then b1 else b2
  | Ir.Cbr (v, b1, b2) ->
    let fv = cval mc v in
    fun c -> if as_int (fv c) <> 0L then b1 else b2
  | Ir.Ret None ->
    fun c ->
      c.ret <- None;
      -1
  | Ir.Ret (Some (Ir.Reg r)) when Hashtbl.mem avail r ->
    let fv = fold_rt mc avail (Ir.Reg r) in
    fun c ->
      c.ret <- Some (fv c);
      -1
  | Ir.Ret (Some (Ir.Reg r)) ->
    fun c ->
      c.ret <- Some (Array.unsafe_get c.fr r);
      -1
  | Ir.Ret (Some v) ->
    let fv = cval mc v in
    fun c ->
      c.ret <- Some (fv c);
      -1

and exec_compiled mc (cf : cfunc) (args : rtval array) : rtval option =
  let f = cf.cfn in
  if Array.length args <> f.Ir.nargs then
    error "%s called with %d args, expected %d" f.Ir.fname (Array.length args)
      f.Ir.nargs;
  let caller_fn = mc.cur_fn in
  mc.cur_fn <- f.Ir.fname;
  let frame = Array.make (max f.Ir.nregs 1) (VI 0L) in
  Array.blit args 0 frame 0 (Array.length args);
  let c =
    {
      fr = frame;
      lv = (if cf.nlocals = 0 then [||] else Array.make cf.nlocals 0.0);
      sp = space mc;
      ret = None;
      allocas = [];
      registered = [];
    }
  in
  let finish () =
    List.iter
      (fun base -> if mc.mode = Split then Runtime.expire_alloca mc.rt ~base)
      c.registered;
    List.iter (fun base -> Memspace.free_local c.sp base) c.allocas
  in
  let blocks = cf.cblocks in
  let res =
    try
      let rec loop b =
        let blk = Array.unsafe_get blocks b in
        let runs = blk.runs in
        for s = 0 to Array.length runs - 1 do
          let r = Array.unsafe_get runs s in
          seg_tick mc r.ticks;
          let ops = r.ops in
          for i = 0 to Array.length ops - 1 do
            (Array.unsafe_get ops i) c
          done
        done;
        let nxt = blk.ct c in
        if nxt >= 0 then loop nxt else c.ret
      in
      loop 0
    with e ->
      finish ();
      mc.cur_fn <- caller_fn;
      raise e
  in
  finish ();
  mc.cur_fn <- caller_fn;
  res

(* ------------------------------------------------------------------ *)

let run ?(config = default_config) (m : Ir.modul) : result =
  let host =
    Memspace.create ~name:"host" ~range_lo:0x10_0000 ~range_hi:0x4000_0000_00
  in
  let trace = Trace.create ~enabled:config.trace () in
  (* One sanitizer instance shared by the driver, run-time and
     interpreter hooks. Only the Split mode has two memories to keep
     coherent; the oracle modes have nothing to check. *)
  let sanitizer =
    (* the sanitizer checks explicit-copy coherence; under the paged
       backend there is one memory and nothing to keep coherent *)
    if
      config.sanitize && config.mode = Split
      && config.backend = Mem_backend.Explicit
    then Some (Sanitizer.create ~dev_lo:0x4000_0000_00 ())
    else None
  in
  let dev =
    Device.create ~trace
      ?faults:(Option.map Faults.make config.faults)
      ?sanitizer config.cost
  in
  let rt =
    Runtime.create ~dirty_spans:config.dirty_spans ~paranoid:config.paranoid
      ~host ~dev ()
  in
  let paged =
    match (config.mode, config.backend) with
    | Split, Mem_backend.Paged -> Some (Paged.create ~dev config.cost)
    | _ -> None
  in
  let bk =
    match paged with
    | Some pg -> Mem_backend.paged pg
    | None -> Mem_backend.explicit rt
  in
  let funcs = Hashtbl.create 32 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.Ir.fname f) m.Ir.funcs;
  let mc =
    {
      m;
      host;
      dev;
      rt;
      mode = config.mode;
      engine = config.engine;
      cost = config.cost;
      funcs;
      decoded = Hashtbl.create 32;
      globals_host = Hashtbl.create 16;
      out = Buffer.create 256;
      now = 0.0;
      pending_insts = 0;
      cpu_insts = 0;
      kernel_insts = 0;
      in_kernel = false;
      fuel = config.fuel;
      inspector_fraction = config.inspector_fraction;
      track_units = None;
      track_threshold = max_int;
      profile_on = config.profile;
      profile_counts = Hashtbl.create 16;
      cur_fn = "<toplevel>";
      bk;
      paged;
      san = sanitizer;
      rw_cache = Hashtbl.create 8;
      jobs =
        (match config.engine with
        | Parallel ->
          if config.jobs > 0 then min config.jobs Pool.max_jobs
          else Pool.default_jobs ()
        | Closures | Tree_walk -> 1);
      par_cache = Hashtbl.create 8;
      shards = [||];
      shard_log = None;
    }
  in
  load_globals mc;
  let main =
    match Hashtbl.find_opt funcs "main" with
    | Some f -> f
    | None -> error "module has no main function"
  in
  let res = call_func mc main [||] in
  flush_time mc;
  mc.now <- Device.sync mc.dev ~now:mc.now;
  let st = Device.stats dev in
  {
    exit_code = (match res with Some (VI i) -> i | _ -> 0L);
    output = Buffer.contents mc.out;
    wall = mc.now;
    cpu_compute =
      float_of_int mc.cpu_insts *. config.cost.Cost_model.cpu_cycle;
    gpu = st.Device.kernel_cycles;
    comm = st.Device.comm_cycles;
    sync = st.Device.sync_cycles;
    cpu_insts = mc.cpu_insts;
    kernel_insts = mc.kernel_insts;
    dev_stats = st;
    rt_stats = rt.Runtime.stats;
    leaks = bk.Mem_backend.bk_leak_report ();
    dev_peak_bytes = Memspace.peak_bytes dev.Device.mem;
    trace;
    profile =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) mc.profile_counts []
      |> List.sort (fun (_, a) (_, b) -> compare b a);
    san_report = Option.map Sanitizer.report sanitizer;
    page_stats = Option.map Paged.stats paged;
  }
