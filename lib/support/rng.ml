(* Deterministic splitmix64 generator. Benchmark workloads, fault plans
   and the program fuzzer must be reproducible across runs and execution
   modes, so we never use the global [Random] state. This module is the
   single seeded RNG of the whole code base: the fault-injection plans
   (Cgcm_gpusim.Faults), the whole-program fuzzer and the oracle tests
   all derive their streams from here. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.unsigned_rem (next_int64 t) (Int64.of_int bound))

(* Uniform in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(* Independent substream [i] of [seed]: mixing the index with the 32-bit
   golden ratio keeps sibling streams decorrelated, so consuming one
   never perturbs another (fault plans rely on this per-operation). *)
let stream ~seed i = create (seed + ((i + 1) * 0x9e3779b9))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Uniform in [lo, hi] inclusive. *)
let range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.range";
  lo + int t (hi - lo + 1)

let pick t l =
  match l with [] -> invalid_arg "Rng.pick" | l -> List.nth l (int t (List.length l))
