(* Byte counts with binary-unit suffixes, for CLI arguments like
   --device-mem 64KiB. Raw integers stay valid so existing scripts and
   golden outputs keep working. *)

let units = [ ("KiB", 1024); ("MiB", 1024 * 1024); ("GiB", 1024 * 1024 * 1024) ]

let error_message s =
  Printf.sprintf
    "invalid byte count %S (expected an integer with an optional KiB, MiB or \
     GiB suffix, e.g. 65536, 64KiB, 1MiB)"
    s

let parse s =
  let fail () = Error (error_message s) in
  let number_part, scale =
    match
      List.find_opt
        (fun (u, _) ->
          let n = String.length s and k = String.length u in
          n > k && String.sub s (n - k) k = u)
        units
    with
    | Some (u, scale) ->
      (String.sub s 0 (String.length s - String.length u), scale)
    | None -> (s, 1)
  in
  match int_of_string_opt (String.trim number_part) with
  | Some n when n >= 0 ->
    if scale > 1 && n > max_int / scale then fail () else Ok (n * scale)
  | _ -> fail ()

let to_string bytes =
  let rec pick = function
    | (u, scale) :: rest ->
      if bytes >= scale && bytes mod scale = 0 then
        Printf.sprintf "%d%s" (bytes / scale) u
      else pick rest
    | [] -> string_of_int bytes
  in
  pick (List.rev units)
