(** Byte counts with binary-unit suffixes, shared by the CLI's
    [--device-mem]/[--page-bytes] converters and their golden tests. *)

val parse : string -> (int, string) result
(** [parse "65536"], [parse "64KiB"], [parse "1MiB"], [parse "2GiB"].
    Plain integers are raw bytes. Rejects negatives, non-integers,
    unknown suffixes and values that overflow [int] with
    [Error (error_message s)]. *)

val error_message : string -> string
(** The exact message [parse] returns for a malformed input — exposed so
    the golden test pins the CLI's wording. *)

val to_string : int -> string
(** Render with the largest exact binary suffix: [to_string 65536 =
    "64KiB"], [to_string 1000 = "1000"]. *)
