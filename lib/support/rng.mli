(** Deterministic splitmix64 generator. Benchmark workloads, fault plans
    and the program fuzzer must be reproducible across runs and execution
    modes, so the global [Random] state is never used. Every seeded
    stream in the code base (fault injection, fuzzing, oracle tests)
    derives from this module. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)]; raises on non-positive bounds. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val stream : seed:int -> int -> t
(** [stream ~seed i] is the [i]-th independent substream of [seed]:
    consuming one substream never perturbs a sibling. *)

val bool : t -> bool

val range : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive; raises when [hi < lo]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)
