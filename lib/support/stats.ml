(* Small numeric helpers shared by the report generators, plus the
   domain-safe counters the parallel kernel engine relies on. *)

(* A counter that tolerates unsynchronized increments from many domains
   at once. Used for hot-path tallies (e.g. sanitizer access checks)
   that are bumped from inside parallel kernel shards; heavier per-shard
   state is accumulated privately and merged at the kernel join instead
   of going through atomics. *)
module Counter = struct
  type t = int Atomic.t

  let create ?(value = 0) () = Atomic.make value
  let incr t = ignore (Atomic.fetch_and_add t 1)
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let set t v = Atomic.set t v
end

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Geometric mean; every input must be strictly positive. *)
let geomean = function
  | [] -> nan
  | xs ->
    let logsum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive input"
          else acc +. log x)
        0.0 xs
    in
    exp (logsum /. float_of_int (List.length xs))

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let sum = List.fold_left ( +. ) 0.0

let percent part total = if total <= 0.0 then 0.0 else 100.0 *. part /. total
