(** Numeric helpers for the report generators, plus domain-safe
    counters for state shared across parallel kernel shards. *)

(** A counter safe to bump from many domains at once. Increments are
    atomic, so no update is ever lost; [get] from a racing domain sees
    some prefix of the increments, and a [get] after a synchronization
    point (e.g. the kernel-join barrier in {!Pool.run}) sees them
    all. *)
module Counter : sig
  type t

  val create : ?value:int -> unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val set : t -> int -> unit
end

val mean : float list -> float

val geomean : float list -> float
(** Geometric mean; raises [Invalid_argument] on non-positive inputs. *)

val clamp : lo:float -> hi:float -> float -> float
val sum : float list -> float

val percent : float -> float -> float
(** [percent part total] is [100 * part / total], or 0 when [total <= 0]. *)
