(** Persistent domain pools for data-parallel batches.

    A pool's worker domains are spawned lazily (on the first batch that
    needs them, up to the pool's explicit cap) and reused for every
    subsequent batch, so repeated small batches pay a mutex round-trip
    rather than a domain spawn. One batch runs at a time per pool; the
    caller participates in its own batch. Independent subsystems should
    each {!create} their own pool so none is sized by whoever ran
    first; the process-global {!run}/{!size} API remains as a default
    instance. *)

val max_jobs : int
(** Upper bound on [jobs]; keeps well inside the OCaml runtime's
    fixed-size domain table. *)

val default_jobs : unit -> int
(** The [CGCM_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]; clamped to
    [max_jobs]. *)

val parse_jobs : string -> int option
(** Parse a positive job count (clamped to [max_jobs]); [None] on
    anything else. *)

type t
(** A pool instance: its own workers, its own one-batch-at-a-time
    discipline. Distinct pools may run batches concurrently. *)

val create : ?workers:int -> unit -> t
(** A pool that may spawn up to [workers] worker domains (default
    [max_jobs - 1]; clamped to that). Workers are spawned lazily by
    {!run_in} and kept for the life of the process. *)

val run_in : t -> jobs:int -> int -> (int -> unit) -> unit
(** [run_in t ~jobs n task] executes [task 0 .. task (n-1)] across up to
    [min jobs n] domains (the caller plus at most [jobs - 1] of [t]'s
    workers) and returns once every task has finished. With [jobs <= 1]
    or [n = 1] the tasks run sequentially in the caller, touching no
    pool state.

    The mutex hand-shake that ends the batch orders all task writes
    before the return, so the caller may read anything tasks wrote
    without further synchronization. If tasks raise, the remaining tasks
    still run and the first exception (in claim order) is re-raised. *)

val size_of : t -> int
(** Number of domains the pool can bring to bear right now: spawned
    workers plus the caller. *)

val run : jobs:int -> int -> (int -> unit) -> unit
(** {!run_in} on the process-global default pool (the historical API,
    used by the parallel kernel engine). *)

val size : unit -> int
(** {!size_of} the process-global default pool. *)
