(** Persistent domain pool for data-parallel batches.

    Worker domains are spawned once per process (lazily, on the first
    batch that needs them) and reused for every subsequent batch, so
    repeated small batches pay a mutex round-trip rather than a domain
    spawn. One batch runs at a time; the caller participates in its own
    batch. *)

val max_jobs : int
(** Upper bound on [jobs]; keeps well inside the OCaml runtime's
    fixed-size domain table. *)

val default_jobs : unit -> int
(** The [CGCM_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]; clamped to
    [max_jobs]. *)

val parse_jobs : string -> int option
(** Parse a positive job count (clamped to [max_jobs]); [None] on
    anything else. *)

val run : jobs:int -> int -> (int -> unit) -> unit
(** [run ~jobs n task] executes [task 0 .. task (n-1)] across up to
    [min jobs n] domains (the caller plus [jobs - 1] pool workers) and
    returns once every task has finished. With [jobs <= 1] or [n = 1]
    the tasks run sequentially in the caller, touching no pool state.

    The mutex hand-shake that ends the batch orders all task writes
    before the return, so the caller may read anything tasks wrote
    without further synchronization. If tasks raise, the remaining tasks
    still run and the first exception (in claim order) is re-raised. *)

val size : unit -> int
(** Number of domains the pool can bring to bear right now: spawned
    workers plus the caller. *)
