(* Persistent domain pools for data-parallel batches.

   OCaml domains are heavyweight (each one owns a minor heap and a slot
   in the runtime's fixed-size domain table), so a pool spawns workers
   once and keeps them forever: callers that repeatedly run small
   batches — one per simulated kernel launch — pay only a mutex
   round-trip per batch, not a domain spawn. Workers sleep on a
   condition variable between batches.

   Pools are instances with an explicit worker cap, so independent
   subsystems (the parallel engine's kernel pool, the serve daemon's
   shards) each size their own pool instead of fighting over one
   process-wide pool whose size was fixed by whoever ran first. The
   historical process-global API ([run]/[size]) survives as a default
   instance.

   A pool runs one batch at a time. [run_in t ~jobs n f] publishes the
   batch under the pool mutex, wakes the workers, and then participates
   itself, so a batch of [n] tasks is executed by up to
   [min jobs n] domains (the caller plus [jobs - 1] workers). Tasks are
   claimed by atomically bumping a shared cursor; publication of task
   results written into shared mutable state is ordered by the final
   mutex hand-shake (every worker decrements the unfinished count under
   the mutex, and the caller only returns after observing zero there),
   so callers may read anything their tasks wrote without further
   synchronization. *)

(* The runtime's domain table is small (128 entries); leave generous
   headroom for the main domain and any embedder threads. *)
let max_jobs = 64

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some (min n max_jobs)
  | _ -> None

let default_jobs () =
  match Option.bind (Sys.getenv_opt "CGCM_JOBS") parse_jobs with
  | Some n -> n
  | None -> min max_jobs (Domain.recommended_domain_count ())

type batch = {
  task : int -> unit;
  n : int;
  mutable next : int;  (* next unclaimed task index *)
  mutable unfinished : int;  (* tasks not yet completed *)
  mutable failure : exn option;  (* first task exception, re-raised by run *)
}

type t = {
  cap : int;  (* workers this pool may ever spawn *)
  lock : Mutex.t;
  work_available : Condition.t;
  batch_finished : Condition.t;
  mutable current : batch option;
  mutable workers : int;  (* workers spawned so far (lazily, <= cap) *)
}

let create ?(workers = max_jobs - 1) () =
  {
    cap = max 0 (min workers (max_jobs - 1));
    lock = Mutex.create ();
    work_available = Condition.create ();
    batch_finished = Condition.create ();
    current = None;
    workers = 0;
  }

(* Claim and execute tasks from [b] until none remain. Called with
   [t.lock] held; returns with [t.lock] held. *)
let drain t b =
  while b.next < b.n do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock t.lock;
    let result = try Ok (b.task i) with e -> Error e in
    Mutex.lock t.lock;
    (match result with
    | Ok () -> ()
    | Error e -> if b.failure = None then b.failure <- Some e);
    b.unfinished <- b.unfinished - 1;
    if b.unfinished = 0 then Condition.broadcast t.batch_finished
  done

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec await () =
    match t.current with
    | Some b when b.next < b.n -> b
    | _ ->
      Condition.wait t.work_available t.lock;
      await ()
  in
  let b = await () in
  drain t b;
  Mutex.unlock t.lock;
  worker_loop t

(* Called with [t.lock] held. *)
let ensure_workers t k =
  let k = min k t.cap in
  while t.workers < k do
    ignore (Domain.spawn (fun () -> worker_loop t));
    t.workers <- t.workers + 1
  done

let size_of t =
  Mutex.lock t.lock;
  let n = t.workers + 1 in
  Mutex.unlock t.lock;
  n

let run_in t ~jobs n task =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      task i
    done
  else begin
    let jobs = min jobs max_jobs in
    Mutex.lock t.lock;
    ensure_workers t (jobs - 1);
    (* One batch at a time: each pool's owner is single-threaded outside
       the pool, so a nested or concurrent batch on the SAME pool
       indicates a bug (distinct pools may overlap freely). *)
    assert (t.current = None);
    let b = { task; n; next = 0; unfinished = n; failure = None } in
    t.current <- Some b;
    Condition.broadcast t.work_available;
    drain t b;
    while b.unfinished > 0 do
      Condition.wait t.batch_finished t.lock
    done;
    t.current <- None;
    Mutex.unlock t.lock;
    match b.failure with Some e -> raise e | None -> ()
  end

(* The process-global default instance behind the historical API: sized
   lazily by the first batch that needs workers, exactly as before. *)
let default = lazy (create ())

let run ~jobs n task = run_in (Lazy.force default) ~jobs n task
let size () = size_of (Lazy.force default)
