(* A persistent domain pool for data-parallel batches.

   OCaml domains are heavyweight (each one owns a minor heap and a slot
   in the runtime's fixed-size domain table), so the pool spawns workers
   once per process and keeps them forever: callers that repeatedly run
   small batches — one per simulated kernel launch — pay only a mutex
   round-trip per batch, not a domain spawn. Workers sleep on a
   condition variable between batches.

   The pool runs one batch at a time. [run ~jobs n f] publishes the
   batch under the pool mutex, wakes the workers, and then participates
   itself, so a batch of [n] tasks is executed by up to
   [min jobs n] domains (the caller plus [jobs - 1] workers). Tasks are
   claimed by atomically bumping a shared cursor; publication of task
   results written into shared mutable state is ordered by the final
   mutex hand-shake (every worker decrements the unfinished count under
   the mutex, and the caller only returns after observing zero there),
   so callers may read anything their tasks wrote without further
   synchronization. *)

(* The runtime's domain table is small (128 entries); leave generous
   headroom for the main domain and any embedder threads. *)
let max_jobs = 64

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some (min n max_jobs)
  | _ -> None

let default_jobs () =
  match Option.bind (Sys.getenv_opt "CGCM_JOBS") parse_jobs with
  | Some n -> n
  | None -> min max_jobs (Domain.recommended_domain_count ())

type batch = {
  task : int -> unit;
  n : int;
  mutable next : int;  (* next unclaimed task index *)
  mutable unfinished : int;  (* tasks not yet completed *)
  mutable failure : exn option;  (* first task exception, re-raised by run *)
}

let lock = Mutex.create ()
let work_available = Condition.create ()
let batch_finished = Condition.create ()
let current : batch option ref = ref None
let workers = ref 0

(* Claim and execute tasks from [b] until none remain. Called with
   [lock] held; returns with [lock] held. *)
let drain b =
  while b.next < b.n do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock lock;
    let result = try Ok (b.task i) with e -> Error e in
    Mutex.lock lock;
    (match result with
    | Ok () -> ()
    | Error e -> if b.failure = None then b.failure <- Some e);
    b.unfinished <- b.unfinished - 1;
    if b.unfinished = 0 then Condition.broadcast batch_finished
  done

let rec worker_loop () =
  Mutex.lock lock;
  let rec await () =
    match !current with
    | Some b when b.next < b.n -> b
    | _ ->
      Condition.wait work_available lock;
      await ()
  in
  let b = await () in
  drain b;
  Mutex.unlock lock;
  worker_loop ()

let ensure_workers k =
  while !workers < k do
    ignore (Domain.spawn worker_loop);
    incr workers
  done

let size () = !workers + 1

let run ~jobs n task =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      task i
    done
  else begin
    let jobs = min jobs max_jobs in
    ensure_workers (jobs - 1);
    Mutex.lock lock;
    (* One batch at a time: the simulator is single-threaded outside the
       pool, so a nested or concurrent [run] indicates a bug. *)
    assert (!current = None);
    let b = { task; n; next = 0; unfinished = n; failure = None } in
    current := Some b;
    Condition.broadcast work_available;
    drain b;
    while b.unfinished > 0 do
      Condition.wait batch_finished lock
    done;
    current := None;
    Mutex.unlock lock;
    match b.failure with Some e -> raise e | None -> ()
  end
