(* Structured error taxonomy for the device simulator and the CGCM
   run-time. A production communication-management layer cannot afford
   context-free failure strings: when a driver call fails or a run-time
   invariant breaks, the diagnosis needs the operation, the address, the
   state of the allocation unit involved, and — because refcount bugs are
   global properties — a snapshot of the whole allocation map.

   The types live in [Cgcm_support] so that [Cgcm_gpusim] can raise
   {!Device_error} and [Cgcm_runtime] can catch it (and wrap it into a
   {!runtime_error}) without a dependency cycle. *)

(* A point-in-time copy of one allocation unit's run-time metadata. *)
type unit_snapshot = {
  u_base : int;
  u_size : int;
  u_refcount : int;
  u_arr_refcount : int;
  u_epoch : int;
  u_devptr : int option;
  u_global : string option;
}

type transfer_dir = Host_to_device | Device_to_host

(* Faults raised by the simulated driver (cf. CUDA_ERROR_OUT_OF_MEMORY,
   CUDA_ERROR_LAUNCH_FAILED, ...). [injected] distinguishes a fault fired
   by the fault-injection plan from a genuine capacity exhaustion. *)
type device_fault =
  | Oom of {
      op : string;  (* cuMemAlloc / cuModuleGetGlobal *)
      requested : int;
      live : int;  (* device bytes live at the failing call *)
      capacity : int;
      injected : bool;
    }
  | Transfer_failed of { dir : transfer_dir; bytes : int; injected : bool }
  | Launch_failed of { kernel : string; injected : bool }

exception Device_error of device_fault

(* A failed run-time operation: what was attempted, on which pointer, why
   it failed, the unit involved (when one was resolved), the device fault
   that triggered it (when one did), and the full allocation map. *)
type runtime_error = {
  op : string;
  addr : int option;
  reason : string;
  unit_ : unit_snapshot option;
  device : device_fault option;
  alloc_map : unit_snapshot list;
}

(* ------------------------------------------------------------------ *)
(* Renderers                                                           *)

let dir_name = function
  | Host_to_device -> "host-to-device"
  | Device_to_host -> "device-to-host"

let render_unit u =
  Printf.sprintf "unit base=0x%x size=%d refcount=%d arrayRefcount=%d epoch=%d devptr=%s%s"
    u.u_base u.u_size u.u_refcount u.u_arr_refcount u.u_epoch
    (match u.u_devptr with
    | Some d -> Printf.sprintf "0x%x" d
    | None -> "-")
    (match u.u_global with Some g -> " global=" ^ g | None -> "")

let render_device_fault = function
  | Oom { op; requested; live; capacity; injected } ->
    Printf.sprintf
      "device out of memory in %s: requested %d bytes, %d live of %s capacity%s"
      op requested live
      (if capacity = max_int then "unbounded" else string_of_int capacity)
      (if injected then " [injected]" else "")
  | Transfer_failed { dir; bytes; injected } ->
    Printf.sprintf "%s transfer of %d bytes failed%s" (dir_name dir) bytes
      (if injected then " [injected]" else "")
  | Launch_failed { kernel; injected } ->
    Printf.sprintf "launch of kernel %s failed%s" kernel
      (if injected then " [injected]" else "")

(* ------------------------------------------------------------------ *)
(* Coherence violations (the shadow-memory sanitizer)                  *)

(* The sanitizer mirrors every allocation unit with an independent
   byte-version map and raises one of these the moment the program (or
   the run-time) observes or destroys a stale byte. *)
type violation_kind =
  | Stale_device_read
      (* a kernel read a byte the host updated after the last HtoD *)
  | Stale_host_read
      (* the host read a byte whose freshest value is (or died on) the
         device copy *)
  | Lost_host_update
      (* a DtoH write-back overwrote bytes the host had updated *)
  | Premature_release
      (* a device copy was freed (or a unit unregistered) while still
         referenced *)
  | Double_free  (* a device block was freed twice *)

let violation_kind_name = function
  | Stale_device_read -> "stale-device-read"
  | Stale_host_read -> "stale-host-read"
  | Lost_host_update -> "lost-host-update"
  | Premature_release -> "premature-release"
  | Double_free -> "double-free"

type violation = {
  v_kind : violation_kind;
  v_unit : unit_snapshot;  (* the shadow's view of the unit *)
  v_addr : int;  (* the offending address, in the faulting space *)
  v_offset : int;  (* byte offset of the first bad byte within the unit *)
  v_instr : string;  (* the offending instruction or run-time operation *)
  v_detail : string;
  v_history : string list;  (* version history, oldest first *)
}

exception Coherence_violation of violation

let render_violation v =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "cgcm sanitizer: %s at 0x%x (byte %d of unit%s)"
       (violation_kind_name v.v_kind)
       v.v_addr v.v_offset
       (match v.v_unit.u_global with Some g -> " global " ^ g | None -> ""));
  Buffer.add_string b "\n  offending instruction: ";
  Buffer.add_string b v.v_instr;
  Buffer.add_string b "\n  ";
  Buffer.add_string b (render_unit v.v_unit);
  Buffer.add_string b "\n  detail: ";
  Buffer.add_string b v.v_detail;
  (match v.v_history with
  | [] -> Buffer.add_string b "\n  version history: empty"
  | h ->
    Buffer.add_string b "\n  version history (most recent first):";
    List.iter
      (fun e ->
        Buffer.add_string b "\n    ";
        Buffer.add_string b e)
      (List.rev h));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Service rejections (the cgcm serve daemon)                          *)

(* The serve daemon never lets one request take down or starve the rest:
   a request can be shed at admission (queue or device-memory
   contention), killed at its deadline (the interpreter's fuel budget),
   or rejected because its tenant's circuit breaker is open. Each is a
   typed, rendered, distinctly-exit-coded outcome — not an anonymous
   failure — so clients can implement backoff and fallback policies. *)

type overload_info = {
  ov_queue_depth : int;
  ov_queue_limit : int;
  ov_warm_bytes : int;  (* cross-request device residency held by tenants *)
  ov_capacity : int;  (* simulated device capacity; max_int = unbounded *)
  ov_reason : string;  (* "queue" | "device-mem" | "draining" *)
}

exception Serve_overloaded of overload_info

exception Serve_deadline of { dl_deadline : int (* fuel units granted *) }

exception
  Serve_circuit_open of {
    co_tenant : string;
    co_failures : int;  (* consecutive failures that tripped the breaker *)
  }

let render_overload o =
  Printf.sprintf
    "cgcm serve: overloaded (%s): queue %d of %d, %d warm bytes of %s device \
     capacity; request shed"
    o.ov_reason o.ov_queue_depth o.ov_queue_limit o.ov_warm_bytes
    (if o.ov_capacity = max_int then "unbounded"
     else string_of_int o.ov_capacity)

let render_deadline ~deadline =
  Printf.sprintf
    "cgcm serve: deadline exceeded: request used up its budget of %d fuel"
    deadline

let render_circuit_open ~tenant ~failures =
  Printf.sprintf
    "cgcm serve: circuit open for tenant %s after %d consecutive failures; \
     only degraded (CPU-fallback) execution is available"
    tenant failures

exception Serve_socket_busy of { sb_path : string }

exception
  Serve_request_timeout of { rt_socket : string; rt_timeout_ms : int }

let render_socket_busy ~path =
  Printf.sprintf
    "cgcm serve: socket %s is answered by a live daemon; refusing to start \
     (stop it, or pick another --socket path)"
    path

let render_request_timeout ~socket ~timeout_ms =
  Printf.sprintf
    "cgcm request: no reply from the daemon at %s within %d ms; it may be \
     wedged or dead"
    socket timeout_ms

(* Full diagnostic: one header line, then the unit, the device fault, and
   the allocation map — everything needed to diagnose a refcount or
   residency bug from the error alone. *)
let render_runtime e =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "cgcm runtime error in %s%s: %s" e.op
       (match e.addr with
       | Some a -> Printf.sprintf " (pointer 0x%x)" a
       | None -> "")
       e.reason);
  (match e.unit_ with
  | Some u ->
    Buffer.add_string b "\n  ";
    Buffer.add_string b (render_unit u)
  | None -> ());
  (match e.device with
  | Some f ->
    Buffer.add_string b "\n  device fault: ";
    Buffer.add_string b (render_device_fault f)
  | None -> ());
  (match e.alloc_map with
  | [] -> Buffer.add_string b "\n  allocation map: empty"
  | units ->
    Buffer.add_string b
      (Printf.sprintf "\n  allocation map (%d units):" (List.length units));
    List.iter
      (fun u ->
        Buffer.add_string b "\n    ";
        Buffer.add_string b (render_unit u))
      units);
  Buffer.contents b
