(** Structured error taxonomy shared by the device simulator and the
    CGCM run-time.

    Lives in [Cgcm_support] so the device layer can raise
    {!Device_error} and the run-time can catch it without a dependency
    cycle. Every run-time failure carries the operation, the pointer,
    the allocation unit involved, and a snapshot of the whole
    allocation map; {!render_runtime} turns that into the diagnostic
    the CLI prints. *)

type unit_snapshot = {
  u_base : int;
  u_size : int;
  u_refcount : int;
  u_arr_refcount : int;
  u_epoch : int;
  u_devptr : int option;
  u_global : string option;
}
(** Point-in-time copy of one allocation unit's run-time metadata. *)

type transfer_dir = Host_to_device | Device_to_host

type device_fault =
  | Oom of {
      op : string;
      requested : int;
      live : int;
      capacity : int;
      injected : bool;
    }
  | Transfer_failed of { dir : transfer_dir; bytes : int; injected : bool }
  | Launch_failed of { kernel : string; injected : bool }
      (** Faults raised by the simulated driver. [injected] marks faults
          fired by a fault-injection plan rather than genuine capacity
          exhaustion. *)

exception Device_error of device_fault

type runtime_error = {
  op : string;  (** the run-time operation that failed *)
  addr : int option;  (** the pointer it was applied to *)
  reason : string;
  unit_ : unit_snapshot option;  (** the unit involved, when resolved *)
  device : device_fault option;  (** the device fault behind it, if any *)
  alloc_map : unit_snapshot list;  (** whole allocation map at failure *)
}

val render_unit : unit_snapshot -> string
val render_device_fault : device_fault -> string

val render_runtime : runtime_error -> string
(** Multi-line diagnostic: header, unit, device fault, allocation map. *)
