(** Structured error taxonomy shared by the device simulator and the
    CGCM run-time.

    Lives in [Cgcm_support] so the device layer can raise
    {!Device_error} and the run-time can catch it without a dependency
    cycle. Every run-time failure carries the operation, the pointer,
    the allocation unit involved, and a snapshot of the whole
    allocation map; {!render_runtime} turns that into the diagnostic
    the CLI prints. *)

type unit_snapshot = {
  u_base : int;
  u_size : int;
  u_refcount : int;
  u_arr_refcount : int;
  u_epoch : int;
  u_devptr : int option;
  u_global : string option;
}
(** Point-in-time copy of one allocation unit's run-time metadata. *)

type transfer_dir = Host_to_device | Device_to_host

type device_fault =
  | Oom of {
      op : string;
      requested : int;
      live : int;
      capacity : int;
      injected : bool;
    }
  | Transfer_failed of { dir : transfer_dir; bytes : int; injected : bool }
  | Launch_failed of { kernel : string; injected : bool }
      (** Faults raised by the simulated driver. [injected] marks faults
          fired by a fault-injection plan rather than genuine capacity
          exhaustion. *)

exception Device_error of device_fault

type runtime_error = {
  op : string;  (** the run-time operation that failed *)
  addr : int option;  (** the pointer it was applied to *)
  reason : string;
  unit_ : unit_snapshot option;  (** the unit involved, when resolved *)
  device : device_fault option;  (** the device fault behind it, if any *)
  alloc_map : unit_snapshot list;  (** whole allocation map at failure *)
}

(** Violations raised by the shadow-memory coherence sanitizer
    ([Cgcm_sanitizer]), which mirrors every allocation unit with an
    independent byte-version map. *)
type violation_kind =
  | Stale_device_read
      (** a kernel read a byte the host updated after the last HtoD *)
  | Stale_host_read
      (** the host read a byte whose freshest value is (or died on) the
          device copy *)
  | Lost_host_update
      (** a DtoH write-back overwrote bytes the host had updated *)
  | Premature_release
      (** a device copy was freed (or a unit unregistered) while still
          referenced *)
  | Double_free  (** a device block was freed twice *)

val violation_kind_name : violation_kind -> string

type violation = {
  v_kind : violation_kind;
  v_unit : unit_snapshot;  (** the shadow's view of the unit *)
  v_addr : int;  (** the offending address, in the faulting space *)
  v_offset : int;  (** byte offset of the first bad byte within the unit *)
  v_instr : string;  (** the offending instruction or run-time operation *)
  v_detail : string;
  v_history : string list;  (** version history, oldest first *)
}

exception Coherence_violation of violation

(** {2 Service rejections}

    Raised (client-side) and classified for the [cgcm serve] daemon's
    typed rejection replies: load shed at admission, a per-request
    deadline enforced through the interpreter's fuel budget, or a
    tenant whose circuit breaker tripped after repeated failures. They
    live here so [Cgcm_core.Diagnostics] can map them to exit codes
    without depending on the serve library. *)

type overload_info = {
  ov_queue_depth : int;
  ov_queue_limit : int;
  ov_warm_bytes : int;
      (** cross-request device residency held by tenants at shed time *)
  ov_capacity : int;  (** simulated device capacity; [max_int] = unbounded *)
  ov_reason : string;  (** ["queue"], ["device-mem"] or ["draining"] *)
}

exception Serve_overloaded of overload_info

exception Serve_deadline of { dl_deadline : int (** fuel units granted *) }

exception
  Serve_circuit_open of { co_tenant : string; co_failures : int }

exception Serve_socket_busy of { sb_path : string }
(** [cgcm serve] refused to start: the socket path is answered by a
    live daemon (a dead daemon's stale socket file is reclaimed
    silently instead). *)

exception
  Serve_request_timeout of { rt_socket : string; rt_timeout_ms : int }
(** [cgcm request --timeout]: the daemon accepted the connection but
    never replied within the budget. *)

val render_overload : overload_info -> string
val render_deadline : deadline:int -> string
val render_circuit_open : tenant:string -> failures:int -> string
val render_socket_busy : path:string -> string
val render_request_timeout : socket:string -> timeout_ms:int -> string

val render_unit : unit_snapshot -> string
val render_device_fault : device_fault -> string

val render_violation : violation -> string
(** Multi-line diagnostic: kind, offending instruction, unit shadow
    state, and the unit's version history. *)

val render_runtime : runtime_error -> string
(** Multi-line diagnostic: header, unit, device fault, allocation map. *)
