(** Glue kernels (Section 5.3): small straight-line CPU regions between
    two kernel launches block map promotion — their loads and stores force
    data back to the host every iteration even though their performance
    contribution is negligible. This pass outlines such regions into
    single-threaded GPU kernels (wrapping the new launch in management
    calls immediately), so the surrounding map operations can rise.

    A region moves when it consists only of arithmetic, loads and stores;
    registers it defines that are used elsewhere keep their (pure)
    defining instructions on the CPU, and a load may stay behind only if
    no moved store can alias it. *)

val default_max_insts : int

val run : ?max_insts:int -> Cgcm_ir.Ir.modul -> unit

val step : Cgcm_analysis.Manager.t -> bool
(** Outline to convergence (at [default_max_insts]) through the
    analysis manager; [true] iff anything was outlined. *)
