(* Map promotion (Section 5.1, Algorithm 4).

   Cyclic communication — map / launch / unmap / release every iteration —
   is transformed into an acyclic pattern by hoisting run-time calls out
   of loop bodies and up the call graph:

     - a map call is *copied* into the loop preheader (the in-loop calls
       stay: they still perform the CPU-to-GPU pointer translation, but
       cause no transfers because the preheader map holds a reference);
     - unmap calls inside the loop are *deleted* (the device copy is
       authoritative for the whole loop);
     - unmap + release are inserted on the loop's exit edges.

   A candidate is promotable when its pointer value provably refers to the
   same allocation unit throughout the region (pointsToChanges: the value
   is region-invariant, possibly after copying its computation into the
   preheader) and the CPU neither reads nor writes that unit inside the
   region (modOrRef, via the underlying-object alias analysis).

   Regions are loops and whole functions; iterating to convergence lets
   map operations climb from inner loops to outer loops to callers. *)

module Ir = Cgcm_ir.Ir
module Loops = Cgcm_analysis.Loops
module Alias = Cgcm_analysis.Alias
module Callgraph = Cgcm_analysis.Callgraph
module Modref = Cgcm_analysis.Modref
module Manager = Cgcm_analysis.Manager

type family = Scalar_family | Array_family

let call_kind name =
  if name = Ir.Intrinsic.map then Some (`Map, Scalar_family)
  else if name = Ir.Intrinsic.unmap then Some (`Unmap, Scalar_family)
  else if name = Ir.Intrinsic.release then Some (`Release, Scalar_family)
  else if name = Ir.Intrinsic.map_array then Some (`Map, Array_family)
  else if name = Ir.Intrinsic.unmap_array then Some (`Unmap, Array_family)
  else if name = Ir.Intrinsic.release_array then Some (`Release, Array_family)
  else None

let fns_of_family = function
  | Scalar_family ->
    (Ir.Intrinsic.map, Ir.Intrinsic.unmap, Ir.Intrinsic.release)
  | Array_family ->
    (Ir.Intrinsic.map_array, Ir.Intrinsic.unmap_array, Ir.Intrinsic.release_array)

(* ------------------------------------------------------------------ *)
(* Invariance: can [v]'s computation be replayed in the preheader?      *)

let rec invariant_chain (f : Ir.func) (alias : Alias.t) ~(in_region : int -> bool)
    ~(def_block : int array) (memo : (int, Ir.value) Hashtbl.t)
    (acc : Ir.instr list ref) (v : Ir.value) : Ir.value option =
  match v with
  | Ir.Imm_int _ | Ir.Imm_float _ | Ir.Global _ -> Some v
  | Ir.Reg r when r < f.Ir.nargs -> Some v  (* parameters are invariant *)
  | Ir.Reg r when not (in_region def_block.(r)) -> Some v
  | Ir.Reg r -> (
    match Hashtbl.find_opt memo r with
    | Some v' -> Some v'
    | None -> (
      match alias.Alias.defs.(r) with
      | Some (Ir.Binop (_, op, a, b)) -> (
        let ca = invariant_chain f alias ~in_region ~def_block memo acc a in
        let cb = invariant_chain f alias ~in_region ~def_block memo acc b in
        match (ca, cb) with
        | Some a', Some b' ->
          let d = Ir.fresh_reg f in
          acc := !acc @ [ Ir.Binop (d, op, a', b') ];
          Hashtbl.replace memo r (Ir.Reg d);
          Some (Ir.Reg d)
        | _ -> None)
      | Some (Ir.Unop (_, op, a)) -> (
        match invariant_chain f alias ~in_region ~def_block memo acc a with
        | Some a' ->
          let d = Ir.fresh_reg f in
          acc := !acc @ [ Ir.Unop (d, op, a') ];
          Hashtbl.replace memo r (Ir.Reg d);
          Some (Ir.Reg d)
        | None -> None)
      | Some (Ir.Load (_, ty, addr)) -> (
        (* Loads are invariant only from private slots not stored to in
           the region. *)
        match addr with
        | Ir.Reg s
          when Hashtbl.find_opt alias.Alias.slots s = Some true
               && not (in_region def_block.(s)) ->
          let stored_in_region =
            Ir.fold_instrs
              (fun acc bi i ->
                acc
                ||
                match i with
                | Ir.Store (_, Ir.Reg s', _) when s' = s -> in_region bi
                | _ -> false)
              false f
          in
          if stored_in_region then None
          else begin
            let d = Ir.fresh_reg f in
            acc := !acc @ [ Ir.Load (d, ty, addr) ];
            Hashtbl.replace memo r (Ir.Reg d);
            Some (Ir.Reg d)
          end
        | _ -> None)
      | _ -> None))

(* ------------------------------------------------------------------ *)
(* modOrRef: does CPU code in the region touch [obj]?                   *)

let call_mod_or_ref (alias : Alias.t) (modref : Modref.t) obj name args =
  match name with
  | _ when Ir.Intrinsic.is_cgcm name -> (
    (* run-time calls synchronise host/device copies; they never make the
       host copy wrong. free, however, kills the unit. *)
    false)
  | "print_i64" | "print_f64" | "malloc" | "calloc" -> false
  | _ when Ir.Intrinsic.is_pure_math name -> false
  | "prints" | "strlen" | "free" | "realloc" ->
    List.exists (fun a -> Alias.may_alias (Alias.underlying alias a) obj) args
  | _ ->
    (* user-defined function: consult the interprocedural summary *)
    Modref.call_may_touch modref ~callee:name obj

let mod_or_ref (f : Ir.func) (alias : Alias.t) (modref : Modref.t)
    ~(in_region : int -> bool) obj =
  Ir.fold_instrs
    (fun acc bi i ->
      acc
      || in_region bi
         &&
         match i with
         | Ir.Load (_, _, addr) | Ir.Store (_, addr, _) ->
           Alias.access_may_alias alias
             ~access:(Alias.underlying alias addr)
             ~target:obj
         | Ir.Call (_, name, args) -> call_mod_or_ref alias modref obj name args
         | Ir.Launch _ | Ir.Alloca _ | Ir.Binop _ | Ir.Unop _ -> false)
    false f

(* ------------------------------------------------------------------ *)
(* Candidates                                                          *)

type candidate = {
  value : Ir.value;
  family : family;
  has_unmap : bool;
}

let candidates_in (f : Ir.func) ~(in_region : int -> bool) : candidate list =
  let tbl = Hashtbl.create 8 in
  Ir.iter_instrs
    (fun bi i ->
      if in_region bi then
        match i with
        | Ir.Call (_, name, [ v ]) -> (
          match call_kind name with
          | Some (kind, family) ->
            let key = v in
            let cur =
              Option.value ~default:(family, false, true)
                (Hashtbl.find_opt tbl key)
            in
            let fam0, unm, consistent = cur in
            Hashtbl.replace tbl key
              ( fam0,
                unm || kind = `Unmap,
                consistent && fam0 = family )
          | None -> ())
        | _ -> ())
    f;
  Hashtbl.fold
    (fun value (family, has_unmap, consistent) acc ->
      if consistent then { value; family; has_unmap } :: acc else acc)
    tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Loop promotion                                                      *)

let def_blocks (f : Ir.func) =
  let db = Array.make f.Ir.nregs (-1) in
  Ir.iter_instrs
    (fun bi i ->
      match Ir.def_of_instr i with Some d -> db.(d) <- bi | None -> ())
    f;
  db

let delete_unmaps (f : Ir.func) ~in_region ~value ~family =
  let _, unmapf, _ = fns_of_family family in
  Rewrite.expand_instrs f (fun bi i ->
      match i with
      | Ir.Call (_, name, [ v ]) when in_region bi && name = unmapf && v = value
        ->
        []
      | i -> [ i ])

(* Try to promote one candidate out of loop [li]; returns true on
   change. The alias result comes through the manager — in the cached
   mode the per-candidate lookups the old code paid for become hits, and
   the CFG edits patch the cached loop analysis instead of forcing the
   restart below to recompute it. *)
let promote_loop_candidate (mgr : Manager.t) (f : Ir.func) (modref : Modref.t)
    (loops : Loops.t) ~li (c : candidate) : bool =
  let l = loops.Loops.loops.(li) in
  if not c.has_unmap then false
  else begin
    let alias = Manager.alias mgr f in
    let in_region bi = Loops.in_loop l bi in
    let db = def_blocks f in
    let chain = ref [] in
    let memo = Hashtbl.create 4 in
    match
      invariant_chain f alias ~in_region ~def_block:db memo chain c.value
    with
    | None -> false
    | Some v' ->
      let obj = Alias.underlying alias c.value in
      if mod_or_ref f alias modref ~in_region obj then false
      else begin
        match Rewrite.make_preheader ~mgr f loops ~li with
        | None -> false
        | Some ph ->
          let mapf, unmapf, releasef = fns_of_family c.family in
          let d = Ir.fresh_reg f in
          Rewrite.append_instrs f ph
            (!chain @ [ Ir.Call (Some d, mapf, [ v' ]) ]);
          delete_unmaps f ~in_region ~value:c.value ~family:c.family;
          (* place unmap + release on every exit edge *)
          List.iter
            (fun (from_, to_) ->
              ignore
                (Rewrite.split_edge ~mgr f ~from_ ~to_
                   ~instrs:
                     [
                       Ir.Call (None, unmapf, [ v' ]);
                       Ir.Call (None, releasef, [ v' ]);
                     ]))
            (Loops.exit_edges f l);
          true
      end
  end

(* One pass over all loops of a function, innermost first; restarts from
   the loop analysis after each change (the CFG mutates). Under the
   cached manager the restart is served by the patched result; the
   uncached mode recomputes here exactly like the old code did. *)
let promote_loops (mgr : Manager.t) (f : Ir.func) (modref : Modref.t) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let loops = Manager.loops mgr f in
    let order = Loops.innermost_first loops in
    let try_one li =
      let l = loops.Loops.loops.(li) in
      let in_region bi = Loops.in_loop l bi in
      let cands = candidates_in f ~in_region in
      List.exists
        (fun c -> promote_loop_candidate mgr f modref loops ~li c)
        cands
    in
    match List.find_opt try_one order with
    | Some _ ->
      changed := true;
      continue_ := true
    | None -> ()
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Function-level promotion: hoist into callers                        *)

(* A pointer value usable at the call site: either a global (available
   anywhere) or one of the callee's parameters. Lowering spills parameters
   into stack slots and reloads them, so we look through a load from a
   private slot whose only store is the entry-block parameter spill. *)
type site_expr = Site_param of int | Site_global of string

let resolve_to_entry (f : Ir.func) (alias : Alias.t) (v : Ir.value) :
    site_expr option =
  match v with
  | Ir.Global g -> Some (Site_global g)
  | Ir.Reg r when r < f.Ir.nargs -> Some (Site_param r)
  | Ir.Reg r -> (
    match alias.Alias.defs.(r) with
    | Some (Ir.Load (_, _, Ir.Reg s))
      when Hashtbl.find_opt alias.Alias.slots s = Some true -> (
      let stores =
        Ir.fold_instrs
          (fun acc _ i ->
            match i with
            | Ir.Store (_, Ir.Reg s', v') when s' = s -> v' :: acc
            | _ -> acc)
          [] f
      in
      match stores with
      | [ Ir.Reg p ] when p < f.Ir.nargs -> Some (Site_param p)
      | [ Ir.Global g ] -> Some (Site_global g)
      | _ -> None)
    | _ -> None)
  | _ -> None

let promote_function (mgr : Manager.t) (m : Ir.modul) (modref : Modref.t)
    (cg : Callgraph.t) (f : Ir.func) : bool =
  if f.Ir.fname = "main" || f.Ir.fkind = Ir.Kernel then false
  else if Callgraph.is_recursive cg f.Ir.fname then false
  else begin
    let sites = Callgraph.call_sites cg f.Ir.fname in
    if sites = [] then false
    else begin
      let in_region _ = true in
      let alias = Manager.alias mgr f in
      let cands =
        candidates_in f ~in_region
        |> List.filter_map (fun c ->
               if not c.has_unmap then None
               else
                 match resolve_to_entry f alias c.value with
                 | Some site ->
                   let obj = Alias.underlying alias c.value in
                   if mod_or_ref f alias modref ~in_region obj then None
                   else Some (c, site)
                 | None -> None)
      in
      if cands = [] then false
      else begin
        (* Delete the callee's unmaps for every promotable candidate. *)
        List.iter
          (fun (c, _) ->
            delete_unmaps f ~in_region ~value:c.value ~family:c.family)
          cands;
        (* Wrap each call site once per distinct (site expression, family). *)
        let keys =
          List.sort_uniq compare (List.map (fun (c, s) -> (s, c.family)) cands)
        in
        let caller_names =
          List.sort_uniq compare (List.map fst sites)
        in
        List.iter
          (fun caller_name ->
            let caller = Ir.find_func_exn m caller_name in
            Rewrite.expand_instrs caller (fun _ i ->
                match i with
                | Ir.Call (_, name, args) when name = f.Ir.fname ->
                  let pre = ref [] and post = ref [] in
                  List.iter
                    (fun (site, family) ->
                      let mapf, unmapf, releasef = fns_of_family family in
                      let site_value =
                        match site with
                        | Site_param p -> List.nth args p
                        | Site_global g -> Ir.Global g
                      in
                      let d = Ir.fresh_reg caller in
                      pre := !pre @ [ Ir.Call (Some d, mapf, [ site_value ]) ];
                      post :=
                        !post
                        @ [
                            Ir.Call (None, unmapf, [ site_value ]);
                            Ir.Call (None, releasef, [ site_value ]);
                          ])
                    keys;
                  !pre @ [ i ] @ !post
                | i -> [ i ]))
          caller_names;
        (* Instruction-only edits: the deleted unmaps and inserted
           wrappers are management intrinsics the call graph and
           mod/ref summaries ignore, but the callee and every caller
           got new instructions and registers. *)
        let preserve =
          [
            Manager.Loops; Manager.Dominance; Manager.Callgraph;
            Manager.Modref; Manager.Kernel_types;
          ]
        in
        Manager.invalidate_function mgr ~preserve f;
        List.iter
          (fun caller_name ->
            Manager.invalidate_function mgr ~preserve
              (Ir.find_func_exn m caller_name))
          caller_names;
        true
      end
    end
  end

(* ------------------------------------------------------------------ *)

(* Manager-driven step: one round of loop- plus function-level
   promotion. The fixpoint combinator (or the legacy [run] below)
   iterates it so map operations climb from inner loops to outer loops
   to callers. The mod/ref and call-graph fetches sit exactly where the
   old code recomputed them — once per sweep — so the uncached mode
   reproduces the restart-from-scratch cost and the cached mode turns
   the re-fetches into hits (promotions only add or delete management
   intrinsics, which both summaries ignore). *)
let step (mgr : Manager.t) : bool =
  let m = Manager.modul mgr in
  let changed = ref false in
  let modref = Manager.modref mgr in
  List.iter
    (fun (f : Ir.func) ->
      if f.Ir.fkind = Ir.Cpu then
        if promote_loops mgr f modref then changed := true)
    m.Ir.funcs;
  let cg = Manager.callgraph mgr in
  let modref = Manager.modref mgr in
  List.iter
    (fun (f : Ir.func) ->
      if f.Ir.fkind = Ir.Cpu then
        if promote_function mgr m modref cg f then changed := true)
    m.Ir.funcs;
  !changed

(* Iterate loop- and function-level promotion to convergence. *)
let run ?(max_iterations = 12) (m : Ir.modul) =
  let mgr = Manager.create m in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < max_iterations do
    incr iter;
    continue_ := step mgr
  done;
  Cgcm_ir.Verifier.verify_modul m
