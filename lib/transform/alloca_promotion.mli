(** Alloca promotion (Section 5.2): map promotion cannot hoist a mapping
    above the function that owns the local variable being mapped, so this
    pass preallocates escaping fixed-size locals in the callers' stack
    frames and passes their address down as a fresh parameter. Only
    non-recursive functions are transformed. As in C, a program relying on
    locals being fresh per call could observe the reuse; CGC programs
    initialise locals before use. *)

val run : ?max_iterations:int -> Cgcm_ir.Ir.modul -> unit

val step : Cgcm_analysis.Manager.t -> bool
(** One promotion sweep over the module through the analysis manager;
    [true] iff anything changed. Iterated to convergence by the pass
    framework's fixpoint combinator. *)
