(* Alloca promotion (Section 5.2).

   Map promotion cannot hoist a mapping above the function that owns the
   local variable being mapped: the allocation unit dies with the frame.
   Alloca promotion preallocates such locals in the *caller's* stack frame
   and passes their address down as an extra parameter, so the map
   operations can climb higher in the call graph.

   Like the paper's implementation we only promote out of non-recursive
   functions, and only fixed-size stack slots that escape to kernels (the
   ones communication management flagged for declareAlloca). As in C, a
   program that relied on its locals being fresh garbage per call could
   observe the reuse; CGC programs initialise locals before use. *)

module Ir = Cgcm_ir.Ir
module Callgraph = Cgcm_analysis.Callgraph

(* Append one parameter to [f]; the new parameter's register is the old
   [nargs], so every existing register >= nargs is shifted up by one. *)
let add_param (f : Ir.func) : int =
  let shift_reg r = if r >= f.Ir.nargs then r + 1 else r in
  let shift_val = function Ir.Reg r -> Ir.Reg (shift_reg r) | v -> v in
  let shift_def i =
    match i with
    | Ir.Binop (d, op, a, b) -> Ir.Binop (shift_reg d, op, a, b)
    | Ir.Unop (d, op, a) -> Ir.Unop (shift_reg d, op, a)
    | Ir.Load (d, ty, a) -> Ir.Load (shift_reg d, ty, a)
    | Ir.Alloca (d, size, info) -> Ir.Alloca (shift_reg d, size, info)
    | Ir.Call (d, name, args) -> Ir.Call (Option.map shift_reg d, name, args)
    | Ir.Store _ | Ir.Launch _ -> i
  in
  Array.iter
    (fun (b : Ir.block) ->
      b.Ir.instrs <-
        List.map (fun i -> shift_def (Ir.map_uses_instr shift_val i)) b.Ir.instrs;
      b.Ir.term <-
        (match b.Ir.term with
        | Ir.Br t -> Ir.Br t
        | Ir.Cbr (v, t1, t2) -> Ir.Cbr (shift_val v, t1, t2)
        | Ir.Ret v -> Ir.Ret (Option.map shift_val v)))
    f.Ir.blocks;
  let p = f.Ir.nargs in
  f.Ir.nargs <- f.Ir.nargs + 1;
  f.Ir.nregs <- f.Ir.nregs + 1;
  p

(* Promote one registered fixed-size alloca of [f] into all callers.
   Returns true on change. *)
let promote_one (mgr : Cgcm_analysis.Manager.t) (m : Ir.modul)
    (cg : Callgraph.t) (f : Ir.func) : bool =
  if f.Ir.fname = "main" || f.Ir.fkind = Ir.Kernel then false
  else if Callgraph.is_recursive cg f.Ir.fname then false
  else begin
    let sites = Callgraph.call_sites cg f.Ir.fname in
    if sites = [] then false
    else begin
      (* find a registered, constant-size alloca *)
      let found = ref None in
      Ir.iter_instrs
        (fun _ i ->
          match i with
          | Ir.Alloca (d, (Ir.Imm_int _ as size), info)
            when info.Ir.aregistered && !found = None ->
            found := Some (d, size, info)
          | _ -> ())
        f;
      match !found with
      | None -> false
      | Some (d, size, info) ->
        (* remove the alloca from f *)
        Rewrite.expand_instrs f (fun _ i ->
            match i with
            | Ir.Alloca (d', _, _) when d' = d -> []
            | i -> [ i ]);
        (* add the parameter and redirect uses of the old register *)
        let p = add_param f in
        let d = if d >= f.Ir.nargs - 1 then d + 1 else d in
        Rewrite.substitute_values f (function
          | Ir.Reg r when r = d -> Ir.Reg p
          | v -> v);
        (* each caller: preallocate in its entry block, extend call sites *)
        let caller_names = List.sort_uniq compare (List.map fst sites) in
        List.iter
          (fun caller_name ->
            let caller = Ir.find_func_exn m caller_name in
            let slot = Ir.fresh_reg caller in
            let entry = caller.Ir.blocks.(0) in
            entry.Ir.instrs <-
              entry.Ir.instrs
              @ [
                  Ir.Alloca
                    ( slot,
                      size,
                      {
                        Ir.aname = info.Ir.aname ^ ".promoted";
                        aregistered = true;
                      } );
                ];
            Rewrite.expand_instrs caller (fun _ i ->
                match i with
                | Ir.Call (dst, name, args) when name = f.Ir.fname ->
                  [ Ir.Call (dst, name, args @ [ Ir.Reg slot ]) ]
                | i -> [ i ]))
          caller_names;
        (* Register renumbering and the callers' new slots clobber the
           instruction-keyed analyses; call sites stay in their blocks
           and the CFG is untouched, so the call graph and the loop and
           dominator trees survive. The callee's accesses now go through
           a pointer parameter, which flips its mod/ref summary. *)
        let open Cgcm_analysis in
        let preserve =
          [
            Manager.Loops; Manager.Dominance; Manager.Callgraph;
            Manager.Kernel_types;
          ]
        in
        Manager.invalidate_function mgr ~preserve f;
        List.iter
          (fun caller_name ->
            Manager.invalidate_function mgr ~preserve
              (Ir.find_func_exn m caller_name))
          caller_names;
        true
    end
  end

(* Manager-driven step: one sweep over the module. The fixpoint
   combinator in the pass framework (or the legacy [run] below) iterates
   it to convergence so promoted slots keep climbing the call graph. *)
let step (mgr : Cgcm_analysis.Manager.t) : bool =
  let open Cgcm_analysis in
  let m = Manager.modul mgr in
  let cg = Manager.callgraph mgr in
  List.fold_left
    (fun acc (f : Ir.func) ->
      if f.Ir.fkind = Ir.Cpu && promote_one mgr m cg f then true else acc)
    false m.Ir.funcs

let run ?(max_iterations = 8) (m : Ir.modul) =
  let mgr = Cgcm_analysis.Manager.create m in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < max_iterations do
    incr iter;
    continue_ := step mgr
  done;
  Cgcm_ir.Verifier.verify_modul m
