(** Communication management (Section 4 of the paper).

    Starts from sequential CPU code launching GPU kernels with no CPU-GPU
    communication whatsoever (the shared-namespace fiction produced by the
    DOALL outliner) and makes the program correct on split memories: each
    kernel's live-ins (launch operands + referenced globals) are
    classified by use-based type inference, and pointer live-ins are
    routed through the run-time — map before the launch, unmap and release
    after it. Stack variables whose address escapes are flagged for
    declareAlloca registration.

    The result is correct but cyclic; the optimization passes remove the
    cycles afterwards. *)

exception Unmanageable of string

val register_escaping_allocas : Cgcm_ir.Ir.func -> unit
(** Mark allocas whose address escapes so the interpreter registers them
    with the run-time (declareAlloca). *)

val manage_launch :
  Cgcm_ir.Ir.func ->
  Cgcm_analysis.Typeinfer.kernel_types ->
  kernel:string ->
  trip:Cgcm_ir.Ir.value ->
  args:Cgcm_ir.Ir.value list ->
  Cgcm_ir.Ir.instr list
(** Wrap one launch in management calls; returns the replacement
    instruction sequence. Exposed for the glue-kernel pass, which must
    manage the launches it synthesises. *)

val run : Cgcm_ir.Ir.modul -> unit
(** Manage every launch in the module; verifies the result. *)

val drop_nth_call : Cgcm_ir.Ir.modul -> intrinsic:string -> n:int -> bool
(** Fault injection for the coherence sanitizer's mutation tests: delete
    the [n]th occurrence (textual order across CPU functions) of the
    named management intrinsic, modelling a communication-management
    bug. A dropped [cgcm.map]'s result is substituted with its host
    pointer operand; unit-returning intrinsics are removed outright. The
    module is intentionally not re-verified. Returns [true] iff a call
    was dropped. *)

val step : Cgcm_analysis.Manager.t -> bool
(** Manage every launch through the analysis manager (no verify);
    [true] iff a launch was wrapped. Not idempotent: re-running it
    would wrap the already-translated launch operands again. *)
