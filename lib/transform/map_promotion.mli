(** Map promotion (Section 5.1, Algorithm 4): turns cyclic communication
    acyclic by hoisting run-time calls out of loops and up the call graph.

    For a loop region: the map call is {e copied} into the preheader (the
    in-loop calls stay — they still perform pointer translation but cause
    no transfers, because the preheader map holds a reference); unmap
    calls inside the loop are deleted; unmap + release are placed on every
    exit edge. A candidate is promotable when its pointer value is
    region-invariant (possibly after cloning its computation into the
    preheader — "copying some code from the loop body") and the CPU
    neither reads nor writes the unit inside the region (modOrRef, via the
    underlying-object alias analysis and interprocedural mod/ref
    summaries).

    For a function region: candidates resolvable to a parameter or global
    are hoisted around every call site in every caller. Iterating the two
    to convergence lets map operations climb from inner loops to outer
    loops to callers, as in the paper. Recursive functions are skipped. *)

val run : ?max_iterations:int -> Cgcm_ir.Ir.modul -> unit

val step : Cgcm_analysis.Manager.t -> bool
(** One round of loop- plus function-level promotion through the
    analysis manager; [true] iff anything changed. The pass framework's
    fixpoint combinator iterates it to convergence. *)
