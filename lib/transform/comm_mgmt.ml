(* Communication management (Section 4 of the paper).

   The pass starts from sequential CPU code launching GPU kernels with no
   CPU-GPU communication whatsoever (a shared namespace fiction produced
   by the DOALL outliner) and makes the program correct on split memories:

   - every kernel's live-in values are its launch operands plus the
     globals its body references;
   - use-based type inference classifies each live-in as scalar, pointer,
     or double pointer (the C types being long gone);
   - pointer live-ins are routed through the run-time: map before the
     launch (translating the operand), unmap and release after it;
   - stack variables whose address escapes are flagged so the interpreter
     registers them with the run-time (declareAlloca).

   The resulting cyclic pattern is correct but slow; the optimization
   passes (glue kernels, alloca promotion, map promotion) remove the
   cycles afterwards. *)

module Ir = Cgcm_ir.Ir
module Typeinfer = Cgcm_analysis.Typeinfer
module Alias = Cgcm_analysis.Alias

exception Unmanageable of string

(* Mark escaping allocas for run-time registration. *)
let register_escaping_allocas (f : Ir.func) =
  let escaping = Alias.escaping_allocas f in
  Ir.iter_instrs
    (fun _ i ->
      match i with
      | Ir.Alloca (d, _, info) when List.mem d escaping ->
        info.Ir.aregistered <- true
      | _ -> ())
    f

let map_fn = function
  | Typeinfer.Pointer -> (Ir.Intrinsic.map, Ir.Intrinsic.unmap, Ir.Intrinsic.release)
  | Typeinfer.Double_pointer ->
    (Ir.Intrinsic.map_array, Ir.Intrinsic.unmap_array, Ir.Intrinsic.release_array)
  | Typeinfer.Scalar -> assert false

(* Wrap one launch with the management calls. Returns the instruction
   sequence replacing it. *)
let manage_launch (f : Ir.func) (types : Typeinfer.kernel_types)
    ~(kernel : string) ~(trip : Ir.value) ~(args : Ir.value list) :
    Ir.instr list =
  let pre = ref [] and post = ref [] in
  let new_args =
    List.mapi
      (fun j arg ->
        (* parameter 0 is the thread index; launch operand j is param j+1 *)
        match types.Typeinfer.param_cls.(j + 1) with
        | Typeinfer.Scalar -> arg
        | (Typeinfer.Pointer | Typeinfer.Double_pointer) as cls ->
          let mapf, unmapf, releasef = map_fn cls in
          let d = Ir.fresh_reg f in
          pre := Ir.Call (Some d, mapf, [ arg ]) :: !pre;
          post :=
            !post @ [ Ir.Call (None, unmapf, [ arg ]); Ir.Call (None, releasef, [ arg ]) ];
          Ir.Reg d)
      args
  in
  List.iter
    (fun (g, cls) ->
      match cls with
      | Typeinfer.Scalar -> ()
      | (Typeinfer.Pointer | Typeinfer.Double_pointer) as cls ->
        let mapf, unmapf, releasef = map_fn cls in
        let d = Ir.fresh_reg f in
        (* The kernel reaches the global through cuModuleGetGlobal; the map
           call's job is the data transfer, its result is unused. *)
        pre := Ir.Call (Some d, mapf, [ Ir.Global g ]) :: !pre;
        post :=
          !post
          @ [
              Ir.Call (None, unmapf, [ Ir.Global g ]);
              Ir.Call (None, releasef, [ Ir.Global g ]);
            ])
    types.Typeinfer.global_cls;
  List.rev !pre
  @ [ Ir.Launch { kernel; trip; args = new_args } ]
  @ !post

(* Manage every launch in the module. The kernel classifications come
   through the manager, so a later glue-kernels or fuzz re-run reuses
   them; launches never feed the loop, dominator, call-graph or mod/ref
   analyses, so wrapping them preserves all four. *)
let step (mgr : Cgcm_analysis.Manager.t) : bool =
  let open Cgcm_analysis in
  let m = Manager.modul mgr in
  let types_of kernel =
    match Ir.find_func m kernel with
    | Some k when k.Ir.fkind = Ir.Kernel -> Manager.kernel_types mgr k
    | Some _ | None -> raise (Unmanageable ("unknown kernel " ^ kernel))
  in
  let changed = ref false in
  List.iter
    (fun (f : Ir.func) ->
      if f.Ir.fkind = Ir.Cpu then begin
        register_escaping_allocas f;
        let touched = ref false in
        Rewrite.expand_instrs f (fun _bi i ->
            match i with
            | Ir.Launch { kernel; trip; args } ->
              touched := true;
              manage_launch f (types_of kernel) ~kernel ~trip ~args
            | i -> [ i ]);
        if !touched then begin
          changed := true;
          Manager.invalidate_function mgr
            ~preserve:
              [
                Manager.Loops; Manager.Dominance; Manager.Callgraph;
                Manager.Modref; Manager.Kernel_types;
              ]
            f
        end
      end)
    m.Ir.funcs;
  !changed

let run (m : Ir.modul) =
  ignore (step (Cgcm_analysis.Manager.create m));
  Cgcm_ir.Verifier.verify_modul m

(* Fault injection for the sanitizer's mutation tests: delete the [n]th
   occurrence (textual order across CPU functions) of a management
   intrinsic this pass inserted. Dropping a [cgcm.map] forwards the raw
   host pointer to the uses of its result — a compiler that forgot to
   translate the operand; the unit-returning intrinsics are simply
   removed. The module is deliberately not re-verified: the point is to
   hand the interpreter a miscompiled program and watch the sanitizer
   name the bug. Returns whether anything was dropped. *)
let drop_nth_call (m : Ir.modul) ~intrinsic ~n : bool =
  let count = ref 0 in
  let dropped = ref false in
  List.iter
    (fun (f : Ir.func) ->
      if f.Ir.fkind = Ir.Cpu then begin
        let subst = Hashtbl.create 1 in
        Rewrite.expand_instrs f (fun _bi i ->
            match i with
            | Ir.Call (dst, name, args) when name = intrinsic ->
              let k = !count in
              incr count;
              if k = n then begin
                dropped := true;
                (match (dst, args) with
                | Some d, a :: _ -> Hashtbl.replace subst d a
                | _ -> ());
                []
              end
              else [ i ]
            | i -> [ i ]);
        if Hashtbl.length subst > 0 then
          Rewrite.substitute_values f (function
            | Ir.Reg r as v -> (
              match Hashtbl.find_opt subst r with Some a -> a | None -> v)
            | v -> v)
      end)
    m.Ir.funcs;
  !dropped
