(* Small IR rewriting helpers shared by the transformation passes.

   The CFG-editing helpers ([split_edge], [make_preheader]) optionally
   take the analysis manager: they patch the cached loop analysis
   incrementally (the new block is only ever appended, so existing loop
   structure is untouched) and drop the function-level analyses the edit
   clobbered (dominators, alias, liveness). Module-level effects of the
   *instructions* a caller places in the new block remain the caller's
   responsibility — the helpers assume they are management intrinsics,
   which the call graph and mod/ref summaries ignore. *)

module Ir = Cgcm_ir.Ir
module Loops = Cgcm_analysis.Loops
module Manager = Cgcm_analysis.Manager

(* Replace instruction lists block by block; [f] maps one instruction to a
   sequence. *)
let expand_instrs (func : Ir.func) f =
  Array.iteri
    (fun bi (b : Ir.block) -> b.Ir.instrs <- List.concat_map (f bi) b.Ir.instrs)
    func.Ir.blocks

(* Substitute values (e.g. redirect a register) everywhere. *)
let substitute_values (func : Ir.func) subst =
  Array.iter
    (fun (b : Ir.block) ->
      b.Ir.instrs <- List.map (Ir.map_uses_instr subst) b.Ir.instrs;
      b.Ir.term <-
        (match b.Ir.term with
        | Ir.Br t -> Ir.Br t
        | Ir.Cbr (v, t1, t2) -> Ir.Cbr (subst v, t1, t2)
        | Ir.Ret v -> Ir.Ret (Option.map subst v)))
    func.Ir.blocks

(* Redirect an edge [from_ -> to_] to [to_'] in the terminator. *)
let redirect_edge (func : Ir.func) ~from_ ~to_ ~to_' =
  let b = func.Ir.blocks.(from_) in
  b.Ir.term <-
    (match b.Ir.term with
    | Ir.Br t when t = to_ -> Ir.Br to_'
    | Ir.Cbr (v, t1, t2) ->
      Ir.Cbr (v, (if t1 = to_ then to_' else t1), if t2 = to_ then to_' else t2)
    | t -> t)

(* What a CFG edit leaves intact: loop info is patched separately, and
   the intrinsic-only instructions our callers insert are invisible to
   the call graph and mod/ref summaries. *)
let cfg_edit_preserves =
  [ Manager.Loops; Manager.Callgraph; Manager.Modref; Manager.Kernel_types ]

(* Split the edge [from_ -> to_] with a fresh block holding [instrs]. *)
let split_edge ?mgr (func : Ir.func) ~from_ ~to_ ~instrs =
  let nb = Ir.add_block func { Ir.instrs; term = Ir.Br to_ } in
  redirect_edge func ~from_ ~to_ ~to_':nb;
  (match mgr with
  | Some mgr ->
    Manager.patch_loops mgr func (fun lt ->
        Loops.note_edge_block lt ~from_ ~to_ ~nb);
    Manager.invalidate_function mgr ~preserve:cfg_edit_preserves func
  | None -> ());
  nb

(* Create a preheader: a block that is the unique non-loop predecessor
   of loop [li]'s header. Returns its index, or None if the header is
   the function entry. *)
let make_preheader ?mgr (func : Ir.func) (loops : Loops.t) ~li =
  let l = loops.Loops.loops.(li) in
  if l.Loops.header = 0 then None
  else begin
    let entries = Loops.entry_edges func l in
    match entries with
    | [] -> None  (* unreachable loop *)
    | _ ->
      let header = l.Loops.header in
      let ph = Ir.add_block func { Ir.instrs = []; term = Ir.Br header } in
      List.iter
        (fun p -> redirect_edge func ~from_:p ~to_:header ~to_':ph)
        entries;
      (match mgr with
      | Some mgr ->
        Manager.patch_loops mgr func (fun lt -> Loops.note_preheader lt ~li ~ph);
        Manager.invalidate_function mgr ~preserve:cfg_edit_preserves func
      | None -> ());
      Some ph
  end

(* Append instructions at the end of a block (before the terminator). *)
let append_instrs (func : Ir.func) b instrs =
  let blk = func.Ir.blocks.(b) in
  blk.Ir.instrs <- blk.Ir.instrs @ instrs
