(* Glue kernels (Section 5.3).

   A small straight-line CPU region sandwiched between two kernel launches
   blocks map promotion: its loads and stores force the data back to the
   host every iteration even though its performance contribution is
   negligible. The pass outlines such regions into single-threaded GPU
   kernels, so the data can stay on the device and the surrounding map
   operations can rise.

   A region is outlined when:
     - it sits between two launches in the same basic block (run-time
       calls inserted by communication management may intervene);
     - it consists only of arithmetic, loads and stores (no calls, allocas
       or launches) and is short (default at most 40 instructions);
     - no register it defines is used outside the region (values flow
       through memory, which is on the device anyway).

   The new launch is immediately wrapped in management calls; map
   promotion then treats it like any other kernel. *)

module Ir = Cgcm_ir.Ir
module Typeinfer = Cgcm_analysis.Typeinfer

let default_max_insts = 40

let is_simple = function
  | Ir.Binop _ | Ir.Unop _ | Ir.Load _ | Ir.Store _ -> true
  | Ir.Call _ | Ir.Launch _ | Ir.Alloca _ -> false

let is_runtime_call = function
  | Ir.Call (_, name, _) -> Ir.Intrinsic.is_cgcm name
  | _ -> false

let is_launch = function Ir.Launch _ -> true | _ -> false

(* Registers used by an instruction/terminator. *)
let regs_used_instr i =
  List.filter_map
    (function Ir.Reg r -> Some r | _ -> None)
    (Ir.uses_of_instr i)

(* Partition [region] into the instructions that can move to the GPU and
   those that must stay: an instruction stays if its defined register is
   used by anything outside the moved set (the launches' trip operands,
   run-time calls, later code, other blocks, terminators). Pure arithmetic
   may stay behind; a load or store whose def escapes makes the region
   un-outlineable (reordering memory operations would be unsound).
   Returns the moved instructions, or None. *)
let partition_region (f : Ir.func) ~(bi : int) ~(region : Ir.instr list)
    ~(stays : Ir.instr list) : Ir.instr list option =
  let used_outside moved r =
    let in_moved i = List.memq i moved in
    let use_in i = List.mem r (regs_used_instr i) in
    List.exists use_in stays
    || List.exists (fun i -> (not (in_moved i)) && use_in i) region
    || Ir.fold_instrs
         (fun acc bj i -> acc || (bj <> bi && use_in i))
         false f
    || Array.exists
         (fun (b : Ir.block) ->
           List.exists
             (function Ir.Reg r' -> r' = r | _ -> false)
             (Ir.uses_of_term b.Ir.term))
         f.Ir.blocks
  in
  let rec fixpoint moved =
    let moved', kicked =
      List.partition
        (fun i ->
          match Ir.def_of_instr i with
          | Some r -> not (used_outside moved r)
          | None -> true)
        moved
    in
    if kicked = [] then moved' else fixpoint moved'
  in
  let moved = fixpoint region in
  let kept = List.filter (fun i -> not (List.memq i moved)) region in
  (* A kept load is sound only if no moved store can write what it reads
     (its effective position moves from after the glue region to before). *)
  let alias = Cgcm_analysis.Alias.analyze f in
  let moved_store_objs =
    List.filter_map
      (function
        | Ir.Store (_, addr, _) ->
          Some (Cgcm_analysis.Alias.underlying alias addr)
        | _ -> None)
      moved
  in
  let kept_ok =
    List.for_all
      (function
        | Ir.Binop _ | Ir.Unop _ -> true
        | Ir.Load (_, _, addr) ->
          let o = Cgcm_analysis.Alias.underlying alias addr in
          not
            (List.exists
               (fun o' -> Cgcm_analysis.Alias.may_alias o o')
               moved_store_objs)
        | _ -> false)
      kept
  in
  let moved_has_memory =
    List.exists (function Ir.Load _ | Ir.Store _ -> true | _ -> false) moved
  in
  if kept_ok && moved_has_memory && moved <> [] then Some moved else None

(* Free values of the region: used but not defined inside. *)
let region_live_ins (region : Ir.instr list) : Ir.value list =
  let defs = List.filter_map Ir.def_of_instr region in
  let acc = ref [] in
  List.iter
    (fun i ->
      List.iter
        (fun v ->
          match v with
          | Ir.Reg r when List.mem r defs -> ()
          | Ir.Imm_int _ | Ir.Imm_float _ -> ()
          | v -> if not (List.mem v !acc) then acc := !acc @ [ v ])
        (Ir.uses_of_instr i))
    region;
  !acc

(* Outline [region] as a single-threaded kernel; returns the kernel. *)
let outline_region (m : Ir.modul) ~(host : Ir.func) ~(name : string)
    (region : Ir.instr list) (live_ins : Ir.value list) : Ir.func =
  ignore host;
  let nargs = 1 + List.length live_ins in
  let k =
    {
      Ir.fname = name;
      nargs;
      nregs = nargs;
      blocks = [| { Ir.instrs = []; term = Ir.Ret None } |];
      fkind = Ir.Kernel;
    }
  in
  (* map live-in value -> parameter register (0 is the thread id) *)
  let mapping = List.mapi (fun i v -> (v, Ir.Reg (i + 1))) live_ins in
  (* defined registers get fresh registers in the kernel *)
  let def_map = Hashtbl.create 8 in
  List.iter
    (fun i ->
      match Ir.def_of_instr i with
      | Some d -> Hashtbl.replace def_map d (Ir.fresh_reg k)
      | None -> ())
    region;
  let subst v =
    match List.assoc_opt v mapping with
    | Some p -> p
    | None -> (
      match v with
      | Ir.Reg r when Hashtbl.mem def_map r -> Ir.Reg (Hashtbl.find def_map r)
      | v -> v)
  in
  let remap_def i =
    match i with
    | Ir.Binop (d, op, a, b) -> Ir.Binop (Hashtbl.find def_map d, op, a, b)
    | Ir.Unop (d, op, a) -> Ir.Unop (Hashtbl.find def_map d, op, a)
    | Ir.Load (d, ty, a) -> Ir.Load (Hashtbl.find def_map d, ty, a)
    | i -> i
  in
  let body = List.map (fun i -> remap_def (Ir.map_uses_instr subst i)) region in
  k.Ir.blocks.(0).Ir.instrs <- body;
  Ir.add_func m k;
  k

(* Scan one block for an outlining opportunity. Returns true on change. *)
let try_block (mgr : Cgcm_analysis.Manager.t) (m : Ir.modul) (f : Ir.func)
    (bi : int) ~(max_insts : int) : bool =
  let b = f.Ir.blocks.(bi) in
  let instrs = Array.of_list b.Ir.instrs in
  let n = Array.length instrs in
  (* positions of launches *)
  let launch_positions = ref [] in
  Array.iteri (fun i ins -> if is_launch ins then launch_positions := i :: !launch_positions) instrs;
  let launches = List.rev !launch_positions in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  let candidate_between (l1, l2) =
    (* region = simple instrs strictly between, skipping runtime calls *)
    let region = ref [] in
    let ok = ref true in
    for i = l1 + 1 to l2 - 1 do
      let ins = instrs.(i) in
      if is_runtime_call ins then ()
      else if is_simple ins then region := ins :: !region
      else ok := false
    done;
    let region = List.rev !region in
    let has_memory_op =
      List.exists (function Ir.Load _ | Ir.Store _ -> true | _ -> false) region
    in
    if
      !ok && region <> []
      && has_memory_op
      && List.length region <= max_insts
    then Some (l1, l2, region)
    else None
  in
  match List.find_map candidate_between (pairs launches) with
  | None -> false
  | Some (l1, l2, region) -> begin
    (* Anything that stays in the block and could use a region-defined
       register: the launches, the run-time calls between them, and
       everything after l2. *)
    let stays = ref [] in
    Array.iteri
      (fun i ins ->
        if (i > l1 && i < l2 && is_runtime_call ins) || i >= l2 then
          stays := ins :: !stays)
      instrs;
    ignore n;
    match partition_region f ~bi ~region ~stays:(List.rev !stays) with
    | None -> false
    | Some moved ->
      let name = Fmt.str "__glue_%s_%d" f.Ir.fname bi in
      let name =
        if Ir.find_func m name = None then name
        else Fmt.str "%s_%d" name (List.length m.Ir.funcs)
      in
      let live_ins = region_live_ins moved in
      let k = outline_region m ~host:f ~name moved live_ins in
      (* Wrap the new launch in management calls right away. *)
      let types = Cgcm_analysis.Manager.kernel_types mgr k in
      let managed =
        Comm_mgmt.manage_launch f types ~kernel:name ~trip:(Ir.imm 1)
          ~args:live_ins
      in
      (* Rebuild the block: drop the moved instructions and place the
         managed glue launch directly before l2. *)
      let out = ref [] in
      Array.iteri
        (fun i ins ->
          if i > l1 && i < l2 && List.memq ins moved then ()
          else if i = l2 then begin
            out := List.rev_append managed !out;
            out := ins :: !out
          end
          else out := ins :: !out)
        instrs;
      b.Ir.instrs <- List.rev !out;
      true
  end

(* Manager-driven step: outline to convergence, per CPU function. The
   rewrites stay within existing blocks (no CFG edit) and never touch an
   existing kernel, so loop, dominator and kernel-type results survive;
   the moved loads/stores change the host function's mod/ref summary and
   the new kernel functions change the call-graph node set. *)
let step_with ~max_insts (mgr : Cgcm_analysis.Manager.t) : bool =
  let open Cgcm_analysis in
  let m = Manager.modul mgr in
  let any = ref false in
  List.iter
    (fun (f : Ir.func) ->
      if f.Ir.fkind = Ir.Cpu then begin
        let changed = ref true in
        let touched = ref false in
        while !changed do
          changed := false;
          Array.iteri
            (fun bi _ ->
              if bi < Array.length f.Ir.blocks then
                if try_block mgr m f bi ~max_insts then begin
                  changed := true;
                  touched := true
                end)
            f.Ir.blocks
        done;
        if !touched then begin
          any := true;
          Manager.invalidate_function mgr
            ~preserve:
              [ Manager.Loops; Manager.Dominance; Manager.Kernel_types ]
            f
        end
      end)
    m.Ir.funcs;
  !any

let step mgr = step_with ~max_insts:default_max_insts mgr

let run ?(max_insts = default_max_insts) (m : Ir.modul) =
  ignore (step_with ~max_insts (Cgcm_analysis.Manager.create m));
  Cgcm_ir.Verifier.verify_modul m
