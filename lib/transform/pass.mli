(** Pass framework: passes as records declaring what they require and
    preserve, composed into plans (with fixpoint iteration) and run over
    a caching {!Cgcm_analysis.Manager} under instrumentation hooks. *)

module Manager = Cgcm_analysis.Manager

type t = {
  name : string;
  description : string;
  requires : Manager.kind list;
      (** analyses the pass consults (documentation; fetches go through
          the manager either way) *)
  preserves : Manager.kind list;
      (** analyses still valid after the pass ran and did its own
          fine-grained invalidation/patching; everything else is
          dropped module-wide when the pass reports a change *)
  step : Manager.t -> bool;  (** [true] iff the pass changed the IR *)
}

val make :
  name:string ->
  description:string ->
  ?requires:Manager.kind list ->
  ?preserves:Manager.kind list ->
  (Manager.t -> bool) ->
  t

(** The standard CGCM passes. *)

val simplify : t
val comm_mgmt : t
val glue_kernels : t
val alloca_promotion : t
val map_promotion : t

val all : t list
(** The single pass registry: every pass, in §5.3 schedule order.
    [find] and the CLI's [--passes] enumerate from here. *)

val find : string -> t option

(** {1 Plans} *)

(** A plan is a tree of passes: atoms run once, fixpoints iterate their
    body until no pass reports a change (or [max_iter] is hit). *)
type plan_item = Atom of t | Fixpoint of { max_iter : int; body : plan }

and plan = plan_item list

val default_fixpoint_iters : int

val fixpoint : ?max_iter:int -> plan -> plan_item
(** The convergence combinator that subsumes the hand-rolled loops the
    promotion passes used to carry. *)

val per_function :
  ?kinds:Cgcm_ir.Ir.fkind list ->
  (Manager.t -> Cgcm_ir.Ir.func -> bool) ->
  Manager.t ->
  bool
(** Lift a per-function step over the module's functions (all kinds by
    default); [true] iff any function changed. *)

val unmanaged_plan : plan
(** Simplify only: the sequential baseline's pipeline. *)

val managed_pipeline : plan
(** simplify + communication management: unoptimized CGCM. *)

val optimized_pipeline : plan
(** The full §5.3 schedule — simplify, comm-mgmt, glue kernels, then
    alloca promotion and map promotion each iterated to convergence. *)

val named_plans : (string * plan) list
(** [unmanaged]/[managed]/[optimized]. *)

val parse_plan : string -> (plan, string) result
(** Parse a custom spec like ["simplify,comm-mgmt,fixpoint(map-promotion)"]:
    comma-separated pass names, with [fixpoint(...)] wrapping a sub-plan.
    A named plan's name is also accepted as an item. *)

val plan_to_string : plan -> string
(** Inverse of {!parse_plan} (canonical spelling). *)

(** {1 Instrumented execution} *)

(** When to run {!Cgcm_ir.Verifier.verify_modul}: after every pass
    execution (the historical behaviour), only after one that changed
    the IR, or once when the whole plan finishes. *)
type verify_policy = Always | On_change | Final

type pass_stat = {
  ps_pass : string;
  ps_wall_ms : float;
  ps_changed : bool;
  ps_instrs_before : int;
  ps_instrs_after : int;
  ps_launches_before : int;
  ps_launches_after : int;
  ps_rtcalls_before : int;
  ps_rtcalls_after : int;  (** management-intrinsic call count *)
  ps_ir_changed : bool option;
      (** printed-IR diff verdict; [Some _] only under [snapshot] hooks *)
}

type hooks = {
  on_stat : pass_stat -> unit;
  after_pass : string -> Cgcm_ir.Ir.modul -> unit;
      (** called after every pass execution (for [--dump-ir after:p]) *)
  snapshot : bool;
      (** print the module before/after each pass and diff the text *)
}

val default_hooks : hooks

val run_plan :
  ?hooks:hooks -> ?verify:verify_policy -> Manager.t -> plan -> unit
(** Execute [plan] over the manager's module. After each pass execution
    that changed the IR, analyses outside the pass's [preserves] set are
    invalidated module-wide (the pass's own finer-grained invalidation
    already ran inside [step]). *)

val run_pipeline : plan -> Cgcm_ir.Ir.modul -> unit
(** Convenience: run over a fresh cached manager with default hooks and
    the [Always] verify policy. *)

(** {1 Module metrics} *)

val instr_count : Cgcm_ir.Ir.modul -> int
val launch_count : Cgcm_ir.Ir.modul -> int

val runtime_call_count : Cgcm_ir.Ir.modul -> int
(** Static count of management-intrinsic call sites. *)
