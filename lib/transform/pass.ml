(* Pass framework: passes declare requires/preserves and run over the
   caching analysis manager, composed into plans with fixpoint iteration
   and executed under instrumentation hooks (per-pass timing, IR deltas,
   optional snapshot diffing, configurable verification). *)

module Ir = Cgcm_ir.Ir
module Manager = Cgcm_analysis.Manager

let src = Logs.Src.create "cgcm.pass" ~doc:"CGCM pass manager"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  name : string;
  description : string;
  requires : Manager.kind list;
  preserves : Manager.kind list;
  step : Manager.t -> bool;
}

let make ~name ~description ?(requires = []) ?(preserves = []) step =
  { name; description; requires; preserves; step }

let per_function ?(kinds = [ Ir.Cpu; Ir.Kernel ]) body (mgr : Manager.t) =
  List.fold_left
    (fun acc (f : Ir.func) ->
      if List.mem f.Ir.fkind kinds then body mgr f || acc else acc)
    false (Manager.modul mgr).Ir.funcs

(* The standard CGCM passes, in their §5.3 schedule order. Each pass's
   [preserves] set is its contract: what stays valid given the
   fine-grained invalidation its step already performed. *)
let simplify =
  make ~name:"simplify"
    ~description:"constant folding, algebraic identities, dead code"
    ~preserves:[ Manager.Loops; Manager.Dominance; Manager.Callgraph ]
    Simplify.step

let comm_mgmt =
  make ~name:"comm-mgmt"
    ~description:
      "insert map/unmap/release around every launch (use-based type \
       inference); mark escaping allocas"
    ~requires:[ Manager.Kernel_types ]
    ~preserves:
      [
        Manager.Loops; Manager.Dominance; Manager.Callgraph; Manager.Modref;
        Manager.Kernel_types;
      ]
    Comm_mgmt.step

let glue_kernels =
  make ~name:"glue-kernels"
    ~description:"outline small CPU regions between launches onto the GPU"
    ~requires:[ Manager.Kernel_types ]
    ~preserves:[ Manager.Loops; Manager.Dominance; Manager.Kernel_types ]
    Glue_kernels.step

let alloca_promotion =
  make ~name:"alloca-promotion"
    ~description:"preallocate escaping locals in callers' frames"
    ~requires:[ Manager.Callgraph ]
    ~preserves:
      [
        Manager.Loops; Manager.Dominance; Manager.Callgraph;
        Manager.Kernel_types;
      ]
    Alloca_promotion.step

let map_promotion =
  make ~name:"map-promotion"
    ~description:
      "hoist run-time calls out of loops and up the call graph (acyclic \
       communication)"
    ~requires:
      [
        Manager.Loops; Manager.Dominance; Manager.Alias; Manager.Callgraph;
        Manager.Modref;
      ]
    ~preserves:
      [
        Manager.Loops; Manager.Dominance; Manager.Callgraph; Manager.Modref;
        Manager.Kernel_types;
      ]
    Map_promotion.step

(* The single registry: [find] and the CLI enumerate from here. *)
let all =
  [ simplify; comm_mgmt; glue_kernels; alloca_promotion; map_promotion ]

let find name = List.find_opt (fun p -> p.name = name) all

(* ------------------------------------------------------------------ *)
(* Plans *)

type plan_item = Atom of t | Fixpoint of { max_iter : int; body : plan }
and plan = plan_item list

let default_fixpoint_iters = 12

let fixpoint ?(max_iter = default_fixpoint_iters) body =
  Fixpoint { max_iter; body }

let unmanaged_plan = [ Atom simplify ]
let managed_pipeline = [ Atom simplify; Atom comm_mgmt ]

let optimized_pipeline =
  [
    Atom simplify;
    Atom comm_mgmt;
    Atom glue_kernels;
    fixpoint ~max_iter:8 [ Atom alloca_promotion ];
    fixpoint ~max_iter:12 [ Atom map_promotion ];
  ]

let named_plans =
  [
    ("unmanaged", unmanaged_plan);
    ("managed", managed_pipeline);
    ("optimized", optimized_pipeline);
  ]

(* Split [s] on commas at parenthesis depth 0. *)
let split_top s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts

let rec parse_plan (s : string) : (plan, string) result =
  let items = split_top s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: _ -> Error "empty pass name in spec"
    | tok :: rest -> (
      let n = String.length tok in
      if
        n > 10
        && String.sub tok 0 9 = "fixpoint("
        && tok.[n - 1] = ')'
      then
        match parse_plan (String.sub tok 9 (n - 10)) with
        | Ok body -> go (fixpoint body :: acc) rest
        | Error e -> Error e
      else
        match find tok with
        | Some p -> go (Atom p :: acc) rest
        | None -> (
          match List.assoc_opt tok named_plans with
          | Some plan -> go (List.rev_append plan acc) rest
          | None ->
            Error
              (Fmt.str "unknown pass %S (available: %s)" tok
                 (String.concat ", " (List.map (fun p -> p.name) all)))))
  in
  go [] items

let rec plan_to_string (plan : plan) =
  String.concat ","
    (List.map
       (function
         | Atom p -> p.name
         | Fixpoint { body; _ } -> Fmt.str "fixpoint(%s)" (plan_to_string body))
       plan)

(* ------------------------------------------------------------------ *)
(* Module metrics *)

let instr_count (m : Ir.modul) =
  List.fold_left
    (fun acc f -> Ir.fold_instrs (fun n _ _ -> n + 1) acc f)
    0 m.Ir.funcs

let launch_count (m : Ir.modul) =
  List.fold_left
    (fun acc f ->
      Ir.fold_instrs
        (fun n _ i -> match i with Ir.Launch _ -> n + 1 | _ -> n)
        acc f)
    0 m.Ir.funcs

let runtime_call_count (m : Ir.modul) =
  List.fold_left
    (fun acc f ->
      Ir.fold_instrs
        (fun n _ i ->
          match i with
          | Ir.Call (_, name, _) when Ir.Intrinsic.is_cgcm name -> n + 1
          | _ -> n)
        acc f)
    0 m.Ir.funcs

(* ------------------------------------------------------------------ *)
(* Instrumented execution *)

type verify_policy = Always | On_change | Final

type pass_stat = {
  ps_pass : string;
  ps_wall_ms : float;
  ps_changed : bool;
  ps_instrs_before : int;
  ps_instrs_after : int;
  ps_launches_before : int;
  ps_launches_after : int;
  ps_rtcalls_before : int;
  ps_rtcalls_after : int;
  ps_ir_changed : bool option;
}

type hooks = {
  on_stat : pass_stat -> unit;
  after_pass : string -> Ir.modul -> unit;
  snapshot : bool;
}

let default_hooks =
  { on_stat = ignore; after_pass = (fun _ _ -> ()); snapshot = false }

let run_plan ?(hooks = default_hooks) ?(verify = Always) (mgr : Manager.t)
    (plan : plan) =
  let m = Manager.modul mgr in
  let exec_atom p =
    let before =
      if hooks.snapshot then Some (Cgcm_ir.Printer.modul_to_string m)
      else None
    in
    let ib = instr_count m in
    let lb = launch_count m in
    let rb = runtime_call_count m in
    let t0 = Sys.time () in
    let changed = p.step mgr in
    let dt = (Sys.time () -. t0) *. 1000.0 in
    if changed then Manager.invalidate_module mgr ~preserve:p.preserves ();
    (match verify with
    | Always -> Cgcm_ir.Verifier.verify_modul m
    | On_change -> if changed then Cgcm_ir.Verifier.verify_modul m
    | Final -> ());
    let ir_changed =
      Option.map (fun s -> s <> Cgcm_ir.Printer.modul_to_string m) before
    in
    hooks.on_stat
      {
        ps_pass = p.name;
        ps_wall_ms = dt;
        ps_changed = changed;
        ps_instrs_before = ib;
        ps_instrs_after = instr_count m;
        ps_launches_before = lb;
        ps_launches_after = launch_count m;
        ps_rtcalls_before = rb;
        ps_rtcalls_after = runtime_call_count m;
        ps_ir_changed = ir_changed;
      };
    hooks.after_pass p.name m;
    Log.debug (fun k ->
        k "%s: %d -> %d instructions (%.1f ms)%s" p.name ib (instr_count m)
          dt
          (if changed then "" else " [no change]"));
    changed
  in
  let rec exec_item = function
    | Atom p -> exec_atom p
    | Fixpoint { max_iter; body } ->
      let any = ref false in
      let continue_ = ref true in
      let iter = ref 0 in
      while !continue_ && !iter < max_iter do
        incr iter;
        continue_ := false;
        List.iter
          (fun item ->
            if exec_item item then begin
              continue_ := true;
              any := true
            end)
          body
      done;
      !any
  in
  List.iter (fun item -> ignore (exec_item item)) plan;
  if verify = Final then Cgcm_ir.Verifier.verify_modul m

let run_pipeline (plan : plan) (m : Ir.modul) =
  run_plan (Manager.create m) plan
