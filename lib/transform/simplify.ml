(* IR clean-up: constant folding, algebraic identities, and dead-code
   elimination. The DOALL outliner generates trip-count chains like
   [sub 64, 0; add r, 0; div r, 1], and the lowering spills every source
   variable; folding them keeps IR dumps readable and the interpreter
   honest about instruction counts.

   Run uniformly in every pipeline configuration (including the sequential
   baseline) so the cost-model comparisons stay fair. *)

module Ir = Cgcm_ir.Ir

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)

let fold_binop op (a : int64) (b : int64) : Ir.value option =
  let open Ir in
  let i v = Some (Imm_int v) in
  let bool_ c = i (if c then 1L else 0L) in
  match op with
  | Add -> i (Int64.add a b)
  | Sub -> i (Int64.sub a b)
  | Mul -> i (Int64.mul a b)
  | Div -> if b = 0L then None else i (Int64.div a b)
  | Rem -> if b = 0L then None else i (Int64.rem a b)
  | And -> i (Int64.logand a b)
  | Or -> i (Int64.logor a b)
  | Xor -> i (Int64.logxor a b)
  | Shl -> i (Int64.shift_left a (Int64.to_int b land 63))
  | Shr -> i (Int64.shift_right_logical a (Int64.to_int b land 63))
  | Eq -> bool_ (a = b)
  | Ne -> bool_ (a <> b)
  | Lt -> bool_ (a < b)
  | Le -> bool_ (a <= b)
  | Gt -> bool_ (a > b)
  | Ge -> bool_ (a >= b)
  | Fadd | Fsub | Fmul | Fdiv | Feq | Fne | Flt | Fle | Fgt | Fge -> None

let fold_fbinop op (a : float) (b : float) : Ir.value option =
  let open Ir in
  let f v = Some (Imm_float v) in
  let bool_ c = Some (Imm_int (if c then 1L else 0L)) in
  match op with
  | Fadd -> f (a +. b)
  | Fsub -> f (a -. b)
  | Fmul -> f (a *. b)
  | Fdiv -> f (a /. b)
  | Feq -> bool_ (a = b)
  | Fne -> bool_ (a <> b)
  | Flt -> bool_ (a < b)
  | Fle -> bool_ (a <= b)
  | Fgt -> bool_ (a > b)
  | Fge -> bool_ (a >= b)
  | _ -> None

(* Algebraic identities that need only one constant operand. *)
let identity op (a : Ir.value) (b : Ir.value) : Ir.value option =
  let open Ir in
  match (op, a, b) with
  | Add, v, Imm_int 0L | Add, Imm_int 0L, v -> Some v
  | Sub, v, Imm_int 0L -> Some v
  | Mul, v, Imm_int 1L | Mul, Imm_int 1L, v -> Some v
  | Mul, _, Imm_int 0L | Mul, Imm_int 0L, _ -> Some (Imm_int 0L)
  | Div, v, Imm_int 1L -> Some v
  | Or, v, Imm_int 0L | Or, Imm_int 0L, v -> Some v
  | Xor, v, Imm_int 0L | Xor, Imm_int 0L, v -> Some v
  | Shl, v, Imm_int 0L | Shr, v, Imm_int 0L -> Some v
  | _ -> None

let fold_unop op (v : Ir.value) : Ir.value option =
  let open Ir in
  match (op, v) with
  | Neg, Imm_int a -> Some (Imm_int (Int64.neg a))
  | Not, Imm_int a -> Some (Imm_int (Int64.lognot a))
  | Fneg, Imm_float a -> Some (Imm_float (-.a))
  | Int_to_float, Imm_int a -> Some (Imm_float (Int64.to_float a))
  | Float_to_int, Imm_float a -> Some (Imm_int (Int64.of_float a))
  | _ -> None

(* One folding pass over a function: registers whose definition folds to a
   constant (or an existing value) are substituted into their uses. *)
let fold_once (f : Ir.func) : bool =
  let subst : (int, Ir.value) Hashtbl.t = Hashtbl.create 16 in
  let resolve v =
    match v with
    | Ir.Reg r -> ( match Hashtbl.find_opt subst r with Some v' -> v' | None -> v)
    | v -> v
  in
  (* collect foldable definitions *)
  Ir.iter_instrs
    (fun _ i ->
      match i with
      | Ir.Binop (d, op, a, b) -> (
        let a = resolve a and b = resolve b in
        match (a, b) with
        | Ir.Imm_int x, Ir.Imm_int y -> (
          match fold_binop op x y with
          | Some v -> Hashtbl.replace subst d v
          | None -> ())
        | Ir.Imm_float x, Ir.Imm_float y -> (
          match fold_fbinop op x y with
          | Some v -> Hashtbl.replace subst d v
          | None -> ())
        | _ -> (
          match identity op a b with
          | Some v -> Hashtbl.replace subst d v
          | None -> ()))
      | Ir.Unop (d, op, a) -> (
        match fold_unop op (resolve a) with
        | Some v -> Hashtbl.replace subst d v
        | None -> ())
      | _ -> ())
    f;
  if Hashtbl.length subst = 0 then false
  else begin
    Rewrite.substitute_values f resolve;
    true
  end

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)

(* An instruction is removable when it defines a register nobody uses and
   has no side effect. Loads are treated as pure (an out-of-bounds access
   whose result is unused is undefined behaviour in the source language);
   calls, stores, launches and allocas always stay. *)
let removable = function
  | Ir.Binop _ | Ir.Unop _ | Ir.Load _ -> true
  | Ir.Store _ | Ir.Call _ | Ir.Launch _ | Ir.Alloca _ -> false

let dce_once (f : Ir.func) : bool =
  let used = Array.make f.Ir.nregs false in
  let see = function Ir.Reg r -> used.(r) <- true | _ -> () in
  Array.iter
    (fun (b : Ir.block) ->
      List.iter (fun i -> List.iter see (Ir.uses_of_instr i)) b.Ir.instrs;
      List.iter see (Ir.uses_of_term b.Ir.term))
    f.Ir.blocks;
  let changed = ref false in
  Rewrite.expand_instrs f (fun _ i ->
      match Ir.def_of_instr i with
      | Some d when removable i && not used.(d) ->
        changed := true;
        []
      | _ -> [ i ]);
  !changed

(* Folded constants leave dead definition chains; iterate to a fixpoint.
   Returns whether anything changed. *)
let run_func (f : Ir.func) =
  let changed = ref false in
  let continue_ = ref true in
  let budget = ref 16 in
  while !continue_ && !budget > 0 do
    decr budget;
    let a = fold_once f in
    let b = dce_once f in
    continue_ := a || b;
    if a || b then changed := true
  done;
  !changed

(* Manager-driven step. Simplify never touches the CFG or a call
   instruction, so loop, dominator and call-graph results survive;
   substitution and DCE clobber everything keyed to instructions. *)
let step (mgr : Cgcm_analysis.Manager.t) : bool =
  let open Cgcm_analysis in
  List.fold_left
    (fun acc (f : Ir.func) ->
      if run_func f then begin
        Manager.invalidate_function mgr
          ~preserve:[ Manager.Loops; Manager.Dominance; Manager.Callgraph ]
          f;
        true
      end
      else acc)
    false
    (Manager.modul mgr).Ir.funcs

let run (m : Ir.modul) =
  List.iter (fun f -> ignore (run_func f)) m.Ir.funcs;
  Cgcm_ir.Verifier.verify_modul m
