(** A simulated byte-addressable memory space.

    The host (CPU) memory and the GPU device memory are separate instances
    with disjoint address ranges — the divided memories that motivate
    CGCM. Every allocation is an {e allocation unit} in the paper's sense:
    a contiguous region created as a single unit, resolvable from any
    interior pointer. Accesses are bounds-checked against the containing
    unit, so valid pointer arithmetic (within a unit, per C99) works and
    anything else raises {!Fault}. *)

(** Raised on wild pointers, out-of-bounds accesses, use-after-free,
    double free, interior-pointer free, and exhaustion. *)
exception Fault of string

(** Raise a {!Fault} with a formatted message. *)
val fault : ('a, Format.formatter, unit, 'b) format4 -> 'a

type block = {
  base : int;
  size : int;
  data : Bytes.t;
  mutable tag : string;  (** provenance label, for diagnostics *)
  space_id : int;  (** id of the owning space, for handle validation *)
  mutable freed : bool;
  mutable d_lo : int;  (** head dirty interval, [d_lo, d_hi) in offsets *)
  mutable d_hi : int;
  mutable d_rest : (int * int) list;
      (** retired dirty spans, sorted, pairwise non-adjacent *)
}

type t = {
  name : string;
  id : int;
  range_lo : int;
  range_hi : int;
  mutable next : int;  (** bump-allocation frontier *)
  mutable blocks : block Cgcm_support.Avl_map.Int.t;
  mutable live_bytes : int;
  mutable peak_bytes : int;
  mutable last : block option;  (** one-entry resolution cache *)
  pool : (int, block list) Hashtbl.t;  (** recycling pool, by size *)
  mutable pooled : int;
}

val word_size : int
(** Size of an IR word (8 bytes). *)

val create : name:string -> range_lo:int -> range_hi:int -> t
(** [create ~name ~range_lo ~range_hi] is an empty space whose unit
    addresses fall in [\[range_lo, range_hi)]. *)

val in_range : t -> int -> bool

val alloc : ?tag:string -> t -> int -> int
(** [alloc t size] creates a zero-initialised allocation unit and returns
    its base address. A 16-byte guard gap separates consecutive units so
    off-by-one arithmetic faults rather than corrupting a neighbour.
    Size 0 is clamped to 1. *)

val free : t -> int -> unit
(** [free t base] retires the unit whose base address is [base]. Faults on
    interior pointers and double frees. *)

val free_local : t -> int -> unit
(** Like {!free}, but for frame-local slots (interpreter allocas): the
    block is kept, marked freed, in a recycling pool so the next same-size
    {!alloc} reuses it without index traffic. Dangling pointers to a
    pooled block fault as use-after-free. *)

val pool_flush : t -> unit
(** Retire every block in the recycling pool for real. Called at
    inspector-executor launch boundaries so kernel frames never recycle a
    block allocated before the launch (the access tracker would count it
    as a communicated unit). *)

val block_of_addr : t -> int -> block
(** Resolve an interior pointer to its allocation unit (the paper's
    greatest-key-≤ lookup). Faults on wild pointers. *)

val unit_bounds : t -> int -> int * int
(** [unit_bounds t addr] is [(base, size)] of the containing unit. *)

(** {2 Typed access} — all bounds-checked against the containing unit. *)

val load_u8 : t -> int -> int
val store_u8 : t -> int -> int -> unit
val load_i64 : t -> int -> int64
val store_i64 : t -> int -> int64 -> unit
val load_f64 : t -> int -> float
val store_f64 : t -> int -> float -> unit

val read_bytes : t -> int -> int -> Bytes.t
val write_bytes : t -> int -> Bytes.t -> unit

val blit : src:t -> src_addr:int -> dst:t -> dst_addr:int -> len:int -> unit
(** Copy bytes across (or within) spaces — the transfer engine's core. *)

(** {2 NUL-terminated strings} *)

val store_string : t -> int -> string -> unit
val load_string : t -> int -> string

(** {2 Block handles}

    The fast path for code that repeatedly touches the same allocation
    unit (the closure-compiled interpreter). A handle is the resolved
    block; {!handle_valid} revalidates it with one combined
    range-and-liveness test instead of the tree lookup plus span check,
    and the [h_]-prefixed accessors read and write without further
    checks. Handles carry their owning space's id, so a handle cached
    across a CPU/GPU context switch never aliases the other space. *)

type handle = block

val null_handle : handle
(** A handle that never validates — the initial value of handle caches. *)

val handle_valid : handle -> t -> int -> int -> bool
(** [handle_valid h t addr len] is true when [h] is live, belongs to [t],
    and [\[addr, addr+len)] lies inside it. *)

val acquire_handle : t -> int -> int -> string -> handle
(** [acquire_handle t addr len what] resolves and span-checks once;
    faults exactly as the checked accessors would. *)

(** Unchecked accessors: the caller must have validated (or just
    acquired) the handle for the given address and width. Stores record
    dirty spans. *)

val h_load_u8 : handle -> int -> int
val h_store_u8 : handle -> int -> int -> unit
val h_load_i64 : handle -> int -> int64
val h_store_i64 : handle -> int -> int64 -> unit
val h_load_f64 : handle -> int -> float
val h_store_f64 : handle -> int -> float -> unit
val handle_base : handle -> int

(** {2 Deferred dirty logging}

    The dirty-span accumulator is order-dependent mutable state, so
    shards of a parallel kernel must not update it concurrently. The
    [_log] store variants perform the [Bytes] write immediately but
    append the span bookkeeping to a private per-shard log;
    {!log_replay} at the join barrier feeds the entries through the
    ordinary accumulator. Replaying shard logs in shard (= iteration)
    order reproduces the sequential engine's span state exactly. *)

type dirty_log

val log_create : unit -> dirty_log
val log_clear : dirty_log -> unit

val h_store_u8_log : dirty_log -> handle -> int -> int -> unit
val h_store_i64_log : dirty_log -> handle -> int -> int64 -> unit
val h_store_f64_log : dirty_log -> handle -> int -> float -> unit

val log_replay : dirty_log -> unit
(** Feed every logged store through the dirty-span accumulator, in log
    order, then clear the log. *)

(** {2 Dirty spans}

    Every store records the written interval in a coarse merged interval
    list on the block (nearby writes are coalesced, so spans
    over-approximate but never lose a written byte). The CGCM run-time
    reads and clears these to transfer only bytes written since the last
    copy. *)

val dirty_spans : t -> int -> (int * int) list
(** [dirty_spans t base] is the dirty [(offset, length)] pairs of the
    unit based at [base], sorted, disjoint, clipped to the unit. *)

val clear_dirty : t -> int -> unit
val dirty_bytes : t -> int -> int

(** {2 Accounting} *)

val live_bytes : t -> int
val peak_bytes : t -> int
val live_units : t -> int

val blocks_snapshot : t -> (int * int * string) list
(** Live blocks as [(base, size, tag)] in ascending base order, pooled
    blocks excluded — the raw material for leak checks and the
    allocation-map dump of error diagnostics. *)
