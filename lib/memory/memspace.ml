(* A simulated byte-addressable memory space. The host (CPU) memory and the
   GPU device memory are two separate instances with disjoint address
   ranges, mirroring the divided memories that motivate CGCM.

   Every allocation is an *allocation unit* in the paper's sense: a
   contiguous region created as a single unit. Addresses are plain ints;
   resolution from an interior pointer back to its unit uses the same
   greatest-key-<= query the CGCM run-time uses, so valid pointer
   arithmetic (within a unit, per C99) works and anything else faults.

   Two performance features sit on top of the basic model:

   - *Block handles*: [block_of_addr] plus the per-access span check is
     the hot path of the interpreter. A caller that repeatedly touches
     the same unit can hold the resolved block and revalidate it with a
     single range-and-liveness test ([handle_valid]) instead of paying
     the tree lookup and the separate span check every time. Handles
     carry the id of their owning space, so a handle cached across a
     CPU/GPU context switch can never alias a block of the other space.

   - *Dirty spans*: every store records the written interval in a coarse
     merged interval list on the block. The CGCM run-time reads and
     clears these to transfer only the bytes written since the last copy
     instead of whole allocation units. Spans may over-approximate
     (nearby writes are coalesced) but never lose a written byte. *)

exception Fault of string

let fault fmt = Fmt.kstr (fun s -> raise (Fault s)) fmt

(* Writes closer than this are coalesced into one dirty span; keeps the
   interval lists tiny under strided access patterns. *)
let dirty_gap = 64

(* At most this many retired spans per block before the closest pair is
   merged: bounds the insert cost on pathological scatter patterns. *)
let max_dirty_spans = 8

type block = {
  base : int;
  size : int;
  data : Bytes.t;
  mutable tag : string;  (* mutable so recycled frame slots re-label *)
  space_id : int;  (* id of the owning space, for handle validation *)
  mutable freed : bool;
  (* Dirty interval accumulator. The head interval [d_lo, d_hi) is held
     in two mutable ints so the common case — sequential writes extending
     the current span — allocates nothing. Older spans retire into
     [d_rest], kept sorted by offset and pairwise non-adjacent. The empty
     state is d_lo = max_int, d_hi = min_int. *)
  mutable d_lo : int;
  mutable d_hi : int;
  mutable d_rest : (int * int) list;  (* (lo, hi) half-open, offsets *)
}

type t = {
  name : string;
  id : int;
  range_lo : int;
  range_hi : int;
  mutable next : int;
  mutable blocks : block Cgcm_support.Avl_map.Int.t;
  mutable live_bytes : int;
  mutable peak_bytes : int;
  (* one-entry cache: consecutive accesses usually hit the same unit *)
  mutable last : block option;
  (* Recycling pool for frame-local slots (see [free_local]): size ->
     freed blocks kept in the index for reuse. [pooled] counts them so
     [live_units] stays accurate. *)
  pool : (int, block list) Hashtbl.t;
  mutable pooled : int;
}

let word_size = 8

let next_space_id = ref 0

let create ~name ~range_lo ~range_hi =
  incr next_space_id;
  {
    name;
    id = !next_space_id;
    range_lo;
    range_hi;
    next = range_lo;
    blocks = Cgcm_support.Avl_map.Int.empty;
    live_bytes = 0;
    peak_bytes = 0;
    last = None;
    pool = Hashtbl.create 8;
    pooled = 0;
  }

let in_range t addr = addr >= t.range_lo && addr < t.range_hi

let round_up n align = (n + align - 1) / align * align

(* Allocate [size] bytes (zero-initialised). A 16-byte guard gap separates
   consecutive units so off-by-one pointer arithmetic faults instead of
   silently touching a neighbour. *)
let alloc_fresh ~tag t size =
  let base = t.next in
  if base + size > t.range_hi then
    fault "%s: out of memory allocating %d bytes" t.name size;
  t.next <- base + round_up size 16 + 16;
  let block =
    {
      base;
      size;
      data = Bytes.make size '\000';
      tag;
      space_id = t.id;
      freed = false;
      d_lo = max_int;
      d_hi = min_int;
      d_rest = [];
    }
  in
  t.blocks <- Cgcm_support.Avl_map.Int.add base block t.blocks;
  t.live_bytes <- t.live_bytes + size;
  t.peak_bytes <- max t.peak_bytes t.live_bytes;
  base

let alloc ?(tag = "heap") t size =
  if size < 0 then fault "%s: negative allocation size %d" t.name size;
  let size = max size 1 in
  match Hashtbl.find_opt t.pool size with
  | Some (b :: rest) ->
    (* Recycle a pooled slot of the same size: already in the index, so
       no AVL traffic and no fresh Bytes; just zero and re-arm it. *)
    Hashtbl.replace t.pool size rest;
    t.pooled <- t.pooled - 1;
    Bytes.fill b.data 0 size '\000';
    b.freed <- false;
    b.tag <- tag;
    b.d_lo <- max_int;
    b.d_hi <- min_int;
    b.d_rest <- [];
    t.live_bytes <- t.live_bytes + size;
    t.peak_bytes <- max t.peak_bytes t.live_bytes;
    b.base
  | _ -> alloc_fresh ~tag t size

let block_of_base t base =
  match Cgcm_support.Avl_map.Int.find_opt base t.blocks with
  | Some b when not b.freed -> b
  | Some _ -> fault "%s: use of freed block at 0x%x" t.name base
  | None -> fault "%s: 0x%x is not the base of any allocation unit" t.name base

(* Resolve an interior pointer to its allocation unit. *)
let block_of_addr t addr =
  match t.last with
  | Some b when (not b.freed) && addr >= b.base && addr < b.base + b.size -> b
  | _ -> (
    match Cgcm_support.Avl_map.Int.greatest_leq addr t.blocks with
    | Some (_, b) when (not b.freed) && addr >= b.base && addr < b.base + b.size
      ->
      t.last <- Some b;
      b
    | Some (_, b) when b.freed && addr >= b.base && addr < b.base + b.size ->
      fault "%s: access to freed allocation unit (addr 0x%x, tag %s)" t.name
        addr b.tag
    | _ -> fault "%s: wild pointer 0x%x" t.name addr)

let free t base =
  let b = block_of_base t base in
  if b.base <> base then
    fault "%s: free of interior pointer 0x%x (unit base 0x%x)" t.name base b.base;
  b.freed <- true;
  t.live_bytes <- t.live_bytes - b.size;
  t.blocks <- Cgcm_support.Avl_map.Int.remove base t.blocks

(* Blocks freed per size class held for recycling; beyond this the block
   is really freed. Frame pops rarely outrun frame pushes by more. *)
let max_pool = 1024

(* Free a frame-local slot (interpreter stack frames popping their
   allocas). The block stays in the index, marked freed — dangling
   pointers still fault — and goes to the recycling pool, so the
   alloca-per-kernel-thread pattern costs no index traffic. *)
let free_local t base =
  let b = block_of_base t base in
  if b.base <> base then
    fault "%s: free of interior pointer 0x%x (unit base 0x%x)" t.name base b.base;
  b.freed <- true;
  t.live_bytes <- t.live_bytes - b.size;
  if t.pooled >= max_pool then
    t.blocks <- Cgcm_support.Avl_map.Int.remove base t.blocks
  else begin
    let prev =
      match Hashtbl.find_opt t.pool b.size with Some l -> l | None -> []
    in
    Hashtbl.replace t.pool b.size (b :: prev);
    t.pooled <- t.pooled + 1
  end

(* Drop every pooled block from the index. Used at inspector-executor
   launch boundaries: the tracker treats any unit below the pre-launch
   high-water mark as communication, so kernel frames must not recycle
   older (lower-addressed) blocks or their locals would be counted as
   transferred units. *)
let pool_flush t =
  if t.pooled > 0 then begin
    Hashtbl.iter
      (fun _ bs ->
        List.iter
          (fun b -> t.blocks <- Cgcm_support.Avl_map.Int.remove b.base t.blocks)
          bs)
      t.pool;
    Hashtbl.reset t.pool;
    t.pooled <- 0
  end

let check_span t b addr len what =
  if addr < b.base || addr + len > b.base + b.size then
    fault "%s: %s of %d bytes at 0x%x overruns unit [0x%x, 0x%x)" t.name what len
      addr b.base (b.base + b.size)

(* ------------------------------------------------------------------ *)
(* Dirty-span tracking                                                 *)

(* Insert a span into a sorted, merged list (offsets, half-open). *)
let rec insert_span ((lo, hi) as s) = function
  | [] -> [ s ]
  | (a, z) :: rest when hi + dirty_gap < a -> s :: (a, z) :: rest
  | (a, z) :: rest when z + dirty_gap < lo -> (a, z) :: insert_span s rest
  | (a, z) :: rest ->
    (* overlaps or nearly touches: merge, then keep absorbing *)
    insert_span (min a lo, max z hi) rest

(* Merge the closest pair of neighbours to bound the list length. *)
let collapse_closest spans =
  match spans with
  | [] | [ _ ] -> spans
  | _ ->
    let best = ref max_int in
    let rec find_gap = function
      | (_, z1) :: (((l2, _) :: _) as rest) ->
        if l2 - z1 < !best then best := l2 - z1;
        find_gap rest
      | _ -> ()
    in
    find_gap spans;
    let rec merge = function
      | (l1, z1) :: ((l2, z2) :: rest2 as rest) ->
        if l2 - z1 = !best then (l1, max z1 z2) :: rest2
        else (l1, z1) :: merge rest
      | rest -> rest
    in
    merge spans

let note_dirty b off len =
  let lo = off and hi = off + len in
  if b.d_hi < b.d_lo then begin
    (* empty: start the head interval *)
    b.d_lo <- lo;
    b.d_hi <- hi
  end
  else if lo <= b.d_hi + dirty_gap && hi >= b.d_lo - dirty_gap then begin
    (* extends (or lands near) the head interval: no allocation *)
    if lo < b.d_lo then b.d_lo <- lo;
    if hi > b.d_hi then b.d_hi <- hi
  end
  else begin
    (* retire the head into the sorted list, restart the head *)
    b.d_rest <- insert_span (b.d_lo, b.d_hi) b.d_rest;
    if List.length b.d_rest > max_dirty_spans then
      b.d_rest <- collapse_closest b.d_rest;
    b.d_lo <- lo;
    b.d_hi <- hi
  end

(* All dirty spans of the unit based at [base], as (offset, length) pairs
   sorted by offset. Spans are disjoint and clipped to the unit. *)
let dirty_spans t base =
  let b = block_of_base t base in
  let all =
    if b.d_hi < b.d_lo then b.d_rest else insert_span (b.d_lo, b.d_hi) b.d_rest
  in
  List.map
    (fun (lo, hi) ->
      let lo = max 0 lo and hi = min b.size hi in
      (lo, hi - lo))
    all
  |> List.filter (fun (_, len) -> len > 0)

let clear_dirty t base =
  let b = block_of_base t base in
  b.d_lo <- max_int;
  b.d_hi <- min_int;
  b.d_rest <- []

(* Total dirty bytes (over-approximate, as spans are). *)
let dirty_bytes t base =
  List.fold_left (fun n (_, len) -> n + len) 0 (dirty_spans t base)

(* ------------------------------------------------------------------ *)
(* Block handles: validated fast-path access                           *)

type handle = block

(* A handle that never validates: the initial value of handle caches. *)
let null_handle =
  {
    base = 0;
    size = 0;
    data = Bytes.empty;
    tag = "<null>";
    space_id = -1;
    freed = true;
    d_lo = max_int;
    d_hi = min_int;
    d_rest = [];
  }

(* One combined test replacing block_of_addr + check_span: the handle is
   live, belongs to [t], and [addr, addr+len) sits inside it. *)
let[@inline] handle_valid (h : handle) (t : t) addr len =
  h.space_id = t.id
  && (not h.freed)
  && addr >= h.base
  && addr + len <= h.base + h.size

(* Acquire a handle, paying the tree lookup and the span check once. *)
let acquire_handle t addr len what : handle =
  let b = block_of_addr t addr in
  check_span t b addr len what;
  b

(* Unchecked accessors: the caller has validated [handle_valid h t addr len]
   (or just acquired the handle) for the right width. *)
let[@inline] h_load_u8 (h : handle) addr =
  Char.code (Bytes.unsafe_get h.data (addr - h.base))

let[@inline] h_store_u8 (h : handle) addr v =
  Bytes.unsafe_set h.data (addr - h.base) (Char.unsafe_chr (v land 0xff));
  note_dirty h (addr - h.base) 1

let[@inline] h_load_i64 (h : handle) addr =
  Bytes.get_int64_le h.data (addr - h.base)

let[@inline] h_store_i64 (h : handle) addr v =
  Bytes.set_int64_le h.data (addr - h.base) v;
  note_dirty h (addr - h.base) 8

let[@inline] h_load_f64 (h : handle) addr =
  Int64.float_of_bits (Bytes.get_int64_le h.data (addr - h.base))

let[@inline] h_store_f64 (h : handle) addr v =
  Bytes.set_int64_le h.data (addr - h.base) (Int64.bits_of_float v);
  note_dirty h (addr - h.base) 8

let[@inline] handle_base (h : handle) = h.base

(* ------------------------------------------------------------------ *)
(* Deferred dirty logging: the parallel kernel engine                  *)

(* The dirty-span accumulator above is order-dependent mutable state
   (head interval, retirement, collapse), so shards of a parallel kernel
   cannot call [note_dirty] directly without changing the resulting
   spans (and with them transfer sizes and [bytes_saved]). Instead each
   shard appends its stores to a private log — the [Bytes] write happens
   immediately, only the span bookkeeping is deferred — and the join
   replays the logs in shard order through [note_dirty]. Chunks are
   contiguous, so shard order is iteration order and the resulting span
   state is bit-identical to the sequential engine's.

   Entries pack (offset, length) into one int: lengths here are only
   ever 1 or 8, so 4 bits suffice. *)

type dirty_log = {
  mutable l_blocks : block array;
  mutable l_packed : int array;  (* off lsl 4 lor len *)
  mutable l_len : int;
}

let log_create () =
  { l_blocks = Array.make 64 null_handle; l_packed = Array.make 64 0; l_len = 0 }

let log_clear l = l.l_len <- 0

let[@inline never] log_grow l =
  let cap = Array.length l.l_packed in
  let blocks = Array.make (cap * 2) null_handle in
  let packed = Array.make (cap * 2) 0 in
  Array.blit l.l_blocks 0 blocks 0 cap;
  Array.blit l.l_packed 0 packed 0 cap;
  l.l_blocks <- blocks;
  l.l_packed <- packed

let[@inline] log_push l b off len =
  if l.l_len = Array.length l.l_packed then log_grow l;
  Array.unsafe_set l.l_blocks l.l_len b;
  Array.unsafe_set l.l_packed l.l_len ((off lsl 4) lor len);
  l.l_len <- l.l_len + 1

let[@inline] h_store_u8_log l (h : handle) addr v =
  Bytes.unsafe_set h.data (addr - h.base) (Char.unsafe_chr (v land 0xff));
  log_push l h (addr - h.base) 1

let[@inline] h_store_i64_log l (h : handle) addr v =
  Bytes.set_int64_le h.data (addr - h.base) v;
  log_push l h (addr - h.base) 8

let[@inline] h_store_f64_log l (h : handle) addr v =
  Bytes.set_int64_le h.data (addr - h.base) (Int64.bits_of_float v);
  log_push l h (addr - h.base) 8

let log_replay l =
  for i = 0 to l.l_len - 1 do
    let p = Array.unsafe_get l.l_packed i in
    note_dirty (Array.unsafe_get l.l_blocks i) (p lsr 4) (p land 0xf)
  done;
  l.l_len <- 0

(* ------------------------------------------------------------------ *)
(* Checked accessors (the tree-walking interpreter's path)             *)

let load_u8 t addr =
  let b = block_of_addr t addr in
  check_span t b addr 1 "load";
  Char.code (Bytes.get b.data (addr - b.base))

let store_u8 t addr v =
  let b = block_of_addr t addr in
  check_span t b addr 1 "store";
  Bytes.set b.data (addr - b.base) (Char.chr (v land 0xff));
  note_dirty b (addr - b.base) 1

let load_i64 t addr =
  let b = block_of_addr t addr in
  check_span t b addr 8 "load";
  Bytes.get_int64_le b.data (addr - b.base)

let store_i64 t addr v =
  let b = block_of_addr t addr in
  check_span t b addr 8 "store";
  Bytes.set_int64_le b.data (addr - b.base) v;
  note_dirty b (addr - b.base) 8

let load_f64 t addr = Int64.float_of_bits (load_i64 t addr)

let store_f64 t addr v = store_i64 t addr (Int64.bits_of_float v)

(* Raw byte access used by the transfer engine. *)
let read_bytes t addr len =
  let b = block_of_addr t addr in
  check_span t b addr len "read";
  Bytes.sub b.data (addr - b.base) len

let write_bytes t addr src =
  let len = Bytes.length src in
  let b = block_of_addr t addr in
  check_span t b addr len "write";
  Bytes.blit src 0 b.data (addr - b.base) len;
  note_dirty b (addr - b.base) len

(* Copy [len] bytes across (or within) spaces, without the intermediate
   buffer [read_bytes]+[write_bytes] would allocate. *)
let blit ~src ~src_addr ~dst ~dst_addr ~len =
  if len > 0 then begin
    let sb = block_of_addr src src_addr in
    check_span src sb src_addr len "read";
    let db = block_of_addr dst dst_addr in
    check_span dst db dst_addr len "write";
    Bytes.blit sb.data (src_addr - sb.base) db.data (dst_addr - db.base) len;
    note_dirty db (dst_addr - db.base) len
  end

let unit_bounds t addr =
  let b = block_of_addr t addr in
  (b.base, b.size)

let live_bytes t = t.live_bytes

let peak_bytes t = t.peak_bytes

let live_units t = Cgcm_support.Avl_map.Int.cardinal t.blocks - t.pooled

(* Live blocks as (base, size, tag), ascending by base. Pooled (freed)
   blocks kept in the index for recycling are excluded: they hold no
   live data and dangle on purpose. *)
let blocks_snapshot t =
  List.rev
    (Cgcm_support.Avl_map.Int.fold
       (fun base b acc -> if b.freed then acc else (base, b.size, b.tag) :: acc)
       t.blocks [])

(* Store an OCaml string as NUL-terminated bytes: one resolution and one
   blit instead of a checked store per character. *)
let store_string t addr s =
  let n = String.length s in
  let b = block_of_addr t addr in
  check_span t b addr (n + 1) "store";
  Bytes.blit_string s 0 b.data (addr - b.base) n;
  Bytes.set b.data (addr - b.base + n) '\000';
  note_dirty b (addr - b.base) (n + 1)

(* Scan for the NUL with Bytes.index_from instead of a checked load per
   character. Running off the end of the unit faults, as before. *)
let load_string t addr =
  let b = block_of_addr t addr in
  check_span t b addr 1 "load";
  let ofs = addr - b.base in
  match Bytes.index_from_opt b.data ofs '\000' with
  | Some i -> Bytes.sub_string b.data ofs (i - ofs)
  | None ->
    fault "%s: load of %d bytes at 0x%x overruns unit [0x%x, 0x%x)" t.name 1
      (b.base + b.size) b.base (b.base + b.size)
