(** Classic backward liveness over virtual registers (per-block bitsets,
    iterated to fixpoint). Kernel live-ins come directly from launch
    operands, but glue-kernel outlining and several tests need real
    liveness information. *)

module ISet : Set.S with type elt = int

type t = { live_in : ISet.t array; live_out : ISet.t array }

val compute : Cgcm_ir.Ir.func -> t
val live_in : t -> int -> ISet.t
val live_out : t -> int -> ISet.t

val equal : t -> t -> bool
(** Per-block set equality, for the analysis manager's paranoid mode. *)
