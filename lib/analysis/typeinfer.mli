(** Use-based pointer type inference (Section 4 of the paper).

    The C type system is unreliable, so the communication-management pass
    never trusts declared types. A live-in value of a GPU kernel is
    classified by how the kernel {e uses} it:

    - if the value flows to the address operand of a load or store
      (possibly through additions, subtractions and casts — deliberately
      {e not} multiplications, which is what keeps scaled induction
      variables out of the pointer class), it is a pointer;
    - if a value loaded through it flows to another memory operation's
      address, it is a double pointer (mapArray territory);
    - three or more levels of indirection are outside CGCM's supported
      fragment ({!Too_indirect}).

    Flow passes through private stack slots (store-then-reload of a
    pointer in a kernel-local variable). *)

exception Too_indirect of string

type cls = Scalar | Pointer | Double_pointer

val cls_to_string : cls -> string

val classify_source : Cgcm_ir.Ir.func -> Alias.t -> Cgcm_ir.Ir.value -> cls
(** Classify one seed value (a parameter register or a global) by forward
    taint through the kernel body. *)

type kernel_types = {
  param_cls : cls array;
      (** classification of kernel parameters; index 0 is the thread id *)
  global_cls : (string * cls) list;
      (** classification of every global the kernel references *)
}

val infer_kernel : Cgcm_ir.Ir.func -> kernel_types
(** Classify every live-in of a kernel: its parameters (the launch
    operands) and the globals its body references. *)

val equal_kernel_types : kernel_types -> kernel_types -> bool
(** Equality with global order canonicalized, for the analysis
    manager's paranoid mode. *)
