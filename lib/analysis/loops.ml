(* Natural-loop detection from back edges. *)

module Ir = Cgcm_ir.Ir
module Cfg = Cgcm_ir.Cfg
module Dominance = Cgcm_ir.Dominance

type loop = {
  header : int;
  body : int list;  (* blocks in the loop, including the header *)
  mutable parent : int option;  (* index into the loop array *)
  depth : int;  (* filled by [analyze]; 1 = outermost *)
}

type t = { loops : loop array; block_loop : int option array }
(* [block_loop.(b)] = innermost loop containing block b *)

let in_loop l b = List.mem b l.body

(* Collect the natural loop of back edge (src -> header). *)
let natural_loop f header src =
  let preds = Cfg.preds f in
  let seen = Hashtbl.create 8 in
  Hashtbl.replace seen header ();
  let rec go b =
    if not (Hashtbl.mem seen b) then begin
      Hashtbl.replace seen b ();
      List.iter go preds.(b)
    end
  in
  go src;
  Hashtbl.fold (fun b () acc -> b :: acc) seen []

let analyze ?dom (f : Ir.func) : t =
  let dom =
    match dom with Some d -> d | None -> Dominance.compute f
  in
  let reach = Cfg.reachable f in
  let n = Array.length f.Ir.blocks in
  (* back edges: b -> h where h dominates b *)
  let by_header = Hashtbl.create 8 in
  for b = 0 to n - 1 do
    if reach.(b) then
      List.iter
        (fun s -> if Dominance.dominates dom s b then begin
             let cur = Option.value ~default:[] (Hashtbl.find_opt by_header s) in
             Hashtbl.replace by_header s (b :: cur)
           end)
        (Cfg.succs f b)
  done;
  let raw =
    Hashtbl.fold
      (fun header srcs acc ->
        let body =
          List.concat_map (fun src -> natural_loop f header src) srcs
          |> List.sort_uniq compare
        in
        (header, body) :: acc)
      by_header []
    |> List.sort (fun (_, b1) (_, b2) ->
           compare (List.length b2) (List.length b1))
    (* larger loops first: parents precede children *)
  in
  let loops =
    Array.of_list
      (List.map
         (fun (header, body) -> { header; body; parent = None; depth = 0 })
         raw)
  in
  (* parent links: smallest strictly-containing loop *)
  Array.iteri
    (fun i l ->
      let best = ref None in
      Array.iteri
        (fun j l' ->
          if j <> i && List.mem l.header l'.body
             && List.for_all (fun b -> List.mem b l'.body) l.body
             && List.length l'.body > List.length l.body
          then
            match !best with
            | Some k
              when List.length loops.(k).body <= List.length l'.body ->
              ()
            | _ -> best := Some j)
        loops;
      l.parent <- !best)
    loops;
  let rec depth i =
    match loops.(i).parent with None -> 1 | Some p -> 1 + depth p
  in
  let loops = Array.mapi (fun i l -> { l with depth = depth i }) loops in
  let block_loop = Array.make n None in
  (* innermost loop per block: loops sorted large->small, so later
     (smaller) loops overwrite *)
  Array.iteri
    (fun i l -> List.iter (fun b -> block_loop.(b) <- Some i) l.body)
    loops;
  { loops; block_loop }

(* Loops sorted innermost-first (deepest first). *)
let innermost_first t =
  let idx = Array.to_list (Array.mapi (fun i _ -> i) t.loops) in
  List.sort
    (fun i j -> compare t.loops.(j).depth t.loops.(i).depth)
    idx

(* Exit edges of a loop: (from_block, to_block) with to outside. *)
let exit_edges (f : Ir.func) (l : loop) =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun s -> if in_loop l s then None else Some (b, s))
        (Cfg.succs f b))
    l.body

(* Entry edges into the header from outside the loop. *)
let entry_edges (f : Ir.func) (l : loop) =
  let preds = Cfg.preds f in
  List.filter_map
    (fun p -> if in_loop l p then None else Some p)
    preds.(l.header)

(* ------------------------------------------------------------------ *)
(* Incremental patching.

   The rewriting helpers only ever *append* blocks (preheaders, split
   exit edges), which leaves every existing loop's header, body and
   nesting untouched; a full re-analysis after each such edit — what map
   promotion used to do — recomputes exactly the structure it already
   had, plus one block. These patches extend a cached result to cover
   the new block instead, so the analysis manager can keep serving it. *)

(* Grow [block_loop] to cover block [nb], mapping it to [owner]. *)
let extend_block_loop t ~nb ~owner =
  Array.init (max (nb + 1) (Array.length t.block_loop)) (fun b ->
      if b = nb then owner
      else if b < Array.length t.block_loop then t.block_loop.(b)
      else None)

(* A preheader [ph] for loop [li] sits outside that loop but inside every
   loop strictly containing it (its entry edges came from there). *)
let note_preheader t ~li ~ph : t =
  let rec ancestors i =
    match t.loops.(i).parent with None -> [] | Some p -> p :: ancestors p
  in
  let anc = ancestors li in
  let loops =
    Array.mapi
      (fun j l -> if List.mem j anc then { l with body = ph :: l.body } else l)
      t.loops
  in
  { loops; block_loop = extend_block_loop t ~nb:ph ~owner:t.loops.(li).parent }

(* A block [nb] splitting the edge [from_ -> to_] belongs to exactly the
   loops containing both endpoints (for a natural loop, the header still
   dominates [nb] and [nb] still reaches the back edge through [to_]). *)
let note_edge_block t ~from_ ~to_ ~nb : t =
  let containing =
    Array.to_list
      (Array.mapi
         (fun j l ->
           if in_loop l from_ && in_loop l to_ then Some j else None)
         t.loops)
    |> List.filter_map Fun.id
  in
  let loops =
    Array.mapi
      (fun j l ->
        if List.mem j containing then { l with body = nb :: l.body } else l)
      t.loops
  in
  let innermost =
    List.fold_left
      (fun best j ->
        match best with
        | Some b when t.loops.(b).depth >= t.loops.(j).depth -> best
        | _ -> Some j)
      None containing
  in
  { loops; block_loop = extend_block_loop t ~nb ~owner:innermost }

(* Canonical equality: loop array order and parent indices depend on
   analysis order, so compare loops as sorted (header, sorted body) pairs
   and block_loop by the header of each block's innermost loop. Used by
   the manager's paranoid mode to detect stale (mis-patched) results. *)
let equal a b =
  let canon t =
    Array.to_list t.loops
    |> List.map (fun l -> (l.header, List.sort_uniq compare l.body, l.depth))
    |> List.sort compare
  in
  let owners t =
    Array.map (Option.map (fun li -> t.loops.(li).header)) t.block_loop
  in
  canon a = canon b
  && Array.length (owners a) = Array.length (owners b)
  && owners a = owners b
