(* Interprocedural CPU mod/ref summaries.

   Map promotion must prove that the CPU code of a region neither reads
   nor writes the candidate allocation unit; when the region contains
   calls, it needs a summary of what the callee's *CPU* code (not its
   kernels) can touch:

     globals  - named globals the callee may load or store directly;
     unknown  - the callee may dereference pointers of unknown provenance
                (parameters, pointers loaded from memory), so it may touch
                anything a pointer could reach.

   Kernels and launches are excluded: they execute against device memory
   and never make the host copy wrong. *)

module Ir = Cgcm_ir.Ir

type summary = { globals : string list; unknown : bool }

let empty = { globals = []; unknown = false }

let union a b =
  {
    globals = List.sort_uniq compare (a.globals @ b.globals);
    unknown = a.unknown || b.unknown;
  }

let add_obj s = function
  | Alias.Obj_global g ->
    if List.mem g s.globals then s else { s with globals = g :: s.globals }
  | Alias.Obj_alloca _ | Alias.Obj_heap _ ->
    s (* callee-local unit: invisible to callers *)
  | Alias.Obj_unknown -> { s with unknown = true }

type t = (string, summary) Hashtbl.t

(* One local pass: what f's own CPU instructions touch, ignoring calls to
   user functions (handled by the fixpoint). *)
let local_summary (f : Ir.func) : summary * string list (* callees *) =
  let alias = Alias.analyze f in
  let s = ref empty in
  let callees = ref [] in
  Ir.iter_instrs
    (fun _ i ->
      match i with
      | Ir.Load (_, _, addr) | Ir.Store (_, addr, _) ->
        s := add_obj !s (Alias.underlying alias addr)
      | Ir.Call (_, name, args) ->
        if Ir.Intrinsic.is_cgcm name || Ir.Intrinsic.is_pure_math name then ()
        else begin
          match name with
          | "print_i64" | "print_f64" | "malloc" | "calloc" -> ()
          | "prints" | "strlen" | "free" | "realloc" ->
            List.iter
              (fun a -> s := add_obj !s (Alias.underlying alias a))
              args
          | _ -> callees := name :: !callees
        end
      | Ir.Launch _ | Ir.Alloca _ | Ir.Binop _ | Ir.Unop _ -> ())
    f;
  (!s, List.sort_uniq compare !callees)

let compute (m : Ir.modul) : t =
  let locals = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      if f.Ir.fkind = Ir.Cpu then
        Hashtbl.replace locals f.Ir.fname (local_summary f))
    m.Ir.funcs;
  let summaries : t = Hashtbl.create 16 in
  Hashtbl.iter (fun name (s, _) -> Hashtbl.replace summaries name s) locals;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name (local, callees) ->
        let cur = Hashtbl.find summaries name in
        let next =
          List.fold_left
            (fun acc callee ->
              match Hashtbl.find_opt summaries callee with
              | Some s -> union acc s
              | None -> { acc with unknown = true }  (* unknown function *))
            local callees
        in
        if next <> cur then begin
          Hashtbl.replace summaries name next;
          changed := true
        end)
      locals
  done;
  summaries

(* ------------------------------------------------------------------ *)
(* Kernel-side read/write sets                                         *)

(* Which named globals may the kernel's own body load (reads) or store
   (writes)? The coherence sanitizer uses these at each launch to flag
   units held mapped across launches whose kernel provably cannot touch
   them. Pointer parameters, loaded pointers and calls to user
   functions degrade to [rw_unknown]: a may-set would turn the flag
   into false positives, so the sanitizer stays quiet instead. *)
type rw = { reads : string list; writes : string list; rw_unknown : bool }

let kernel_rw (f : Ir.func) : rw =
  let alias = Alias.analyze f in
  let reads = ref [] in
  let writes = ref [] in
  let unknown = ref (f.Ir.nargs > 0) in
  let note acc = function
    | Alias.Obj_global g -> if not (List.mem g !acc) then acc := g :: !acc
    | Alias.Obj_alloca _ | Alias.Obj_heap _ -> ()  (* kernel-local *)
    | Alias.Obj_unknown -> unknown := true
  in
  Ir.iter_instrs
    (fun _ i ->
      match i with
      | Ir.Load (_, _, addr) -> note reads (Alias.underlying alias addr)
      | Ir.Store (_, addr, _) -> note writes (Alias.underlying alias addr)
      | Ir.Call (_, name, _) ->
        if Ir.Intrinsic.is_cgcm name || Ir.Intrinsic.is_pure_math name then ()
        else unknown := true
      | Ir.Launch _ | Ir.Alloca _ | Ir.Binop _ | Ir.Unop _ -> ())
    f;
  {
    reads = List.sort_uniq compare !reads;
    writes = List.sort_uniq compare !writes;
    rw_unknown = !unknown;
  }

(* May a call to [callee] touch [obj] from CPU code? *)
let call_may_touch (t : t) ~(callee : string) (obj : Alias.obj) : bool =
  match Hashtbl.find_opt t callee with
  | None -> true  (* not a known user function: be conservative *)
  | Some s -> (
    if s.unknown then true
    else
      match obj with
      | Alias.Obj_global g -> List.mem g s.globals
      | Alias.Obj_unknown -> s.globals <> []
      | Alias.Obj_alloca _ | Alias.Obj_heap _ ->
        (* a caller-local unit: the callee could only reach it through a
           pointer, and [unknown = false] says it never dereferences one *)
        false)

(* Canonical equality for the analysis manager's paranoid mode. *)
let equal (a : t) (b : t) =
  let canon (t : t) =
    Hashtbl.fold
      (fun k s acc ->
        (k, List.sort_uniq compare s.globals, s.unknown) :: acc)
      t []
    |> List.sort compare
  in
  canon a = canon b
