(* Lightweight intraprocedural alias analysis based on underlying objects.
   CGCM itself deliberately avoids depending on strong alias analysis (the
   run-time handles aliasing); the compiler only needs a conservative
   may-alias test for the modOrRef check of map promotion and for escape
   analysis of stack slots (declareAlloca insertion). *)

module Ir = Cgcm_ir.Ir

type obj =
  | Obj_alloca of int  (* register holding the alloca result *)
  | Obj_global of string
  | Obj_heap of int  (* register holding a malloc result *)
  | Obj_unknown

(* Map from register to defining instruction (single assignment). *)
let def_map (f : Ir.func) =
  let defs = Array.make f.Ir.nregs None in
  Ir.iter_instrs
    (fun _ i ->
      match Ir.def_of_instr i with Some d -> defs.(d) <- Some i | None -> ())
    f;
  defs

(* Stack slots whose address (or any pointer derived from it by
   arithmetic) is used only in the address position of loads and stores:
   their contents never leave the frame. A slot escapes when a derived
   pointer is stored as a *value*, passed to a call or launch, or used by
   a terminator. *)
let unescaped_slots (f : Ir.func) =
  let slots = Hashtbl.create 16 in
  Ir.iter_instrs
    (fun _ i ->
      match i with Ir.Alloca (d, _, _) -> Hashtbl.replace slots d true | _ -> ())
    f;
  (* derived.(r) = stack slots whose address may flow into register r *)
  let derived = Array.make f.Ir.nregs [] in
  Hashtbl.iter (fun r _ -> derived.(r) <- [ r ]) slots;
  let slots_of = function Ir.Reg r -> derived.(r) | _ -> [] in
  let changed = ref true in
  while !changed do
    changed := false;
    Ir.iter_instrs
      (fun _ i ->
        match i with
        | Ir.Binop (d, (Ir.Add | Ir.Sub), a, b) ->
          let flow = List.sort_uniq compare (slots_of a @ slots_of b) in
          if List.exists (fun s -> not (List.mem s derived.(d))) flow then begin
            derived.(d) <- List.sort_uniq compare (flow @ derived.(d));
            changed := true
          end
        | _ -> ())
      f
  done;
  let escape v =
    List.iter (fun s -> Hashtbl.replace slots s false) (slots_of v)
  in
  Ir.iter_instrs
    (fun _ i ->
      match i with
      | Ir.Load (_, _, _) -> ()  (* address position: fine *)
      | Ir.Store (_, _, v) -> escape v  (* storing the address escapes *)
      | Ir.Binop (_, (Ir.Add | Ir.Sub), _, _) -> ()  (* tracked flow *)
      | _ -> List.iter escape (Ir.uses_of_instr i))
    f;
  (* Also escape via terminators (returned addresses). *)
  Array.iter
    (fun (b : Ir.block) -> List.iter escape (Ir.uses_of_term b.Ir.term))
    f.Ir.blocks;
  slots

type t = {
  func : Ir.func;
  defs : Ir.instr option array;
  slots : (int, bool) Hashtbl.t;  (* alloca reg -> unescaped? *)
}

let analyze (f : Ir.func) = { func = f; defs = def_map f; slots = unescaped_slots f }

(* Underlying object of an address value. For [a + b] the object comes
   from whichever side resolves; if both resolve (to different objects)
   the result is unknown. Loads from unescaped slots look through to the
   union of stored values (one level). *)
let underlying t (v : Ir.value) : obj =
  let rec go fuel v =
    if fuel = 0 then Obj_unknown
    else
      match v with
      | Ir.Global g -> Obj_global g
      | Ir.Imm_int _ | Ir.Imm_float _ -> Obj_unknown
      | Ir.Reg r -> (
        match t.defs.(r) with
        | Some (Ir.Alloca _) -> Obj_alloca r
        | Some (Ir.Call (_, ("malloc" | "calloc" | "realloc"), _)) ->
          Obj_heap r
        | Some (Ir.Binop (_, (Ir.Add | Ir.Sub), a, b)) -> (
          match (go (fuel - 1) a, go (fuel - 1) b) with
          | o, Obj_unknown -> o
          | Obj_unknown, o -> o
          | o1, o2 when o1 = o2 -> o1
          | _ -> Obj_unknown)
        | Some (Ir.Unop (_, _, a)) -> go (fuel - 1) a
        | Some (Ir.Load (_, _, Ir.Reg s))
          when Hashtbl.find_opt t.slots s = Some true -> (
          (* union over all values stored to this private slot *)
          let objs = ref [] in
          Ir.iter_instrs
            (fun _ i ->
              match i with
              | Ir.Store (_, Ir.Reg s', v) when s' = s ->
                objs := go (fuel - 1) v :: !objs
              | _ -> ())
            t.func;
          match List.sort_uniq compare !objs with
          | [ o ] -> o
          | _ -> Obj_unknown)
        | _ -> Obj_unknown)
  in
  go 8 v

let may_alias o1 o2 =
  match (o1, o2) with
  | Obj_unknown, _ | _, Obj_unknown -> true
  | a, b -> a = b

(* Refinement used by modOrRef: a memory access whose underlying object is
   a *non-escaping* stack slot of the current function cannot alias a
   pointer of unknown provenance — no pointer to that slot exists outside
   the direct addressing the escape analysis already saw. *)
let access_may_alias (t : t) ~(access : obj) ~(target : obj) =
  match access with
  | Obj_alloca r when Hashtbl.find_opt t.slots r = Some true ->
    target = Obj_alloca r
  | _ -> may_alias access target

(* Escape analysis for declareAlloca: a stack slot escapes if its address
   flows anywhere except direct load/store addressing — e.g. into a call,
   a launch, a store *value*, pointer arithmetic, or a return. *)
let escaping_allocas (f : Ir.func) : int list =
  let slots = unescaped_slots f in
  Hashtbl.fold (fun r unescaped acc -> if unescaped then acc else r :: acc) slots []

(* Structural equality for the manager's paranoid mode. A fresh result
   may have a longer defs array than a cached one when registers were
   allocated (fresh_reg) without their defining instructions reaching a
   block yet — those trailing entries must be None for the cached result
   to still be valid. *)
let equal a b =
  let get d i = if i < Array.length d then d.(i) else None in
  let n = max (Array.length a.defs) (Array.length b.defs) in
  let defs_ok = ref true in
  for i = 0 to n - 1 do
    if get a.defs i <> get b.defs i then defs_ok := false
  done;
  let canon slots =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) slots [] |> List.sort compare
  in
  !defs_ok && canon a.slots = canon b.slots
