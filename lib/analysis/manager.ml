(* Caching analysis manager. See manager.mli for the contract. *)

module Ir = Cgcm_ir.Ir
module Dominance = Cgcm_ir.Dominance

type kind =
  | Callgraph
  | Modref
  | Loops
  | Dominance
  | Alias
  | Liveness
  | Kernel_types

let kind_name = function
  | Callgraph -> "callgraph"
  | Modref -> "modref"
  | Loops -> "loops"
  | Dominance -> "dominance"
  | Alias -> "alias"
  | Liveness -> "liveness"
  | Kernel_types -> "kernel-types"

let all_kinds =
  [ Callgraph; Modref; Loops; Dominance; Alias; Liveness; Kernel_types ]

type mode = Cached | Uncached | Paranoid

exception Stale of string

type counter = { mutable hits : int; mutable misses : int }

(* Per-function slots. Dominance is cached separately so [loops] can
   reuse it (Loops.analyze ?dom). *)
type fcache = {
  mutable c_dom : Dominance.t option;
  mutable c_loops : Loops.t option;
  mutable c_alias : Alias.t option;
  mutable c_live : Liveness.t option;
  mutable c_ktypes : Typeinfer.kernel_types option;
}

type t = {
  modul : Ir.modul;
  mode : mode;
  mutable c_callgraph : Callgraph.t option;
  mutable c_modref : Modref.t option;
  fcaches : (string, fcache) Hashtbl.t;  (* keyed by Ir.func.fname *)
  counters : (kind * counter) list;
}

let create ?(mode = Cached) modul =
  {
    modul;
    mode;
    c_callgraph = None;
    c_modref = None;
    fcaches = Hashtbl.create 16;
    counters = List.map (fun k -> (k, { hits = 0; misses = 0 })) all_kinds;
  }

let modul t = t.modul
let mode t = t.mode
let counter t kind = List.assq kind t.counters

let fcache t (f : Ir.func) =
  match Hashtbl.find_opt t.fcaches f.fname with
  | Some fc -> fc
  | None ->
    let fc =
      { c_dom = None; c_loops = None; c_alias = None; c_live = None;
        c_ktypes = None }
    in
    Hashtbl.replace t.fcaches f.fname fc;
    fc

(* The shared fetch discipline. [read]/[write] view one cache slot;
   [compute] produces a fresh result; [eq] detects staleness in
   Paranoid mode. *)
let fetch t kind ~what ~read ~write ~eq ~compute =
  let c = counter t kind in
  match t.mode with
  | Uncached ->
    c.misses <- c.misses + 1;
    compute ()
  | Cached -> (
    match read () with
    | Some v ->
      c.hits <- c.hits + 1;
      v
    | None ->
      c.misses <- c.misses + 1;
      let v = compute () in
      write (Some v);
      v)
  | Paranoid -> (
    let fresh = compute () in
    match read () with
    | Some cached when not (eq cached fresh) ->
      raise
        (Stale
           (Printf.sprintf "stale %s for %s (pass failed to invalidate)"
              (kind_name kind) what))
    | Some _ ->
      c.hits <- c.hits + 1;
      fresh
    | None ->
      c.misses <- c.misses + 1;
      write (Some fresh);
      fresh)

let callgraph t =
  fetch t Callgraph ~what:"module"
    ~read:(fun () -> t.c_callgraph)
    ~write:(fun v -> t.c_callgraph <- v)
    ~eq:Callgraph.equal
    ~compute:(fun () -> Callgraph.compute t.modul)

let modref t =
  fetch t Modref ~what:"module"
    ~read:(fun () -> t.c_modref)
    ~write:(fun v -> t.c_modref <- v)
    ~eq:Modref.equal
    ~compute:(fun () -> Modref.compute t.modul)

let dominance t (f : Ir.func) =
  let fc = fcache t f in
  fetch t Dominance ~what:f.fname
    ~read:(fun () -> fc.c_dom)
    ~write:(fun v -> fc.c_dom <- v)
    ~eq:Dominance.equal
    ~compute:(fun () -> Dominance.compute f)

let loops t (f : Ir.func) =
  let fc = fcache t f in
  fetch t Loops ~what:f.fname
    ~read:(fun () -> fc.c_loops)
    ~write:(fun v -> fc.c_loops <- v)
    ~eq:Loops.equal
    ~compute:(fun () -> Loops.analyze ~dom:(dominance t f) f)

let alias t (f : Ir.func) =
  let fc = fcache t f in
  fetch t Alias ~what:f.fname
    ~read:(fun () -> fc.c_alias)
    ~write:(fun v -> fc.c_alias <- v)
    ~eq:Alias.equal
    ~compute:(fun () -> Alias.analyze f)

let liveness t (f : Ir.func) =
  let fc = fcache t f in
  fetch t Liveness ~what:f.fname
    ~read:(fun () -> fc.c_live)
    ~write:(fun v -> fc.c_live <- v)
    ~eq:Liveness.equal
    ~compute:(fun () -> Liveness.compute f)

let kernel_types t (f : Ir.func) =
  let fc = fcache t f in
  fetch t Kernel_types ~what:f.fname
    ~read:(fun () -> fc.c_ktypes)
    ~write:(fun v -> fc.c_ktypes <- v)
    ~eq:Typeinfer.equal_kernel_types
    ~compute:(fun () -> Typeinfer.infer_kernel f)

(* ------------------------------------------------------------------ *)
(* Invalidation *)

let drop_function_kind fc = function
  | Dominance -> fc.c_dom <- None
  | Loops -> fc.c_loops <- None
  | Alias -> fc.c_alias <- None
  | Liveness -> fc.c_live <- None
  | Kernel_types -> fc.c_ktypes <- None
  | Callgraph | Modref -> ()

let drop_module_kind t = function
  | Callgraph -> t.c_callgraph <- None
  | Modref -> t.c_modref <- None
  | Loops | Dominance | Alias | Liveness | Kernel_types -> ()

let invalidate_function t ?(preserve = []) (f : Ir.func) =
  (match Hashtbl.find_opt t.fcaches f.fname with
  | None -> ()
  | Some fc ->
    List.iter
      (fun k -> if not (List.memq k preserve) then drop_function_kind fc k)
      all_kinds);
  (* Editing one function can change what the whole module's call graph
     and mod/ref summaries say. *)
  List.iter
    (fun k -> if not (List.memq k preserve) then drop_module_kind t k)
    [ Callgraph; Modref ]

let invalidate_module t ?(preserve = []) () =
  List.iter
    (fun k -> if not (List.memq k preserve) then drop_module_kind t k)
    [ Callgraph; Modref ];
  Hashtbl.iter
    (fun _ fc ->
      List.iter
        (fun k -> if not (List.memq k preserve) then drop_function_kind fc k)
        all_kinds)
    t.fcaches

let patch_loops t (f : Ir.func) patch =
  match Hashtbl.find_opt t.fcaches f.fname with
  | Some ({ c_loops = Some l; _ } as fc) -> fc.c_loops <- Some (patch l)
  | _ -> ()

let set_dominance t (f : Ir.func) dom =
  if t.mode <> Uncached then (fcache t f).c_dom <- Some dom

(* ------------------------------------------------------------------ *)
(* Instrumentation *)

let stats t =
  List.map (fun (k, c) -> (kind_name k, c.hits, c.misses)) t.counters

let reset_stats t =
  List.iter
    (fun (_, c) ->
      c.hits <- 0;
      c.misses <- 0)
    t.counters
