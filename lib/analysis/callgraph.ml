(* Call graph over a module: direct calls between user-defined CPU
   functions. Intrinsics are not nodes. *)

module Ir = Cgcm_ir.Ir

type t = {
  (* callers.(f) = list of (caller function, block index) call sites *)
  callers : (string, (string * int) list) Hashtbl.t;
  callees : (string, string list) Hashtbl.t;
  recursive : (string, bool) Hashtbl.t;
}

let compute (m : Ir.modul) : t =
  let callers = Hashtbl.create 16 in
  let callees = Hashtbl.create 16 in
  let defined name = Ir.find_func m name <> None in
  List.iter
    (fun (f : Ir.func) ->
      Ir.iter_instrs
        (fun bi i ->
          match i with
          | Ir.Call (_, name, _) when defined name ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt callers name) in
            Hashtbl.replace callers name ((f.Ir.fname, bi) :: cur);
            let cur = Option.value ~default:[] (Hashtbl.find_opt callees f.Ir.fname) in
            Hashtbl.replace callees f.Ir.fname (name :: cur)
          | _ -> ())
        f)
    m.Ir.funcs;
  (* A function is recursive if it reaches itself through callees. *)
  let recursive = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      let name = f.Ir.fname in
      let seen = Hashtbl.create 8 in
      let rec reachable from =
        match Hashtbl.find_opt callees from with
        | None -> false
        | Some cs ->
          List.exists
            (fun c ->
              c = name
              ||
              if Hashtbl.mem seen c then false
              else begin
                Hashtbl.replace seen c ();
                reachable c
              end)
            cs
      in
      Hashtbl.replace recursive name (reachable name))
    m.Ir.funcs;
  { callers; callees; recursive }

let call_sites t name = Option.value ~default:[] (Hashtbl.find_opt t.callers name)

let is_recursive t name =
  Option.value ~default:false (Hashtbl.find_opt t.recursive name)

(* Canonical equality (hashtable iteration order ignored) for the
   analysis manager's paranoid mode. *)
let equal a b =
  let assoc h =
    Hashtbl.fold (fun k v acc -> (k, List.sort compare v) :: acc) h []
    |> List.sort compare
  in
  let flags h =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort compare
  in
  assoc a.callers = assoc b.callers
  && assoc a.callees = assoc b.callees
  && flags a.recursive = flags b.recursive
