(** Caching analysis manager (LLVM-new-PM style).

    Passes request analyses through a manager instead of constructing
    them; rewrites declare what they clobber via preservation sets, so
    unchanged results are served from cache instead of recomputed. The
    module-level analyses ({!Callgraph}, {!Modref}) are cached once per
    module; the rest ({!Loops}, {!Dominance}, {!Alias}, {!Liveness},
    kernel classifications from {!Typeinfer}) per function. *)

(** The analyses the manager knows about. [Kernel_types] is
    {!Typeinfer.infer_kernel}'s classification of a kernel. *)
type kind =
  | Callgraph
  | Modref
  | Loops
  | Dominance
  | Alias
  | Liveness
  | Kernel_types

val kind_name : kind -> string
val all_kinds : kind list

(** Cache discipline.

    - [Cached] — normal operation: serve cached results, recompute on
      miss.
    - [Uncached] — recompute at every [get]. This is the
      restart-from-scratch baseline the old mid-end implemented by
      calling [Loops.analyze]/[Modref.compute]/… inline, and what the
      bench suite compares the cache against.
    - [Paranoid] — recompute at every [get] anyway and compare with the
      cached result; raise {!Stale} on mismatch. Catches passes whose
      [preserves] claims are wrong. *)
type mode = Cached | Uncached | Paranoid

exception Stale of string
(** Raised in [Paranoid] mode when a cached analysis disagrees with a
    fresh recomputation — i.e. a pass failed to invalidate it. *)

type t

val create : ?mode:mode -> Cgcm_ir.Ir.modul -> t
(** A manager for [modul]. Default mode is [Cached]. *)

val modul : t -> Cgcm_ir.Ir.modul
val mode : t -> mode

(** {1 Getters}

    Each returns the cached result when valid, computing (and caching)
    it otherwise, per {!mode}. *)

val callgraph : t -> Callgraph.t
val modref : t -> Modref.t
val dominance : t -> Cgcm_ir.Ir.func -> Cgcm_ir.Dominance.t
val loops : t -> Cgcm_ir.Ir.func -> Loops.t
val alias : t -> Cgcm_ir.Ir.func -> Alias.t
val liveness : t -> Cgcm_ir.Ir.func -> Liveness.t
val kernel_types : t -> Cgcm_ir.Ir.func -> Typeinfer.kernel_types

(** {1 Invalidation}

    A pass (or rewrite helper) that changed IR calls one of these with
    the set of analyses it {e preserved}; everything else is dropped. *)

val invalidate_function : t -> ?preserve:kind list -> Cgcm_ir.Ir.func -> unit
(** Drop [f]'s function-level results and the module-level results,
    except those in [preserve] (default: preserve nothing). *)

val invalidate_module : t -> ?preserve:kind list -> unit -> unit
(** Drop every cached result not in [preserve]. For passes that edit
    many functions (or add/remove functions) and track preservation at
    module granularity. *)

val patch_loops : t -> Cgcm_ir.Ir.func -> (Loops.t -> Loops.t) -> unit
(** Apply an incremental patch ({!Loops.note_preheader},
    {!Loops.note_edge_block}) to [f]'s cached loop result, if present.
    A no-op when nothing is cached — the next [loops] call recomputes
    from the rewritten IR anyway. *)

val set_dominance : t -> Cgcm_ir.Ir.func -> Cgcm_ir.Dominance.t -> unit
(** Seed [f]'s dominator cache with a known-fresh result (e.g. after a
    rewrite recomputed it for its own use). *)

(** {1 Instrumentation} *)

val stats : t -> (string * int * int) list
(** [(analysis, hits, misses)] per kind, in {!all_kinds} order. A hit
    is a [get] served from cache (in [Paranoid] mode: one that matched
    the recomputation); a miss computed and cached a fresh result. *)

val reset_stats : t -> unit
