(* Use-based pointer type inference (Section 4 of the paper).

   The C type system is unreliable, so the communication-management pass
   never trusts declared types. Instead, a live-in value of a GPU kernel
   is classified by how the kernel *uses* it:

     - if the value flows to the address operand of a load or store
       (possibly through additions, subtractions and casts), it is a
       pointer;
     - if a value loaded through it flows to another memory operation's
       address, it is a double pointer (mapArray territory);
     - three or more levels of indirection are outside CGCM's supported
       fragment and are reported as an error.

   Flow deliberately does not pass through multiplications: scaled index
   arithmetic (i * elt_size) keeps induction variables out of the pointer
   class, which is what makes the inference unambiguous in practice. Flow
   does pass through private stack slots (store-then-reload of a pointer
   in a kernel-local variable). *)

module Ir = Cgcm_ir.Ir

exception Too_indirect of string

type cls = Scalar | Pointer | Double_pointer

let cls_to_string = function
  | Scalar -> "scalar"
  | Pointer -> "pointer"
  | Double_pointer -> "double pointer"


(* Forward taint closure of a source through the function body. Returns
   (tainted registers, tainted slots). *)
let taint_closure (f : Ir.func) (alias : Alias.t) (seeds : Ir.value list) =
  let reg_taint = Array.make f.Ir.nregs false in
  let slot_taint = Hashtbl.create 8 in
  let global_seeds =
    List.filter_map (function Ir.Global g -> Some g | _ -> None) seeds
  in
  List.iter
    (function Ir.Reg r -> reg_taint.(r) <- true | _ -> ())
    seeds;
  let value_tainted = function
    | Ir.Reg r -> reg_taint.(r)
    | Ir.Global g -> List.mem g global_seeds
    | Ir.Imm_int _ | Ir.Imm_float _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Ir.iter_instrs
      (fun _ i ->
        let mark r =
          if not reg_taint.(r) then begin
            reg_taint.(r) <- true;
            changed := true
          end
        in
        match i with
        | Ir.Binop (d, (Ir.Add | Ir.Sub), a, b) ->
          if value_tainted a || value_tainted b then mark d
        | Ir.Unop (d, (Ir.Int_to_float | Ir.Float_to_int | Ir.Neg), a) ->
          if value_tainted a then mark d
        | Ir.Store (_, Ir.Reg s, v)
          when Hashtbl.find_opt alias.Alias.slots s = Some true ->
          if value_tainted v && not (Hashtbl.mem slot_taint s) then begin
            Hashtbl.replace slot_taint s ();
            changed := true
          end
        | Ir.Load (d, _, Ir.Reg s) when Hashtbl.mem slot_taint s -> mark d
        | _ -> ())
      f
  done;
  (reg_taint, (fun v -> value_tainted v))

(* All loads whose address is tainted; their destinations seed level 2. *)
let loads_through (f : Ir.func) value_tainted =
  Ir.fold_instrs
    (fun acc _ i ->
      match i with
      | Ir.Load (d, Ir.I64, a) when value_tainted a -> Ir.Reg d :: acc
      | _ -> acc)
    [] f

let used_as_address (f : Ir.func) value_tainted =
  Ir.fold_instrs
    (fun acc _ i ->
      acc
      ||
      match i with
      | Ir.Load (_, _, a) -> value_tainted a
      | Ir.Store (_, a, _) -> value_tainted a
      | _ -> false)
    false f

let classify_source (f : Ir.func) (alias : Alias.t) (seed : Ir.value) : cls =
  let _, tainted1 = taint_closure f alias [ seed ] in
  if not (used_as_address f tainted1) then Scalar
  else begin
    let level2_seeds = loads_through f tainted1 in
    if level2_seeds = [] then Pointer
    else begin
      let _, tainted2 = taint_closure f alias level2_seeds in
      if not (used_as_address f tainted2) then Pointer
      else begin
        let level3_seeds = loads_through f tainted2 in
        if level3_seeds = [] then Double_pointer
        else begin
          let _, tainted3 = taint_closure f alias level3_seeds in
          if used_as_address f tainted3 then
            raise
              (Too_indirect
                 (Fmt.str "%s: a live-in has three or more levels of indirection"
                    f.Ir.fname))
          else Double_pointer
        end
      end
    end
  end

type kernel_types = {
  (* classification of kernel parameters; index 0 is the thread id *)
  param_cls : cls array;
  (* classification of every global the kernel references *)
  global_cls : (string * cls) list;
}

let infer_kernel (f : Ir.func) : kernel_types =
  assert (f.Ir.fkind = Ir.Kernel);
  let alias = Alias.analyze f in
  let param_cls =
    Array.init f.Ir.nargs (fun i -> classify_source f alias (Ir.Reg i))
  in
  let global_cls =
    List.map
      (fun g -> (g, classify_source f alias (Ir.Global g)))
      (Ir.globals_used f)
  in
  { param_cls; global_cls }

(* Equality of kernel classifications, for the analysis manager's
   paranoid mode (global order canonicalized). *)
let equal_kernel_types a b =
  a.param_cls = b.param_cls
  && List.sort compare a.global_cls = List.sort compare b.global_cls
