(** Call graph over a module: direct calls between user-defined CPU
    functions (intrinsics are not nodes). Function-level map promotion
    and alloca promotion use the caller sets; both skip recursion. *)

type t = {
  callers : (string, (string * int) list) Hashtbl.t;
      (** callee -> (caller, block index) call sites *)
  callees : (string, string list) Hashtbl.t;
  recursive : (string, bool) Hashtbl.t;
}

val compute : Cgcm_ir.Ir.modul -> t
val call_sites : t -> string -> (string * int) list
val is_recursive : t -> string -> bool

val equal : t -> t -> bool
(** Canonical equality (hashtable order ignored), for the analysis
    manager's paranoid mode. *)
