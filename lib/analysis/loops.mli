(** Natural-loop detection from back edges (via dominators). Map
    promotion's loop regions come from here. *)

type loop = {
  header : int;
  body : int list;  (** blocks in the loop, including the header *)
  mutable parent : int option;  (** index of the innermost enclosing loop *)
  depth : int;  (** 1 = outermost *)
}

type t = {
  loops : loop array;
  block_loop : int option array;  (** innermost loop containing each block *)
}

val in_loop : loop -> int -> bool

val analyze : ?dom:Cgcm_ir.Dominance.t -> Cgcm_ir.Ir.func -> t
(** [dom] supplies an already-computed dominator tree (the analysis
    manager's cache); computed on demand otherwise. *)

val note_preheader : t -> li:int -> ph:int -> t
(** Patch the analysis after block [ph] was appended as the preheader of
    loop index [li]: the new block is outside that loop, inside every
    strictly containing one. *)

val note_edge_block : t -> from_:int -> to_:int -> nb:int -> t
(** Patch the analysis after block [nb] was appended splitting the edge
    [from_ -> to_]: the new block belongs to exactly the loops containing
    both endpoints. *)

val equal : t -> t -> bool
(** Canonical equality (loop order and internal indices ignored); the
    manager's paranoid mode compares cached vs fresh results with it. *)

val innermost_first : t -> int list
(** Loop indices ordered deepest first — the promotion order. *)

val exit_edges : Cgcm_ir.Ir.func -> loop -> (int * int) list
(** Edges from a block in the loop to one outside (where promotion puts
    unmap + release). *)

val entry_edges : Cgcm_ir.Ir.func -> loop -> int list
(** Predecessors of the header from outside the loop (redirected to the
    preheader). *)
