(** Interprocedural CPU mod/ref summaries.

    Map promotion must prove that the CPU code of a region neither reads
    nor writes the candidate allocation unit; when the region contains
    calls, it consults a summary of what each callee's {e CPU} code (not
    its kernels — those run against device memory) can touch. *)

type summary = {
  globals : string list;  (** named globals the callee may load or store *)
  unknown : bool;
      (** the callee may dereference pointers of unknown provenance, so it
          may touch anything a pointer could reach *)
}

val empty : summary
val union : summary -> summary -> summary

type t = (string, summary) Hashtbl.t

val compute : Cgcm_ir.Ir.modul -> t
(** Fixpoint over the call graph; recursion and unknown callees degrade
    to [unknown]. *)

type rw = {
  reads : string list;  (** named globals the kernel body may load *)
  writes : string list;  (** named globals the kernel body may store *)
  rw_unknown : bool;
      (** pointer parameters, loaded pointers or user calls: the kernel
          may reach memory the sets do not name *)
}

val kernel_rw : Cgcm_ir.Ir.func -> rw
(** Kernel-side read/write sets for the coherence sanitizer's launch
    hook. *)

val call_may_touch : t -> callee:string -> Alias.obj -> bool
(** May a call to [callee] touch [obj] from CPU code? Callee-local units
    are invisible to callers; caller-local units are reachable only
    through dereferenced pointers, which [unknown] accounts for. *)

val equal : t -> t -> bool
(** Canonical equality (hashtable order ignored), for the analysis
    manager's paranoid mode. *)
