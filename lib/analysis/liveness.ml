(* Classic backward liveness over virtual registers. The communication-
   management pass derives kernel live-ins directly from launch operands
   (the DOALL outliner made them explicit), but glue-kernel outlining and
   several tests need real liveness information. *)

module Ir = Cgcm_ir.Ir

module ISet = Set.Make (Int)

type t = { live_in : ISet.t array; live_out : ISet.t array }

let regs_of_values vs =
  List.fold_left
    (fun acc v -> match v with Ir.Reg r -> ISet.add r acc | _ -> acc)
    ISet.empty vs

let compute (f : Ir.func) : t =
  let n = Array.length f.Ir.blocks in
  (* use/def per block *)
  let use = Array.make n ISet.empty in
  let def = Array.make n ISet.empty in
  Array.iteri
    (fun bi (b : Ir.block) ->
      let u = ref ISet.empty and d = ref ISet.empty in
      List.iter
        (fun i ->
          let uses = regs_of_values (Ir.uses_of_instr i) in
          u := ISet.union !u (ISet.diff uses !d);
          match Ir.def_of_instr i with
          | Some r -> d := ISet.add r !d
          | None -> ())
        b.Ir.instrs;
      let tuses = regs_of_values (Ir.uses_of_term b.Ir.term) in
      u := ISet.union !u (ISet.diff tuses !d);
      use.(bi) <- !u;
      def.(bi) <- !d)
    f.Ir.blocks;
  let live_in = Array.make n ISet.empty in
  let live_out = Array.make n ISet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> ISet.union acc live_in.(s))
          ISet.empty
          (Cgcm_ir.Cfg.succs f bi)
      in
      let inn = ISet.union use.(bi) (ISet.diff out def.(bi)) in
      if not (ISet.equal out live_out.(bi) && ISet.equal inn live_in.(bi))
      then begin
        live_out.(bi) <- out;
        live_in.(bi) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

let live_in t b = t.live_in.(b)

let live_out t b = t.live_out.(b)

(* Equality via ISet.equal (set trees with equal elements can differ
   structurally); for the analysis manager's paranoid mode. *)
let equal a b =
  Array.length a.live_in = Array.length b.live_in
  && Array.for_all2 ISet.equal a.live_in b.live_in
  && Array.for_all2 ISet.equal a.live_out b.live_out
