(** Lightweight intraprocedural alias analysis based on underlying
    objects.

    CGCM deliberately avoids depending on strong alias analysis — the
    run-time handles aliasing correctly by construction — but the
    compiler still needs a conservative may-alias test for map promotion's
    modOrRef check, and an escape analysis for stack slots to drive
    declareAlloca insertion. *)

(** The object an address is derived from, when derivable. *)
type obj =
  | Obj_alloca of int  (** register holding the alloca result *)
  | Obj_global of string
  | Obj_heap of int  (** register holding a malloc/calloc/realloc result *)
  | Obj_unknown

val def_map : Cgcm_ir.Ir.func -> Cgcm_ir.Ir.instr option array
(** Defining instruction per register (registers are single-assignment). *)

val unescaped_slots : Cgcm_ir.Ir.func -> (int, bool) Hashtbl.t
(** Per alloca register: is the slot's address (and every pointer derived
    from it by arithmetic) only ever used in the address position of
    loads and stores? Escaping uses: stored as a value, passed to a call
    or launch, used by a terminator. *)

type t = {
  func : Cgcm_ir.Ir.func;
  defs : Cgcm_ir.Ir.instr option array;
  slots : (int, bool) Hashtbl.t;
}

val analyze : Cgcm_ir.Ir.func -> t

val underlying : t -> Cgcm_ir.Ir.value -> obj
(** Trace an address back through arithmetic, casts and private-slot
    reloads to its allocation site. *)

val may_alias : obj -> obj -> bool
(** Unknown aliases everything; distinct concrete objects never alias. *)

val access_may_alias : t -> access:obj -> target:obj -> bool
(** Refinement for modOrRef: an access to a {e non-escaping} stack slot
    of the current function cannot alias a pointer of unknown provenance
    (no pointer to that slot exists outside the addressing the escape
    analysis already saw). *)

val escaping_allocas : Cgcm_ir.Ir.func -> int list
(** Alloca registers needing declareAlloca registration. *)

val equal : t -> t -> bool
(** Structural equality (defs arrays None-padded to the same length);
    the analysis manager's paranoid mode compares cached vs fresh
    results with it. *)
