(* Analytic timing model of the CPU-GPU system, standing in for the
   paper's Core 2 Quad + GeForce GTX 480 testbed. All times are in CPU
   cycles. The absolute values are not meant to match the paper's
   hardware; what matters for reproducing the paper's shapes is the
   *structure*: per-transfer latency dominates small cyclic transfers,
   bandwidth dominates bulk ones, kernels are asynchronous until a
   device-to-host copy forces a sync, and the GPU wins only through
   parallelism (a single GPU thread is slower than the CPU). *)

type t = {
  cpu_cycle : float;  (* cycles per interpreted CPU instruction *)
  gpu_cycle : float;  (* cycles per interpreted GPU instruction, per thread *)
  gpu_cores : int;  (* GTX 480: 15 SMs x 32 lanes = 480 *)
  gpu_efficiency : float;  (* fraction of peak parallelism achieved *)
  launch_overhead_cpu : float;  (* host-side driver cost per launch *)
  launch_overhead_gpu : float;  (* device-side cost per launch *)
  transfer_latency : float;  (* fixed cost per DMA transfer *)
  transfer_bytes_per_cycle : float;  (* PCIe bandwidth *)
  alloc_overhead : float;  (* cuMemAlloc / cuMemFree *)
  runtime_call_overhead : float;  (* one CGCM run-time library call *)
  device_mem_bytes : int;  (* device global-memory capacity *)
  par_min_trip : int;
      (* host-side parallel engine: launches with fewer iterations than
         this run sequentially rather than paying domain-pool overhead *)
  page_bytes : int;  (* paged backend: migration granularity *)
  page_fault_cycles : float;
      (* paged backend: fixed cost per page fault — fault delivery, the
         driver's handler, and the page-table update; the migrated
         page's bytes are charged at transfer_bytes_per_cycle on top *)
}

let default =
  {
    cpu_cycle = 1.0;
    gpu_cycle = 4.0;
    gpu_cores = 480;
    gpu_efficiency = 0.9;
    launch_overhead_cpu = 2_000.0;
    launch_overhead_gpu = 6_000.0;
    transfer_latency = 50_000.0;
    transfer_bytes_per_cycle = 2.0;
    alloc_overhead = 2_000.0;
    runtime_call_overhead = 120.0;
    (* Effectively unbounded by default; experiments that study memory
       pressure cap it (the GTX 480 shipped with 1.5 GB). *)
    device_mem_bytes = max_int;
    (* Waking the pool costs a few microseconds; below this many
       iterations a launch is cheaper to run in place. *)
    par_min_trip = 16;
    page_bytes = 4096;
    (* A demand fault is priced close to one DMA latency: real GPU
       page-fault handling (fault delivery + driver round trip) sits in
       the tens of microseconds, the same order as a small cuMemcpy.
       Bulk data therefore pays one fault *per page* where an explicit
       transfer pays one latency per region — which is exactly the shape
       the explicit-vs-paged A/B is meant to expose. *)
    page_fault_cycles = 40_000.0;
  }

let transfer_cycles t bytes =
  t.transfer_latency +. (float_of_int bytes /. t.transfer_bytes_per_cycle)

(* Duration of a kernel that executes [insts] dynamic instructions in
   total across [trip] threads. *)
let kernel_cycles t ~insts ~trip =
  let parallelism =
    float_of_int (min t.gpu_cores (max 1 trip)) *. t.gpu_efficiency
  in
  t.launch_overhead_gpu
  +. (float_of_int insts *. t.gpu_cycle /. max 1.0 parallelism)
