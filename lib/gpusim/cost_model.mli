(** Analytic timing model of the CPU-GPU system, standing in for the
    paper's Core 2 Quad + GeForce GTX 480 testbed. All times are in CPU
    cycles.

    Absolute values are not meant to match the paper's hardware; what
    matters for reproducing its shapes is the structure: per-transfer
    latency dominates small cyclic transfers, bandwidth dominates bulk
    ones, kernels are asynchronous until a device-to-host copy forces a
    sync, and the GPU wins only through parallelism (a single GPU thread
    is slower than the CPU). *)

type t = {
  cpu_cycle : float;  (** cycles per interpreted CPU instruction *)
  gpu_cycle : float;  (** cycles per interpreted GPU instruction, per thread *)
  gpu_cores : int;  (** GTX 480: 15 SMs x 32 lanes = 480 *)
  gpu_efficiency : float;  (** fraction of peak parallelism achieved *)
  launch_overhead_cpu : float;  (** host-side driver cost per launch *)
  launch_overhead_gpu : float;  (** device-side cost per launch *)
  transfer_latency : float;  (** fixed cost per DMA transfer *)
  transfer_bytes_per_cycle : float;  (** PCIe bandwidth *)
  alloc_overhead : float;  (** cuMemAlloc / cuMemFree *)
  runtime_call_overhead : float;  (** one CGCM run-time library call *)
  device_mem_bytes : int;
      (** device global-memory capacity; [max_int] (the default) is
          effectively unbounded *)
  par_min_trip : int;
      (** host-side parallel engine: launches with fewer iterations than
          this run sequentially rather than paying domain-pool
          overhead *)
  page_bytes : int;
      (** paged backend: migration granularity (default 4 KiB) *)
  page_fault_cycles : float;
      (** paged backend: fixed cost per page fault (fault delivery + the
          driver's handler); the page's bytes are charged at
          [transfer_bytes_per_cycle] on top *)
}

val default : t

val transfer_cycles : t -> int -> float
(** [transfer_cycles t bytes] = latency + bytes / bandwidth. *)

val kernel_cycles : t -> insts:int -> trip:int -> float
(** Duration of a kernel executing [insts] dynamic instructions in total
    across [trip] threads: launch overhead plus work divided by the
    effective parallelism [min cores trip * efficiency]. *)
