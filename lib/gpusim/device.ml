(* The simulated GPU device: a separate memory space plus a CUDA-driver-
   style interface (cf. cuMemAlloc / cuMemcpyHtoD / cuMemcpyDtoH /
   cuModuleGetGlobal) and a timeline. Kernels run asynchronously: a launch
   returns as soon as the host-side driver work is done, and the device
   timeline advances independently until a device-to-host transfer (or an
   explicit sync) forces the CPU to wait — this asynchrony is what makes
   acyclic communication patterns overlap CPU and GPU work (Figure 2). *)

module Memspace = Cgcm_memory.Memspace
module Errors = Cgcm_support.Errors
module Sanitizer = Cgcm_sanitizer.Sanitizer

type stats = {
  mutable htod_bytes : int;
  mutable dtoh_bytes : int;
  mutable htod_count : int;
  mutable dtoh_count : int;
  mutable launches : int;
  mutable kernel_insts : int;
  mutable kernel_cycles : float;  (* total device busy time in kernels *)
  mutable comm_cycles : float;  (* total time spent in transfers *)
  mutable sync_cycles : float;  (* CPU cycles spent stalled on the device *)
}

type t = {
  mem : Memspace.t;
  cost : Cost_model.t;
  trace : Trace.t;
  mutable busy_until : float;  (* device timeline *)
  globals : (string, int) Hashtbl.t;  (* named module globals *)
  global_sizes : (string, int) Hashtbl.t;
  stats : stats;
  faults : Faults.t option;  (* active fault-injection plan, if any *)
  sanitizer : Sanitizer.t option;  (* coherence shadow, if auditing *)
  (* Bumped whenever a module global's device residence is revoked
     (memory-pressure eviction). Cached cuModuleGetGlobal results are
     valid only while this generation is unchanged. *)
  mutable globals_gen : int;
}

let create ?(trace = Trace.create ()) ?faults ?sanitizer cost =
  {
    mem =
      Memspace.create ~name:"device" ~range_lo:0x4000_0000_00
        ~range_hi:0x7000_0000_00;
    cost;
    trace;
    busy_until = 0.0;
    globals = Hashtbl.create 16;
    global_sizes = Hashtbl.create 16;
    stats =
      {
        htod_bytes = 0;
        dtoh_bytes = 0;
        htod_count = 0;
        dtoh_count = 0;
        launches = 0;
        kernel_insts = 0;
        kernel_cycles = 0.0;
        comm_cycles = 0.0;
        sync_cycles = 0.0;
      };
    faults;
    sanitizer;
    globals_gen = 0;
  }

let stats t = t.stats

let capacity t = t.cost.Cost_model.device_mem_bytes

let injected t op =
  match t.faults with Some f -> Faults.fires f op | None -> false

(* Shared admission control for every device allocation: an injected
   fault fails the call outright (as a flaky driver would); otherwise the
   request must fit the remaining capacity. Both failure modes raise the
   same typed error, so recovery code upstream has one path. *)
let check_alloc t ~op size =
  let live = Memspace.live_bytes t.mem in
  if injected t Faults.Alloc then
    raise
      (Errors.Device_error
         (Errors.Oom
            { op; requested = size; live; capacity = capacity t; injected = true }));
  if live + size > capacity t then
    raise
      (Errors.Device_error
         (Errors.Oom
            { op; requested = size; live; capacity = capacity t; injected = false }))

(* cuMemAlloc: synchronous host-side allocation. Returns (devptr, now'). *)
let mem_alloc t ~now size =
  check_alloc t ~op:"cuMemAlloc" size;
  let addr = Memspace.alloc ~tag:"dev" t.mem size in
  (addr, now +. t.cost.Cost_model.alloc_overhead)

let mem_free t ~now addr =
  (* The sanitizer audits the free *before* it happens: a double free or
     a free of a still-mapped unit must be reported, not executed. *)
  (match t.sanitizer with
  | Some s -> Sanitizer.on_dev_free s ~addr ~op:"cuMemFree"
  | None -> ());
  Memspace.free t.mem addr;
  now +. t.cost.Cost_model.alloc_overhead

(* cuModuleGetGlobal: device-resident copy of a named global, allocated
   lazily (without copying any data — that is map's job). *)
let module_get_global t ~now name =
  match Hashtbl.find_opt t.globals name with
  | Some addr -> (addr, now)
  | None -> (
    match Hashtbl.find_opt t.global_sizes name with
    | None -> Memspace.fault "device: unknown module global %s" name
    | Some size ->
      check_alloc t ~op:"cuModuleGetGlobal" size;
      let addr = Memspace.alloc ~tag:("g:" ^ name) t.mem size in
      Hashtbl.replace t.globals name addr;
      (addr, now +. t.cost.Cost_model.alloc_overhead))

(* Revoke a global's device residence (memory-pressure eviction). Any
   data must already be written back; cached cuModuleGetGlobal results
   are invalidated via [globals_gen]. The next access re-allocates. *)
let forget_global t ~now name =
  match Hashtbl.find_opt t.globals name with
  | None -> now
  | Some addr ->
    (match t.sanitizer with
    | Some s -> Sanitizer.on_dev_free s ~addr ~op:("forget_global " ^ name)
    | None -> ());
    Hashtbl.remove t.globals name;
    t.globals_gen <- t.globals_gen + 1;
    Memspace.free t.mem addr;
    now +. t.cost.Cost_model.alloc_overhead

let declare_module_global t ~name ~size = Hashtbl.replace t.global_sizes name size

(* Wait for all outstanding device work. *)
let sync t ~now =
  if t.busy_until > now then begin
    t.stats.sync_cycles <- t.stats.sync_cycles +. (t.busy_until -. now);
    Trace.record t.trace Trace.Sync ~start:now ~finish:t.busy_until
      ~label:"sync" ~bytes:0;
    t.busy_until
  end
  else now

(* Synchronous transfers: like cudaMemcpy on the default stream, they wait
   for outstanding kernels, then occupy the bus. *)
let memcpy_h_to_d ?(label = "HtoD") t ~now ~host ~host_addr ~dev_addr ~len =
  (* Fault check before any side effect: a failed DMA moves no bytes,
     advances no clock, and records no trace event, so a retry is clean. *)
  if injected t Faults.Htod then
    raise
      (Errors.Device_error
         (Errors.Transfer_failed
            { dir = Errors.Host_to_device; bytes = len; injected = true }));
  let start = sync t ~now in
  Memspace.blit ~src:host ~src_addr:host_addr ~dst:t.mem ~dst_addr:dev_addr
    ~len;
  (* Observed after the blit, so only successful DMAs age the shadow —
     a faulted-and-retried transfer is counted once. *)
  (match t.sanitizer with
  | Some s -> Sanitizer.on_htod s ~host_addr ~dev_addr ~len ~label
  | None -> ());
  let dur = Cost_model.transfer_cycles t.cost len in
  let finish = start +. dur in
  t.busy_until <- finish;
  t.stats.htod_bytes <- t.stats.htod_bytes + len;
  t.stats.htod_count <- t.stats.htod_count + 1;
  t.stats.comm_cycles <- t.stats.comm_cycles +. dur;
  Trace.record t.trace Trace.Htod ~start ~finish ~label ~bytes:len;
  finish

let memcpy_d_to_h ?(label = "DtoH") t ~now ~host ~host_addr ~dev_addr ~len =
  if injected t Faults.Dtoh then
    raise
      (Errors.Device_error
         (Errors.Transfer_failed
            { dir = Errors.Device_to_host; bytes = len; injected = true }));
  let start = sync t ~now in
  Memspace.blit ~src:t.mem ~src_addr:dev_addr ~dst:host ~dst_addr:host_addr
    ~len;
  (match t.sanitizer with
  | Some s -> Sanitizer.on_dtoh s ~host_addr ~dev_addr ~len ~label
  | None -> ());
  let dur = Cost_model.transfer_cycles t.cost len in
  let finish = start +. dur in
  t.busy_until <- finish;
  t.stats.dtoh_bytes <- t.stats.dtoh_bytes + len;
  t.stats.dtoh_count <- t.stats.dtoh_count + 1;
  t.stats.comm_cycles <- t.stats.comm_cycles +. dur;
  Trace.record t.trace Trace.Dtoh ~start ~finish ~label ~bytes:len;
  finish

(* Account for an (already functionally executed) kernel launch. The
   launch is asynchronous: the device timeline advances, the CPU only pays
   the driver overhead. *)
let launch t ~now ~name ~insts ~trip =
  (* Fault check first: a failed launch must leave the timeline, stats
     and trace untouched so the caller can fall back to CPU execution. *)
  if injected t Faults.Launch then
    raise
      (Errors.Device_error (Errors.Launch_failed { kernel = name; injected = true }));
  let start = max now t.busy_until in
  let dur = Cost_model.kernel_cycles t.cost ~insts ~trip in
  t.busy_until <- start +. dur;
  t.stats.launches <- t.stats.launches + 1;
  t.stats.kernel_insts <- t.stats.kernel_insts + insts;
  t.stats.kernel_cycles <- t.stats.kernel_cycles +. dur;
  Trace.record t.trace Trace.Kernel ~start ~finish:(start +. dur) ~label:name
    ~bytes:0;
  now +. t.cost.Cost_model.launch_overhead_cpu
