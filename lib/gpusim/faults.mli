(** Deterministic fault injection for the simulated driver.

    A fault plan is a seed plus clauses targeting the driver entry
    points; each clause fires on the n-th call of its operation or with
    probability p per call under a seeded splitmix64 stream (one
    independent stream per operation). Plans are replayable: the same
    plan against the same program fails exactly the same calls. *)

type op = Alloc | Htod | Dtoh | Launch

type mode =
  | Nth of int  (** fire on the n-th call of the operation (1-based) *)
  | Prob of float  (** fire with probability p per call *)

type clause = { c_op : op; c_mode : mode }

type spec = { seed : int; clauses : clause list }
(** Immutable, shareable plan description. *)

val default_clauses : clause list
(** The plan used when only a seed is given: [Prob 0.05] on every
    operation. *)

val parse : string -> spec
(** Parse ["SEED[:SPEC]"] where SPEC is comma-separated clauses
    [op@N] (fail the n-th call) or [op%P] (fail with probability P),
    with op one of [alloc|htod|dtoh|launch]. Without SPEC,
    {!default_clauses} applies. Raises [Failure] on malformed input. *)

val to_string : spec -> string

val op_name : op -> string

type t
(** A live, stateful instance of a plan (per-clause call counters and
    PRNG streams). *)

val make : spec -> t
val spec_of : t -> spec

val fires : t -> op -> bool
(** Should the next call of [op] fail? Advances the matching clauses'
    counters and streams; consult exactly once per driver call. *)
