(** The simulated GPU device: a separate memory space plus a CUDA-driver-
    style interface (cf. cuMemAlloc / cuMemcpyHtoD / cuMemcpyDtoH /
    cuModuleGetGlobal) and a timeline.

    Kernels run asynchronously: a launch returns once the host-side driver
    work is done and the device timeline advances independently, until a
    transfer (or explicit {!sync}) forces the CPU to wait — the asynchrony
    that makes acyclic communication overlap CPU and GPU work
    (Figure 2). *)

type stats = {
  mutable htod_bytes : int;
  mutable dtoh_bytes : int;
  mutable htod_count : int;
  mutable dtoh_count : int;
  mutable launches : int;
  mutable kernel_insts : int;
  mutable kernel_cycles : float;  (** total device busy time in kernels *)
  mutable comm_cycles : float;  (** total time spent in transfers *)
  mutable sync_cycles : float;  (** CPU cycles spent stalled on the device *)
}

type t = {
  mem : Cgcm_memory.Memspace.t;  (** device global memory *)
  cost : Cost_model.t;
  trace : Trace.t;
  mutable busy_until : float;  (** device timeline *)
  globals : (string, int) Hashtbl.t;  (** resolved named module globals *)
  global_sizes : (string, int) Hashtbl.t;
  stats : stats;
  faults : Faults.t option;  (** active fault-injection plan *)
  sanitizer : Cgcm_sanitizer.Sanitizer.t option;
      (** coherence shadow; observes successful transfers and audits
          device frees when auditing is on *)
  mutable globals_gen : int;
      (** bumped when a module global's residence is revoked; cached
          {!module_get_global} results are valid only while unchanged *)
}

val create :
  ?trace:Trace.t ->
  ?faults:Faults.t ->
  ?sanitizer:Cgcm_sanitizer.Sanitizer.t ->
  Cost_model.t ->
  t

val stats : t -> stats

(** All timing functions take the CPU clock [now] and return its new
    value.

    Fallible calls ({!mem_alloc}, {!module_get_global}, the transfers,
    {!launch}) raise {!Cgcm_support.Errors.Device_error} — on capacity
    exhaustion ({!Cost_model.device_mem_bytes}) or when the active fault
    plan fires — strictly before any side effect, so a retry observes a
    clean device. *)

val mem_alloc : t -> now:float -> int -> int * float
(** cuMemAlloc: synchronous device allocation; returns (devptr, now'). *)

val mem_free : t -> now:float -> int -> float

val declare_module_global : t -> name:string -> size:int -> unit
(** Declare a named global region of the device module (linker side). *)

val module_get_global : t -> now:float -> string -> int * float
(** cuModuleGetGlobal: device-resident copy of a named global, allocated
    lazily without copying data (that is map's job). *)

val forget_global : t -> now:float -> string -> float
(** Revoke a global's device residence (memory-pressure eviction): frees
    the device block, bumps [globals_gen]. The caller must have written
    back any dirty data; the next {!module_get_global} re-allocates. *)

val sync : t -> now:float -> float
(** Wait for all outstanding device work; records the stall. *)

val memcpy_h_to_d :
  ?label:string ->
  t ->
  now:float ->
  host:Cgcm_memory.Memspace.t ->
  host_addr:int ->
  dev_addr:int ->
  len:int ->
  float
(** Synchronous transfer: waits for outstanding kernels (default-stream
    semantics), then occupies the bus. [label] names the trace event
    (default ["HtoD"]; the run-time uses ["HtoD-dirty"] for dirty-span
    transfers). *)

val memcpy_d_to_h :
  ?label:string ->
  t ->
  now:float ->
  host:Cgcm_memory.Memspace.t ->
  host_addr:int ->
  dev_addr:int ->
  len:int ->
  float

val launch : t -> now:float -> name:string -> insts:int -> trip:int -> float
(** Account for an (already functionally executed) kernel: the device
    timeline advances by {!Cost_model.kernel_cycles}, the CPU pays only
    the driver overhead. *)
