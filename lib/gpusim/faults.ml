(* Deterministic fault injection for the simulated driver.

   A fault *plan* is a seed plus a list of clauses; each clause targets
   one driver entry point (cuMemAlloc, cuMemcpyHtoD, cuMemcpyDtoH,
   cuLaunch) and fires either on the n-th call of that operation or with
   probability p per call under a splitmix64 stream derived from the
   seed. Plans are replayable: the same plan against the same program
   fires at exactly the same call sites, which is what lets the fault-
   soak differential tests demand bit-identical program output.

   Each operation draws from its own PRNG stream, so adding a clause for
   one operation never perturbs the fault schedule of another. *)

module Rng = Cgcm_support.Rng

type op = Alloc | Htod | Dtoh | Launch

type mode =
  | Nth of int  (* fire on the n-th call (1-based), once *)
  | Prob of float  (* fire with probability p per call *)

type clause = { c_op : op; c_mode : mode }

type spec = { seed : int; clauses : clause list }

let op_name = function
  | Alloc -> "alloc"
  | Htod -> "htod"
  | Dtoh -> "dtoh"
  | Launch -> "launch"

let op_index = function Alloc -> 0 | Htod -> 1 | Dtoh -> 2 | Launch -> 3

let op_of_name = function
  | "alloc" -> Some Alloc
  | "htod" -> Some Htod
  | "dtoh" -> Some Dtoh
  | "launch" -> Some Launch
  | _ -> None

(* The plan used when only a seed is given: a light probabilistic shower
   over every operation — enough to exercise every recovery path on the
   benchmark suite without making runs unrecoverable. *)
let default_clauses =
  List.map
    (fun op -> { c_op = op; c_mode = Prob 0.05 })
    [ Alloc; Htod; Dtoh; Launch ]

(* ------------------------------------------------------------------ *)
(* Plan syntax: SEED[:CLAUSE,CLAUSE,...] with CLAUSE = op@N | op%P     *)

let parse_clause s =
  let bad () =
    failwith
      (Printf.sprintf
         "bad fault clause %S (expected op@N or op%%P with op one of \
          alloc|htod|dtoh|launch)"
         s)
  in
  let split_on c =
    match String.index_opt s c with
    | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> None
  in
  match split_on '@' with
  | Some (opn, n) -> (
    match (op_of_name opn, int_of_string_opt n) with
    | Some op, Some n when n >= 1 -> { c_op = op; c_mode = Nth n }
    | _ -> bad ())
  | None -> (
    match split_on '%' with
    | Some (opn, p) -> (
      match (op_of_name opn, float_of_string_opt p) with
      | Some op, Some p when p >= 0.0 && p <= 1.0 ->
        { c_op = op; c_mode = Prob p }
      | _ -> bad ())
    | None -> bad ())

let parse s =
  let seed_str, rest =
    match String.index_opt s ':' with
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, None)
  in
  let seed =
    match int_of_string_opt (String.trim seed_str) with
    | Some n -> n
    | None ->
      failwith
        (Printf.sprintf "bad fault plan %S (expected SEED[:SPEC])" s)
  in
  let clauses =
    match rest with
    | None | Some "" -> default_clauses
    | Some r ->
      String.split_on_char ',' r
      |> List.filter (fun c -> String.trim c <> "")
      |> List.map (fun c -> parse_clause (String.trim c))
  in
  { seed; clauses }

let clause_to_string c =
  match c.c_mode with
  | Nth n -> Printf.sprintf "%s@%d" (op_name c.c_op) n
  | Prob p -> Printf.sprintf "%s%%%g" (op_name c.c_op) p

let to_string spec =
  Printf.sprintf "%d:%s" spec.seed
    (String.concat "," (List.map clause_to_string spec.clauses))

(* ------------------------------------------------------------------ *)
(* A live (stateful) instance of a plan                                *)

type clause_state = { clause : clause; mutable count : int }

type t = { spec : spec; states : clause_state list; streams : Rng.t array }

let make spec =
  {
    spec;
    states = List.map (fun c -> { clause = c; count = 0 }) spec.clauses;
    (* one independent stream per operation, derived from the seed *)
    streams = Array.init 4 (fun i -> Rng.stream ~seed:spec.seed i);
  }

let spec_of t = t.spec

(* Should the next call of [op] fail? Advances every matching clause, so
   a plan instance must be consulted exactly once per driver call. *)
let fires t op =
  let fired = ref false in
  List.iter
    (fun st ->
      if st.clause.c_op = op then
        match st.clause.c_mode with
        | Nth n ->
          st.count <- st.count + 1;
          if st.count = n then fired := true
        | Prob p ->
          if Rng.float t.streams.(op_index op) < p then fired := true)
    t.states;
  !fired
