(* Wire-protocol fuzzer: random frame streams, random corruption,
   random chunking — the decoder must either decode or raise
   [Wire.Protocol_error], never anything else. See wire_fuzz.mli. *)

module Rng = Cgcm_support.Rng
module Json = Cgcm_serve.Json
module Wire = Cgcm_serve.Wire

type case = {
  wc_seed : int;
  wc_frames : Json.t list;
  wc_bytes : string;
  wc_mutated : bool;
  wc_mutation : string;
}

type wfailure = { wf_detail : string }

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let gen_string rng =
  let n = Rng.int rng 12 in
  String.init n (fun _ ->
      (* printable ASCII plus the JSON-escaped troublemakers *)
      match Rng.int rng 20 with
      | 0 -> '"'
      | 1 -> '\\'
      | 2 -> '\n'
      | 3 -> '\t'
      | _ -> Char.chr (32 + Rng.int rng 95))

let rec gen_json rng depth : Json.t =
  match Rng.int rng (if depth >= 2 then 5 else 7) with
  | 0 -> Json.Null
  | 1 -> Json.Bool (Rng.int rng 2 = 0)
  | 2 -> Json.Int (Rng.int rng 2_000_000 - 1_000_000)
  | 3 -> Json.Float (float_of_int (Rng.int rng 4096) /. 8.0)
  | 4 -> Json.Str (gen_string rng)
  | 5 -> Json.List (List.init (Rng.int rng 4) (fun _ -> gen_json rng (depth + 1)))
  | _ ->
    Json.Obj
      (List.init
         (1 + Rng.int rng 3)
         (fun i -> (Printf.sprintf "k%d" i, gen_json rng (depth + 1))))

let frames_bytes frames =
  let b = Buffer.create 256 in
  List.iter
    (fun v -> Buffer.add_bytes b (Wire.encode_frame v))
    frames;
  Buffer.contents b

(* The mutation menu. Each takes pristine bytes and returns a hostile
   variant; all are pure byte surgery so shrinking stays byte-level. *)
let mutate rng s =
  let n = String.length s in
  let b = Bytes.of_string s in
  match Rng.int rng 6 with
  | 0 ->
    let i = Rng.int rng n in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
    ("bit flip", Bytes.to_string b)
  | 1 -> ("truncation", String.sub s 0 (Rng.int rng n))
  | 2 ->
    (* oversized length header at stream start *)
    Bytes.set b 0 '\x7f';
    Bytes.set b 1 '\xff';
    Bytes.set b 2 '\xff';
    Bytes.set b 3 '\xff';
    ("oversized length", Bytes.to_string b)
  | 3 ->
    (* sign bit set: a negative length on the wire *)
    Bytes.set b 0 '\xff';
    ("negative length", Bytes.to_string b)
  | 4 ->
    Bytes.set b 0 '\x00';
    Bytes.set b 1 '\x00';
    Bytes.set b 2 '\x00';
    Bytes.set b 3 '\x00';
    ("zero length", Bytes.to_string b)
  | _ ->
    let i = Rng.int rng (n + 1) in
    let garbage = String.init (1 + Rng.int rng 8) (fun _ -> Char.chr (Rng.int rng 256)) in
    ("injected garbage", String.sub s 0 i ^ garbage ^ String.sub s i (n - i))

let case ~seed =
  let rng = Rng.stream ~seed 100 in
  let frames = List.init (1 + Rng.int rng 4) (fun _ -> gen_json rng 0) in
  let bytes = frames_bytes frames in
  if Rng.int rng 2 = 0 then
    { wc_seed = seed; wc_frames = frames; wc_bytes = bytes;
      wc_mutated = false; wc_mutation = "none" }
  else
    let label, mutated = mutate rng bytes in
    { wc_seed = seed; wc_frames = frames; wc_bytes = mutated;
      wc_mutated = true; wc_mutation = label }

(* ------------------------------------------------------------------ *)
(* The property                                                        *)

let check (c : case) : wfailure option =
  let rng = Rng.stream ~seed:c.wc_seed 200 in
  let dec = Wire.decoder () in
  let got = ref [] in
  let s = c.wc_bytes in
  let n = String.length s in
  let result =
    try
      let pos = ref 0 in
      while !pos < n do
        let len = min (n - !pos) (1 + Rng.int rng 7) in
        Wire.decoder_feed dec (Bytes.of_string (String.sub s !pos len)) len;
        got := !got @ Wire.decoder_drain dec;
        pos := !pos + len
      done;
      `Done
    with
    | Wire.Protocol_error msg -> `Protocol_error msg
    | e -> `Crash (Printexc.to_string e)
  in
  match result with
  | `Crash d ->
    Some { wf_detail = "decoder raised a non-protocol exception: " ^ d }
  | `Protocol_error msg ->
    if c.wc_mutated then None
    else Some { wf_detail = "pristine stream rejected: " ^ msg }
  | `Done ->
    if not c.wc_mutated then begin
      let expect = List.map Json.print c.wc_frames in
      let actual = List.map Json.print !got in
      if actual <> expect then
        Some
          { wf_detail =
              Printf.sprintf
                "pristine stream decoded to %d frame(s), expected %d \
                 (first diff: %s)"
                (List.length actual) (List.length expect)
                (match
                   List.find_opt
                     (fun (a, e) -> a <> e)
                     (List.combine
                        (actual @ List.init (max 0 (List.length expect - List.length actual)) (fun _ -> "<missing>"))
                        (expect @ List.init (max 0 (List.length actual - List.length expect)) (fun _ -> "<extra>")))
                 with
                | Some (a, e) -> Printf.sprintf "%s vs %s" a e
                | None -> "-")
          }
      else if Wire.decoder_buffered dec then
        Some { wf_detail = "pristine stream left bytes buffered" }
      else None
    end
    else None

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let candidates (c : case) : case list =
  if not c.wc_mutated then
    (* pristine streams shrink by dropping whole frames; bytes are
       re-derived so the equality oracle stays aligned *)
    List.concat_map
      (fun i ->
        let frames = List.filteri (fun j _ -> j <> i) c.wc_frames in
        if frames = [] then []
        else [ { c with wc_frames = frames; wc_bytes = frames_bytes frames } ])
      (List.init (List.length c.wc_frames) (fun i -> i))
  else begin
    (* mutated streams shrink at the byte level: the oracle only says
       "no foreign exception", so any cut is fair *)
    let s = c.wc_bytes in
    let n = String.length s in
    let cut i len =
      { c with wc_bytes = String.sub s 0 i ^ String.sub s (i + len) (n - i - len) }
    in
    let halves = if n > 1 then [ cut 0 (n / 2); cut (n / 2) (n - (n / 2)) ] else [] in
    let chunks =
      if n > 16 then List.init (n / 16) (fun i -> cut (i * 16) 16) else []
    in
    let bytes = if n > 1 && n <= 32 then List.init n (fun i -> cut i 1) else [] in
    List.filter (fun c -> c.wc_bytes <> "") (halves @ chunks @ bytes)
  end

let shrink (c0 : case) (f0 : wfailure) : case * wfailure =
  let best = ref (c0, f0) in
  let budget = ref 400 in
  let rec go () =
    let c, _ = !best in
    let improved =
      List.exists
        (fun cand ->
          if !budget <= 0 then false
          else begin
            decr budget;
            match check cand with
            | Some f ->
              best := (cand, f);
              true
            | None -> false
          end)
        (candidates c)
    in
    if improved && !budget > 0 then go ()
  in
  go ();
  !best

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)

type wreport = { wr_seed : int; wr_failure : wfailure; wr_minimal : case }

let hex s =
  let b = Buffer.create (String.length s * 3) in
  String.iteri
    (fun i ch ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (Printf.sprintf "%02x" (Char.code ch)))
    s;
  Buffer.contents b

let render_report r =
  Printf.sprintf
    "wire fuzz failure (seed %d, mutation: %s)\n  %s\n  minimal stream (%d bytes): %s"
    r.wr_seed r.wr_minimal.wc_mutation r.wr_failure.wf_detail
    (String.length r.wr_minimal.wc_bytes)
    (hex r.wr_minimal.wc_bytes)

let campaign ?(progress = fun _ -> ()) ~count ~seed () =
  let reports = ref [] in
  for k = 0 to count - 1 do
    progress k;
    let c = case ~seed:(seed + k) in
    match check c with
    | None -> ()
    | Some f ->
      let minimal, mf = shrink c f in
      reports :=
        { wr_seed = c.wc_seed; wr_failure = mf; wr_minimal = minimal }
        :: !reports
  done;
  List.rev !reports
