(** Whole-program fuzzer with shrinking.

    Generates random but well-formed CGC programs exercising everything
    CGCM manages — global arrays, malloc'd heap blocks behind pointer
    globals, jagged double-pointer tables, nested doall loops,
    pointer-taking helpers, escaping allocas, host writes between
    launches — and runs each under every optimization level and both
    interpreter engines with the coherence sanitizer armed. Every
    configuration must agree with the sequential reference bit for bit,
    leak nothing and sanitize clean; a failing program is shrunk to a
    minimal counterexample before being reported.

    Generation is seeded through {!Cgcm_support.Rng}: a reported seed
    reproduces the exact program anywhere. *)

type arr = { a_float : bool; a_size : int (** elements, multiple of 8 *) }

type loop = {
  par : bool;  (** explicit [parallel for]; plain loops rely on auto-DOALL *)
  time : int;  (** enclosing time-loop trips; 1 = none *)
}

(** One program phase. Array references are arbitrary ints resolved
    modulo the array count at render time, so shrinking can drop arrays
    without re-indexing phases. *)
type phase =
  | Fill of { g : int; mul : int; add : int }
  | Map1 of { l : loop; tgt : int; src : int; mul : int; add : int }
  | Stencil of { l : loop; tgt : int; src : int }
  | Grid of { tgt : int; src : int }
  | Update of { l : loop; tgt : int; mul : int; add : int }
  | Heap_update of { l : loop; mul : int }
  | Jagged_update of { l : loop }
  | Helper_call of { tgt : int }
  | Alloca_mix of { l : loop; tgt : int }
  | Poke of { tgt : int; idx : int; v : int }
  | Peek of { tgt : int; idx : int }
  | Sum of { tgt : int }

type prog = {
  seed : int;
  arrays : arr list;  (** never empty *)
  heap : int option;
  jagged : int option;
  phases : phase list;
}

val generate : seed:int -> prog
val render : prog -> string
(** Render to CGC source; the result always parses and runs cleanly
    under the sequential reference (modulo fuzzer-found bugs). A digest
    of every unit is printed at the end so any wrong byte anywhere
    changes the output. *)

type failure = {
  f_config : string;  (** which execution configuration disagreed/failed *)
  f_kind : string;  (** ["output mismatch"], ["leak"] or ["error (exit N)"] *)
  f_detail : string;
}

val check : ?jobs:int -> ?plan_rounds:int -> prog -> failure option
(** Differential check: sequential reference vs unoptimized/optimized x
    closures/tree-walk/parallel (sanitizer armed), the unified oracle
    and the inspector-executor baseline. The parallel engine runs with
    [jobs] domains (default 4 — the auto count would be 1 on a
    single-core host, never sharding) and a floor-level trip threshold
    so small generated loops still shard.

    Additionally compiles the program under [plan_rounds] (default 1;
    0 disables) rounds of fuzzed pass plans derived deterministically
    from the program seed: a schedule-ordered subset of the optimized
    pipeline containing comm-mgmt (run under split memory with the
    sanitizer armed) and an arbitrary permutation of an arbitrary pass
    subset (run in unified memory, where management is unnecessary for
    correctness). [None] = all agree, leak-free, sanitize-clean. *)

val check_source : ?jobs:int -> string -> failure option
(** The fixed-configuration part of the check on raw CGC source (used
    by the regression tests; no pass-plan fuzzing, which needs a seed). *)

val check_plans : rounds:int -> seed:int -> string -> failure option
(** Just the pass-plan part of the check on raw CGC source. *)

val candidates : prog -> prog list
(** Shrink candidates, most aggressive first (drop a phase, drop a
    unit, halve a size, simplify a phase). *)

val shrink :
  ?budget:int ->
  ?budget_ms:float ->
  check:(prog -> failure option) ->
  prog ->
  failure ->
  prog * failure
(** Greedy first-improvement shrinking to a fixpoint, bounded by
    [budget] (default 200) check evaluations and [budget_ms] (default
    60000) wall-clock milliseconds — whichever lapses first ends the
    search with the best (smallest still-failing) program found so far.
    A candidate is kept when it still fails in {e any} way — hopping
    between failure kinds is fine, smaller is what matters. *)

type report = {
  r_seed : int;
  r_index : int;  (** which program of the campaign failed *)
  r_failure : failure;
  r_minimal : prog;
}

val render_report : report -> string
(** Seed, configuration, failure kind/detail and the minimal
    counterexample source, verbatim. *)

val campaign :
  ?progress:(int -> unit) ->
  ?jobs:int ->
  ?plan_rounds:int ->
  ?shrink_budget_ms:float ->
  count:int ->
  seed:int ->
  unit ->
  report list
(** Generate and check [count] programs derived from [seed], shrinking
    every failure. [jobs] and [plan_rounds] are forwarded to {!check};
    [shrink_budget_ms] bounds each failure's shrink by wall clock.
    An empty list is a clean campaign. *)
