(** Wire-protocol fuzzer for the serve framing layer.

    Generates random valid frame streams (seeded JSON values through
    [Wire.encode_frame]), optionally mutates them (bit flips,
    truncation, hostile length headers, injected garbage), and feeds the
    bytes into the incremental {!Cgcm_serve.Wire.decoder} in random
    chunk sizes. The property:

    - an unmutated stream decodes to exactly the original frames, in
      order, with nothing left buffered;
    - a mutated stream may raise [Wire.Protocol_error] — and nothing
      else: no other exception, no crash, no runaway allocation
      (hostile length prefixes are rejected before payload buffering).

    Failing cases are shrunk greedily to minimal byte streams. *)

type case = {
  wc_seed : int;
  wc_frames : Cgcm_serve.Json.t list;  (** the intended frames *)
  wc_bytes : string;  (** the byte stream actually fed *)
  wc_mutated : bool;
      (** false: the stream is pristine and must decode to [wc_frames]
          exactly; true: only [Wire.Protocol_error] may be raised *)
  wc_mutation : string;  (** human label of the applied mutation *)
}

type wfailure = { wf_detail : string }

val case : seed:int -> case
(** One seeded case; roughly half are mutated. *)

val check : case -> wfailure option
(** Feed the bytes in seeded random chunks; [None] = property held. *)

val shrink : case -> wfailure -> case * wfailure
(** Greedy first-improvement shrinking: drop frames (pristine streams)
    or cut bytes (mutated streams) while any failure persists. *)

type wreport = { wr_seed : int; wr_failure : wfailure; wr_minimal : case }

val render_report : wreport -> string

val campaign :
  ?progress:(int -> unit) -> count:int -> seed:int -> unit -> wreport list
(** [count] cases derived from [seed]; empty list = clean. *)
