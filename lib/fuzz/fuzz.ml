(* Whole-program fuzzer with shrinking.

   Generalizes the expression-oracle tests to full CGC programs: random
   but well-formed programs exercising everything CGCM has to manage —
   global arrays, malloc'd heap blocks behind pointer globals, jagged
   double-pointer arrays, nested doall loops, pointer-taking helper
   calls, escaping allocas, host pokes between launches. Each program
   runs under every optimization level and both interpreter engines with
   the coherence sanitizer armed; all configurations must agree with the
   sequential reference bit for bit and leak nothing. A failing program
   is shrunk to a minimal counterexample before being reported.

   Generation is seeded through Cgcm_support.Rng, so a reported seed
   reproduces the exact program on any machine. *)

module Rng = Cgcm_support.Rng
module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Mem_backend = Cgcm_runtime.Mem_backend

(* ------------------------------------------------------------------ *)
(* Program model. Phases reference arrays by an arbitrary int resolved
   modulo the array count at render time, so shrinking can drop arrays
   without re-indexing the phase list. *)

type arr = { a_float : bool; a_size : int (* elements, multiple of 8 *) }

type loop = {
  par : bool;  (* explicit `parallel for`; plain loops rely on auto-DOALL *)
  time : int;  (* enclosing time-loop trip count; 1 = none *)
}

type phase =
  | Fill of { g : int; mul : int; add : int }  (* host: g[i] = i*mul + add *)
  | Map1 of { l : loop; tgt : int; src : int; mul : int; add : int }
  | Stencil of { l : loop; tgt : int; src : int }  (* neighbor reads *)
  | Grid of { tgt : int; src : int }  (* nested parallel-for pair *)
  | Update of { l : loop; tgt : int; mul : int; add : int }
  | Heap_update of { l : loop; mul : int }  (* hp[i] = hp[i]*mul + i%7 *)
  | Jagged_update of { l : loop }  (* rows[r][c] through the double ptr *)
  | Helper_call of { tgt : int }  (* pointer-arg helper on a global *)
  | Alloca_mix of { l : loop; tgt : int }  (* escaping local array *)
  | Poke of { tgt : int; idx : int; v : int }  (* host single-element write *)
  | Peek of { tgt : int; idx : int }  (* print one element *)
  | Sum of { tgt : int }  (* print a weighted checksum *)

type prog = {
  seed : int;
  arrays : arr list;  (* never empty *)
  heap : int option;  (* elements of the malloc'd int block, if any *)
  jagged : int option;  (* row count of the float* table, if any *)
  phases : phase list;
}

(* ------------------------------------------------------------------ *)
(* Generation. *)

let gen_loop rng =
  { par = Rng.bool rng; time = (if Rng.int rng 3 = 0 then Rng.range rng ~lo:2 ~hi:4 else 1) }

let gen_phase rng =
  let g () = Rng.int rng 64 in
  match Rng.int rng 12 with
  | 0 -> Fill { g = g (); mul = Rng.range rng ~lo:1 ~hi:3; add = Rng.range rng ~lo:(-2) ~hi:5 }
  | 1 -> Map1 { l = gen_loop rng; tgt = g (); src = g ();
                mul = Rng.range rng ~lo:1 ~hi:3; add = Rng.range rng ~lo:(-2) ~hi:5 }
  | 2 -> Stencil { l = gen_loop rng; tgt = g (); src = g () }
  | 3 -> Grid { tgt = g (); src = g () }
  | 4 -> Update { l = gen_loop rng; tgt = g (); mul = Rng.range rng ~lo:1 ~hi:3;
                  add = Rng.range rng ~lo:(-2) ~hi:5 }
  | 5 -> Heap_update { l = gen_loop rng; mul = Rng.range rng ~lo:1 ~hi:3 }
  | 6 -> Jagged_update { l = gen_loop rng }
  | 7 -> Helper_call { tgt = g () }
  | 8 -> Alloca_mix { l = gen_loop rng; tgt = g () }
  | 9 -> Poke { tgt = g (); idx = Rng.int rng 64; v = Rng.range rng ~lo:(-9) ~hi:9 }
  | 10 -> Peek { tgt = g (); idx = Rng.int rng 64 }
  | _ -> Sum { tgt = g () }

let generate ~seed : prog =
  let rng = Rng.create seed in
  let arrays =
    List.init (Rng.range rng ~lo:1 ~hi:3) (fun _ ->
        { a_float = Rng.bool rng; a_size = 8 * Rng.range rng ~lo:1 ~hi:6 })
  in
  let heap = if Rng.bool rng then Some (8 * Rng.range rng ~lo:1 ~hi:4) else None in
  let jagged = if Rng.int rng 3 = 0 then Some (Rng.range rng ~lo:2 ~hi:4) else None in
  let phases = List.init (Rng.range rng ~lo:2 ~hi:7) (fun _ -> gen_phase rng) in
  { seed; arrays; heap; jagged; phases }

(* ------------------------------------------------------------------ *)
(* Rendering to CGC source. *)

let nth_arr p i = List.nth p.arrays (i mod List.length p.arrays)
let arr_name p i = Printf.sprintf "g%d" (i mod List.length p.arrays)

(* Resolve [src] to an array of the same element type as [tgt], so the
   generated assignments never mix int and float storage. *)
let same_type_src p ~tgt ~src =
  let want = (nth_arr p tgt).a_float in
  let cands =
    List.filteri (fun _ _ -> true) p.arrays
    |> List.mapi (fun i a -> (i, a))
    |> List.filter (fun (_, a) -> a.a_float = want)
  in
  match cands with
  | [] -> tgt mod List.length p.arrays
  | cands -> fst (List.nth cands (src mod List.length cands))

(* `parallel for` is a trusted assertion of iteration independence; the
   engines only stay differentially comparable on programs where the
   assertion is true (the parallel engine really does shard annotated
   launches across domains). A phase whose resolved source aliases its
   target with a cross-iteration index pattern must therefore drop the
   annotation — re-decided at render time, because shrinking drops
   arrays and re-resolves sources, which can introduce such aliasing. *)
let honest l ~racy = if racy then { l with par = false } else l

let render (p : prog) : string =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let uid = ref 0 in
  let fresh () = incr uid; !uid in
  (* constants typed to the target array *)
  let lit fl n = if fl then Printf.sprintf "%d.0" n else string_of_int n in
  List.iteri
    (fun i a ->
      pf "global %s g%d[%d];\n" (if a.a_float then "float" else "int") i a.a_size)
    p.arrays;
  (match p.heap with Some _ -> pf "global int* hp;\n" | None -> ());
  (match p.jagged with Some r -> pf "global float* rows[%d];\n" r | None -> ());
  pf "\n";
  let uses_helper =
    List.exists (function Helper_call _ | Alloca_mix _ -> true | _ -> false) p.phases
  in
  if uses_helper then begin
    pf "void scale_i(int* q, int n) {\n";
    pf "  for (int i = 0; i < n; i++) { q[i] = q[i] * 3 + 1; }\n}\n";
    pf "void scale_f(float* q, int n) {\n";
    pf "  for (int i = 0; i < n; i++) { q[i] = q[i] * 1.5 + 1.0; }\n}\n\n"
  end;
  pf "int main() {\n";
  (* deterministic host-side setup for every unit *)
  List.iteri
    (fun i a ->
      let u = fresh () in
      pf "  for (int i%d = 0; i%d < %d; i%d++) { g%d[i%d] = %s; }\n" u u
        a.a_size u i u
        (if a.a_float then Printf.sprintf "i%d * 0.5 + %d.0" u i
         else Printf.sprintf "i%d * 2 - %d" u i))
    p.arrays;
  (match p.heap with
  | Some h ->
    let u = fresh () in
    pf "  hp = (int*) malloc(%d * sizeof(int));\n" h;
    pf "  for (int i%d = 0; i%d < %d; i%d++) { hp[i%d] = i%d * 3 - 7; }\n" u u h u u u
  | None -> ());
  (match p.jagged with
  | Some r ->
    let u = fresh () in
    pf "  for (int r%d = 0; r%d < %d; r%d++) {\n" u u r u;
    pf "    rows[r%d] = (float*) malloc(((r%d %% 3) + 1) * 8 * sizeof(float));\n" u u;
    pf "    for (int c%d = 0; c%d < ((r%d %% 3) + 1) * 8; c%d++) {\n" u u u u;
    pf "      rows[r%d][c%d] = r%d * 10.0 + c%d;\n" u u u u;
    pf "    }\n  }\n" | None -> ());
  (* an element loop, optionally under a time loop *)
  let loops l n body =
    let u = fresh () in
    let ind = if l.time > 1 then "    " else "  " in
    if l.time > 1 then pf "  for (int t%d = 0; t%d < %d; t%d++) {\n" u u l.time u;
    pf "%s%sfor (int i%d = 0; i%d < %d; i%d++) {\n" ind
      (if l.par then "parallel " else "") u u n u;
    body ~ind:(ind ^ "  ") ~i:(Printf.sprintf "i%d" u);
    pf "%s}\n" ind;
    if l.time > 1 then pf "  }\n"
  in
  let emit_phase = function
    | Fill { g; mul; add } ->
      let a = nth_arr p g and name = arr_name p g in
      let u = fresh () in
      pf "  for (int i%d = 0; i%d < %d; i%d++) { %s[i%d] = %s; }\n" u u a.a_size
        u name u
        (if a.a_float then Printf.sprintf "i%d * %d.0 + %s" u mul (lit true add)
         else Printf.sprintf "i%d * %d + %d" u mul add)
    | Map1 { l; tgt; src; mul; add } ->
      let a = nth_arr p tgt and name = arr_name p tgt in
      let s = same_type_src p ~tgt ~src in
      let sname = Printf.sprintf "g%d" s in
      let ssize = (List.nth p.arrays s).a_size in
      (* i %% ssize re-reads earlier-written elements when the source is
         the (shorter) target itself *)
      let l = honest l ~racy:(s = tgt mod List.length p.arrays && ssize < a.a_size) in
      loops l a.a_size (fun ~ind ~i ->
          pf "%s%s[%s] = %s[%s %% %d] * %s + %s;\n" ind name i sname i ssize
            (lit a.a_float mul) (lit a.a_float add))
    | Stencil { l; tgt; src } ->
      let a = nth_arr p tgt and name = arr_name p tgt in
      let s = same_type_src p ~tgt ~src in
      let sname = Printf.sprintf "g%d" s in
      let ssize = (List.nth p.arrays s).a_size in
      (* the (i+1) neighbour read always crosses iterations of the same
         array *)
      let l = honest l ~racy:(s = tgt mod List.length p.arrays) in
      loops l a.a_size (fun ~ind ~i ->
          pf "%s%s[%s] = %s[%s %% %d] + %s[(%s + 1) %% %d];\n" ind name i sname
            i ssize sname i ssize)
    | Grid { tgt; src } ->
      let a = nth_arr p tgt and name = arr_name p tgt in
      let s = same_type_src p ~tgt ~src in
      let sname = Printf.sprintf "g%d" s in
      let ssize = (List.nth p.arrays s).a_size in
      let rows = a.a_size / 8 in
      let u = fresh () in
      (* same aliasing hazard as Map1: drop to plain loops (auto-DOALL
         must then prove independence or keep them sequential) *)
      let par =
        if s = tgt mod List.length p.arrays && ssize < a.a_size then ""
        else "parallel "
      in
      pf "  %sfor (int r%d = 0; r%d < %d; r%d++) {\n" par u u rows u;
      pf "    %sfor (int c%d = 0; c%d < 8; c%d++) {\n" par u u u;
      pf "      %s[r%d * 8 + c%d] = %s[(r%d * 8 + c%d) %% %d] + %s;\n" name u u
        sname u u ssize
        (if a.a_float then Printf.sprintf "r%d * 1.0 + c%d" u u
         else Printf.sprintf "r%d + c%d" u u);
      pf "    }\n  }\n"
    | Update { l; tgt; mul; add } ->
      let a = nth_arr p tgt and name = arr_name p tgt in
      loops l a.a_size (fun ~ind ~i ->
          pf "%s%s[%s] = %s[%s] * %s + %s;\n" ind name i name i
            (lit a.a_float mul) (lit a.a_float add))
    | Heap_update { l; mul } -> (
      match p.heap with
      | None -> ()
      | Some h ->
        loops l h (fun ~ind ~i ->
            pf "%shp[%s] = hp[%s] * %d + %s %% 7;\n" ind i i mul i))
    | Jagged_update { l } -> (
      match p.jagged with
      | None -> ()
      | Some r ->
        let u = fresh () in
        let ind = if l.time > 1 then "    " else "  " in
        if l.time > 1 then
          pf "  for (int t%d = 0; t%d < %d; t%d++) {\n" u u l.time u;
        pf "%s%sfor (int r%d = 0; r%d < %d; r%d++) {\n" ind
          (if l.par then "parallel " else "") u u r u;
        pf "%s  for (int c%d = 0; c%d < ((r%d %% 3) + 1) * 8; c%d++) {\n" ind u
          u u u;
        pf "%s    rows[r%d][c%d] = rows[r%d][c%d] * 1.25 + 0.5;\n" ind u u u u;
        pf "%s  }\n%s}\n" ind ind;
        if l.time > 1 then pf "  }\n")
    | Helper_call { tgt } ->
      let a = nth_arr p tgt and name = arr_name p tgt in
      pf "  %s(%s, %d);\n" (if a.a_float then "scale_f" else "scale_i") name
        a.a_size
    | Alloca_mix { l; tgt } ->
      let a = nth_arr p tgt and name = arr_name p tgt in
      let u = fresh () in
      if a.a_float then begin
        pf "  float tmp%d[8];\n" u;
        pf "  for (int j%d = 0; j%d < 8; j%d++) { tmp%d[j%d] = j%d * 2.0 - 3.0; }\n"
          u u u u u u;
        pf "  scale_f(tmp%d, 8);\n" u
      end
      else begin
        pf "  int tmp%d[8];\n" u;
        pf "  for (int j%d = 0; j%d < 8; j%d++) { tmp%d[j%d] = j%d * 2 - 3; }\n" u
          u u u u u;
        pf "  scale_i(tmp%d, 8);\n" u
      end;
      loops l a.a_size (fun ~ind ~i ->
          pf "%s%s[%s] = %s[%s] + tmp%d[%s %% 8];\n" ind name i name i u i)
    | Poke { tgt; idx; v } ->
      let a = nth_arr p tgt and name = arr_name p tgt in
      pf "  %s[%d] = %s;\n" name (idx mod a.a_size) (lit a.a_float v)
    | Peek { tgt; idx } ->
      let a = nth_arr p tgt and name = arr_name p tgt in
      pf "  print(%s[%d]);\n" name (idx mod a.a_size)
    | Sum { tgt } ->
      let a = nth_arr p tgt and name = arr_name p tgt in
      let u = fresh () in
      if a.a_float then begin
        pf "  float s%d = 0.0;\n" u;
        pf "  for (int i%d = 0; i%d < %d; i%d++) { s%d = s%d + %s[i%d]; }\n" u u
          a.a_size u u u name u
      end
      else begin
        pf "  int s%d = 0;\n" u;
        pf "  for (int i%d = 0; i%d < %d; i%d++) { s%d = s%d + %s[i%d] * (i%d %% 7 + 1); }\n"
          u u a.a_size u u u name u u
      end;
      pf "  print(s%d);\n" u
  in
  List.iter emit_phase p.phases;
  (* final digest over every unit: any wrong byte anywhere shows up *)
  let u = fresh () in
  pf "  int di%d = 0;\n  float df%d = 0.0;\n" u u;
  List.iteri
    (fun i a ->
      let v = fresh () in
      if a.a_float then
        pf "  for (int i%d = 0; i%d < %d; i%d++) { df%d = df%d + g%d[i%d] * (i%d %% 5 + 1); }\n"
          v v a.a_size v u u i v v
      else
        pf "  for (int i%d = 0; i%d < %d; i%d++) { di%d = di%d + g%d[i%d] * (i%d %% 7 + 1); }\n"
          v v a.a_size v u u i v v)
    p.arrays;
  (match p.heap with
  | Some h ->
    let v = fresh () in
    pf "  for (int i%d = 0; i%d < %d; i%d++) { di%d = di%d + hp[i%d] * (i%d %% 3 + 1); }\n"
      v v h v u u v v
  | None -> ());
  (match p.jagged with
  | Some r ->
    let v = fresh () in
    pf "  for (int r%d = 0; r%d < %d; r%d++) {\n" v v r v;
    pf "    for (int c%d = 0; c%d < ((r%d %% 3) + 1) * 8; c%d++) {\n" v v v v;
    pf "      df%d = df%d + rows[r%d][c%d];\n    }\n  }\n" u u v v
  | None -> ());
  pf "  print(di%d);\n  print(df%d);\n  return 0;\n}\n" u u;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Differential check under the sanitizer. *)

type failure = {
  f_config : string;  (* which execution configuration disagreed/failed *)
  f_kind : string;  (* "output mismatch" | "leak" | "error" *)
  f_detail : string;
}

(* The paged-backend rows run the same split-memory modules under
   touch-driven page migration; the sanitizer is inert there (one memory,
   nothing to keep coherent), so their oracle is pure bit-identity plus
   the always-clean paged leak report. *)
let configs =
  [
    ("unopt/closures", Pipeline.Cgcm_unoptimized, Interp.Closures,
     Mem_backend.Explicit);
    ("unopt/tree-walk", Pipeline.Cgcm_unoptimized, Interp.Tree_walk,
     Mem_backend.Explicit);
    ("opt/closures", Pipeline.Cgcm_optimized, Interp.Closures,
     Mem_backend.Explicit);
    ("opt/tree-walk", Pipeline.Cgcm_optimized, Interp.Tree_walk,
     Mem_backend.Explicit);
    ("opt/parallel", Pipeline.Cgcm_optimized, Interp.Parallel,
     Mem_backend.Explicit);
    ("unified-oracle", Pipeline.Unified_oracle Pipeline.Optimized,
     Interp.Closures, Mem_backend.Explicit);
    ("inspector-executor", Pipeline.Inspector_executor_exec, Interp.Closures,
     Mem_backend.Explicit);
    ("unopt/paged", Pipeline.Cgcm_unoptimized, Interp.Closures,
     Mem_backend.Paged);
    ("opt/paged", Pipeline.Cgcm_optimized, Interp.Closures, Mem_backend.Paged);
    ("opt/paged/tree-walk", Pipeline.Cgcm_optimized, Interp.Tree_walk,
     Mem_backend.Paged);
  ]

let check_source ?(jobs = 4) (src : string) : failure option =
  let run_one name f =
    match f () with
    | r -> Ok (r : Interp.result)
    | exception e -> (
      match Cgcm_core.Diagnostics.classify e with
      | Some (code, msg) ->
        Error { f_config = name; f_kind = Printf.sprintf "error (exit %d)" code;
                f_detail = msg }
      | None -> raise e)
  in
  match run_one "sequential" (fun () -> snd (Pipeline.run Pipeline.Sequential src)) with
  | Error f -> Some f
  | Ok reference ->
    let check_one (name, exec, engine, backend) =
      (* The parallel engine runs with a forced job count (auto would be 1
         on a single-core host, never sharding) and a floor-level trip
         threshold, so the fuzzer exercises real cross-domain kernel
         execution under the sanitizer even on small generated loops. *)
      let jobs, cost =
        match engine with
        | Interp.Parallel ->
          ( jobs,
            { Cgcm_gpusim.Cost_model.default with
              Cgcm_gpusim.Cost_model.par_min_trip = 2 } )
        | _ -> (0, Cgcm_gpusim.Cost_model.default)
      in
      match
        run_one name (fun () ->
            snd (Pipeline.run ~engine ~cost ~jobs ~sanitize:true ~backend exec src))
      with
      | Error f -> Some f
      | Ok r ->
        if r.Interp.output <> reference.Interp.output
           || r.Interp.exit_code <> reference.Interp.exit_code
        then
          Some
            { f_config = name; f_kind = "output mismatch";
              f_detail =
                Printf.sprintf "sequential printed:\n%sbut %s printed:\n%s"
                  reference.Interp.output name r.Interp.output }
        else
          let leaks = r.Interp.leaks in
          if
            leaks.Cgcm_runtime.Runtime.resident_nonglobal > 0
            || leaks.Cgcm_runtime.Runtime.leaked_dev_blocks > 0
          then
            Some
              { f_config = name; f_kind = "leak";
                f_detail =
                  Printf.sprintf "%d resident units, %d device blocks leaked"
                    leaks.Cgcm_runtime.Runtime.resident_nonglobal
                    leaks.Cgcm_runtime.Runtime.leaked_dev_blocks }
          else None
    in
    List.find_map check_one configs

(* ------------------------------------------------------------------ *)
(* Pass-plan configurations: the fixed configs above always run the
   stock level pipelines; these additionally compile under fuzzed pass
   plans. Two families:

   - a schedule-ordered *subset* of the optimized pipeline that keeps
     comm-mgmt (management present exactly once — the pass is not
     idempotent), run under split memory with the sanitizer armed;
   - an arbitrary *permutation* of an arbitrary subset, run in unified
     memory where management is not needed for correctness, so any
     legal-IR ordering must preserve program output.

   Plans derive deterministically from the program seed, so shrinking
   re-checks a candidate under the exact same plans. *)

module Pass = Cgcm_transform.Pass

let split_subset_plan rng : Pass.plan =
  let maybe_fix item =
    if Rng.bool rng then [ Pass.fixpoint [ item ] ] else [ item ]
  in
  List.concat
    [
      (if Rng.bool rng then [ Pass.Atom Pass.simplify ] else []);
      [ Pass.Atom Pass.comm_mgmt ];
      (if Rng.bool rng then [ Pass.Atom Pass.glue_kernels ] else []);
      (if Rng.bool rng then maybe_fix (Pass.Atom Pass.alloca_promotion)
       else []);
      (if Rng.bool rng then maybe_fix (Pass.Atom Pass.map_promotion) else []);
    ]

let unified_perm_plan rng : Pass.plan =
  let subset = List.filter (fun _ -> Rng.bool rng) Pass.all in
  let arr = Array.of_list subset in
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr |> List.map (fun p -> Pass.Atom p)

let plan_configs ~rounds ~seed =
  let rng = Rng.create (seed lxor 0x9E3779B9) in
  List.concat
    (List.init rounds (fun k ->
         [
           (Printf.sprintf "plan-split-%d" k, `Split, split_subset_plan rng);
           (Printf.sprintf "plan-unified-%d" k, `Unified, unified_perm_plan rng);
         ]))

let check_plans ~rounds ~seed (src : string) : failure option =
  if rounds <= 0 then None
  else
    let run_one name f =
      match f () with
      | r -> Ok (r : Interp.result)
      | exception e -> (
        match Cgcm_core.Diagnostics.classify e with
        | Some (code, msg) ->
          Error
            { f_config = name; f_kind = Printf.sprintf "error (exit %d)" code;
              f_detail = msg }
        | None -> raise e)
    in
    match
      run_one "sequential" (fun () -> snd (Pipeline.run Pipeline.Sequential src))
    with
    | Error f -> Some f
    | Ok reference ->
      let check_one (name, mem, plan) =
        let label =
          Printf.sprintf "%s [%s]" name (Pass.plan_to_string plan)
        in
        match
          run_one label (fun () ->
              let c = Pipeline.compile ~plan src in
              let mode =
                match mem with
                | `Split -> Interp.Split
                | `Unified -> Interp.Unified
              in
              Interp.run
                ~config:
                  { Interp.default_config with
                    Interp.mode;
                    sanitize = (mem = `Split);
                  }
                c.Pipeline.modul)
        with
        | Error f -> Some f
        | Ok r ->
          if
            r.Interp.output <> reference.Interp.output
            || r.Interp.exit_code <> reference.Interp.exit_code
          then
            Some
              { f_config = label; f_kind = "output mismatch";
                f_detail =
                  Printf.sprintf "sequential printed:\n%sbut %s printed:\n%s"
                    reference.Interp.output label r.Interp.output }
          else
            let leaks = r.Interp.leaks in
            if
              mem = `Split
              && (leaks.Cgcm_runtime.Runtime.resident_nonglobal > 0
                 || leaks.Cgcm_runtime.Runtime.leaked_dev_blocks > 0)
            then
              Some
                { f_config = label; f_kind = "leak";
                  f_detail =
                    Printf.sprintf "%d resident units, %d device blocks leaked"
                      leaks.Cgcm_runtime.Runtime.resident_nonglobal
                      leaks.Cgcm_runtime.Runtime.leaked_dev_blocks }
            else None
      in
      List.find_map check_one (plan_configs ~rounds ~seed)

let check ?jobs ?(plan_rounds = 1) (p : prog) : failure option =
  let src = render p in
  match check_source ?jobs src with
  | Some f -> Some f
  | None -> check_plans ~rounds:plan_rounds ~seed:p.seed src

(* ------------------------------------------------------------------ *)
(* Shrinking: greedy first-improvement to a fixpoint, bounded. A
   candidate is kept when it still fails in any way — hopping between
   failure kinds is fine, smaller is what matters. *)

let simpler_loop l =
  (if l.time > 1 then [ { l with time = 1 } ] else [])
  @ if l.par then [ { l with par = false } ] else []

let simpler_phase = function
  | Fill f ->
    (if f.mul <> 1 then [ Fill { f with mul = 1 } ] else [])
    @ if f.add <> 0 then [ Fill { f with add = 0 } ] else []
  | Map1 m ->
    List.map (fun l -> Map1 { m with l }) (simpler_loop m.l)
    @ (if m.mul <> 1 then [ Map1 { m with mul = 1 } ] else [])
    @ if m.add <> 0 then [ Map1 { m with add = 0 } ] else []
  | Stencil s -> List.map (fun l -> Stencil { s with l }) (simpler_loop s.l)
  | Grid _ -> []
  | Update u ->
    List.map (fun l -> Update { u with l }) (simpler_loop u.l)
    @ (if u.mul <> 1 then [ Update { u with mul = 1 } ] else [])
    @ if u.add <> 0 then [ Update { u with add = 0 } ] else []
  | Heap_update h -> List.map (fun l -> Heap_update { h with l }) (simpler_loop h.l)
  | Jagged_update j -> List.map (fun l -> Jagged_update { l }) (simpler_loop j.l)
  | Helper_call _ -> []
  | Alloca_mix a -> List.map (fun l -> Alloca_mix { a with l }) (simpler_loop a.l)
  | Poke p -> if p.v <> 0 then [ Poke { p with v = 0 } ] else []
  | Peek _ -> []
  | Sum _ -> []

let rec drop_nth n = function
  | [] -> []
  | _ :: tl when n = 0 -> tl
  | hd :: tl -> hd :: drop_nth (n - 1) tl

let rec set_nth n v = function
  | [] -> []
  | _ :: tl when n = 0 -> v :: tl
  | hd :: tl -> hd :: set_nth (n - 1) v tl

let candidates (p : prog) : prog list =
  let drop_phases =
    List.mapi (fun i _ -> { p with phases = drop_nth i p.phases }) p.phases
  in
  let drop_units =
    (match p.heap with Some _ -> [ { p with heap = None } ] | None -> [])
    @ (match p.jagged with Some _ -> [ { p with jagged = None } ] | None -> [])
    @
    if List.length p.arrays > 1 then
      List.mapi (fun i _ -> { p with arrays = drop_nth i p.arrays }) p.arrays
    else []
  in
  let halve_sizes =
    List.concat
      (List.mapi
         (fun i a ->
           if a.a_size > 8 then
             [ { p with
                 arrays = set_nth i { a with a_size = max 8 (a.a_size / 2) } p.arrays
               } ]
           else [])
         p.arrays)
    @
    match p.heap with
    | Some h when h > 8 -> [ { p with heap = Some (max 8 (h / 2)) } ]
    | _ -> []
  in
  let simplify_phases =
    List.concat
      (List.mapi
         (fun i ph ->
           List.map (fun ph' -> { p with phases = set_nth i ph' p.phases })
             (simpler_phase ph))
         p.phases)
  in
  drop_phases @ drop_units @ halve_sizes @ simplify_phases

let shrink ?(budget = 200) ?(budget_ms = 60_000.0)
    ~(check : prog -> failure option) (p : prog) (f : failure) :
    prog * failure =
  (* Two bounds: a count of check evaluations, and a wall-clock budget.
     The count bounds work on fast programs; the wall clock matters when
     a counterexample's checks are individually slow (every candidate
     re-runs the whole differential harness), where 200 evaluations
     could take minutes. Both are best-so-far cutoffs: the smallest
     failing program found before the budget lapsed is returned. *)
  let deadline = Unix.gettimeofday () +. (budget_ms /. 1000.0) in
  let cur = ref p and fail = ref f and fuel = ref budget in
  let exhausted () = !fuel <= 0 || Unix.gettimeofday () >= deadline in
  let improved = ref true in
  while !improved && not (exhausted ()) do
    improved := false;
    let rec try_cands = function
      | [] -> ()
      | c :: rest ->
        if exhausted () then ()
        else begin
          decr fuel;
          match check c with
          | Some f' ->
            cur := c;
            fail := f';
            improved := true
          | None -> try_cands rest
        end
    in
    try_cands (candidates !cur)
  done;
  (!cur, !fail)

(* ------------------------------------------------------------------ *)
(* Campaign driver and reporting. *)

type report = {
  r_seed : int;  (* campaign seed *)
  r_index : int;  (* which program of the campaign failed *)
  r_failure : failure;
  r_minimal : prog;  (* the shrunk counterexample *)
}

let render_report (r : report) : string =
  Printf.sprintf
    "fuzz failure: seed %d program %d, config %s: %s\n%s\n--- minimal counterexample ---\n%s"
    r.r_seed r.r_index r.r_failure.f_config r.r_failure.f_kind
    r.r_failure.f_detail
    (render r.r_minimal)

let campaign ?(progress = fun _ -> ()) ?jobs ?plan_rounds ?shrink_budget_ms
    ~count ~seed () : report list =
  let check = check ?jobs ?plan_rounds in
  let failures = ref [] in
  for k = 0 to count - 1 do
    progress k;
    let p = generate ~seed:(Rng.int (Rng.stream ~seed k) 0x3FFFFFFF) in
    match check p with
    | None -> ()
    | Some f ->
      let minimal, f = shrink ?budget_ms:shrink_budget_ms ~check p f in
      failures := { r_seed = seed; r_index = k; r_failure = f; r_minimal = minimal } :: !failures
  done;
  List.rev !failures
