(* Drivers that regenerate the paper's tables and figures (the
   per-experiment index lives in DESIGN.md). *)

module Interp = Cgcm_interp.Interp
module Registry = Cgcm_progs.Registry
module Doall = Cgcm_frontend.Doall
module Table = Cgcm_report.Table
module Chart = Cgcm_report.Chart
module Stats = Cgcm_support.Stats
module Trace = Cgcm_gpusim.Trace

type prog_result = {
  prog : Registry.program;
  seq : Interp.result;
  ie : Interp.result;
  unopt : Interp.result;
  opt : Interp.result;
  kernels : int;  (* kernels created by the DOALL parallelizer *)
  baseline_applicable : int;  (* named-regions / inspector-executor *)
  outputs_match : bool;
}

let speedup ~(seq : Interp.result) (r : Interp.result) =
  seq.Interp.wall /. r.Interp.wall

let run_program ?(cost = Cgcm_gpusim.Cost_model.default) ?engine ?dirty_spans
    ?jobs ?backend ?page_bytes
    (prog : Registry.program) : prog_result =
  let src = prog.Registry.source in
  let run exec =
    Pipeline.run ~cost ?engine ?dirty_spans ?jobs ?backend ?page_bytes exec src
  in
  let cseq, seq = run Pipeline.Sequential in
  let _, ie = run Pipeline.Inspector_executor_exec in
  let _, unopt = run Pipeline.Cgcm_unoptimized in
  let copt, opt = run Pipeline.Cgcm_optimized in
  ignore cseq;
  let kernels = List.length copt.Pipeline.doall.Doall.kernels in
  let baseline_applicable =
    List.length
      (List.filter
         (fun k -> k.Doall.k_named_applicable)
         copt.Pipeline.doall.Doall.kernels)
  in
  let outputs_match =
    ie.Interp.output = seq.Interp.output
    && unopt.Interp.output = seq.Interp.output
    && opt.Interp.output = seq.Interp.output
  in
  { prog; seq; ie; unopt; opt; kernels; baseline_applicable; outputs_match }

let run_suite ?cost ?engine ?dirty_spans ?jobs ?backend ?page_bytes
    ?(progress = fun _ -> ()) () : prog_result list =
  List.map
    (fun p ->
      progress p.Registry.name;
      run_program ?cost ?engine ?dirty_spans ?jobs ?backend ?page_bytes p)
    Registry.all

(* ------------------------------------------------------------------ *)
(* Figure 4: whole-program speedups                                     *)

let geomeans results =
  let col f = List.map (fun r -> f r) results in
  let sp sel = List.map2 (fun s r -> speedup ~seq:s r) (col (fun r -> r.seq)) (col sel) in
  let ie = sp (fun r -> r.ie) in
  let unopt = sp (fun r -> r.unopt) in
  let opt = sp (fun r -> r.opt) in
  let clamped xs = List.map (fun x -> max 1.0 x) xs in
  ( (Stats.geomean ie, Stats.geomean unopt, Stats.geomean opt),
    ( Stats.geomean (clamped ie),
      Stats.geomean (clamped unopt),
      Stats.geomean (clamped opt) ) )

let figure4 results : string =
  let rows =
    List.map
      (fun r ->
        ( r.prog.Registry.name,
          [
            ("inspector-executor", speedup ~seq:r.seq r.ie);
            ("cgcm unoptimized", speedup ~seq:r.seq r.unopt);
            ("cgcm optimized", speedup ~seq:r.seq r.opt);
          ] ))
      results
  in
  let chart = Chart.speedups rows in
  let (g_ie, g_un, g_op), (c_ie, c_un, c_op) = geomeans results in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 4: whole-program speedup over best sequential CPU-only execution\n\n";
  Buffer.add_string buf chart;
  Buffer.add_string buf
    (Printf.sprintf
       "geomean (all 24): inspector-executor %.2fx | unoptimized CGCM %.2fx | optimized CGCM %.2fx\n"
       g_ie g_un g_op);
  Buffer.add_string buf
    (Printf.sprintf
       "geomean (clamped at 1.0x): %.2fx | %.2fx | %.2fx\n" c_ie c_un c_op);
  Buffer.add_string buf
    "paper            : inspector-executor 0.92x | unoptimized CGCM 0.71x | optimized CGCM 5.36x\n";
  Buffer.add_string buf
    "paper (clamped)  : 1.53x | 2.81x | 7.18x\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table 3: program characteristics                                     *)

let percent part total = Stats.percent part total

let limiting (r : Interp.result) : Registry.limiting =
  let gpu = percent r.Interp.gpu r.Interp.wall in
  let comm = percent r.Interp.comm r.Interp.wall in
  if gpu >= 50.0 then Registry.Gpu
  else if comm >= 50.0 then Registry.Comm
  else Registry.Other

let table3 results : string =
  let header =
    [
      "Program"; "Suite"; "Limit"; "Limit(paper)";
      "GPU%un"; "GPU%opt"; "Comm%un"; "Comm%opt";
      "Kernels"; "K(paper)"; "CGCM"; "IE/NR";
    ]
  in
  let aligns =
    [
      Table.Left; Table.Left; Table.Left; Table.Left;
      Table.Right; Table.Right; Table.Right; Table.Right;
      Table.Right; Table.Right; Table.Right; Table.Right;
    ]
  in
  let rows =
    List.map
      (fun r ->
        let pc v = Printf.sprintf "%.1f" v in
        [
          r.prog.Registry.name;
          r.prog.Registry.suite;
          Registry.limiting_to_string (limiting r.opt);
          Registry.limiting_to_string r.prog.Registry.paper_limiting;
          pc (percent r.unopt.Interp.gpu r.unopt.Interp.wall);
          pc (percent r.opt.Interp.gpu r.opt.Interp.wall);
          pc (percent r.unopt.Interp.comm r.unopt.Interp.wall);
          pc (percent r.opt.Interp.comm r.opt.Interp.wall);
          string_of_int r.kernels;
          string_of_int r.prog.Registry.paper_kernels;
          string_of_int r.kernels;  (* CGCM manages every DOALL kernel *)
          string_of_int r.baseline_applicable;
        ])
      results
  in
  "Table 3: program characteristics (this reproduction vs paper)\n\n"
  ^ Table.render ~aligns ~header rows

(* ------------------------------------------------------------------ *)
(* Applicability claim of Section 6                                     *)

let applicability results : string =
  let total = List.fold_left (fun a r -> a + r.kernels) 0 results in
  let baseline =
    List.fold_left (fun a r -> a + r.baseline_applicable) 0 results
  in
  Printf.sprintf
    "Applicability: the DOALL parallelizer created %d kernels; CGCM manages %d \
     (all of them); named-regions / inspector-executor apply to %d.\n\
     Paper: 101 kernels, CGCM 101, named-regions / inspector-executor 80.\n"
    total total baseline

(* ------------------------------------------------------------------ *)
(* Time breakdown (extension): absolute cycle decomposition of the
   optimized runs — where Table 3's percentages come from. *)

let breakdown_table results : string =
  let f0 v = Printf.sprintf "%.0f" v in
  let rows =
    List.map
      (fun r ->
        let o = r.opt in
        [
          r.prog.Registry.name;
          f0 o.Interp.wall;
          f0 o.Interp.cpu_compute;
          f0 o.Interp.gpu;
          f0 o.Interp.comm;
          f0 o.Interp.sync;
          string_of_int o.Interp.dev_stats.Cgcm_gpusim.Device.launches;
        ])
      results
  in
  "Time breakdown of the optimized runs (cycles; sync = CPU stalled on
   the device; wall < cpu+gpu+comm where launches overlap CPU work)

"
  ^ Table.render
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      ~header:[ "Program"; "wall"; "cpu"; "gpu"; "comm"; "sync"; "launches" ]
      rows

(* ------------------------------------------------------------------ *)
(* Figure 1: the taxonomy of related work — parallelization and
   communication as independent axes. Our own configurations are placed
   where they demonstrably sit: the manual-driver examples do both by
   hand, CGCM automates communication for either parallelization mode. *)

let figure1 () : string =
  String.concat "
"
    [
      "Figure 1: taxonomy — parallelization vs communication management";
      "";
      "                        | manual communication | automatic communication";
      "  ----------------------+----------------------+------------------------";
      "  manual parallelization| CUDA / OpenCL        | CGCM ('parallel' loops,";
      "                        | (examples/strings,   |  examples/manual_vs_auto)";
      "                        |  Listing 1 path)     |";
      "  ----------------------+----------------------+------------------------";
      "  automatic             | C-to-CUDA, JCUDA,    | CGCM + simple DOALL";
      "  parallelization       | PGI (annotations)    |  (this system: Figure 4)";
      "";
      "No prior work fully automates communication; the semi-automatic";
      "systems (JCUDA, named regions, affine) require annotations and none";
      "optimizes the pattern to acyclic (Table 1).";
      "";
    ]

(* Figure 3: high-level overview of CGCM's transformation and run-time
   system, as a pipeline diagram annotated with the module that implements
   each box. *)

let figure3 () : string =
  String.concat "
"
    [
      "Figure 3: CGCM overview (module per stage)";
      "";
      "  CGC source";
      "      |  parse + semantic checks          lib/frontend/{lexer,parser}";
      "      v";
      "  AST --- simple DOALL parallelizer ----- lib/frontend/doall (affine test,";
      "      |    (or 'parallel' annotations)      2-D grid flattening)";
      "      v";
      "  IR (word-typed; pointer types erased)   lib/frontend/lower, lib/ir";
      "      |  use-based type inference          lib/analysis/typeinfer";
      "      |  communication management          lib/transform/comm_mgmt";
      "      |    map / unmap / release around each launch";
      "      v";
      "  IR + run-time calls (cyclic)";
      "      |  glue kernels                      lib/transform/glue_kernels";
      "      |  alloca promotion                  lib/transform/alloca_promotion";
      "      |  map promotion (to convergence)    lib/transform/map_promotion";
      "      v";
      "  IR + hoisted run-time calls (acyclic)";
      "      |  execute                           lib/interp";
      "      v";
      "  CGCM run-time library                   lib/runtime";
      "      .  allocation-unit map (greatestLTE) lib/support/avl_map";
      "      .  reference counts + epochs";
      "      |  driver calls + cost model         lib/gpusim";
      "      v";
      "  simulated GPU (separate memory, async launch queue)";
      "";
    ]

(* ------------------------------------------------------------------ *)
(* Communication volume (extension): Section 6.3 notes the idealized
   inspector-executor transfers dramatically fewer bytes yet still loses —
   sequential inspection and cyclic synchronisation dominate. This table
   makes that trade explicit. *)

let volume_table results : string =
  let bytes (r : Interp.result) =
    ( r.Interp.dev_stats.Cgcm_gpusim.Device.htod_bytes,
      r.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_bytes,
      r.Interp.dev_stats.Cgcm_gpusim.Device.htod_count
      + r.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count )
  in
  let fmt_kb n =
    if n < 4096 then Printf.sprintf "%dB" n
    else Printf.sprintf "%dKiB" (n / 1024)
  in
  let rows =
    List.map
      (fun r ->
        let ih, id, ix = bytes r.ie in
        let uh, ud, ux = bytes r.unopt in
        let oh, od, ox = bytes r.opt in
        [
          r.prog.Registry.name;
          fmt_kb (ih + id); string_of_int ix;
          fmt_kb (uh + ud); string_of_int ux;
          fmt_kb (oh + od); string_of_int ox;
        ])
      results
  in
  "Communication volume: bytes moved and DMA count per configuration
   (inspector-executor moves the fewest bytes but pays a synchronous round
   trip per launch; optimized CGCM moves whole allocation units, once)

"
  ^ Table.render
      ~aligns:
        [
          Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right;
        ]
      ~header:
        [
          "Program"; "IE bytes"; "DMAs"; "unopt bytes"; "DMAs"; "opt bytes";
          "DMAs";
        ]
      rows

(* ------------------------------------------------------------------ *)
(* Table 1: applicability feature matrix                                *)

(* Each feature is demonstrated by a microbenchmark that CGCM must run
   correctly on split memories (checked differentially against the
   sequential run). *)
let feature_programs =
  [
    ( "aliasing pointers",
      {|global float data[64];
int main() {
  float* p = (float*) data;
  float* q = p + 16;  // aliases the same allocation unit
  for (int i = 0; i < 64; i++) { data[i] = i * 0.5; }
  parallel for (int i = 0; i < 16; i++) { q[i] = q[i] * 2.0; }
  float s = 0.0;
  for (int i = 0; i < 64; i++) { s = s + data[i]; }
  print(s); return 0;
}
|} );
    ( "irregular accesses",
      {|global int idx[32];
global float a[32];
global float b[32];
int main() {
  for (int i = 0; i < 32; i++) { idx[i] = (i * 7) % 32; a[i] = i * 1.5; }
  parallel for (int i = 0; i < 32; i++) { b[i] = a[idx[i]]; }
  float s = 0.0;
  for (int i = 0; i < 32; i++) { s = s + b[i]; }
  print(s); return 0;
}
|} );
    ( "weak type system",
      {|global float data[32];
int main() {
  for (int i = 0; i < 32; i++) { data[i] = i + 1.0; }
  int disguised = (int) (float*) data;  // pointer laundered through an int
  float* p = (float*) disguised;
  parallel for (int i = 0; i < 32; i++) { p[i] = p[i] * 3.0; }
  float s = 0.0;
  for (int i = 0; i < 32; i++) { s = s + data[i]; }
  print(s); return 0;
}
|} );
    ( "pointer arithmetic",
      {|global float data[64];
int main() {
  for (int i = 0; i < 64; i++) { data[i] = i * 0.25; }
  float* mid = (float*) data;
  mid = mid + 30;  // interior pointer into the middle of the unit
  parallel for (int i = 0; i < 8; i++) { mid[i] = mid[i] + 100.0; }
  float s = 0.0;
  for (int i = 0; i < 64; i++) { s = s + data[i]; }
  print(s); return 0;
}
|} );
    ( "array of structures",
      {|struct cell { float v; int tag; };
global struct cell cells[48];
int main() {
  for (int i = 0; i < 48; i++) { cells[i].v = i * 0.25; cells[i].tag = i % 5; }
  parallel for (int i = 0; i < 48; i++) {
    cells[i].v = cells[i].v * 2.0 + cells[i].tag;
  }
  float s = 0.0;
  for (int i = 0; i < 48; i++) { s = s + cells[i].v; }
  print(s); return 0;
}
|} );
    ( "two levels of indirection",
      {|global float* rows[4];
int main() {
  for (int r = 0; r < 4; r++) {
    rows[r] = (float*) malloc(16 * sizeof(float));
    for (int c = 0; c < 16; c++) { rows[r][c] = r * 16 + c * 1.0; }
  }
  parallel for (int r = 0; r < 4; r++) {
    for (int c = 0; c < 16; c++) { rows[r][c] = rows[r][c] * 2.0; }
  }
  float s = 0.0;
  for (int r = 0; r < 4; r++) {
    for (int c = 0; c < 16; c++) { s = s + rows[r][c]; }
  }
  print(s); return 0;
}
|} );
  ]

let table1 () : string =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Table 1: comparison between communication systems\n\n";
  (* the static rows from the paper *)
  Buffer.add_string buf
    (Table.render
       ~header:
         [
           "Framework"; "Opti."; "Annot."; "Aliasing"; "Irregular"; "WeakTypes";
           "PtrArith"; "MaxInd"; "Acyclic";
         ]
       [
         [ "JCUDA"; "no"; "yes"; "y"; "y"; "n"; "n"; "8"; "no" ];
         [ "Named Regions"; "no"; "yes"; "y"; "y"; "n"; "y"; "1"; "no" ];
         [ "Affine"; "no"; "yes"; "y"; "n"; "n"; "y"; "1"; "with annot." ];
         [ "Inspector-Executor"; "no"; "yes"; "n"; "n"; "y"; "y"; "1"; "no" ];
         [ "CGCM (paper)"; "yes"; "no"; "y"; "y"; "y"; "y"; "2"; "after opt." ];
       ]);
  Buffer.add_string buf
    "\nCGCM feature microbenchmarks (this reproduction, run on split memories):\n";
  List.iter
    (fun (name, src) ->
      let _, seq = Pipeline.run Pipeline.Sequential src in
      let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
      let ok = seq.Interp.output = opt.Interp.output in
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %s\n" name
           (if ok then "handled (output matches sequential)" else "FAILED")))
    feature_programs;
  (* acyclic communication after optimization *)
  let src =
    {|global float x[256];
int main() {
  for (int i = 0; i < 256; i++) { x[i] = i * 0.1; }
  for (int t = 0; t < 10; t++) {
    parallel for (int i = 0; i < 256; i++) { x[i] = x[i] * 1.01; }
  }
  float s = 0.0;
  for (int i = 0; i < 256; i++) { s = s + x[i]; }
  print(s); return 0;
}
|}
  in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
  let d = opt.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count in
  Buffer.add_string buf
    (Printf.sprintf
       "  %-28s %s (%d DtoH transfers for 10 iterations)\n"
       "acyclic after optimization"
       (if d <= 2 then "handled" else "FAILED") d);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Figure 2: execution schedules                                        *)

(* A small vector-scaling loop, rendered under the three communication
   regimes. *)
let figure2_source =
  {|global float data[2048];

void init() {
  for (int i = 0; i < 2048; i++) {
    data[i] = i * 0.25;
  }
}

void scale() {
  for (int t = 0; t < 8; t++) {
    for (int i = 0; i < 2048; i++) {
      data[i] = data[i] * 1.01 + 0.5;
    }
  }
}

int main() {
  init();
  scale();
  float sum = 0.0;
  for (int i = 0; i < 2048; i++) {
    sum = sum + data[i];
  }
  print(sum);
  return 0;
}
|}

let figure2 () : string =
  let render exec label =
    let _, r = Pipeline.run ~trace:true exec figure2_source in
    Printf.sprintf "%s (wall: %.0f cycles)\n%s\n" label r.Interp.wall
      (Trace.render r.Interp.trace)
  in
  "Figure 2: execution schedules (K = kernel, > = HtoD, < = DtoH, s = CPU stall)\n\n"
  ^ render Pipeline.Cgcm_unoptimized "naive cyclic (unoptimized CGCM)"
  ^ render Pipeline.Inspector_executor_exec "inspector-executor"
  ^ render Pipeline.Cgcm_optimized "acyclic (optimized CGCM)"

(* ------------------------------------------------------------------ *)
(* Cost-model sensitivity (extension): sweep the PCIe latency and check
   that the paper's qualitative result — optimized acyclic communication
   beats cyclic, which loses to the CPU — holds across the whole range,
   with the gap growing as transfers get more expensive. *)

let latency_sweep ?(latencies = [ 5_000.; 20_000.; 50_000.; 100_000.; 200_000. ])
    () : string =
  let src = Cgcm_progs.Polybench.jacobi_2d ~n:48 ~steps:24 () in
  let rows =
    List.map
      (fun lat ->
        let cost =
          { Cgcm_gpusim.Cost_model.default with
            Cgcm_gpusim.Cost_model.transfer_latency = lat }
        in
        let _, seq = Pipeline.run ~cost Pipeline.Sequential src in
        let sp exec =
          let _, r = Pipeline.run ~cost exec src in
          Printf.sprintf "%.2fx" (speedup ~seq r)
        in
        [
          Printf.sprintf "%.0f" lat;
          sp Pipeline.Inspector_executor_exec;
          sp Pipeline.Cgcm_unoptimized;
          sp Pipeline.Cgcm_optimized;
        ])
      latencies
  in
  "Cost-model sensitivity: jacobi-2d speedups as the per-transfer latency
   sweeps over 40x (the qualitative ordering is invariant; only the
   magnitude of the cyclic penalty moves)

"
  ^ Table.render
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:[ "latency (cycles)"; "IE"; "unopt CGCM"; "opt CGCM" ]
      rows

(* ------------------------------------------------------------------ *)
(* Ablation: contribution of each optimization pass                     *)

(* A program whose communication can only be hoisted after alloca
   promotion: a helper with an escaping local buffer, called from a
   loop. *)
let ablation_local_buffer_source =
  {|global float out[256];
void work(float seedv) {
  float tmp[256];
  parallel for (int i = 0; i < 256; i++) { tmp[i] = seedv + i * 0.5; }
  parallel for (int i = 0; i < 256; i++) { out[i] = out[i] + tmp[i]; }
}
int main() {
  for (int t = 0; t < 16; t++) { work(t * 1.0); }
  float s = 0.0;
  for (int i = 0; i < 256; i++) { s = s + out[i]; }
  print(s); return 0;
}
|}

let ablation ?(names = [ "srad"; "jacobi-2d-imper"; "hotspot"; "nw" ]) () :
    string =
  let module P = Pipeline in
  (* Each configuration ends with map promotion; the enabling passes are
     toggled to show what they unlock (the paper's Section 5.3 schedule:
     glue -> alloca promotion -> map promotion). *)
  let configs =
    [
      ("managed only", fun _ -> ());
      ("map promo alone", fun m -> Cgcm_transform.Map_promotion.run m);
      ( "glue + map promo",
        fun m ->
          Cgcm_transform.Glue_kernels.run m;
          Cgcm_transform.Map_promotion.run m );
      ( "full (+ alloca promo)",
        fun m ->
          Cgcm_transform.Glue_kernels.run m;
          Cgcm_transform.Alloca_promotion.run m;
          Cgcm_transform.Map_promotion.run m );
    ]
  in
  let row name src =
    let _, seq = P.run P.Sequential src in
    let cells =
      List.map
        (fun (_, passes) ->
          let ast = Cgcm_frontend.Parser.parse_string src in
          let ast, _ = Doall.transform ~mode:Doall.Auto ast in
          let m = Cgcm_frontend.Lower.lower_program ast in
          Cgcm_transform.Comm_mgmt.run m;
          passes m;
          let r = Interp.run m in
          Printf.sprintf "%.2fx" (speedup ~seq r))
        configs
    in
    name :: cells
  in
  let rows =
    List.filter_map
      (fun name ->
        Option.map
          (fun p -> row name p.Registry.source)
          (Registry.find name))
      names
    @ [ row "local-buffer helper" ablation_local_buffer_source ]
  in
  "Ablation: speedup over sequential as optimization passes accumulate\n\
   (every column after the first also runs map promotion; glue kernels and\n\
   alloca promotion matter through what they let map promotion hoist)\n\n"
  ^ Table.render
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:("Program" :: List.map fst configs)
      rows
