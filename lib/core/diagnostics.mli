(** Failure classification shared by the CLI and the golden diagnostics
    tests.

    Every exception the pipeline or interpreter can surface maps to one
    exit code and one rendered message; the CLI prints the message on
    stderr and exits with the code, and the golden tests pin both so a
    reworded diagnostic or renumbered exit code is a deliberate,
    reviewed change. *)

val exit_usage : int
(** 2 — bad input: lex/parse/sema/parallelization errors, bad IR text *)

val exit_runtime : int
(** 3 — CGCM run-time error (refcounts, residency, device OOM) *)

val exit_device : int
(** 4 — unrecovered device fault *)

val exit_exec : int
(** 5 — dynamic execution error (division by zero, unknown call, fuel) *)

val exit_memory : int
(** 6 — memory-model fault (bounds, use-after-free) *)

val exit_internal : int
(** 7 — IR verifier rejection: a compiler bug *)

val exit_sanitizer : int
(** 8 — the coherence sanitizer flagged a stale read, lost update,
    premature release or double free *)

val exit_overloaded : int
(** 9 — [cgcm serve] shed the request at admission (queue depth or
    simulated device memory contended) *)

val exit_deadline : int
(** 10 — [cgcm serve] killed the request at its deadline (the
    interpreter's fuel budget ran out) *)

val exit_circuit_open : int
(** 11 — the tenant's circuit breaker is open after repeated failures;
    only degraded CPU-fallback execution is available *)

val exit_socket_busy : int
(** 12 — [cgcm serve] refused to start: the socket path is answered by
    a live daemon (a dead daemon's stale socket is reclaimed silently) *)

val exit_request_timeout : int
(** 13 — [cgcm request --timeout] got no reply from the daemon within
    the budget *)

val classify : exn -> (int * string) option
(** [classify e] is [Some (code, message)] when [e] is a known failure
    class, [None] for everything else (which the CLI re-raises). *)
