(* Failure classification shared by the CLI and the golden diagnostics
   tests: every exception the pipeline or interpreter can surface maps to
   one exit code and one rendered message. The CLI prints the message on
   stderr and exits with the code; the tests pin both, so a reworded
   diagnostic or a renumbered exit code is a deliberate, reviewed
   change. *)

module Errors = Cgcm_support.Errors

let exit_usage = 2 (* bad input: parse/sema/doall errors, bad flags *)
let exit_runtime = 3 (* CGCM run-time error (refcounts, residency, OOM) *)
let exit_device = 4 (* unrecovered device fault *)
let exit_exec = 5 (* dynamic execution error *)
let exit_memory = 6 (* memory-model fault (bounds, use-after-free) *)
let exit_internal = 7 (* IR verifier rejection: a compiler bug *)
let exit_sanitizer = 8 (* coherence sanitizer caught a stale/lost byte *)
let exit_overloaded = 9 (* serve: request shed by admission control *)
let exit_deadline = 10 (* serve: per-request deadline (fuel) exceeded *)
let exit_circuit_open = 11 (* serve: tenant circuit breaker open *)
let exit_socket_busy = 12 (* serve: socket answered by a live daemon *)
let exit_request_timeout = 13 (* request: daemon never replied in time *)

let classify = function
  | Cgcm_frontend.Lexer.Lex_error (msg, pos) ->
    Some
      ( exit_usage,
        Fmt.str "cgcm: lex error at %d:%d: %s" pos.Cgcm_frontend.Lexer.line
          pos.Cgcm_frontend.Lexer.col msg )
  | Cgcm_frontend.Parser.Parse_error (msg, pos) ->
    Some
      ( exit_usage,
        Fmt.str "cgcm: parse error at %d:%d: %s" pos.Cgcm_frontend.Lexer.line
          pos.Cgcm_frontend.Lexer.col msg )
  | Cgcm_frontend.Lower.Sema_error msg ->
    Some (exit_usage, Fmt.str "cgcm: semantic error: %s" msg)
  | Cgcm_frontend.Doall.Doall_error msg ->
    Some (exit_usage, Fmt.str "cgcm: parallelization error: %s" msg)
  | Cgcm_ir.Reader.Bad_ir msg ->
    Some (exit_usage, Fmt.str "cgcm: bad IR: %s" msg)
  | Failure msg -> Some (exit_usage, Fmt.str "cgcm: %s" msg)
  | Cgcm_runtime.Runtime.Runtime_error e ->
    Some (exit_runtime, Errors.render_runtime e)
  | Errors.Device_error fault ->
    Some
      ( exit_device,
        Fmt.str "cgcm: unrecovered device fault: %s"
          (Errors.render_device_fault fault) )
  | Cgcm_interp.Interp.Exec_error msg ->
    Some (exit_exec, Fmt.str "cgcm: execution error: %s" msg)
  | Cgcm_memory.Memspace.Fault msg ->
    Some (exit_memory, Fmt.str "cgcm: memory fault: %s" msg)
  | Cgcm_ir.Verifier.Ill_formed msg ->
    Some (exit_internal, Fmt.str "cgcm: internal error (ill-formed IR): %s" msg)
  | Errors.Coherence_violation v -> Some (exit_sanitizer, Errors.render_violation v)
  | Errors.Serve_overloaded o -> Some (exit_overloaded, Errors.render_overload o)
  | Errors.Serve_deadline { dl_deadline } ->
    Some (exit_deadline, Errors.render_deadline ~deadline:dl_deadline)
  | Errors.Serve_circuit_open { co_tenant; co_failures } ->
    Some
      ( exit_circuit_open,
        Errors.render_circuit_open ~tenant:co_tenant ~failures:co_failures )
  | Errors.Serve_socket_busy { sb_path } ->
    Some (exit_socket_busy, Errors.render_socket_busy ~path:sb_path)
  | Errors.Serve_request_timeout { rt_socket; rt_timeout_ms } ->
    Some
      ( exit_request_timeout,
        Errors.render_request_timeout ~socket:rt_socket
          ~timeout_ms:rt_timeout_ms )
  | _ -> None
