(* The end-to-end CGCM pipeline: CGC source -> AST -> DOALL outlining ->
   IR -> communication management -> communication optimization.

   This is the facade most users (CLI, examples, benchmarks, tests) go
   through. *)

module Ast = Cgcm_frontend.Ast
module Parser = Cgcm_frontend.Parser
module Doall = Cgcm_frontend.Doall
module Lower = Cgcm_frontend.Lower
module Ir = Cgcm_ir.Ir
module Interp = Cgcm_interp.Interp
module Pass = Cgcm_transform.Pass
module Manager = Cgcm_analysis.Manager

(* How much of CGCM runs after parallelization. *)
type level =
  | Unmanaged  (* DOALL only: launches carry raw CPU pointers *)
  | Managed  (* + communication management (unoptimized CGCM) *)
  | Optimized  (* + glue kernels, alloca promotion, map promotion *)

type compiled = {
  modul : Ir.modul;
  doall : Doall.report;
  level : level;
  parallel : Doall.mode;
  pass_stats : Pass.pass_stat list;  (* one row per pass execution *)
  cache_stats : (string * int * int) list;  (* analysis, hits, misses *)
}

let plan_of_level = function
  | Unmanaged -> Pass.unmanaged_plan
  | Managed -> Pass.managed_pipeline
  | Optimized -> Pass.optimized_pipeline

let compile ?(parallel = Doall.Auto) ?(level = Optimized) ?plan
    ?(analysis = Manager.Cached) ?hooks ?verify (source : string) : compiled =
  let ast = Parser.parse_string source in
  let ast, doall = Doall.transform ~mode:parallel ast in
  let modul = Lower.lower_program ast in
  (* The pass framework runs the §5.3 schedule over a caching analysis
     manager; simplification runs in every configuration (including the
     sequential baseline) so cost comparisons stay fair. An explicit
     [plan] overrides the level's; the level still names what the
     interpreter should expect of the module. *)
  let plan = match plan with Some p -> p | None -> plan_of_level level in
  let mgr = Manager.create ~mode:analysis modul in
  let stats = ref [] in
  let base = match hooks with Some h -> h | None -> Pass.default_hooks in
  let hooks =
    {
      base with
      Pass.on_stat =
        (fun s ->
          stats := s :: !stats;
          base.Pass.on_stat s);
    }
  in
  Pass.run_plan ~hooks ?verify mgr plan;
  {
    modul;
    doall;
    level;
    parallel;
    pass_stats = List.rev !stats;
    cache_stats = Manager.stats mgr;
  }

(* The paper's execution configurations. *)
type execution =
  | Sequential  (* best sequential CPU-only run: the baseline *)
  | Cgcm_unoptimized
  | Cgcm_optimized
  | Inspector_executor_exec
  | Unified_oracle of level  (* functional oracle for differential tests *)

let execution_to_string = function
  | Sequential -> "sequential"
  | Cgcm_unoptimized -> "cgcm-unopt"
  | Cgcm_optimized -> "cgcm-opt"
  | Inspector_executor_exec -> "inspector-executor"
  | Unified_oracle _ -> "unified-oracle"

let run ?(parallel = Doall.Auto) ?(cost = Cgcm_gpusim.Cost_model.default)
    ?(trace = false) ?(engine = Interp.default_config.Interp.engine)
    ?dirty_spans ?faults ?device_mem ?page_bytes ?(paranoid = false)
    ?(sanitize = false) ?(jobs = 0)
    ?(backend = Cgcm_runtime.Mem_backend.Explicit) (execution : execution)
    (source : string) : compiled * Interp.result =
  (* Dirty-span transfers are part of the optimized run-time; the
     unoptimized configuration keeps the paper's whole-unit protocol so
     the Figure 4 contrast measures what the paper measures. An explicit
     [dirty_spans] overrides for A/B experiments. *)
  let dirty_spans =
    match dirty_spans with
    | Some b -> b
    | None -> ( match execution with Cgcm_optimized -> true | _ -> false)
  in
  let cost =
    match device_mem with
    | Some bytes -> { cost with Cgcm_gpusim.Cost_model.device_mem_bytes = bytes }
    | None -> cost
  in
  let cost =
    match page_bytes with
    | Some bytes -> { cost with Cgcm_gpusim.Cost_model.page_bytes = bytes }
    | None -> cost
  in
  let config mode =
    {
      Interp.default_config with
      mode;
      cost;
      trace;
      engine;
      dirty_spans;
      faults;
      paranoid;
      sanitize;
      jobs;
      backend;
    }
  in
  match execution with
  | Sequential ->
    (* No DOALL, no management. Explicitly-written kernels (the manual-
       parallelization path) still carry launch statements, so the
       baseline executes in unified memory: kernels run as ordinary host
       loops and their instructions are charged as CPU time. *)
    let c = compile ~parallel:Doall.Off ~level:Unmanaged source in
    (c, Interp.run ~config:(config Interp.Unified) c.modul)
  | Cgcm_unoptimized ->
    let c = compile ~parallel ~level:Managed source in
    (c, Interp.run ~config:(config Interp.Split) c.modul)
  | Cgcm_optimized ->
    let c = compile ~parallel ~level:Optimized source in
    (c, Interp.run ~config:(config Interp.Split) c.modul)
  | Inspector_executor_exec ->
    let c = compile ~parallel ~level:Unmanaged source in
    (c, Interp.run ~config:(config Interp.Inspector_executor) c.modul)
  | Unified_oracle level ->
    let c = compile ~parallel ~level source in
    (c, Interp.run ~config:(config Interp.Unified) c.modul)
