(** The end-to-end CGCM pipeline: CGC source -> AST -> DOALL outlining ->
    IR -> communication management -> communication optimization -> the
    simulated split-memory machine. This is the facade the CLI, examples,
    benchmarks and tests go through. *)

module Doall = Cgcm_frontend.Doall
module Ir = Cgcm_ir.Ir
module Interp = Cgcm_interp.Interp

(** How much of CGCM runs after parallelization. *)
type level =
  | Unmanaged  (** DOALL only: launches carry raw CPU pointers *)
  | Managed  (** + communication management (unoptimized CGCM) *)
  | Optimized  (** + glue kernels, alloca promotion, map promotion *)

type compiled = {
  modul : Ir.modul;
  doall : Doall.report;  (** kernels created, loops rejected, and why *)
  level : level;
  parallel : Doall.mode;
  pass_stats : Cgcm_transform.Pass.pass_stat list;
      (** one row per pass execution, in execution order *)
  cache_stats : (string * int * int) list;
      (** per-analysis (name, cache hits, misses) from the manager *)
}

val plan_of_level : level -> Cgcm_transform.Pass.plan

val compile :
  ?parallel:Doall.mode ->
  ?level:level ->
  ?plan:Cgcm_transform.Pass.plan ->
  ?analysis:Cgcm_analysis.Manager.mode ->
  ?hooks:Cgcm_transform.Pass.hooks ->
  ?verify:Cgcm_transform.Pass.verify_policy ->
  string ->
  compiled
(** Compile CGC source text. The module is verified after lowering and
    (by default) after every transformation. [plan] overrides the pass
    plan the [level] implies — e.g. a custom [--passes] spec; [analysis]
    selects the manager's cache discipline ([Uncached] is the
    restart-from-scratch baseline the benchmarks compare against,
    [Paranoid] cross-checks every cached result); [hooks] observes each
    pass execution. Raises the frontend/transform exceptions
    ([Parse_error], [Sema_error], [Doall_error], [Ill_formed]) on bad
    input or (for the latter) a compiler bug. *)

(** The paper's execution configurations. *)
type execution =
  | Sequential
      (** best sequential CPU-only run — the baseline. Parallelization is
          off; explicitly written kernels execute in unified memory with
          their work charged as CPU time. *)
  | Cgcm_unoptimized  (** management only: cyclic communication *)
  | Cgcm_optimized  (** full CGCM: acyclic communication *)
  | Inspector_executor_exec  (** the idealized baseline of Section 6.3 *)
  | Unified_oracle of level
      (** flat-memory functional oracle for differential tests *)

val execution_to_string : execution -> string

val run :
  ?parallel:Doall.mode ->
  ?cost:Cgcm_gpusim.Cost_model.t ->
  ?trace:bool ->
  ?engine:Interp.engine ->
  ?dirty_spans:bool ->
  ?faults:Cgcm_gpusim.Faults.spec ->
  ?device_mem:int ->
  ?page_bytes:int ->
  ?paranoid:bool ->
  ?sanitize:bool ->
  ?jobs:int ->
  ?backend:Cgcm_runtime.Mem_backend.kind ->
  execution ->
  string ->
  compiled * Interp.result
(** Compile and execute CGC source under the given configuration.

    [engine] selects the interpreter engine (default
    {!Interp.default_config}'s, i.e. the closure-compiled one).
    [dirty_spans] overrides the run-time's dirty-span transfer
    optimisation; by default it is on for {!Cgcm_optimized} and off
    elsewhere, so {!Cgcm_unoptimized} keeps the paper's whole-unit
    protocol and the Figure 4 contrast measures what the paper
    measures.

    [faults] arms a deterministic driver fault plan and [device_mem]
    caps device memory (see {!Cgcm_gpusim.Faults}); the run-time then
    recovers via eviction, retry and CPU fallback without changing
    program output. [paranoid] re-checks every run-time invariant after
    every run-time call. [sanitize] arms the shadow-memory coherence
    sanitizer on the Split configurations (raises
    [Cgcm_support.Errors.Coherence_violation] fail-fast on a coherence
    bug; a no-op for the oracle modes and the paged backend, which have
    one memory and nothing to keep coherent).

    [backend] selects the memory backend for the Split configurations
    ({!Cgcm_unoptimized}/{!Cgcm_optimized}): [Explicit] (default) is the
    CGCM-managed explicit-copy model, [Paged] a single shared address
    space charging touch-driven page-granular migration, under which the
    cgcm.* intrinsics are no-ops. [page_bytes] overrides the migration
    granularity ({!Cgcm_gpusim.Cost_model.t.page_bytes}). Program output
    must be bit-identical across backends. *)
