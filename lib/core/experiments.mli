(** Drivers that regenerate the paper's tables and figures; the
    per-experiment index lives in DESIGN.md, and paper-vs-measured values
    in EXPERIMENTS.md. *)

module Interp = Cgcm_interp.Interp
module Registry = Cgcm_progs.Registry

type prog_result = {
  prog : Registry.program;
  seq : Interp.result;
  ie : Interp.result;
  unopt : Interp.result;
  opt : Interp.result;
  kernels : int;  (** kernels created by the DOALL parallelizer *)
  baseline_applicable : int;  (** named-regions / inspector-executor *)
  outputs_match : bool;
      (** all four configurations printed identical output *)
}

val speedup : seq:Interp.result -> Interp.result -> float

val run_program :
  ?cost:Cgcm_gpusim.Cost_model.t ->
  ?engine:Interp.engine ->
  ?dirty_spans:bool ->
  ?jobs:int ->
  ?backend:Cgcm_runtime.Mem_backend.kind ->
  ?page_bytes:int ->
  Registry.program ->
  prog_result
(** Run one program under all four configurations. [engine],
    [dirty_spans], [backend] and [page_bytes] pass through to
    {!Pipeline.run} ([dirty_spans] defaults per configuration there;
    [backend] shapes only the split-memory configurations). *)

val run_suite :
  ?cost:Cgcm_gpusim.Cost_model.t ->
  ?engine:Interp.engine ->
  ?dirty_spans:bool ->
  ?jobs:int ->
  ?backend:Cgcm_runtime.Mem_backend.kind ->
  ?page_bytes:int ->
  ?progress:(string -> unit) ->
  unit ->
  prog_result list
(** All 24 programs. *)

val geomeans :
  prog_result list -> (float * float * float) * (float * float * float)
(** ((IE, unopt, opt), same clamped at 1.0) — the Figure 4 geomeans. *)

val figure4 : prog_result list -> string
(** Figure 4: per-program log-scale speedup bars + geomeans vs paper. *)

val limiting : Interp.result -> Registry.limiting
(** Classify the limiting factor from the time breakdown (>=50% rule). *)

val table3 : prog_result list -> string
(** Table 3: suite, limiting factors, GPU%/Comm% unopt and opt, kernel
    counts and baseline applicability — side by side with the paper. *)

val applicability : prog_result list -> string
(** The Section 6 kernel-count claim (101 / 101 / 80 in the paper). *)

val volume_table : prog_result list -> string
(** Extension: bytes moved and DMA counts per configuration — quantifies
    Section 6.3's "dramatically fewer bytes" trade. *)

val breakdown_table : prog_result list -> string
(** Extension: absolute cycle decomposition (wall / cpu / gpu / comm /
    sync / launches) of the optimized runs. *)

val feature_programs : (string * string) list
(** The Table 1 capability microbenchmarks (name, CGC source). *)

val table1 : unit -> string
(** Table 1: the paper's static comparison plus executed capability
    checks (each microbenchmark diffed against its sequential run). *)

val figure1 : unit -> string
(** Figure 1: the related-work taxonomy, annotated with where this
    reproduction's configurations sit. *)

val figure3 : unit -> string
(** Figure 3: the system overview as a pipeline diagram, one module per
    stage. *)

val figure2_source : string

val figure2 : unit -> string
(** Figure 2: rendered execution schedules for the naive cyclic,
    inspector-executor, and acyclic regimes. *)

val latency_sweep : ?latencies:float list -> unit -> string
(** Extension: sweep the per-transfer latency and show the qualitative
    ordering (opt > IE > unopt) is invariant. *)

val ablation_local_buffer_source : string

val ablation : ?names:string list -> unit -> string
(** Extension: per-pass contributions — managed only, map promotion
    alone, + glue kernels, + alloca promotion. *)
