(* Tokens of the CGC mini-C language. *)

type t =
  | INT_LIT of int64
  | FLOAT_LIT of float
  | STRING_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_INT | KW_FLOAT | KW_CHAR | KW_VOID
  | KW_GLOBAL | KW_READONLY | KW_KERNEL | KW_PARALLEL
  | KW_IF | KW_ELSE | KW_FOR | KW_WHILE | KW_RETURN | KW_BREAK
  | KW_LAUNCH | KW_SIZEOF | KW_STRUCT
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | AMPAMP | BARBAR | BANG
  | LT | LE | GT | GE | EQEQ | NE
  | SHL | SHR
  | DOT | ARROW
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | EOF

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "float" -> Some KW_FLOAT
  | "double" -> Some KW_FLOAT  (* alias: CGC floats are 64-bit *)
  | "char" -> Some KW_CHAR
  | "void" -> Some KW_VOID
  | "global" -> Some KW_GLOBAL
  | "readonly" -> Some KW_READONLY
  | "kernel" -> Some KW_KERNEL
  | "parallel" -> Some KW_PARALLEL
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "for" -> Some KW_FOR
  | "while" -> Some KW_WHILE
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "launch" -> Some KW_LAUNCH
  | "sizeof" -> Some KW_SIZEOF
  | "struct" -> Some KW_STRUCT
  | _ -> None

let to_string = function
  | INT_LIT i -> Int64.to_string i
  | FLOAT_LIT f -> string_of_float f
  | STRING_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_INT -> "int" | KW_FLOAT -> "float" | KW_CHAR -> "char"
  | KW_VOID -> "void" | KW_GLOBAL -> "global" | KW_READONLY -> "readonly"
  | KW_KERNEL -> "kernel" | KW_PARALLEL -> "parallel"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_FOR -> "for" | KW_WHILE -> "while"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_LAUNCH -> "launch"
  | KW_SIZEOF -> "sizeof"
  | KW_STRUCT -> "struct"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | QUESTION -> "?" | COLON -> ":"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | AMPAMP -> "&&" | BARBAR -> "||" | BANG -> "!"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NE -> "!="
  | SHL -> "<<" | SHR -> ">>"
  | DOT -> "." | ARROW -> "->"
  | ASSIGN -> "=" | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "<eof>"
