(* Recursive-descent parser for CGC. *)

open Ast

exception Parse_error of string * Lexer.pos

type st = {
  toks : Lexer.lexed array;
  mutable i : int;
  structs : (string, sdef) Hashtbl.t;  (* defined struct layouts *)
}

let error st fmt =
  let pos = st.toks.(st.i).pos in
  Fmt.kstr (fun s -> raise (Parse_error (s, pos))) fmt

let peek st = st.toks.(st.i).tok

let peek2 st =
  if st.i + 1 < Array.length st.toks then st.toks.(st.i + 1).tok else Token.EOF

let advance st = st.i <- st.i + 1

let eat st tok =
  if peek st = tok then advance st
  else error st "expected '%s', found '%s'" (Token.to_string tok)
         (Token.to_string (peek st))

let eat_ident st =
  match peek st with
  | Token.IDENT x ->
    advance st;
    x
  | t -> error st "expected identifier, found '%s'" (Token.to_string t)

let is_type_keyword = function
  | Token.KW_INT | Token.KW_FLOAT | Token.KW_CHAR | Token.KW_STRUCT -> true
  | _ -> false

let base_type st =
  match peek st with
  | Token.KW_INT -> advance st; Int
  | Token.KW_FLOAT -> advance st; Float
  | Token.KW_CHAR -> advance st; Char
  | Token.KW_STRUCT -> (
    advance st;
    let name = eat_ident st in
    match Hashtbl.find_opt st.structs name with
    | Some sdef -> Struct sdef
    | None -> error st "struct '%s' is not defined (definition must precede use)" name)
  | t -> error st "expected type, found '%s'" (Token.to_string t)

(* base type followed by pointer stars *)
let ptr_type st =
  let t = ref (base_type st) in
  while peek st = Token.STAR do
    advance st;
    t := Ptr !t
  done;
  !t

let int_lit st =
  match peek st with
  | Token.INT_LIT v ->
    advance st;
    Int64.to_int v
  | t -> error st "expected integer literal, found '%s'" (Token.to_string t)

let dims st =
  (* A dimension of 0 means "infer from the initialiser" (globals only:
     'global char s[] = "..."'). *)
  let ds = ref [] in
  while peek st = Token.LBRACKET do
    advance st;
    if peek st = Token.RBRACKET then begin
      advance st;
      ds := 0 :: !ds
    end
    else begin
      let d = int_lit st in
      if d <= 0 then error st "array dimension must be positive";
      eat st Token.RBRACKET;
      ds := d :: !ds
    end
  done;
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing.                                   *)

let rec expr st = cond_expr st

and cond_expr st =
  let c = or_expr st in
  if peek st = Token.QUESTION then begin
    advance st;
    let a = expr st in
    eat st Token.COLON;
    let b = cond_expr st in
    Cond (c, a, b)
  end
  else c

and or_expr st =
  let a = ref (and_expr st) in
  while peek st = Token.BARBAR do
    advance st;
    a := Binary (Bor, !a, and_expr st)
  done;
  !a

and and_expr st =
  let a = ref (eq_expr st) in
  while peek st = Token.AMPAMP do
    advance st;
    a := Binary (Band, !a, eq_expr st)
  done;
  !a

and eq_expr st =
  let a = ref (rel_expr st) in
  let rec go () =
    match peek st with
    | Token.EQEQ ->
      advance st;
      a := Binary (Beq, !a, rel_expr st);
      go ()
    | Token.NE ->
      advance st;
      a := Binary (Bne, !a, rel_expr st);
      go ()
    | _ -> ()
  in
  go ();
  !a

and rel_expr st =
  let a = ref (shift_expr st) in
  let rec go () =
    match peek st with
    | Token.LT -> advance st; a := Binary (Blt, !a, shift_expr st); go ()
    | Token.LE -> advance st; a := Binary (Ble, !a, shift_expr st); go ()
    | Token.GT -> advance st; a := Binary (Bgt, !a, shift_expr st); go ()
    | Token.GE -> advance st; a := Binary (Bge, !a, shift_expr st); go ()
    | _ -> ()
  in
  go ();
  !a

and shift_expr st =
  let a = ref (add_expr st) in
  let rec go () =
    match peek st with
    | Token.SHL -> advance st; a := Binary (Bshl, !a, add_expr st); go ()
    | Token.SHR -> advance st; a := Binary (Bshr, !a, add_expr st); go ()
    | _ -> ()
  in
  go ();
  !a

and add_expr st =
  let a = ref (mul_expr st) in
  let rec go () =
    match peek st with
    | Token.PLUS -> advance st; a := Binary (Badd, !a, mul_expr st); go ()
    | Token.MINUS -> advance st; a := Binary (Bsub, !a, mul_expr st); go ()
    | _ -> ()
  in
  go ();
  !a

and mul_expr st =
  let a = ref (unary_expr st) in
  let rec go () =
    match peek st with
    | Token.STAR -> advance st; a := Binary (Bmul, !a, unary_expr st); go ()
    | Token.SLASH -> advance st; a := Binary (Bdiv, !a, unary_expr st); go ()
    | Token.PERCENT -> advance st; a := Binary (Brem, !a, unary_expr st); go ()
    | _ -> ()
  in
  go ();
  !a

and unary_expr st =
  match peek st with
  | Token.MINUS ->
    advance st;
    Unary (Uneg, unary_expr st)
  | Token.BANG ->
    advance st;
    Unary (Unot, unary_expr st)
  | Token.STAR ->
    advance st;
    Deref (unary_expr st)
  | Token.AMP ->
    advance st;
    Addr_of (unary_expr st)
  | Token.LPAREN when is_type_keyword (peek2 st) ->
    (* cast *)
    advance st;
    let t = ptr_type st in
    eat st Token.RPAREN;
    Cast (t, unary_expr st)
  | _ -> postfix_expr st

and postfix_expr st =
  let a = ref (primary_expr st) in
  let rec go () =
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let idx = expr st in
      eat st Token.RBRACKET;
      a := Index (!a, idx);
      go ()
    | Token.DOT ->
      advance st;
      let f = eat_ident st in
      a := Field (!a, f);
      go ()
    | Token.ARROW ->
      advance st;
      let f = eat_ident st in
      a := Arrow (!a, f);
      go ()
    | _ -> ()
  in
  go ();
  !a

and primary_expr st =
  match peek st with
  | Token.INT_LIT v ->
    advance st;
    Int_lit v
  | Token.FLOAT_LIT v ->
    advance st;
    Float_lit v
  | Token.KW_SIZEOF ->
    advance st;
    eat st Token.LPAREN;
    let t = ptr_type st in
    eat st Token.RPAREN;
    Sizeof t
  | Token.IDENT x ->
    advance st;
    if peek st = Token.LPAREN then begin
      advance st;
      let args = call_args st in
      Call (x, args)
    end
    else Ident x
  | Token.LPAREN ->
    advance st;
    let e = expr st in
    eat st Token.RPAREN;
    e
  | t -> error st "expected expression, found '%s'" (Token.to_string t)

and call_args st =
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let args = ref [ expr st ] in
    while peek st = Token.COMMA do
      advance st;
      args := expr st :: !args
    done;
    eat st Token.RPAREN;
    List.rev !args
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let binop_of_opassign = function
  | Token.PLUSEQ -> Badd
  | Token.MINUSEQ -> Bsub
  | Token.STAREQ -> Bmul
  | Token.SLASHEQ -> Bdiv
  | _ -> assert false

(* decl | assignment | expression, *without* the trailing semicolon *)
let rec simple_stmt st =
  if is_type_keyword (peek st) then begin
    let t = ptr_type st in
    let name = eat_ident st in
    let ds = dims st in
    let t = if ds = [] then t else Arr (t, ds) in
    match peek st with
    | Token.ASSIGN ->
      if ds <> [] then error st "array declarations cannot have initialisers";
      advance st;
      let e = expr st in
      Decl (t, name, Some e)
    | _ -> Decl (t, name, None)
  end
  else begin
    let lhs = expr st in
    match peek st with
    | Token.ASSIGN ->
      advance st;
      Assign (lhs, expr st)
    | (Token.PLUSEQ | Token.MINUSEQ | Token.STAREQ | Token.SLASHEQ) as op ->
      advance st;
      Op_assign (binop_of_opassign op, lhs, expr st)
    | Token.PLUSPLUS ->
      advance st;
      Op_assign (Badd, lhs, Int_lit 1L)
    | Token.MINUSMINUS ->
      advance st;
      Op_assign (Bsub, lhs, Int_lit 1L)
    | _ -> Expr_stmt lhs
  end

and stmt st : stmt =
  match peek st with
  | Token.LBRACE ->
    (* A bare block is flattened into an If(1) so scoping stays simple. *)
    let b = block st in
    If (Int_lit 1L, b, [])
  | Token.KW_IF ->
    advance st;
    eat st Token.LPAREN;
    let c = expr st in
    eat st Token.RPAREN;
    let then_ = stmt_as_block st in
    let else_ =
      if peek st = Token.KW_ELSE then begin
        advance st;
        stmt_as_block st
      end
      else []
    in
    If (c, then_, else_)
  | Token.KW_WHILE ->
    advance st;
    eat st Token.LPAREN;
    let c = expr st in
    eat st Token.RPAREN;
    While (c, stmt_as_block st)
  | Token.KW_PARALLEL | Token.KW_FOR ->
    let parallel = peek st = Token.KW_PARALLEL in
    if parallel then begin
      advance st;
      if peek st <> Token.KW_FOR then error st "'parallel' must precede 'for'"
    end;
    eat st Token.KW_FOR;
    eat st Token.LPAREN;
    let init =
      if peek st = Token.SEMI then None else Some (simple_stmt st)
    in
    eat st Token.SEMI;
    let cond = if peek st = Token.SEMI then None else Some (expr st) in
    eat st Token.SEMI;
    let update =
      if peek st = Token.RPAREN then None else Some (simple_stmt st)
    in
    eat st Token.RPAREN;
    let body = stmt_as_block st in
    For { parallel; init; cond; update; body }
  | Token.KW_RETURN ->
    advance st;
    if peek st = Token.SEMI then begin
      advance st;
      Return None
    end
    else begin
      let e = expr st in
      eat st Token.SEMI;
      Return (Some e)
    end
  | Token.KW_BREAK ->
    advance st;
    eat st Token.SEMI;
    Break
  | Token.KW_LAUNCH ->
    advance st;
    let k = eat_ident st in
    eat st Token.LT;
    (* additive grammar only: '>' must terminate the trip count *)
    let trip = add_expr st in
    eat st Token.GT;
    eat st Token.LPAREN;
    let args = call_args st in
    eat st Token.SEMI;
    Launch_stmt (k, trip, args)
  | _ ->
    let s = simple_stmt st in
    eat st Token.SEMI;
    s

and stmt_as_block st =
  if peek st = Token.LBRACE then block st else [ stmt st ]

and block st =
  eat st Token.LBRACE;
  let stmts = ref [] in
  while peek st <> Token.RBRACE do
    stmts := stmt st :: !stmts
  done;
  advance st;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let init_item st =
  match peek st with
  | Token.INT_LIT v -> advance st; I_int v
  | Token.MINUS ->
    advance st;
    (match peek st with
    | Token.INT_LIT v -> advance st; I_int (Int64.neg v)
    | Token.FLOAT_LIT v -> advance st; I_float (-.v)
    | t -> error st "bad initialiser item '%s'" (Token.to_string t))
  | Token.FLOAT_LIT v -> advance st; I_float v
  | Token.STRING_LIT s -> advance st; I_string s
  | Token.IDENT x -> advance st; I_ident x
  | t -> error st "bad initialiser item '%s'" (Token.to_string t)

let global_decl st ~readonly =
  eat st Token.KW_GLOBAL;
  let t = ptr_type st in
  let name = eat_ident st in
  let ds = dims st in
  let t = if ds = [] then t else Arr (t, ds) in
  let init =
    if peek st = Token.ASSIGN then begin
      advance st;
      match peek st with
      | Token.STRING_LIT s ->
        advance st;
        Some [ I_string s ]
      | Token.LBRACE ->
        advance st;
        let items = ref [ init_item st ] in
        while peek st = Token.COMMA do
          advance st;
          items := init_item st :: !items
        done;
        eat st Token.RBRACE;
        Some (List.rev !items)
      | _ -> Some [ init_item st ]
    end
    else None
  in
  eat st Token.SEMI;
  { g_readonly = readonly; g_ty = t; g_name = name; g_init = init }

let func_decl st ~kernel =
  let ret =
    if peek st = Token.KW_VOID then begin
      advance st;
      None
    end
    else Some (ptr_type st)
  in
  let name = eat_ident st in
  eat st Token.LPAREN;
  let params = ref [] in
  if peek st <> Token.RPAREN then begin
    let param () =
      let t = ptr_type st in
      let x = eat_ident st in
      (t, x)
    in
    params := [ param () ];
    while peek st = Token.COMMA do
      advance st;
      params := param () :: !params
    done
  end;
  eat st Token.RPAREN;
  let body = block st in
  {
    f_kernel = kernel;
    f_ret = ret;
    f_name = name;
    f_params = List.rev !params;
    f_body = body;
  }

(* struct name { type field; ... }; *)
let struct_decl st =
  eat st Token.KW_STRUCT;
  let name = eat_ident st in
  if Hashtbl.mem st.structs name then error st "struct '%s' redefined" name;
  eat st Token.LBRACE;
  let fields = ref [] in
  while peek st <> Token.RBRACE do
    let t = ptr_type st in
    let fname = eat_ident st in
    if List.exists (fun (_, n) -> n = fname) !fields then
      error st "duplicate field '%s' in struct %s" fname name;
    eat st Token.SEMI;
    fields := !fields @ [ (t, fname) ]
  done;
  advance st;
  eat st Token.SEMI;
  if !fields = [] then error st "struct '%s' has no fields" name;
  let size, laid = layout_fields !fields in
  let sdef = { s_name = name; s_size = size; s_fields = laid } in
  Hashtbl.replace st.structs name sdef;
  sdef

let program st =
  let decls = ref [] in
  while peek st <> Token.EOF do
    match peek st with
    | Token.KW_STRUCT ->
      decls := Struct_decl (struct_decl st) :: !decls
    | Token.KW_READONLY ->
      advance st;
      decls := Global_decl (global_decl st ~readonly:true) :: !decls
    | Token.KW_GLOBAL ->
      decls := Global_decl (global_decl st ~readonly:false) :: !decls
    | Token.KW_KERNEL ->
      advance st;
      decls := Func_decl (func_decl st ~kernel:true) :: !decls
    | _ -> decls := Func_decl (func_decl st ~kernel:false) :: !decls
  done;
  List.rev !decls

let parse_string src =
  let toks = Lexer.tokenize src in
  program { toks; i = 0; structs = Hashtbl.create 8 }
