(* Abstract syntax of CGC, the mini-C source language of this
   reproduction. CGC deliberately keeps the C features that make CPU-GPU
   communication hard — pointer arithmetic, aliasing, casts, jagged arrays,
   globals, structs (an array of structures is one allocation unit), up to
   two levels of indirection — while dropping what the benchmarks don't
   need (unions, varargs, goto). *)

type cty =
  | Int  (* 64-bit *)
  | Float  (* 64-bit *)
  | Char  (* 1 byte in memory, widened to Int in registers *)
  | Ptr of cty
  | Arr of cty * int list  (* element type and constant dimensions *)
  | Struct of sdef
    (* The layout is embedded so sizeof needs no environment; the parser
       computes it when the struct is declared (definition must precede
       use, so recursive struct values are impossible — use pointers). *)

and sdef = {
  s_name : string;
  s_size : int;  (* bytes *)
  s_fields : (string * (int * cty)) list;  (* field -> offset, type *)
}

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Bshl | Bshr
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Band | Bor  (* short-circuit *)

type unop = Uneg | Unot

type expr =
  | Int_lit of int64
  | Float_lit of float
  | Ident of string
  | Binary of binop * expr * expr
  | Unary of unop * expr
  | Cond of expr * expr * expr
  | Index of expr * expr
  | Deref of expr
  | Field of expr * string  (* s.f *)
  | Arrow of expr * string  (* p->f *)
  | Addr_of of expr
  | Call of string * expr list
  | Cast of cty * expr
  | Sizeof of cty

type stmt =
  | Decl of cty * string * expr option
  | Assign of expr * expr  (* lvalue = expr *)
  | Op_assign of binop * expr * expr  (* lvalue op= expr *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of for_info
  | Return of expr option
  | Break
  | Expr_stmt of expr
  | Launch_stmt of string * expr * expr list  (* kernel, trip count, args *)

and for_info = {
  parallel : bool;  (* manual DOALL annotation *)
  init : stmt option;
  cond : expr option;
  update : stmt option;
  body : stmt list;
}

type init_item =
  | I_int of int64
  | I_float of float
  | I_string of string
  | I_ident of string  (* address of another global *)

type global_decl = {
  g_readonly : bool;
  g_ty : cty;
  g_name : string;
  g_init : init_item list option;
}

type func_decl = {
  f_kernel : bool;
  f_ret : cty option;  (* None = void *)
  f_name : string;
  f_params : (cty * string) list;
  f_body : stmt list;
}

type topdecl =
  | Global_decl of global_decl
  | Func_decl of func_decl
  | Struct_decl of sdef

type program = topdecl list

(* ------------------------------------------------------------------ *)

let rec sizeof = function
  | Int | Float | Ptr _ -> 8
  | Char -> 1
  | Arr (t, dims) -> List.fold_left (fun acc d -> acc * d) (sizeof t) dims
  | Struct s -> s.s_size

(* Field offsets: chars pack with byte alignment, everything else aligns
   to 8 bytes. *)
let layout_fields (fields : (cty * string) list) : int * (string * (int * cty)) list
    =
  let align off t =
    match t with Char -> off | _ -> (off + 7) / 8 * 8
  in
  let off, acc =
    List.fold_left
      (fun (off, acc) (t, name) ->
        let off = align off t in
        (off + sizeof t, (name, (off, t)) :: acc))
      (0, []) fields
  in
  (max 1 off, List.rev acc)

let rec indirection = function
  | Ptr t -> 1 + indirection t
  | Arr (t, _) -> 1 + indirection t
  | Int | Float | Char | Struct _ -> 0

let rec pp_cty ppf = function
  | Int -> Fmt.string ppf "int"
  | Float -> Fmt.string ppf "float"
  | Char -> Fmt.string ppf "char"
  | Struct s -> Fmt.pf ppf "struct %s" s.s_name
  | Ptr t -> Fmt.pf ppf "%a*" pp_cty t
  | Arr (t, dims) ->
    pp_cty ppf t;
    List.iter (fun d -> Fmt.pf ppf "[%d]" d) dims

let string_of_binop = function
  | Badd -> "+" | Bsub -> "-" | Bmul -> "*" | Bdiv -> "/" | Brem -> "%"
  | Bshl -> "<<" | Bshr -> ">>"
  | Blt -> "<" | Ble -> "<=" | Bgt -> ">" | Bge -> ">=" | Beq -> "==" | Bne -> "!="
  | Band -> "&&" | Bor -> "||"

let rec pp_expr ppf = function
  | Int_lit i -> Fmt.pf ppf "%Ld" i
  | Float_lit f ->
    (* Print with a decimal point so the round-trip re-lexes as a float. *)
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then Fmt.string ppf s
    else Fmt.pf ppf "%s.0" s
  | Ident x -> Fmt.string ppf x
  | Binary (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (string_of_binop op) pp_expr b
  | Unary (Uneg, a) -> Fmt.pf ppf "(-%a)" pp_expr a
  | Unary (Unot, a) -> Fmt.pf ppf "(!%a)" pp_expr a
  | Cond (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Index (a, i) -> Fmt.pf ppf "%a[%a]" pp_expr a pp_expr i
  | Deref a -> Fmt.pf ppf "(*%a)" pp_expr a
  | Field (a, f) -> Fmt.pf ppf "%a.%s" pp_expr a f
  | Arrow (a, f) -> Fmt.pf ppf "%a->%s" pp_expr a f
  | Addr_of a -> Fmt.pf ppf "(&%a)" pp_expr a
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | Cast (t, a) -> Fmt.pf ppf "((%a)%a)" pp_cty t pp_expr a
  | Sizeof t -> Fmt.pf ppf "sizeof(%a)" pp_cty t

(* Statement printing with explicit indentation (format boxes would
   indent relative to the current column, which reads badly after long
   headers). The output re-parses to an equal AST. *)
let rec pp_stmt_i ind ppf (s : stmt) =
  let pad = String.make (ind * 2) ' ' in
  match s with
  | Decl (t, x, init) -> begin
    match t with
    | Arr (elem, dims) ->
      Fmt.pf ppf "%s%a %s" pad pp_cty elem x;
      List.iter (fun d -> Fmt.pf ppf "[%d]" d) dims;
      assert (init = None);
      Fmt.pf ppf ";"
    | _ -> begin
      match init with
      | Some e -> Fmt.pf ppf "%s%a %s = %a;" pad pp_cty t x pp_expr e
      | None -> Fmt.pf ppf "%s%a %s;" pad pp_cty t x
    end
  end
  | Assign (l, e) -> Fmt.pf ppf "%s%a = %a;" pad pp_expr l pp_expr e
  | Op_assign (op, l, e) ->
    Fmt.pf ppf "%s%a %s= %a;" pad pp_expr l (string_of_binop op) pp_expr e
  | If (c, t, []) ->
    Fmt.pf ppf "%sif (%a) %a" pad pp_expr c (pp_block_i ind) t
  | If (c, t, e) ->
    Fmt.pf ppf "%sif (%a) %a else %a" pad pp_expr c (pp_block_i ind) t
      (pp_block_i ind) e
  | While (c, body) ->
    Fmt.pf ppf "%swhile (%a) %a" pad pp_expr c (pp_block_i ind) body
  | For { parallel; init; cond; update; body } ->
    Fmt.pf ppf "%s%sfor (%a %a; %a) %a" pad
      (if parallel then "parallel " else "")
      (Fmt.option pp_for_init) init
      (Fmt.option pp_expr) cond
      (Fmt.option pp_for_update) update (pp_block_i ind) body
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Return None -> Fmt.pf ppf "%sreturn;" pad
  | Break -> Fmt.pf ppf "%sbreak;" pad
  | Expr_stmt e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | Launch_stmt (k, trip, args) ->
    Fmt.pf ppf "%slaunch %s<%a>(%a);" pad k pp_expr trip
      (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args

and pp_for_init ppf = function
  | Decl (t, x, Some e) -> Fmt.pf ppf "%a %s = %a;" pp_cty t x pp_expr e
  | Assign (l, e) -> Fmt.pf ppf "%a = %a;" pp_expr l pp_expr e
  | s -> pp_stmt_i 0 ppf s

and pp_for_update ppf = function
  | Assign (l, e) -> Fmt.pf ppf "%a = %a" pp_expr l pp_expr e
  | Op_assign (op, l, e) ->
    Fmt.pf ppf "%a %s= %a" pp_expr l (string_of_binop op) pp_expr e
  | s -> pp_stmt_i 0 ppf s

and pp_block_i ind ppf stmts =
  Fmt.pf ppf "{@.";
  List.iter (fun s -> Fmt.pf ppf "%a@." (pp_stmt_i (ind + 1)) s) stmts;
  Fmt.pf ppf "%s}" (String.make (ind * 2) ' ')

let pp_stmt ppf s = pp_stmt_i 0 ppf s

let pp_block ppf stmts = pp_block_i 0 ppf stmts

let pp_init_item ppf = function
  | I_int i -> Fmt.pf ppf "%Ld" i
  | I_float f -> pp_expr ppf (Float_lit f)
  | I_string s -> Fmt.pf ppf "%S" s
  | I_ident x -> Fmt.string ppf x

let pp_topdecl ppf = function
  | Struct_decl s ->
    Fmt.pf ppf "struct %s {@[<v 2>" s.s_name;
    List.iter
      (fun (name, (_, t)) -> Fmt.pf ppf "@,%a %s;" pp_cty t name)
      s.s_fields;
    Fmt.pf ppf "@]@,};@."
  | Global_decl g ->
    Fmt.pf ppf "%sglobal " (if g.g_readonly then "readonly " else "");
    (match g.g_ty with
    | Arr (elem, dims) ->
      Fmt.pf ppf "%a %s" pp_cty elem g.g_name;
      List.iter (fun d -> Fmt.pf ppf "[%d]" d) dims
    | t -> Fmt.pf ppf "%a %s" pp_cty t g.g_name);
    (match g.g_init with
    | None -> ()
    | Some [ item ] when g.g_ty <> Arr (Char, []) -> begin
      match (g.g_ty, item) with
      | Arr (Char, _), I_string s -> Fmt.pf ppf " = %S" s
      | _, _ -> Fmt.pf ppf " = {%a}" pp_init_item item
    end
    | Some items ->
      Fmt.pf ppf " = {%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_init_item) items);
    Fmt.pf ppf ";@."
  | Func_decl f ->
    Fmt.pf ppf "%s%s %s(%a) %a@."
      (if f.f_kernel then "kernel " else "")
      (match f.f_ret with None -> "void" | Some t -> Fmt.str "%a" pp_cty t)
      f.f_name
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (t, x) ->
           Fmt.pf ppf "%a %s" pp_cty t x))
      f.f_params pp_block f.f_body

let pp_program ppf p = List.iter (fun d -> Fmt.pf ppf "%a@." pp_topdecl d) p

let program_to_string p = Fmt.str "%a" pp_program p
