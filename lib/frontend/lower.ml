(* Lowering from the CGC AST to the word-typed IR.

   All source-level typing is resolved here and then erased: the IR that
   CGCM's passes see has no pointer types, exactly like the LLVM IR the
   paper works on after C's type system has been deemed unreliable.

   Every local variable gets a stack slot ([Alloca] hoisted into the entry
   block); reads and writes go through loads and stores. Virtual registers
   are single-assignment. *)

open Ast
module Ir = Cgcm_ir.Ir
module Builder = Cgcm_ir.Builder
module Verifier = Cgcm_ir.Verifier

exception Sema_error of string

let error fmt = Fmt.kstr (fun s -> raise (Sema_error s)) fmt

let width_of = function
  | Char -> Ir.I8
  | Float -> Ir.F64
  | Int | Ptr _ | Arr _ | Struct _ -> Ir.I64

(* Arrays decay to a flat pointer to their element type. *)
let decay_ty = function Arr (t, _) -> Ptr t | t -> t

let is_float_ty t = decay_ty t = Float

let is_int_like t = match decay_ty t with Int | Char -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Contexts                                                            *)

type fsig = { sig_ret : cty option; sig_params : cty list; sig_kernel : bool }

type ctx = { m : Ir.modul; fsigs : (string, fsig) Hashtbl.t }

type var = {
  v_ty : cty;
  v_addr : Ir.value;  (* address of the slot, or base address for arrays *)
  (* Array-typed parameters (created by the DOALL outliner) receive the
     base pointer by value: [v_addr] is then the spill slot holding it,
     and reads must load it rather than take the slot's address. *)
  v_arr_param : bool;
}

type fctx = {
  b : Builder.t;
  ctx : ctx;
  mutable scopes : (string, var) Hashtbl.t list;
  mutable entry_allocas : Ir.instr list;  (* reversed *)
  ret_ty : cty option;
  in_kernel : bool;
  mutable break_targets : int list;
}

let push_scope fc = fc.scopes <- Hashtbl.create 8 :: fc.scopes

let pop_scope fc =
  match fc.scopes with
  | _ :: rest -> fc.scopes <- rest
  | [] -> assert false

let lookup_var fc name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some v -> Some v
      | None -> go rest)
  in
  go fc.scopes

let declare_var fc name v =
  match fc.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope name then
      error "redeclaration of '%s' in the same scope" name;
    Hashtbl.replace scope name v
  | [] -> assert false

(* A fresh stack slot of [size] bytes, hoisted to the entry block. *)
let fresh_slot fc ~name size =
  let d = Builder.fresh fc.b in
  fc.entry_allocas <-
    Ir.Alloca (d, Ir.imm size, { aname = name; aregistered = false })
    :: fc.entry_allocas;
  Ir.Reg d

(* ------------------------------------------------------------------ *)
(* Builtin (intrinsic) signatures                                      *)

let builtin_sig name : fsig option =
  let f = Float and i = Int in
  let math1 = Some { sig_ret = Some f; sig_params = [ f ]; sig_kernel = false } in
  match name with
  | "malloc" | "calloc" ->
    Some { sig_ret = Some (Ptr Char); sig_params = [ i ]; sig_kernel = false }
  | "realloc" ->
    Some
      { sig_ret = Some (Ptr Char); sig_params = [ Ptr Char; i ];
        sig_kernel = false }
  | "free" ->
    Some { sig_ret = None; sig_params = [ Ptr Char ]; sig_kernel = false }
  | "strlen" ->
    Some { sig_ret = Some i; sig_params = [ Ptr Char ]; sig_kernel = false }
  | "sqrt" | "exp" | "log" | "fabs" | "floor" | "ceil" | "sin" | "cos" | "tan" ->
    math1
  | "pow" ->
    Some { sig_ret = Some f; sig_params = [ f; f ]; sig_kernel = false }
  | "prints" ->
    Some { sig_ret = None; sig_params = [ Ptr Char ]; sig_kernel = false }
  (* Explicit driver API, for manual (Listing 1 style) communication
     management. The returned device pointers are opaque ints on the CPU. *)
  | "gpu_malloc" ->
    Some { sig_ret = Some (Ptr Char); sig_params = [ i ]; sig_kernel = false }
  | "gpu_free" ->
    Some { sig_ret = None; sig_params = [ Ptr Char ]; sig_kernel = false }
  | "gpu_memcpy_h2d" | "gpu_memcpy_d2h" ->
    Some
      { sig_ret = None; sig_params = [ Ptr Char; Ptr Char; i ];
        sig_kernel = false }
  | _ -> None

let find_sig fc name =
  match Hashtbl.find_opt fc.ctx.fsigs name with
  | Some s -> Some s
  | None -> builtin_sig name

(* ------------------------------------------------------------------ *)
(* Pure type computation (no code generation). Needed where the common
   type of two subexpressions must be known before lowering them, e.g.
   the branches of '?:' or print dispatch.                              *)

let rec type_of fc e : cty =
  match e with
  | Int_lit _ -> Int
  | Float_lit _ -> Float
  | Sizeof _ -> Int
  | Ident x -> (
    match lookup_var fc x with
    | Some v -> v.v_ty
    | None -> error "unknown variable '%s'" x)
  | Binary ((Band | Bor | Blt | Ble | Bgt | Bge | Beq | Bne), _, _) -> Int
  | Binary ((Bshl | Bshr), _, _) -> Int
  | Binary ((Badd | Bsub), a, b) -> (
    let ta = decay_ty (type_of fc a) and tb = decay_ty (type_of fc b) in
    match (ta, tb) with
    | Ptr t, _ -> Ptr t
    | _, Ptr t -> Ptr t
    | _ -> if is_float_ty ta || is_float_ty tb then Float else Int)
  | Binary ((Bmul | Bdiv | Brem), a, b) ->
    let ta = type_of fc a and tb = type_of fc b in
    if is_float_ty ta || is_float_ty tb then Float else Int
  | Unary (Uneg, a) -> decay_ty (type_of fc a)
  | Unary (Unot, _) -> Int
  | Cond (_, a, b) ->
    let ta = decay_ty (type_of fc a) and tb = decay_ty (type_of fc b) in
    if is_float_ty ta || is_float_ty tb then Float else ta
  | Index (a, _) -> (
    match type_of fc a with
    | Ptr t -> t
    | Arr (t, _ :: []) -> t
    | Arr (t, _ :: rest) -> Arr (t, rest)
    | t -> error "cannot index a value of type %a" pp_cty t)
  | Deref a -> (
    match decay_ty (type_of fc a) with
    | Ptr t -> t
    | t -> error "cannot dereference a value of type %a" pp_cty t)
  | Field (a, f) -> (
    match type_of fc a with
    | Struct s -> (
      match List.assoc_opt f s.s_fields with
      | Some (_, t) -> t
      | None -> error "struct %s has no field '%s'" s.s_name f)
    | t -> error "'.%s' applied to a value of type %a" f pp_cty t)
  | Arrow (a, f) -> (
    match decay_ty (type_of fc a) with
    | Ptr (Struct s) -> (
      match List.assoc_opt f s.s_fields with
      | Some (_, t) -> t
      | None -> error "struct %s has no field '%s'" s.s_name f)
    | t -> error "'->%s' applied to a value of type %a" f pp_cty t)
  | Addr_of a -> Ptr (type_of fc a)
  | Cast (t, _) -> t
  | Call (name, _) -> (
    match find_sig fc name with
    | Some { sig_ret = Some t; _ } -> t
    | Some { sig_ret = None; _ } ->
      error "void function '%s' used in an expression" name
    | None -> error "call to unknown function '%s'" name)

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)

(* Convert a lowered value to the target class (int-like <-> float). *)
let convert fc v ~from_ ~to_ =
  match (is_float_ty from_, is_float_ty to_) with
  | true, true | false, false -> v
  | false, true -> Builder.unop fc.b Ir.Int_to_float v
  | true, false -> Builder.unop fc.b Ir.Float_to_int v

let rec lower_expr fc e : Ir.value * cty =
  match e with
  | Int_lit i -> (Ir.Imm_int i, Int)
  | Float_lit f -> (Ir.Imm_float f, Float)
  | Sizeof t -> (Ir.imm (sizeof t), Int)
  | Ident x -> (
    match lookup_var fc x with
    | Some { v_ty = Arr (t, dims); v_addr; v_arr_param } ->
      (* arrays evaluate to their base address; array parameters hold the
         base pointer in their spill slot *)
      if v_arr_param then (Builder.load fc.b Ir.I64 v_addr, Arr (t, dims))
      else (v_addr, Arr (t, dims))
    | Some { v_ty = Struct _ as t; v_addr; _ } ->
      (v_addr, t)  (* structs evaluate to their address too *)
    | Some { v_ty; v_addr; v_arr_param = _ } ->
      (Builder.load fc.b (width_of v_ty) v_addr, v_ty)
    | None -> error "unknown variable '%s'" x)
  | Binary (Band, a, b) -> lower_short_circuit fc ~is_and:true a b
  | Binary (Bor, a, b) -> lower_short_circuit fc ~is_and:false a b
  | Binary (op, a, b) -> lower_binary fc op a b
  | Unary (Uneg, a) ->
    let v, t = lower_rvalue fc a in
    if is_float_ty t then (Builder.unop fc.b Ir.Fneg v, Float)
    else (Builder.unop fc.b Ir.Neg v, Int)
  | Unary (Unot, a) ->
    let v, t = lower_rvalue fc a in
    if is_float_ty t then
      (Builder.binop fc.b Ir.Feq v (Ir.Imm_float 0.0), Int)
    else (Builder.binop fc.b Ir.Eq v (Ir.imm 0), Int)
  | Cond (c, a, b) ->
    let ta = decay_ty (type_of fc a) and tb = decay_ty (type_of fc b) in
    let common = if is_float_ty ta || is_float_ty tb then Float else ta in
    let slot = fresh_slot fc ~name:"cond.tmp" 8 in
    let cv, _ = lower_rvalue fc c in
    let then_b = Builder.new_block fc.b in
    let else_b = Builder.new_block fc.b in
    let join_b = Builder.new_block fc.b in
    Builder.cbr fc.b cv then_b else_b;
    Builder.position_at fc.b then_b;
    let va, ta' = lower_rvalue fc a in
    Builder.store fc.b (width_of common) slot (convert fc va ~from_:ta' ~to_:common);
    Builder.br fc.b join_b;
    Builder.position_at fc.b else_b;
    let vb, tb' = lower_rvalue fc b in
    Builder.store fc.b (width_of common) slot (convert fc vb ~from_:tb' ~to_:common);
    Builder.br fc.b join_b;
    Builder.position_at fc.b join_b;
    (Builder.load fc.b (width_of common) slot, common)
  | Index _ | Deref _ | Field _ | Arrow _ ->
    let addr, t = lower_lvalue fc e in
    (match t with
    | Arr _ | Struct _ ->
      (addr, t)  (* aggregates evaluate to their address *)
    | _ -> (Builder.load fc.b (width_of t) addr, t))
  | Addr_of a ->
    let addr, t = lower_lvalue fc a in
    (addr, Ptr t)
  | Cast (t, a) ->
    let v, from_ = lower_rvalue fc a in
    let v =
      match (decay_ty from_, t) with
      | Float, (Int | Char | Ptr _) -> Builder.unop fc.b Ir.Float_to_int v
      | (Int | Char | Ptr _), Float -> Builder.unop fc.b Ir.Int_to_float v
      | _ -> v
    in
    (v, t)
  | Call (name, args) -> lower_call fc name args

(* Rvalue: like lower_expr but arrays decay to pointers. *)
and lower_rvalue fc e =
  let v, t = lower_expr fc e in
  (v, decay_ty t)

and lower_short_circuit fc ~is_and a b =
  let slot = fresh_slot fc ~name:"bool.tmp" 8 in
  let va, ta = lower_rvalue fc a in
  let va =
    if is_float_ty ta then Builder.binop fc.b Ir.Fne va (Ir.Imm_float 0.0)
    else Builder.binop fc.b Ir.Ne va (Ir.imm 0)
  in
  Builder.store fc.b Ir.I64 slot va;
  let more_b = Builder.new_block fc.b in
  let join_b = Builder.new_block fc.b in
  if is_and then Builder.cbr fc.b va more_b join_b
  else Builder.cbr fc.b va join_b more_b;
  Builder.position_at fc.b more_b;
  let vb, tb = lower_rvalue fc b in
  let vb =
    if is_float_ty tb then Builder.binop fc.b Ir.Fne vb (Ir.Imm_float 0.0)
    else Builder.binop fc.b Ir.Ne vb (Ir.imm 0)
  in
  Builder.store fc.b Ir.I64 slot vb;
  Builder.br fc.b join_b;
  Builder.position_at fc.b join_b;
  (Builder.load fc.b Ir.I64 slot, Int)

and lower_binary fc op a b =
  let va, ta = lower_rvalue fc a in
  let vb, tb = lower_rvalue fc b in
  let open Ir in
  match (op, ta, tb) with
  (* pointer arithmetic: scale by element size *)
  | Badd, Ptr t, _ when is_int_like tb ->
    let scaled = Builder.binop fc.b Mul vb (imm (sizeof t)) in
    (Builder.binop fc.b Add va scaled, Ptr t)
  | Badd, _, Ptr t when is_int_like ta ->
    let scaled = Builder.binop fc.b Mul va (imm (sizeof t)) in
    (Builder.binop fc.b Add vb scaled, Ptr t)
  | Bsub, Ptr t, _ when is_int_like tb ->
    let scaled = Builder.binop fc.b Mul vb (imm (sizeof t)) in
    (Builder.binop fc.b Sub va scaled, Ptr t)
  | Bsub, Ptr _, Ptr _ -> error "pointer difference is not supported in CGC"
  | (Badd | Bsub | Bmul | Bdiv | Brem | Bshl | Bshr), _, _
    when is_float_ty ta || is_float_ty tb ->
    let va = convert fc va ~from_:ta ~to_:Float in
    let vb = convert fc vb ~from_:tb ~to_:Float in
    let fop =
      match op with
      | Badd -> Fadd
      | Bsub -> Fsub
      | Bmul -> Fmul
      | Bdiv -> Fdiv
      | Brem -> error "'%%' is not defined on floats"
      | Bshl | Bshr ->
        error "'%s' is not defined on floats" (Ast.string_of_binop op)
      | _ -> assert false
    in
    (Builder.binop fc.b fop va vb, Float)
  | (Badd | Bsub | Bmul | Bdiv | Brem | Bshl | Bshr), _, _ ->
    let iop =
      match op with
      | Badd -> Add
      | Bsub -> Sub
      | Bmul -> Mul
      | Bdiv -> Div
      | Brem -> Rem
      | Bshl -> Shl
      | Bshr -> Shr
      | _ -> assert false
    in
    (Builder.binop fc.b iop va vb, Int)
  | (Blt | Ble | Bgt | Bge | Beq | Bne), _, _ ->
    if is_float_ty ta || is_float_ty tb then begin
      let va = convert fc va ~from_:ta ~to_:Float in
      let vb = convert fc vb ~from_:tb ~to_:Float in
      let fop =
        match op with
        | Blt -> Flt | Ble -> Fle | Bgt -> Fgt | Bge -> Fge
        | Beq -> Feq | Bne -> Fne
        | _ -> assert false
      in
      (Builder.binop fc.b fop va vb, Int)
    end
    else begin
      let iop =
        match op with
        | Blt -> Lt | Ble -> Le | Bgt -> Gt | Bge -> Ge | Beq -> Eq | Bne -> Ne
        | _ -> assert false
      in
      (Builder.binop fc.b iop va vb, Int)
    end
  | (Band | Bor), _, _ -> assert false  (* handled by lower_short_circuit *)

(* Lvalues: return (address, pointee type). *)
and lower_lvalue fc e : Ir.value * cty =
  match e with
  | Ident x -> (
    match lookup_var fc x with
    | Some { v_ty = Arr _ as t; _ } ->
      error "array '%s' of type %a is not assignable" x pp_cty t
    | Some { v_ty = Struct _ as t; v_addr; _ } ->
      (* addressable; whole-struct assignment is rejected by
         check_assignable *)
      (v_addr, t)
    | Some { v_ty; v_addr; v_arr_param = _ } -> (v_addr, v_ty)
    | None -> error "unknown variable '%s'" x)
  | Deref a -> (
    let v, t = lower_rvalue fc a in
    match t with
    | Ptr t -> (v, t)
    | _ -> error "cannot dereference a value of type %a" pp_cty t)
  | Index (a, i) -> (
    let base, t = lower_expr fc a in
    let iv, it = lower_rvalue fc i in
    if not (is_int_like it) then error "array index must be an integer";
    match t with
    | Ptr elem ->
      let off = Builder.binop fc.b Ir.Mul iv (Ir.imm (sizeof elem)) in
      (Builder.binop fc.b Ir.Add base off, elem)
    | Arr (elem, [ _ ]) ->
      let off = Builder.binop fc.b Ir.Mul iv (Ir.imm (sizeof elem)) in
      (Builder.binop fc.b Ir.Add base off, elem)
    | Arr (elem, _ :: rest) ->
      let stride = sizeof (Arr (elem, rest)) in
      let off = Builder.binop fc.b Ir.Mul iv (Ir.imm stride) in
      (Builder.binop fc.b Ir.Add base off, Arr (elem, rest))
    | _ -> error "cannot index a value of type %a" pp_cty t)
  | Field (a, f) -> (
    (* the base must be an addressable struct: a variable, an element of
       an array of structs, or a nested field *)
    let addr, t = lower_lvalue_or_aggregate fc a in
    match t with
    | Struct s -> (
      match List.assoc_opt f s.s_fields with
      | Some (off, fty) -> (Builder.binop fc.b Ir.Add addr (Ir.imm off), fty)
      | None -> error "struct %s has no field '%s'" s.s_name f)
    | t -> error "'.%s' applied to a value of type %a" f pp_cty t)
  | Arrow (a, f) -> (
    let v, t = lower_rvalue fc a in
    match t with
    | Ptr (Struct s) -> (
      match List.assoc_opt f s.s_fields with
      | Some (off, fty) -> (Builder.binop fc.b Ir.Add v (Ir.imm off), fty)
      | None -> error "struct %s has no field '%s'" s.s_name f)
    | t -> error "'->%s' applied to a value of type %a" f pp_cty t)
  | _ -> error "expression is not an lvalue"

(* Address of an aggregate-valued expression: struct variables evaluate to
   their slot address, array elements of struct type to the element
   address. *)
and lower_lvalue_or_aggregate fc e : Ir.value * cty =
  match e with
  | Ident x -> (
    match lookup_var fc x with
    | Some { v_ty = Struct _ as t; v_addr; _ } -> (v_addr, t)
    | _ -> lower_lvalue fc e)
  | _ -> lower_lvalue fc e

and lower_call fc name args : Ir.value * cty =
  (* print is polymorphic: dispatch on argument type *)
  if name = "print" then begin
    match args with
    | [ a ] ->
      let v, t = lower_rvalue fc a in
      let intr = if is_float_ty t then "print_f64" else "print_i64" in
      Builder.call_void fc.b intr [ v ];
      (Ir.imm 0, Int)
    | _ -> error "print takes exactly one argument"
  end
  else begin
    match find_sig fc name with
    | None -> error "call to unknown function '%s'" name
    | Some s ->
      if s.sig_kernel then
        error "kernel '%s' must be invoked with 'launch', not called" name;
      if List.length args <> List.length s.sig_params then
        error "'%s' expects %d arguments, got %d" name
          (List.length s.sig_params) (List.length args);
      if fc.in_kernel && not (Ir.Intrinsic.is_pure_math name) then
        error "kernel code may only call math intrinsics, not '%s'" name;
      let lowered =
        List.map2
          (fun param_ty arg ->
            let v, t = lower_rvalue fc arg in
            match (param_ty, t) with
            | p, a when is_float_ty p <> is_float_ty a ->
              convert fc v ~from_:a ~to_:p
            | _ -> v)
          s.sig_params args
      in
      (match s.sig_ret with
      | Some rt -> (Builder.call fc.b name lowered, rt)
      | None ->
        Builder.call_void fc.b name lowered;
        (Ir.imm 0, Int))
  end

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)

let rec lower_stmt fc (s : stmt) : unit =
  match s with
  | Decl (t, name, init) -> begin
    match t with
    | Arr (elem, dims) ->
      if List.exists (fun d -> d <= 0) dims then
        error "local array '%s' needs positive dimensions" name;
      let size = sizeof (Arr (elem, dims)) in
      let slot = fresh_slot fc ~name size in
      declare_var fc name { v_ty = t; v_addr = slot; v_arr_param = false }
    | Struct _ ->
      if init <> None then
        error "struct '%s' cannot have a scalar initialiser" name;
      let slot = fresh_slot fc ~name (sizeof t) in
      declare_var fc name { v_ty = t; v_addr = slot; v_arr_param = false }
    | _ ->
      let slot = fresh_slot fc ~name 8 in
      declare_var fc name { v_ty = t; v_addr = slot; v_arr_param = false };
      (match init with
      | Some e ->
        let v, et = lower_rvalue fc e in
        check_assignable t et;
        Builder.store fc.b (width_of t) slot (convert fc v ~from_:et ~to_:t)
      | None -> ())
  end
  | Assign (lhs, rhs) ->
    let addr, t = lower_lvalue fc lhs in
    let v, et = lower_rvalue fc rhs in
    check_assignable t et;
    check_kernel_pointer_store fc lhs t;
    Builder.store fc.b (width_of t) addr (convert fc v ~from_:et ~to_:t)
  | Op_assign (op, lhs, rhs) ->
    let addr, t = lower_lvalue fc lhs in
    let cur = Builder.load fc.b (width_of t) addr in
    let v, et = lower_rvalue fc rhs in
    let result, rt =
      lower_binary_values fc op (cur, decay_ty t) (v, et)
    in
    Builder.store fc.b (width_of t) addr (convert fc result ~from_:rt ~to_:t)
  | If (c, then_, else_) ->
    let cv, _ = lower_rvalue fc c in
    let then_b = Builder.new_block fc.b in
    let join_b = Builder.new_block fc.b in
    let else_b =
      if else_ = [] then join_b else Builder.new_block fc.b
    in
    Builder.cbr fc.b cv then_b else_b;
    Builder.position_at fc.b then_b;
    lower_block fc then_;
    Builder.br fc.b join_b;
    if else_ <> [] then begin
      Builder.position_at fc.b else_b;
      lower_block fc else_;
      Builder.br fc.b join_b
    end;
    Builder.position_at fc.b join_b
  | While (c, body) ->
    let header = Builder.new_block fc.b in
    let body_b = Builder.new_block fc.b in
    let exit_b = Builder.new_block fc.b in
    Builder.br fc.b header;
    Builder.position_at fc.b header;
    let cv, _ = lower_rvalue fc c in
    Builder.cbr fc.b cv body_b exit_b;
    Builder.position_at fc.b body_b;
    fc.break_targets <- exit_b :: fc.break_targets;
    lower_block fc body;
    fc.break_targets <- List.tl fc.break_targets;
    Builder.br fc.b header;
    Builder.position_at fc.b exit_b
  | For { parallel; init; cond; update; body } ->
    if parallel then
      error "a 'parallel for' survived to lowering; run the DOALL outliner first";
    push_scope fc;  (* the induction variable scopes over the loop *)
    Option.iter (lower_stmt fc) init;
    let header = Builder.new_block fc.b in
    let body_b = Builder.new_block fc.b in
    let latch = Builder.new_block fc.b in
    let exit_b = Builder.new_block fc.b in
    Builder.br fc.b header;
    Builder.position_at fc.b header;
    (match cond with
    | Some c ->
      let cv, _ = lower_rvalue fc c in
      Builder.cbr fc.b cv body_b exit_b
    | None -> Builder.br fc.b body_b);
    Builder.position_at fc.b body_b;
    fc.break_targets <- exit_b :: fc.break_targets;
    lower_block fc body;
    fc.break_targets <- List.tl fc.break_targets;
    Builder.br fc.b latch;
    Builder.position_at fc.b latch;
    Option.iter (lower_stmt fc) update;
    Builder.br fc.b header;
    Builder.position_at fc.b exit_b;
    pop_scope fc
  | Return e -> begin
    (match (e, fc.ret_ty) with
    | None, None -> Builder.ret fc.b None
    | Some e, Some rt ->
      let v, t = lower_rvalue fc e in
      Builder.ret fc.b (Some (convert fc v ~from_:t ~to_:rt))
    | Some _, None -> error "void function returns a value"
    | None, Some _ -> error "non-void function returns without a value");
    (* continue lowering any trailing (dead) code into a fresh block *)
    let dead = Builder.new_block fc.b in
    Builder.position_at fc.b dead
  end
  | Break -> begin
    match fc.break_targets with
    | target :: _ ->
      Builder.br fc.b target;
      let dead = Builder.new_block fc.b in
      Builder.position_at fc.b dead
    | [] -> error "'break' outside of a loop"
  end
  | Expr_stmt e -> ignore (lower_expr fc e)
  | Launch_stmt (kernel, trip, args) -> begin
    if fc.in_kernel then error "kernels cannot launch kernels";
    match Hashtbl.find_opt fc.ctx.fsigs kernel with
    | Some { sig_kernel = true; sig_params; _ } ->
      (* parameter 0 is the implicit thread index *)
      let expected = List.length sig_params - 1 in
      if List.length args <> expected then
        error "kernel '%s' expects %d launch arguments, got %d" kernel expected
          (List.length args);
      let tv, tt = lower_rvalue fc trip in
      if not (is_int_like tt) then error "launch trip count must be an integer";
      let lowered =
        List.map2
          (fun param_ty arg ->
            let v, t = lower_rvalue fc arg in
            if is_float_ty param_ty <> is_float_ty t then
              convert fc v ~from_:t ~to_:param_ty
            else v)
          (List.tl sig_params) args
      in
      Builder.launch fc.b ~kernel ~trip:tv ~args:lowered
    | Some _ -> error "'%s' is not a kernel" kernel
    | None -> error "launch of unknown kernel '%s'" kernel
  end

and lower_binary_values fc op (va, ta) (vb, tb) : Ir.value * cty =
  (* binary op on already-lowered values (for op=); reuses lower_binary's
     logic through a tiny adapter *)
  let open Ir in
  if (match op with Badd | Bsub -> true | _ -> false)
     && match ta with Ptr _ -> true | _ -> false
  then begin
    match ta with
    | Ptr t ->
      let scaled = Builder.binop fc.b Mul vb (imm (sizeof t)) in
      let iop = if op = Badd then Add else Sub in
      (Builder.binop fc.b iop va scaled, Ptr t)
    | _ -> assert false
  end
  else if is_float_ty ta || is_float_ty tb then begin
    let va = convert fc va ~from_:ta ~to_:Float in
    let vb = convert fc vb ~from_:tb ~to_:Float in
    let fop =
      match op with
      | Badd -> Fadd | Bsub -> Fsub | Bmul -> Fmul | Bdiv -> Fdiv
      | _ -> error "unsupported compound assignment on floats"
    in
    (Builder.binop fc.b fop va vb, Float)
  end
  else begin
    let iop =
      match op with
      | Badd -> Add | Bsub -> Sub | Bmul -> Mul | Bdiv -> Div | Brem -> Rem
      | _ -> error "unsupported compound assignment"
    in
    (Builder.binop fc.b iop va vb, Int)
  end

and check_assignable target source =
  match (decay_ty target, decay_ty source) with
  | Struct _, _ | _, Struct _ ->
    error "structs are assigned field by field, not as a whole"
  | (Int | Char), (Int | Char) -> ()
  | Float, (Int | Char | Float) -> ()
  | (Int | Char), Float -> ()  (* implicit truncation, as in C *)
  | Ptr _, Ptr _ -> ()  (* weak typing: any pointer converts *)
  | Ptr _, (Int | Char) -> ()  (* ints convert to pointers, as in C *)
  | (Int | Char), Ptr _ -> ()
  | a, b -> error "cannot assign %a to %a" pp_cty b pp_cty a

(* The paper's restriction: GPU functions must not store pointers into
   memory (other than the kernel's own scalar locals, which live in
   registers/private slots and are never mapped). *)
and check_kernel_pointer_store fc lhs t =
  if fc.in_kernel then begin
    match (lhs, t) with
    | (Deref _ | Index _), Ptr _ ->
      error "kernels may not store pointers into memory (CGCM restriction)"
    | _ -> ()
  end

and lower_block fc stmts =
  push_scope fc;
  List.iter (lower_stmt fc) stmts;
  pop_scope fc

(* ------------------------------------------------------------------ *)
(* Functions, globals, programs                                        *)

(* Lower one function; [globals_scope] is the outermost variable scope. *)
let lower_func ctx globals_scope (fd : func_decl) : Ir.func =
  List.iter
    (fun (t, _) ->
      if indirection t > 2 then
        error "%s: CGCM supports at most two levels of indirection" fd.f_name;
      match t with
      | Struct _ ->
        error "%s: pass structs by pointer, not by value" fd.f_name
      | _ -> ())
    fd.f_params;
  if fd.f_kernel then begin
    match fd.f_params with
    | (Int, _) :: _ -> ()
    | _ ->
      error "kernel '%s' must take the thread index as first parameter" fd.f_name
  end;
  let b =
    Builder.create ~name:fd.f_name
      ~nargs:(List.length fd.f_params)
      ~kind:(if fd.f_kernel then Ir.Kernel else Ir.Cpu)
  in
  let fc =
    {
      b;
      ctx;
      scopes = [ globals_scope ];
      entry_allocas = [];
      ret_ty = fd.f_ret;
      in_kernel = fd.f_kernel;
      break_targets = [];
    }
  in
  push_scope fc;
  (* Parameters are copied into slots so they are addressable/assignable. *)
  let body_start = Builder.new_block b in
  Builder.position_at b body_start;
  let param_stores =
    List.mapi
      (fun i (t, name) ->
        let slot = fresh_slot fc ~name 8 in
        declare_var fc name
          {
            v_ty = t;
            v_addr = slot;
            v_arr_param = (match t with Arr _ -> true | _ -> false);
          };
        Ir.Store (width_of t, slot, Ir.Reg i))
      fd.f_params
  in
  lower_block fc fd.f_body;
  (* Fall-through return. *)
  (match fd.f_ret with
  | None -> Builder.ret b None
  | Some _ -> Builder.ret b (Some (Ir.imm 0)));
  pop_scope fc;
  let f = Builder.finish b in
  (* Entry block: hoisted allocas, parameter spills, jump to the body. *)
  f.Ir.blocks.(0).Ir.instrs <- List.rev fc.entry_allocas @ param_stores;
  f.Ir.blocks.(0).Ir.term <- Ir.Br body_start;
  f

let lower_global (g : global_decl) : Ir.global =
  let name = g.g_name in
  let fixup_dims t init =
    (* 'char s[] = "lit"': size inferred from the initialiser *)
    match (t, init) with
    | Arr (Char, [ 0 ]), Some [ I_string s ] -> Arr (Char, [ String.length s + 1 ])
    | Arr (elem, dims), _ when List.exists (fun d -> d <= 0) dims -> (
      match init with
      | Some items -> Arr (elem, [ List.length items ])
      | None -> error "global '%s' has an unsized dimension and no initialiser" name)
    | t, _ -> t
  in
  let t = fixup_dims g.g_ty g.g_init in
  let size = sizeof t in
  let ginit =
    match g.g_init with
    | None -> Ir.Zeroed
    | Some items -> (
      let elem = match t with Arr (e, _) -> e | e -> e in
      let count = size / max 1 (sizeof elem) in
      match elem with
      | Char -> (
        match items with
        | [ I_string s ] -> Ir.Str s
        | _ -> error "global char array '%s' must be initialised by a string" name)
      | Int -> (
        let a = Array.make count 0L in
        List.iteri
          (fun i item ->
            if i >= count then error "too many initialisers for '%s'" name;
            match item with
            | I_int v -> a.(i) <- v
            | _ -> error "non-integer initialiser for '%s'" name)
          items;
        Ir.I64s a)
      | Float -> (
        let a = Array.make count 0.0 in
        List.iteri
          (fun i item ->
            if i >= count then error "too many initialisers for '%s'" name;
            match item with
            | I_float v -> a.(i) <- v
            | I_int v -> a.(i) <- Int64.to_float v
            | _ -> error "non-float initialiser for '%s'" name)
          items;
        Ir.F64s a)
      | Ptr _ -> (
        let a = Array.make count "" in
        List.iteri
          (fun i item ->
            if i >= count then error "too many initialisers for '%s'" name;
            match item with
            | I_ident other -> a.(i) <- other
            | I_int 0L -> a.(i) <- ""
            | _ -> error "pointer global '%s' must be initialised by names" name)
          items;
        Ir.Ptrs a)
      | Arr _ -> error "nested array initialisers are not supported"
      | Struct _ -> error "struct globals cannot have initialisers")
  in
  { Ir.gname = name; gsize = size; ginit; gread_only = g.g_readonly }

(* Lower a full (already DOALL-outlined) program to an IR module. *)
let lower_program (p : program) : Ir.modul =
  let m = { Ir.globals = []; funcs = [] } in
  let fsigs = Hashtbl.create 16 in
  let ctx = { m; fsigs } in
  let globals_scope = Hashtbl.create 16 in
  List.iter
    (function
      | Struct_decl _ -> ()  (* layouts are embedded in the types *)
      | Global_decl g ->
        if Hashtbl.mem globals_scope g.g_name then
          error "duplicate global '%s'" g.g_name;
        let ir_g = lower_global g in
        (* the scope records the post-fixup type *)
        let t =
          match (g.g_ty, ir_g.Ir.ginit) with
          | Arr (Char, [ d ]), Ir.Str s when d <= 0 ->
            Arr (Char, [ String.length s + 1 ])
          | Arr (e, dims), _ when List.exists (fun d -> d <= 0) dims ->
            Arr (e, [ ir_g.Ir.gsize / max 1 (sizeof e) ])
          | t, _ -> t
        in
        Hashtbl.replace globals_scope g.g_name
          { v_ty = t; v_addr = Ir.Global g.g_name; v_arr_param = false };
        m.Ir.globals <- m.Ir.globals @ [ ir_g ]
      | Func_decl f ->
        if Hashtbl.mem fsigs f.f_name then
          error "duplicate function '%s'" f.f_name;
        if builtin_sig f.f_name <> None || f.f_name = "print" then
          error "'%s' shadows a builtin" f.f_name;
        Hashtbl.replace fsigs f.f_name
          {
            sig_ret = f.f_ret;
            sig_params = List.map fst f.f_params;
            sig_kernel = f.f_kernel;
          })
    p;
  (match Hashtbl.find_opt fsigs "main" with
  | Some { sig_ret = Some Int; sig_params = []; sig_kernel = false } -> ()
  | Some _ -> error "main must be 'int main()'"
  | None -> error "program has no main function");
  List.iter
    (function
      | Global_decl _ | Struct_decl _ -> ()
      | Func_decl fd -> Ir.add_func m (lower_func ctx globals_scope fd))
    p;
  Verifier.verify_modul m;
  m
