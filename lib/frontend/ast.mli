(** Abstract syntax of CGC, the mini-C source language of this
    reproduction.

    CGC deliberately keeps the C features that make CPU-GPU communication
    hard — pointer arithmetic, aliasing, casts, jagged arrays, globals,
    structs (an array of structures is one allocation unit), up to two
    levels of indirection — while dropping what the benchmarks don't need
    (unions, varargs, goto). *)

type cty =
  | Int  (** 64-bit *)
  | Float  (** 64-bit; [double] is an alias *)
  | Char  (** 1 byte in memory, widened to Int in registers *)
  | Ptr of cty
  | Arr of cty * int list  (** element type and constant dimensions *)
  | Struct of sdef
      (** the layout is embedded so [sizeof] needs no environment; the
          parser computes it when the struct is declared (definition must
          precede use, so recursive struct values are impossible — use
          pointers) *)

and sdef = {
  s_name : string;
  s_size : int;  (** bytes *)
  s_fields : (string * (int * cty)) list;  (** field -> offset, type *)
}

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Bshl | Bshr  (** integer-only shifts; shift count is masked mod 64 *)
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Band | Bor  (** short-circuit *)

type unop = Uneg | Unot

type expr =
  | Int_lit of int64
  | Float_lit of float
  | Ident of string
  | Binary of binop * expr * expr
  | Unary of unop * expr
  | Cond of expr * expr * expr  (** c ? a : b *)
  | Index of expr * expr
  | Deref of expr
  | Field of expr * string  (** s.f *)
  | Arrow of expr * string  (** p->f *)
  | Addr_of of expr
  | Call of string * expr list
  | Cast of cty * expr
  | Sizeof of cty

type stmt =
  | Decl of cty * string * expr option
  | Assign of expr * expr  (** lvalue = expr *)
  | Op_assign of binop * expr * expr  (** lvalue op= expr; also ++/-- *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of for_info
  | Return of expr option
  | Break
  | Expr_stmt of expr
  | Launch_stmt of string * expr * expr list
      (** kernel, trip count, launch arguments (the kernel's implicit
          first parameter is the thread index) *)

and for_info = {
  parallel : bool;  (** manual DOALL annotation *)
  init : stmt option;
  cond : expr option;
  update : stmt option;
  body : stmt list;
}

type init_item =
  | I_int of int64
  | I_float of float
  | I_string of string
  | I_ident of string  (** address of another global *)

type global_decl = {
  g_readonly : bool;
      (** read-only globals are never copied device-to-host *)
  g_ty : cty;
  g_name : string;
  g_init : init_item list option;
}

type func_decl = {
  f_kernel : bool;  (** GPU function; first parameter is the thread id *)
  f_ret : cty option;  (** None = void *)
  f_name : string;
  f_params : (cty * string) list;
  f_body : stmt list;
}

type topdecl =
  | Global_decl of global_decl
  | Func_decl of func_decl
  | Struct_decl of sdef

type program = topdecl list

(** {2 Layout} *)

val sizeof : cty -> int

val layout_fields : (cty * string) list -> int * (string * (int * cty)) list
(** [(size, fields-with-offsets)]: chars pack with byte alignment,
    everything else aligns to 8 bytes. *)

val indirection : cty -> int
(** Pointer depth; CGCM supports at most 2 on GPU-visible data. *)

(** {2 Pretty-printing} — output re-parses to an equal AST (the
    round-trip property tests rely on it). *)

val pp_cty : Format.formatter -> cty -> unit
val string_of_binop : binop -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_topdecl : Format.formatter -> topdecl -> unit
val pp_program : Format.formatter -> program -> unit
val program_to_string : program -> string
