(* Hand-written lexer for CGC. Produces a token array with positions so the
   recursive-descent parser can backtrack cheaply. *)

type pos = { line : int; col : int }

exception Lex_error of string * pos

type lexed = { tok : Token.t; pos : pos }

let error pos fmt = Fmt.kstr (fun s -> raise (Lex_error (s, pos))) fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : lexed array =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let pos i = { line = !line; col = i - !bol + 1 } in
  let emit p t = toks := { tok = t; pos = p } :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let p = pos !i in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while not !closed do
        if !i + 1 >= n then error p "unterminated comment";
        if src.[!i] = '\n' then begin
          incr line;
          bol := !i + 1
        end;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let is_float = ref false in
      if !i < n && src.[!i] = '.' then begin
        is_float := true;
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        is_float := true;
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      let text = String.sub src start (!i - start) in
      if !is_float then emit p (FLOAT_LIT (float_of_string text))
      else begin
        match Int64.of_string_opt text with
        | Some v -> emit p (INT_LIT v)
        | None -> error p "bad integer literal %s" text
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let text = String.sub src start (!i - start) in
      match Token.keyword_of_string text with
      | Some kw -> emit p kw
      | None -> emit p (IDENT text)
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then error p "unterminated string literal";
        match src.[!i] with
        | '"' ->
          closed := true;
          incr i
        | '\\' ->
          if !i + 1 >= n then error p "unterminated escape";
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '0' -> Buffer.add_char buf '\000'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | e -> error p "unknown escape \\%c" e);
          i := !i + 2
        | '\n' -> error p "newline in string literal"
        | ch ->
          Buffer.add_char buf ch;
          incr i
      done;
      emit p (STRING_LIT (Buffer.contents buf))
    end
    else begin
      let two t =
        emit p t;
        i := !i + 2
      in
      let one t =
        emit p t;
        incr i
      in
      let nxt = if !i + 1 < n then Some src.[!i + 1] else None in
      match (c, nxt) with
      | '-', Some '>' -> two ARROW
      | '&', Some '&' -> two AMPAMP
      | '|', Some '|' -> two BARBAR
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '<', Some '<' -> two SHL
      | '>', Some '>' -> two SHR
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NE
      | '+', Some '=' -> two PLUSEQ
      | '-', Some '=' -> two MINUSEQ
      | '*', Some '=' -> two STAREQ
      | '/', Some '=' -> two SLASHEQ
      | '+', Some '+' -> two PLUSPLUS
      | '-', Some '-' -> two MINUSMINUS
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '?', _ -> one QUESTION
      | '.', _ -> one DOT
      | ':', _ -> one COLON
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '&', _ -> one AMP
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '=', _ -> one ASSIGN
      | '!', _ -> one BANG
      | _ -> error p "unexpected character %C" c
    end
  done;
  emit (pos !i) EOF;
  Array.of_list (List.rev !toks)
