(** The CGCM run-time library (Section 3 of the paper).

    Tracks {e allocation units} — contiguous regions allocated as a single
    unit (heap blocks, globals, escaping stack variables) — in a
    self-balancing tree map indexed by base address, and translates CPU
    pointers into equivalent GPU pointers:

    - {!map} copies the unit to the device if needed, bumps its reference
      count, and returns the translated pointer (Algorithm 1);
    - {!unmap} copies the unit back to the host unless the host copy is
      already current in this epoch or the unit is read-only
      (Algorithm 2);
    - {!release} drops a reference and frees device memory at zero
      (Algorithm 3).

    The [_array] variants operate on doubly indirect pointers: each CPU
    pointer stored in the unit is translated into a new device-side
    array, which is what the kernel receives.

    An epoch counter increments at every kernel launch ({!bump_epoch});
    unmap copies a unit at most once per epoch, because only kernels
    mutate device memory.

    The run-time is also the recovery layer for a fallible driver: on
    device OOM it evicts zero-refcount resident units (writing dirty
    ones back first) and retries the allocation; on transfer failure it
    retries with backoff accounted on the device timeline. Failures
    that survive recovery raise {!Runtime_error} with the structured
    taxonomy of {!Cgcm_support.Errors}. *)

exception Runtime_error of Cgcm_support.Errors.runtime_error

type alloc_info = {
  base : int;
  size : int;
  is_global : bool;
  global_name : string option;
  read_only : bool;
  from_alloca : bool;
  mutable devptr : int option;  (** device copy, when resident *)
  mutable refcount : int;
  mutable epoch : int;  (** last epoch in which the host copy was updated *)
  mutable arr_shadow : int option;
      (** device array of translated pointers (mapArray) *)
  mutable arr_refcount : int;
  mutable arr_elems : int list;
      (** host pointers translated by the last mapArray *)
  mutable evicted : bool;
      (** the unit lost its device copy to memory pressure at least once *)
}

type stats = {
  mutable map_calls : int;
  mutable unmap_calls : int;
  mutable release_calls : int;
  mutable map_array_calls : int;
  mutable skipped_unmaps : int;  (** epoch-optimisation hits *)
  mutable skipped_copies : int;  (** map found the unit already resident *)
  mutable partial_copies : int;  (** transfers narrowed to dirty spans *)
  mutable bytes_saved : int;
      (** unit bytes not moved thanks to dirty-span tracking *)
  mutable evictions : int;
      (** units whose device copy was revoked under memory pressure *)
  mutable retries : int;  (** device calls re-attempted after a fault *)
  mutable cpu_fallbacks : int;
      (** kernel launches degraded to CPU execution *)
}

type t = {
  host : Cgcm_memory.Memspace.t;
  dev : Cgcm_gpusim.Device.t;
  mutable info : alloc_info Cgcm_support.Avl_map.Int.t;
  mutable global_epoch : int;
  stats : stats;
  dirty_spans : bool;
      (** transfer only dirty spans instead of whole allocation units;
          off reproduces the paper's whole-unit protocol exactly *)
  paranoid : bool;
      (** run {!check_invariants} after every run-time call *)
  globals_by_name : (string, int) Hashtbl.t;
  mutable now : float;
      (** wall-clock hook: the interpreter threads its clock through the
          run-time so transfers and driver calls are costed *)
}

val create :
  ?dirty_spans:bool ->
  ?paranoid:bool ->
  host:Cgcm_memory.Memspace.t ->
  dev:Cgcm_gpusim.Device.t ->
  unit ->
  t
(** [dirty_spans] defaults to [true]; [paranoid] to [false]. *)

(** {2 Registration} *)

val register_heap : t -> base:int -> size:int -> unit
(** The wrapper around [malloc]/[calloc]/[realloc]: every heap allocation
    enters the allocation map. *)

val unregister_heap : t -> base:int -> unit
(** The wrapper around [free]. Raises if the unit is still mapped. *)

val declare_global :
  t -> name:string -> base:int -> size:int -> read_only:bool -> unit
(** [declareGlobal]: called once per global before [main]. Also declares
    the matching named region to the device module. *)

val declare_alloca : t -> base:int -> size:int -> unit
(** [declareAlloca]: registration of an escaping stack variable. *)

val expire_alloca : t -> base:int -> unit
(** Registration expiry at scope exit. Raises if the unit is still
    mapped (its device copy would dangle). *)

(** {2 The mapping interface (Table 2 of the paper)} *)

val map : t -> int -> int
(** [map t ptr] returns the equivalent device pointer, copying the
    allocation unit host-to-device when its reference count was zero.
    Interior offsets are preserved: [map (p + k) = map p + k] within a
    unit. On device OOM, zero-refcount resident units are evicted (dirty
    ones written back first) and the allocation retried. *)

val unmap : t -> int -> unit
(** [unmap t ptr] updates the host copy from the device, at most once per
    epoch, never for read-only units. *)

val release : t -> int -> unit
(** [release t ptr] drops a reference; at zero the device copy of a
    non-global unit is freed. Raises on underflow. *)

val map_array : t -> int -> int
(** [mapArray]: translate every pointer stored in the unit (mapping each
    pointee), publish the translated array on the device, return its
    address. For a global, the translated array lands in the device copy
    of the global itself (kernels reach it via [cuModuleGetGlobal]). *)

val unmap_array : t -> int -> unit
(** [unmapArray]: unmap every pointee translated by the matching
    {!map_array}. The host pointer array itself is untouched (kernels
    cannot store pointers). *)

val release_array : t -> int -> unit
(** [releaseArray]: release every pointee and drop the shadow array's
    reference; at zero the shadow is freed. *)

val bump_epoch : t -> unit
(** Called at every kernel launch. *)

(** {2 Recovery hooks (fault injection, memory pressure)} *)

val evict_one : t -> bool
(** Evict one zero-refcount resident unit: write back its dirty data,
    revoke its device residence (for a module global, via
    [Device.forget_global], invalidating cached addresses). False when
    nothing is evictable. *)

val device_global_addr : t -> string -> int
(** Kernel-side resolution of a module global with the same OOM recovery
    as {!map}; a global re-allocated after an eviction is refilled from
    the written-back host copy, making eviction invisible to kernels. *)

val note_cpu_fallback : t -> unit
(** The interpreter reports a kernel launch degraded to CPU execution. *)

(** {2 Invariants and diagnostics} *)

val check_invariants : t -> unit
(** Whole-state consistency check: refcounts non-negative, epochs within
    [\[0, global_epoch\]], every devptr/shadow backed by a live device
    block of sufficient size, shadow-array elements registered and
    referenced while their parent shadow is live, and no orphaned
    device blocks. Raises
    {!Runtime_error} on the first violation. Runs automatically after
    every run-time call when [paranoid] is set. *)

type leak_report = {
  resident_nonglobal : int;
      (** non-global units still device-resident (a leak at exit) *)
  resident_global : int;
      (** module globals still device-resident (legitimate) *)
  refcount_sum : int;
  leaked_dev_blocks : int;
      (** live driver-heap blocks on the device (a leak at exit) *)
  leaked_dev_bytes : int;
}

val leak_report : t -> leak_report

(** {2 Introspection (tests, reports)} *)

val lookup_unit : t -> int -> alloc_info
val resident_units : t -> int
val total_refcount : t -> int
val unit_count : t -> int
