(* The CGCM run-time library (Section 3 of the paper).

   The library tracks *allocation units* — contiguous regions allocated as
   a single unit (heap blocks, globals, escaping stack variables) — in a
   self-balancing tree map indexed by base address, and translates CPU
   pointers into equivalent GPU pointers:

     map      copy the unit to the device if needed; bump its refcount;
              return the translated pointer (Algorithm 1).
     unmap    copy the unit back to the host unless the host copy is
              already current in this epoch or the unit is read-only
              (Algorithm 2).
     release  drop a reference; free device memory at zero (Algorithm 3).

   The *Array variants operate on doubly indirect pointers: each CPU
   pointer stored in the unit is translated into a new device-side array,
   which is what the kernel receives.

   An epoch counter increments at every kernel launch; unmap copies a unit
   at most once per epoch, because only kernels mutate device memory. *)

module Memspace = Cgcm_memory.Memspace
module Avl = Cgcm_support.Avl_map.Int
module Device = Cgcm_gpusim.Device

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type alloc_info = {
  base : int;
  size : int;
  is_global : bool;
  global_name : string option;
  read_only : bool;
  from_alloca : bool;
  mutable devptr : int option;
  mutable refcount : int;
  mutable epoch : int;  (* last epoch in which the host copy was updated *)
  (* state for the array variants *)
  mutable arr_shadow : int option;  (* device array of translated pointers *)
  mutable arr_refcount : int;
  mutable arr_elems : int list;  (* host pointers translated by map_array *)
}

type stats = {
  mutable map_calls : int;
  mutable unmap_calls : int;
  mutable release_calls : int;
  mutable map_array_calls : int;
  mutable skipped_unmaps : int;  (* epoch optimisation hits *)
  mutable skipped_copies : int;  (* map found the unit already resident *)
  mutable partial_copies : int;  (* transfers narrowed to dirty spans *)
  mutable bytes_saved : int;  (* unit bytes not moved thanks to dirty spans *)
}

type t = {
  host : Memspace.t;
  dev : Device.t;
  mutable info : alloc_info Avl.t;
  mutable global_epoch : int;
  stats : stats;
  (* Transfer only dirty spans instead of whole allocation units. Off
     reproduces the paper's whole-unit protocol; the differential tests
     assert the dirty path never moves more bytes than that baseline. *)
  dirty_spans : bool;
  (* wall-clock hook: the interpreter threads its clock through us *)
  mutable now : float;
}

let create ?(dirty_spans = true) ~host ~dev () =
  {
    host;
    dev;
    info = Avl.empty;
    global_epoch = 0;
    stats =
      {
        map_calls = 0;
        unmap_calls = 0;
        release_calls = 0;
        map_array_calls = 0;
        skipped_unmaps = 0;
        skipped_copies = 0;
        partial_copies = 0;
        bytes_saved = 0;
      };
    dirty_spans;
    now = 0.0;
  }

let charge t cycles = t.now <- t.now +. cycles

let runtime_call_cost t =
  charge t t.dev.Device.cost.Cgcm_gpusim.Cost_model.runtime_call_overhead

(* ------------------------------------------------------------------ *)
(* Registration: heap, globals, escaping allocas                       *)

let register t info = t.info <- Avl.add info.base info t.info

let mk_info ?(is_global = false) ?(global_name = None) ?(read_only = false)
    ?(from_alloca = false) ~base ~size () =
  {
    base;
    size;
    is_global;
    global_name;
    read_only;
    from_alloca;
    devptr = None;
    refcount = 0;
    epoch = 0;
    arr_shadow = None;
    arr_refcount = 0;
    arr_elems = [];
  }

(* Wrapper around malloc/calloc: the interpreter calls this for every heap
   allocation so the run-time knows the dynamic state of the heap. *)
let register_heap t ~base ~size = register t (mk_info ~base ~size ())

(* declareGlobal(name, ptr, size, isReadOnly): called once per global
   before main. Registering addresses at run time side-steps position-
   independent-code and ASLR issues, as the paper notes. *)
let declare_global t ~name ~base ~size ~read_only =
  Device.declare_module_global t.dev ~name ~size;
  register t (mk_info ~is_global:true ~global_name:(Some name) ~read_only ~base ~size ())

(* declareAlloca: registration of an escaping stack variable. *)
let declare_alloca t ~base ~size =
  register t (mk_info ~from_alloca:true ~base ~size ())

let find_info t ptr =
  match Avl.greatest_leq ptr t.info with
  | Some (_, info) when ptr >= info.base && ptr < info.base + info.size ->
    info
  | _ ->
    error "no allocation unit contains pointer 0x%x (missing registration?)"
      ptr

let lookup_unit t ptr = find_info t ptr

(* The wrapper around free: heap units must not leave the map while still
   mapped on the device. *)
let unregister_heap t ~base =
  (match Avl.find_opt base t.info with
  | Some info when info.refcount > 0 || info.arr_refcount > 0 ->
    error "free of allocation unit 0x%x while mapped on the device" base
  | Some info ->
    (match info.devptr with
    | Some d when not info.is_global ->
      t.now <- Device.mem_free t.dev ~now:t.now d;
      info.devptr <- None
    | _ -> ())
  | None -> ());
  t.info <- Avl.remove base t.info

(* Expiry of a declareAlloca registration at scope exit. *)
let expire_alloca t ~base =
  match Avl.find_opt base t.info with
  | Some info ->
    if info.refcount > 0 || info.arr_refcount > 0 then
      error "stack allocation unit 0x%x left scope while mapped" base;
    (match info.devptr with
    | Some d when not info.is_global ->
      t.now <- Device.mem_free t.dev ~now:t.now d;
      info.devptr <- None
    | _ -> ());
    t.info <- Avl.remove base t.info
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Epochs                                                              *)

(* Called at every kernel launch. *)
let bump_epoch t = t.global_epoch <- t.global_epoch + 1

(* ------------------------------------------------------------------ *)
(* map / unmap / release (Algorithms 1-3)                              *)

(* Device-resident base of the unit; [fresh] is true when this call
   allocated it (a fresh, zero-filled copy with no valid data yet). *)
let device_base_of t info =
  match info.devptr with
  | Some d -> (d, false)
  | None ->
    let d, now =
      if info.is_global then
        Device.module_get_global t.dev ~now:t.now (Option.get info.global_name)
      else Device.mem_alloc t.dev ~now:t.now info.size
    in
    t.now <- now;
    info.devptr <- Some d;
    (d, true)

(* ---- dirty-span transfer planning ----------------------------------

   Given the dirty spans of the source copy, either issue one DMA per
   span or a single DMA over their bounding interval, whichever the cost
   model says is cheaper (per-transfer latency vs extra clean bytes).
   Both plans move no more bytes than the whole-unit copy did, so the
   communication volume results can only improve. *)

type direction = Htod | Dtoh

let transfer_spans t ~dir ~dev_base ~host_base ~size spans =
  let cost = t.dev.Device.cost in
  let per_span_cycles =
    List.fold_left
      (fun c (_, len) -> c +. Cgcm_gpusim.Cost_model.transfer_cycles cost len)
      0.0 spans
  in
  let lo = List.fold_left (fun m (off, _) -> min m off) max_int spans in
  let hi = List.fold_left (fun m (off, len) -> max m (off + len)) 0 spans in
  let bounding_cycles = Cgcm_gpusim.Cost_model.transfer_cycles cost (hi - lo) in
  let plan =
    if per_span_cycles <= bounding_cycles then spans else [ (lo, hi - lo) ]
  in
  let moved = ref 0 in
  List.iter
    (fun (off, len) ->
      moved := !moved + len;
      let label = match dir with Htod -> "HtoD-dirty" | Dtoh -> "DtoH-dirty" in
      t.now <-
        (match dir with
        | Htod ->
          Device.memcpy_h_to_d t.dev ~now:t.now ~host:t.host
            ~host_addr:(host_base + off) ~dev_addr:(dev_base + off) ~len ~label
        | Dtoh ->
          Device.memcpy_d_to_h t.dev ~now:t.now ~host:t.host
            ~host_addr:(host_base + off) ~dev_addr:(dev_base + off) ~len ~label))
    plan;
  t.stats.partial_copies <- t.stats.partial_copies + 1;
  t.stats.bytes_saved <- t.stats.bytes_saved + (size - !moved)

let map t ptr =
  t.stats.map_calls <- t.stats.map_calls + 1;
  runtime_call_cost t;
  let info = find_info t ptr in
  let d, fresh = device_base_of t info in
  if info.refcount = 0 then begin
    if fresh || not t.dirty_spans then
      (* No valid device copy exists (or the optimisation is off): move
         the whole unit, exactly as Algorithm 1 writes it. *)
      t.now <-
        Device.memcpy_h_to_d t.dev ~now:t.now ~host:t.host ~host_addr:info.base
          ~dev_addr:d ~len:info.size
    else begin
      (* The device copy survived an earlier map/release cycle (globals
         keep their module-resident storage): refresh only the bytes the
         host has written since the last synchronisation. *)
      match Memspace.dirty_spans t.host info.base with
      | [] ->
        t.stats.skipped_copies <- t.stats.skipped_copies + 1;
        t.stats.bytes_saved <- t.stats.bytes_saved + info.size
      | spans ->
        transfer_spans t ~dir:Htod ~dev_base:d ~host_base:info.base
          ~size:info.size spans
    end;
    if t.dirty_spans then begin
      (* Host and device now agree: reset both dirty accumulators so the
         next unmap sees only bytes the kernels actually write. *)
      Memspace.clear_dirty t.host info.base;
      Memspace.clear_dirty t.dev.Device.mem d
    end
  end
  else t.stats.skipped_copies <- t.stats.skipped_copies + 1;
  info.refcount <- info.refcount + 1;
  d + (ptr - info.base)

let unmap t ptr =
  t.stats.unmap_calls <- t.stats.unmap_calls + 1;
  runtime_call_cost t;
  let info = find_info t ptr in
  match info.devptr with
  | Some d when info.epoch <> t.global_epoch && not info.read_only ->
    if not t.dirty_spans then
      t.now <-
        Device.memcpy_d_to_h t.dev ~now:t.now ~host:t.host ~host_addr:info.base
          ~dev_addr:d ~len:info.size
    else begin
      (match Memspace.dirty_spans t.dev.Device.mem d with
      | [] ->
        (* The kernels never wrote the unit: nothing to copy back. *)
        t.stats.skipped_unmaps <- t.stats.skipped_unmaps + 1;
        t.stats.bytes_saved <- t.stats.bytes_saved + info.size
      | spans ->
        transfer_spans t ~dir:Dtoh ~dev_base:d ~host_base:info.base
          ~size:info.size spans);
      Memspace.clear_dirty t.dev.Device.mem d
    end;
    info.epoch <- t.global_epoch
  | _ -> t.stats.skipped_unmaps <- t.stats.skipped_unmaps + 1

let release t ptr =
  t.stats.release_calls <- t.stats.release_calls + 1;
  runtime_call_cost t;
  let info = find_info t ptr in
  if info.refcount <= 0 then
    error "release of allocation unit 0x%x with zero reference count" info.base;
  info.refcount <- info.refcount - 1;
  if info.refcount = 0 && not info.is_global then begin
    match info.devptr with
    | Some d ->
      t.now <- Device.mem_free t.dev ~now:t.now d;
      info.devptr <- None
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Array variants: doubly indirect pointers                            *)

let word = 8

let map_array t ptr =
  t.stats.map_array_calls <- t.stats.map_array_calls + 1;
  runtime_call_cost t;
  let info = find_info t ptr in
  (match info.arr_shadow with
  | Some _ ->
    (* Already translated: take a reference on every element unit so the
       balancing releaseArray keeps refcounts non-negative. *)
    List.iter (fun p -> ignore (map t p)) info.arr_elems
  | None ->
    (* Translate every CPU pointer in the unit into a new device array. *)
    let n = info.size / word in
    let elems = ref [] in
    let translated =
      Array.init n (fun i ->
          let p = Int64.to_int (Memspace.load_i64 t.host (info.base + (i * word))) in
          if p = 0 then 0L
          else begin
            elems := p :: !elems;
            Int64.of_int (map t p)
          end)
    in
    info.arr_elems <- List.rev !elems;
    (* For a global, the translated pointers must land in the device copy
       of the global itself: kernels reach it via cuModuleGetGlobal. *)
    let shadow, now =
      if info.is_global then
        Device.module_get_global t.dev ~now:t.now (Option.get info.global_name)
      else Device.mem_alloc t.dev ~now:t.now (n * word)
    in
    t.now <- now;
    (* Write the translated array into device memory (costed as HtoD
       through a bounce buffer on the host). *)
    Array.iteri
      (fun i v -> Memspace.store_i64 t.dev.Device.mem (shadow + (i * word)) v)
      translated;
    let dur = Cgcm_gpusim.Cost_model.transfer_cycles t.dev.Device.cost (n * word) in
    charge t dur;
    t.dev.Device.stats.Device.htod_bytes <-
      t.dev.Device.stats.Device.htod_bytes + (n * word);
    t.dev.Device.stats.Device.htod_count <-
      t.dev.Device.stats.Device.htod_count + 1;
    t.dev.Device.stats.Device.comm_cycles <-
      t.dev.Device.stats.Device.comm_cycles +. dur;
    info.arr_shadow <- Some shadow);
  info.arr_refcount <- info.arr_refcount + 1;
  (* The kernel receives the shadow array; interior offsets translate. *)
  Option.get info.arr_shadow + (ptr - info.base)

let unmap_array t ptr =
  runtime_call_cost t;
  let info = find_info t ptr in
  List.iter (fun p -> unmap t p) info.arr_elems

let release_array t ptr =
  runtime_call_cost t;
  let info = find_info t ptr in
  if info.arr_refcount <= 0 then
    error "releaseArray on 0x%x with zero reference count" info.base;
  List.iter (fun p -> release t p) info.arr_elems;
  info.arr_refcount <- info.arr_refcount - 1;
  if info.arr_refcount = 0 then begin
    (match info.arr_shadow with
    | Some shadow when not info.is_global ->
      t.now <- Device.mem_free t.dev ~now:t.now shadow
    | _ -> ());
    info.arr_shadow <- None;
    info.arr_elems <- []
  end

(* ------------------------------------------------------------------ *)
(* Introspection for tests and reports                                 *)

let resident_units t =
  Avl.fold (fun _ i n -> if i.devptr <> None then n + 1 else n) t.info 0

let total_refcount t = Avl.fold (fun _ i n -> n + i.refcount) t.info 0

let unit_count t = Avl.cardinal t.info
