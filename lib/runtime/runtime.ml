(* The CGCM run-time library (Section 3 of the paper).

   The library tracks *allocation units* — contiguous regions allocated as
   a single unit (heap blocks, globals, escaping stack variables) — in a
   self-balancing tree map indexed by base address, and translates CPU
   pointers into equivalent GPU pointers:

     map      copy the unit to the device if needed; bump its refcount;
              return the translated pointer (Algorithm 1).
     unmap    copy the unit back to the host unless the host copy is
              already current in this epoch or the unit is read-only
              (Algorithm 2).
     release  drop a reference; free device memory at zero (Algorithm 3).

   The *Array variants operate on doubly indirect pointers: each CPU
   pointer stored in the unit is translated into a new device-side array,
   which is what the kernel receives.

   An epoch counter increments at every kernel launch; unmap copies a unit
   at most once per epoch, because only kernels mutate device memory.

   The run-time is also the recovery layer for a fallible driver
   (Cgcm_gpusim.Faults / Cost_model.device_mem_bytes): on OOM it evicts
   zero-refcount resident units (writing dirty ones back first) and
   retries; on transfer failure it retries with backoff accounted on the
   device timeline. Failures that survive recovery raise {!Runtime_error}
   carrying the structured taxonomy of [Cgcm_support.Errors]. *)

module Memspace = Cgcm_memory.Memspace
module Avl = Cgcm_support.Avl_map.Int
module Errors = Cgcm_support.Errors
module Device = Cgcm_gpusim.Device
module Cost_model = Cgcm_gpusim.Cost_model
module Trace = Cgcm_gpusim.Trace
module Sanitizer = Cgcm_sanitizer.Sanitizer

exception Runtime_error of Errors.runtime_error

type alloc_info = {
  base : int;
  size : int;
  is_global : bool;
  global_name : string option;
  read_only : bool;
  from_alloca : bool;
  mutable devptr : int option;
  mutable refcount : int;
  mutable epoch : int;  (* last epoch in which the host copy was updated *)
  (* state for the array variants *)
  mutable arr_shadow : int option;  (* device array of translated pointers *)
  mutable arr_refcount : int;
  mutable arr_elems : int list;  (* host pointers translated by map_array *)
  mutable evicted : bool;  (* lost its device copy to memory pressure *)
}

type stats = {
  mutable map_calls : int;
  mutable unmap_calls : int;
  mutable release_calls : int;
  mutable map_array_calls : int;
  mutable skipped_unmaps : int;  (* epoch optimisation hits *)
  mutable skipped_copies : int;  (* map found the unit already resident *)
  mutable partial_copies : int;  (* transfers narrowed to dirty spans *)
  mutable bytes_saved : int;  (* unit bytes not moved thanks to dirty spans *)
  mutable evictions : int;  (* units whose device copy was revoked on OOM *)
  mutable retries : int;  (* device calls re-attempted after a fault *)
  mutable cpu_fallbacks : int;  (* kernels degraded to CPU execution *)
}

type t = {
  host : Memspace.t;
  dev : Device.t;
  mutable info : alloc_info Avl.t;
  mutable global_epoch : int;
  stats : stats;
  (* Transfer only dirty spans instead of whole allocation units. Off
     reproduces the paper's whole-unit protocol; the differential tests
     assert the dirty path never moves more bytes than that baseline. *)
  dirty_spans : bool;
  (* Re-run check_invariants after every run-time call (tests). *)
  paranoid : bool;
  globals_by_name : (string, int) Hashtbl.t;  (* global name -> host base *)
  (* wall-clock hook: the interpreter threads its clock through us *)
  mutable now : float;
}

let create ?(dirty_spans = true) ?(paranoid = false) ~host ~dev () =
  {
    host;
    dev;
    info = Avl.empty;
    global_epoch = 0;
    stats =
      {
        map_calls = 0;
        unmap_calls = 0;
        release_calls = 0;
        map_array_calls = 0;
        skipped_unmaps = 0;
        skipped_copies = 0;
        partial_copies = 0;
        bytes_saved = 0;
        evictions = 0;
        retries = 0;
        cpu_fallbacks = 0;
      };
    dirty_spans;
    paranoid;
    globals_by_name = Hashtbl.create 16;
    now = 0.0;
  }

let charge t cycles = t.now <- t.now +. cycles

(* The coherence shadow (when auditing) lives on the device handle so
   the driver's transfer/free hooks and ours observe the same instance.
   Every hook below fires only after the mirrored operation committed,
   keeping the shadow an independent replica rather than a prediction. *)
let with_san t f =
  match t.dev.Device.sanitizer with Some s -> f s | None -> ()

let runtime_call_cost t =
  charge t t.dev.Device.cost.Cost_model.runtime_call_overhead

(* ------------------------------------------------------------------ *)
(* Structured failure                                                  *)

let snapshot (i : alloc_info) : Errors.unit_snapshot =
  {
    Errors.u_base = i.base;
    u_size = i.size;
    u_refcount = i.refcount;
    u_arr_refcount = i.arr_refcount;
    u_epoch = i.epoch;
    u_devptr = i.devptr;
    u_global = i.global_name;
  }

let alloc_map_snapshot t =
  List.rev (Avl.fold (fun _ i acc -> snapshot i :: acc) t.info [])

let fail t ~op ?addr ?unit_ ?device reason =
  raise
    (Runtime_error
       {
         Errors.op;
         addr;
         reason;
         unit_;
         device;
         alloc_map = alloc_map_snapshot t;
       })

let find_info t ~op ptr =
  match Avl.greatest_leq ptr t.info with
  | Some (_, info) when ptr >= info.base && ptr < info.base + info.size ->
    info
  | _ ->
    fail t ~op ~addr:ptr
      "no allocation unit contains this pointer (missing registration?)"

let lookup_unit t ptr = find_info t ~op:"lookup" ptr

(* ------------------------------------------------------------------ *)
(* Registration: heap, globals, escaping allocas                       *)

let register t info = t.info <- Avl.add info.base info t.info

let mk_info ?(is_global = false) ?(global_name = None) ?(read_only = false)
    ?(from_alloca = false) ~base ~size () =
  {
    base;
    size;
    is_global;
    global_name;
    read_only;
    from_alloca;
    devptr = None;
    refcount = 0;
    epoch = 0;
    arr_shadow = None;
    arr_refcount = 0;
    arr_elems = [];
    evicted = false;
  }

(* ------------------------------------------------------------------ *)
(* Recovery: transfer retry with backoff                               *)

(* A flaky DMA engine is retried a bounded number of times; each failed
   attempt charges an escalating backoff to the device timeline before
   the next try (the paper's driver never fails; production ones do). *)
let max_transfer_retries = 8

type direction = Htod | Dtoh

let rec memcpy t ~dir ~label ~host_addr ~dev_addr ~len ~attempt =
  let call () =
    match dir with
    | Htod ->
      Device.memcpy_h_to_d ~label t.dev ~now:t.now ~host:t.host ~host_addr
        ~dev_addr ~len
    | Dtoh ->
      Device.memcpy_d_to_h ~label t.dev ~now:t.now ~host:t.host ~host_addr
        ~dev_addr ~len
  in
  match call () with
  | now -> t.now <- now
  | exception Errors.Device_error (Errors.Transfer_failed _ as fault) ->
    if attempt >= max_transfer_retries then
      fail t
        ~op:(match dir with Htod -> "memcpyHtoD" | Dtoh -> "memcpyDtoH")
        ~addr:host_addr ~device:fault
        (Printf.sprintf "transfer of %d bytes failed %d times; giving up" len
           attempt)
    else begin
      t.stats.retries <- t.stats.retries + 1;
      (* Backoff accounted on the device timeline: the bus is considered
         busy recovering, and the CPU waits it out. *)
      let backoff =
        t.dev.Device.cost.Cost_model.transfer_latency *. float_of_int attempt
      in
      let start = t.now in
      t.now <- t.now +. backoff;
      t.dev.Device.busy_until <- Float.max t.dev.Device.busy_until t.now;
      Trace.record t.dev.Device.trace Trace.Sync ~start ~finish:t.now
        ~label:"xfer-retry" ~bytes:0;
      memcpy t ~dir ~label ~host_addr ~dev_addr ~len ~attempt:(attempt + 1)
    end

let memcpy t ~dir ~label ~host_addr ~dev_addr ~len =
  memcpy t ~dir ~label ~host_addr ~dev_addr ~len ~attempt:1

(* ---- dirty-span transfer planning ----------------------------------

   Given the dirty spans of the source copy, either issue one DMA per
   span or a single DMA over their bounding interval, whichever the cost
   model says is cheaper (per-transfer latency vs extra clean bytes).
   Both plans move no more bytes than the whole-unit copy did, so the
   communication volume results can only improve. *)

let transfer_spans t ~dir ~dev_base ~host_base ~size spans =
  let cost = t.dev.Device.cost in
  let per_span_cycles =
    List.fold_left
      (fun c (_, len) -> c +. Cost_model.transfer_cycles cost len)
      0.0 spans
  in
  let lo = List.fold_left (fun m (off, _) -> min m off) max_int spans in
  let hi = List.fold_left (fun m (off, len) -> max m (off + len)) 0 spans in
  let bounding_cycles = Cost_model.transfer_cycles cost (hi - lo) in
  let plan =
    if per_span_cycles <= bounding_cycles then spans else [ (lo, hi - lo) ]
  in
  let moved = ref 0 in
  List.iter
    (fun (off, len) ->
      moved := !moved + len;
      let label = match dir with Htod -> "HtoD-dirty" | Dtoh -> "DtoH-dirty" in
      memcpy t ~dir ~label ~host_addr:(host_base + off)
        ~dev_addr:(dev_base + off) ~len)
    plan;
  t.stats.partial_copies <- t.stats.partial_copies + 1;
  t.stats.bytes_saved <- t.stats.bytes_saved + (size - !moved)

(* ------------------------------------------------------------------ *)
(* Recovery: eviction of resident units under memory pressure          *)

(* Forced write-back before an eviction — exactly unmap's protocol, so
   the host copy is current before the device copy is destroyed. *)
let write_back t info =
  match info.devptr with
  | Some d when info.epoch <> t.global_epoch && not info.read_only ->
    if not t.dirty_spans then
      memcpy t ~dir:Dtoh ~label:"DtoH-evict" ~host_addr:info.base ~dev_addr:d
        ~len:info.size
    else begin
      (match Memspace.dirty_spans t.dev.Device.mem d with
      | [] -> ()
      | spans ->
        transfer_spans t ~dir:Dtoh ~dev_base:d ~host_base:info.base
          ~size:info.size spans);
      Memspace.clear_dirty t.dev.Device.mem d
    end;
    info.epoch <- t.global_epoch
  | _ -> ()

(* Evict one zero-refcount resident unit (lowest base first — the choice
   only needs to be deterministic). Module globals give their module
   residence back via forget_global, which invalidates cached
   cuModuleGetGlobal addresses; non-globals are simply freed. Returns
   false when nothing is evictable. *)
let evict_one t =
  let victim =
    Avl.fold
      (fun _ i acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if i.refcount = 0 && i.arr_refcount = 0 && i.devptr <> None then
            Some i
          else None)
      t.info None
  in
  match victim with
  | None -> false
  | Some info ->
    write_back t info;
    (match info.devptr with
    | Some d ->
      if info.is_global then
        t.now <-
          Device.forget_global t.dev ~now:t.now (Option.get info.global_name)
      else t.now <- Device.mem_free t.dev ~now:t.now d;
      info.devptr <- None
    | None -> ());
    info.evicted <- true;
    t.stats.evictions <- t.stats.evictions + 1;
    Trace.record t.dev.Device.trace Trace.Sync ~start:t.now ~finish:t.now
      ~label:"evict" ~bytes:info.size;
    true

(* ------------------------------------------------------------------ *)
(* Recovery: device allocation with evict-and-retry                    *)

(* A genuine capacity OOM is only retried after an eviction made room; an
   injected (transient) OOM is also retried blind a few times, because
   the next attempt draws a fresh fate from the fault plan. *)
let max_blind_oom_retries = 4

let dev_alloc t ~op ~addr ~size ~global_name =
  let attempt () =
    match global_name with
    | Some g -> Device.module_get_global t.dev ~now:t.now g
    | None -> Device.mem_alloc t.dev ~now:t.now size
  in
  let rec go blind =
    match attempt () with
    | d, now ->
      t.now <- now;
      d
    | exception Errors.Device_error (Errors.Oom { injected; _ } as fault) ->
      if evict_one t then begin
        t.stats.retries <- t.stats.retries + 1;
        go blind
      end
      else if injected && blind < max_blind_oom_retries then begin
        t.stats.retries <- t.stats.retries + 1;
        charge t t.dev.Device.cost.Cost_model.alloc_overhead;
        go (blind + 1)
      end
      else
        fail t ~op ~addr ~device:fault
          (Printf.sprintf
             "device allocation of %d bytes failed and nothing is evictable"
             size)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Registration (continued)                                            *)

(* Wrapper around malloc/calloc: the interpreter calls this for every heap
   allocation so the run-time knows the dynamic state of the heap. *)
let register_heap t ~base ~size =
  register t (mk_info ~base ~size ());
  with_san t (fun s -> Sanitizer.on_register s ~base ~size ~kind:"heap" ())

(* declareGlobal(name, ptr, size, isReadOnly): called once per global
   before main. Registering addresses at run time side-steps position-
   independent-code and ASLR issues, as the paper notes. *)
let declare_global t ~name ~base ~size ~read_only =
  Device.declare_module_global t.dev ~name ~size;
  Hashtbl.replace t.globals_by_name name base;
  register t
    (mk_info ~is_global:true ~global_name:(Some name) ~read_only ~base ~size ());
  with_san t (fun s ->
      Sanitizer.on_register s ~base ~size ~kind:"global" ~global:name ~read_only
        ())

(* declareAlloca: registration of an escaping stack variable. *)
let declare_alloca t ~base ~size =
  register t (mk_info ~from_alloca:true ~base ~size ());
  with_san t (fun s -> Sanitizer.on_register s ~base ~size ~kind:"alloca" ())

(* The wrapper around free: heap units must not leave the map while still
   mapped on the device. *)
let unregister_heap t ~base =
  (match Avl.find_opt base t.info with
  | Some info when info.refcount > 0 || info.arr_refcount > 0 ->
    fail t ~op:"free" ~addr:base ~unit_:(snapshot info)
      (Printf.sprintf
         "allocation unit freed while still mapped on the device \
          (refcount=%d, arrayRefcount=%d)"
         info.refcount info.arr_refcount)
  | Some info ->
    (match info.devptr with
    | Some d when not info.is_global ->
      t.now <- Device.mem_free t.dev ~now:t.now d;
      info.devptr <- None
    | _ -> ())
  | None -> ());
  t.info <- Avl.remove base t.info;
  with_san t (fun s -> Sanitizer.on_unregister s ~base ~op:"free")

(* Expiry of a declareAlloca registration at scope exit. *)
let expire_alloca t ~base =
  match Avl.find_opt base t.info with
  | Some info ->
    if info.refcount > 0 || info.arr_refcount > 0 then
      fail t ~op:"expireAlloca" ~addr:base ~unit_:(snapshot info)
        (Printf.sprintf
           "stack allocation unit left scope while still mapped — its device \
            copy would dangle (refcount=%d, arrayRefcount=%d)"
           info.refcount info.arr_refcount);
    (match info.devptr with
    | Some d when not info.is_global ->
      t.now <- Device.mem_free t.dev ~now:t.now d;
      info.devptr <- None
    | _ -> ());
    t.info <- Avl.remove base t.info;
    with_san t (fun s -> Sanitizer.on_unregister s ~base ~op:"expireAlloca")
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Invariant checking (paranoid mode)                                  *)

(* Whole-state consistency check, run after every run-time call when
   [paranoid] is set: refcounts non-negative, epochs monotone, every
   devptr/shadow backed by a live device block, and every live "dev"
   block owned by some unit (no orphaned device memory). *)
let check_invariants t =
  let dev_mem = t.dev.Device.mem in
  let fail_inv info msg =
    fail t ~op:"checkInvariants" ~addr:info.base ~unit_:(snapshot info) msg
  in
  let live_bounds addr =
    match Memspace.unit_bounds dev_mem addr with
    | bounds -> Some bounds
    | exception Memspace.Fault _ -> None
  in
  Avl.iter
    (fun base info ->
      if base <> info.base then fail_inv info "map key differs from unit base";
      if info.refcount < 0 then fail_inv info "negative reference count";
      if info.arr_refcount < 0 then
        fail_inv info "negative array reference count";
      if info.epoch < 0 || info.epoch > t.global_epoch then
        fail_inv info
          (Printf.sprintf "unit epoch %d outside [0, global epoch %d]"
             info.epoch t.global_epoch);
      (match info.devptr with
      | Some d -> (
        match live_bounds d with
        | Some (b, sz) when b = d && sz >= info.size -> ()
        | Some (b, sz) ->
          fail_inv info
            (Printf.sprintf
               "devptr 0x%x does not cover the unit (device block 0x%x, %d \
                bytes)"
               d b sz)
        | None -> fail_inv info "dangling devptr: no live device block")
      | None -> ());
      if info.arr_refcount > 0 && info.arr_shadow = None then
        fail_inv info "positive array refcount without a shadow array";
      match info.arr_shadow with
      | None -> ()
      | Some s ->
        (match live_bounds s with
        | Some (b, _) when b = s -> ()
        | _ -> fail_inv info "dangling shadow array: no live device block");
        (* While the shadow is live, every translated element must still
           be a registered allocation unit — expiring or unregistering
           one would leave the shadow pointing into recycled memory with
           no unit to re-validate it against. (No refcount claims: map
           promotion hoists the mapArray while the pointees' own
           map/release pairs stay per-launch, so an element's count
           legally touches zero between launches; the next launch's map
           re-validates the translation.) *)
        if info.arr_refcount > 0 then
          List.iter
            (fun p ->
              match Avl.greatest_leq p t.info with
              | Some (_, e) when p >= e.base && p < e.base + e.size -> ()
              | _ ->
                fail_inv info
                  (Printf.sprintf
                     "shadow-array element 0x%x outside every registered unit"
                     p))
            info.arr_elems)
    t.info;
  (* Reverse direction: every live device block the driver handed to the
     run-time ("dev" tag) must still be reachable from some unit. *)
  let owned = Hashtbl.create 32 in
  Avl.iter
    (fun _ i ->
      (match i.devptr with Some d -> Hashtbl.replace owned d () | None -> ());
      match i.arr_shadow with
      | Some s -> Hashtbl.replace owned s ()
      | None -> ())
    t.info;
  List.iter
    (fun (base, size, tag) ->
      if tag = "dev" && not (Hashtbl.mem owned base) then
        fail t ~op:"checkInvariants" ~addr:base
          (Printf.sprintf "orphaned device block (%d bytes): leak" size))
    (Memspace.blocks_snapshot dev_mem)

let post t = if t.paranoid then check_invariants t

(* ------------------------------------------------------------------ *)
(* Epochs                                                              *)

(* Called at every kernel launch. *)
let bump_epoch t =
  t.global_epoch <- t.global_epoch + 1;
  with_san t Sanitizer.on_epoch

(* ------------------------------------------------------------------ *)
(* map / unmap / release (Algorithms 1-3)                              *)

(* Device-resident base of the unit; [fresh] is true when this call
   allocated it (a fresh, zero-filled copy with no valid data yet). *)
let device_base_of t ~op info =
  match info.devptr with
  | Some d -> (d, false)
  | None ->
    let d =
      dev_alloc t ~op ~addr:info.base ~size:info.size
        ~global_name:(if info.is_global then info.global_name else None)
    in
    info.devptr <- Some d;
    (d, true)

let map t ptr =
  t.stats.map_calls <- t.stats.map_calls + 1;
  runtime_call_cost t;
  let info = find_info t ~op:"map" ptr in
  let d, fresh = device_base_of t ~op:"map" info in
  if info.refcount = 0 then begin
    if fresh || not t.dirty_spans then
      (* No valid device copy exists (or the optimisation is off): move
         the whole unit, exactly as Algorithm 1 writes it. *)
      memcpy t ~dir:Htod ~label:"HtoD" ~host_addr:info.base ~dev_addr:d
        ~len:info.size
    else begin
      (* The device copy survived an earlier map/release cycle (globals
         keep their module-resident storage): refresh only the bytes the
         host has written since the last synchronisation. *)
      match Memspace.dirty_spans t.host info.base with
      | [] ->
        t.stats.skipped_copies <- t.stats.skipped_copies + 1;
        t.stats.bytes_saved <- t.stats.bytes_saved + info.size
      | spans ->
        transfer_spans t ~dir:Htod ~dev_base:d ~host_base:info.base
          ~size:info.size spans
    end;
    if t.dirty_spans then begin
      (* Host and device now agree: reset both dirty accumulators so the
         next unmap sees only bytes the kernels actually write. *)
      Memspace.clear_dirty t.host info.base;
      Memspace.clear_dirty t.dev.Device.mem d
    end
  end
  else t.stats.skipped_copies <- t.stats.skipped_copies + 1;
  info.refcount <- info.refcount + 1;
  with_san t (fun s -> Sanitizer.on_map s ~base:info.base ~devptr:d);
  post t;
  d + (ptr - info.base)

let unmap t ptr =
  t.stats.unmap_calls <- t.stats.unmap_calls + 1;
  runtime_call_cost t;
  let info = find_info t ~op:"unmap" ptr in
  (match info.devptr with
  | Some d when info.epoch <> t.global_epoch && not info.read_only ->
    if not t.dirty_spans then
      memcpy t ~dir:Dtoh ~label:"DtoH" ~host_addr:info.base ~dev_addr:d
        ~len:info.size
    else begin
      (match Memspace.dirty_spans t.dev.Device.mem d with
      | [] ->
        (* The kernels never wrote the unit: nothing to copy back. *)
        t.stats.skipped_unmaps <- t.stats.skipped_unmaps + 1;
        t.stats.bytes_saved <- t.stats.bytes_saved + info.size
      | spans ->
        transfer_spans t ~dir:Dtoh ~dev_base:d ~host_base:info.base
          ~size:info.size spans);
      Memspace.clear_dirty t.dev.Device.mem d
    end;
    info.epoch <- t.global_epoch
  | _ -> t.stats.skipped_unmaps <- t.stats.skipped_unmaps + 1);
  with_san t (fun s -> Sanitizer.on_unmap s ~base:info.base);
  post t

let release t ptr =
  t.stats.release_calls <- t.stats.release_calls + 1;
  runtime_call_cost t;
  let info = find_info t ~op:"release" ptr in
  if info.refcount <= 0 then
    fail t ~op:"release" ~addr:ptr ~unit_:(snapshot info)
      "release of an allocation unit whose reference count is already zero";
  info.refcount <- info.refcount - 1;
  (* Shadow refcount drops before the free below, so the free of a
     correctly released unit does not read as premature. *)
  with_san t (fun s -> Sanitizer.on_release s ~base:info.base ~op:"release");
  if info.refcount = 0 && not info.is_global then begin
    match info.devptr with
    | Some d ->
      t.now <- Device.mem_free t.dev ~now:t.now d;
      info.devptr <- None
    | None -> ()
  end;
  post t

(* ------------------------------------------------------------------ *)
(* Array variants: doubly indirect pointers                            *)

let word = 8

let map_array t ptr =
  t.stats.map_array_calls <- t.stats.map_array_calls + 1;
  runtime_call_cost t;
  let info = find_info t ~op:"mapArray" ptr in
  (match info.arr_shadow with
  | Some _ ->
    (* Already translated: take a reference on every element unit so the
       balancing releaseArray keeps refcounts non-negative. *)
    List.iter (fun p -> ignore (map t p)) info.arr_elems
  | None ->
    (* Translate every CPU pointer in the unit into a new device array. *)
    let n = info.size / word in
    let elems = ref [] in
    let translated =
      Array.init n (fun i ->
          let p = Int64.to_int (Memspace.load_i64 t.host (info.base + (i * word))) in
          if p = 0 then 0L
          else begin
            elems := p :: !elems;
            Int64.of_int (map t p)
          end)
    in
    info.arr_elems <- List.rev !elems;
    (* For a global, the translated pointers must land in the device copy
       of the global itself: kernels reach it via cuModuleGetGlobal. *)
    let shadow =
      dev_alloc t ~op:"mapArray" ~addr:info.base ~size:(n * word)
        ~global_name:(if info.is_global then info.global_name else None)
    in
    (* Write the translated array into device memory (costed as HtoD
       through a bounce buffer on the host). *)
    Array.iteri
      (fun i v -> Memspace.store_i64 t.dev.Device.mem (shadow + (i * word)) v)
      translated;
    let dur = Cost_model.transfer_cycles t.dev.Device.cost (n * word) in
    charge t dur;
    t.dev.Device.stats.Device.htod_bytes <-
      t.dev.Device.stats.Device.htod_bytes + (n * word);
    t.dev.Device.stats.Device.htod_count <-
      t.dev.Device.stats.Device.htod_count + 1;
    t.dev.Device.stats.Device.comm_cycles <-
      t.dev.Device.stats.Device.comm_cycles +. dur;
    info.arr_shadow <- Some shadow;
    with_san t (fun s ->
        Sanitizer.on_map_array s ~base:info.base ~shadow ~translated:true));
  info.arr_refcount <- info.arr_refcount + 1;
  (match info.arr_shadow with
  | Some shadow when info.arr_refcount > 1 ->
    with_san t (fun s ->
        Sanitizer.on_map_array s ~base:info.base ~shadow ~translated:false)
  | _ -> ());
  post t;
  (* The kernel receives the shadow array; interior offsets translate. *)
  Option.get info.arr_shadow + (ptr - info.base)

let unmap_array t ptr =
  runtime_call_cost t;
  let info = find_info t ~op:"unmapArray" ptr in
  List.iter (fun p -> unmap t p) info.arr_elems;
  with_san t (fun s -> Sanitizer.on_unmap_array s ~base:info.base)

let release_array t ptr =
  runtime_call_cost t;
  let info = find_info t ~op:"releaseArray" ptr in
  if info.arr_refcount <= 0 then
    fail t ~op:"releaseArray" ~addr:ptr ~unit_:(snapshot info)
      "releaseArray on an allocation unit whose array reference count is \
       already zero";
  List.iter (fun p -> release t p) info.arr_elems;
  info.arr_refcount <- info.arr_refcount - 1;
  with_san t (fun s ->
      Sanitizer.on_release_array s ~base:info.base ~op:"releaseArray");
  if info.arr_refcount = 0 then begin
    (match info.arr_shadow with
    | Some shadow when not info.is_global ->
      t.now <- Device.mem_free t.dev ~now:t.now shadow
    | _ -> ());
    info.arr_shadow <- None;
    info.arr_elems <- []
  end;
  post t

(* ------------------------------------------------------------------ *)
(* Kernel-side global resolution                                       *)

(* The interpreter resolves a module global touched inside a kernel
   through here so that a first-touch allocation enjoys the same
   OOM recovery as map. If the global had been evicted, the fresh device
   block is refilled from the (written-back) host copy, making eviction
   invisible to the kernel. *)
let device_global_addr t name =
  let already = Hashtbl.mem t.dev.Device.globals name in
  let info =
    match Hashtbl.find_opt t.globals_by_name name with
    | Some base -> Avl.find_opt base t.info
    | None -> None
  in
  let size =
    match info with
    | Some i -> i.size
    | None -> (
      match Hashtbl.find_opt t.dev.Device.global_sizes name with
      | Some s -> s
      | None -> 0)
  in
  let d =
    dev_alloc t ~op:"moduleGetGlobal" ~addr:0 ~size ~global_name:(Some name)
  in
  (if not already then
     match info with
     | Some i ->
       i.devptr <- Some d;
       if i.evicted then begin
         (* Restore the state the global held before it was evicted. *)
         memcpy t ~dir:Htod ~label:"HtoD-restore" ~host_addr:i.base ~dev_addr:d
           ~len:i.size;
         if t.dirty_spans then begin
           Memspace.clear_dirty t.host i.base;
           Memspace.clear_dirty t.dev.Device.mem d
         end
       end
     | None -> ());
  (match Hashtbl.find_opt t.globals_by_name name with
  | Some base ->
    (* Claim the device range even when no map ever ran: a global that
       reaches a kernel without management surfaces as a
       stale-device-read at its first access, not as silence. *)
    with_san t (fun s -> Sanitizer.on_global_resolved s ~base ~devptr:d)
  | None -> ());
  d

(* Kernel launch degraded to CPU execution: the interpreter accounts the
   work on the CPU timeline and reports it here. *)
let note_cpu_fallback t = t.stats.cpu_fallbacks <- t.stats.cpu_fallbacks + 1

(* ------------------------------------------------------------------ *)
(* Introspection for tests and reports                                 *)

let resident_units t =
  Avl.fold (fun _ i n -> if i.devptr <> None then n + 1 else n) t.info 0

let total_refcount t = Avl.fold (fun _ i n -> n + i.refcount) t.info 0

let unit_count t = Avl.cardinal t.info

type leak_report = {
  resident_nonglobal : int;  (* non-global units still device-resident *)
  resident_global : int;  (* module globals still device-resident (fine) *)
  refcount_sum : int;
  leaked_dev_blocks : int;  (* live driver-heap blocks on the device *)
  leaked_dev_bytes : int;
}

(* At a clean program exit, every non-global device copy and every
   driver-heap block must be gone; module globals legitimately keep
   their module residence. *)
let leak_report t =
  let resident_nonglobal, resident_global =
    Avl.fold
      (fun _ i (ng, g) ->
        if i.devptr = None then (ng, g)
        else if i.is_global then (ng, g + 1)
        else (ng + 1, g))
      t.info (0, 0)
  in
  let leaked_dev_blocks, leaked_dev_bytes =
    List.fold_left
      (fun (n, bytes) (_, size, tag) ->
        if tag = "dev" then (n + 1, bytes + size) else (n, bytes))
      (0, 0)
      (Memspace.blocks_snapshot t.dev.Device.mem)
  in
  {
    resident_nonglobal;
    resident_global;
    refcount_sum = total_refcount t;
    leaked_dev_blocks;
    leaked_dev_bytes;
  }
