(* The paged-memory backend: a single shared address space in which the
   host and the device touch the same bytes, and the simulator charges
   touch-driven page-granular migration — the managed-memory model of
   CUDA unified memory on PCIe or a Grace-Hopper-style coherent link,
   as opposed to the explicit-copy model CGCM's run-time manages.

   Under this backend CGCM's map/unmap/release intrinsics are no-ops:
   correctness is free, and *all* communication cost comes from page
   faults. Every page (Cost_model.page_bytes) is resident on exactly one
   side at a time:

   - first touch places the page on the toucher's side for free (the
     populate-on-first-touch of cudaMallocManaged);
   - touching a page already resident on your side is free;
   - touching a page resident on the other side is a fault: the page
     migrates, costing page_fault_cycles + page_bytes / bandwidth.

   Device-side faults happen *inside* a kernel, so their cost
   accumulates and is flushed into the device timeline when the launch
   ends ({!flush_launch}); the host keeps running meanwhile, exactly
   like the asynchrony of the explicit model. Host-side faults are
   synchronous: the CPU stalls for outstanding kernels (the migrated
   page may hold their output), then pays the migration before the
   access completes. *)

type side = Host | Device_side

type stats = {
  mutable touches : int;  (* touch events, both sides *)
  mutable touched_pages : int;  (* distinct pages ever touched *)
  mutable faults_to_dev : int;  (* pages migrated host -> device *)
  mutable faults_to_host : int;  (* pages migrated device -> host *)
  mutable bytes_to_dev : int;
  mutable bytes_to_host : int;
}

type t = {
  page_bytes : int;
  fault_cost : float;  (* full per-page migration cost, both directions *)
  table : (int, side) Hashtbl.t;  (* page index -> residence *)
  stats : stats;
  dev : Cgcm_gpusim.Device.t;
  mutable pending_cycles : float;  (* device faults awaiting launch end *)
  mutable pending_faults : int;
  mutable last_host_fault_pages : int;
      (* pages the most recent host-side faulting touch migrated; read
         by the interpreter's accounting hook right after the touch *)
  (* one-entry cache: streaming accesses hit the same page repeatedly *)
  mutable last_page : int;
  mutable last_side : side;
}

let create ~dev (cost : Cgcm_gpusim.Cost_model.t) =
  let page_bytes = max 1 cost.Cgcm_gpusim.Cost_model.page_bytes in
  {
    page_bytes;
    fault_cost =
      cost.Cgcm_gpusim.Cost_model.page_fault_cycles
      +. float_of_int page_bytes
         /. cost.Cgcm_gpusim.Cost_model.transfer_bytes_per_cycle;
    table = Hashtbl.create 1024;
    stats =
      {
        touches = 0;
        touched_pages = 0;
        faults_to_dev = 0;
        faults_to_host = 0;
        bytes_to_dev = 0;
        bytes_to_host = 0;
      };
    dev;
    pending_cycles = 0.0;
    pending_faults = 0;
    last_host_fault_pages = 0;
    last_page = -1;
    last_side = Host;
  }

let stats t = t.stats

(* Migrate one page to [target], charging the toucher's side. *)
let fault t page target =
  Hashtbl.replace t.table page target;
  (match target with
  | Device_side ->
    t.stats.faults_to_dev <- t.stats.faults_to_dev + 1;
    t.stats.bytes_to_dev <- t.stats.bytes_to_dev + t.page_bytes
  | Host ->
    t.stats.faults_to_host <- t.stats.faults_to_host + 1;
    t.stats.bytes_to_host <- t.stats.bytes_to_host + t.page_bytes);
  t.fault_cost

let touch_page t page target =
  match Hashtbl.find_opt t.table page with
  | Some s when s = target -> 0.0
  | Some _ -> fault t page target
  | None ->
    (* first touch: populate on the toucher's side, free *)
    Hashtbl.replace t.table page target;
    t.stats.touched_pages <- t.stats.touched_pages + 1;
    0.0

(* [touch t ~kernel ~addr ~len] notes an access to [addr, addr+len) and
   returns the cycles the *host* must pay right now (always 0.0 for
   kernel-side touches, whose cost lands in the pending pool). *)
let touch t ~kernel ~addr ~len =
  let target = if kernel then Device_side else Host in
  let p0 = addr / t.page_bytes in
  if p0 = t.last_page && target = t.last_side && len <= 1 then begin
    t.stats.touches <- t.stats.touches + 1;
    0.0
  end
  else begin
    t.stats.touches <- t.stats.touches + 1;
    let p1 = (addr + max 1 len - 1) / t.page_bytes in
    let cost = ref 0.0 and faulted = ref 0 in
    for p = p0 to p1 do
      let c = touch_page t p target in
      if c > 0.0 then begin
        cost := !cost +. c;
        incr faulted
      end
    done;
    t.last_page <- p1;
    t.last_side <- target;
    if kernel then begin
      if !faulted > 0 then begin
        t.pending_cycles <- t.pending_cycles +. !cost;
        t.pending_faults <- t.pending_faults + !faulted
      end;
      0.0
    end
    else begin
      t.last_host_fault_pages <- !faulted;
      !cost
    end
  end

(* Pre-place pages on the host without cost: module globals carry
   initial values written at load time, so their backing pages are
   host-populated before main runs. *)
let place_host t ~addr ~len =
  if len > 0 then
    for p = addr / t.page_bytes to (addr + len - 1) / t.page_bytes do
      if not (Hashtbl.mem t.table p) then begin
        Hashtbl.replace t.table p Host;
        t.stats.touched_pages <- t.stats.touched_pages + 1
      end
    done

(* Flush device-side fault time accumulated during a kernel into the
   device timeline and the transfer accounting; called when the launch's
   driver work is done. Returns the host clock unchanged — device faults
   extend the device's busy window, not the CPU's. *)
let flush_launch t =
  if t.pending_cycles > 0.0 then begin
    let dev = t.dev in
    let st = Cgcm_gpusim.Device.stats dev in
    let start = dev.Cgcm_gpusim.Device.busy_until in
    dev.Cgcm_gpusim.Device.busy_until <- start +. t.pending_cycles;
    st.Cgcm_gpusim.Device.comm_cycles <-
      st.Cgcm_gpusim.Device.comm_cycles +. t.pending_cycles;
    st.Cgcm_gpusim.Device.htod_count <-
      st.Cgcm_gpusim.Device.htod_count + t.pending_faults;
    st.Cgcm_gpusim.Device.htod_bytes <-
      st.Cgcm_gpusim.Device.htod_bytes + (t.pending_faults * t.page_bytes);
    Cgcm_gpusim.Trace.record dev.Cgcm_gpusim.Device.trace Cgcm_gpusim.Trace.Htod
      ~start
      ~finish:dev.Cgcm_gpusim.Device.busy_until
      ~label:"page-in"
      ~bytes:(t.pending_faults * t.page_bytes);
    t.pending_cycles <- 0.0;
    t.pending_faults <- 0
  end

(* Host-side fault accounting once the caller has synced the device and
   knows when the migration starts. *)
let note_host_migration t ~start ~cycles ~pages =
  let st = Cgcm_gpusim.Device.stats t.dev in
  st.Cgcm_gpusim.Device.comm_cycles <-
    st.Cgcm_gpusim.Device.comm_cycles +. cycles;
  st.Cgcm_gpusim.Device.dtoh_count <- st.Cgcm_gpusim.Device.dtoh_count + pages;
  st.Cgcm_gpusim.Device.dtoh_bytes <-
    st.Cgcm_gpusim.Device.dtoh_bytes + (pages * t.page_bytes);
  Cgcm_gpusim.Trace.record t.dev.Cgcm_gpusim.Device.trace Cgcm_gpusim.Trace.Dtoh
    ~start ~finish:(start +. cycles) ~label:"page-out"
    ~bytes:(pages * t.page_bytes)

let fault_cost t = t.fault_cost
let page_bytes t = t.page_bytes
let last_host_fault_pages t = t.last_host_fault_pages
let total_faults t = t.stats.faults_to_dev + t.stats.faults_to_host
let migrated_bytes t = t.stats.bytes_to_dev + t.stats.bytes_to_host
