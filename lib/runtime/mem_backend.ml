(* The memory-backend seam: the interpreter's communication-management
   surface, carved out of the runtime/device/memspace tangle so the
   simulator can run the same program under different hardware memory
   models and compare them.

   Two instances:

   - [Explicit_backend] — today's split-memory explicit-copy model: the
     CGCM run-time tracks allocation units, map/unmap/release move data
     over the bus, and the device owns a separate memory space. This is
     the paper's world.

   - [Paged_backend]    — a single shared address space with
     touch-driven page-granular migration ({!Paged}): map/unmap/release
     are no-ops (communication is managed by the hardware, not the
     compiler) and every cost comes from page faults charged at the
     interpreter's load/store hooks.

   The signature covers the cold management surface: allocation
   tracking, the cgcm.* intrinsics, epoch advance, and leak reporting.
   The hot per-access paths (memory-space selection and the paged touch
   hook) stay specialised inside the interpreter's decoder, keyed off
   the same backend choice at decode time — the signature documents
   them, the decoder implements them. Fault injection is shared: both
   backends drive the same simulated device, so a fault plan's
   launch/transfer failures fire identically; only the transfer class
   differs (explicit DMAs vs page migrations). *)

type kind = Explicit | Paged

let to_string = function Explicit -> "explicit" | Paged -> "paged"

let of_string = function
  | "explicit" -> Ok Explicit
  | "paged" -> Ok Paged
  | s -> Error (Printf.sprintf "unknown memory backend %S (want explicit|paged)" s)

let all = [ ("explicit", Explicit); ("paged", Paged) ]

(* Every timing operation takes the interpreter's clock and returns its
   new value; instances that call into the run-time thread it through
   [Runtime.now]. *)
module type S = sig
  type t

  val kind : kind

  (* -- allocation tracking (the host allocator's wrappers) -- *)
  val register_heap : t -> base:int -> size:int -> unit
  val unregister_heap : t -> now:float -> base:int -> float
  val declare_alloca : t -> now:float -> base:int -> size:int -> float
  val expire_alloca : t -> base:int -> unit

  (* -- communication management (the cgcm.* intrinsics) -- *)
  val map : t -> now:float -> int -> int * float
  val unmap : t -> now:float -> int -> float
  val release : t -> now:float -> int -> float
  val map_array : t -> now:float -> int -> int * float
  val unmap_array : t -> now:float -> int -> float
  val release_array : t -> now:float -> int -> float
  val bump_epoch : t -> unit

  (* -- residency / leak reporting -- *)
  val leak_report : t -> Runtime.leak_report
end

module Explicit_backend : S with type t = Runtime.t = struct
  type t = Runtime.t

  let kind = Explicit

  let register_heap rt ~base ~size = Runtime.register_heap rt ~base ~size

  let unregister_heap rt ~now ~base =
    rt.Runtime.now <- now;
    Runtime.unregister_heap rt ~base;
    rt.Runtime.now

  let declare_alloca rt ~now ~base ~size =
    rt.Runtime.now <- now;
    Runtime.declare_alloca rt ~base ~size;
    rt.Runtime.now

  let expire_alloca rt ~base = Runtime.expire_alloca rt ~base

  let map rt ~now p =
    rt.Runtime.now <- now;
    let d = Runtime.map rt p in
    (d, rt.Runtime.now)

  let unmap rt ~now p =
    rt.Runtime.now <- now;
    Runtime.unmap rt p;
    rt.Runtime.now

  let release rt ~now p =
    rt.Runtime.now <- now;
    Runtime.release rt p;
    rt.Runtime.now

  let map_array rt ~now p =
    rt.Runtime.now <- now;
    let d = Runtime.map_array rt p in
    (d, rt.Runtime.now)

  let unmap_array rt ~now p =
    rt.Runtime.now <- now;
    Runtime.unmap_array rt p;
    rt.Runtime.now

  let release_array rt ~now p =
    rt.Runtime.now <- now;
    Runtime.release_array rt p;
    rt.Runtime.now

  let bump_epoch = Runtime.bump_epoch
  let leak_report = Runtime.leak_report
end

(* Under paging the hardware manages communication: pointers are valid
   on both sides, so map is the identity and the rest of the management
   surface does nothing — the cost CGCM's compiler-inserted calls would
   have paid shows up as page faults at the access hooks instead.
   Nothing is ever device-resident in the run-time's sense, so the leak
   report is trivially clean. *)
module Paged_backend : S with type t = Paged.t = struct
  type t = Paged.t

  let kind = Paged
  let register_heap _ ~base:_ ~size:_ = ()
  let unregister_heap _ ~now ~base:_ = now
  let declare_alloca _ ~now ~base:_ ~size:_ = now
  let expire_alloca _ ~base:_ = ()
  let map _ ~now p = (p, now)
  let unmap _ ~now _ = now
  let release _ ~now _ = now
  let map_array _ ~now p = (p, now)
  let unmap_array _ ~now _ = now
  let release_array _ ~now _ = now
  let bump_epoch _ = ()

  let leak_report _ =
    {
      Runtime.resident_nonglobal = 0;
      resident_global = 0;
      refcount_sum = 0;
      leaked_dev_blocks = 0;
      leaked_dev_bytes = 0;
    }
end

(* First-class plumbing for the interpreter: one closure record, built
   from whichever instance the run selected, so the hot loop carries a
   single immutable value instead of a functor application. *)
type ops = {
  bk_kind : kind;
  bk_register_heap : base:int -> size:int -> unit;
  bk_unregister_heap : now:float -> base:int -> float;
  bk_declare_alloca : now:float -> base:int -> size:int -> float;
  bk_expire_alloca : base:int -> unit;
  bk_map : now:float -> int -> int * float;
  bk_unmap : now:float -> int -> float;
  bk_release : now:float -> int -> float;
  bk_map_array : now:float -> int -> int * float;
  bk_unmap_array : now:float -> int -> float;
  bk_release_array : now:float -> int -> float;
  bk_bump_epoch : unit -> unit;
  bk_leak_report : unit -> Runtime.leak_report;
}

let ops_of (type a) (module B : S with type t = a) (t : a) : ops =
  {
    bk_kind = B.kind;
    bk_register_heap = (fun ~base ~size -> B.register_heap t ~base ~size);
    bk_unregister_heap = (fun ~now ~base -> B.unregister_heap t ~now ~base);
    bk_declare_alloca =
      (fun ~now ~base ~size -> B.declare_alloca t ~now ~base ~size);
    bk_expire_alloca = (fun ~base -> B.expire_alloca t ~base);
    bk_map = (fun ~now p -> B.map t ~now p);
    bk_unmap = (fun ~now p -> B.unmap t ~now p);
    bk_release = (fun ~now p -> B.release t ~now p);
    bk_map_array = (fun ~now p -> B.map_array t ~now p);
    bk_unmap_array = (fun ~now p -> B.unmap_array t ~now p);
    bk_release_array = (fun ~now p -> B.release_array t ~now p);
    bk_bump_epoch = (fun () -> B.bump_epoch t);
    bk_leak_report = (fun () -> B.leak_report t);
  }

let explicit rt = ops_of (module Explicit_backend) rt
let paged pg = ops_of (module Paged_backend) pg
