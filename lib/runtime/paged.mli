(** The paged-memory backend: a single shared address space where the
    simulator charges touch-driven page-granular migration — the managed
    -memory model (CUDA unified memory / a coherent CPU-GPU link), in
    contrast to the explicit-copy model the CGCM run-time manages.

    Under this backend CGCM's map/unmap/release intrinsics are no-ops
    and all communication cost comes from page faults. Each page
    ({!Cgcm_gpusim.Cost_model.page_bytes}) is resident on one side at a
    time: first touch places it free (populate-on-first-touch), a
    same-side re-touch is free (no double charge), and a cross-side
    touch migrates the page for [page_fault_cycles + page_bytes /
    transfer_bytes_per_cycle].

    Device-side faults accumulate and extend the device's busy window
    when the launch ends ({!flush_launch}); host-side faults are
    synchronous — the caller syncs the device, then pays the returned
    cycles. Not a coherence protocol: the interpreter reads and writes
    one shared memspace, so this module is pure accounting. *)

type t

type stats = {
  mutable touches : int;  (** touch events, both sides *)
  mutable touched_pages : int;  (** distinct pages ever touched *)
  mutable faults_to_dev : int;  (** pages migrated host -> device *)
  mutable faults_to_host : int;  (** pages migrated device -> host *)
  mutable bytes_to_dev : int;
  mutable bytes_to_host : int;
}

val create : dev:Cgcm_gpusim.Device.t -> Cgcm_gpusim.Cost_model.t -> t
val stats : t -> stats

val touch : t -> kernel:bool -> addr:int -> len:int -> float
(** Note an access to [addr, addr+len). Returns the cycles the host must
    pay immediately — always [0.0] for kernel-side touches, whose cost
    lands in the pending pool until {!flush_launch}. A positive return
    means pages migrated device-to-host: the caller must sync the device
    (the pages may hold kernel output), advance its clock by the return
    value, and report the stall via {!note_host_migration}. *)

val last_host_fault_pages : t -> int
(** Pages migrated by the most recent host-side faulting touch. *)

val note_host_migration : t -> start:float -> cycles:float -> pages:int -> unit
(** Record a host-side migration in the device's transfer accounting and
    trace, once the caller knows when it started. *)

val place_host : t -> addr:int -> len:int -> unit
(** Pre-place pages host-resident for free: module globals carry initial
    values written at load time, so their pages are host-populated
    before main runs. *)

val flush_launch : t -> unit
(** Flush device-side fault time accumulated during a kernel into the
    device timeline (busy window, transfer stats, trace). Call when the
    launch's driver work completes. *)

val fault_cost : t -> float
(** Full migration cost of one page, either direction. *)

val page_bytes : t -> int
val total_faults : t -> int
val migrated_bytes : t -> int
