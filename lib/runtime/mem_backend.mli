(** The memory-backend seam: the communication-management surface the
    interpreter programs against, with one instance per hardware memory
    model.

    {!Explicit_backend} is the paper's split-memory world — the CGCM
    run-time ({!Runtime}) tracks allocation units and map/unmap/release
    move data over the bus. {!Paged_backend} is a single shared address
    space with touch-driven page-granular migration ({!Paged}) — the
    intrinsics are no-ops and all cost comes from page faults charged at
    the interpreter's access hooks.

    The signature covers the cold management surface (allocation
    tracking, the cgcm.* intrinsics, epoch advance, leak reporting);
    the hot per-access paths are specialised in the interpreter's
    decoder, keyed off the same backend choice. Fault injection is
    shared: both backends drive the same simulated device, so fault
    plans apply identically. *)

type kind = Explicit | Paged

val to_string : kind -> string
val of_string : string -> (kind, string) result

val all : (string * kind) list
(** Name/value pairs for CLI enum converters. *)

(** Operations every memory backend provides. Timed operations take the
    interpreter's clock and return its new value. *)
module type S = sig
  type t

  val kind : kind

  (** {2 Allocation tracking} *)

  val register_heap : t -> base:int -> size:int -> unit
  val unregister_heap : t -> now:float -> base:int -> float
  val declare_alloca : t -> now:float -> base:int -> size:int -> float
  val expire_alloca : t -> base:int -> unit

  (** {2 Communication management — the cgcm.* intrinsics} *)

  val map : t -> now:float -> int -> int * float
  (** Returns the pointer the kernel should use (a device copy under the
      explicit model, the same pointer under paging) and the new clock. *)

  val unmap : t -> now:float -> int -> float
  val release : t -> now:float -> int -> float
  val map_array : t -> now:float -> int -> int * float
  val unmap_array : t -> now:float -> int -> float
  val release_array : t -> now:float -> int -> float
  val bump_epoch : t -> unit

  (** {2 Residency / leak reporting} *)

  val leak_report : t -> Runtime.leak_report
end

module Explicit_backend : S with type t = Runtime.t
module Paged_backend : S with type t = Paged.t

(** The backend packed as one closure record so the interpreter carries
    a single value regardless of instance. *)
type ops = {
  bk_kind : kind;
  bk_register_heap : base:int -> size:int -> unit;
  bk_unregister_heap : now:float -> base:int -> float;
  bk_declare_alloca : now:float -> base:int -> size:int -> float;
  bk_expire_alloca : base:int -> unit;
  bk_map : now:float -> int -> int * float;
  bk_unmap : now:float -> int -> float;
  bk_release : now:float -> int -> float;
  bk_map_array : now:float -> int -> int * float;
  bk_unmap_array : now:float -> int -> float;
  bk_release_array : now:float -> int -> float;
  bk_bump_epoch : unit -> unit;
  bk_leak_report : unit -> Runtime.leak_report;
}

val ops_of : (module S with type t = 'a) -> 'a -> ops
val explicit : Runtime.t -> ops
val paged : Paged.t -> ops
