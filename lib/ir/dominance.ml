(* Dominator computation (Cooper-Harvey-Kennedy iterative algorithm). *)

type t = {
  idom : int array;  (* immediate dominator; entry's idom is itself; -1 = unreachable *)
  rpo_index : int array;
}

let compute (f : Ir.func) =
  let n = Array.length f.blocks in
  let rpo = Cfg.reverse_postorder f in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let preds = Cfg.preds f in
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then begin
          let processed =
            List.filter (fun p -> idom.(p) <> -1) preds.(b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { idom; rpo_index }

(* Does block [a] dominate block [b]? *)
let dominates t a b =
  if t.idom.(b) = -1 || t.idom.(a) = -1 then false
  else begin
    let rec up b = if b = a then true else if b = 0 then a = 0 else up t.idom.(b) in
    up b
  end

let idom t b = t.idom.(b)

(* Structural equality, used by the analysis manager's paranoid mode to
   detect stale cached dominator trees. The idom array is a canonical
   representation; rpo_index is deterministic given the CFG, so comparing
   both is safe and cheap. *)
let equal a b = a.idom = b.idom && a.rpo_index = b.rpo_index
