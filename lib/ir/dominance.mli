(** Dominator computation (the Cooper-Harvey-Kennedy iterative
    algorithm). *)

type t

val compute : Ir.func -> t

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does block [a] dominate block [b]? Reflexive;
    false for unreachable blocks. *)

val idom : t -> int -> int
(** Immediate dominator; the entry's idom is itself; -1 = unreachable. *)

val equal : t -> t -> bool
(** Structural equality (same CFG → same tree); the analysis manager's
    paranoid mode compares cached against fresh results with this. *)
