(* Shadow-memory coherence sanitizer.

   CGCM's correctness claim is that the automatically inserted map /
   unmap / release calls keep the divided CPU and GPU memories coherent.
   Output diffing cannot check that claim: a stale byte that the program
   never prints, a write-back that clobbers a host update of equal value,
   or refcount drift that only leaks memory all pass a diff. This module
   checks the invariant itself.

   Every allocation unit the run-time knows about is mirrored here with
   an independent byte-version map:

     host_dirty[i]  the host copy of byte i is newer than the device copy
                    (set on every host store, cleared by HtoD over i)
     dev_dirty[i]   the device copy of byte i is newer than the host copy
                    (set on every kernel store, cleared by DtoH over i)
     lost[i]        the freshest value of byte i was destroyed before it
                    was propagated (device copy freed while dirty, or an
                    HtoD overwrote unsynchronized kernel output)

   plus the shadow's own refcounts, the claimed device ranges, and the
   epoch of the last transfer. The state machine is driven by hooks on
   the gpusim driver (transfers, frees), the run-time (registration,
   map/unmap/release and the array variants, epochs) and the interpreter
   (every program load and store, kernel launch read/write sets).

   The sanitizer deliberately tracks *dataflow*, not protocol shape: a
   dropped unmap is not reported at the drop site (the run-time cannot
   see it) but at the first host read of a byte whose freshest value is
   still — or died — on the device. Violations raise
   {!Cgcm_support.Errors.Coherence_violation} immediately, carrying the
   unit, the offending instruction and the unit's version history.

   Transfers the dirty bits prove redundant (no byte moved was out of
   date) are *flagged* in the {!report} rather than raised: the paper's
   unoptimized whole-unit protocol re-copies resident units by design,
   and the sanitizer must run clean on it. *)

module Avl = Cgcm_support.Avl_map.Int
module Errors = Cgcm_support.Errors

type shadow = {
  su_base : int;
  su_size : int;
  su_global : string option;
  su_read_only : bool;
  su_kind : string;  (* "heap" | "global" | "alloca" *)
  mutable su_refcount : int;
  mutable su_arr_refcount : int;
  mutable su_devptr : int option;  (* claimed direct device range *)
  mutable su_shadow : int option;  (* claimed translated-array range *)
  mutable su_epoch : int;  (* epoch of the last transfer either way *)
  host_dirty : Bytes.t;
  dev_dirty : Bytes.t;
  lost : Bytes.t;
  mutable history : string list;  (* newest first, bounded *)
  mutable hist_len : int;
}

type claim_kind = Direct | Translated

type claim = { c_base : int; c_unit : shadow; c_kind : claim_kind }

type stats = {
  checks : Cgcm_support.Stats.Counter.t;  (* program accesses checked;
     atomic because parallel kernel shards bump it concurrently *)
  mutable transfers : int;  (* transfers observed *)
  mutable redundant_htod : int;
  mutable redundant_htod_bytes : int;
  mutable redundant_dtoh : int;
  mutable redundant_dtoh_bytes : int;
  mutable unreferenced_maps : int;
      (* launches at which a mapped global was provably untouched *)
}

type t = {
  dev_lo : int;  (* first device address: spaces never overlap *)
  mutable units : shadow Avl.t;  (* host base -> shadow *)
  mutable claims : claim Avl.t;  (* device base -> claim *)
  freed_dev : (int, Errors.unit_snapshot option) Hashtbl.t;  (* tombstones *)
  by_global : (string, int) Hashtbl.t;
  mutable epoch : int;
  st : stats;
  (* one-entry lookup caches: loop bodies hammer a single unit *)
  mutable last_host : shadow option;
  mutable last_claim : claim option;
}

let create ~dev_lo () =
  {
    dev_lo;
    units = Avl.empty;
    claims = Avl.empty;
    freed_dev = Hashtbl.create 64;
    by_global = Hashtbl.create 16;
    epoch = 0;
    st =
      {
        checks = Cgcm_support.Stats.Counter.create ();
        transfers = 0;
        redundant_htod = 0;
        redundant_htod_bytes = 0;
        redundant_dtoh = 0;
        redundant_dtoh_bytes = 0;
        unreferenced_maps = 0;
      };
    last_host = None;
    last_claim = None;
  }

(* ------------------------------------------------------------------ *)
(* Byte-map scans                                                      *)

let rec first_set b off stop =
  if off >= stop then -1
  else if Bytes.unsafe_get b off <> '\000' then off
  else first_set b (off + 1) stop

let count_set b off stop =
  let n = ref 0 in
  for i = off to stop - 1 do
    if Bytes.unsafe_get b i <> '\000' then incr n
  done;
  !n

let any_set b = first_set b 0 (Bytes.length b) >= 0

(* Clamp an [off, off+len) window to the unit, defensively: run-time
   transfers are always within one unit, but the sanitizer must not
   trust the code it audits. *)
let window su ~off ~len =
  let off = max 0 off in
  let stop = min su.su_size (off + len) in
  (off, max off stop)

(* ------------------------------------------------------------------ *)
(* History and violations                                              *)

let max_history = 16

let record su fmt =
  Printf.ksprintf
    (fun s ->
      su.history <- s :: (if su.hist_len >= max_history then
                            List.filteri (fun i _ -> i < max_history - 1) su.history
                          else su.history);
      su.hist_len <- min max_history (su.hist_len + 1))
    fmt

let snapshot su : Errors.unit_snapshot =
  {
    Errors.u_base = su.su_base;
    u_size = su.su_size;
    u_refcount = su.su_refcount;
    u_arr_refcount = su.su_arr_refcount;
    u_epoch = su.su_epoch;
    u_devptr = su.su_devptr;
    u_global = su.su_global;
  }

let violate su ~kind ~addr ~offset ~instr ~detail =
  raise
    (Errors.Coherence_violation
       {
         Errors.v_kind = kind;
         v_unit = snapshot su;
         v_addr = addr;
         v_offset = offset;
         v_instr = instr;
         v_detail = detail;
         (* stored newest first; the renderer reverses *)
         v_history = List.rev su.history;
       })

(* ------------------------------------------------------------------ *)
(* Lookups                                                             *)

let invalidate_caches t =
  t.last_host <- None;
  t.last_claim <- None

let find_host t addr =
  match t.last_host with
  | Some su when addr >= su.su_base && addr < su.su_base + su.su_size ->
    Some su
  | _ -> (
    match Avl.greatest_leq addr t.units with
    | Some (_, su) when addr >= su.su_base && addr < su.su_base + su.su_size ->
      t.last_host <- Some su;
      Some su
    | _ -> None)

let find_claim t addr =
  match t.last_claim with
  | Some c when addr >= c.c_base && addr < c.c_base + c.c_unit.su_size ->
    Some c
  | _ -> (
    match Avl.greatest_leq addr t.claims with
    | Some (_, c) when addr >= c.c_base && addr < c.c_base + c.c_unit.su_size ->
      t.last_claim <- Some c;
      Some c
    | _ -> None)

let claim t su kind base =
  t.claims <- Avl.add base { c_base = base; c_unit = su; c_kind = kind } t.claims;
  t.last_claim <- None;
  (match kind with
  | Direct -> su.su_devptr <- Some base
  | Translated -> su.su_shadow <- Some base)

let unclaim t base =
  t.claims <- Avl.remove base t.claims;
  t.last_claim <- None

(* ------------------------------------------------------------------ *)
(* Registration hooks (run-time)                                       *)

let on_register t ~base ~size ~kind ?global ?(read_only = false) () =
  let size = max size 1 in
  let su =
    {
      su_base = base;
      su_size = size;
      su_global = global;
      su_read_only = read_only;
      su_kind = kind;
      su_refcount = 0;
      su_arr_refcount = 0;
      su_devptr = None;
      su_shadow = None;
      su_epoch = 0;
      (* the host copy is authoritative at birth: nothing has been
         transferred, so every byte is host-newer *)
      host_dirty = Bytes.make size '\001';
      dev_dirty = Bytes.make size '\000';
      lost = Bytes.make size '\000';
      history = [];
      hist_len = 0;
    }
  in
  record su "epoch %d: registered %s unit (%d B)" t.epoch kind size;
  t.units <- Avl.add base su t.units;
  (match global with Some g -> Hashtbl.replace t.by_global g base | None -> ());
  invalidate_caches t

let on_unregister t ~base ~op =
  (match Avl.find_opt base t.units with
  | None -> ()
  | Some su ->
    if su.su_refcount > 0 || su.su_arr_refcount > 0 then
      violate su ~kind:Errors.Premature_release ~addr:base ~offset:0 ~instr:op
        ~detail:
          (Printf.sprintf
             "unit unregistered while still mapped (shadow refcount=%d, \
              arrayRefcount=%d): its device copy would dangle"
             su.su_refcount su.su_arr_refcount);
    (match su.su_devptr with Some d -> unclaim t d | None -> ());
    (match su.su_shadow with Some s -> unclaim t s | None -> ());
    (match su.su_global with
    | Some g -> Hashtbl.remove t.by_global g
    | None -> ());
    t.units <- Avl.remove base t.units);
  invalidate_caches t

(* ------------------------------------------------------------------ *)
(* map / unmap / release hooks (run-time; called after the run-time's
   own bookkeeping succeeded, so the shadow is an independent replica)  *)

let on_map t ~base ~devptr =
  match find_host t base with
  | None -> ()
  | Some su ->
    su.su_refcount <- su.su_refcount + 1;
    (match su.su_devptr with
    | Some d when d = devptr -> ()
    | Some d -> unclaim t d; claim t su Direct devptr
    | None -> claim t su Direct devptr);
    record su "epoch %d: map -> refcount %d (devptr 0x%x)" t.epoch
      su.su_refcount devptr

(* A module global resolved inside a kernel (cuModuleGetGlobal path):
   claims the device range even when no map ever ran, which is exactly
   how a dropped or wrongly-hoisted map becomes visible as a
   stale-device-read at the kernel's first byte access. *)
let on_global_resolved t ~base ~devptr =
  match find_host t base with
  | None -> ()
  | Some su -> (
    match su.su_devptr with
    | Some d when d = devptr -> ()
    | Some d -> unclaim t d; claim t su Direct devptr
    | None ->
      claim t su Direct devptr;
      record su "epoch %d: resolved on device without map (devptr 0x%x)"
        t.epoch devptr)

let on_unmap t ~base =
  match find_host t base with
  | None -> ()
  | Some su -> record su "epoch %d: unmap" t.epoch

let on_release t ~base ~op =
  match find_host t base with
  | None -> ()
  | Some su ->
    su.su_refcount <- su.su_refcount - 1;
    record su "epoch %d: release -> refcount %d" t.epoch su.su_refcount;
    if su.su_refcount < 0 then
      violate su ~kind:Errors.Premature_release ~addr:base ~offset:0 ~instr:op
        ~detail:"shadow reference count went negative: one release too many"

let on_map_array t ~base ~shadow ~translated =
  match find_host t base with
  | None -> ()
  | Some su ->
    su.su_arr_refcount <- su.su_arr_refcount + 1;
    if translated then begin
      (* The translated array is built from the current host pointers,
         so the device view is in sync by construction. Host writes to
         the pointer array after this point are *not* propagated — they
         re-dirty the unit and a kernel read through the stale
         translation will flag. *)
      Bytes.fill su.host_dirty 0 su.su_size '\000';
      (match su.su_shadow with
      | Some s when s <> shadow -> unclaim t s
      | _ -> ());
      claim t su Translated shadow;
      record su "epoch %d: mapArray translated -> shadow 0x%x, arrayRefcount %d"
        t.epoch shadow su.su_arr_refcount
    end
    else
      record su "epoch %d: mapArray (cached translation) -> arrayRefcount %d"
        t.epoch su.su_arr_refcount

let on_unmap_array t ~base =
  match find_host t base with
  | None -> ()
  | Some su -> record su "epoch %d: unmapArray" t.epoch

let on_release_array t ~base ~op =
  match find_host t base with
  | None -> ()
  | Some su ->
    su.su_arr_refcount <- su.su_arr_refcount - 1;
    record su "epoch %d: releaseArray -> arrayRefcount %d" t.epoch
      su.su_arr_refcount;
    if su.su_arr_refcount < 0 then
      violate su ~kind:Errors.Premature_release ~addr:base ~offset:0 ~instr:op
        ~detail:
          "shadow array reference count went negative: one releaseArray too \
           many"

let on_epoch t = t.epoch <- t.epoch + 1

(* ------------------------------------------------------------------ *)
(* Transfer hooks (driver; called after a successful DMA only, so a
   retried transfer is observed once)                                  *)

let on_htod t ~host_addr ~dev_addr ~len ~label =
  ignore dev_addr;
  match find_host t host_addr with
  | None -> ()  (* bounce buffer or unregistered memory: not our unit *)
  | Some su ->
    t.st.transfers <- t.st.transfers + 1;
    let off, stop = window su ~off:(host_addr - su.su_base) ~len in
    let fresh = count_set su.host_dirty off stop in
    (* Host data overwrites kernel output that was never written back:
       from here on both copies hold the host version, so the kernel's
       values are unrecoverable. Mark them lost; the read that observes
       them is the violation. *)
    for i = off to stop - 1 do
      if Bytes.unsafe_get su.dev_dirty i <> '\000' then begin
        Bytes.unsafe_set su.lost i '\001';
        Bytes.unsafe_set su.dev_dirty i '\000'
      end
    done;
    Bytes.fill su.host_dirty off (stop - off) '\000';
    su.su_epoch <- t.epoch;
    if fresh = 0 then begin
      t.st.redundant_htod <- t.st.redundant_htod + 1;
      t.st.redundant_htod_bytes <- t.st.redundant_htod_bytes + (stop - off);
      record su "epoch %d: HtoD %d B (%s) [redundant: no dirty byte moved]"
        t.epoch (stop - off) label
    end
    else record su "epoch %d: HtoD %d B (%s), %d fresh" t.epoch (stop - off)
        label fresh

let on_dtoh t ~host_addr ~dev_addr ~len ~label =
  ignore dev_addr;
  match find_host t host_addr with
  | None -> ()
  | Some su ->
    t.st.transfers <- t.st.transfers + 1;
    let off, stop = window su ~off:(host_addr - su.su_base) ~len in
    (match first_set su.host_dirty off stop with
    | -1 -> ()
    | bad ->
      violate su ~kind:Errors.Lost_host_update ~addr:(su.su_base + bad)
        ~offset:bad
        ~instr:(Printf.sprintf "DtoH transfer %d B (%s)" (stop - off) label)
        ~detail:
          "the device write-back overwrote bytes the host updated after the \
           last host-to-device copy");
    let fresh = count_set su.dev_dirty off stop in
    Bytes.fill su.dev_dirty off (stop - off) '\000';
    su.su_epoch <- t.epoch;
    if fresh = 0 then begin
      t.st.redundant_dtoh <- t.st.redundant_dtoh + 1;
      t.st.redundant_dtoh_bytes <- t.st.redundant_dtoh_bytes + (stop - off);
      record su "epoch %d: DtoH %d B (%s) [redundant: no dirty byte moved]"
        t.epoch (stop - off) label
    end
    else record su "epoch %d: DtoH %d B (%s), %d fresh" t.epoch (stop - off)
        label fresh

(* A device block is about to be freed (cuMemFree / forget_global). *)
let on_dev_free t ~addr ~op =
  (match Hashtbl.find_opt t.freed_dev addr with
  | Some prior ->
    let su_dummy =
      match prior with
      | Some u -> u
      | None ->
        {
          Errors.u_base = 0;
          u_size = 0;
          u_refcount = 0;
          u_arr_refcount = 0;
          u_epoch = 0;
          u_devptr = Some addr;
          u_global = None;
        }
    in
    raise
      (Errors.Coherence_violation
         {
           Errors.v_kind = Errors.Double_free;
           v_unit = su_dummy;
           v_addr = addr;
           v_offset = 0;
           v_instr = op;
           v_detail =
             Printf.sprintf "device block 0x%x was already freed once" addr;
           v_history = [];
         })
  | None -> ());
  (match Avl.find_opt addr t.claims with
  | Some { c_kind = Direct; c_unit = su; _ } ->
    if su.su_refcount > 0 then
      violate su ~kind:Errors.Premature_release ~addr ~offset:0 ~instr:op
        ~detail:
          (Printf.sprintf
             "device copy freed while the unit is still mapped (shadow \
              refcount=%d)"
             su.su_refcount);
    (* Unsynchronized kernel output dies with the block. *)
    let lost_now = count_set su.dev_dirty 0 su.su_size in
    for i = 0 to su.su_size - 1 do
      if Bytes.unsafe_get su.dev_dirty i <> '\000' then begin
        Bytes.unsafe_set su.lost i '\001';
        Bytes.unsafe_set su.dev_dirty i '\000'
      end
    done;
    if lost_now > 0 then
      record su "epoch %d: device copy freed with %d unsynchronized B (%s)"
        t.epoch lost_now op
    else record su "epoch %d: device copy freed (%s)" t.epoch op;
    su.su_devptr <- None;
    Hashtbl.replace t.freed_dev addr (Some (snapshot su));
    unclaim t addr
  | Some { c_kind = Translated; c_unit = su; _ } ->
    record su "epoch %d: translated array freed (%s)" t.epoch op;
    su.su_shadow <- None;
    Hashtbl.replace t.freed_dev addr (Some (snapshot su));
    unclaim t addr
  | None ->
    (* not one of ours (manual gpu_malloc, kernel-local frame): still
       tombstone it — the device space never recycles addresses, so a
       second free of the same block is always a bug *)
    Hashtbl.replace t.freed_dev addr None)

(* ------------------------------------------------------------------ *)
(* Program access hooks (interpreter, both engines)                    *)

let access_instr ~what ~len ~addr ~fn ~kernel =
  Printf.sprintf "%s %d B @0x%x in %s%s" what len addr fn
    (if kernel then " [kernel]" else "")

let on_load t ~addr ~len ~fn ~kernel =
  Cgcm_support.Stats.Counter.incr t.st.checks;
  if addr >= t.dev_lo then begin
    match find_claim t addr with
    | None -> ()  (* kernel-local stack or manually managed memory *)
    | Some { c_base; c_unit = su; c_kind } -> (
      let off, stop = window su ~off:(addr - c_base) ~len in
      match first_set su.host_dirty off stop with
      | bad when bad >= 0 ->
        violate su ~kind:Errors.Stale_device_read ~addr ~offset:bad
          ~instr:(access_instr ~what:"load" ~len ~addr ~fn ~kernel)
          ~detail:
            (match c_kind with
            | Direct ->
              "the host updated this byte after the last host-to-device \
               copy: the kernel is reading a stale device copy"
            | Translated ->
              "the host rewrote this pointer-array byte after mapArray \
               translated it: the kernel is reading a stale translation")
      | _ -> (
        match first_set su.lost off stop with
        | bad when bad >= 0 ->
          violate su ~kind:Errors.Stale_device_read ~addr ~offset:bad
            ~instr:(access_instr ~what:"load" ~len ~addr ~fn ~kernel)
            ~detail:
              "the freshest value of this byte was destroyed (overwritten \
               or freed) before it was propagated"
        | _ -> ()))
  end
  else
    match find_host t addr with
    | None -> ()
    | Some su -> (
      let off, stop = window su ~off:(addr - su.su_base) ~len in
      match first_set su.lost off stop with
      | bad when bad >= 0 ->
        violate su ~kind:Errors.Stale_host_read ~addr ~offset:bad
          ~instr:(access_instr ~what:"load" ~len ~addr ~fn ~kernel)
          ~detail:
            "the freshest value of this byte died on the device (its copy \
             was freed or overwritten before write-back)"
      | _ -> (
        match first_set su.dev_dirty off stop with
        | bad when bad >= 0 ->
          violate su ~kind:Errors.Stale_host_read ~addr ~offset:bad
            ~instr:(access_instr ~what:"load" ~len ~addr ~fn ~kernel)
            ~detail:
              "the device copy holds a newer value that was never copied \
               back (missing unmap?)"
        | _ -> ()))

let on_store t ~addr ~len ~fn ~kernel =
  ignore fn;
  ignore kernel;
  Cgcm_support.Stats.Counter.incr t.st.checks;
  if addr >= t.dev_lo then begin
    match find_claim t addr with
    | None -> ()
    | Some { c_base; c_unit = su; _ } ->
      let off, stop = window su ~off:(addr - c_base) ~len in
      Bytes.fill su.dev_dirty off (stop - off) '\001';
      (* A kernel overwrite makes the device version the freshest one,
         whatever the host did before: byte-precise dataflow, so a blind
         kernel write over an unsynchronized host update is not an
         error — the final value is identical either way. *)
      Bytes.fill su.host_dirty off (stop - off) '\000';
      Bytes.fill su.lost off (stop - off) '\000'
  end
  else
    match find_host t addr with
    | None -> ()
    | Some su ->
      let off, stop = window su ~off:(addr - su.su_base) ~len in
      Bytes.fill su.host_dirty off (stop - off) '\001';
      Bytes.fill su.dev_dirty off (stop - off) '\000';
      Bytes.fill su.lost off (stop - off) '\000'

(* ------------------------------------------------------------------ *)
(* Launch hook: the static read/write sets from Analysis.Modref        *)

(* The byte-level hooks above catch what the kernel *actually* touches;
   the static sets catch management that is provably useless — a unit
   held mapped across a launch whose kernel cannot reference it. That is
   a diagnostic (map promotion may hoist conservatively), never a
   violation. *)
let on_launch t ~kernel ~reads ~writes ~unknown =
  Avl.iter
    (fun _ su ->
      let named l =
        match su.su_global with Some g -> List.mem g l | None -> false
      in
      let referenced = unknown || named reads || named writes in
      if su.su_refcount > 0 || su.su_arr_refcount > 0 || named reads
         || named writes
      then
        record su "epoch %d: launch %s%s" t.epoch kernel
          (if referenced then "" else " [unit not in kernel's read/write set]");
      if
        (su.su_refcount > 0 || su.su_arr_refcount > 0)
        && (not referenced)
        && su.su_global <> None
      then t.st.unreferenced_maps <- t.st.unreferenced_maps + 1)
    t.units

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

type report = {
  r_checks : int;
  r_transfers : int;
  r_redundant_htod : int;
  r_redundant_htod_bytes : int;
  r_redundant_dtoh : int;
  r_redundant_dtoh_bytes : int;
  r_unreferenced_maps : int;
  r_units_live : int;
  r_units_dev_dirty : int;  (* live units with unsynchronized device bytes *)
}

let report t =
  let live = Avl.cardinal t.units in
  let dirty =
    Avl.fold (fun _ su n -> if any_set su.dev_dirty then n + 1 else n) t.units 0
  in
  {
    r_checks = Cgcm_support.Stats.Counter.get t.st.checks;
    r_transfers = t.st.transfers;
    r_redundant_htod = t.st.redundant_htod;
    r_redundant_htod_bytes = t.st.redundant_htod_bytes;
    r_redundant_dtoh = t.st.redundant_dtoh;
    r_redundant_dtoh_bytes = t.st.redundant_dtoh_bytes;
    r_unreferenced_maps = t.st.unreferenced_maps;
    r_units_live = live;
    r_units_dev_dirty = dirty;
  }

let render_report r =
  Printf.sprintf
    "clean: %d accesses checked, %d transfers (%d+%d provably redundant, \
     %d B), %d unreferenced maps, %d live units (%d with unsynchronized \
     device bytes)"
    r.r_checks r.r_transfers r.r_redundant_htod r.r_redundant_dtoh
    (r.r_redundant_htod_bytes + r.r_redundant_dtoh_bytes)
    r.r_unreferenced_maps r.r_units_live r.r_units_dev_dirty
