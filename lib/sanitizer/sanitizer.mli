(** Shadow-memory coherence sanitizer.

    Mirrors every allocation unit the CGCM run-time manages with an
    independent byte-version map (host-dirty, device-dirty, lost bits,
    refcounts, epoch of last transfer) and checks the coherence
    invariant directly, instead of trusting output diffs. Driven by
    hooks on the gpusim driver (transfers, device frees), the run-time
    (registration, map/unmap/release and the array variants, epochs)
    and the interpreter (every program load/store, kernel launch
    read/write sets).

    Violations — stale device reads, stale host reads, lost host
    updates, premature releases, double frees — raise
    {!Cgcm_support.Errors.Coherence_violation} fail-fast with the unit,
    the offending instruction and the unit's version history. Transfers
    the dirty bits prove redundant are only counted in the {!report}:
    the unoptimized whole-unit protocol re-copies resident units by
    design and must still sanitize clean. *)

type t

val create : dev_lo:int -> unit -> t
(** [dev_lo] is the first device address; the host and device address
    spaces must not overlap (they never do in the simulator). *)

(** {1 Run-time hooks} — call after the mirrored operation succeeded,
    so the shadow stays an independent replica of committed state. *)

val on_register :
  t ->
  base:int ->
  size:int ->
  kind:string ->
  ?global:string ->
  ?read_only:bool ->
  unit ->
  unit

val on_unregister : t -> base:int -> op:string -> unit
(** Raises [Premature_release] if the unit is still mapped. *)

val on_map : t -> base:int -> devptr:int -> unit

val on_global_resolved : t -> base:int -> devptr:int -> unit
(** A module global materialized on the device (cuModuleGetGlobal
    path). Claims the device range even when no [map] ever ran — which
    is how a dropped map becomes a stale-device-read at the kernel's
    first access instead of passing silently. *)

val on_unmap : t -> base:int -> unit
val on_release : t -> base:int -> op:string -> unit
val on_map_array : t -> base:int -> shadow:int -> translated:bool -> unit
val on_unmap_array : t -> base:int -> unit
val on_release_array : t -> base:int -> op:string -> unit
val on_epoch : t -> unit

(** {1 Driver hooks} — call after a successful DMA / free only. *)

val on_htod :
  t -> host_addr:int -> dev_addr:int -> len:int -> label:string -> unit

val on_dtoh :
  t -> host_addr:int -> dev_addr:int -> len:int -> label:string -> unit
(** Raises [Lost_host_update] if the write-back overlaps host-dirty
    bytes. *)

val on_dev_free : t -> addr:int -> op:string -> unit
(** Call {e before} the underlying free. Raises [Double_free] on a
    tombstoned block and [Premature_release] if the unit is still
    mapped. *)

(** {1 Interpreter hooks} — every program load/store, both engines. *)

val on_load : t -> addr:int -> len:int -> fn:string -> kernel:bool -> unit
val on_store : t -> addr:int -> len:int -> fn:string -> kernel:bool -> unit

val on_launch :
  t ->
  kernel:string ->
  reads:string list ->
  writes:string list ->
  unknown:bool ->
  unit
(** Static read/write sets from [Analysis.Modref]; flags mapped globals
    the kernel provably cannot reference (a statistic, not a violation —
    map promotion may hoist conservatively). *)

(** {1 Reporting} *)

type report = {
  r_checks : int;
  r_transfers : int;
  r_redundant_htod : int;
  r_redundant_htod_bytes : int;
  r_redundant_dtoh : int;
  r_redundant_dtoh_bytes : int;
  r_unreferenced_maps : int;
  r_units_live : int;
  r_units_dev_dirty : int;
}

val report : t -> report
val render_report : report -> string
