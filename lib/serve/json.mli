(** Minimal JSON codec for the serve wire protocol.

    Self-contained (no external JSON dependency): every {!t} printed by
    {!print} parses back to an equal value with {!parse}. Integers stay
    distinct from floats so request ids and exit codes round-trip
    exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val print : t -> string
(** Compact one-line rendering (no insignificant whitespace). *)

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

(** {2 Accessors}

    The [_field] accessors look a key up in an [Obj]; without a
    [default] they raise {!Parse_error} when the key is missing or has
    the wrong shape. *)

val member : string -> t -> t option
val str_field : ?default:string -> string -> t -> string
val int_field : ?default:int -> string -> t -> int
val bool_field : ?default:bool -> string -> t -> bool
val float_field : ?default:float -> string -> t -> float
val opt_str_field : string -> t -> string option
val opt_int_field : string -> t -> int option
