(* A minimal JSON codec for the serve wire protocol.

   The daemon cannot pull in an external JSON library (the container is
   what it is), and the protocol only needs objects of scalars plus the
   odd nested object — so this is a small, total, recursive-descent
   implementation: every value [print]s to a string that [parse]s back
   to an equal value. Integers are kept distinct from floats (request
   ids and exit codes must round-trip exactly). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec print_buf b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    (* %.17g round-trips any float; normalize nan/inf to null (the
       protocol never needs them, but a latency of 0/0 must not emit
       unparseable text) *)
    if Float.is_nan f || f = infinity || f = neg_infinity then
      Buffer.add_string b "null"
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> escape_string b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        print_buf b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        print_buf b v)
      fields;
    Buffer.add_char b '}'

let print v =
  let b = Buffer.create 256 in
  print_buf b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type cursor = { s : string; mutable pos : int }

let fail msg = raise (Parse_error msg)

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail (Printf.sprintf "expected %c, found %c at %d" ch x c.pos)
  | None -> fail (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail (Printf.sprintf "bad literal at %d" c.pos)

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 32 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents b
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> fail "unterminated escape"
      | Some e ->
        advance c;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if c.pos + 4 > String.length c.s then fail "truncated \\u escape";
          let hex = String.sub c.s c.pos 4 in
          c.pos <- c.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* the printer only emits \u for control bytes; decode the
             BMP point as UTF-8 so foreign peers stay readable *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | e -> fail (Printf.sprintf "bad escape \\%c" e));
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
      advance c;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* out-of-range integer literal: degrade to float *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string_body c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [ parse_value c ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        items := parse_value c :: !items;
        skip_ws c
      done;
      expect c ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        fields := field () :: !fields;
        skip_ws c
      done;
      expect c '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail (Printf.sprintf "unexpected character %c at %d" ch c.pos)

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    fail (Printf.sprintf "trailing garbage at %d" c.pos);
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str_field ?default key v =
  match (member key v, default) with
  | Some (Str s), _ -> s
  | (Some _ | None), Some d -> d
  | _, None -> fail (Printf.sprintf "missing string field %S" key)

let int_field ?default key v =
  match (member key v, default) with
  | Some (Int i), _ -> i
  | (Some _ | None), Some d -> d
  | _, None -> fail (Printf.sprintf "missing int field %S" key)

let bool_field ?(default = false) key v =
  match member key v with Some (Bool b) -> b | _ -> default

let float_field ?default key v =
  match (member key v, default) with
  | Some (Float f), _ -> f
  | Some (Int i), _ -> float_of_int i
  | (Some _ | None), Some d -> d
  | _, None -> fail (Printf.sprintf "missing float field %S" key)

let opt_str_field key v =
  match member key v with Some (Str s) -> Some s | _ -> None

let opt_int_field key v =
  match member key v with Some (Int i) -> Some i | _ -> None
