(** Kill-restart chaos harness for the serve daemon.

    Forks a real daemon (journal armed), drives a seeded request
    schedule over the unix socket, [kill -9]s the daemon at a seeded
    request index — optionally appending a torn record to the journal,
    as a crash mid-append would — then restarts it with recovery and
    drives the rest of the schedule. The run gates on the crash-only
    contract:

    - every [Ok] reply, before and after the kill, is bit-identical to
      a fresh single-shot [Pipeline.run] of the same (mode, source);
    - every compiled module a pre-kill reply vouched for is a cache
      [hit] after recovery (durability of the journaled recipe);
    - recovery reports the torn tail when one was injected;
    - both daemon generations shut down with zero device leaks and
      zero invariant violations (an unexpected daemon death is itself
      a violation).

    Failing schedules are shrunk greedily (drop requests, pull the kill
    earlier) to a minimal reproduction, mirroring the fuzzer's
    first-improvement discipline.

    Fork-based: callable only from a process that has not spawned
    domains (the [cgcm chaos] CLI qualifies; the alcotest suite, which
    runs the multicore engine first, does not). *)

type config = {
  ch_seed : int;
  ch_requests : int;  (** schedule length *)
  ch_dir : string;  (** working directory for socket/journal/logs *)
  ch_torn_tail : bool;  (** append a torn record before the restart *)
  ch_timeout_ms : int;  (** per-request client timeout *)
  ch_shards : int;
      (** shard count for the daemons under test: the kill lands while
          several per-shard journal segments are live, recovery must
          reassemble all of them, and the hit-after-recovery gate is
          tracked per shard (each has its own cache). The torn tail is
          injected into shard 0's segment. *)
}

val default_config : seed:int -> dir:string -> config
(** 30 requests, torn tail armed, 20 s request timeout, 1 shard. *)

type schedule = {
  sc_reqs : Wire.request list;
  sc_kill_at : int;
      (** the request index whose frame is written, after which the
          daemon is [kill -9]'d without reading the reply *)
}

val plan : seed:int -> requests:int -> schedule
(** The seeded schedule: a deterministic mix of program variants,
    modes, tenants and deadline-bombed spins, with a mid-burst kill
    index. *)

type violation = { vio_phase : string; vio_detail : string }

type outcome = {
  oc_config : config;
  oc_schedule : schedule;
  oc_pre_ok : int;  (** replies received before the kill *)
  oc_lost : int;  (** requests in flight at the kill (no reply) *)
  oc_post_ok : int;  (** replies received after recovery *)
  oc_recovered_modules : int;
  oc_rewarmed : int;
  oc_recovered_tenants : int;
  oc_torn_replay : bool;  (** recovery saw the torn tail *)
  oc_post_hits : int;  (** post-recovery hits on pre-kill modules *)
  oc_violations : violation list;  (** empty = the gate holds *)
}

val run : config -> outcome
(** One kill-restart cycle over {!plan}'s schedule for the config's
    seed. *)

val run_schedule : config -> schedule -> outcome
(** The same cycle over an explicit schedule (the shrinker's hook). *)

val shrink :
  ?budget:int ->
  ?budget_ms:float ->
  run:(schedule -> outcome) ->
  schedule ->
  outcome ->
  schedule * outcome
(** Greedy first-improvement shrinking of a failing schedule: drop
    requests and pull the kill index earlier while any violation
    persists, bounded by [budget] (default 24) evaluations and
    [budget_ms] (default 120000) wall-clock. *)

val render_outcome : outcome -> string
(** One summary line, plus one line per violation. *)

val render_schedule : schedule -> string
(** The minimal reproduction: kill index and one line per request. *)
