(* Load generator for the serve daemon ([cgcm bench -- serve] and the CI
   soak job).

   Drives a running daemon over its socket with a deterministic,
   seed-derived workload: a few program variants shared across tenants
   (so the compile cache sees hits), bursts of concurrent requests (so
   admission control sees pressure), an occasional spin program with a
   tiny deadline (so the fuel path fires), and a poison tenant whose
   requests carry an always-fire fault plan (so a breaker trips). The
   report aggregates client-observed outcomes and latencies. *)

module Rng = Cgcm_support.Rng

type report = {
  lr_requests : int;
  lr_ok : int;
  lr_shed : int;
  lr_deadline : int;
  lr_circuit_open : int;
  lr_errors : int;
  lr_degraded : int;
  lr_retries : int;
  lr_cache_hits : int;
  lr_cache_misses : int;
  lr_wall_s : float;
  lr_rps : float;
  lr_p50_ms : float;
  lr_p99_ms : float;
  lr_shed_rate : float;
  lr_cache_hit_rate : float;
}

(* A small family of CGC programs: one DOALL-able kernel over global
   arrays, sized by variant so distinct variants compile to distinct
   modules while repeats hit the cache. *)
let source ~variant =
  let n = 48 + (16 * (variant mod 4)) in
  Printf.sprintf
    {|// loadgen variant %d
global float A[%d];
global float B[%d];

void init() {
  for (int i = 0; i < %d; i++) {
    A[i] = (i %% 13 + 1) * 0.25;
    B[i] = 0.0;
  }
}

void saxpy(float k) {
  for (int i = 0; i < %d; i++) {
    B[i] = A[i] * k + B[i] + 1.0;
  }
}

int main() {
  init();
  saxpy(1.5);
  saxpy(0.5);
  float s = 0.0;
  for (int i = 0; i < %d; i++) {
    s = s + B[i];
  }
  print(s);
  return 0;
}
|}
    variant n n n n n

(* Unbounded work: only a deadline ends it. *)
let spin_source =
  {|int main() {
  float s = 0.0;
  int i = 0;
  while (i >= 0) {
    s = s + 1.0;
    i = i + 1;
    if (i > 1000000000) { i = 0; }
  }
  print(s);
  return 0;
}
|}

let modes = [| "opt"; "opt"; "opt"; "unopt"; "seq"; "unified" |]

let plan_request rng ~tenants ~poison ~deadline_every k : Wire.request =
  if poison && k mod 9 = 4 then
    (* The poison tenant's driver always faults: transfers and launches
       fail on every attempt, so retries exhaust and its breaker trips.
       Non-strict, so once open it degrades to CPU-only and recovers. *)
    {
      rq_id = k;
      rq_tenant = "poison";
      rq_source = source ~variant:(k mod 4);
      rq_mode = "opt";
      rq_deadline = None;
      rq_strict = false;
      rq_faults = Some "7:htod%1.0,launch%1.0";
    }
  else if deadline_every > 0 && k mod deadline_every = 3 then
    {
      rq_id = k;
      rq_tenant = Printf.sprintf "t%d" (k mod tenants);
      rq_source = spin_source;
      rq_mode = "seq";
      rq_deadline = Some 20_000;
      rq_strict = false;
      rq_faults = None;
    }
  else
    {
      rq_id = k;
      rq_tenant = Printf.sprintf "t%d" (k mod tenants);
      rq_source = source ~variant:(Rng.int rng 4);
      rq_mode = modes.(Rng.int rng (Array.length modes));
      rq_deadline = None;
      rq_strict = false;
      rq_faults = None;
    }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let run ~socket_path ~tenants ~requests ?(burst = 16) ?(poison = true)
    ?(deadline_every = 17) ~seed () : report =
  let rng = Rng.stream ~seed 0 in
  let reqs =
    List.init requests (plan_request rng ~tenants ~poison ~deadline_every)
  in
  let lat = ref [] in
  let ok = ref 0 and shed = ref 0 and deadline = ref 0 in
  let copen = ref 0 and errors = ref 0 and degraded = ref 0 in
  let retries = ref 0 and hits = ref 0 and misses = ref 0 in
  let t0 = Unix.gettimeofday () in
  (* Bursts of [burst] in-flight requests: each rides its own
     connection, all frames are written before any reply is read, so the
     daemon's queue genuinely fills and admission control gets tested. *)
  let rec bursts = function
    | [] -> ()
    | rest ->
      let rec take n acc = function
        | r :: tl when n > 0 -> take (n - 1) (r :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let batch, rest = take burst [] rest in
      let conns =
        List.map
          (fun (r : Wire.request) ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket_path);
            let sent = Unix.gettimeofday () in
            Wire.write_frame fd (Wire.request_to_json r);
            (fd, sent))
          batch
      in
      List.iter
        (fun (fd, sent) ->
          (match Wire.reply_of_json (Wire.read_frame fd) with
          | reply ->
            lat := ((Unix.gettimeofday () -. sent) *. 1000.0) :: !lat;
            (match reply.Wire.rp_status with
            | Wire.Ok -> incr ok
            | Wire.Overloaded -> incr shed
            | Wire.Deadline_exceeded -> incr deadline
            | Wire.Circuit_open -> incr copen
            | Wire.Error -> incr errors);
            if reply.Wire.rp_degraded then incr degraded;
            retries := !retries + reply.Wire.rp_retries;
            (match reply.Wire.rp_cache with
            | "hit" -> incr hits
            | "miss" -> incr misses
            | _ -> ())
          | exception _ -> incr errors);
          try Unix.close fd with Unix.Unix_error _ -> ())
        conns;
      bursts rest
  in
  bursts reqs;
  let wall_s = Unix.gettimeofday () -. t0 in
  let sorted = Array.of_list !lat in
  Array.sort compare sorted;
  let lookups = !hits + !misses in
  {
    lr_requests = requests;
    lr_ok = !ok;
    lr_shed = !shed;
    lr_deadline = !deadline;
    lr_circuit_open = !copen;
    lr_errors = !errors;
    lr_degraded = !degraded;
    lr_retries = !retries;
    lr_cache_hits = !hits;
    lr_cache_misses = !misses;
    lr_wall_s = wall_s;
    lr_rps = (if wall_s > 0.0 then float_of_int requests /. wall_s else 0.0);
    lr_p50_ms = percentile sorted 0.50;
    lr_p99_ms = percentile sorted 0.99;
    lr_shed_rate = float_of_int !shed /. float_of_int (max 1 requests);
    lr_cache_hit_rate =
      (if lookups = 0 then 0.0
       else float_of_int !hits /. float_of_int lookups);
  }

let report_json r : Json.t =
  Obj
    [
      ("requests", Json.Int r.lr_requests);
      ("ok", Json.Int r.lr_ok);
      ("shed", Json.Int r.lr_shed);
      ("deadline_exceeded", Json.Int r.lr_deadline);
      ("circuit_open", Json.Int r.lr_circuit_open);
      ("errors", Json.Int r.lr_errors);
      ("degraded", Json.Int r.lr_degraded);
      ("retries", Json.Int r.lr_retries);
      ("cache_hits", Json.Int r.lr_cache_hits);
      ("cache_misses", Json.Int r.lr_cache_misses);
      ("wall_s", Json.Float r.lr_wall_s);
      ("requests_per_sec", Json.Float r.lr_rps);
      ("p50_ms", Json.Float r.lr_p50_ms);
      ("p99_ms", Json.Float r.lr_p99_ms);
      ("shed_rate", Json.Float r.lr_shed_rate);
      ("cache_hit_rate", Json.Float r.lr_cache_hit_rate);
    ]
