(* Kill-restart chaos harness: fork a real daemon, drive a seeded
   schedule, kill -9 mid-burst, restart with recovery, and gate on the
   crash-only contract (bit-identity, journal durability, zero leaks,
   zero invariant violations). See chaos.mli for the full contract.

   Process model: the parent is the driver and oracle; each daemon
   generation is a forked child that execs nothing — it runs
   [Server.run] directly and leaves with [Unix._exit], so the parent's
   exit handlers never run twice. Fork is safe here because the chaos
   CLI spawns no domains before forking (OCaml 5 forbids forking a
   multi-domain process); the alcotest suite, which warms the multicore
   pool, must not call this. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Rng = Cgcm_support.Rng
module Mem_backend = Cgcm_runtime.Mem_backend

type config = {
  ch_seed : int;
  ch_requests : int;
  ch_dir : string;
  ch_torn_tail : bool;
  ch_timeout_ms : int;
  ch_shards : int;
}

let default_config ~seed ~dir =
  {
    ch_seed = seed;
    ch_requests = 30;
    ch_dir = dir;
    ch_torn_tail = true;
    ch_timeout_ms = 20_000;
    ch_shards = 1;
  }

type schedule = { sc_reqs : Wire.request list; sc_kill_at : int }

type violation = { vio_phase : string; vio_detail : string }

type outcome = {
  oc_config : config;
  oc_schedule : schedule;
  oc_pre_ok : int;
  oc_lost : int;
  oc_post_ok : int;
  oc_recovered_modules : int;
  oc_rewarmed : int;
  oc_recovered_tenants : int;
  oc_torn_replay : bool;
  oc_post_hits : int;
  oc_violations : violation list;
}

(* ------------------------------------------------------------------ *)
(* Seeded schedules                                                    *)

(* The backend-suffixed modes keep the journal's compile recipes honest:
   a kill-restart must rebuild "+paged" requests under the paged backend
   or the post-recovery bit-identity check would be comparing against
   the wrong reference. *)
let modes =
  [ "opt"; "unopt"; "unified"; "seq"; "ie"; "opt+paged"; "unopt+paged" ]

let plan ~seed ~requests =
  let rng = Rng.stream ~seed 0 in
  let reqs =
    List.init requests (fun k ->
        if k mod 9 = 4 then
          (* a deadline-bombed spin: Deadline_exceeded replies must also
             survive the kill boundary deterministically *)
          {
            Wire.rq_id = k;
            rq_tenant = Printf.sprintf "t%d" (Rng.int rng 3);
            rq_source = Loadgen.spin_source;
            rq_mode = "opt";
            rq_deadline = Some 200_000;
            rq_strict = false;
            rq_faults = None;
          }
        else
          {
            Wire.rq_id = k;
            rq_tenant = Printf.sprintf "t%d" (Rng.int rng 3);
            rq_source = Loadgen.source ~variant:(Rng.int rng 4);
            rq_mode = Rng.pick rng modes;
            rq_deadline = None;
            rq_strict = false;
            rq_faults = None;
          })
  in
  let kill_at =
    if requests <= 2 then max 0 (requests - 1)
    else (requests / 3) + Rng.int rng (max 1 (requests / 3))
  in
  { sc_reqs = reqs; sc_kill_at = kill_at }

(* ------------------------------------------------------------------ *)
(* The bit-identity oracle                                             *)

let reference_tbl : (string, string * int) Hashtbl.t = Hashtbl.create 16

let reference ~mode source =
  let key = mode ^ "\x00" ^ source in
  match Hashtbl.find_opt reference_tbl key with
  | Some v -> v
  | None ->
    let base, backend =
      match String.index_opt mode '+' with
      | None -> (mode, Mem_backend.Explicit)
      | Some i -> (
        let b = String.sub mode 0 i in
        let s = String.sub mode (i + 1) (String.length mode - i - 1) in
        match Mem_backend.of_string s with
        | Ok bk -> (b, bk)
        | Error e -> invalid_arg ("Chaos.reference: " ^ e))
    in
    let exec =
      match base with
      | "seq" -> Pipeline.Sequential
      | "unopt" -> Pipeline.Cgcm_unoptimized
      | "opt" -> Pipeline.Cgcm_optimized
      | "ie" -> Pipeline.Inspector_executor_exec
      | "unified" -> Pipeline.Unified_oracle Pipeline.Optimized
      | m -> invalid_arg ("Chaos.reference: unknown mode " ^ m)
    in
    let _, r = Pipeline.run ~backend exec source in
    let v = (r.Interp.output, Int64.to_int r.Interp.exit_code) in
    Hashtbl.replace reference_tbl key v;
    v

(* ------------------------------------------------------------------ *)
(* Daemon child                                                        *)

(* Forking is still safe with --shards: the child is single-domain at
   fork time and only spawns its shard domains inside [Server.run],
   after the fork. *)
let spawn_daemon ~socket_path ~journal_path ~log_path ~shards =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let code =
      try
        let logc = open_out log_path in
        let log s =
          output_string logc s;
          output_char logc '\n';
          flush logc
        in
        let srv = Server.create ~journal_path ~shards ~log ~socket_path () in
        Sys.set_signal Sys.sigterm
          (Sys.Signal_handle (fun _ -> Server.stop srv));
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let _line, residual = Server.run srv in
        close_out logc;
        if residual = 0 then 0 else 1
      with e ->
        (try
           let oc =
             open_out_gen [ Open_append; Open_creat ] 0o644 log_path
           in
           output_string oc ("daemon exception: " ^ Printexc.to_string e ^ "\n");
           close_out oc
         with _ -> ());
        3
    in
    Unix._exit code
  | pid -> pid

(* ------------------------------------------------------------------ *)
(* One kill-restart cycle                                              *)

(* The injected torn tail: a framed record whose announced length
   promises more bytes than follow — exactly what a kill mid-append
   leaves behind. Replay must salvage everything before it. *)
let append_torn_record path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.create 20 in
      (* header: len=300, crc=0x1BADB002; then only 12 payload bytes *)
      Bytes.set_uint8 b 0 0;
      Bytes.set_uint8 b 1 0;
      Bytes.set_uint8 b 2 1;
      Bytes.set_uint8 b 3 44;
      Bytes.set_uint8 b 4 0x1B;
      Bytes.set_uint8 b 5 0xAD;
      Bytes.set_uint8 b 6 0xB0;
      Bytes.set_uint8 b 7 0x02;
      Bytes.blit_string "{\"t\":\"comp" 0 b 8 10;
      ignore (Unix.write fd b 0 20 : int))

let wexit = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

let run_schedule cfg (sched : schedule) : outcome =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dir = cfg.ch_dir in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let name base = Filename.concat dir (Printf.sprintf "%s-%d" base cfg.ch_seed) in
  let socket_path = name "chaos.sock" in
  let journal_path = name "chaos.journal" in
  let shards = max 1 cfg.ch_shards in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  (* every shard segment must go: a leftover from a previous run would
     make generation 1 recover instead of starting fresh *)
  for i = 0 to shards - 1 do
    try Unix.unlink (Journal.segment_path journal_path ~shards i)
    with Unix.Unix_error _ -> ()
  done;
  let violations = ref [] in
  let vio phase detail =
    violations := { vio_phase = phase; vio_detail = detail } :: !violations
  in
  let pre_ok = ref 0 and lost = ref 0 and post_ok = ref 0 in
  let post_hits = ref 0 in
  let rec_modules = ref 0 and rewarmed = ref 0 and rec_tenants = ref 0 in
  let torn_replay = ref false in
  (* keys whose compiled module a pre-kill reply vouched for: the
     journal recorded (and fsynced) the compile before that reply was
     sent, so after recovery these must be cache hits. Keyed by
     (shard, cache key): each shard has its own cache, so a module
     vouched on one shard says nothing about another's. *)
  let vouched : (int * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let vouch_key (req : Wire.request) =
    ( Shard.tenant_shard ~shards req.Wire.rq_tenant,
      Engine.cache_key_of_mode ~mode:req.Wire.rq_mode req.Wire.rq_source )
  in
  let check_reply phase (req : Wire.request) (rp : Wire.reply) =
    if rp.Wire.rp_id <> req.Wire.rq_id then
      vio phase
        (Printf.sprintf "request %d answered with id %d" req.Wire.rq_id
           rp.Wire.rp_id);
    match rp.Wire.rp_status with
    | Wire.Ok ->
      let out, code = reference ~mode:req.Wire.rq_mode req.Wire.rq_source in
      if rp.Wire.rp_output <> out || rp.Wire.rp_exit_code <> code then
        vio phase
          (Printf.sprintf
             "request %d (%s): reply not bit-identical to a fresh run"
             req.Wire.rq_id req.Wire.rq_mode)
    | Wire.Deadline_exceeded -> ()
    | s ->
      vio phase
        (Printf.sprintf "request %d (%s): unexpected status %s"
           req.Wire.rq_id req.Wire.rq_mode (Wire.status_name s))
  in
  (* --- generation 1: serve until the kill ------------------------- *)
  let pid1 =
    spawn_daemon ~socket_path ~journal_path ~log_path:(name "daemon1.log")
      ~shards
  in
  if not (Client.wait_ready ~socket_path ()) then begin
    vio "startup" "first daemon never answered pings";
    ignore (Unix.kill pid1 Sys.sigkill);
    ignore (Unix.waitpid [] pid1)
  end
  else begin
    let reqs = Array.of_list sched.sc_reqs in
    let n = Array.length reqs in
    let kill_at = min sched.sc_kill_at (max 0 (n - 1)) in
    (* pre-kill: drive sequentially, each reply checked on arrival *)
    (try
       for i = 0 to kill_at - 1 do
         let rp =
           Client.request ~timeout_ms:cfg.ch_timeout_ms ~socket_path reqs.(i)
         in
         incr pre_ok;
         check_reply "pre-kill" reqs.(i) rp;
         Hashtbl.replace vouched (vouch_key reqs.(i)) ()
       done
     with e ->
       vio "pre-kill" ("daemon died before the kill: " ^ Printexc.to_string e));
    (* the kill-boundary request: its frame goes out, the daemon dies
       before (or while) answering — the reply is legitimately lost *)
    (if n > 0 && !violations = [] then
       try
         ignore
           (Client.with_conn socket_path (fun fd ->
                Wire.write_frame fd (Wire.request_to_json reqs.(kill_at));
                Unix.kill pid1 Sys.sigkill;
                incr lost;
                (* the daemon is gone; the read must fail, not hang *)
                match
                  Client.read_frame_deadline fd ~socket_path ~timeout_ms:2000
                with
                | (_ : Json.t) ->
                  (* it answered before the signal landed: that reply
                     must still be correct, and nothing was lost *)
                  decr lost;
                  ()
                | exception _ -> ())
             : unit)
       with _ -> ()
     else if n > 0 then Unix.kill pid1 Sys.sigkill);
    (match Unix.waitpid [] pid1 with
    | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
    | _, st -> vio "kill" ("first daemon ended with " ^ wexit st)
    | exception Unix.Unix_error _ -> ());
    (* --- corruption: the torn tail -------------------------------- *)
    if cfg.ch_torn_tail then
      append_torn_record (Journal.segment_path journal_path ~shards 0);
    (* --- generation 2: recover and finish the schedule ------------ *)
    let pid2 =
      spawn_daemon ~socket_path ~journal_path ~log_path:(name "daemon2.log")
        ~shards
    in
    if not (Client.wait_ready ~socket_path ()) then begin
      vio "recovery" "restarted daemon never answered pings";
      ignore (Unix.kill pid2 Sys.sigkill);
      ignore (Unix.waitpid [] pid2)
    end
    else begin
      let stats = Client.stats ~socket_path in
      let recovered = Json.bool_field ~default:false "recovered" stats in
      torn_replay := Json.bool_field ~default:false "journal_torn" stats;
      rec_modules := Json.int_field ~default:0 "recovered_modules" stats;
      rewarmed := Json.int_field ~default:0 "rewarmed" stats;
      rec_tenants := Json.int_field ~default:0 "recovered_tenants" stats;
      if not recovered then vio "recovery" "stats do not report a recovery";
      if cfg.ch_torn_tail && not !torn_replay then
        vio "recovery" "injected torn tail went undetected by replay";
      if !rec_modules < Hashtbl.length vouched then
        vio "recovery"
          (Printf.sprintf
             "only %d modules recovered; %d were vouched for pre-kill"
             !rec_modules (Hashtbl.length vouched));
      (* post-recovery: finish the schedule, kill-boundary request
         included (a real client would retry it) *)
      (try
         for i = kill_at to n - 1 do
           let rp =
             Client.request ~timeout_ms:cfg.ch_timeout_ms ~socket_path
               reqs.(i)
           in
           incr post_ok;
           check_reply "post-recovery" reqs.(i) rp;
           if Hashtbl.mem vouched (vouch_key reqs.(i)) then
             if rp.Wire.rp_cache = "hit" then incr post_hits
             else if rp.Wire.rp_cache = "miss" then
               vio "post-recovery"
                 (Printf.sprintf
                    "request %d recompiled a module the journal vouched for"
                    reqs.(i).Wire.rq_id)
         done
       with e ->
         vio "post-recovery"
           ("restarted daemon died: " ^ Printexc.to_string e));
      (* clean shutdown: drain, leak-check, exit 0 *)
      if not (Client.shutdown ~socket_path) then
        vio "shutdown" "restarted daemon did not acknowledge shutdown";
      (match Unix.waitpid [] pid2 with
      | _, Unix.WEXITED 0 -> ()
      | _, st ->
        vio "shutdown"
          ("restarted daemon did not shut down leak-free: " ^ wexit st)
      | exception Unix.Unix_error _ -> ());
      (if !violations = [] then
         (* belt and braces: the logged final line must say so too *)
         let log2 = name "daemon2.log" in
         let ic = open_in log2 in
         let ok = ref false in
         (try
            while not !ok do
              let line = input_line ic in
              if
                String.length line >= 14
                && String.sub line (String.length line - 14) 14
                   = "device_leaks=0"
              then ok := true
            done
          with End_of_file -> ());
         close_in ic;
         if not !ok then
           vio "shutdown" "final stats line does not report device_leaks=0")
    end
  end;
  {
    oc_config = cfg;
    oc_schedule = sched;
    oc_pre_ok = !pre_ok;
    oc_lost = !lost;
    oc_post_ok = !post_ok;
    oc_recovered_modules = !rec_modules;
    oc_rewarmed = !rewarmed;
    oc_recovered_tenants = !rec_tenants;
    oc_torn_replay = !torn_replay;
    oc_post_hits = !post_hits;
    oc_violations = List.rev !violations;
  }

let run cfg =
  run_schedule cfg (plan ~seed:cfg.ch_seed ~requests:cfg.ch_requests)

(* ------------------------------------------------------------------ *)
(* Shrinking (the fuzzer's greedy first-improvement discipline)        *)

let candidates (s : schedule) : schedule list =
  let reqs = Array.of_list s.sc_reqs in
  let n = Array.length reqs in
  let drop i =
    {
      sc_reqs =
        List.filteri (fun j _ -> j <> i) s.sc_reqs;
      sc_kill_at = (if i < s.sc_kill_at then s.sc_kill_at - 1 else s.sc_kill_at);
    }
  in
  let drops = List.init n drop in
  let earlier =
    if s.sc_kill_at > 1 then [ { s with sc_kill_at = s.sc_kill_at / 2 } ]
    else []
  in
  List.filter (fun c -> c.sc_reqs <> []) (earlier @ drops)

let shrink ?(budget = 24) ?(budget_ms = 120_000.0) ~run sched outcome =
  let t0 = Unix.gettimeofday () in
  let evals = ref 0 in
  let best = ref (sched, outcome) in
  let within () =
    !evals < budget && (Unix.gettimeofday () -. t0) *. 1000.0 < budget_ms
  in
  let rec go () =
    let sched, _ = !best in
    let improved =
      List.exists
        (fun c ->
          if not (within ()) then false
          else begin
            incr evals;
            let o = run c in
            if o.oc_violations <> [] then begin
              best := (c, o);
              true
            end
            else false
          end)
        (candidates sched)
    in
    if improved && within () then go ()
  in
  go ();
  !best

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let render_outcome o =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "chaos seed=%d: %d requests, kill@%d: pre=%d lost=%d post=%d \
        hits-after-recovery=%d violations=%d"
       o.oc_config.ch_seed
       (List.length o.oc_schedule.sc_reqs)
       o.oc_schedule.sc_kill_at o.oc_pre_ok o.oc_lost o.oc_post_ok
       o.oc_post_hits
       (List.length o.oc_violations));
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "\n  [%s] %s" v.vio_phase v.vio_detail))
    o.oc_violations;
  Buffer.contents b

let render_schedule (s : schedule) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "schedule: %d requests, kill -9 at index %d\n"
       (List.length s.sc_reqs) s.sc_kill_at);
  List.iteri
    (fun i (r : Wire.request) ->
      Buffer.add_string b
        (Printf.sprintf "  %c %2d id=%d tenant=%s mode=%s%s src=%d bytes\n"
           (if i = s.sc_kill_at then '*' else ' ')
           i r.Wire.rq_id r.Wire.rq_tenant r.Wire.rq_mode
           (match r.Wire.rq_deadline with
           | Some d -> Printf.sprintf " deadline=%d" d
           | None -> "")
           (String.length r.Wire.rq_source)))
    s.sc_reqs;
  Buffer.contents b
