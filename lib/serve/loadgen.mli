(** Deterministic load generator for the serve daemon
    ([cgcm bench -- serve] and the CI soak job): bursts of concurrent
    requests over a seed-derived workload mixing a few cached program
    variants, deadline-bombed spin programs, and a poison tenant whose
    fault plan always fires. *)

type report = {
  lr_requests : int;
  lr_ok : int;
  lr_shed : int;
  lr_deadline : int;
  lr_circuit_open : int;
  lr_errors : int;
  lr_degraded : int;
  lr_retries : int;
  lr_cache_hits : int;
  lr_cache_misses : int;
  lr_wall_s : float;
  lr_rps : float;
  lr_p50_ms : float;
  lr_p99_ms : float;
  lr_shed_rate : float;
  lr_cache_hit_rate : float;  (** client-observed, from reply cache tags *)
}

val source : variant:int -> string
(** One of the workload's CGC program variants (deterministic). *)

val spin_source : string
(** Unbounded work; only a deadline ends it. *)

val run :
  socket_path:string ->
  tenants:int ->
  requests:int ->
  ?burst:int ->
  ?poison:bool ->
  ?deadline_every:int ->
  seed:int ->
  unit ->
  report
(** Drive a running daemon. [burst] requests are in flight at once, each
    on its own connection, all written before any reply is read — so
    admission control genuinely sees the burst. *)

val report_json : report -> Json.t
