(* The serve daemon's request engine, independent of any transport.

   Everything the robustness envelope promises lives here so tests can
   drive it in-process, without sockets:

   - admission control: requests beyond the queue bound, or arriving
     while warm residency crowds the simulated device past the
     high-water mark, are shed with a typed [Overloaded] reply (never
     queued, never executed) — and a device-memory shed evicts one
     least-recently-used warm unit so the system degrades instead of
     wedging;
   - deadlines: every execution runs under a fuel budget (the request's
     own, else the daemon default), and fuel exhaustion becomes a typed
     [Deadline_exceeded] reply instead of an error;
   - retry with backoff: injected (transient) driver faults re-run the
     request with a fresh fault substream, up to a bound, with
     exponential backoff accounted in the stats;
   - circuit breaking: a tenant whose executions keep failing trips to
     [Open]; strict requests are rejected with [Circuit_open], the rest
     degrade to CPU-only (sequential) execution until a probation of
     degraded runs earns a half-open probe;
   - crash-only discipline: each request executes in a fresh interpreter
     instance (exactly what single-shot [cgcm run] does, so outputs are
     bit-identical by construction), is leak-checked on completion, and
     the shared residency state is invariant-audited between requests.

   Compiled modules are cached across requests and tenants in a bounded
   LRU keyed by a digest of (compile plan, source). *)

module Pipeline = Cgcm_core.Pipeline
module Diagnostics = Cgcm_core.Diagnostics
module Interp = Cgcm_interp.Interp
module Runtime = Cgcm_runtime.Runtime
module Faults = Cgcm_gpusim.Faults
module Doall = Cgcm_frontend.Doall
module Ir = Cgcm_ir.Ir
module Errors = Cgcm_support.Errors
module Rng = Cgcm_support.Rng
module Device = Cgcm_gpusim.Device
module Mem_backend = Cgcm_runtime.Mem_backend

type config = {
  max_queue : int;  (* admission bound: shed beyond this queue depth *)
  device_mem : int;  (* daemon device capacity; [max_int] = unbounded *)
  high_water : float;  (* warm-bytes fraction of capacity that sheds *)
  default_deadline : int;  (* fuel budget for requests without one *)
  max_retries : int;  (* extra attempts on injected transient faults *)
  backoff_ms : float;  (* base backoff between attempts; doubles *)
  circuit_threshold : int;  (* consecutive failures that trip a tenant *)
  circuit_probation : int;  (* degraded runs before a half-open probe *)
  cache_capacity : int;  (* compiled-module LRU entries *)
  faults : Faults.spec option;  (* daemon-wide injected-fault plan *)
}

let default_config =
  {
    max_queue = 64;
    device_mem = max_int;
    high_water = 0.9;
    default_deadline = 50_000_000;
    max_retries = 3;
    backoff_ms = 0.0;
    circuit_threshold = 3;
    circuit_probation = 2;
    cache_capacity = 128;
    faults = None;
  }

type breaker =
  | Closed
  | Open of int  (* degraded runs left before half-open *)
  | Half_open

type tenant_state = {
  t_name : string;
  mutable t_consec : int;  (* consecutive circuit-countable failures *)
  mutable t_breaker : breaker;
  mutable t_trips : int;
}

type stats = {
  mutable received : int;
  mutable ok : int;
  mutable shed : int;
  mutable deadline_exceeded : int;
  mutable circuit_rejected : int;
  mutable failed : int;
  mutable degraded_runs : int;
  mutable retries : int;
  mutable backoff_total_ms : float;
  mutable circuit_trips : int;
  mutable batches : int;  (* fused cross-request episodes executed *)
  mutable batched_runs : int;  (* requests that rode in a fused episode *)
  mutable warm_coalesced : int;  (* per-request warms saved by fusion *)
}

let zero_stats () =
  {
    received = 0;
    ok = 0;
    shed = 0;
    deadline_exceeded = 0;
    circuit_rejected = 0;
    failed = 0;
    degraded_runs = 0;
    retries = 0;
    backoff_total_ms = 0.0;
    circuit_trips = 0;
    batches = 0;
    batched_runs = 0;
    warm_coalesced = 0;
  }

(* Cross-shard aggregation: a sharded daemon's global counters are by
   definition the sums of its shards' counters (each request is owned
   by exactly one shard). *)
let sum_stats (l : stats list) : stats =
  let acc = zero_stats () in
  List.iter
    (fun s ->
      acc.received <- acc.received + s.received;
      acc.ok <- acc.ok + s.ok;
      acc.shed <- acc.shed + s.shed;
      acc.deadline_exceeded <- acc.deadline_exceeded + s.deadline_exceeded;
      acc.circuit_rejected <- acc.circuit_rejected + s.circuit_rejected;
      acc.failed <- acc.failed + s.failed;
      acc.degraded_runs <- acc.degraded_runs + s.degraded_runs;
      acc.retries <- acc.retries + s.retries;
      acc.backoff_total_ms <- acc.backoff_total_ms +. s.backoff_total_ms;
      acc.circuit_trips <- acc.circuit_trips + s.circuit_trips;
      acc.batches <- acc.batches + s.batches;
      acc.batched_runs <- acc.batched_runs + s.batched_runs;
      acc.warm_coalesced <- acc.warm_coalesced + s.warm_coalesced)
    l;
  acc

(* What a restarted daemon reports about the state it rebuilt from the
   journal. *)
type recovery = {
  rec_records : int;  (* intact journal records replayed *)
  rec_torn : bool;  (* replay ended at a torn/corrupt record *)
  rec_compiled : int;  (* cache entries rebuilt by recompilation *)
  rec_rewarmed : int;  (* warm manifest entries re-established *)
  rec_tenants : int;  (* breaker states restored *)
  rec_skipped : int;  (* unreplayable records (corrupt mode/source) *)
}

(* Aggregate per-shard recoveries into the daemon-level report: counts
   sum (each shard replays its own segment), and a torn tail anywhere
   is a torn recovery. *)
let sum_recoveries (l : recovery list) : recovery option =
  match l with
  | [] -> None
  | l ->
    Some
      (List.fold_left
         (fun acc r ->
           {
             rec_records = acc.rec_records + r.rec_records;
             rec_torn = acc.rec_torn || r.rec_torn;
             rec_compiled = acc.rec_compiled + r.rec_compiled;
             rec_rewarmed = acc.rec_rewarmed + r.rec_rewarmed;
             rec_tenants = acc.rec_tenants + r.rec_tenants;
             rec_skipped = acc.rec_skipped + r.rec_skipped;
           })
         {
           rec_records = 0;
           rec_torn = false;
           rec_compiled = 0;
           rec_rewarmed = 0;
           rec_tenants = 0;
           rec_skipped = 0;
         }
         l)

type t = {
  cfg : config;
  cache : (string, Pipeline.compiled) Cache.t;
  res : Residency.t;
  queue : (Wire.request * (Wire.reply -> unit)) Queue.t;
  tenants : (string, tenant_state) Hashtbl.t;
  stats : stats;
  mutable attempt_counter : int;
      (* distinct fault substream per execution attempt, so a retry
         re-rolls its fate deterministically *)
  journal : Journal.t option;
  mutable journaling : bool;
      (* suspended during recovery: the journal's initial snapshot
         already covers the state being rebuilt *)
  mutable recovered : recovery option;
  par_ok : (string, bool) Hashtbl.t;
      (* per-cache-key shardability verdicts, memoized for the batching
         eligibility gate *)
}

let create ?(config = default_config) ?journal () =
  {
    cfg = config;
    cache = Cache.create ~capacity:config.cache_capacity;
    res = Residency.create ~device_mem:config.device_mem ();
    queue = Queue.create ();
    tenants = Hashtbl.create 8;
    stats = zero_stats ();
    attempt_counter = 0;
    journal;
    journaling = true;
    recovered = None;
    par_ok = Hashtbl.create 16;
  }

let config t = t.cfg
let stats t = t.stats
let residency t = t.res
let cache_stats t = Cache.stats t.cache
let cache_hit_rate t = Cache.hit_rate t.cache
let pending t = Queue.length t.queue
let journal t = t.journal
let recovered t = t.recovered

let journal_append t r =
  match t.journal with
  | Some j when t.journaling -> Journal.append j r
  | _ -> ()

let tenant_state t name =
  match Hashtbl.find_opt t.tenants name with
  | Some st -> st
  | None ->
    let st = { t_name = name; t_consec = 0; t_breaker = Closed; t_trips = 0 } in
    Hashtbl.replace t.tenants name st;
    st

let breaker_of t name = (tenant_state t name).t_breaker
let trips_of t name = (tenant_state t name).t_trips

(* ------------------------------------------------------------------ *)
(* Compilation plans and the cross-request cache                       *)

(* Requests name the paper's execution configurations; "opt" and
   "unified" share a compiled module, so the cache keys by the compile
   plan, not the request mode.

   A mode may carry a memory-backend suffix ("opt+paged"): the backend
   shapes execution, not compilation, so it rides in the mode string —
   which lands it in journal compile recipes for free, and recovery
   rebuilds the identical configuration because this parse is
   deterministic. The suffix is inert outside the split-memory modes,
   matching [Pipeline.run]'s [backend] parameter. *)
let split_mode m =
  match String.index_opt m '+' with
  | None -> (m, Mem_backend.Explicit)
  | Some i -> (
    let base = String.sub m 0 i in
    let suffix = String.sub m (i + 1) (String.length m - i - 1) in
    match Mem_backend.of_string suffix with
    | Ok bk -> (base, bk)
    | Error e -> raise (Wire.Protocol_error e))

let plan_of_mode m =
  let base, backend = split_mode m in
  match base with
  | "seq" -> (Doall.Off, Pipeline.Unmanaged, Interp.Unified, false, backend)
  | "unopt" -> (Doall.Auto, Pipeline.Managed, Interp.Split, false, backend)
  | "opt" -> (Doall.Auto, Pipeline.Optimized, Interp.Split, true, backend)
  | "ie" ->
    (Doall.Auto, Pipeline.Unmanaged, Interp.Inspector_executor, false, backend)
  | "unified" -> (Doall.Auto, Pipeline.Optimized, Interp.Unified, false, backend)
  | _ ->
    raise
      (Wire.Protocol_error
         (Printf.sprintf
            "unknown mode %S (want seq|unopt|opt|ie|unified, optionally \
             suffixed +explicit or +paged)"
            m))

let compile_tag parallel level =
  Printf.sprintf "%s/%s"
    (match parallel with Doall.Off -> "off" | _ -> "auto")
    (match level with
    | Pipeline.Unmanaged -> "unmanaged"
    | Pipeline.Managed -> "managed"
    | Pipeline.Optimized -> "optimized")

let cache_key parallel level source =
  Digest.to_hex (Digest.string (compile_tag parallel level ^ "\x00" ^ source))

let cache_key_of_mode ~mode source =
  let parallel, level, _, _, _ = plan_of_mode mode in
  cache_key parallel level source

let compiled_of t ~mode ~parallel ~level source =
  let r =
    Cache.find_or_add t.cache
      (cache_key parallel level source)
      (fun () -> Pipeline.compile ~parallel ~level source)
  in
  (match r with
  | _, `Miss ->
    (* Journal the recipe, not the module: recompilation is
       deterministic, so a restarted daemon rebuilds the same cache
       entry from (mode, source) alone. *)
    journal_append t (Journal.Compile { jc_mode = mode; jc_source = source })
  | _, `Hit -> ());
  r

(* ------------------------------------------------------------------ *)
(* Fault-plan derivation and failure triage                            *)

let derive_seed base i = Rng.int (Rng.stream ~seed:base i) 0x3FFF_FFFF

let device_fault_of = function
  | Errors.Device_error f -> Some f
  | Runtime.Runtime_error { device = Some f; _ } -> Some f
  | _ -> None

let is_injected exn =
  match device_fault_of exn with
  | Some
      ( Errors.Oom { injected = true; _ }
      | Errors.Transfer_failed { injected = true; _ }
      | Errors.Launch_failed { injected = true; _ } ) ->
    true
  | _ -> false

let is_capacity_oom exn =
  match device_fault_of exn with
  | Some (Errors.Oom { injected = false; _ }) -> true
  | _ -> false

(* Failures that indict the tenant's device path (and feed its breaker),
   as opposed to the program's own bugs (parse errors, division by zero,
   wild pointers), which say nothing about service health. *)
let is_circuit_failure exn =
  match exn with
  | Errors.Device_error _ | Runtime.Runtime_error _ -> true
  | _ -> false

let fuel_exhausted_prefix = "instruction budget exhausted"

let is_fuel_exhausted = function
  | Interp.Exec_error msg ->
    String.length msg >= String.length fuel_exhausted_prefix
    && String.sub msg 0 (String.length fuel_exhausted_prefix)
       = fuel_exhausted_prefix
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

let reply ?(output = "") ?(exit_code = 0) ?(error = "") ?(cache = "-")
    ?(degraded = false) ?(retries = 0) ~id ~wall_ms status : Wire.reply =
  {
    rp_id = id;
    rp_status = status;
    rp_output = output;
    rp_exit_code = exit_code;
    rp_error = error;
    rp_cache = cache;
    rp_degraded = degraded;
    rp_retries = retries;
    rp_wall_ms = wall_ms;
  }

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let overload_info t ~reason : Errors.overload_info =
  {
    ov_queue_depth = Queue.length t.queue;
    ov_queue_limit = t.cfg.max_queue;
    ov_warm_bytes = Residency.warm_bytes t.res;
    ov_capacity = t.cfg.device_mem;
    ov_reason = reason;
  }

let shed t (req : Wire.request) deliver ~reason =
  let info = overload_info t ~reason in
  t.stats.shed <- t.stats.shed + 1;
  deliver
    (reply ~id:req.rq_id ~wall_ms:0.0
       ~exit_code:Diagnostics.exit_overloaded
       ~error:(Errors.render_overload info) Wire.Overloaded)

let submit t (req : Wire.request) deliver =
  t.stats.received <- t.stats.received + 1;
  if Queue.length t.queue >= t.cfg.max_queue then begin
    shed t req deliver ~reason:"queue";
    `Shed
  end
  else if
    t.cfg.device_mem < max_int
    && float_of_int (Residency.warm_bytes t.res)
       >= t.cfg.high_water *. float_of_int t.cfg.device_mem
  then begin
    (* Shed, but also relieve: drop one LRU warm unit so the condition
       clears instead of rejecting every future request. *)
    shed t req deliver ~reason:"device-mem";
    ignore (Residency.evict_lru_unit t.res : bool);
    `Shed
  end
  else begin
    Queue.add (req, deliver) t.queue;
    `Queued
  end

(* Shed with an explicit reason, counting the request as received: the
   router path for requests rejected at the door — a draining daemon
   ("draining", so clients can tell "busy" from "dead") or a shard
   whose router-side in-flight bound tripped ("queue"). Runs on the
   shard that owns the stats, never on the router. *)
let shed_request t (req : Wire.request) deliver ~reason =
  t.stats.received <- t.stats.received + 1;
  shed t req deliver ~reason

let shed_draining t (req : Wire.request) deliver =
  shed_request t req deliver ~reason:"draining"

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let run_config t ~imode ~dirty_spans ~fuel ~faults ~backend =
  let avail =
    if t.cfg.device_mem = max_int then max_int
    else max 4096 (t.cfg.device_mem - Residency.warm_bytes t.res)
  in
  {
    Interp.default_config with
    mode = imode;
    cost =
      { Cgcm_gpusim.Cost_model.default with device_mem_bytes = avail };
    fuel;
    dirty_spans;
    faults;
    backend;
  }

(* Warm this tenant's writable globals after a successful device-side
   run: their device residency survives the request, which is what the
   next request's transfers save. *)
let warm_after t ~tenant ~key ~mode ~source (compiled : Pipeline.compiled) =
  let globals =
    compiled.modul.Ir.globals
    |> List.filter (fun (g : Ir.global) -> not g.Ir.gread_only)
    |> List.map (fun (g : Ir.global) -> (g.Ir.gname, g.Ir.gsize))
  in
  if globals <> [] && Residency.warm t.res ~tenant ~key ~globals () then
    journal_append t
      (Journal.Warm
         ( {
             jw_tenant = tenant;
             jw_key = key;
             jw_mode = mode;
             jw_source = source;
           },
           (Residency.device t.res).Device.globals_gen ))

type outcome =
  | O_ok of Interp.result * int  (* retries taken *)
  | O_deadline
  | O_failed of exn * int

let execute t (req : Wire.request) ~mode =
  let parallel, level, imode, dirty_spans, backend = plan_of_mode mode in
  let key = cache_key parallel level req.rq_source in
  let compiled, hitmiss = compiled_of t ~mode ~parallel ~level req.rq_source in
  let fuel =
    match req.rq_deadline with
    | Some d -> max 1 d
    | None -> t.cfg.default_deadline
  in
  let base_faults =
    match req.rq_faults with
    | Some s -> Some (Faults.parse s)
    | None -> t.cfg.faults
  in
  let device_used = match imode with Interp.Unified -> false | _ -> true in
  let rec attempt n retries =
    t.attempt_counter <- t.attempt_counter + 1;
    let faults =
      if not device_used then None
      else
        Option.map
          (fun (sp : Faults.spec) ->
            { sp with Faults.seed = derive_seed sp.seed t.attempt_counter })
          base_faults
    in
    let config = run_config t ~imode ~dirty_spans ~fuel ~faults ~backend in
    match Interp.run ~config compiled.Pipeline.modul with
    | r -> O_ok (r, retries)
    | exception exn when is_fuel_exhausted exn -> O_deadline
    | exception exn when is_capacity_oom exn ->
      (* Genuine device-memory pressure: the warm footprint crowded this
         run out. Evict other tenants' warmth first (the cross-tenant
         policy), then the requester's own; doesn't consume a
         transient-fault retry, and terminates because every eviction
         frees at least one unit. *)
      if
        Residency.evict_lru_unit ~except:req.rq_tenant t.res
        || Residency.evict_lru_unit t.res
      then attempt n retries
      else O_failed (exn, retries)
    | exception exn when is_injected exn && n <= t.cfg.max_retries ->
      let pause = t.cfg.backoff_ms *. (2.0 ** float_of_int (n - 1)) in
      t.stats.backoff_total_ms <- t.stats.backoff_total_ms +. pause;
      if pause > 0.0 then Unix.sleepf (pause /. 1000.0);
      t.stats.retries <- t.stats.retries + 1;
      attempt (n + 1) (retries + 1)
    | exception exn -> O_failed (exn, retries)
  in
  (* Residency warming is an explicit-copy concept — under the paged
     backend device residency is page state, not warm units — so the
     caller skips the warm for paged requests. *)
  let warmable = device_used && backend = Mem_backend.Explicit in
  (attempt 1 0, key, compiled, hitmiss, fuel, warmable)

let finish_breaker st ~threshold ~probation ~trips exn_opt =
  match exn_opt with
  | None ->
    st.t_consec <- 0;
    if st.t_breaker = Half_open then st.t_breaker <- Closed
  | Some exn when is_circuit_failure exn ->
    st.t_consec <- st.t_consec + 1;
    if st.t_breaker = Half_open || st.t_consec >= threshold then begin
      st.t_breaker <- Open probation;
      st.t_trips <- st.t_trips + 1;
      incr trips
    end
  | Some _ -> ()

(* [warm=false] defers residency warming to the caller (the batching
   layer, which pays one warm per fused episode instead of one per
   request). Everything else — execution, breakers, retries, leak
   checks — is identical, which is what keeps batched replies
   bit-identical to unbatched ones. *)
let process_raw ?(warm = true) t (req : Wire.request) : Wire.reply =
  let st = tenant_state t req.rq_tenant in
  let t0 = Unix.gettimeofday () in
  let wall_ms () = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let degraded, mode =
    match st.t_breaker with
    | Open _ when not req.rq_strict -> (true, "seq")
    | _ -> (false, req.rq_mode)
  in
  match st.t_breaker with
  | Open _ when req.rq_strict ->
    t.stats.circuit_rejected <- t.stats.circuit_rejected + 1;
    reply ~id:req.rq_id ~wall_ms:(wall_ms ())
      ~exit_code:Diagnostics.exit_circuit_open
      ~error:
        (Errors.render_circuit_open ~tenant:st.t_name ~failures:st.t_consec)
      Wire.Circuit_open
  | _ -> (
    let trips = ref 0 in
    match execute t req ~mode with
    | outcome, key, compiled, hitmiss, fuel, warmable ->
      let cache = match hitmiss with `Hit -> "hit" | `Miss -> "miss" in
      (* An open breaker heals through degraded runs: each one consumes
         probation; at zero the next request probes the device path. *)
      if degraded then begin
        t.stats.degraded_runs <- t.stats.degraded_runs + 1;
        match st.t_breaker with
        | Open left when left <= 1 -> st.t_breaker <- Half_open
        | Open left -> st.t_breaker <- Open (left - 1)
        | _ -> ()
      end;
      let r =
        match outcome with
        | O_ok (r, retries) ->
          (if not degraded then
             finish_breaker st ~threshold:t.cfg.circuit_threshold
               ~probation:t.cfg.circuit_probation ~trips None);
          if
            r.Interp.leaks.Runtime.resident_nonglobal <> 0
            || r.Interp.leaks.Runtime.leaked_dev_blocks <> 0
          then begin
            t.stats.failed <- t.stats.failed + 1;
            reply ~id:req.rq_id ~wall_ms:(wall_ms ()) ~cache
              ~exit_code:Diagnostics.exit_runtime
              ~error:"cgcm serve: request leaked device residency"
              Wire.Error
          end
          else begin
            t.stats.ok <- t.stats.ok + 1;
            if warm && warmable && not degraded then
              warm_after t ~tenant:req.rq_tenant ~key ~mode
                ~source:req.rq_source compiled;
            reply ~id:req.rq_id ~wall_ms:(wall_ms ()) ~cache ~degraded
              ~retries ~output:r.Interp.output
              ~exit_code:(Int64.to_int r.Interp.exit_code) Wire.Ok
          end
        | O_deadline ->
          t.stats.deadline_exceeded <- t.stats.deadline_exceeded + 1;
          reply ~id:req.rq_id ~wall_ms:(wall_ms ()) ~cache ~degraded
            ~exit_code:Diagnostics.exit_deadline
            ~error:(Errors.render_deadline ~deadline:fuel)
            Wire.Deadline_exceeded
        | O_failed (exn, retries) ->
          (if not degraded then
             finish_breaker st ~threshold:t.cfg.circuit_threshold
               ~probation:t.cfg.circuit_probation ~trips (Some exn));
          t.stats.failed <- t.stats.failed + 1;
          let code, msg =
            match Diagnostics.classify exn with
            | Some cm -> cm
            | None -> (Diagnostics.exit_internal, Printexc.to_string exn)
          in
          reply ~id:req.rq_id ~wall_ms:(wall_ms ()) ~cache ~degraded
            ~retries ~exit_code:code ~error:msg Wire.Error
      in
      t.stats.circuit_trips <- t.stats.circuit_trips + !trips;
      r
    | exception exn ->
      (* Compilation (or plan resolution) failed before any execution:
         the program's fault, not the tenant's. *)
      t.stats.failed <- t.stats.failed + 1;
      let code, msg =
        match Diagnostics.classify exn with
        | Some cm -> cm
        | None -> (Diagnostics.exit_internal, Printexc.to_string exn)
      in
      reply ~id:req.rq_id ~wall_ms:(wall_ms ()) ~exit_code:code ~error:msg
        Wire.Error)

let breaker_to_journal = function
  | Closed -> Journal.B_closed
  | Open n -> Journal.B_open n
  | Half_open -> Journal.B_half_open

let breaker_of_journal = function
  | Journal.B_closed -> Closed
  | Journal.B_open n -> Open n
  | Journal.B_half_open -> Half_open

(* A breaker transition is a durable verdict about the tenant's device
   path; journal it so a restarted daemon neither forgets an open
   circuit (letting a failing tenant hammer the device again) nor
   invents one. *)
let process ?warm t (req : Wire.request) : Wire.reply =
  let st = tenant_state t req.rq_tenant in
  let before = (st.t_breaker, st.t_consec, st.t_trips) in
  let r = process_raw ?warm t req in
  if (st.t_breaker, st.t_consec, st.t_trips) <> before then
    journal_append t
      (Journal.Breaker
         {
           jt_name = st.t_name;
           jt_breaker = breaker_to_journal st.t_breaker;
           jt_consec = st.t_consec;
           jt_trips = st.t_trips;
         });
  r

(* Crash-only discipline: every request leaves the shared state audited.
   An invariant violation here is a daemon bug and must escape loudly
   rather than serve further requests from corrupt state. *)
let step t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some (req, deliver) ->
    let r = process t req in
    Residency.check_invariants t.res;
    deliver r;
    true

(* ------------------------------------------------------------------ *)
(* Cross-request batching                                              *)

(* Fairness bound: a fused episode never starves the rest of the queue
   for more than this many requests. *)
let max_batch = 32

(* A request may join a fused episode only when fusing cannot perturb
   behavior:

   - unbounded device memory, so skipping intermediate warms cannot
     change the per-run available-memory computation or the high-water
     admission check (under a finite device the per-request path runs);
   - no per-request fault plan (execution still re-rolls the daemon-wide
     plan identically either way, but a request-scoped always-fail plan
     marks a test probing exact per-request behavior);
   - the compiled module is already cached AND passes the parallel
     engine's shardability scan — statically-known launch shapes are
     the "compatible launches" the fused episode relies on. An uncached
     module's first run pays the compile; its repeats fuse. *)
let batchable t (req : Wire.request) =
  t.cfg.device_mem = max_int
  && req.rq_faults = None
  &&
  match plan_of_mode req.rq_mode with
  | exception _ -> false
  | parallel, level, _, _, _ -> (
    let key = cache_key parallel level req.rq_source in
    match Hashtbl.find_opt t.par_ok key with
    | Some b -> b
    | None -> (
      match Cache.peek t.cache key with
      | None -> false
      | Some (c : Pipeline.compiled) ->
        let b = Interp.module_shardable c.Pipeline.modul in
        Hashtbl.replace t.par_ok key b;
        b))

(* Execute one fused episode: the maximal run of consecutive queued
   requests from the same tenant for the same compiled module (same
   mode and source). Each request still executes exactly as the
   per-request path would — fresh interpreter, own deadline, own
   breaker accounting — so every reply is bit-identical to an unbatched
   run; what the episode fuses is the residency warm (map/release of
   the tenant's device globals), paid once at the end instead of once
   per request. Returns the number of requests processed (0 = empty
   queue). *)
let step_batch t =
  match Queue.take_opt t.queue with
  | None -> 0
  | Some ((req0, _) as head) ->
    let group = ref [ head ] in
    let n = ref 1 in
    if batchable t req0 then begin
      let same (r : Wire.request) =
        r.Wire.rq_tenant = req0.Wire.rq_tenant
        && r.Wire.rq_mode = req0.Wire.rq_mode
        && r.Wire.rq_source = req0.Wire.rq_source
        && r.Wire.rq_faults = None
      in
      let continue = ref true in
      while !continue && !n < max_batch do
        match Queue.peek_opt t.queue with
        | Some (r, _) when same r ->
          group := Queue.take t.queue :: !group;
          incr n
        | _ -> continue := false
      done
    end;
    if !n = 1 then begin
      let req, deliver = head in
      let r = process t req in
      Residency.check_invariants t.res;
      deliver r;
      1
    end
    else begin
      let ok_runs = ref 0 in
      List.iter
        (fun ((req : Wire.request), deliver) ->
          let r = process ~warm:false t req in
          Residency.check_invariants t.res;
          if r.Wire.rp_status = Wire.Ok && not r.Wire.rp_degraded then
            incr ok_runs;
          deliver r)
        (List.rev !group);
      (* One warm for the whole episode, exactly what the last
         successful per-request warm would have established. *)
      (match plan_of_mode req0.Wire.rq_mode with
      | exception _ -> ()
      | parallel, level, imode, _, backend ->
        let warmable =
          (match imode with Interp.Unified -> false | _ -> true)
          && backend = Mem_backend.Explicit
        in
        if !ok_runs > 0 && warmable then begin
          let key = cache_key parallel level req0.Wire.rq_source in
          match Cache.peek t.cache key with
          | Some compiled ->
            warm_after t ~tenant:req0.Wire.rq_tenant ~key
              ~mode:req0.Wire.rq_mode ~source:req0.Wire.rq_source compiled;
            Residency.check_invariants t.res;
            t.stats.warm_coalesced <- t.stats.warm_coalesced + (!ok_runs - 1)
          | None -> ()
        end);
      t.stats.batches <- t.stats.batches + 1;
      t.stats.batched_runs <- t.stats.batched_runs + !n;
      !n
    end

let drain t = while step t do () done

let shutdown t =
  drain t;
  let residual = Residency.shutdown t.res in
  Option.iter Journal.close t.journal;
  residual

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

(* Rebuild from a replayed journal: recompile every journaled (mode,
   source), rewarm the residency manifest, restore breaker states and
   advance the device generation to its journaled high-water mark.

   Soundness: compilation is deterministic, and [warm_after] always
   establishes the same deterministic residency (the warm entries' host
   contents are [Residency.default_init]'s per-name pattern), so the
   rebuilt state is exactly what a fresh daemon would hold after
   serving the same requests — which is why every post-recovery reply
   stays bit-identical to a fresh single-shot run. Device memory
   contents lost in the crash are not resurrected; they are re-derived.

   Corrupt records (unknown mode, unparseable source, key mismatch) are
   skipped and counted rather than fatal: recovery must always yield a
   serving daemon. *)
let recover t (rp : Journal.replay) : recovery =
  let st = rp.Journal.rp_state in
  t.journaling <- false;
  let compiled = ref 0 and rewarmed = ref 0 and skipped = ref 0 in
  List.iter
    (fun (c : Journal.compile_rec) ->
      match plan_of_mode c.jc_mode with
      | parallel, level, _, _, _ -> (
        match compiled_of t ~mode:c.jc_mode ~parallel ~level c.jc_source with
        | _ -> incr compiled
        | exception _ -> incr skipped)
      | exception _ -> incr skipped)
    st.Journal.js_compiles;
  List.iter
    (fun (w : Journal.warm_rec) ->
      match plan_of_mode w.jw_mode with
      | parallel, level, _, _, _ -> (
        match compiled_of t ~mode:w.jw_mode ~parallel ~level w.jw_source with
        | cm, _ ->
          let key = cache_key parallel level w.jw_source in
          if key = w.jw_key then begin
            warm_after t ~tenant:w.jw_tenant ~key ~mode:w.jw_mode
              ~source:w.jw_source cm;
            incr rewarmed
          end
          else incr skipped
        | exception _ -> incr skipped)
      | exception _ -> incr skipped)
    st.Journal.js_warm;
  List.iter
    (fun (tr : Journal.tenant_rec) ->
      let ts = tenant_state t tr.jt_name in
      ts.t_breaker <- breaker_of_journal tr.jt_breaker;
      ts.t_consec <- tr.jt_consec;
      ts.t_trips <- tr.jt_trips)
    st.Journal.js_tenants;
  let dev = Residency.device t.res in
  dev.Device.globals_gen <-
    max dev.Device.globals_gen st.Journal.js_globals_gen;
  Residency.check_invariants t.res;
  t.journaling <- true;
  let info =
    {
      rec_records = rp.Journal.rp_records;
      rec_torn = rp.Journal.rp_torn;
      rec_compiled = !compiled;
      rec_rewarmed = !rewarmed;
      rec_tenants = List.length st.Journal.js_tenants;
      rec_skipped = !skipped;
    }
  in
  t.recovered <- Some info;
  info

let final_line_of ~(stats : stats) ~cross_evictions ~cache_hit_rate ~residual
    =
  Printf.sprintf
    "serve: received=%d ok=%d shed=%d deadline=%d circuit_open=%d errors=%d \
     degraded=%d retries=%d trips=%d cross_evictions=%d cache_hit_rate=%.2f \
     backoff_ms=%.1f device_leaks=%d"
    stats.received stats.ok stats.shed stats.deadline_exceeded
    stats.circuit_rejected stats.failed stats.degraded_runs stats.retries
    stats.circuit_trips cross_evictions cache_hit_rate stats.backoff_total_ms
    residual

let final_line t ~residual =
  final_line_of ~stats:t.stats
    ~cross_evictions:(Residency.cross_evictions t.res)
    ~cache_hit_rate:(cache_hit_rate t) ~residual
