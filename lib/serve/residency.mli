(** Cross-request device residency for the serve daemon.

    One simulated device stays alive across requests; tenants park warm
    copies of their globals on it as zero-refcount device-resident
    module globals (registered under ["tenant/key/name"]), so repeated
    requests find their data resident. Because warmth is ordinary CGCM
    run-time state, PR-2's OOM machinery is the cross-tenant eviction
    policy: relieving pressure evicts the least-recently-used other
    tenant's unit, writing dirty data back byte-exactly and bumping the
    device's [globals_gen]. *)

type t
type entry

val create : device_mem:int -> unit -> t
(** A fresh daemon device with the given capacity ([max_int] =
    unbounded). *)

val device : t -> Cgcm_gpusim.Device.t
val capacity : t -> int

val warm :
  t ->
  tenant:string ->
  key:string ->
  globals:(string * int) list ->
  ?init:(string -> int -> Bytes.t) ->
  unit ->
  bool
(** Create or refresh the warm entry for [(tenant, key)] and make every
    listed global device-resident ([init name size] supplies initial
    host contents; the default is a deterministic per-name pattern).
    Previously-evicted globals are refilled from their written-back host
    copies. False — and the entry is dropped — when residency cannot be
    established even after evicting every other tenant's warmth. *)

val find : t -> tenant:string -> key:string -> entry option
val entry_runtime : entry -> Cgcm_runtime.Runtime.t

val entry_units : entry -> (string * int * int) list
(** [(prefixed-name, host-base, size)] for each warm global. *)

val entry_resident_bytes : entry -> int

val host_bytes : entry -> string -> Bytes.t
(** Host copy of a warm global, by unprefixed name — after an eviction
    this is where the written-back data lands. *)

val warm_bytes : t -> int
(** Device bytes currently held warm across all tenants. *)

val warm_entries : t -> int

val evict_lru_unit : ?except:string -> t -> bool
(** Evict one resident unit from the least-recently-used entry not owned
    by tenant [except]. False when nothing (eligible) is evictable. *)

val cross_evictions : t -> int

val check_invariants : t -> unit
(** {!Cgcm_runtime.Runtime.check_invariants} on every entry — the
    daemon's crash-only audit between requests. *)

val shutdown : t -> int
(** Evict all warmth, verify per-entry leak reports, and return the
    number of device blocks still live (0 = clean teardown). *)
