(** The serve daemon's request engine, independent of any transport.

    Holds the robustness envelope — admission control with typed
    [Overloaded] sheds, per-request deadlines via the interpreter's fuel
    budget, retry-with-backoff for injected transient faults, per-tenant
    circuit breakers that degrade to CPU-only execution, and crash-only
    invariant audits between requests — plus the cross-request compiled-
    module LRU and the shared {!Residency} state. The socket server is a
    thin shell over {!submit}/{!step}; tests drive the engine directly. *)

type config = {
  max_queue : int;  (** admission bound: shed beyond this queue depth *)
  device_mem : int;  (** daemon device capacity; [max_int] = unbounded *)
  high_water : float;  (** warm-bytes fraction of capacity that sheds *)
  default_deadline : int;  (** fuel budget for requests without one *)
  max_retries : int;  (** extra attempts on injected transient faults *)
  backoff_ms : float;  (** base backoff between attempts; doubles *)
  circuit_threshold : int;
      (** consecutive circuit-countable failures that trip a tenant *)
  circuit_probation : int;  (** degraded runs before a half-open probe *)
  cache_capacity : int;  (** compiled-module LRU entries *)
  faults : Cgcm_gpusim.Faults.spec option;
      (** daemon-wide injected-fault plan; each execution attempt gets a
          derived seed substream *)
}

val default_config : config

type breaker = Closed | Open of int | Half_open

type stats = {
  mutable received : int;
  mutable ok : int;
  mutable shed : int;
  mutable deadline_exceeded : int;
  mutable circuit_rejected : int;  (** strict requests under an open breaker *)
  mutable failed : int;
  mutable degraded_runs : int;  (** CPU-only runs under an open breaker *)
  mutable retries : int;
  mutable backoff_total_ms : float;
  mutable circuit_trips : int;
  mutable batches : int;  (** fused cross-request episodes executed *)
  mutable batched_runs : int;  (** requests that rode in a fused episode *)
  mutable warm_coalesced : int;  (** per-request warms saved by fusion *)
}

val sum_stats : stats list -> stats
(** Cross-shard aggregation: every counter summed. A sharded daemon's
    global stats are exactly the sums of its shards' stats, because each
    request is owned by exactly one shard. *)

type recovery = {
  rec_records : int;  (** intact journal records replayed *)
  rec_torn : bool;  (** replay ended at a torn/corrupt record *)
  rec_compiled : int;  (** cache entries rebuilt by recompilation *)
  rec_rewarmed : int;  (** warm manifest entries re-established *)
  rec_tenants : int;  (** breaker states restored *)
  rec_skipped : int;  (** unreplayable records (corrupt mode/source) *)
}

val sum_recoveries : recovery list -> recovery option
(** Aggregate per-shard recoveries: counts sum, torn if any shard's
    replay was torn; [None] for the empty list (no shard replayed). *)

type t

val create : ?config:config -> ?journal:Journal.t -> unit -> t
(** With [journal], every durable fact (compile recipe, warm manifest
    entry, breaker transition) is appended — and fsynced per the
    journal's cadence — before the reply depending on it is sent. *)

val config : t -> config
val stats : t -> stats
val residency : t -> Residency.t
val cache_stats : t -> Cache.stats
val cache_hit_rate : t -> float
val pending : t -> int
val breaker_of : t -> string -> breaker
val trips_of : t -> string -> int
val journal : t -> Journal.t option
val recovered : t -> recovery option

val cache_key_of_mode : mode:string -> string -> string
(** The compiled-module cache key a request with this mode and source
    resolves to (exposed for the chaos harness's hit predictions). *)

val recover : t -> Journal.replay -> recovery
(** Rebuild the engine from a replayed journal: recompile every
    journaled (mode, source), rewarm the residency manifest, restore
    breaker states, and advance the device generation to its journaled
    high-water mark. Corrupt records are skipped and counted, never
    fatal. Call once, before serving. *)

val submit :
  t -> Wire.request -> (Wire.reply -> unit) -> [ `Queued | `Shed ]
(** Admission: either enqueue the request or deliver an [Overloaded]
    reply immediately (queue full, or warm residency past the
    high-water mark — the latter also evicts one LRU warm unit so the
    pressure clears). *)

val shed_request :
  t -> Wire.request -> (Wire.reply -> unit) -> reason:string -> unit
(** Shed a request at the door with a typed [Overloaded] reply carrying
    [reason], counting it as received. The sharded router forwards
    door-rejections here so every stat mutation happens on the engine's
    owning shard. *)

val shed_draining : t -> Wire.request -> (Wire.reply -> unit) -> unit
(** [shed_request ~reason:"draining"]: a request that arrived while the
    daemon drains for shutdown. *)

val step : t -> bool
(** Execute one queued request, deliver its reply, and audit the shared
    residency invariants. False when the queue is empty. *)

val step_batch : t -> int
(** Execute one fused episode: the maximal run (bounded for fairness)
    of consecutive queued requests from the same tenant for the same
    compiled module, eligible only when fusing cannot perturb behavior
    (unbounded device memory, no per-request fault plan, module cached
    and passing the parallel engine's shardability scan). Every request
    executes exactly as {!step} would — replies stay bit-identical —
    but the episode pays one residency warm instead of one per request.
    Returns the number of requests processed; 0 when the queue is
    empty. *)

val drain : t -> unit

val process : ?warm:bool -> t -> Wire.request -> Wire.reply
(** Execute one request immediately, bypassing the queue (used by
    {!step} and by tests that want synchronous replies). [warm=false]
    (default true) defers residency warming to the caller — the
    batching layer's hook. *)

val shutdown : t -> int
(** Drain the queue, then tear down all warm residency and return the
    number of device blocks still live (0 = clean). *)

val final_line : t -> residual:int -> string
(** The daemon's final stats line: received/ok/shed/deadline/
    circuit_open/errors/degraded/retries/trips/cross-evictions/cache hit
    rate/backoff/leaks. *)

val final_line_of :
  stats:stats ->
  cross_evictions:int ->
  cache_hit_rate:float ->
  residual:int ->
  string
(** {!final_line} over explicit (typically cross-shard aggregated)
    values. *)
