(* Cross-request compilation cache.

   Extends the analysis manager's cache discipline (Cgcm_analysis.Manager:
   typed results + hit/miss counters) across requests: compiled modules
   are immutable once the pass pipeline finishes, so a daemon serving a
   stream of requests can key them by a digest of (source, mode) and
   reuse them for every tenant. Bounded LRU: the daemon must survive
   millions of distinct sources without growing without bound. *)

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, 'v * int ref) Hashtbl.t;  (* value, last-use tick *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 64);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t stamp =
  t.tick <- t.tick + 1;
  stamp := t.tick

(* Evict the least-recently-used entry. Linear scan: the daemon's cache
   is a few hundred entries, and eviction only runs on insert-at-
   capacity — not worth an intrusive doubly-linked list. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k (_, stamp) acc ->
        match acc with
        | Some (_, best) when best <= !stamp -> acc
        | _ -> Some (k, !stamp))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some (v, stamp) ->
    t.hits <- t.hits + 1;
    touch t stamp;
    Some v
  | None ->
    t.misses <- t.misses + 1;
    None

let add t k v =
  (match Hashtbl.find_opt t.tbl k with
  | Some _ -> Hashtbl.remove t.tbl k
  | None -> if Hashtbl.length t.tbl >= t.capacity then evict_lru t);
  t.tick <- t.tick + 1;
  Hashtbl.replace t.tbl k (v, ref t.tick)

(* Pure lookup: no hit/miss accounting, no LRU touch. The batching
   layer uses this to sniff eligibility without perturbing the stats a
   reply will report. *)
let peek t k =
  match Hashtbl.find_opt t.tbl k with Some (v, _) -> Some v | None -> None

let find_or_add t k compute =
  match find t k with
  | Some v -> (v, `Hit)
  | None ->
    let v = compute () in
    add t k v;
    (v, `Miss)

let size t = Hashtbl.length t.tbl

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats (t : (_, _) t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.tbl;
  }

let hit_rate (t : (_, _) t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
