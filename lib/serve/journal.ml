(* Write-ahead journal of the serve daemon's recoverable state.

   File layout:

     magic   "CGCMJNL1"                                   (8 bytes)
     record  [payload-len : 4 BE] [crc32(payload) : 4 BE] [payload]
     record  ...

   Payloads are compact JSON (the serve codec), one record per durable
   fact. Records are appended before the reply that depends on them is
   delivered, and fsynced at a configurable cadence, so anything a
   client was told survived the daemon actually survives a kill -9 —
   modulo the torn tail, which replay detects (short read, CRC or parse
   mismatch) and tolerates by ending at the last intact record.

   The journal folds every append into an in-memory aggregate [state];
   rotation writes that aggregate as a single snapshot record into a
   temporary file and renames it over the log, so the file stays
   bounded no matter how long the daemon lives. Rename is atomic: a
   crash mid-rotation leaves either the old log or the new snapshot,
   never a hybrid. *)

type breaker = B_closed | B_open of int | B_half_open

type tenant_rec = {
  jt_name : string;
  jt_breaker : breaker;
  jt_consec : int;
  jt_trips : int;
}

type compile_rec = { jc_mode : string; jc_source : string }

type warm_rec = {
  jw_tenant : string;
  jw_key : string;
  jw_mode : string;
  jw_source : string;
}

type state = {
  js_compiles : compile_rec list;
  js_warm : warm_rec list;
  js_tenants : tenant_rec list;
  js_globals_gen : int;
}

let empty_state =
  { js_compiles = []; js_warm = []; js_tenants = []; js_globals_gen = 0 }

type record =
  | Compile of compile_rec
  | Warm of warm_rec * int
  | Breaker of tenant_rec
  | Snapshot of state

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected), table-driven                        *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Record (de)serialization                                            *)

let breaker_to_json = function
  | B_closed -> Json.Obj [ ("k", Json.Str "closed") ]
  | B_open left -> Json.Obj [ ("k", Json.Str "open"); ("left", Json.Int left) ]
  | B_half_open -> Json.Obj [ ("k", Json.Str "half-open") ]

let breaker_of_json v =
  match Json.str_field "k" v with
  | "closed" -> B_closed
  | "open" -> B_open (Json.int_field ~default:0 "left" v)
  | "half-open" -> B_half_open
  | k -> raise (Json.Parse_error ("unknown breaker state " ^ k))

let tenant_to_json t =
  Json.Obj
    [
      ("name", Json.Str t.jt_name);
      ("breaker", breaker_to_json t.jt_breaker);
      ("consec", Json.Int t.jt_consec);
      ("trips", Json.Int t.jt_trips);
    ]

let tenant_of_json v =
  {
    jt_name = Json.str_field "name" v;
    jt_breaker =
      (match Json.member "breaker" v with
      | Some b -> breaker_of_json b
      | None -> B_closed);
    jt_consec = Json.int_field ~default:0 "consec" v;
    jt_trips = Json.int_field ~default:0 "trips" v;
  }

let compile_to_json c =
  Json.Obj [ ("mode", Json.Str c.jc_mode); ("source", Json.Str c.jc_source) ]

let compile_of_json v =
  { jc_mode = Json.str_field "mode" v; jc_source = Json.str_field "source" v }

let warm_to_json w =
  Json.Obj
    [
      ("tenant", Json.Str w.jw_tenant);
      ("key", Json.Str w.jw_key);
      ("mode", Json.Str w.jw_mode);
      ("source", Json.Str w.jw_source);
    ]

let warm_of_json v =
  {
    jw_tenant = Json.str_field "tenant" v;
    jw_key = Json.str_field "key" v;
    jw_mode = Json.str_field "mode" v;
    jw_source = Json.str_field "source" v;
  }

let state_to_json s =
  Json.Obj
    [
      ("gen", Json.Int s.js_globals_gen);
      ("compiles", Json.List (List.map compile_to_json s.js_compiles));
      ("warm", Json.List (List.map warm_to_json s.js_warm));
      ("tenants", Json.List (List.map tenant_to_json s.js_tenants));
    ]

let list_field name f v =
  match Json.member name v with
  | Some (Json.List l) -> List.map f l
  | _ -> []

let state_of_json v =
  {
    js_globals_gen = Json.int_field ~default:0 "gen" v;
    js_compiles = list_field "compiles" compile_of_json v;
    js_warm = list_field "warm" warm_of_json v;
    js_tenants = list_field "tenants" tenant_of_json v;
  }

let record_to_json = function
  | Compile c ->
    Json.Obj (("t", Json.Str "compile") :: [ ("r", compile_to_json c) ])
  | Warm (w, gen) ->
    Json.Obj
      [ ("t", Json.Str "warm"); ("r", warm_to_json w); ("gen", Json.Int gen) ]
  | Breaker t -> Json.Obj [ ("t", Json.Str "breaker"); ("r", tenant_to_json t) ]
  | Snapshot s -> Json.Obj [ ("t", Json.Str "snapshot"); ("r", state_to_json s) ]

let record_of_json v =
  let r () =
    match Json.member "r" v with
    | Some r -> r
    | None -> raise (Json.Parse_error "record missing body")
  in
  match Json.str_field "t" v with
  | "compile" -> Compile (compile_of_json (r ()))
  | "warm" -> Warm (warm_of_json (r ()), Json.int_field ~default:0 "gen" v)
  | "breaker" -> Breaker (tenant_of_json (r ()))
  | "snapshot" -> Snapshot (state_of_json (r ()))
  | t -> raise (Json.Parse_error ("unknown record type " ^ t))

(* ------------------------------------------------------------------ *)
(* Folding records into the aggregate                                  *)

let apply st = function
  | Compile c ->
    if
      List.exists
        (fun o -> o.jc_mode = c.jc_mode && o.jc_source = c.jc_source)
        st.js_compiles
    then st
    else { st with js_compiles = st.js_compiles @ [ c ] }
  | Warm (w, gen) ->
    let others =
      List.filter
        (fun o -> not (o.jw_tenant = w.jw_tenant && o.jw_key = w.jw_key))
        st.js_warm
    in
    {
      st with
      js_warm = others @ [ w ];
      js_globals_gen = max st.js_globals_gen gen;
    }
  | Breaker t ->
    let others = List.filter (fun o -> o.jt_name <> t.jt_name) st.js_tenants in
    { st with js_tenants = others @ [ t ] }
  | Snapshot s -> s

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let magic = "CGCMJNL1"

(* Sanity bound on a single record: a snapshot aggregates many sources,
   so this sits well above the wire protocol's 8 MiB frame cap. Replay
   treats anything larger as corruption, not as an allocation order. *)
let max_record_bytes = 64 * 1024 * 1024

let frame payload =
  let n = String.length payload in
  let crc = crc32 payload in
  let b = Bytes.create (8 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.set_uint8 b 4 ((crc lsr 24) land 0xFF);
  Bytes.set_uint8 b 5 ((crc lsr 16) land 0xFF);
  Bytes.set_uint8 b 6 ((crc lsr 8) land 0xFF);
  Bytes.set_uint8 b 7 (crc land 0xFF);
  Bytes.blit_string payload 0 b 8 n;
  b

let be32 b off =
  (Bytes.get_uint8 b off lsl 24)
  lor (Bytes.get_uint8 b (off + 1) lsl 16)
  lor (Bytes.get_uint8 b (off + 2) lsl 8)
  lor Bytes.get_uint8 b (off + 3)

let really_write fd buf =
  let off = ref 0 and left = ref (Bytes.length buf) in
  while !left > 0 do
    let n = Unix.write fd buf !off !left in
    off := !off + n;
    left := !left - n
  done

(* ------------------------------------------------------------------ *)
(* The live journal                                                    *)

type jstats = { j_appends : int; j_snapshots : int; j_fsyncs : int }

type t = {
  jpath : string;
  fsync_every : int;
  snapshot_every : int;
  mutable fd : Unix.file_descr;
  mutable st : state;
  mutable since_snapshot : int;  (* records since the last snapshot *)
  mutable unsynced : int;  (* appends since the last fsync *)
  mutable appends : int;
  mutable snapshots : int;
  mutable fsyncs : int;
  mutable closed : bool;
}

(* Per-shard journal segments: a sharded daemon gives each shard its
   own journal file so appends never cross domains. With one shard the
   base path is used unchanged, keeping single-shard journals (and
   every existing recovery artifact) byte-compatible. *)
let segment_path base ~shards i =
  if shards <= 1 then base else Printf.sprintf "%s.shard%d" base i

let path t = t.jpath
let state t = t.st
let stats t = { j_appends = t.appends; j_snapshots = t.snapshots; j_fsyncs = t.fsyncs }

let fsync t =
  Unix.fsync t.fd;
  t.fsyncs <- t.fsyncs + 1;
  t.unsynced <- 0

let write_record t r =
  really_write t.fd (frame (Json.print (record_to_json r)))

let create ?(fsync_every = 1) ?(snapshot_every = 256) ?initial ~path () =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  really_write fd (Bytes.of_string magic);
  let t =
    {
      jpath = path;
      fsync_every = max 1 fsync_every;
      snapshot_every = max 1 snapshot_every;
      fd;
      st = Option.value initial ~default:empty_state;
      since_snapshot = 0;
      unsynced = 0;
      appends = 0;
      snapshots = 0;
      fsyncs = 0;
      closed = false;
    }
  in
  (* A recovered state is written up front so the fresh journal is
     self-contained: a second crash before any new append still replays
     to the recovered state. *)
  (match initial with
  | Some st when st <> empty_state -> write_record t (Snapshot st)
  | _ -> ());
  fsync t;
  t

(* Fold the log into one snapshot in a sibling file and rename it over
   the journal; the fd keeps pointing at the (renamed) new inode. *)
let rotate t =
  let tmp = t.jpath ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  really_write fd (Bytes.of_string magic);
  really_write fd (frame (Json.print (record_to_json (Snapshot t.st))));
  Unix.fsync fd;
  Unix.rename tmp t.jpath;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.fd <- fd;
  t.snapshots <- t.snapshots + 1;
  t.since_snapshot <- 0;
  t.unsynced <- 0;
  t.fsyncs <- t.fsyncs + 1

let append t r =
  if t.closed then invalid_arg "Journal.append: closed";
  write_record t r;
  t.st <- apply t.st r;
  t.appends <- t.appends + 1;
  t.since_snapshot <- t.since_snapshot + 1;
  t.unsynced <- t.unsynced + 1;
  if t.unsynced >= t.fsync_every then fsync t;
  if t.since_snapshot >= t.snapshot_every then rotate t

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type replay = { rp_state : state; rp_records : int; rp_torn : bool }

let read_upto fd buf len =
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < len do
    match Unix.read fd buf !off (len - !off) with
    | 0 -> eof := true
    | n -> off := !off + n
  done;
  !off

let replay ~path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let hdr = Bytes.create 8 in
        if
          read_upto fd hdr 8 <> 8
          || Bytes.unsafe_to_string hdr <> magic
        then Some { rp_state = empty_state; rp_records = 0; rp_torn = true }
        else begin
          let st = ref empty_state in
          let records = ref 0 in
          let torn = ref false in
          let continue = ref true in
          while !continue do
            let rhdr = Bytes.create 8 in
            match read_upto fd rhdr 8 with
            | 0 -> continue := false (* clean EOF on a record boundary *)
            | n when n < 8 ->
              torn := true;
              continue := false
            | _ ->
              let len = be32 rhdr 0 in
              let crc = be32 rhdr 4 in
              if len < 0 || len > max_record_bytes then begin
                torn := true;
                continue := false
              end
              else begin
                let payload = Bytes.create len in
                if read_upto fd payload len < len then begin
                  torn := true;
                  continue := false
                end
                else begin
                  let s = Bytes.unsafe_to_string payload in
                  if crc32 s <> crc then begin
                    torn := true;
                    continue := false
                  end
                  else
                    match record_of_json (Json.parse s) with
                    | r ->
                      st := apply !st r;
                      incr records
                    | exception Json.Parse_error _ ->
                      torn := true;
                      continue := false
                end
              end
          done;
          Some { rp_state = !st; rp_records = !records; rp_torn = !torn }
        end)
