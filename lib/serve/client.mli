(** Client side of the serve protocol ([cgcm request] and the load
    generator): one connection per operation, blocking frame I/O. *)

val request : socket_path:string -> Wire.request -> Wire.reply
(** Raises [Unix.Unix_error] when the daemon is unreachable and
    [Wire.Protocol_error] on a malformed reply. *)

val ping : socket_path:string -> bool
val stats : socket_path:string -> Json.t

val shutdown : socket_path:string -> bool
(** Ask the daemon to drain and exit; true when it acknowledged. *)

val wait_ready : ?timeout_s:float -> socket_path:string -> unit -> bool
(** Poll {!ping} until the daemon answers or the timeout lapses. *)
