(** Client side of the serve protocol ([cgcm request] and the load
    generator): one connection per operation, blocking frame I/O. *)

val with_conn : string -> (Unix.file_descr -> 'a) -> 'a
(** Connect to the socket path, run the callback, always close. *)

val read_frame_deadline :
  Unix.file_descr -> socket_path:string -> timeout_ms:int -> Json.t
(** One frame, or [Cgcm_support.Errors.Serve_request_timeout] once
    [timeout_ms] lapses with no complete frame (the daemon accepted but
    never answered — wedged, or killed mid-request). *)

val request : ?timeout_ms:int -> socket_path:string -> Wire.request -> Wire.reply
(** Raises [Unix.Unix_error] when the daemon is unreachable and
    [Wire.Protocol_error] on a malformed reply. With [timeout_ms], a
    daemon that never replies raises
    [Cgcm_support.Errors.Serve_request_timeout] instead of hanging the
    client. *)

val ping : socket_path:string -> bool
val stats : socket_path:string -> Json.t

val shutdown : socket_path:string -> bool
(** Ask the daemon to drain and exit; true when it acknowledged. *)

val wait_ready : ?timeout_s:float -> socket_path:string -> unit -> bool
(** Poll {!ping} until the daemon answers or the timeout lapses. *)
