(* Cross-request device residency.

   The daemon keeps one simulated device alive across requests and lets
   tenants park "warm" copies of their globals on it, so a tenant's
   second request finds its data resident instead of paying the full
   HtoD transfer again. Each warm entry — one per (tenant, source key) —
   owns a private host memspace and a private CGCM run-time, but every
   run-time shares the daemon's single device, so tenants genuinely
   contend for device memory.

   Warmth is deliberately represented with the production machinery, not
   a side table: a warm global is a zero-refcount device-resident module
   global registered under a tenant-prefixed name. That makes PR-2's OOM
   recovery the cross-tenant eviction policy for free — relieving
   pressure is [Runtime.evict_one] on the least-recently-used other
   tenant's entry, which writes dirty data back byte-exactly and revokes
   the global via [Device.forget_global] (bumping [globals_gen], so any
   cached device address is invalidated). *)

module Memspace = Cgcm_memory.Memspace
module Device = Cgcm_gpusim.Device
module Cost_model = Cgcm_gpusim.Cost_model
module Runtime = Cgcm_runtime.Runtime
module Errors = Cgcm_support.Errors

type unit_info = {
  u_name : string;  (* unprefixed global name *)
  u_pref : string;  (* device-module name, "tenant/key/name" *)
  u_base : int;  (* host base inside the entry's memspace *)
  u_size : int;
}

type entry = {
  e_tenant : string;
  e_key : string;
  e_host : Memspace.t;
  e_rt : Runtime.t;
  e_units : unit_info list;
  mutable e_tick : int;  (* LRU recency stamp *)
}

type t = {
  dev : Device.t;
  dev_capacity : int;
  entries : (string * string, entry) Hashtbl.t;
  mutable tick : int;
  mutable cross_evictions : int;  (* units revoked to relieve pressure *)
}

let create ~device_mem () =
  let cost = { Cost_model.default with device_mem_bytes = device_mem } in
  {
    dev = Device.create cost;
    dev_capacity = device_mem;
    entries = Hashtbl.create 16;
    tick = 0;
    cross_evictions = 0;
  }

let device t = t.dev
let capacity t = t.dev_capacity

let find t ~tenant ~key = Hashtbl.find_opt t.entries (tenant, key)
let entry_runtime e = e.e_rt

let entry_units e =
  List.map (fun u -> (u.u_pref, u.u_base, u.u_size)) e.e_units

let unit_resident e u =
  match (Runtime.lookup_unit e.e_rt u.u_base).devptr with
  | Some _ -> true
  | None -> false

let entry_resident_bytes e =
  List.fold_left
    (fun acc u -> if unit_resident e u then acc + u.u_size else acc)
    0 e.e_units

let host_bytes e name =
  match List.find_opt (fun u -> u.u_name = name) e.e_units with
  | Some u -> Memspace.read_bytes e.e_host u.u_base u.u_size
  | None -> invalid_arg ("Residency.host_bytes: no warm global " ^ name)

let warm_bytes t =
  Hashtbl.fold (fun _ e acc -> acc + entry_resident_bytes e) t.entries 0

let warm_entries t = Hashtbl.length t.entries
let cross_evictions t = t.cross_evictions

let touch t e =
  t.tick <- t.tick + 1;
  e.e_tick <- t.tick

(* Evict one resident unit from the least-recently-used entry not owned
   by [except]. One unit, not one entry: pressure relief should shed the
   minimum amount of warmth. *)
let evict_lru_unit ?except t =
  let victim =
    Hashtbl.fold
      (fun (tenant, _) e acc ->
        if Some tenant = except then acc
        else if entry_resident_bytes e = 0 then acc
        else
          match acc with
          | Some best when best.e_tick <= e.e_tick -> acc
          | _ -> Some e)
      t.entries None
  in
  match victim with
  | Some e when Runtime.evict_one e.e_rt ->
    t.cross_evictions <- t.cross_evictions + 1;
    true
  | _ -> false

let is_capacity_oom = function
  | Errors.Device_error (Errors.Oom { injected = false; _ }) -> true
  | Runtime.Runtime_error { device = Some (Errors.Oom { injected = false; _ }); _ }
    -> true
  | _ -> false

(* Make a unit resident: map (HtoD when not already resident) then
   release, leaving it at refcount zero so it is both warm and evictable.
   The run-time's own recovery already evicts this entry's units on OOM;
   when that is not enough, fall back to evicting other tenants' warmth,
   LRU first. *)
let ensure_resident t e u =
  let rec go budget =
    if unit_resident e u then true
    else
      match Runtime.map e.e_rt u.u_base with
      | (_ : int) ->
        Runtime.release e.e_rt u.u_base;
        true
      | exception exn when is_capacity_oom exn ->
        if budget > 0 && evict_lru_unit ~except:e.e_tenant t then go (budget - 1)
        else false
  in
  (* Each retry follows a successful eviction, so progress is monotone;
     the budget is a belt-and-braces bound, not a tuning knob. *)
  go 1024

let drop_entry t e =
  while Runtime.evict_one e.e_rt do () done;
  Hashtbl.remove t.entries (e.e_tenant, e.e_key)

let default_init name size =
  let seed = String.fold_left (fun acc c -> acc + Char.code c) 7 name in
  Bytes.init size (fun i -> Char.chr ((seed + (37 * i)) land 0xFF))

let warm t ~tenant ~key ~globals ?init () =
  let init = Option.value init ~default:default_init in
  let e =
    match find t ~tenant ~key with
    | Some e -> e
    | None ->
      let host =
        Memspace.create
          ~name:(Printf.sprintf "warm:%s/%s" tenant key)
          ~range_lo:4096 ~range_hi:(1 lsl 40)
      in
      (* Whole-unit transfers: eviction write-back must restore the host
         copy byte-exactly without depending on span bookkeeping. *)
      let rt = Runtime.create ~dirty_spans:false ~host ~dev:t.dev () in
      let units =
        List.map
          (fun (name, size) ->
            let base = Memspace.alloc ~tag:("warm:" ^ name) host size in
            Memspace.write_bytes host base (init name size);
            let pref = Printf.sprintf "%s/%s/%s" tenant key name in
            Runtime.declare_global rt ~name:pref ~base ~size ~read_only:false;
            { u_name = name; u_pref = pref; u_base = base; u_size = size })
          globals
      in
      let e =
        { e_tenant = tenant; e_key = key; e_host = host; e_rt = rt;
          e_units = units; e_tick = 0 }
      in
      Hashtbl.replace t.entries (tenant, key) e;
      e
  in
  touch t e;
  (* (Re-)establish residency for every unit; a previously-evicted warm
     global is refilled from its written-back host copy. *)
  let ok = List.for_all (fun u -> ensure_resident t e u) e.e_units in
  if not ok then drop_entry t e;
  ok

let check_invariants t =
  Hashtbl.iter (fun _ e -> Runtime.check_invariants e.e_rt) t.entries

let shutdown t =
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.entries [] in
  List.iter
    (fun e ->
      while Runtime.evict_one e.e_rt do () done;
      Runtime.check_invariants e.e_rt;
      let lk = Runtime.leak_report e.e_rt in
      if lk.resident_nonglobal <> 0 || lk.resident_global <> 0 then
        failwith "Residency.shutdown: units survived eviction")
    entries;
  Hashtbl.reset t.entries;
  List.length (Memspace.blocks_snapshot t.dev.Device.mem)
