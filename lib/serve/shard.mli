(** Shard group: per-shard engines on worker domains behind a message
    interface.

    The sharded serve daemon splits into a {e router} (the socket loop
    in {!Server}) and a group of {e shards}, each owning a complete
    {!Engine.t} — compiled-module LRU, warm residency device, journal
    segment, circuit breakers. Tenants are assigned to shards by a
    deterministic string hash, so all mutable engine state has exactly
    one owning domain; the router communicates with shards only through
    per-shard inboxes and one shared reply outbox (whose self-pipe wakes
    the router's [select]). With [count = 1] no domains are spawned and
    the router drives the single engine inline, reproducing the original
    single-threaded daemon exactly. *)

type group

val tenant_shard : shards:int -> string -> int
(** Deterministic tenant placement: FNV-1a over the tenant name, mod
    [shards]. A pure function of (name, shard count) — stable across
    processes, restarts, and tenant-set growth — so journal recovery
    replays each tenant's state into the shard that owned it before a
    crash. Always 0 when [shards <= 1]. *)

val create :
  ?engine_config:Engine.config ->
  ?journal:Journal.t ->
  ?journal_path:string ->
  ?count:int ->
  unit ->
  group
(** Build [count] (default 1, max 64) engines. With [journal_path],
    each shard replays, re-creates and recovers its own journal segment
    ({!Journal.segment_path}) before serving. [journal] hands a
    pre-built journal to a single-shard group (the legacy path);
    combining it with [count > 1] raises [Invalid_argument]. *)

val start : group -> unit
(** Spawn one worker domain per shard. No-op when [count = 1] (the
    router drives the engine via {!step_inline} instead). Do not call
    from a process that intends to [Unix.fork] afterwards: OCaml 5
    forbids forking a multi-domain process. *)

val count : group -> int
val inline : group -> bool  (** [count = 1]: no domains, router-driven *)

val engine : group -> int -> Engine.t
(** Shard [i]'s engine. Off the router thread this is safe only for
    racy stat reads (documented stale-but-safe) or after {!stop}. *)

val engines : group -> Engine.t array
val engine_config : group -> Engine.config

val shard_of : group -> string -> int
(** [tenant_shard ~shards:(count g)] over the tenant name. *)

val recovered : group -> Engine.recovery option
(** Aggregated journal recovery across shards ([Engine.sum_recoveries]). *)

val post : group -> shard:int -> token:int -> ?shed:string -> Wire.request -> unit
(** Hand a decoded request to its shard. [shed] marks a router-side
    door rejection (draining, in-flight bound); the shard still owns the
    stat mutation and the [Overloaded] reply. Inline groups admit the
    request immediately on the caller's thread. *)

val step_inline : group -> unit
(** Inline groups only: execute one queued request ([Engine.step]). *)

val pending_inline : group -> int
(** Inline groups: the engine's queue depth. 0 for multi-shard groups
    (workers drain their own queues). *)

val wake_fd : group -> Unix.file_descr option
(** Read end of the reply self-pipe — add it to the router's [select]
    read set. [None] for inline groups. *)

val drain_replies : group -> (int * int * Wire.reply) list
(** All finished [(token, shard, reply)] tuples, in completion order,
    draining the wake pipe alongside. *)

val stop : group -> int
(** Close every inbox, join the worker domains (the happens-before edge
    handing the engines back to the caller), shut each engine down, and
    return the summed residual device-block count (0 = leak-free). *)
