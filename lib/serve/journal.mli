(** Write-ahead journal of the serve daemon's recoverable state.

    The daemon's cross-request value — compiled-module cache, warm
    per-tenant device residency, circuit-breaker verdicts — is purely
    in-memory; a crash would forfeit all of it and every tenant would
    pay cold-start costs again. The journal makes that state crash-only:
    every durable fact is appended as a CRC-framed record (fsynced at a
    configurable cadence) {e before} the reply that depends on it is
    sent, and a periodic snapshot bounds the file by folding the log
    into one record.

    What is journaled is the {e recipe}, not the bytes: sources and
    modes (recompilation is deterministic), warm manifests (rewarming
    re-establishes the same deterministic residency a fresh daemon
    would build), breaker states, and the device's [globals_gen]
    high-water mark. Device memory contents are deliberately not
    journaled — a kill forfeits them, and recovery rebuilds residency
    exactly as a fresh daemon serving the same requests would have.

    Replay tolerates a torn tail: a record cut short by the crash (or
    corrupted in its length, CRC or payload) ends replay at the last
    intact record instead of failing recovery. *)

(** Circuit-breaker state as journaled (mirrors [Engine.breaker] without
    a dependency cycle). *)
type breaker = B_closed | B_open of int  (** degraded runs left *) | B_half_open

type tenant_rec = {
  jt_name : string;
  jt_breaker : breaker;
  jt_consec : int;  (** consecutive circuit-countable failures *)
  jt_trips : int;
}

type compile_rec = { jc_mode : string; jc_source : string }

type warm_rec = {
  jw_tenant : string;
  jw_key : string;  (** the engine's cache key (digest of plan+source) *)
  jw_mode : string;
  jw_source : string;
}

type state = {
  js_compiles : compile_rec list;  (** oldest first, deduplicated *)
  js_warm : warm_rec list;  (** one per (tenant, key), oldest first *)
  js_tenants : tenant_rec list;
  js_globals_gen : int;  (** device generation high-water mark *)
}

val empty_state : state

type record =
  | Compile of compile_rec
  | Warm of warm_rec * int  (** [globals_gen] at warm time *)
  | Breaker of tenant_rec
  | Snapshot of state

type t

val create :
  ?fsync_every:int ->
  ?snapshot_every:int ->
  ?initial:state ->
  path:string ->
  unit ->
  t
(** Start a fresh journal at [path] (truncating any previous file).
    [initial] (a replayed state, during recovery) is written immediately
    as a snapshot record so the new journal is self-contained from its
    first byte. [fsync_every] (default 1 = every append) trades
    durability lag for throughput; [snapshot_every] (default 256)
    bounds the log by rotating once that many records accumulate since
    the last snapshot. *)

val append : t -> record -> unit
(** Frame, write and (per [fsync_every]) fsync one record, fold it into
    the in-memory aggregate, and rotate through a snapshot when due. *)

val state : t -> state
(** The aggregate of everything appended (and the initial snapshot). *)

val path : t -> string
val close : t -> unit

val segment_path : string -> shards:int -> int -> string
(** The journal file for shard [i] of a [shards]-way daemon: the base
    path itself when [shards <= 1] (byte-compatible with single-shard
    journals), otherwise [base.shardI]. Tenants hash to shards
    deterministically, so a restart with the same shard count replays
    each tenant's state into the same shard. *)

type jstats = {
  j_appends : int;
  j_snapshots : int;  (** rotations taken *)
  j_fsyncs : int;
}

val stats : t -> jstats

type replay = {
  rp_state : state;
  rp_records : int;  (** intact records applied *)
  rp_torn : bool;  (** replay ended at a torn/corrupt record *)
}

val replay : path:string -> replay option
(** Read and fold the journal at [path]; [None] when no file exists.
    A bad magic header yields an empty, torn state rather than an
    error — crash-only recovery never refuses to start. *)

val crc32 : string -> int
(** The journal's record checksum (IEEE CRC-32), exposed for tests and
    for the chaos harness's deliberate corruption. *)
