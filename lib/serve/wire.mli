(** The serve wire protocol: length-prefixed JSON frames (4-byte
    big-endian length + compact JSON payload) and the typed request and
    reply messages the [cgcm serve] daemon and [cgcm request] client
    exchange. *)

exception Protocol_error of string

val max_frame_bytes : int
(** Hard frame-size cap; a peer exceeding it is a protocol error, not a
    buffering obligation. *)

(** {2 Blocking frame I/O (client side and tests)} *)

val write_frame : Unix.file_descr -> Json.t -> unit
val read_frame : Unix.file_descr -> Json.t
val encode_frame : Json.t -> Bytes.t

(** {2 Incremental decoding (the daemon's non-blocking reader)} *)

type decoder

val decoder : unit -> decoder

val decoder_feed : decoder -> Bytes.t -> int -> unit
(** Append [n] freshly-read bytes. Hostile-header hardened: a length
    prefix that is oversized, negative or zero raises {!Protocol_error}
    the instant its fourth byte arrives, {e before} any payload
    buffering — so the decoder never allocates more than one
    [max_frame_bytes] frame. An unparseable payload raises on its final
    byte. *)

val decoder_drain : decoder -> Json.t list
(** Pop every complete frame currently decoded, oldest first. *)

val decoder_buffered : decoder -> bool
(** True while an incomplete frame is pending — the server's hook for
    per-connection read deadlines (slow-loris defence). *)

(** {2 Messages} *)

type request = {
  rq_id : int;
  rq_tenant : string;
  rq_source : string;
  rq_mode : string;
      (** [seq | unopt | opt | ie | unified], optionally suffixed with a
          memory backend, e.g. [opt+paged]. [unified] is the paper's
          unified address-space {e oracle} — one flat memory with
          zero-cost intrinsics, for differential testing — not a
          managed-memory model; for on-demand paging with migration
          costs, suffix a split-memory mode with [+paged]. The suffix is
          inert outside the split modes. *)
  rq_deadline : int option;  (** fuel budget for the run *)
  rq_strict : bool;
      (** reject with [Circuit_open] instead of degrading to CPU-only
          execution when the tenant's breaker is open *)
  rq_faults : string option;  (** per-request fault plan (tests) *)
}

type status = Ok | Overloaded | Deadline_exceeded | Circuit_open | Error

val status_name : status -> string
val status_of_name : string -> status

type reply = {
  rp_id : int;
  rp_status : status;
  rp_output : string;  (** program stdout, empty unless [Ok] *)
  rp_exit_code : int;  (** program exit code ([Ok]) or diagnostic code *)
  rp_error : string;  (** rendered diagnostic, empty unless a rejection *)
  rp_cache : string;  (** ["hit"], ["miss"] or ["-"] *)
  rp_degraded : bool;  (** executed CPU-only under an open circuit *)
  rp_retries : int;  (** attempts beyond the first (transient faults) *)
  rp_wall_ms : float;  (** daemon-side execution time *)
}

val request_to_json : request -> Json.t
val request_of_json : Json.t -> request
val reply_to_json : reply -> Json.t
val reply_of_json : Json.t -> reply
