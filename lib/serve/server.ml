(* The cgcm serve daemon: a single-threaded unix-socket server over the
   request {!Engine}.

   One select-driven event loop owns everything — accepting connections,
   framing, admission, execution, write-back — so there is no locking
   and the crash-only discipline is easy to state: between any two
   event-loop iterations the shared state (compile cache, residency,
   breakers) is consistent, and a fatal error can simply kill the
   process without a recovery protocol. Requests are admitted (or shed)
   the moment their frame arrives; one queued request executes per loop
   iteration, so admission keeps rejecting new load with [Overloaded]
   replies while a burst drains instead of buffering it invisibly. *)

type conn = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  mutable out : Bytes.t list;  (* pending write-back, oldest first *)
  mutable out_off : int;  (* progress into the head buffer *)
}

type t = {
  engine : Engine.t;
  socket_path : string;
  listen_fd : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  log : string -> unit;
  mutable stopping : bool;
}

let create ?(engine_config = Engine.default_config) ?(log = ignore)
    ~socket_path () =
  (if Sys.file_exists socket_path then
     (* A previous daemon died without unlinking: crash-only startup
        reclaims the name rather than demanding manual cleanup. *)
     try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  {
    engine = Engine.create ~config:engine_config ();
    socket_path;
    listen_fd;
    conns = Hashtbl.create 16;
    log;
    stopping = false;
  }

let engine t = t.engine
let stop t = t.stopping <- true

let drop_conn t c =
  Hashtbl.remove t.conns c.fd;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let send t c (v : Json.t) =
  ignore t;
  c.out <- c.out @ [ Wire.encode_frame v ]

(* Flush as much buffered write-back as the socket accepts. A dead peer
   (EPIPE) just loses its replies; the daemon carries on. *)
let flush_conn t c =
  try
    let continue = ref true in
    while !continue && c.out <> [] do
      match c.out with
      | [] -> continue := false
      | b :: rest ->
        let n =
          Unix.write c.fd b c.out_off (Bytes.length b - c.out_off)
        in
        c.out_off <- c.out_off + n;
        if c.out_off >= Bytes.length b then begin
          c.out <- rest;
          c.out_off <- 0
        end
    done
  with
  | Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ -> drop_conn t c

let stats_json t : Json.t =
  let s = Engine.stats t.engine in
  let c = Engine.cache_stats t.engine in
  Obj
    [
      ("status", Json.Str "ok");
      ("received", Json.Int s.Engine.received);
      ("ok", Json.Int s.Engine.ok);
      ("shed", Json.Int s.Engine.shed);
      ("deadline_exceeded", Json.Int s.Engine.deadline_exceeded);
      ("circuit_open", Json.Int s.Engine.circuit_rejected);
      ("errors", Json.Int s.Engine.failed);
      ("degraded", Json.Int s.Engine.degraded_runs);
      ("retries", Json.Int s.Engine.retries);
      ("trips", Json.Int s.Engine.circuit_trips);
      ("pending", Json.Int (Engine.pending t.engine));
      ("cache_hits", Json.Int c.Cache.hits);
      ("cache_misses", Json.Int c.Cache.misses);
      ("cache_hit_rate", Json.Float (Engine.cache_hit_rate t.engine));
      ("warm_bytes", Json.Int (Residency.warm_bytes (Engine.residency t.engine)));
      ( "cross_evictions",
        Json.Int (Residency.cross_evictions (Engine.residency t.engine)) );
    ]

let handle_frame t c (v : Json.t) =
  match Json.str_field ~default:"run" "op" v with
  | "run" ->
    let req = Wire.request_of_json v in
    ignore
      (Engine.submit t.engine req (fun reply ->
           send t c (Wire.reply_to_json reply))
        : [ `Queued | `Shed ])
  | "ping" -> send t c (Obj [ ("status", Json.Str "ok") ])
  | "stats" -> send t c (stats_json t)
  | "shutdown" ->
    t.stopping <- true;
    send t c (Obj [ ("status", Json.Str "ok"); ("stopping", Json.Bool true) ])
  | op ->
    send t c
      (Obj
         [
           ("status", Json.Str "error");
           ("error", Json.Str (Printf.sprintf "unknown op %S" op));
         ])

let read_conn t c =
  let buf = Bytes.create 8192 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> drop_conn t c
  | n -> (
    Wire.decoder_feed c.dec buf n;
    match Wire.decoder_drain c.dec with
    | frames -> List.iter (handle_frame t c) frames
    | exception Wire.Protocol_error msg ->
      t.log (Printf.sprintf "serve: protocol error, dropping peer: %s" msg);
      drop_conn t c)
  | exception
      Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
    ()
  | exception Unix.Unix_error _ -> drop_conn t c
  | exception Wire.Protocol_error msg ->
    t.log (Printf.sprintf "serve: protocol error, dropping peer: %s" msg);
    drop_conn t c

let accept_ready t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Hashtbl.replace t.conns fd
        { fd; dec = Wire.decoder (); out = []; out_off = 0 }
    | exception
        Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      continue := false
  done

let iterate t =
  let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns [] in
  let wfds =
    Hashtbl.fold (fun fd c acc -> if c.out <> [] then fd :: acc else acc)
      t.conns []
  in
  (* Block only when idle; with work queued, poll and keep executing. *)
  let timeout = if Engine.pending t.engine > 0 then 0.0 else 0.05 in
  let rfds, wready, _ =
    try Unix.select (t.listen_fd :: conn_fds) wfds [] timeout
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.mem t.listen_fd rfds then accept_ready t;
  List.iter
    (fun fd ->
      if fd <> t.listen_fd then
        match Hashtbl.find_opt t.conns fd with
        | Some c -> read_conn t c
        | None -> ())
    rfds;
  ignore (Engine.step t.engine : bool);
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.conns fd with
      | Some c -> flush_conn t c
      | None -> ())
    (wready @ conn_fds)

let pending_writes t =
  Hashtbl.fold (fun _ c acc -> acc || c.out <> []) t.conns false

(* Run until asked to stop, then drain: queued requests still execute
   and their replies flush before teardown. *)
let run t =
  while not t.stopping do
    iterate t
  done;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (Engine.pending t.engine > 0 || pending_writes t)
    && Unix.gettimeofday () < deadline
  do
    iterate t
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  Hashtbl.reset t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
  let residual = Engine.shutdown t.engine in
  let line = Engine.final_line t.engine ~residual in
  t.log line;
  (line, residual)
