(* The cgcm serve daemon: a select-driven unix-socket router over a
   {!Shard} group of request {!Engine}s.

   The router owns everything socket-shaped — accepting connections,
   framing, write-back, lifecycle — and nothing engine-shaped. A "run"
   frame is decoded, its tenant hashed to a shard, and the request
   posted to that shard's inbox; the reply comes back through the
   group's outbox tagged with the connection token it belongs to. With
   [shards = 1] (the default) no worker domains exist and the router
   drives the single engine inline, one queued request per loop
   iteration — the original single-threaded daemon, byte for byte.
   With [shards > 1] the router keeps reading and writing sockets while
   the shards compute: I/O and execution overlap, and tenants on
   different shards no longer queue behind each other's episodes.

   Even router-side door rejections (draining, the per-shard in-flight
   bound) are forwarded to the owning shard as shed messages, so every
   stat mutation happens on the shard's domain; the router's only reads
   of live engine state are the stats op's aggregation, which is
   documented stale-but-safe (racy reads of word-sized counters) and
   exact once the daemon quiesces.

   Lifecycle hardening (unchanged from the single-loop daemon):

   - startup probes an existing socket file instead of clobbering it: a
     live daemon behind it is a typed [Serve_socket_busy] refusal, a
     dead one's stale file is reclaimed;
   - SIGTERM (or a shutdown frame) triggers a graceful drain — the
     listen socket closes and unlinks immediately so new connects fail
     fast, in-flight requests finish and their replies flush, late
     "run" frames on surviving connections get a typed shed;
   - hostile clients are bounded: a peer holding a frame open past the
     read deadline (slow-loris) or exceeding the write-back cap is sent
     a typed error and dropped; oversized length prefixes never reach
     buffering (see {!Wire.decoder_feed}). *)

module Errors = Cgcm_support.Errors

type conn = {
  token : int;  (* routes replies back from the shard outbox *)
  fd : Unix.file_descr;
  dec : Wire.decoder;
  mutable out : Bytes.t list;  (* pending write-back, oldest first *)
  mutable out_off : int;  (* progress into the head buffer *)
  mutable out_bytes : int;  (* total buffered write-back *)
  mutable frame_t0 : float option;  (* when the pending partial frame began *)
}

type t = {
  shards : Shard.group;
  socket_path : string;
  listen_fd : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  by_token : (int, conn) Hashtbl.t;
  mutable next_token : int;
  inflight_by_shard : int array;  (* posted minus replied, per shard *)
  mutable inflight : int;
  log : string -> unit;
  read_deadline_s : float;
  drain_grace_s : float;
  mutable stopping : bool;
  mutable draining : bool;
  mutable listening : bool;
}

(* A peer that never reads its replies must not buffer the daemon into
   the ground; past this, it is dropped. Generous: dozens of max-size
   frames. *)
let max_conn_out_bytes = 64 * 1024 * 1024

(* Probe an existing socket file: a connect that succeeds means a live
   daemon owns the name; ECONNREFUSED (or a vanished file) means a
   crashed daemon left it behind and the name is reclaimable. *)
let socket_live path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false)

let create ?(engine_config = Engine.default_config) ?journal ?journal_path
    ?(shards = 1) ?(read_deadline_s = 10.0) ?(drain_grace_s = 10.0)
    ?(log = ignore) ~socket_path () =
  (if Sys.file_exists socket_path then
     if socket_live socket_path then
       raise (Errors.Serve_socket_busy { sb_path = socket_path })
     else begin
       log
         (Printf.sprintf "serve: reclaiming stale socket %s (no live daemon)"
            socket_path);
       try Unix.unlink socket_path with Unix.Unix_error _ -> ()
     end);
  let group =
    Shard.create ~engine_config ?journal ?journal_path ~count:shards ()
  in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  {
    shards = group;
    socket_path;
    listen_fd;
    conns = Hashtbl.create 16;
    by_token = Hashtbl.create 16;
    next_token = 0;
    inflight_by_shard = Array.make (Shard.count group) 0;
    inflight = 0;
    log;
    read_deadline_s;
    drain_grace_s;
    stopping = false;
    draining = false;
    listening = true;
  }

let engine t = Shard.engine t.shards 0
let group t = t.shards
let shards t = Shard.count t.shards
let recovered t = Shard.recovered t.shards
let stop t = t.stopping <- true
let draining t = t.draining

let drop_conn t c =
  Hashtbl.remove t.conns c.fd;
  Hashtbl.remove t.by_token c.token;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let send t c (v : Json.t) =
  let b = Wire.encode_frame v in
  c.out <- c.out @ [ b ];
  c.out_bytes <- c.out_bytes + Bytes.length b;
  if c.out_bytes > max_conn_out_bytes then begin
    t.log "serve: write-back cap exceeded, dropping peer";
    drop_conn t c
  end

(* Flush as much buffered write-back as the socket accepts. A dead peer
   (EPIPE) just loses its replies; the daemon carries on. *)
let flush_conn t c =
  try
    let continue = ref true in
    while !continue && c.out <> [] do
      match c.out with
      | [] -> continue := false
      | b :: rest ->
        let n =
          Unix.write c.fd b c.out_off (Bytes.length b - c.out_off)
        in
        c.out_off <- c.out_off + n;
        c.out_bytes <- c.out_bytes - n;
        if c.out_off >= Bytes.length b then begin
          c.out <- rest;
          c.out_off <- 0
        end
    done
  with
  | Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ -> drop_conn t c

(* Deliver a typed last-words error frame, then drop: a misbehaving
   peer learns why instead of seeing a bare hangup. Best-effort — the
   flush takes whatever the socket accepts right now. *)
let send_error_and_drop t c msg =
  send t c (Obj [ ("status", Json.Str "error"); ("error", Json.Str msg) ]);
  if Hashtbl.mem t.conns c.fd then begin
    flush_conn t c;
    drop_conn t c
  end

(* Aggregated across shards. Off the router's domain these are racy
   reads of word-sized counters — stale but never torn (OCaml memory
   model); once the daemon quiesces (replies drained through the outbox
   mutex) they are exact. *)
let stats_json t : Json.t =
  let engines = Shard.engines t.shards in
  let el = Array.to_list engines in
  let s = Engine.sum_stats (List.map Engine.stats el) in
  let hits, misses =
    List.fold_left
      (fun (h, m) e ->
        let c = Engine.cache_stats e in
        (h + c.Cache.hits, m + c.Cache.misses))
      (0, 0) el
  in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 el in
  let journal_stats =
    List.filter_map (fun e -> Option.map Journal.stats (Engine.journal e)) el
  in
  Obj
    ([
       ("status", Json.Str "ok");
       ("shards", Json.Int (Shard.count t.shards));
       ("received", Json.Int s.Engine.received);
       ("ok", Json.Int s.Engine.ok);
       ("shed", Json.Int s.Engine.shed);
       ("deadline_exceeded", Json.Int s.Engine.deadline_exceeded);
       ("circuit_open", Json.Int s.Engine.circuit_rejected);
       ("errors", Json.Int s.Engine.failed);
       ("degraded", Json.Int s.Engine.degraded_runs);
       ("retries", Json.Int s.Engine.retries);
       ("trips", Json.Int s.Engine.circuit_trips);
       ("batches", Json.Int s.Engine.batches);
       ("batched_runs", Json.Int s.Engine.batched_runs);
       ("warm_coalesced", Json.Int s.Engine.warm_coalesced);
       ("pending", Json.Int (t.inflight + sum Engine.pending));
       ("cache_hits", Json.Int hits);
       ("cache_misses", Json.Int misses);
       ("cache_hit_rate", Json.Float hit_rate);
       ( "warm_bytes",
         Json.Int (sum (fun e -> Residency.warm_bytes (Engine.residency e))) );
       ( "cross_evictions",
         Json.Int
           (sum (fun e -> Residency.cross_evictions (Engine.residency e))) );
       ("draining", Json.Bool t.draining);
     ]
    @ (match journal_stats with
      | [] -> []
      | js ->
        [
          ( "journal_appends",
            Json.Int
              (List.fold_left (fun a j -> a + j.Journal.j_appends) 0 js) );
          ( "journal_snapshots",
            Json.Int
              (List.fold_left (fun a j -> a + j.Journal.j_snapshots) 0 js) );
        ])
    @
    match Shard.recovered t.shards with
    | Some r ->
      [
        ("recovered", Json.Bool true);
        ("recovered_records", Json.Int r.Engine.rec_records);
        ("recovered_modules", Json.Int r.Engine.rec_compiled);
        ("rewarmed", Json.Int r.Engine.rec_rewarmed);
        ("recovered_tenants", Json.Int r.Engine.rec_tenants);
        ("journal_torn", Json.Bool r.Engine.rec_torn);
      ]
    | None -> [])

(* The router's own admission bound, active only with worker domains:
   a shard whose inbox + engine queue already hold twice its admission
   window is shed at the door (the shard still owns the stat and the
   typed reply). The engine's queue bound alone cannot see requests
   sitting in the inbox. *)
let router_bound cfg = (2 * cfg.Engine.max_queue) + 2

let handle_frame t c (v : Json.t) =
  match Json.str_field ~default:"run" "op" v with
  | "run" ->
    let req = Wire.request_of_json v in
    let sh = Shard.shard_of t.shards req.Wire.rq_tenant in
    let shed =
      if t.draining then Some "draining"
      else if
        (not (Shard.inline t.shards))
        && t.inflight_by_shard.(sh)
           >= router_bound (Shard.engine_config t.shards)
      then Some "queue"
      else None
    in
    t.inflight_by_shard.(sh) <- t.inflight_by_shard.(sh) + 1;
    t.inflight <- t.inflight + 1;
    Shard.post t.shards ~shard:sh ~token:c.token ?shed req
  | "ping" -> send t c (Obj [ ("status", Json.Str "ok") ])
  | "stats" -> send t c (stats_json t)
  | "shutdown" ->
    t.stopping <- true;
    send t c (Obj [ ("status", Json.Str "ok"); ("stopping", Json.Bool true) ])
  | op ->
    send t c
      (Obj
         [
           ("status", Json.Str "error");
           ("error", Json.Str (Printf.sprintf "unknown op %S" op));
         ])

let read_conn t c =
  let buf = Bytes.create 8192 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> drop_conn t c
  | n -> (
    match
      Wire.decoder_feed c.dec buf n;
      Wire.decoder_drain c.dec
    with
    | frames ->
      (* Arm (or clear) the slow-loris clock: it runs only while a
         partial frame is pending. *)
      c.frame_t0 <-
        (if Wire.decoder_buffered c.dec then
           match c.frame_t0 with
           | Some _ as s -> s
           | None -> Some (Unix.gettimeofday ())
         else None);
      List.iter (handle_frame t c) frames
    | exception Wire.Protocol_error msg ->
      t.log (Printf.sprintf "serve: protocol error, dropping peer: %s" msg);
      send_error_and_drop t c ("cgcm serve: protocol error: " ^ msg))
  | exception
      Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
    ()
  | exception Unix.Unix_error _ -> drop_conn t c
  | exception Wire.Protocol_error msg ->
    t.log (Printf.sprintf "serve: protocol error, dropping peer: %s" msg);
    send_error_and_drop t c ("cgcm serve: protocol error: " ^ msg)

let accept_ready t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      let token = t.next_token in
      t.next_token <- t.next_token + 1;
      let c =
        {
          token;
          fd;
          dec = Wire.decoder ();
          out = [];
          out_off = 0;
          out_bytes = 0;
          frame_t0 = None;
        }
      in
      Hashtbl.replace t.conns fd c;
      Hashtbl.replace t.by_token token c
    | exception
        Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      continue := false
  done

(* Drop every peer that has held a frame open past the read deadline —
   a slow-loris cannot wedge the loop, it can only own one connection
   slot for [read_deadline_s]. *)
let enforce_read_deadlines t =
  let now = Unix.gettimeofday () in
  let stale =
    Hashtbl.fold
      (fun _ c acc ->
        match c.frame_t0 with
        | Some t0 when now -. t0 > t.read_deadline_s -> c :: acc
        | _ -> acc)
      t.conns []
  in
  List.iter
    (fun c ->
      t.log "serve: read deadline exceeded on a partial frame, dropping peer";
      send_error_and_drop t c
        (Printf.sprintf
           "cgcm serve: read deadline exceeded: partial frame older than %g s"
           t.read_deadline_s))
    stale

(* Route finished replies back to their connections. A reply whose peer
   vanished mid-flight is dropped (its work still counted on the
   shard); in-flight accounting always decrements. *)
let route_replies t =
  List.iter
    (fun (token, sh, reply) ->
      t.inflight_by_shard.(sh) <- t.inflight_by_shard.(sh) - 1;
      t.inflight <- t.inflight - 1;
      match Hashtbl.find_opt t.by_token token with
      | Some c -> send t c (Wire.reply_to_json reply)
      | None -> ())
    (Shard.drain_replies t.shards)

let iterate t =
  let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns [] in
  let wfds =
    Hashtbl.fold (fun fd c acc -> if c.out <> [] then fd :: acc else acc)
      t.conns []
  in
  let rfds_in = if t.listening then t.listen_fd :: conn_fds else conn_fds in
  let rfds_in =
    match Shard.wake_fd t.shards with
    | Some fd -> fd :: rfds_in
    | None -> rfds_in
  in
  (* Inline: block only when idle; with work queued, poll and keep
     executing. Sharded: block up to the tick — the wake pipe interrupts
     the select the instant a shard finishes a reply. *)
  let timeout = if Shard.pending_inline t.shards > 0 then 0.0 else 0.05 in
  let rfds, wready, _ =
    try Unix.select rfds_in wfds [] timeout
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if t.listening && List.mem t.listen_fd rfds then accept_ready t;
  List.iter
    (fun fd ->
      if fd <> t.listen_fd then
        match Hashtbl.find_opt t.conns fd with
        | Some c -> read_conn t c
        | None -> ())
    rfds;
  enforce_read_deadlines t;
  Shard.step_inline t.shards;
  route_replies t;
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.conns fd with
      | Some c -> flush_conn t c
      | None -> ())
    (wready @ conn_fds)

let pending_writes t =
  Hashtbl.fold (fun _ c acc -> acc || c.out <> []) t.conns false

(* Stop accepting: close and unlink the listen socket so new connects
   fail fast (ENOENT) the moment the drain begins, rather than sitting
   in a backlog that will never be served. *)
let close_listener t =
  if t.listening then begin
    t.listening <- false;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.socket_path with Unix.Unix_error _ -> ()
  end

(* Run until asked to stop, then drain gracefully: queued requests
   still execute and their replies flush before teardown, while frames
   that arrive during the drain are shed with a typed reply. *)
let run t =
  Shard.start t.shards;
  while not t.stopping do
    iterate t
  done;
  t.draining <- true;
  close_listener t;
  t.log "serve: draining (in-flight requests finish, new work is shed)";
  let deadline = Unix.gettimeofday () +. t.drain_grace_s in
  while
    (t.inflight > 0 || pending_writes t)
    && Unix.gettimeofday () < deadline
  do
    iterate t
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  Hashtbl.reset t.conns;
  Hashtbl.reset t.by_token;
  close_listener t;
  let residual = Shard.stop t.shards in
  let el = Array.to_list (Shard.engines t.shards) in
  let stats = Engine.sum_stats (List.map Engine.stats el) in
  let hits, misses =
    List.fold_left
      (fun (h, m) e ->
        let c = Engine.cache_stats e in
        (h + c.Cache.hits, m + c.Cache.misses))
      (0, 0) el
  in
  let cache_hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let cross_evictions =
    List.fold_left
      (fun acc e -> acc + Residency.cross_evictions (Engine.residency e))
      0 el
  in
  let line =
    Engine.final_line_of ~stats ~cross_evictions ~cache_hit_rate ~residual
  in
  t.log line;
  (line, residual)
