(** Bounded LRU cache with hit/miss counters — the serve daemon's
    cross-request compilation cache, extending the per-compile cache
    discipline of {!Cgcm_analysis.Manager} across requests. Compiled
    modules are immutable once the pass pipeline finishes, so entries
    keyed by a digest of (source, mode) are shared by every tenant. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Counts a hit or a miss and refreshes recency on hit. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Pure lookup: no hit/miss accounting, no recency refresh. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or refresh) an entry, evicting the least-recently-used one
    when at capacity. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v * [ `Hit | `Miss ]

val size : ('k, 'v) t -> int

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : ('k, 'v) t -> stats
val hit_rate : ('k, 'v) t -> float
(** Hits over lookups; 0 when nothing was looked up yet. *)
