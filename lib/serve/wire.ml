(* The serve wire protocol: length-prefixed JSON frames over a unix
   socket, and the typed request/reply messages they carry.

   A frame is a 4-byte big-endian payload length followed by that many
   bytes of compact JSON. Length-prefixing (rather than newline
   delimiting) lets program sources travel verbatim, and caps frame
   size up front so a misbehaving peer cannot make the daemon buffer
   unboundedly. *)

exception Protocol_error of string

let max_frame_bytes = 8 * 1024 * 1024
(* A compile request is dominated by its program source; 8 MiB is two
   orders of magnitude above anything the suite or fuzzer produces. *)

(* ------------------------------------------------------------------ *)
(* Blocking frame I/O (client side and tests)                          *)

let really_write fd buf off len =
  let off = ref off and left = ref len in
  while !left > 0 do
    let n = Unix.write fd buf !off !left in
    off := !off + n;
    left := !left - n
  done

let really_read fd buf off len =
  let off = ref off and left = ref len in
  while !left > 0 do
    let n = Unix.read fd buf !off !left in
    if n = 0 then raise (Protocol_error "peer closed mid-frame");
    off := !off + n;
    left := !left - n
  done

let encode_frame (v : Json.t) : Bytes.t =
  let payload = Json.print v in
  let n = String.length payload in
  if n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "frame of %d bytes exceeds limit" n));
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.blit_string payload 0 b 4 n;
  b

let write_frame fd v =
  let b = encode_frame v in
  really_write fd b 0 (Bytes.length b)

let decode_len b off =
  (Bytes.get_uint8 b off lsl 24)
  lor (Bytes.get_uint8 b (off + 1) lsl 16)
  lor (Bytes.get_uint8 b (off + 2) lsl 8)
  lor Bytes.get_uint8 b (off + 3)

let read_frame fd : Json.t =
  let hdr = Bytes.create 4 in
  really_read fd hdr 0 4;
  let n = decode_len hdr 0 in
  if n < 0 || n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" n));
  let payload = Bytes.create n in
  really_read fd payload 0 n;
  try Json.parse (Bytes.unsafe_to_string payload)
  with Json.Parse_error msg -> raise (Protocol_error ("bad frame: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Incremental frame decoding (the daemon's non-blocking reader)       *)

type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 4096; len = 0 }

let decoder_feed d chunk n =
  if d.len + n > Bytes.length d.buf then begin
    let cap = max (d.len + n) (2 * Bytes.length d.buf) in
    if cap > max_frame_bytes + 4 then
      raise (Protocol_error "peer exceeded the frame size limit");
    let b = Bytes.create cap in
    Bytes.blit d.buf 0 b 0 d.len;
    d.buf <- b
  end;
  Bytes.blit chunk 0 d.buf d.len n;
  d.len <- d.len + n

(* Pop every complete frame currently buffered. *)
let decoder_drain d : Json.t list =
  let frames = ref [] in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    if d.len - !pos < 4 then continue := false
    else begin
      let n = decode_len d.buf !pos in
      if n < 0 || n > max_frame_bytes then
        raise (Protocol_error (Printf.sprintf "bad frame length %d" n));
      if d.len - !pos - 4 < n then continue := false
      else begin
        let payload = Bytes.sub_string d.buf (!pos + 4) n in
        (match Json.parse payload with
        | v -> frames := v :: !frames
        | exception Json.Parse_error msg ->
          raise (Protocol_error ("bad frame: " ^ msg)));
        pos := !pos + 4 + n
      end
    end
  done;
  if !pos > 0 then begin
    Bytes.blit d.buf !pos d.buf 0 (d.len - !pos);
    d.len <- d.len - !pos
  end;
  List.rev !frames

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)

type request = {
  rq_id : int;
  rq_tenant : string;
  rq_source : string;
  rq_mode : string;  (* seq | unopt | opt | ie | unified *)
  rq_deadline : int option;  (* fuel budget for the run *)
  rq_strict : bool;  (* reject (Circuit_open) instead of degrading *)
  rq_faults : string option;  (* per-request fault plan, mostly for tests *)
}

type status = Ok | Overloaded | Deadline_exceeded | Circuit_open | Error

let status_name = function
  | Ok -> "ok"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Circuit_open -> "circuit_open"
  | Error -> "error"

let status_of_name = function
  | "ok" -> Ok
  | "overloaded" -> Overloaded
  | "deadline_exceeded" -> Deadline_exceeded
  | "circuit_open" -> Circuit_open
  | "error" -> Error
  | s -> raise (Protocol_error (Printf.sprintf "unknown status %S" s))

type reply = {
  rp_id : int;
  rp_status : status;
  rp_output : string;  (* program stdout, empty unless Ok *)
  rp_exit_code : int;  (* program exit code (Ok) or diagnostic code *)
  rp_error : string;  (* rendered diagnostic, empty unless a rejection *)
  rp_cache : string;  (* "hit" | "miss" | "-" *)
  rp_degraded : bool;  (* executed CPU-only under an open circuit *)
  rp_retries : int;  (* attempts beyond the first (transient faults) *)
  rp_wall_ms : float;  (* daemon-side execution time *)
}

let request_to_json r : Json.t =
  Obj
    ([
       ("op", Json.Str "run");
       ("id", Json.Int r.rq_id);
       ("tenant", Json.Str r.rq_tenant);
       ("mode", Json.Str r.rq_mode);
       ("source", Json.Str r.rq_source);
       ("strict", Json.Bool r.rq_strict);
     ]
    @ (match r.rq_deadline with
      | Some d -> [ ("deadline", Json.Int d) ]
      | None -> [])
    @
    match r.rq_faults with
    | Some f -> [ ("faults", Json.Str f) ]
    | None -> [])

let request_of_json v =
  {
    rq_id = Json.int_field ~default:0 "id" v;
    rq_tenant = Json.str_field ~default:"anonymous" "tenant" v;
    rq_source = Json.str_field "source" v;
    rq_mode = Json.str_field ~default:"opt" "mode" v;
    rq_deadline = Json.opt_int_field "deadline" v;
    rq_strict = Json.bool_field ~default:false "strict" v;
    rq_faults = Json.opt_str_field "faults" v;
  }

let reply_to_json r : Json.t =
  Obj
    [
      ("id", Json.Int r.rp_id);
      ("status", Json.Str (status_name r.rp_status));
      ("output", Json.Str r.rp_output);
      ("exit_code", Json.Int r.rp_exit_code);
      ("error", Json.Str r.rp_error);
      ("cache", Json.Str r.rp_cache);
      ("degraded", Json.Bool r.rp_degraded);
      ("retries", Json.Int r.rp_retries);
      ("wall_ms", Json.Float r.rp_wall_ms);
    ]

let reply_of_json v =
  {
    rp_id = Json.int_field ~default:0 "id" v;
    rp_status = status_of_name (Json.str_field "status" v);
    rp_output = Json.str_field ~default:"" "output" v;
    rp_exit_code = Json.int_field ~default:0 "exit_code" v;
    rp_error = Json.str_field ~default:"" "error" v;
    rp_cache = Json.str_field ~default:"-" "cache" v;
    rp_degraded = Json.bool_field ~default:false "degraded" v;
    rp_retries = Json.int_field ~default:0 "retries" v;
    rp_wall_ms = Json.float_field ~default:0.0 "wall_ms" v;
  }
