(* The serve wire protocol: length-prefixed JSON frames over a unix
   socket, and the typed request/reply messages they carry.

   A frame is a 4-byte big-endian payload length followed by that many
   bytes of compact JSON. Length-prefixing (rather than newline
   delimiting) lets program sources travel verbatim, and caps frame
   size up front so a misbehaving peer cannot make the daemon buffer
   unboundedly. *)

exception Protocol_error of string

let max_frame_bytes = 8 * 1024 * 1024
(* A compile request is dominated by its program source; 8 MiB is two
   orders of magnitude above anything the suite or fuzzer produces. *)

(* ------------------------------------------------------------------ *)
(* Blocking frame I/O (client side and tests)                          *)

let really_write fd buf off len =
  let off = ref off and left = ref len in
  while !left > 0 do
    let n = Unix.write fd buf !off !left in
    off := !off + n;
    left := !left - n
  done

let really_read fd buf off len =
  let off = ref off and left = ref len in
  while !left > 0 do
    let n = Unix.read fd buf !off !left in
    if n = 0 then raise (Protocol_error "peer closed mid-frame");
    off := !off + n;
    left := !left - n
  done

let encode_frame (v : Json.t) : Bytes.t =
  let payload = Json.print v in
  let n = String.length payload in
  if n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "frame of %d bytes exceeds limit" n));
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.blit_string payload 0 b 4 n;
  b

let write_frame fd v =
  let b = encode_frame v in
  really_write fd b 0 (Bytes.length b)

let decode_len b off =
  (Bytes.get_uint8 b off lsl 24)
  lor (Bytes.get_uint8 b (off + 1) lsl 16)
  lor (Bytes.get_uint8 b (off + 2) lsl 8)
  lor Bytes.get_uint8 b (off + 3)

let read_frame fd : Json.t =
  let hdr = Bytes.create 4 in
  really_read fd hdr 0 4;
  let n = decode_len hdr 0 in
  if n < 0 || n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" n));
  let payload = Bytes.create n in
  really_read fd payload 0 n;
  try Json.parse (Bytes.unsafe_to_string payload)
  with Json.Parse_error msg -> raise (Protocol_error ("bad frame: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Incremental frame decoding (the daemon's non-blocking reader)

   A small state machine, hardened against hostile peers: the length
   prefix is validated the instant its fourth byte arrives — an
   oversized, negative (sign bit set) or zero prefix is a typed
   [Protocol_error] before any payload buffering, so a 4-byte header
   can never make the daemon allocate more than [max_frame_bytes].
   The payload buffer is allocated exact-size, so the decoder's
   footprint is bounded by one frame. *)

type decoder = {
  hdr : Bytes.t;  (* 4-byte length-prefix accumulator *)
  mutable hdr_len : int;  (* header bytes received so far (0..4) *)
  mutable payload : Bytes.t;  (* exact-size frame buffer, once known *)
  mutable got : int;  (* payload bytes received so far *)
  mutable ready : Json.t list;  (* complete frames, newest first *)
}

let decoder () =
  { hdr = Bytes.create 4; hdr_len = 0; payload = Bytes.empty; got = 0;
    ready = [] }

(* Mid-frame: some bytes of an incomplete frame are pending. The server
   uses this to arm its per-connection read deadline (slow-loris). *)
let decoder_buffered d = d.hdr_len > 0 || Bytes.length d.payload > 0

let check_len len =
  (* [decode_len] reads the prefix unsigned, so a peer's negative length
     arrives here as a value past the sign bit; report it as the signed
     number the peer actually sent. *)
  if len land 0x8000_0000 <> 0 then
    raise
      (Protocol_error
         (Printf.sprintf "bad frame length %d" (len - 0x1_0000_0000)))
  else if len > max_frame_bytes then
    raise
      (Protocol_error
         (Printf.sprintf "frame length %d exceeds the %d-byte limit" len
            max_frame_bytes))
  else if len = 0 then raise (Protocol_error "empty frame")

let decoder_feed d chunk n =
  let pos = ref 0 in
  while !pos < n do
    if Bytes.length d.payload = 0 then begin
      (* header phase *)
      let take = min (4 - d.hdr_len) (n - !pos) in
      Bytes.blit chunk !pos d.hdr d.hdr_len take;
      d.hdr_len <- d.hdr_len + take;
      pos := !pos + take;
      if d.hdr_len = 4 then begin
        let len = decode_len d.hdr 0 in
        check_len len;
        d.hdr_len <- 0;
        d.payload <- Bytes.create len;
        d.got <- 0
      end
    end
    else begin
      (* payload phase *)
      let take = min (Bytes.length d.payload - d.got) (n - !pos) in
      Bytes.blit chunk !pos d.payload d.got take;
      d.got <- d.got + take;
      pos := !pos + take;
      if d.got = Bytes.length d.payload then begin
        let s = Bytes.unsafe_to_string d.payload in
        d.payload <- Bytes.empty;
        d.got <- 0;
        match Json.parse s with
        | v -> d.ready <- v :: d.ready
        | exception Json.Parse_error msg ->
          raise (Protocol_error ("bad frame: " ^ msg))
      end
    end
  done

(* Pop every complete frame currently decoded, oldest first. *)
let decoder_drain d : Json.t list =
  let frames = List.rev d.ready in
  d.ready <- [];
  frames

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)

type request = {
  rq_id : int;
  rq_tenant : string;
  rq_source : string;
  rq_mode : string;  (* seq | unopt | opt | ie | unified *)
  rq_deadline : int option;  (* fuel budget for the run *)
  rq_strict : bool;  (* reject (Circuit_open) instead of degrading *)
  rq_faults : string option;  (* per-request fault plan, mostly for tests *)
}

type status = Ok | Overloaded | Deadline_exceeded | Circuit_open | Error

let status_name = function
  | Ok -> "ok"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Circuit_open -> "circuit_open"
  | Error -> "error"

let status_of_name = function
  | "ok" -> Ok
  | "overloaded" -> Overloaded
  | "deadline_exceeded" -> Deadline_exceeded
  | "circuit_open" -> Circuit_open
  | "error" -> Error
  | s -> raise (Protocol_error (Printf.sprintf "unknown status %S" s))

type reply = {
  rp_id : int;
  rp_status : status;
  rp_output : string;  (* program stdout, empty unless Ok *)
  rp_exit_code : int;  (* program exit code (Ok) or diagnostic code *)
  rp_error : string;  (* rendered diagnostic, empty unless a rejection *)
  rp_cache : string;  (* "hit" | "miss" | "-" *)
  rp_degraded : bool;  (* executed CPU-only under an open circuit *)
  rp_retries : int;  (* attempts beyond the first (transient faults) *)
  rp_wall_ms : float;  (* daemon-side execution time *)
}

let request_to_json r : Json.t =
  Obj
    ([
       ("op", Json.Str "run");
       ("id", Json.Int r.rq_id);
       ("tenant", Json.Str r.rq_tenant);
       ("mode", Json.Str r.rq_mode);
       ("source", Json.Str r.rq_source);
       ("strict", Json.Bool r.rq_strict);
     ]
    @ (match r.rq_deadline with
      | Some d -> [ ("deadline", Json.Int d) ]
      | None -> [])
    @
    match r.rq_faults with
    | Some f -> [ ("faults", Json.Str f) ]
    | None -> [])

let request_of_json v =
  {
    rq_id = Json.int_field ~default:0 "id" v;
    rq_tenant = Json.str_field ~default:"anonymous" "tenant" v;
    rq_source = Json.str_field "source" v;
    rq_mode = Json.str_field ~default:"opt" "mode" v;
    rq_deadline = Json.opt_int_field "deadline" v;
    rq_strict = Json.bool_field ~default:false "strict" v;
    rq_faults = Json.opt_str_field "faults" v;
  }

let reply_to_json r : Json.t =
  Obj
    [
      ("id", Json.Int r.rp_id);
      ("status", Json.Str (status_name r.rp_status));
      ("output", Json.Str r.rp_output);
      ("exit_code", Json.Int r.rp_exit_code);
      ("error", Json.Str r.rp_error);
      ("cache", Json.Str r.rp_cache);
      ("degraded", Json.Bool r.rp_degraded);
      ("retries", Json.Int r.rp_retries);
      ("wall_ms", Json.Float r.rp_wall_ms);
    ]

let reply_of_json v =
  {
    rp_id = Json.int_field ~default:0 "id" v;
    rp_status = status_of_name (Json.str_field "status" v);
    rp_output = Json.str_field ~default:"" "output" v;
    rp_exit_code = Json.int_field ~default:0 "exit_code" v;
    rp_error = Json.str_field ~default:"" "error" v;
    rp_cache = Json.str_field ~default:"-" "cache" v;
    rp_degraded = Json.bool_field ~default:false "degraded" v;
    rp_retries = Json.int_field ~default:0 "retries" v;
    rp_wall_ms = Json.float_field ~default:0.0 "wall_ms" v;
  }
