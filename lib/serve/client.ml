(* Client side of the serve protocol: one connection per operation.

   The daemon replies on the connection that carried the request, so a
   connect-send-receive-close client never needs request/reply
   correlation beyond the echoed id. *)

let with_conn socket_path f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      f fd)

(* Deadline-bounded read of one frame: select before every read, so a
   daemon that accepted the connection but never replies (wedged, or
   killed mid-request) costs at most the timeout, not forever. *)
let read_frame_deadline fd ~socket_path ~timeout_ms : Json.t =
  let deadline =
    Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.0)
  in
  let dec = Wire.decoder () in
  let buf = Bytes.create 8192 in
  let timeout () =
    raise
      (Cgcm_support.Errors.Serve_request_timeout
         { rt_socket = socket_path; rt_timeout_ms = timeout_ms })
  in
  let rec go () =
    match Wire.decoder_drain dec with
    | v :: _ -> v
    | [] ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then timeout ();
      (match Unix.select [ fd ] [] [] left with
      | [], _, _ -> timeout ()
      | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> raise (Wire.Protocol_error "peer closed mid-frame")
        | n -> Wire.decoder_feed dec buf n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
      go ()
  in
  go ()

let roundtrip ?timeout_ms socket_path (v : Json.t) : Json.t =
  with_conn socket_path (fun fd ->
      Wire.write_frame fd v;
      match timeout_ms with
      | None -> Wire.read_frame fd
      | Some ms -> read_frame_deadline fd ~socket_path ~timeout_ms:ms)

let request ?timeout_ms ~socket_path (req : Wire.request) : Wire.reply =
  Wire.reply_of_json
    (roundtrip ?timeout_ms socket_path (Wire.request_to_json req))

let ping ~socket_path =
  match roundtrip socket_path (Obj [ ("op", Json.Str "ping") ]) with
  | v -> Json.str_field ~default:"" "status" v = "ok"
  | exception _ -> false

let stats ~socket_path : Json.t =
  roundtrip socket_path (Obj [ ("op", Json.Str "stats") ])

let shutdown ~socket_path =
  match roundtrip socket_path (Obj [ ("op", Json.Str "shutdown") ]) with
  | v -> Json.bool_field ~default:false "stopping" v
  | exception _ -> false

(* Poll until the daemon answers pings — the two-process handshake used
   by the bench driver and the CI soak job after forking the daemon. *)
let wait_ready ?(timeout_s = 10.0) ~socket_path () =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if ping ~socket_path then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()
