(* Client side of the serve protocol: one connection per operation.

   The daemon replies on the connection that carried the request, so a
   connect-send-receive-close client never needs request/reply
   correlation beyond the echoed id. *)

let with_conn socket_path f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      f fd)

let roundtrip socket_path (v : Json.t) : Json.t =
  with_conn socket_path (fun fd ->
      Wire.write_frame fd v;
      Wire.read_frame fd)

let request ~socket_path (req : Wire.request) : Wire.reply =
  Wire.reply_of_json (roundtrip socket_path (Wire.request_to_json req))

let ping ~socket_path =
  match roundtrip socket_path (Obj [ ("op", Json.Str "ping") ]) with
  | v -> Json.str_field ~default:"" "status" v = "ok"
  | exception _ -> false

let stats ~socket_path : Json.t =
  roundtrip socket_path (Obj [ ("op", Json.Str "stats") ])

let shutdown ~socket_path =
  match roundtrip socket_path (Obj [ ("op", Json.Str "shutdown") ]) with
  | v -> Json.bool_field ~default:false "stopping" v
  | exception _ -> false

(* Poll until the daemon answers pings — the two-process handshake used
   by the bench driver and the CI soak job after forking the daemon. *)
let wait_ready ?(timeout_s = 10.0) ~socket_path () =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if ping ~socket_path then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()
