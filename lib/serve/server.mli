(** The [cgcm serve] daemon: a single-threaded, select-driven
    unix-socket server over the request {!Engine}.

    One event loop owns accepting, framing, admission, execution and
    write-back, so shared state is consistent between iterations —
    crash-only by construction. Admission happens the moment a request
    frame arrives; one queued request executes per iteration, so bursts
    are shed at the door rather than buffered invisibly.

    Lifecycle hardening: startup probes (rather than clobbers) an
    existing socket file; {!stop} triggers a graceful drain; peers that
    stall mid-frame or never read their replies are dropped with a
    typed error frame. *)

type t

val create :
  ?engine_config:Engine.config ->
  ?journal:Journal.t ->
  ?read_deadline_s:float ->
  ?drain_grace_s:float ->
  ?log:(string -> unit) ->
  socket_path:string ->
  unit ->
  t
(** Bind and listen on [socket_path]. An existing socket file is probed
    first: a live daemon behind it raises
    [Cgcm_support.Errors.Serve_socket_busy]; a dead daemon's stale file
    is reclaimed. [journal] is handed to the engine, which records
    every durable fact before replying. [read_deadline_s] (default 10)
    bounds how long a peer may hold a frame open (slow-loris);
    [drain_grace_s] (default 10) bounds the graceful drain. *)

val engine : t -> Engine.t

val stop : t -> unit
(** Ask {!run} to wind down after the current iteration (signal-handler
    safe: it only sets a flag). *)

val draining : t -> bool
(** True once the graceful drain has begun: the listen socket is closed
    and unlinked, and new "run" frames are shed with a typed reply. *)

val run : t -> string * int
(** Serve until {!stop} or a [shutdown] frame, then drain gracefully:
    the listen socket closes and unlinks immediately (new connects fail
    fast), queued requests execute, replies flush, late frames on
    surviving connections are shed with a typed [Overloaded] reply —
    all bounded by the drain grace. Returns the final stats line and
    the residual device block count (0 = leak-free). *)
