(** The [cgcm serve] daemon: a select-driven unix-socket router over a
    {!Shard} group of request {!Engine}s.

    The router owns the sockets; shards own the engines. A "run" frame's
    tenant hashes to a shard, the request travels through that shard's
    inbox, and the reply returns through the group outbox tagged with
    its connection token. With [shards = 1] (the default) no worker
    domains exist and the router drives the single engine inline — the
    original single-threaded daemon exactly. With [shards > 1] socket
    I/O overlaps shard execution, and each shard fuses compatible
    consecutive requests into batched episodes.

    Lifecycle hardening: startup probes (rather than clobbers) an
    existing socket file; {!stop} triggers a graceful drain; peers that
    stall mid-frame or never read their replies are dropped with a
    typed error frame. *)

type t

val create :
  ?engine_config:Engine.config ->
  ?journal:Journal.t ->
  ?journal_path:string ->
  ?shards:int ->
  ?read_deadline_s:float ->
  ?drain_grace_s:float ->
  ?log:(string -> unit) ->
  socket_path:string ->
  unit ->
  t
(** Bind and listen on [socket_path]. An existing socket file is probed
    first: a live daemon behind it raises
    [Cgcm_support.Errors.Serve_socket_busy]; a dead daemon's stale file
    is reclaimed. [shards] (default 1) sets the worker-domain count;
    [journal_path] makes each shard replay, re-create and recover its
    own journal segment before serving ({!Journal.segment_path} — the
    base path itself when [shards = 1]). [journal] hands a pre-built
    journal to a single-shard daemon (the legacy path; raises
    [Invalid_argument] with [shards > 1]). [read_deadline_s] (default
    10) bounds how long a peer may hold a frame open (slow-loris);
    [drain_grace_s] (default 10) bounds the graceful drain. *)

val engine : t -> Engine.t
(** Shard 0's engine. With [shards > 1] this is only safe for racy stat
    reads or after {!run} returns; single-shard tests may drive it
    directly as before. *)

val group : t -> Shard.group
val shards : t -> int

val recovered : t -> Engine.recovery option
(** Aggregated journal recovery across shards. *)

val stop : t -> unit
(** Ask {!run} to wind down after the current iteration (signal-handler
    safe: it only sets a flag). *)

val draining : t -> bool
(** True once the graceful drain has begun: the listen socket is closed
    and unlinked, and new "run" frames are shed with a typed reply. *)

val run : t -> string * int
(** Serve until {!stop} or a [shutdown] frame, then drain gracefully:
    the listen socket closes and unlinks immediately (new connects fail
    fast), queued requests execute, replies flush, late frames on
    surviving connections are shed with a typed [Overloaded] reply —
    all bounded by the drain grace. Spawns the worker domains on entry
    and joins them on the way out. Returns the aggregated final stats
    line and the summed residual device block count (0 = leak-free). *)
