(** The [cgcm serve] daemon: a single-threaded, select-driven
    unix-socket server over the request {!Engine}.

    One event loop owns accepting, framing, admission, execution and
    write-back, so shared state is consistent between iterations —
    crash-only by construction. Admission happens the moment a request
    frame arrives; one queued request executes per iteration, so bursts
    are shed at the door rather than buffered invisibly. *)

type t

val create :
  ?engine_config:Engine.config ->
  ?log:(string -> unit) ->
  socket_path:string ->
  unit ->
  t
(** Bind and listen on [socket_path] (a stale socket file from a
    crashed daemon is reclaimed). *)

val engine : t -> Engine.t

val stop : t -> unit
(** Ask {!run} to wind down after the current iteration (signal-handler
    safe: it only sets a flag). *)

val run : t -> string * int
(** Serve until {!stop} or a [shutdown] frame, then drain queued
    requests, flush replies, tear down all warm residency, unlink the
    socket and return the final stats line and the residual device
    block count (0 = leak-free). *)
