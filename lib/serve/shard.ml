(* Shard group: the execution side of a sharded serve daemon.

   A group owns N full {!Engine}s — each with its own compiled-module
   LRU, warm residency device, journal segment and breakers — and, when
   N > 1, one long-lived worker domain per engine. Tenants hash to
   shards deterministically ({!tenant_shard}), so every piece of
   mutable engine state (residency, [globals_gen], breakers, stats) has
   exactly one owning domain and nothing is ever shared; the router
   never touches an engine that has a worker domain, it only exchanges
   messages with it.

   Plumbing:

   - inbox: per-shard queue (mutex + condition) the router pushes
     decoded requests into; the worker drains it, admits every message
     through [Engine.submit] (or [Engine.shed_request], for requests
     the router rejected at the door — draining, or the router-side
     in-flight bound), then executes one fused episode
     ([Engine.step_batch]) before looking at the inbox again, so
     admission keeps shedding while a burst drains, exactly like the
     single-loop daemon;
   - outbox: one shared queue of (token, shard, reply) the workers push
     replies into, plus a self-pipe whose write end the workers poke so
     the router's [select] wakes for write-back — this is the overlap
     layer: the router keeps reading and writing sockets while shards
     compute;
   - with N = 1 no domain is spawned and the router drives the engine
     inline ([step_inline]), preserving the original single-threaded
     daemon byte for byte.

   Shutdown: close every inbox, join the worker domains (the join is
   the happens-before edge that hands each engine back to the router's
   domain), then shut each engine down sequentially. *)

type msg = {
  m_token : int;  (* router's connection token, echoed with the reply *)
  m_shed : string option;  (* Some reason = reject at the door *)
  m_req : Wire.request;
}

type shard = {
  s_id : int;
  s_engine : Engine.t;
  s_inbox : msg Queue.t;
  s_lock : Mutex.t;
  s_cond : Condition.t;
  mutable s_closed : bool;
  mutable s_domain : unit Domain.t option;
}

type group = {
  g_shards : shard array;
  g_config : Engine.config;
  g_out : (int * int * Wire.reply) Queue.t;  (* token, shard, reply *)
  g_out_lock : Mutex.t;
  g_wake_r : Unix.file_descr option;
  g_wake_w : Unix.file_descr option;
}

(* ------------------------------------------------------------------ *)
(* Tenant placement                                                    *)

(* FNV-1a (32-bit) over the tenant name: deterministic across processes
   and restarts (never OCaml's randomized/hash-table hashing), so
   journal recovery lands each tenant's warm state on the shard that
   owned it before the crash. A pure function of (name, shard count):
   growing the tenant set never moves an existing tenant. *)
let tenant_shard ~shards name =
  if shards <= 1 then 0
  else begin
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x01000193 land 0xffffffff)
      name;
    !h mod shards
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ?(engine_config = Engine.default_config) ?journal ?journal_path
    ?(count = 1) () =
  if count < 1 || count > 64 then
    invalid_arg "Shard.create: count must be in [1, 64]";
  if journal <> None && count > 1 then
    invalid_arg
      "Shard.create: a shared journal handle only works single-shard; pass \
       journal_path for per-shard segments";
  let mk i =
    let journal, replayed =
      match (journal, journal_path) with
      | Some j, _ -> (Some j, None)
      | None, Some base ->
        let seg = Journal.segment_path base ~shards:count i in
        let replayed = Journal.replay ~path:seg in
        let j =
          Journal.create ~path:seg
            ?initial:(Option.map (fun r -> r.Journal.rp_state) replayed)
            ()
        in
        (Some j, replayed)
      | None, None -> (None, None)
    in
    let engine = Engine.create ~config:engine_config ?journal () in
    Option.iter
      (fun rp -> ignore (Engine.recover engine rp : Engine.recovery))
      replayed;
    {
      s_id = i;
      s_engine = engine;
      s_inbox = Queue.create ();
      s_lock = Mutex.create ();
      s_cond = Condition.create ();
      s_closed = false;
      s_domain = None;
    }
  in
  let shards = Array.init count mk in
  let wake_r, wake_w =
    if count > 1 then begin
      let r, w = Unix.pipe () in
      Unix.set_nonblock r;
      Unix.set_nonblock w;
      (Some r, Some w)
    end
    else (None, None)
  in
  {
    g_shards = shards;
    g_config = engine_config;
    g_out = Queue.create ();
    g_out_lock = Mutex.create ();
    g_wake_r = wake_r;
    g_wake_w = wake_w;
  }

let count g = Array.length g.g_shards
let inline g = count g = 1
let engine g i = g.g_shards.(i).s_engine
let engines g = Array.map (fun s -> s.s_engine) g.g_shards
let engine_config g = g.g_config
let shard_of g tenant = tenant_shard ~shards:(count g) tenant
let wake_fd g = g.g_wake_r

let recovered g =
  Engine.sum_recoveries
    (Array.to_list g.g_shards
    |> List.filter_map (fun s -> Engine.recovered s.s_engine))

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)

let wake g =
  match g.g_wake_w with
  | None -> ()
  | Some fd -> (
    let b = Bytes.make 1 'w' in
    try ignore (Unix.write fd b 0 1 : int)
    with
    | Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EPIPE), _, _) ->
      (* a full pipe already guarantees a pending wake-up *)
      ())

let push_reply g s token reply =
  Mutex.lock g.g_out_lock;
  Queue.add (token, s.s_id, reply) g.g_out;
  Mutex.unlock g.g_out_lock;
  wake g

let admit g s (m : msg) =
  let deliver = push_reply g s m.m_token in
  match m.m_shed with
  | Some reason -> Engine.shed_request s.s_engine m.m_req deliver ~reason
  | None ->
    ignore (Engine.submit s.s_engine m.m_req deliver : [ `Queued | `Shed ])

(* The shard loop: drain the inbox (admitting everything, so queue-full
   sheds fire while a burst is in flight), execute ONE fused episode,
   then look at the inbox again. Interleaving admission with execution
   at episode granularity is what preserves the single-loop daemon's
   shed-at-the-door behavior. *)
let worker g s =
  let running = ref true in
  while !running do
    Mutex.lock s.s_lock;
    while
      Queue.is_empty s.s_inbox
      && (not s.s_closed)
      && Engine.pending s.s_engine = 0
    do
      Condition.wait s.s_cond s.s_lock
    done;
    let msgs = ref [] in
    while not (Queue.is_empty s.s_inbox) do
      msgs := Queue.pop s.s_inbox :: !msgs
    done;
    let closed = s.s_closed in
    Mutex.unlock s.s_lock;
    List.iter (admit g s) (List.rev !msgs);
    let processed = Engine.step_batch s.s_engine in
    if processed = 0 && closed then begin
      (* closed and idle: exit only if nothing slipped in meanwhile *)
      Mutex.lock s.s_lock;
      if Queue.is_empty s.s_inbox && Engine.pending s.s_engine = 0 then
        running := false;
      Mutex.unlock s.s_lock
    end
  done

let start g =
  if not (inline g) then
    Array.iter
      (fun s ->
        if s.s_domain = None then
          s.s_domain <- Some (Domain.spawn (fun () -> worker g s)))
      g.g_shards

(* ------------------------------------------------------------------ *)
(* Router side                                                         *)

let post g ~shard ~token ?shed req =
  let s = g.g_shards.(shard) in
  let m = { m_token = token; m_shed = shed; m_req = req } in
  if inline g then admit g s m
  else begin
    Mutex.lock s.s_lock;
    Queue.add m s.s_inbox;
    Condition.signal s.s_cond;
    Mutex.unlock s.s_lock
  end

(* Inline mode only: one engine step per router iteration, the original
   single-threaded daemon's cadence. *)
let step_inline g =
  if inline g then ignore (Engine.step g.g_shards.(0).s_engine : bool)

let pending_inline g =
  if inline g then Engine.pending g.g_shards.(0).s_engine else 0

(* Collect every finished reply, draining the wake pipe alongside. *)
let drain_replies g =
  (match g.g_wake_r with
  | None -> ()
  | Some fd -> (
    let b = Bytes.create 256 in
    try
      while Unix.read fd b 0 256 > 0 do
        ()
      done
    with
    | Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      ()));
  Mutex.lock g.g_out_lock;
  let out = ref [] in
  while not (Queue.is_empty g.g_out) do
    out := Queue.pop g.g_out :: !out
  done;
  Mutex.unlock g.g_out_lock;
  List.rev !out

(* Close inboxes, join workers (the happens-before edge handing each
   engine back to this domain), then shut every engine down. Returns
   the summed residual device-block count (0 = leak-free). *)
let stop g =
  Array.iter
    (fun s ->
      Mutex.lock s.s_lock;
      s.s_closed <- true;
      Condition.broadcast s.s_cond;
      Mutex.unlock s.s_lock)
    g.g_shards;
  Array.iter
    (fun s ->
      match s.s_domain with
      | Some d ->
        Domain.join d;
        s.s_domain <- None
      | None -> ())
    g.g_shards;
  let residual =
    Array.fold_left (fun acc s -> acc + Engine.shutdown s.s_engine) 0 g.g_shards
  in
  (match g.g_wake_r with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  (match g.g_wake_w with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  residual
