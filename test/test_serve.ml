(* The serve daemon's robustness envelope, driven in-process through
   the transport-independent {!Engine} (plus one forked-daemon test over
   the real unix socket):

   - wire protocol: frames and messages round-trip, the incremental
     decoder reassembles split frames, oversized frames are rejected;
   - the compiled-module LRU: eviction order, hit/miss counters, and
     plan-keyed sharing ("opt" and "unified" share a compiled module);
   - admission control: queue overflow and warm-residency pressure both
     shed with typed [Overloaded] replies and exit code 9, and a
     device-memory shed evicts warmth so the daemon degrades instead of
     wedging;
   - deadlines: fuel exhaustion becomes [Deadline_exceeded]/exit 10;
   - retry with backoff: injected transient faults re-run and still
     produce the fault-free output;
   - the per-tenant circuit breaker: trips after consecutive failures,
     rejects strict requests with [Circuit_open]/exit 11, degrades the
     rest to CPU-only runs, and heals through probation and a half-open
     probe;
   - cross-tenant eviction (the warm-data residency contract): tenant
     A's scribbled device data survives tenant B's memory pressure
     byte-exactly, with the observable [globals_gen] bump;
   - the soak: tenants x requests x seeded faults, every [Ok] reply
     bit-identical to a fresh single-shot [Pipeline.run], zero leaks,
     clean shutdown, and the final stats line showing the envelope
     actually fired;
   - crash recovery: the write-ahead journal round-trips, tolerates
     torn tails and CRC flips, bounds itself by snapshot rotation, and
     [Engine.recover] rebuilds caches, warm residency and breaker
     state so post-recovery replies are cache hits bit-identical to
     fresh runs (the forked kill -9 version is [cgcm chaos]);
   - lifecycle hardening: hostile frame headers rejected before
     buffering, graceful drain finishing in-flight work with typed
     sheds for latecomers, stale sockets reclaimed and live ones
     refused, client timeouts against wedged daemons. *)

module Json = Cgcm_serve.Json
module Wire = Cgcm_serve.Wire
module Journal = Cgcm_serve.Journal
module Errors = Cgcm_support.Errors
module Cache = Cgcm_serve.Cache
module Residency = Cgcm_serve.Residency
module Engine = Cgcm_serve.Engine
module Shard = Cgcm_serve.Shard
module Server = Cgcm_serve.Server
module Client = Cgcm_serve.Client
module Loadgen = Cgcm_serve.Loadgen
module Pipeline = Cgcm_core.Pipeline
module Diagnostics = Cgcm_core.Diagnostics
module Interp = Cgcm_interp.Interp
module Runtime = Cgcm_runtime.Runtime
module Device = Cgcm_gpusim.Device
module Memspace = Cgcm_memory.Memspace

let check = Alcotest.check

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let request ?(id = 1) ?(tenant = "t0") ?(mode = "opt") ?deadline
    ?(strict = false) ?faults source : Wire.request =
  {
    Wire.rq_id = id;
    rq_tenant = tenant;
    rq_source = source;
    rq_mode = mode;
    rq_deadline = deadline;
    rq_strict = strict;
    rq_faults = faults;
  }

let status_name s = Wire.status_name s

let check_status name expect (r : Wire.reply) =
  check Alcotest.string name (status_name expect) (status_name r.Wire.rp_status)

(* Fresh single-shot reference for bit-identity checks: the same
   (output, exit code) a standalone [cgcm run] of this mode produces. *)
let reference_tbl : (string, string * int) Hashtbl.t = Hashtbl.create 16

let reference ~mode source =
  let key = mode ^ "\x00" ^ source in
  match Hashtbl.find_opt reference_tbl key with
  | Some v -> v
  | None ->
    let exec =
      match mode with
      | "seq" -> Pipeline.Sequential
      | "unopt" -> Pipeline.Cgcm_unoptimized
      | "opt" -> Pipeline.Cgcm_optimized
      | "ie" -> Pipeline.Inspector_executor_exec
      | "unified" -> Pipeline.Unified_oracle Pipeline.Optimized
      | m -> Alcotest.failf "unknown mode %s" m
    in
    let _, r = Pipeline.run exec source in
    let v = (r.Interp.output, Int64.to_int r.Interp.exit_code) in
    Hashtbl.replace reference_tbl key v;
    v

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)

let test_wire_round_trip () =
  let req =
    request ~id:42 ~tenant:"alice" ~mode:"unopt" ~deadline:12345 ~strict:true
      ~faults:"7:htod%0.5" "int main() { return 0; }"
  in
  let req' = Wire.request_of_json (Json.parse (Json.print (Wire.request_to_json req))) in
  check Alcotest.bool "request round-trips" true (req = req');
  let rp =
    {
      Wire.rp_id = 42;
      rp_status = Wire.Deadline_exceeded;
      rp_output = "1 2 3\n";
      rp_exit_code = 10;
      rp_error = "cgcm serve: deadline exceeded";
      rp_cache = "hit";
      rp_degraded = true;
      rp_retries = 2;
      rp_wall_ms = 1.5;
    }
  in
  let rp' = Wire.reply_of_json (Json.parse (Json.print (Wire.reply_to_json rp))) in
  check Alcotest.bool "reply round-trips" true (rp = rp');
  (* a minimal hand-written client may omit optional fields *)
  let sparse = Wire.request_of_json (Json.parse {|{"source":"int main(){}"}|}) in
  check Alcotest.bool "strict defaults to false" false sparse.Wire.rq_strict;
  check Alcotest.string "tenant defaults" "anonymous" sparse.Wire.rq_tenant

let test_wire_decoder_reassembles () =
  let v1 = Json.Obj [ ("op", Json.Str "ping"); ("n", Json.Int 1) ] in
  let v2 = Json.Obj [ ("op", Json.Str "ping"); ("n", Json.Int 2) ] in
  let stream =
    Bytes.concat Bytes.empty [ Wire.encode_frame v1; Wire.encode_frame v2 ]
  in
  (* feed in 3-byte slivers: headers and payloads arrive split *)
  let dec = Wire.decoder () in
  let got = ref [] in
  let i = ref 0 in
  while !i < Bytes.length stream do
    let n = min 3 (Bytes.length stream - !i) in
    Wire.decoder_feed dec (Bytes.sub stream !i n) n;
    got := !got @ Wire.decoder_drain dec;
    i := !i + n
  done;
  check Alcotest.int "two frames" 2 (List.length !got);
  check Alcotest.bool "in order, intact" true
    (!got = [ v1; v2 ])

let test_wire_frame_cap () =
  (* a header announcing an absurd frame is a protocol error, not a
     buffering obligation *)
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Wire.max_frame_bytes + 1));
  let dec = Wire.decoder () in
  let rejected =
    try
      Wire.decoder_feed dec header 4;
      ignore (Wire.decoder_drain dec : Json.t list);
      false
    with Wire.Protocol_error _ -> true
  in
  check Alcotest.bool "oversized frame rejected" true rejected

(* ------------------------------------------------------------------ *)
(* The compiled-module LRU                                             *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  check Alcotest.bool "miss on empty" true (Cache.find c "a" = None);
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check Alcotest.bool "a hits" true (Cache.find c "a" = Some 1);
  (* b is now the LRU entry; inserting c evicts it *)
  Cache.add c "c" 3;
  check Alcotest.bool "b evicted" true (Cache.find c "b" = None);
  check Alcotest.bool "a survives" true (Cache.find c "a" = Some 1);
  check Alcotest.bool "c present" true (Cache.find c "c" = Some 3);
  let v, tag = Cache.find_or_add c "d" (fun () -> 4) in
  check Alcotest.bool "find_or_add misses" true (v = 4 && tag = `Miss);
  let v, tag = Cache.find_or_add c "d" (fun () -> 99) in
  check Alcotest.bool "find_or_add hits" true (v = 4 && tag = `Hit);
  let s = Cache.stats c in
  check Alcotest.int "entries bounded" 2 s.Cache.entries;
  check Alcotest.int "evictions counted" 2 s.Cache.evictions;
  check Alcotest.bool "hits and misses counted" true
    (s.Cache.hits > 0 && s.Cache.misses > 0)

let test_cache_shared_across_tenants_and_plans () =
  let eng = Engine.create () in
  let src = Loadgen.source ~variant:0 in
  let r1 = Engine.process eng (request ~id:1 ~tenant:"a" ~mode:"opt" src) in
  check Alcotest.string "first compile misses" "miss" r1.Wire.rp_cache;
  let r2 = Engine.process eng (request ~id:2 ~tenant:"b" ~mode:"opt" src) in
  check Alcotest.string "other tenant hits" "hit" r2.Wire.rp_cache;
  (* "unified" shares the optimized compile plan, so it hits too *)
  let r3 = Engine.process eng (request ~id:3 ~tenant:"c" ~mode:"unified" src) in
  check Alcotest.string "unified shares opt's module" "hit" r3.Wire.rp_cache;
  let s = Engine.cache_stats eng in
  check Alcotest.int "one compiled module" 1 s.Cache.entries;
  check Alcotest.bool "hit rate positive" true (Engine.cache_hit_rate eng > 0.0);
  check Alcotest.int "clean shutdown" 0 (Engine.shutdown eng)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let test_admission_queue_shed () =
  let config = { Engine.default_config with max_queue = 2 } in
  let eng = Engine.create ~config () in
  let replies = ref [] in
  let deliver r = replies := r :: !replies in
  let src = Loadgen.source ~variant:0 in
  let submit id = Engine.submit eng (request ~id src) deliver in
  check Alcotest.bool "first queued" true (submit 1 = `Queued);
  check Alcotest.bool "second queued" true (submit 2 = `Queued);
  check Alcotest.bool "third shed" true (submit 3 = `Shed);
  (* the shed reply is typed and immediate, ahead of any execution *)
  (match !replies with
  | [ r ] ->
    check_status "shed status" Wire.Overloaded r;
    check Alcotest.int "shed exit code" Diagnostics.exit_overloaded
      r.Wire.rp_exit_code;
    check Alcotest.bool "shed names the queue" true
      (String.length r.Wire.rp_error > 0
      && contains ~affix:"overloaded (queue)" r.Wire.rp_error)
  | _ -> Alcotest.fail "expected exactly the shed reply before draining");
  Engine.drain eng;
  check Alcotest.int "queued requests executed" 3 (List.length !replies);
  let ok = List.filter (fun r -> r.Wire.rp_status = Wire.Ok) !replies in
  check Alcotest.int "both admitted requests succeeded" 2 (List.length ok);
  check Alcotest.int "stats shed" 1 (Engine.stats eng).Engine.shed;
  check Alcotest.int "clean shutdown" 0 (Engine.shutdown eng)

let test_admission_device_mem_shed_and_relief () =
  (* Warm residency past the high-water mark, then watch admission shed
     and the relief eviction clear the pressure. *)
  let config =
    { Engine.default_config with device_mem = 8192; high_water = 0.3 }
  in
  let eng = Engine.create ~config () in
  (* process (not submit) so admission is not in the way while warming:
     each opt run leaves its tenant's globals device-resident *)
  List.iter
    (fun (id, tenant, variant) ->
      let r =
        Engine.process eng
          (request ~id ~tenant (Loadgen.source ~variant))
      in
      check_status "warming run ok" Wire.Ok r)
    [ (1, "a", 0); (2, "b", 1); (3, "a", 2) ];
  let res = Engine.residency eng in
  check Alcotest.bool "warm past high water" true
    (float_of_int (Residency.warm_bytes res)
    >= 0.3 *. float_of_int 8192);
  let replies = ref [] in
  let deliver r = replies := r :: !replies in
  let rec admit tries id =
    if tries > 10 then Alcotest.fail "device-mem shed never relieved"
    else
      match
        Engine.submit eng (request ~id ~tenant:"c" (Loadgen.source ~variant:3))
          deliver
      with
      | `Queued -> ()
      | `Shed -> admit (tries + 1) (id + 1)
  in
  admit 0 10;
  (* at least one shed happened, each shed evicted one warm LRU unit,
     and the reply is the typed device-mem rejection *)
  check Alcotest.bool "shed at least once" true
    ((Engine.stats eng).Engine.shed >= 1);
  (match !replies with
  | r :: _ ->
    check_status "device-mem shed status" Wire.Overloaded r;
    check Alcotest.bool "shed names device-mem" true
      (contains ~affix:"overloaded (device-mem)" r.Wire.rp_error)
  | [] -> Alcotest.fail "expected at least one shed reply");
  check Alcotest.bool "relief evicted warmth" true
    (Residency.cross_evictions res >= 1);
  Engine.drain eng;
  check Alcotest.int "clean shutdown" 0 (Engine.shutdown eng)

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)

let test_deadline () =
  let eng = Engine.create () in
  let r =
    Engine.process eng
      (request ~id:1 ~mode:"seq" ~deadline:20_000 Loadgen.spin_source)
  in
  check_status "deadline status" Wire.Deadline_exceeded r;
  check Alcotest.int "deadline exit code" Diagnostics.exit_deadline
    r.Wire.rp_exit_code;
  check Alcotest.bool "deadline names the budget" true
    (contains ~affix:"budget of 20000 fuel" r.Wire.rp_error);
  check Alcotest.int "counted" 1 (Engine.stats eng).Engine.deadline_exceeded;
  (* an ordinary request still completes under the default budget *)
  let r2 = Engine.process eng (request ~id:2 (Loadgen.source ~variant:0)) in
  check_status "normal request ok" Wire.Ok r2;
  check Alcotest.int "clean shutdown" 0 (Engine.shutdown eng)

(* ------------------------------------------------------------------ *)
(* Retry with backoff                                                  *)

let test_retry_preserves_output () =
  (* Injected transient faults are retried with a fresh fault substream;
     some seed in a small window yields "first attempt failed, a retry
     succeeded", and the output must match the fault-free run. *)
  let src = Loadgen.source ~variant:1 in
  let want_output, want_exit = reference ~mode:"opt" src in
  let rec search seed =
    if seed > 60 then Alcotest.fail "no seed exercised a successful retry"
    else
      let eng = Engine.create () in
      let r =
        Engine.process eng
          (request ~id:seed ~faults:(Printf.sprintf "%d:htod%%0.5" seed) src)
      in
      let retried = r.Wire.rp_status = Wire.Ok && r.Wire.rp_retries >= 1 in
      if retried then begin
        check Alcotest.string "retried output bit-identical" want_output
          r.Wire.rp_output;
        check Alcotest.int "retried exit code" want_exit r.Wire.rp_exit_code;
        check Alcotest.bool "retries counted" true
          ((Engine.stats eng).Engine.retries >= 1);
        check Alcotest.int "clean shutdown" 0 (Engine.shutdown eng)
      end
      else begin
        ignore (Engine.shutdown eng : int);
        search (seed + 1)
      end
  in
  search 1

(* ------------------------------------------------------------------ *)
(* The per-tenant circuit breaker                                      *)

let test_circuit_breaker_lifecycle () =
  let config =
    {
      Engine.default_config with
      max_retries = 0;
      circuit_threshold = 3;
      circuit_probation = 2;
    }
  in
  let eng = Engine.create ~config () in
  let src = Loadgen.source ~variant:0 in
  let poison id =
    Engine.process eng
      (request ~id ~tenant:"alice" ~faults:"7:htod%1.0,launch%1.0" src)
  in
  (* three consecutive device-path failures trip the breaker *)
  for id = 1 to 3 do
    check_status "poisoned run fails" Wire.Error (poison id)
  done;
  check Alcotest.bool "breaker open" true
    (match Engine.breaker_of eng "alice" with
    | Engine.Open _ -> true
    | _ -> false);
  check Alcotest.int "one trip" 1 (Engine.trips_of eng "alice");
  (* strict requests are rejected outright with the typed code *)
  let r = Engine.process eng (request ~id:4 ~tenant:"alice" ~strict:true src) in
  check_status "strict rejected" Wire.Circuit_open r;
  check Alcotest.int "circuit-open exit code" Diagnostics.exit_circuit_open
    r.Wire.rp_exit_code;
  check Alcotest.bool "rejection names the tenant" true
    (contains ~affix:"circuit open for tenant alice"
       r.Wire.rp_error);
  (* non-strict requests degrade to CPU-only and still answer correctly *)
  let seq_output, seq_exit = reference ~mode:"seq" src in
  let degraded id =
    let r = Engine.process eng (request ~id ~tenant:"alice" src) in
    check_status "degraded run ok" Wire.Ok r;
    check Alcotest.bool "marked degraded" true r.Wire.rp_degraded;
    check Alcotest.string "degraded output is the CPU answer" seq_output
      r.Wire.rp_output;
    check Alcotest.int "degraded exit code" seq_exit r.Wire.rp_exit_code
  in
  degraded 5;
  degraded 6;
  (* probation spent: the breaker half-opens and a healthy probe closes it *)
  check Alcotest.bool "half-open after probation" true
    (Engine.breaker_of eng "alice" = Engine.Half_open);
  let r = Engine.process eng (request ~id:7 ~tenant:"alice" src) in
  check_status "probe succeeds" Wire.Ok r;
  check Alcotest.bool "probe not degraded" false r.Wire.rp_degraded;
  check Alcotest.bool "breaker closed" true
    (Engine.breaker_of eng "alice" = Engine.Closed);
  (* other tenants were never affected *)
  check Alcotest.bool "bob unaffected" true
    (Engine.breaker_of eng "bob" = Engine.Closed);
  check Alcotest.int "clean shutdown" 0 (Engine.shutdown eng)

(* ------------------------------------------------------------------ *)
(* Cross-tenant eviction: the satellite-3 residency contract           *)

let test_cross_tenant_eviction_write_back () =
  let res = Residency.create ~device_mem:2048 () in
  let dev = Residency.device res in
  check Alcotest.bool "alice warms" true
    (Residency.warm res ~tenant:"alice" ~key:"k" ~globals:[ ("g", 1024) ] ());
  check Alcotest.int "alice resident" 1024 (Residency.warm_bytes res);
  let alice = Option.get (Residency.find res ~tenant:"alice" ~key:"k") in
  let _, base, size =
    match Residency.entry_units alice with
    | [ u ] -> u
    | us -> Alcotest.failf "expected one warm unit, got %d" (List.length us)
  in
  let rt = Residency.entry_runtime alice in
  let devptr = Option.get (Runtime.lookup_unit rt base).Runtime.devptr in
  (* scribble the device copy directly — a stand-in for kernel output
     that exists only on the device — and mark the epoch advanced, as a
     kernel launch would *)
  let scribble = Bytes.init size (fun i -> Char.chr ((i * 7 + 0xab) land 0xff)) in
  Memspace.write_bytes dev.Device.mem devptr scribble;
  Runtime.bump_epoch rt;
  check Alcotest.bool "scribble differs from host copy" true
    (Residency.host_bytes alice "g" <> scribble);
  let gen0 = dev.Device.globals_gen in
  (* bob's warmth cannot fit beside alice's: 1024 + 1536 > 2048, so
     warming bob must evict alice's unit across tenants *)
  check Alcotest.bool "bob warms under pressure" true
    (Residency.warm res ~tenant:"bob" ~key:"k" ~globals:[ ("h", 1536) ] ());
  check Alcotest.bool "a cross-tenant eviction happened" true
    (Residency.cross_evictions res >= 1);
  check Alcotest.int "alice no longer resident" 0
    (Residency.entry_resident_bytes alice);
  check Alcotest.bool "alice's device data written back byte-exactly" true
    (Bytes.equal (Residency.host_bytes alice "g") scribble);
  check Alcotest.bool "globals_gen invalidation observed" true
    (dev.Device.globals_gen > gen0);
  Residency.check_invariants res;
  (* re-warming alice refills the device from the written-back bytes
     (and in turn pressures bob out) *)
  check Alcotest.bool "alice re-warms" true
    (Residency.warm res ~tenant:"alice" ~key:"k" ~globals:[ ("g", 1024) ] ());
  let alice = Option.get (Residency.find res ~tenant:"alice" ~key:"k") in
  let _, base, size = List.hd (Residency.entry_units alice) in
  let rt = Residency.entry_runtime alice in
  let devptr = Option.get (Runtime.lookup_unit rt base).Runtime.devptr in
  check Alcotest.bool "device refilled from written-back bytes" true
    (Bytes.equal (Memspace.read_bytes dev.Device.mem devptr size) scribble);
  Residency.check_invariants res;
  check Alcotest.int "clean teardown" 0 (Residency.shutdown res)

(* ------------------------------------------------------------------ *)
(* The soak: the issue's acceptance scenario, engine-level             *)

let test_soak () =
  let config =
    {
      Engine.default_config with
      max_queue = 6;
      device_mem = 64 * 1024;
      max_retries = 3;
      backoff_ms = 0.0;
      circuit_threshold = 3;
      circuit_probation = 2;
      faults = Some (Cgcm_gpusim.Faults.parse "13:htod%0.05,launch%0.05,alloc%0.03");
    }
  in
  let eng = Engine.create ~config () in
  let total = 160 in
  let modes = [| "opt"; "opt"; "unopt"; "seq"; "unified"; "ie" |] in
  let plan k : Wire.request =
    if k mod 9 = 5 then
      (* the poison tenant's driver always faults; non-strict, so once
         its breaker opens it degrades and heals. (On the k mod 9 = 5
         schedule poison requests never coincide with the saturated
         queue's shed phase, so they actually execute and feed the
         breaker.) *)
      request ~id:k ~tenant:"poison"
        ~faults:"7:htod%1.0,launch%1.0"
        (Loadgen.source ~variant:(k mod 4))
    else if k mod 17 = 3 then
      request ~id:k
        ~tenant:(Printf.sprintf "t%d" (k mod 4))
        ~mode:"seq" ~deadline:20_000 Loadgen.spin_source
    else
      request ~id:k
        ~tenant:(Printf.sprintf "t%d" (k mod 4))
        ~mode:modes.(k mod 6)
        (Loadgen.source ~variant:(k * 7 mod 4))
  in
  let requests : (int, Wire.request) Hashtbl.t = Hashtbl.create total in
  let replies : (int, Wire.reply) Hashtbl.t = Hashtbl.create total in
  for k = 0 to total - 1 do
    let req = plan k in
    Hashtbl.replace requests k req;
    ignore
      (Engine.submit eng req (fun r -> Hashtbl.replace replies r.Wire.rp_id r)
        : [ `Queued | `Shed ]);
    (* execute two of every three submissions as we go: the queue grows
       slowly, overflows, and admission control genuinely sheds *)
    if k mod 3 <> 0 then ignore (Engine.step eng : bool)
  done;
  Engine.drain eng;
  check Alcotest.int "every request answered" total (Hashtbl.length replies);
  (* every Ok reply is bit-identical to a fresh single-shot run of the
     mode it actually executed (degraded replies ran CPU-only) *)
  let compared = ref 0 in
  Hashtbl.iter
    (fun k (r : Wire.reply) ->
      if r.Wire.rp_status = Wire.Ok then begin
        let req = Hashtbl.find requests k in
        let mode = if r.Wire.rp_degraded then "seq" else req.Wire.rq_mode in
        let want_output, want_exit = reference ~mode req.Wire.rq_source in
        if r.Wire.rp_output <> want_output || r.Wire.rp_exit_code <> want_exit
        then
          Alcotest.failf
            "request %d (%s, degraded=%b) diverged from single-shot: %S vs %S"
            k mode r.Wire.rp_degraded r.Wire.rp_output want_output;
        incr compared
      end)
    replies;
  let s = Engine.stats eng in
  check Alcotest.bool "a useful fraction succeeded" true (!compared >= total / 3);
  check Alcotest.bool "admission shed fired" true (s.Engine.shed >= 1);
  check Alcotest.bool "a deadline fired" true (s.Engine.deadline_exceeded >= 1);
  check Alcotest.bool "a breaker tripped" true (s.Engine.circuit_trips >= 1);
  check Alcotest.bool "degraded runs served" true (s.Engine.degraded_runs >= 1);
  check Alcotest.bool "transient faults were retried" true (s.Engine.retries >= 1);
  check Alcotest.bool "cache reheated across requests" true
    (Engine.cache_hit_rate eng > 0.0);
  check Alcotest.int "accounting adds up" s.Engine.received
    (s.Engine.ok + s.Engine.shed + s.Engine.deadline_exceeded
   + s.Engine.circuit_rejected + s.Engine.failed);
  (* crash-only teardown: zero residual device blocks, and the final
     stats line reports the envelope the soak exercised *)
  let residual = Engine.shutdown eng in
  check Alcotest.int "zero leaks at shutdown" 0 residual;
  let line = Engine.final_line eng ~residual in
  List.iter
    (fun affix ->
      check Alcotest.bool (Printf.sprintf "final line reports %s" affix) true
        (contains ~affix line))
    [
      Printf.sprintf "shed=%d" s.Engine.shed;
      Printf.sprintf "deadline=%d" s.Engine.deadline_exceeded;
      Printf.sprintf "trips=%d" s.Engine.circuit_trips;
      "device_leaks=0";
    ]

(* ------------------------------------------------------------------ *)
(* The real transport: a live daemon on a unix socket. The daemon runs
   on a thread rather than a forked process: earlier suites spawn
   domains for the multicore kernel engine, after which OCaml 5 forbids
   [Unix.fork]. (The forked-process path is exercised end-to-end by
   [cgcm bench -- serve].) *)

let test_socket_round_trip () =
  let path = Printf.sprintf "/tmp/cgcm-test-serve-%d.sock" (Unix.getpid ()) in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let srv = Server.create ~log:(fun _ -> ()) ~socket_path:path () in
  let result = ref None in
  let daemon = Thread.create (fun () -> result := Some (Server.run srv)) () in
  let finally () =
    Server.stop srv;
    Thread.join daemon;
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  check Alcotest.bool "daemon came up" true
    (Client.wait_ready ~socket_path:path ());
  let src = Loadgen.source ~variant:0 in
  let want_output, want_exit = reference ~mode:"opt" src in
  let r1 = Client.request ~socket_path:path (request ~id:1 ~tenant:"e2e" src) in
  check_status "first request ok" Wire.Ok r1;
  check Alcotest.string "output over the wire" want_output r1.Wire.rp_output;
  check Alcotest.int "exit code over the wire" want_exit r1.Wire.rp_exit_code;
  check Alcotest.string "first compile misses" "miss" r1.Wire.rp_cache;
  let r2 = Client.request ~socket_path:path (request ~id:2 ~tenant:"e2e" src) in
  check Alcotest.string "second request hits the cache" "hit" r2.Wire.rp_cache;
  let st = Client.stats ~socket_path:path in
  check Alcotest.int "daemon counted both" 2 (Json.int_field "received" st);
  check Alcotest.int "daemon served both" 2 (Json.int_field "ok" st);
  check Alcotest.bool "daemon acknowledged shutdown" true
    (Client.shutdown ~socket_path:path);
  Thread.join daemon;
  match !result with
  | Some (line, residual) ->
    check Alcotest.int "leak-free teardown" 0 residual;
    check Alcotest.bool "final line reports no leaks" true
      (contains ~affix:"device_leaks=0" line)
  | None -> Alcotest.fail "daemon thread returned nothing"

(* ------------------------------------------------------------------ *)
(* Hostile frame headers: the decoder must reject before buffering     *)

let feed_bytes dec s = Wire.decoder_feed dec (Bytes.of_string s) (String.length s)

let expect_header_rejected name affix s =
  let dec = Wire.decoder () in
  match feed_bytes dec s with
  | () -> Alcotest.failf "%s: hostile header accepted" name
  | exception Wire.Protocol_error msg ->
    check Alcotest.bool (name ^ " names the cause") true (contains ~affix msg)

let test_wire_hostile_headers () =
  (* sign bit set: reported as the negative length the peer sent *)
  expect_header_rejected "negative length" "bad frame length -"
    "\xff\x00\x00\x01";
  expect_header_rejected "oversized length" "exceeds" "\x7f\xff\xff\xff";
  expect_header_rejected "zero length" "empty frame" "\x00\x00\x00\x00";
  (* a truncated frame is not an error — it pends, awaiting more bytes
     (the server's read deadline bounds how long) *)
  let full =
    Bytes.to_string (Wire.encode_frame (Json.Obj [ ("op", Json.Str "ping") ]))
  in
  let dec = Wire.decoder () in
  feed_bytes dec (String.sub full 0 (String.length full - 3));
  check Alcotest.bool "truncated frame pends" true (Wire.decoder_buffered dec);
  check Alcotest.int "nothing drained from a partial frame" 0
    (List.length (Wire.decoder_drain dec));
  (* a bit-flipped payload byte is a typed rejection on frame completion *)
  let flipped = Bytes.of_string full in
  Bytes.set flipped 4 (Char.chr (Char.code (Bytes.get flipped 4) lxor 0x04));
  let dec = Wire.decoder () in
  (match feed_bytes dec (Bytes.to_string flipped) with
  | () -> Alcotest.fail "bit-flipped payload accepted"
  | exception Wire.Protocol_error msg ->
    check Alcotest.bool "flip rejection is typed" true
      (contains ~affix:"bad frame" msg));
  (* after rejecting garbage, a fresh decoder still decodes clean frames *)
  let dec = Wire.decoder () in
  feed_bytes dec full;
  check Alcotest.int "clean frame after hostility" 1
    (List.length (Wire.decoder_drain dec))

(* ------------------------------------------------------------------ *)
(* The write-ahead journal                                             *)

let tmp_path name = Printf.sprintf "/tmp/cgcm-test-%s-%d" name (Unix.getpid ())

let test_journal_round_trip () =
  let path = tmp_path "journal" in
  let j = Journal.create ~path () in
  Journal.append j
    (Journal.Compile { jc_mode = "auto/optimized"; jc_source = "src-a" });
  Journal.append j
    (Journal.Warm
       ( { jw_tenant = "t0"; jw_key = "k0"; jw_mode = "opt"; jw_source = "src-a" },
         7 ));
  Journal.append j
    (Journal.Breaker
       {
         jt_name = "alice";
         jt_breaker = Journal.B_open 2;
         jt_consec = 3;
         jt_trips = 1;
       });
  check Alcotest.bool "every append fsynced at the default cadence" true
    ((Journal.stats j).Journal.j_fsyncs >= 3);
  Journal.close j;
  (match Journal.replay ~path with
  | None -> Alcotest.fail "journal vanished"
  | Some rp ->
    check Alcotest.bool "not torn" false rp.Journal.rp_torn;
    check Alcotest.int "three records" 3 rp.Journal.rp_records;
    let st = rp.Journal.rp_state in
    check Alcotest.int "one compile" 1 (List.length st.Journal.js_compiles);
    check Alcotest.int "one warm entry" 1 (List.length st.Journal.js_warm);
    check Alcotest.int "globals_gen carried" 7 st.Journal.js_globals_gen;
    (match st.Journal.js_tenants with
    | [ t ] ->
      check Alcotest.bool "breaker state survives" true
        (t.Journal.jt_breaker = Journal.B_open 2);
      check Alcotest.int "trips survive" 1 t.Journal.jt_trips
    | l -> Alcotest.failf "expected one tenant, got %d" (List.length l)));
  Unix.unlink path;
  check Alcotest.bool "a missing journal is a fresh start" true
    (Journal.replay ~path = None)

let test_journal_torn_tail () =
  let path = tmp_path "journal-torn" in
  let j = Journal.create ~path () in
  Journal.append j (Journal.Compile { jc_mode = "m"; jc_source = "one" });
  Journal.append j (Journal.Compile { jc_mode = "m"; jc_source = "two" });
  Journal.close j;
  (* a kill -9 mid-append: a record header promising bytes that never
     made it to disk *)
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let garbage = Bytes.of_string "\x00\x00\x00\x64\xde\xad\xbe\xef{\"t\":" in
  ignore (Unix.write fd garbage 0 (Bytes.length garbage) : int);
  Unix.close fd;
  (match Journal.replay ~path with
  | None -> Alcotest.fail "journal vanished"
  | Some rp ->
    check Alcotest.bool "torn tail detected" true rp.Journal.rp_torn;
    check Alcotest.int "intact records salvaged" 2 rp.Journal.rp_records;
    check Alcotest.int "state reflects the intact prefix" 2
      (List.length rp.Journal.rp_state.Journal.js_compiles));
  (* a flipped byte inside the second record: replay keeps the first
     and stops at the CRC mismatch *)
  let j = Journal.create ~path () in
  Journal.append j (Journal.Compile { jc_mode = "m"; jc_source = "one" });
  Journal.append j (Journal.Compile { jc_mode = "m"; jc_source = "two" });
  Journal.close j;
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string raw in
  (* layout: magic(8) rec1[len(4) crc(4) payload(len1)] rec2[...] *)
  let len1 =
    (Char.code raw.[8] lsl 24) lor (Char.code raw.[9] lsl 16)
    lor (Char.code raw.[10] lsl 8) lor Char.code raw.[11]
  in
  let rec2_payload = 8 + 8 + len1 + 8 + 2 in
  Bytes.set b rec2_payload
    (Char.chr (Char.code (Bytes.get b rec2_payload) lxor 0x01));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (match Journal.replay ~path with
  | None -> Alcotest.fail "journal vanished"
  | Some rp ->
    check Alcotest.bool "CRC flip detected" true rp.Journal.rp_torn;
    check Alcotest.int "only the intact record replays" 1
      rp.Journal.rp_records);
  (* garbage where the magic should be: empty state, flagged torn *)
  let oc = open_out_bin path in
  output_string oc "NOTJOURN";
  close_out oc;
  (match Journal.replay ~path with
  | None -> Alcotest.fail "journal vanished"
  | Some rp ->
    check Alcotest.bool "bad magic flagged" true rp.Journal.rp_torn;
    check Alcotest.int "bad magic yields nothing" 0 rp.Journal.rp_records);
  Unix.unlink path

let test_journal_snapshot_rotation () =
  let path = tmp_path "journal-rotate" in
  let j = Journal.create ~snapshot_every:3 ~path () in
  for i = 1 to 7 do
    Journal.append j
      (Journal.Compile { jc_mode = "m"; jc_source = Printf.sprintf "s%d" i })
  done;
  check Alcotest.bool "rotation fired" true
    ((Journal.stats j).Journal.j_snapshots >= 2);
  Journal.close j;
  (match Journal.replay ~path with
  | None -> Alcotest.fail "journal vanished"
  | Some rp ->
    check Alcotest.bool "rotated log replays clean" false rp.Journal.rp_torn;
    check Alcotest.bool "rotation bounded the log" true
      (rp.Journal.rp_records <= 3);
    check Alcotest.int "nothing lost across rotations" 7
      (List.length rp.Journal.rp_state.Journal.js_compiles));
  Unix.unlink path

(* ------------------------------------------------------------------ *)
(* Crash recovery through the engine: journal, kill, replay, rebuild   *)

let test_engine_recovery () =
  let path = tmp_path "journal-recovery" in
  let config =
    { Engine.default_config with max_retries = 0; circuit_threshold = 3 }
  in
  let j1 = Journal.create ~path () in
  let eng1 = Engine.create ~config ~journal:j1 () in
  let src0 = Loadgen.source ~variant:0 and src1 = Loadgen.source ~variant:1 in
  check_status "first ok" Wire.Ok
    (Engine.process eng1 (request ~id:1 ~tenant:"t0" ~mode:"opt" src0));
  check_status "second ok" Wire.Ok
    (Engine.process eng1 (request ~id:2 ~tenant:"t1" ~mode:"ie" src1));
  (* trip alice's breaker so a non-trivial tenant state is journaled *)
  for id = 3 to 5 do
    check_status "poisoned run fails" Wire.Error
      (Engine.process eng1
         (request ~id ~tenant:"alice" ~faults:"7:htod%1.0,launch%1.0" src0))
  done;
  check Alcotest.bool "breaker tripped pre-crash" true
    (match Engine.breaker_of eng1 "alice" with
    | Engine.Open _ -> true
    | _ -> false);
  (* the crash: no shutdown, no farewell — the fsynced journal is all
     that survives *)
  Journal.close j1;
  match Journal.replay ~path with
  | None -> Alcotest.fail "journal vanished"
  | Some rp ->
    check Alcotest.bool "clean log replays untorn" false rp.Journal.rp_torn;
    let j2 = Journal.create ~initial:rp.Journal.rp_state ~path () in
    let eng2 = Engine.create ~config ~journal:j2 () in
    let r = Engine.recover eng2 rp in
    check Alcotest.bool "both modules recompiled" true (r.Engine.rec_compiled >= 2);
    check Alcotest.bool "warm manifest re-established" true
      (r.Engine.rec_rewarmed >= 1);
    check Alcotest.bool "tenant state restored" true (r.Engine.rec_tenants >= 1);
    check Alcotest.int "no records skipped" 0 r.Engine.rec_skipped;
    check Alcotest.bool "breaker still open after recovery" true
      (match Engine.breaker_of eng2 "alice" with
      | Engine.Open _ -> true
      | _ -> false);
    (* every pre-crash module answers from cache, bit-identical *)
    let want_out0, want_exit0 = reference ~mode:"opt" src0 in
    let r0 = Engine.process eng2 (request ~id:10 ~tenant:"t0" ~mode:"opt" src0) in
    check_status "recovered opt request ok" Wire.Ok r0;
    check Alcotest.string "recovered module is a cache hit" "hit"
      r0.Wire.rp_cache;
    check Alcotest.string "post-recovery output bit-identical" want_out0
      r0.Wire.rp_output;
    check Alcotest.int "post-recovery exit code" want_exit0 r0.Wire.rp_exit_code;
    let want_out1, want_exit1 = reference ~mode:"ie" src1 in
    let r1 = Engine.process eng2 (request ~id:11 ~tenant:"t1" ~mode:"ie" src1) in
    check_status "recovered ie request ok" Wire.Ok r1;
    check Alcotest.string "second recovered module hits" "hit" r1.Wire.rp_cache;
    check Alcotest.string "second output bit-identical" want_out1
      r1.Wire.rp_output;
    check Alcotest.int "second exit code" want_exit1 r1.Wire.rp_exit_code;
    check Alcotest.int "recovered engine tears down leak-free" 0
      (Engine.shutdown eng2);
    Unix.unlink path

(* ------------------------------------------------------------------ *)
(* Graceful drain: SIGTERM semantics without the signal                *)

let test_shed_draining_reply () =
  let eng = Engine.create () in
  let reply = ref None in
  Engine.shed_draining eng
    (request ~id:9 (Loadgen.source ~variant:0))
    (fun r -> reply := Some r);
  (match !reply with
  | None -> Alcotest.fail "draining shed delivered no reply"
  | Some r ->
    check_status "draining shed is typed" Wire.Overloaded r;
    check Alcotest.int "draining shed exit code" Diagnostics.exit_overloaded
      r.Wire.rp_exit_code;
    check Alcotest.bool "shed reason names the drain" true
      (contains ~affix:"draining" r.Wire.rp_error));
  check Alcotest.int "clean shutdown" 0 (Engine.shutdown eng)

let test_graceful_drain () =
  let path = tmp_path "drain.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let srv = Server.create ~log:(fun _ -> ()) ~socket_path:path () in
  let result = ref None in
  let daemon = Thread.create (fun () -> result := Some (Server.run srv)) () in
  check Alcotest.bool "daemon came up" true
    (Client.wait_ready ~socket_path:path ());
  let src = Loadgen.source ~variant:0 in
  let want_output, want_exit = reference ~mode:"opt" src in
  (* queue two requests on one connection: a deadline-bombed spin and a
     real one, then stop the daemon while they are in flight *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      Wire.write_frame fd
        (Wire.request_to_json
           (request ~id:1 ~deadline:200_000 Loadgen.spin_source));
      Wire.write_frame fd (Wire.request_to_json (request ~id:2 src));
      (* wait until both frames are admitted, then trigger the drain *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        (Engine.stats (Server.engine srv)).Engine.received < 2
        && Unix.gettimeofday () < deadline
      do
        Thread.yield ()
      done;
      check Alcotest.int "both requests admitted" 2
        (Engine.stats (Server.engine srv)).Engine.received;
      Server.stop srv;
      (* in-flight work finishes and its replies reach us *)
      let r1 = Wire.reply_of_json (Wire.read_frame fd) in
      check_status "in-flight spin answered during drain" Wire.Deadline_exceeded
        r1;
      let r2 = Wire.reply_of_json (Wire.read_frame fd) in
      check_status "in-flight request completed" Wire.Ok r2;
      check Alcotest.string "drained reply bit-identical" want_output
        r2.Wire.rp_output;
      check Alcotest.int "drained exit code" want_exit r2.Wire.rp_exit_code);
  Thread.join daemon;
  check Alcotest.bool "daemon reports draining" true (Server.draining srv);
  check Alcotest.bool "socket unlinked by the drain" false
    (Sys.file_exists path);
  (* new connects are refused outright *)
  let fd2 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd2 (Unix.ADDR_UNIX path) with
  | () ->
    Unix.close fd2;
    Alcotest.fail "connected to a drained daemon"
  | exception Unix.Unix_error _ -> Unix.close fd2);
  match !result with
  | Some (line, residual) ->
    check Alcotest.int "drain tears down leak-free" 0 residual;
    check Alcotest.bool "final line reports no leaks" true
      (contains ~affix:"device_leaks=0" line)
  | None -> Alcotest.fail "daemon thread returned nothing"

(* ------------------------------------------------------------------ *)
(* Startup: stale sockets are reclaimed, live ones are refused         *)

let test_stale_socket () =
  let path = tmp_path "stale.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (* a crashed daemon's leftover: a bound socket file nobody answers *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.listen dead 1;
  Unix.close dead;
  check Alcotest.bool "stale file present" true (Sys.file_exists path);
  let logged = Buffer.create 64 in
  let srv =
    Server.create
      ~log:(fun s -> Buffer.add_string logged (s ^ "\n"))
      ~socket_path:path ()
  in
  check Alcotest.bool "reclamation logged" true
    (contains ~affix:"reclaiming stale socket" (Buffer.contents logged));
  let daemon = Thread.create (fun () -> ignore (Server.run srv : string * int)) () in
  check Alcotest.bool "daemon up on the reclaimed socket" true
    (Client.wait_ready ~socket_path:path ());
  (* a second daemon must refuse the live socket with the typed error *)
  (match Server.create ~log:ignore ~socket_path:path () with
  | (_ : Server.t) -> Alcotest.fail "second daemon bound a busy socket"
  | exception Errors.Serve_socket_busy { sb_path } ->
    check Alcotest.string "busy error names the path" path sb_path);
  check Alcotest.bool "first daemon acknowledged shutdown" true
    (Client.shutdown ~socket_path:path);
  Thread.join daemon

(* ------------------------------------------------------------------ *)
(* Client timeouts: a wedged daemon costs the timeout, not forever     *)

let test_client_timeout () =
  let path = tmp_path "wedged.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (* a listener that banks connections and never answers *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let t0 = Unix.gettimeofday () in
      (match
         Client.request ~timeout_ms:300 ~socket_path:path
           (request ~id:1 (Loadgen.source ~variant:0))
       with
      | (_ : Wire.reply) -> Alcotest.fail "a wedged daemon replied"
      | exception Errors.Serve_request_timeout { rt_socket; rt_timeout_ms } ->
        check Alcotest.string "timeout names the socket" path rt_socket;
        check Alcotest.int "timeout names the budget" 300 rt_timeout_ms);
      check Alcotest.bool "timeout honored promptly" true
        (Unix.gettimeofday () -. t0 < 5.0))

(* ------------------------------------------------------------------ *)
(* Sharding: tenant placement, stats aggregation, batching, and the    *)
(* sharded daemon end to end                                           *)

(* The placement hash is a load-bearing contract: it must be a pure
   function of (name, shard count) — stable across processes, restarts
   and tenant-set growth — or journal recovery would land a tenant's
   warm state on the wrong shard. The golden values pin the algorithm
   itself (FNV-1a/32): an accidental hash change shows up here before it
   silently resharded every deployment's journals. *)
let test_tenant_shard_placement () =
  List.iter
    (fun (tenant, shards, want) ->
      check Alcotest.int
        (Printf.sprintf "placement of %s over %d" tenant shards)
        want
        (Shard.tenant_shard ~shards tenant))
    [
      ("t0", 4, 1); ("t1", 4, 2); ("t2", 4, 3); ("t3", 4, 0);
      ("t0", 2, 1); ("t1", 2, 0); ("anything", 1, 0); ("", 1, 0);
    ];
  (* stable under tenant growth: adding tenants never moves old ones *)
  let before = List.init 8 (fun i -> Shard.tenant_shard ~shards:4 (Printf.sprintf "t%d" i)) in
  let after =
    List.init 64 (fun i -> Shard.tenant_shard ~shards:4 (Printf.sprintf "t%d" i))
    |> List.filteri (fun i _ -> i < 8)
  in
  check Alcotest.(list int) "growth does not move tenants" before after;
  (* in range, and not degenerate: 64 tenants over 4 shards must touch
     every shard *)
  let used = Array.make 4 0 in
  for i = 0 to 63 do
    let s = Shard.tenant_shard ~shards:4 (Printf.sprintf "tenant-%d" i) in
    check Alcotest.bool "placement in range" true (s >= 0 && s < 4);
    used.(s) <- used.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      check Alcotest.bool (Printf.sprintf "shard %d not starved" i) true (n > 0))
    used

(* Global stats must be exactly the sums of per-shard stats: each
   request is owned by one shard, so nothing is double-counted. *)
let test_sum_stats () =
  let a : Engine.stats =
    {
      received = 10; ok = 6; shed = 2; deadline_exceeded = 1;
      circuit_rejected = 1; failed = 0; degraded_runs = 3; retries = 4;
      backoff_total_ms = 1.5; circuit_trips = 1; batches = 2;
      batched_runs = 5; warm_coalesced = 3;
    }
  in
  let b : Engine.stats =
    {
      received = 7; ok = 5; shed = 0; deadline_exceeded = 2;
      circuit_rejected = 0; failed = 0; degraded_runs = 0; retries = 1;
      backoff_total_ms = 0.25; circuit_trips = 0; batches = 1;
      batched_runs = 2; warm_coalesced = 1;
    }
  in
  let s = Engine.sum_stats [ a; b ] in
  check Alcotest.int "received" 17 s.Engine.received;
  check Alcotest.int "ok" 11 s.Engine.ok;
  check Alcotest.int "shed" 2 s.Engine.shed;
  check Alcotest.int "deadline" 3 s.Engine.deadline_exceeded;
  check Alcotest.int "circuit" 1 s.Engine.circuit_rejected;
  check Alcotest.int "degraded" 3 s.Engine.degraded_runs;
  check Alcotest.int "retries" 5 s.Engine.retries;
  check (Alcotest.float 1e-9) "backoff" 1.75 s.Engine.backoff_total_ms;
  check Alcotest.int "trips" 1 s.Engine.circuit_trips;
  check Alcotest.int "batches" 3 s.Engine.batches;
  check Alcotest.int "batched_runs" 7 s.Engine.batched_runs;
  check Alcotest.int "warm_coalesced" 4 s.Engine.warm_coalesced;
  (match
     Engine.sum_recoveries
       [
         {
           Engine.rec_records = 3; rec_torn = false; rec_compiled = 2;
           rec_rewarmed = 1; rec_tenants = 0; rec_skipped = 0;
         };
         {
           Engine.rec_records = 5; rec_torn = true; rec_compiled = 1;
           rec_rewarmed = 2; rec_tenants = 1; rec_skipped = 1;
         };
       ]
   with
  | Some r ->
    check Alcotest.int "recovery records sum" 8 r.Engine.rec_records;
    check Alcotest.bool "torn if any shard torn" true r.Engine.rec_torn;
    check Alcotest.int "compiled sum" 3 r.Engine.rec_compiled;
    check Alcotest.int "rewarmed sum" 3 r.Engine.rec_rewarmed;
    check Alcotest.int "tenants sum" 1 r.Engine.rec_tenants;
    check Alcotest.int "skipped sum" 1 r.Engine.rec_skipped
  | None -> Alcotest.fail "sum of two recoveries is Some");
  check Alcotest.bool "empty recovery list is None" true
    (Engine.sum_recoveries [] = None)

(* Cross-request batching: once a module is cached and shardable, a run
   of queued same-tenant requests fuses into one episode — bit-identical
   replies, one deferred warm instead of one per request. *)
let test_step_batch_fuses () =
  let eng = Engine.create () in
  let src = Loadgen.source ~variant:1 in
  let want_output, want_exit = reference ~mode:"opt" src in
  let replies = ref [] in
  let submit id =
    match
      Engine.submit eng
        (request ~id ~tenant:"batch" src)
        (fun rp -> replies := (id, rp) :: !replies)
    with
    | `Queued -> ()
    | `Shed -> Alcotest.fail "request shed under default config"
  in
  List.iter submit [ 1; 2; 3; 4; 5 ];
  (* head of queue is uncached: the first episode executes it alone *)
  check Alcotest.int "first episode is a singleton" 1 (Engine.step_batch eng);
  (* now the module is cached and shardable: the rest fuse *)
  check Alcotest.int "second episode fuses the rest" 4 (Engine.step_batch eng);
  check Alcotest.int "queue drained" 0 (Engine.pending eng);
  check Alcotest.int "all replies delivered" 5 (List.length !replies);
  List.iter
    (fun (id, (rp : Wire.reply)) ->
      check_status (Printf.sprintf "request %d ok" id) Wire.Ok rp;
      check Alcotest.string
        (Printf.sprintf "request %d bit-identical" id)
        want_output rp.Wire.rp_output;
      check Alcotest.int
        (Printf.sprintf "request %d exit code" id)
        want_exit rp.Wire.rp_exit_code)
    !replies;
  let s = Engine.stats eng in
  check Alcotest.int "one fused episode" 1 s.Engine.batches;
  check Alcotest.int "four riders" 4 s.Engine.batched_runs;
  check Alcotest.int "three warms coalesced" 3 s.Engine.warm_coalesced;
  check Alcotest.int "leak-free shutdown" 0 (Engine.shutdown eng)

(* Restart determinism: a 2-shard group journals per shard; a fresh
   group over the same segments recovers each tenant's modules on the
   shard that owned them, so the first post-restart request is a cache
   hit on its home shard. No sockets or domains involved — the group is
   driven directly. *)
let test_shard_journal_restart () =
  let base = tmp_path "shard.journal" in
  let shards = 2 in
  for i = 0 to shards - 1 do
    try Unix.unlink (Journal.segment_path base ~shards i)
    with Unix.Unix_error _ -> ()
  done;
  let tenants = [ "t0"; "t1"; "t2"; "t3" ] in
  let srcs = List.map (fun v -> Loadgen.source ~variant:v) [ 0; 1 ] in
  let g1 = Shard.create ~journal_path:base ~count:shards () in
  check Alcotest.bool "fresh group has no recovery" true
    (Shard.recovered g1 = None);
  List.iteri
    (fun i tenant ->
      List.iter
        (fun src ->
          let e = Shard.engine g1 (Shard.tenant_shard ~shards tenant) in
          let rp = Engine.process e (request ~id:i ~tenant src) in
          check_status "gen1 request ok" Wire.Ok rp)
        srcs)
    tenants;
  check Alcotest.int "gen1 leak-free" 0 (Shard.stop g1);
  for i = 0 to shards - 1 do
    check Alcotest.bool
      (Printf.sprintf "segment %d exists" i)
      true
      (Sys.file_exists (Journal.segment_path base ~shards i))
  done;
  (* restart: same base path, same shard count *)
  let g2 = Shard.create ~journal_path:base ~count:shards () in
  (match Shard.recovered g2 with
  | Some r ->
    check Alcotest.bool "recovered records" true (r.Engine.rec_records > 0);
    check Alcotest.bool "modules recompiled" true (r.Engine.rec_compiled > 0);
    check Alcotest.bool "no torn segments" false r.Engine.rec_torn
  | None -> Alcotest.fail "restarted group reports no recovery");
  List.iteri
    (fun i tenant ->
      List.iter
        (fun src ->
          let e = Shard.engine g2 (Shard.tenant_shard ~shards tenant) in
          let rp = Engine.process e (request ~id:(100 + i) ~tenant src) in
          check_status "post-restart request ok" Wire.Ok rp;
          check Alcotest.string
            (Printf.sprintf "%s hits its home shard's recovered cache" tenant)
            "hit" rp.Wire.rp_cache)
        srcs)
    tenants;
  check Alcotest.int "gen2 leak-free" 0 (Shard.stop g2);
  for i = 0 to shards - 1 do
    try Unix.unlink (Journal.segment_path base ~shards i)
    with Unix.Unix_error _ -> ()
  done

(* The sharded daemon end to end: worker domains, the reply outbox, and
   the router's aggregation — every Ok reply still bit-identical to a
   fresh single-shot run, stats global = sum of shards, clean leak-free
   teardown. *)
let test_sharded_socket_round_trip () =
  let path = tmp_path "sharded.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let srv = Server.create ~shards:2 ~log:(fun _ -> ()) ~socket_path:path () in
  check Alcotest.int "daemon reports two shards" 2 (Server.shards srv);
  let result = ref None in
  let daemon = Thread.create (fun () -> result := Some (Server.run srv)) () in
  let finally () =
    Server.stop srv;
    Thread.join daemon;
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  check Alcotest.bool "daemon came up" true
    (Client.wait_ready ~socket_path:path ());
  let cases =
    (* t0 and t1 land on different shards (see the placement test) *)
    [
      (1, "t0", "opt", 0); (2, "t1", "opt", 1); (3, "t0", "seq", 2);
      (4, "t1", "unopt", 3); (5, "t0", "opt", 0); (6, "t1", "opt", 1);
    ]
  in
  List.iter
    (fun (id, tenant, mode, variant) ->
      let src = Loadgen.source ~variant in
      let want_output, want_exit = reference ~mode src in
      let rp =
        Client.request ~socket_path:path (request ~id ~tenant ~mode src)
      in
      check_status (Printf.sprintf "request %d ok" id) Wire.Ok rp;
      check Alcotest.int (Printf.sprintf "request %d id echo" id) id
        rp.Wire.rp_id;
      check Alcotest.string
        (Printf.sprintf "request %d bit-identical" id)
        want_output rp.Wire.rp_output;
      check Alcotest.int
        (Printf.sprintf "request %d exit code" id)
        want_exit rp.Wire.rp_exit_code)
    cases;
  (* repeats hit each shard's own cache *)
  let rp =
    Client.request ~socket_path:path
      (request ~id:7 ~tenant:"t0" (Loadgen.source ~variant:0))
  in
  check Alcotest.string "t0 repeat hits shard cache" "hit" rp.Wire.rp_cache;
  let st = Client.stats ~socket_path:path in
  check Alcotest.int "stats report the shard count" 2
    (Json.int_field "shards" st);
  check Alcotest.int "aggregated received covers every request" 7
    (Json.int_field "received" st);
  check Alcotest.int "aggregated ok covers every request" 7
    (Json.int_field "ok" st);
  check Alcotest.bool "daemon acknowledged shutdown" true
    (Client.shutdown ~socket_path:path);
  Thread.join daemon;
  match !result with
  | Some (line, residual) ->
    check Alcotest.int "leak-free teardown across shards" 0 residual;
    check Alcotest.bool "final line reports no leaks" true
      (contains ~affix:"device_leaks=0" line);
    (* the aggregated final line must account for every request *)
    check Alcotest.bool "final line sums the shards" true
      (contains ~affix:"received=7 ok=7" line)
  | None -> Alcotest.fail "daemon thread returned nothing"

let tests =
  [
    Alcotest.test_case "wire messages round-trip" `Quick test_wire_round_trip;
    Alcotest.test_case "decoder reassembles split frames" `Quick
      test_wire_decoder_reassembles;
    Alcotest.test_case "oversized frames are rejected" `Quick
      test_wire_frame_cap;
    Alcotest.test_case "compiled-module LRU" `Quick test_cache_lru;
    Alcotest.test_case "cache shared across tenants and plans" `Quick
      test_cache_shared_across_tenants_and_plans;
    Alcotest.test_case "admission sheds on queue overflow" `Quick
      test_admission_queue_shed;
    Alcotest.test_case "admission sheds on device-mem pressure and relieves"
      `Quick test_admission_device_mem_shed_and_relief;
    Alcotest.test_case "deadlines become typed replies" `Quick test_deadline;
    Alcotest.test_case "retries preserve fault-free output" `Quick
      test_retry_preserves_output;
    Alcotest.test_case "circuit breaker trips, degrades and heals" `Quick
      test_circuit_breaker_lifecycle;
    Alcotest.test_case "cross-tenant eviction writes back byte-exactly" `Quick
      test_cross_tenant_eviction_write_back;
    Alcotest.test_case "soak: faults, sheds, deadlines, bit-identity" `Slow
      test_soak;
    Alcotest.test_case "live daemon round-trip on the socket" `Quick
      test_socket_round_trip;
    Alcotest.test_case "hostile frame headers are rejected before buffering"
      `Quick test_wire_hostile_headers;
    Alcotest.test_case "journal appends replay to the same state" `Quick
      test_journal_round_trip;
    Alcotest.test_case "journal tolerates torn tails and CRC flips" `Quick
      test_journal_torn_tail;
    Alcotest.test_case "journal snapshot rotation bounds the log" `Quick
      test_journal_snapshot_rotation;
    Alcotest.test_case "engine recovers caches, warmth and breakers" `Quick
      test_engine_recovery;
    Alcotest.test_case "draining shed is a typed reply" `Quick
      test_shed_draining_reply;
    Alcotest.test_case "graceful drain finishes in-flight work" `Quick
      test_graceful_drain;
    Alcotest.test_case "stale sockets reclaimed, live ones refused" `Quick
      test_stale_socket;
    Alcotest.test_case "client timeout on a wedged daemon" `Quick
      test_client_timeout;
    Alcotest.test_case "tenant placement is deterministic and stable" `Quick
      test_tenant_shard_placement;
    Alcotest.test_case "global stats are the sum of shard stats" `Quick
      test_sum_stats;
    Alcotest.test_case "cross-request batching fuses bit-identically" `Quick
      test_step_batch_fuses;
    Alcotest.test_case "shard journals recover on the owning shard" `Quick
      test_shard_journal_restart;
    Alcotest.test_case "sharded daemon round-trip on the socket" `Quick
      test_sharded_socket_round_trip;
  ]
