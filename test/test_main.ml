let () =
  Alcotest.run "cgcm"
    [
      ("support", Test_support.tests);
      ("memory", Test_memory.tests);
      ("ir", Test_ir.tests);
      ("frontend", Test_frontend.tests);
      ("analysis", Test_analysis.tests);
      ("runtime", Test_runtime.tests);
      ("interp", Test_interp.tests);
      ("transform", Test_transform.tests);
      ("pipeline", Test_pipeline.tests);
      ("gpusim", Test_gpusim.tests);
      ("report", Test_report.tests);
      ("advanced", Test_advanced.tests);
      ("oracle", Test_oracle.tests);
      ("simplify", Test_simplify.tests);
      ("bench-progs", Test_bench_progs.tests);
      ("edge", Test_edge.tests);
      ("fastpath", Test_fastpath.tests);
      ("parallel", Test_parallel.tests);
      ("reader", Test_reader.tests);
      ("infra", Test_infra.tests);
      ("midend", Test_midend.tests);
      ("faults", Test_faults.tests);
      ("sanitizer", Test_sanitizer.tests);
      ("fuzz", Test_fuzz.tests);
      ("diagnostics", Test_diagnostics.tests);
      ("serve", Test_serve.tests);
      ("membackend", Test_membackend.tests);
    ]
