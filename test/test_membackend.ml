(* The memory-backend seam: the explicit-copy CGCM run-time vs the
   paged single-address-space backend must be observationally identical
   — same program output, same exit code, clean leak reports — with only
   the cost model differing. Plus qcheck properties of the page-
   migration accounting against a reference model, golden tests for the
   byte-size CLI parser, and the serve daemon's "+paged" mode suffix. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Mem_backend = Cgcm_runtime.Mem_backend
module Paged = Cgcm_runtime.Paged
module Runtime = Cgcm_runtime.Runtime
module Device = Cgcm_gpusim.Device
module Cost_model = Cgcm_gpusim.Cost_model
module Bytesize = Cgcm_support.Bytesize
module Engine = Cgcm_serve.Engine
module Wire = Cgcm_serve.Wire

let check = Alcotest.check

let clean (r : Interp.result) =
  r.Interp.leaks.Runtime.resident_nonglobal = 0
  && r.Interp.leaks.Runtime.leaked_dev_blocks = 0

(* ------------------------------------------------------------------ *)
(* Backend differential: the whole small-size suite, both split-memory
   configurations, must be bit-identical between backends. *)

let backend_differential exec () =
  List.iter
    (fun (name, src) ->
      let run backend = snd (Pipeline.run ~backend exec src) in
      let ex = run Mem_backend.Explicit and pg = run Mem_backend.Paged in
      check Alcotest.string
        (name ^ ": output identical across backends")
        ex.Interp.output pg.Interp.output;
      check Alcotest.int64
        (name ^ ": exit code identical across backends")
        ex.Interp.exit_code pg.Interp.exit_code;
      check Alcotest.bool (name ^ ": explicit leak report clean") true
        (clean ex);
      check Alcotest.bool (name ^ ": paged leak report clean") true (clean pg);
      check Alcotest.bool (name ^ ": explicit run has no page stats") true
        (ex.Interp.page_stats = None);
      check Alcotest.bool (name ^ ": paged run reports page stats") true
        (pg.Interp.page_stats <> None))
    Test_fastpath.small_programs

(* Both engines stay correct under paging. Page *traffic* is engine-
   relative by design — the closure engine's scalar promotion and
   expression folding elide loads the tree-walker performs, so the two
   legitimately fault different page counts; what must agree is the
   program's observable behavior, and each engine's own accounting must
   stay internally consistent (page-granular bytes). *)
let paged_engines_agree () =
  List.iter
    (fun (name, src) ->
      let run engine =
        snd
          (Pipeline.run ~engine ~backend:Mem_backend.Paged
             Pipeline.Cgcm_optimized src)
      in
      let c = run Interp.Closures and t = run Interp.Tree_walk in
      check Alcotest.string (name ^ ": engines agree on output")
        c.Interp.output t.Interp.output;
      check Alcotest.int64 (name ^ ": engines agree on exit code")
        c.Interp.exit_code t.Interp.exit_code;
      let pb = Cost_model.default.Cost_model.page_bytes in
      List.iter
        (fun r ->
          let s = Option.get r.Interp.page_stats in
          check Alcotest.bool (name ^ ": page-granular accounting") true
            (s.Paged.bytes_to_dev = s.Paged.faults_to_dev * pb
            && s.Paged.bytes_to_host = s.Paged.faults_to_host * pb))
        [ c; t ])
    [
      ("gemm", Cgcm_progs.Polybench.gemm ~n:12 ());
      ("jacobi-2d", Cgcm_progs.Polybench.jacobi_2d ~n:10 ~steps:4 ());
      ("srad", Cgcm_progs.Rodinia.srad ~n:10 ~steps:4 ());
    ]

(* ------------------------------------------------------------------ *)
(* Page-accounting properties against a reference model. The model is
   the spec from paged.ml's header: one side per page, first touch
   populates free, same-side touches free, cross-side touches migrate
   the whole page. *)

let touch_seq_gen =
  QCheck2.Gen.(
    list_size (int_range 1 80)
      (triple bool (int_bound 40_000) (int_range 1 6000)))

let drive ?(dup = false) seq =
  let dev = Device.create Cost_model.default in
  let pg = Paged.create ~dev Cost_model.default in
  let host_cost = ref 0.0 in
  List.iter
    (fun (kernel, addr, len) ->
      host_cost := !host_cost +. Paged.touch pg ~kernel ~addr ~len;
      if dup then host_cost := !host_cost +. Paged.touch pg ~kernel ~addr ~len)
    seq;
  (Paged.stats pg, Paged.fault_cost pg, !host_cost)

(* the reference model: page index -> on-device? *)
let model seq =
  let pb = Cost_model.default.Cost_model.page_bytes in
  let tbl = Hashtbl.create 64 in
  let to_dev = ref 0 and to_host = ref 0 in
  List.iter
    (fun (kernel, addr, len) ->
      for p = addr / pb to (addr + len - 1) / pb do
        match Hashtbl.find_opt tbl p with
        | None -> Hashtbl.replace tbl p kernel
        | Some side when side = kernel -> ()
        | Some _ ->
          Hashtbl.replace tbl p kernel;
          if kernel then incr to_dev else incr to_host
      done)
    seq;
  (Hashtbl.length tbl, !to_dev, !to_host)

let prop_model =
  QCheck2.Test.make ~name:"paged accounting agrees with reference model"
    ~count:300 touch_seq_gen (fun seq ->
      let st, _, _ = drive seq in
      let pages, to_dev, to_host = model seq in
      st.Paged.touched_pages = pages
      && st.Paged.faults_to_dev = to_dev
      && st.Paged.faults_to_host = to_host)

let prop_page_granular =
  QCheck2.Test.make
    ~name:"migrated bytes are exactly faults times the page size" ~count:300
    touch_seq_gen (fun seq ->
      let st, _, _ = drive seq in
      let pb = Cost_model.default.Cost_model.page_bytes in
      st.Paged.bytes_to_dev = st.Paged.faults_to_dev * pb
      && st.Paged.bytes_to_host = st.Paged.faults_to_host * pb)

let prop_no_double_charge =
  QCheck2.Test.make
    ~name:"re-touching from the same side is never charged" ~count:300
    touch_seq_gen (fun seq ->
      let st1, _, c1 = drive seq in
      let st2, _, c2 = drive ~dup:true seq in
      st1.Paged.faults_to_dev = st2.Paged.faults_to_dev
      && st1.Paged.faults_to_host = st2.Paged.faults_to_host
      && st1.Paged.touched_pages = st2.Paged.touched_pages
      && c1 = c2)

let prop_single_side_free =
  QCheck2.Test.make ~name:"a single-side access pattern never faults"
    ~count:300 touch_seq_gen (fun seq ->
      let host_only = List.map (fun (_, a, l) -> (false, a, l)) seq in
      let st, _, c = drive host_only in
      st.Paged.faults_to_dev = 0 && st.Paged.faults_to_host = 0 && c = 0.0)

let prop_host_cost =
  QCheck2.Test.make
    ~name:"host stall cycles equal host-bound faults times fault cost"
    ~count:300 touch_seq_gen (fun seq ->
      let st, fault_cost, c = drive seq in
      c = float_of_int st.Paged.faults_to_host *. fault_cost)

(* ------------------------------------------------------------------ *)
(* Byte-size suffix parsing (--device-mem / --page-bytes)              *)

let bytesize_parses () =
  let ok s v =
    match Bytesize.parse s with
    | Ok n -> check Alcotest.int s v n
    | Error e -> Alcotest.failf "%s failed to parse: %s" s e
  in
  ok "4096" 4096;
  ok "0" 0;
  ok "64KiB" 65536;
  ok "1MiB" (1024 * 1024);
  ok "2GiB" (2 * 1024 * 1024 * 1024);
  List.iter
    (fun s ->
      check Alcotest.bool (s ^ " rejected") true
        (match Bytesize.parse s with Error _ -> true | Ok _ -> false))
    [ ""; "-1"; "64kb"; "12XB"; "KiB"; "1.5MiB"; "99999999999999999GiB" ]

(* Golden: the CLI surfaces Bytesize's message verbatim through the
   cmdliner converter, so pin the exact text here. *)
let bytesize_error_golden () =
  check Alcotest.string "parse error message"
    "invalid byte count \"12XB\" (expected an integer with an optional KiB, \
     MiB or GiB suffix, e.g. 65536, 64KiB, 1MiB)"
    (Bytesize.error_message "12XB");
  (match Bytesize.parse "12XB" with
  | Error e ->
    check Alcotest.string "parse returns the golden message"
      (Bytesize.error_message "12XB") e
  | Ok _ -> Alcotest.fail "12XB parsed");
  check Alcotest.string "to_string picks the largest exact unit" "64KiB"
    (Bytesize.to_string 65536);
  check Alcotest.string "to_string keeps inexact sizes raw" "65537"
    (Bytesize.to_string 65537)

(* ------------------------------------------------------------------ *)
(* serve: the "+paged" mode suffix selects the backend                 *)

let serve_source = Cgcm_progs.Polybench.gemm ~n:10 ()

let request ~id ~mode =
  {
    Wire.rq_id = id;
    rq_tenant = "t0";
    rq_source = serve_source;
    rq_mode = mode;
    rq_deadline = None;
    rq_strict = false;
    rq_faults = None;
  }

let serve_paged_suffix () =
  let eng = Engine.create () in
  let r1 = Engine.process eng (request ~id:1 ~mode:"opt+paged") in
  check Alcotest.string "opt+paged status" "ok" (Wire.status_name r1.Wire.rp_status);
  let _, reference =
    Pipeline.run ~backend:Mem_backend.Paged Pipeline.Cgcm_optimized
      serve_source
  in
  check Alcotest.string "opt+paged output bit-identical to single-shot"
    reference.Interp.output r1.Wire.rp_output;
  (* same compiled module as plain "opt": the backend shapes execution,
     not compilation, so the second request is a cache hit *)
  let r2 = Engine.process eng (request ~id:2 ~mode:"opt") in
  check Alcotest.string "plain opt rides the same cache entry" "hit"
    r2.Wire.rp_cache;
  check Alcotest.string "cache keys agree across backend suffixes"
    (Engine.cache_key_of_mode ~mode:"opt" serve_source)
    (Engine.cache_key_of_mode ~mode:"opt+paged" serve_source);
  (* an explicit suffix is accepted and means the default *)
  let r3 = Engine.process eng (request ~id:3 ~mode:"opt+explicit") in
  check Alcotest.string "opt+explicit output" r2.Wire.rp_output
    r3.Wire.rp_output;
  (* a bogus suffix is a typed error, not a crash *)
  let r4 = Engine.process eng (request ~id:4 ~mode:"opt+bogus") in
  check Alcotest.string "bogus suffix rejected" "error"
    (Wire.status_name r4.Wire.rp_status);
  (* paged requests never warm residency: there are no warm units to
     establish under a single address space *)
  let eng2 = Engine.create () in
  let _ = Engine.process eng2 (request ~id:5 ~mode:"unopt+paged") in
  check Alcotest.int "no residency warmed by a paged request" 0
    (Cgcm_serve.Residency.warm_bytes (Engine.residency eng2))

let tests =
  [
    Alcotest.test_case "backend differential (unopt, suite)" `Slow
      (backend_differential Pipeline.Cgcm_unoptimized);
    Alcotest.test_case "backend differential (opt, suite)" `Slow
      (backend_differential Pipeline.Cgcm_optimized);
    Alcotest.test_case "paged: engines agree" `Slow paged_engines_agree;
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_page_granular;
    QCheck_alcotest.to_alcotest prop_no_double_charge;
    QCheck_alcotest.to_alcotest prop_single_side_free;
    QCheck_alcotest.to_alcotest prop_host_cost;
    Alcotest.test_case "bytesize: suffixes parse" `Quick bytesize_parses;
    Alcotest.test_case "bytesize: golden error message" `Quick
      bytesize_error_golden;
    Alcotest.test_case "serve: +paged mode suffix" `Slow serve_paged_suffix;
  ]
