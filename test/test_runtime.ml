(* Tests for the CGCM run-time library: Algorithms 1-3 of the paper,
   allocation-unit tracking, reference counting, epochs, the array
   variants, and their failure modes. *)

module Memspace = Cgcm_memory.Memspace
module Device = Cgcm_gpusim.Device
module Cost_model = Cgcm_gpusim.Cost_model
module Runtime = Cgcm_runtime.Runtime

let check = Alcotest.check

let mk () =
  let host =
    Memspace.create ~name:"host" ~range_lo:0x10_0000 ~range_hi:0x4000_0000
  in
  let dev = Device.create Cost_model.default in
  (host, dev, Runtime.create ~host ~dev ())

let test_map_translates () =
  let host, dev, rt = mk () in
  let base = Memspace.alloc host 64 in
  Runtime.register_heap rt ~base ~size:64;
  Memspace.store_i64 host base 7L;
  Memspace.store_i64 host (base + 56) 9L;
  let d = Runtime.map rt base in
  check Alcotest.int64 "copied first" 7L (Memspace.load_i64 dev.Device.mem d);
  check Alcotest.int64 "copied last" 9L
    (Memspace.load_i64 dev.Device.mem (d + 56))

let test_interior_pointer_translation () =
  (* the paper: map(ptr) = devbase + (ptr - base), preserving interior
     offsets and hence pointer arithmetic *)
  let host, _, rt = mk () in
  let base = Memspace.alloc host 64 in
  Runtime.register_heap rt ~base ~size:64;
  let d_base = Runtime.map rt base in
  let d_mid = Runtime.map rt (base + 24) in
  check Alcotest.int "offset preserved" 24 (d_mid - d_base)

let test_aliases_share_unit () =
  (* two maps of the same unit yield pointers into one device unit and a
     reference count of 2 *)
  let _, _, rt = mk () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 32 in
  Runtime.register_heap rt ~base ~size:32;
  let d1 = Runtime.map rt base in
  let d2 = Runtime.map rt (base + 8) in
  check Alcotest.int "same unit" d1 (d2 - 8);
  let info = Runtime.lookup_unit rt base in
  check Alcotest.int "refcount 2" 2 info.Runtime.refcount;
  check Alcotest.int "one resident unit" 1 (Runtime.resident_units rt)

let test_map_skips_redundant_copy () =
  let _, dev, rt = mk () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 32 in
  Runtime.register_heap rt ~base ~size:32;
  ignore (Runtime.map rt base);
  let before = (Device.stats dev).Device.htod_count in
  ignore (Runtime.map rt base);
  check Alcotest.int "no second copy" before (Device.stats dev).Device.htod_count;
  check Alcotest.int "skip counted" 1 rt.Runtime.stats.Runtime.skipped_copies

let test_release_frees_at_zero () =
  let _, _, rt = mk () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 32 in
  Runtime.register_heap rt ~base ~size:32;
  ignore (Runtime.map rt base);
  ignore (Runtime.map rt base);
  Runtime.release rt base;
  check Alcotest.int "still resident" 1 (Runtime.resident_units rt);
  Runtime.release rt base;
  check Alcotest.int "freed" 0 (Runtime.resident_units rt);
  (* release below zero is an error *)
  (match Runtime.release rt base with
  | exception Runtime.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected refcount underflow error")

let test_remap_after_release_copies_again () =
  let _, dev, rt = mk () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 32 in
  Runtime.register_heap rt ~base ~size:32;
  ignore (Runtime.map rt base);
  Runtime.release rt base;
  Memspace.store_i64 host base 99L;
  let d = Runtime.map rt base in
  check Alcotest.int64 "fresh copy sees CPU write" 99L
    (Memspace.load_i64 dev.Device.mem d)

let test_unmap_epoch_semantics () =
  (* unmap copies device-to-host at most once per epoch (Algorithm 2) *)
  let _, dev, rt = mk () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 32 in
  Runtime.register_heap rt ~base ~size:32;
  let d = Runtime.map rt base in
  (* before any kernel launch, the epochs match: no copy back *)
  Runtime.unmap rt base;
  check Alcotest.int "no DtoH before a launch" 0
    (Device.stats dev).Device.dtoh_count;
  (* a launch bumps the epoch; the device copy is now authoritative *)
  Runtime.bump_epoch rt;
  Memspace.store_i64 dev.Device.mem d 123L;
  Runtime.unmap rt base;
  check Alcotest.int64 "copied back" 123L (Memspace.load_i64 host base);
  check Alcotest.int "one DtoH" 1 (Device.stats dev).Device.dtoh_count;
  (* second unmap in the same epoch is skipped *)
  Runtime.unmap rt base;
  check Alcotest.int "skipped" 1 (Device.stats dev).Device.dtoh_count;
  check Alcotest.bool "skip recorded" true
    (rt.Runtime.stats.Runtime.skipped_unmaps >= 1)

let test_unmap_respects_readonly () =
  let _, dev, rt = mk () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 16 in
  Runtime.declare_global rt ~name:"ro" ~base ~size:16 ~read_only:true;
  ignore (Runtime.map rt base);
  Runtime.bump_epoch rt;
  Runtime.unmap rt base;
  check Alcotest.int "read-only never copied back" 0
    (Device.stats dev).Device.dtoh_count

let test_globals_persistent () =
  (* globals map into the named module region and survive refcount zero *)
  let _, dev, rt = mk () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 16 in
  Runtime.declare_global rt ~name:"g" ~base ~size:16 ~read_only:false;
  let d1 = Runtime.map rt base in
  let expected, _ = Device.module_get_global dev ~now:0.0 "g" in
  check Alcotest.int "named region" expected d1;
  Runtime.release rt base;
  (* still resident: release never cuMemFrees a global *)
  check Alcotest.int "resident" 1 (Runtime.resident_units rt);
  let d2 = Runtime.map rt base in
  check Alcotest.int "stable address" d1 d2

let test_wild_pointer_map () =
  let _, _, rt = mk () in
  match Runtime.map rt 0xDEAD with
  | exception Runtime.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected unknown-unit error"

let test_free_while_mapped () =
  let _, _, rt = mk () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 32 in
  Runtime.register_heap rt ~base ~size:32;
  ignore (Runtime.map rt base);
  match Runtime.unregister_heap rt ~base with
  | exception Runtime.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected free-while-mapped error"

let test_alloca_expiry () =
  let _, _, rt = mk () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 32 in
  Runtime.declare_alloca rt ~base ~size:32;
  check Alcotest.int "registered" 1 (Runtime.unit_count rt);
  Runtime.expire_alloca rt ~base;
  check Alcotest.int "expired" 0 (Runtime.unit_count rt);
  (* leaving scope while mapped is an error *)
  let base2 = Memspace.alloc host 32 in
  Runtime.declare_alloca rt ~base:base2 ~size:32;
  ignore (Runtime.map rt base2);
  match Runtime.expire_alloca rt ~base:base2 with
  | exception Runtime.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected expiry-while-mapped error"

(* ------------------------------------------------------------------ *)
(* Array variants                                                      *)

let test_map_array () =
  let _, dev, rt = mk () in
  let host = rt.Runtime.host in
  (* two element buffers and an array of pointers to them *)
  let e1 = Memspace.alloc host 16 in
  let e2 = Memspace.alloc host 16 in
  Runtime.register_heap rt ~base:e1 ~size:16;
  Runtime.register_heap rt ~base:e2 ~size:16;
  Memspace.store_i64 host e1 11L;
  Memspace.store_i64 host e2 22L;
  let arr = Memspace.alloc host 24 in
  Runtime.register_heap rt ~base:arr ~size:24;
  Memspace.store_i64 host arr (Int64.of_int e1);
  Memspace.store_i64 host (arr + 8) (Int64.of_int e2);
  (* a null element must survive translation *)
  Memspace.store_i64 host (arr + 16) 0L;
  let d_arr = Runtime.map_array rt arr in
  let d_e1 = Int64.to_int (Memspace.load_i64 dev.Device.mem d_arr) in
  let d_e2 = Int64.to_int (Memspace.load_i64 dev.Device.mem (d_arr + 8)) in
  check Alcotest.int64 "null preserved" 0L
    (Memspace.load_i64 dev.Device.mem (d_arr + 16));
  check Alcotest.int64 "element 1 data" 11L
    (Memspace.load_i64 dev.Device.mem d_e1);
  check Alcotest.int64 "element 2 data" 22L
    (Memspace.load_i64 dev.Device.mem d_e2);
  (* modify on device, unmapArray copies the element units back *)
  Memspace.store_i64 dev.Device.mem d_e1 111L;
  Runtime.bump_epoch rt;
  Runtime.unmap_array rt arr;
  check Alcotest.int64 "element copied back" 111L (Memspace.load_i64 host e1);
  (* host pointer array itself is untouched *)
  check Alcotest.int64 "host array intact" (Int64.of_int e1)
    (Memspace.load_i64 host arr);
  Runtime.release_array rt arr;
  check Alcotest.int "all freed" 0 (Runtime.resident_units rt)

let test_map_array_balanced_refcounts () =
  (* nested mapArray / releaseArray pairs (as map promotion creates) *)
  let _, _, rt = mk () in
  let host = rt.Runtime.host in
  let e1 = Memspace.alloc host 16 in
  Runtime.register_heap rt ~base:e1 ~size:16;
  let arr = Memspace.alloc host 8 in
  Runtime.register_heap rt ~base:arr ~size:8;
  Memspace.store_i64 host arr (Int64.of_int e1);
  let d1 = Runtime.map_array rt arr in
  let d2 = Runtime.map_array rt arr in
  check Alcotest.int "same shadow" d1 d2;
  Runtime.release_array rt arr;
  Runtime.release_array rt arr;
  check Alcotest.int "everything freed" 0 (Runtime.resident_units rt);
  match Runtime.release_array rt arr with
  | exception Runtime.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected array refcount underflow"

(* Property: any balanced sequence of map/release keeps refcounts exact
   and ends with no resident units. *)
let prop_refcount_balance =
  QCheck2.Test.make ~name:"balanced map/release leaves nothing resident"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (int_bound 3))
    (fun choices ->
      let _, _, rt = mk () in
      let host = rt.Runtime.host in
      let units =
        Array.init 4 (fun _ ->
            let b = Memspace.alloc host 32 in
            Runtime.register_heap rt ~base:b ~size:32;
            b)
      in
      let depth = Array.make 4 0 in
      List.iter
        (fun u ->
          ignore (Runtime.map rt units.(u));
          depth.(u) <- depth.(u) + 1)
        choices;
      List.iter
        (fun u ->
          if depth.(u) > 0 then begin
            Runtime.release rt units.(u);
            depth.(u) <- depth.(u) - 1
          end)
        (choices @ choices);
      (* drain the rest *)
      Array.iteri
        (fun u d ->
          for _ = 1 to d do
            Runtime.release rt units.(u)
          done)
        depth;
      Runtime.resident_units rt = 0 && Runtime.total_refcount rt = 0)

let tests =
  [
    Alcotest.test_case "map translates and copies" `Quick test_map_translates;
    Alcotest.test_case "interior pointer translation" `Quick
      test_interior_pointer_translation;
    Alcotest.test_case "aliases share the unit" `Quick test_aliases_share_unit;
    Alcotest.test_case "redundant copies skipped" `Quick
      test_map_skips_redundant_copy;
    Alcotest.test_case "release frees at zero" `Quick test_release_frees_at_zero;
    Alcotest.test_case "remap after release copies" `Quick
      test_remap_after_release_copies_again;
    Alcotest.test_case "unmap epoch semantics" `Quick test_unmap_epoch_semantics;
    Alcotest.test_case "unmap respects read-only" `Quick
      test_unmap_respects_readonly;
    Alcotest.test_case "globals are persistent named regions" `Quick
      test_globals_persistent;
    Alcotest.test_case "wild pointer map fails" `Quick test_wild_pointer_map;
    Alcotest.test_case "free while mapped fails" `Quick test_free_while_mapped;
    Alcotest.test_case "declareAlloca expiry" `Quick test_alloca_expiry;
    Alcotest.test_case "mapArray translates elements" `Quick test_map_array;
    Alcotest.test_case "mapArray refcount balance" `Quick
      test_map_array_balanced_refcounts;
    QCheck_alcotest.to_alcotest prop_refcount_balance;
  ]
