(* Per-program pinning tests for the 24-benchmark suite: kernel counts,
   baseline applicability, and the communication-pattern properties the
   paper's evaluation depends on. These run at reduced sizes. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Doall = Cgcm_frontend.Doall
module Registry = Cgcm_progs.Registry

let check = Alcotest.check

(* Every managed run must come back leak-free: no resident non-global
   units, refcounts fully drained, no live driver-heap blocks. *)
let leak_free label (r : Interp.result) =
  let l = r.Interp.leaks in
  let module Runtime = Cgcm_runtime.Runtime in
  if
    l.Runtime.resident_nonglobal <> 0
    || l.Runtime.refcount_sum <> 0
    || l.Runtime.leaked_dev_blocks <> 0
  then
    Alcotest.failf "%s leaks: %d resident, refcounts %d, %d dev blocks" label
      l.Runtime.resident_nonglobal l.Runtime.refcount_sum
      l.Runtime.leaked_dev_blocks

(* (name, small source, expected kernels, expected NR/IE-applicable) *)
let expectations =
  [
    ("adi", Cgcm_progs.Polybench.adi ~n:10 ~steps:2 (), 6, 6);
    ("atax", Cgcm_progs.Polybench.atax ~n:12 (), 3, 3);
    ("bicg", Cgcm_progs.Polybench.bicg ~n:12 (), 3, 3);
    ("correlation", Cgcm_progs.Polybench.correlation ~n:10 (), 5, 5);
    ("covariance", Cgcm_progs.Polybench.covariance ~n:10 (), 4, 4);
    ("doitgen", Cgcm_progs.Polybench.doitgen ~n:6 (), 4, 4);
    ("gemm", Cgcm_progs.Polybench.gemm ~n:10 (), 4, 4);
    ("gemver", Cgcm_progs.Polybench.gemver ~n:12 (), 4, 4);
    ("gesummv", Cgcm_progs.Polybench.gesummv ~n:12 (), 2, 2);
    ("gramschmidt", Cgcm_progs.Polybench.gramschmidt ~n:8 (), 3, 3);
    ("jacobi", Cgcm_progs.Polybench.jacobi_2d ~n:10 ~steps:2 (), 3, 3);
    ("seidel", Cgcm_progs.Polybench.seidel ~n:10 ~steps:2 (), 1, 1);
    ("lu", Cgcm_progs.Polybench.lu ~n:10 (), 3, 3);
    ("ludcmp", Cgcm_progs.Polybench.ludcmp ~n:10 (), 4, 4);
    ("2mm", Cgcm_progs.Polybench.twomm ~n:10 (), 6, 6);
    ("3mm", Cgcm_progs.Polybench.threemm ~n:8 (), 6, 6);
    (* Rodinia ports use heap data behind pointer globals: the named-
       regions / inspector-executor baselines are inapplicable (Table 3) *)
    ("cfd", Cgcm_progs.Rodinia.cfd ~cells:40 ~steps:2 (), 9, 0);
    ("hotspot", Cgcm_progs.Rodinia.hotspot ~n:10 ~steps:2 (), 3, 0);
    ( "kmeans",
      Cgcm_progs.Rodinia.kmeans ~points:40 ~dims:4 ~clusters:4 ~iters:2 (),
      3, 3 );
    ("lud", Cgcm_progs.Rodinia.lud ~n:10 (), 4, 0);
    ("nw", Cgcm_progs.Rodinia.nw ~n:12 (), 4, 4);
    ("srad", Cgcm_progs.Rodinia.srad ~n:10 ~steps:2 (), 5, 0);
    ("fm", Cgcm_progs.Others.fm ~samples:128 ~taps:4 (), 4, 4);
    ("blackscholes", Cgcm_progs.Others.blackscholes ~options:40 (), 1, 1);
  ]

let test_kernel_counts () =
  List.iter
    (fun (name, src, kernels, applicable) ->
      let c = Pipeline.compile ~level:Pipeline.Unmanaged src in
      let got = List.length c.Pipeline.doall.Doall.kernels in
      let got_app =
        List.length
          (List.filter
             (fun k -> k.Doall.k_named_applicable)
             c.Pipeline.doall.Doall.kernels)
      in
      if got <> kernels then
        Alcotest.failf "%s: expected %d kernels, found %d" name kernels got;
      if got_app <> applicable then
        Alcotest.failf "%s: expected %d NR-applicable kernels, found %d" name
          applicable got_app)
    expectations

let test_registry_metadata () =
  check Alcotest.int "24 programs" 24 (List.length Registry.all);
  let suites =
    List.sort_uniq compare
      (List.map (fun p -> p.Registry.suite) Registry.all)
  in
  check
    Alcotest.(list string)
    "four suites"
    [ "PARSEC"; "PolyBench"; "Rodinia"; "StreamIt" ]
    suites;
  check Alcotest.int "PolyBench count" 16
    (List.length
       (List.filter (fun p -> p.Registry.suite = "PolyBench") Registry.all));
  check Alcotest.int "paper kernel total" 101
    (List.fold_left (fun a p -> a + p.Registry.paper_kernels) 0 Registry.all);
  check Alcotest.bool "lookup" true (Registry.find "gemm" <> None);
  check Alcotest.bool "missing lookup" true (Registry.find "nope" = None)

(* The paper's headline communication patterns, checked per class on one
   representative of each. *)
let test_time_loop_programs_are_cyclic_unoptimized () =
  List.iter
    (fun src ->
      let _, unopt = Pipeline.run Pipeline.Cgcm_unoptimized src in
      let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
      leak_free "unoptimized" unopt;
      leak_free "optimized" opt;
      let d r = r.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count in
      check Alcotest.bool "unoptimized is cyclic" true (d unopt > 3 * d opt))
    [
      Cgcm_progs.Polybench.jacobi_2d ~n:10 ~steps:6 ();
      Cgcm_progs.Rodinia.hotspot ~n:10 ~steps:6 ();
      Cgcm_progs.Rodinia.srad ~n:10 ~steps:6 ();
    ]

let test_gramschmidt_stays_cyclic () =
  (* the per-column CPU reduction pins CGCM to cyclic communication: DtoH
     grows with the column count even when optimized *)
  let run n =
    let _, opt =
      Pipeline.run Pipeline.Cgcm_optimized (Cgcm_progs.Polybench.gramschmidt ~n ())
    in
    leak_free "gramschmidt" opt;
    opt.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count
  in
  check Alcotest.bool "cyclic growth" true (run 12 > run 6 + 3)

let tests =
  [
    Alcotest.test_case "kernel counts + applicability" `Quick
      test_kernel_counts;
    Alcotest.test_case "registry metadata" `Quick test_registry_metadata;
    Alcotest.test_case "time loops cyclic unoptimized" `Quick
      test_time_loop_programs_are_cyclic_unoptimized;
    Alcotest.test_case "gramschmidt stays cyclic" `Quick
      test_gramschmidt_stays_cyclic;
  ]
