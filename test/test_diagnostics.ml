(* Golden tests for the failure taxonomy: Cgcm_core.Diagnostics maps
   every surfaced exception to one exit code and one rendered message,
   and the CLI prints exactly that. These pin the exact text and codes,
   so a reworded diagnostic or a renumbered exit code is a deliberate,
   reviewed change — not drift. *)

module Diagnostics = Cgcm_core.Diagnostics
module Pipeline = Cgcm_core.Pipeline
module Errors = Cgcm_support.Errors

let check = Alcotest.check

let classify_exn f =
  match f () with
  | _ -> Alcotest.fail "expected an exception"
  | exception e -> (
    match Diagnostics.classify e with
    | Some (code, msg) -> (code, msg)
    | None -> Alcotest.failf "unclassified: %s" (Printexc.to_string e))

let golden name (expect_code, expect_msg) f =
  let code, msg = classify_exn f in
  check Alcotest.int (name ^ ": exit code") expect_code code;
  check Alcotest.string (name ^ ": message") expect_msg msg

(* ------------------------------------------------------------------ *)
(* Exit-code numbering is part of the CLI contract. *)

let test_exit_codes () =
  check Alcotest.int "usage" 2 Diagnostics.exit_usage;
  check Alcotest.int "runtime" 3 Diagnostics.exit_runtime;
  check Alcotest.int "device" 4 Diagnostics.exit_device;
  check Alcotest.int "exec" 5 Diagnostics.exit_exec;
  check Alcotest.int "memory" 6 Diagnostics.exit_memory;
  check Alcotest.int "internal" 7 Diagnostics.exit_internal;
  check Alcotest.int "sanitizer" 8 Diagnostics.exit_sanitizer;
  check Alcotest.int "overloaded" 9 Diagnostics.exit_overloaded;
  check Alcotest.int "deadline" 10 Diagnostics.exit_deadline;
  check Alcotest.int "circuit open" 11 Diagnostics.exit_circuit_open;
  check Alcotest.int "socket busy" 12 Diagnostics.exit_socket_busy;
  check Alcotest.int "request timeout" 13 Diagnostics.exit_request_timeout

(* ------------------------------------------------------------------ *)
(* End-to-end: bad input through the real pipeline. *)

let test_frontend_diagnostics () =
  golden "lex" (2, "cgcm: lex error at 1:14: unexpected character '$'")
    (fun () -> Pipeline.compile "int main() { $ }");
  golden "parse" (2, "cgcm: parse error at 1:11: expected type, found '{'")
    (fun () -> Pipeline.compile "int main( {");
  golden "sema" (2, "cgcm: semantic error: unknown variable 'x'") (fun () ->
      Pipeline.compile "int main() { x = 1; return 0; }");
  golden "doall"
    ( 2,
      "cgcm: parallelization error: main: 'parallel' loop cannot be \
       outlined: loop update is not canonical" )
    (fun () ->
      Pipeline.compile
        "global int g[8]; int main() { parallel for (int i = 0; i < 8; i = i \
         * 2 + 1) { g[i] = i; } return 0; }");
  golden "bad IR" (2, "cgcm: bad IR: expected '(' in @wat") (fun () ->
      Cgcm_ir.Reader.parse_verified "func @wat")

let test_dynamic_diagnostics () =
  golden "exec" (5, "cgcm: execution error: integer division by zero")
    (fun () ->
      Pipeline.run Pipeline.Sequential
        "int main() { int z = 0; print(1 / z); return 0; }");
  golden "memory" (6, "cgcm: memory fault: host: wild pointer 0x1c3500")
    (fun () ->
      Pipeline.run Pipeline.Sequential
        "global int g[4]; int main() { int* p = (int*) g; print(p[100000]); \
         return 0; }")

(* ------------------------------------------------------------------ *)
(* Structured errors, rendered from constructed values so every field
   placement in the template is pinned. *)

let snap =
  {
    Errors.u_base = 0x1000;
    u_size = 64;
    u_refcount = 1;
    u_arr_refcount = 0;
    u_epoch = 3;
    u_devptr = Some 0x400100;
    u_global = Some "Y";
  }

let test_runtime_error_text () =
  let e =
    {
      Errors.op = "release";
      addr = Some 0x1000;
      reason = "refcount underflow";
      unit_ = Some snap;
      device = None;
      alloc_map = [ snap ];
    }
  in
  golden "runtime"
    ( 3,
      "cgcm runtime error in release (pointer 0x1000): refcount underflow\n\
      \  unit base=0x1000 size=64 refcount=1 arrayRefcount=0 epoch=3 \
       devptr=0x400100 global=Y\n\
      \  allocation map (1 units):\n\
      \    unit base=0x1000 size=64 refcount=1 arrayRefcount=0 epoch=3 \
       devptr=0x400100 global=Y" )
    (fun () -> raise (Cgcm_runtime.Runtime.Runtime_error e))

let test_device_fault_text () =
  let fault =
    Errors.Oom
      { op = "cuMemAlloc"; requested = 128; live = 512; capacity = 640;
        injected = false }
  in
  golden "device"
    ( 4,
      "cgcm: unrecovered device fault: device out of memory in cuMemAlloc: \
       requested 128 bytes, 512 live of 640 capacity" )
    (fun () -> raise (Errors.Device_error fault))

let test_violation_text () =
  let v =
    {
      Errors.v_kind = Errors.Stale_host_read;
      v_unit = snap;
      v_addr = 0x1010;
      v_offset = 16;
      v_instr = "load 8 B @0x1010 in main";
      v_detail = "the device copy holds a newer value";
      v_history = [ "epoch 2: map -> refcount 1"; "epoch 3: launch k" ];
    }
  in
  golden "violation"
    ( 8,
      "cgcm sanitizer: stale-host-read at 0x1010 (byte 16 of unit global Y)\n\
      \  offending instruction: load 8 B @0x1010 in main\n\
      \  unit base=0x1000 size=64 refcount=1 arrayRefcount=0 epoch=3 \
       devptr=0x400100 global=Y\n\
      \  detail: the device copy holds a newer value\n\
      \  version history (most recent first):\n\
      \    epoch 3: launch k\n\
      \    epoch 2: map -> refcount 1" )
    (fun () -> raise (Errors.Coherence_violation v))

let test_verifier_text () =
  golden "verifier" (7, "cgcm: internal error (ill-formed IR): boom")
    (fun () -> raise (Cgcm_ir.Verifier.Ill_formed "boom"))

(* The serve daemon's typed rejections: shed at admission, deadline via
   the fuel budget, tenant circuit breaker. *)
let test_serve_rejection_text () =
  golden "overloaded"
    ( 9,
      "cgcm serve: overloaded (queue): queue 64 of 64, 4096 warm bytes of \
       65536 device capacity; request shed" )
    (fun () ->
      raise
        (Errors.Serve_overloaded
           {
             Errors.ov_queue_depth = 64;
             ov_queue_limit = 64;
             ov_warm_bytes = 4096;
             ov_capacity = 65536;
             ov_reason = "queue";
           }));
  golden "overloaded unbounded"
    ( 9,
      "cgcm serve: overloaded (device-mem): queue 3 of 16, 512 warm bytes \
       of unbounded device capacity; request shed" )
    (fun () ->
      raise
        (Errors.Serve_overloaded
           {
             Errors.ov_queue_depth = 3;
             ov_queue_limit = 16;
             ov_warm_bytes = 512;
             ov_capacity = max_int;
             ov_reason = "device-mem";
           }));
  golden "deadline"
    ( 10,
      "cgcm serve: deadline exceeded: request used up its budget of 20000 \
       fuel" )
    (fun () -> raise (Errors.Serve_deadline { dl_deadline = 20000 }));
  golden "circuit open"
    ( 11,
      "cgcm serve: circuit open for tenant alice after 3 consecutive \
       failures; only degraded (CPU-fallback) execution is available" )
    (fun () ->
      raise (Errors.Serve_circuit_open { co_tenant = "alice"; co_failures = 3 }))

(* Lifecycle refusals: a busy socket at startup, a wedged daemon at
   request time. *)
let test_serve_lifecycle_text () =
  golden "socket busy"
    ( 12,
      "cgcm serve: socket /tmp/cgcm.sock is answered by a live daemon; \
       refusing to start (stop it, or pick another --socket path)" )
    (fun () ->
      raise (Errors.Serve_socket_busy { sb_path = "/tmp/cgcm.sock" }));
  golden "request timeout"
    ( 13,
      "cgcm request: no reply from the daemon at /tmp/cgcm.sock within 250 \
       ms; it may be wedged or dead" )
    (fun () ->
      raise
        (Errors.Serve_request_timeout
           { rt_socket = "/tmp/cgcm.sock"; rt_timeout_ms = 250 }))

let test_unknown_exceptions_pass_through () =
  check Alcotest.bool "Not_found unclassified" true
    (Diagnostics.classify Not_found = None)

let tests =
  [
    Alcotest.test_case "exit codes 2-13" `Quick test_exit_codes;
    Alcotest.test_case "frontend diagnostics" `Quick test_frontend_diagnostics;
    Alcotest.test_case "dynamic diagnostics" `Quick test_dynamic_diagnostics;
    Alcotest.test_case "runtime error text" `Quick test_runtime_error_text;
    Alcotest.test_case "device fault text" `Quick test_device_fault_text;
    Alcotest.test_case "coherence violation text" `Quick test_violation_text;
    Alcotest.test_case "verifier text" `Quick test_verifier_text;
    Alcotest.test_case "serve rejection text" `Quick test_serve_rejection_text;
    Alcotest.test_case "serve lifecycle text" `Quick test_serve_lifecycle_text;
    Alcotest.test_case "unknown exceptions pass through" `Quick
      test_unknown_exceptions_pass_through;
  ]
