(* The shadow-memory coherence sanitizer: direct hook-level unit tests
   for each violation class, cleanliness over the whole benchmark suite
   at both optimization levels, cleanliness under the fault-soak plans,
   and the mutation test — a deliberately dropped unmap must be caught
   as a stale host read naming the unit and the offending instruction. *)

module Sanitizer = Cgcm_sanitizer.Sanitizer
module Errors = Cgcm_support.Errors
module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Runtime = Cgcm_runtime.Runtime
module Faults = Cgcm_gpusim.Faults
module Ir = Cgcm_ir.Ir

let check = Alcotest.check

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let dev_lo = 0x40_0000
let mk () = Sanitizer.create ~dev_lo ()

let expect_violation kind f =
  match f () with
  | () -> Alcotest.failf "expected %s" (Errors.violation_kind_name kind)
  | exception Errors.Coherence_violation v ->
    check Alcotest.string "violation kind"
      (Errors.violation_kind_name kind)
      (Errors.violation_kind_name v.Errors.v_kind);
    v

(* ------------------------------------------------------------------ *)
(* Hook-level unit tests. The shadow is driven directly, with no
   run-time underneath: the sanitizer must judge coherence from its own
   byte maps alone. *)

let base = 0x1000
let dp = dev_lo + 0x100

let test_stale_device_read () =
  let s = mk () in
  Sanitizer.on_register s ~base ~size:64 ~kind:"heap" ();
  Sanitizer.on_map s ~base ~devptr:dp;
  (* mapped but never transferred: every byte of the device copy is
     stale until an HtoD covers it *)
  let v =
    expect_violation Errors.Stale_device_read (fun () ->
        Sanitizer.on_load s ~addr:(dp + 8) ~len:8 ~fn:"k" ~kernel:true)
  in
  check Alcotest.int "offset" 8 v.Errors.v_offset;
  check Alcotest.int "unit base" base v.Errors.v_unit.Errors.u_base;
  (* after the transfer the same read is clean *)
  let s = mk () in
  Sanitizer.on_register s ~base ~size:64 ~kind:"heap" ();
  Sanitizer.on_map s ~base ~devptr:dp;
  Sanitizer.on_htod s ~host_addr:base ~dev_addr:dp ~len:64 ~label:"map";
  Sanitizer.on_load s ~addr:(dp + 8) ~len:8 ~fn:"k" ~kernel:true;
  (* ...until the host writes the byte again *)
  Sanitizer.on_store s ~addr:(base + 8) ~len:8 ~fn:"main" ~kernel:false;
  ignore
    (expect_violation Errors.Stale_device_read (fun () ->
         Sanitizer.on_load s ~addr:(dp + 8) ~len:8 ~fn:"k" ~kernel:true));
  (* a kernel *store* to the stale byte is fine (blind overwrite) *)
  Sanitizer.on_store s ~addr:(dp + 8) ~len:8 ~fn:"k" ~kernel:true;
  Sanitizer.on_load s ~addr:(dp + 8) ~len:8 ~fn:"k" ~kernel:true

let test_stale_host_read () =
  let s = mk () in
  Sanitizer.on_register s ~base ~size:64 ~kind:"heap" ();
  Sanitizer.on_map s ~base ~devptr:dp;
  Sanitizer.on_htod s ~host_addr:base ~dev_addr:dp ~len:64 ~label:"map";
  Sanitizer.on_store s ~addr:dp ~len:8 ~fn:"k" ~kernel:true;
  (* the device copy is newer and was never written back *)
  let v =
    expect_violation Errors.Stale_host_read (fun () ->
        Sanitizer.on_load s ~addr:base ~len:8 ~fn:"main" ~kernel:false)
  in
  check Alcotest.bool "mentions the missing unmap" true
    (contains ~sub:"unmap" v.Errors.v_detail)

let test_lost_host_update () =
  let s = mk () in
  Sanitizer.on_register s ~base ~size:64 ~kind:"heap" ();
  Sanitizer.on_map s ~base ~devptr:dp;
  Sanitizer.on_htod s ~host_addr:base ~dev_addr:dp ~len:64 ~label:"map";
  (* host updates a byte, then a whole-unit write-back clobbers it *)
  Sanitizer.on_store s ~addr:(base + 16) ~len:8 ~fn:"main" ~kernel:false;
  let v =
    expect_violation Errors.Lost_host_update (fun () ->
        Sanitizer.on_dtoh s ~host_addr:base ~dev_addr:dp ~len:64 ~label:"unmap")
  in
  check Alcotest.int "first clobbered byte" 16 v.Errors.v_offset

let test_premature_release_and_double_free () =
  let s = mk () in
  Sanitizer.on_register s ~base ~size:64 ~kind:"heap" ();
  Sanitizer.on_map s ~base ~devptr:dp;
  (* freeing the device copy while the unit is still mapped *)
  ignore
    (expect_violation Errors.Premature_release (fun () ->
         Sanitizer.on_dev_free s ~addr:dp ~op:"cuMemFree"));
  (* after release the free is legitimate; a second free is not *)
  Sanitizer.on_release s ~base ~op:"release";
  Sanitizer.on_dev_free s ~addr:dp ~op:"cuMemFree";
  ignore
    (expect_violation Errors.Double_free (fun () ->
         Sanitizer.on_dev_free s ~addr:dp ~op:"cuMemFree"))

let test_unregister_while_mapped () =
  let s = mk () in
  Sanitizer.on_register s ~base ~size:64 ~kind:"alloca" ();
  Sanitizer.on_map s ~base ~devptr:dp;
  ignore
    (expect_violation Errors.Premature_release (fun () ->
         Sanitizer.on_unregister s ~base ~op:"expireAlloca"))

let test_dead_device_value_is_lost () =
  (* device holds the freshest value, release path frees it without a
     write-back: the value is destroyed, and the next host read of those
     bytes must flag *)
  let s = mk () in
  Sanitizer.on_register s ~base ~size:64 ~kind:"heap" ();
  Sanitizer.on_map s ~base ~devptr:dp;
  Sanitizer.on_htod s ~host_addr:base ~dev_addr:dp ~len:64 ~label:"map";
  Sanitizer.on_store s ~addr:(dp + 24) ~len:8 ~fn:"k" ~kernel:true;
  Sanitizer.on_release s ~base ~op:"release";
  Sanitizer.on_dev_free s ~addr:dp ~op:"cuMemFree";
  (* untouched bytes are still fine *)
  Sanitizer.on_load s ~addr:base ~len:8 ~fn:"main" ~kernel:false;
  let v =
    expect_violation Errors.Stale_host_read (fun () ->
        Sanitizer.on_load s ~addr:(base + 24) ~len:8 ~fn:"main" ~kernel:false)
  in
  check Alcotest.bool "mentions the value dying on the device" true
    (contains ~sub:"died on the device" v.Errors.v_detail)

let test_redundant_transfers_are_stats_not_errors () =
  let s = mk () in
  Sanitizer.on_register s ~base ~size:64 ~kind:"heap" ();
  Sanitizer.on_map s ~base ~devptr:dp;
  Sanitizer.on_htod s ~host_addr:base ~dev_addr:dp ~len:64 ~label:"map";
  (* nothing changed on the host: the second copy is provably redundant
     but legal (the whole-unit protocol does this constantly) *)
  Sanitizer.on_htod s ~host_addr:base ~dev_addr:dp ~len:64 ~label:"map";
  let r = Sanitizer.report s in
  check Alcotest.int "redundant htod" 1 r.Sanitizer.r_redundant_htod;
  check Alcotest.int "redundant bytes" 64 r.Sanitizer.r_redundant_htod_bytes;
  (* an untouched write-back is redundant too *)
  Sanitizer.on_dtoh s ~host_addr:base ~dev_addr:dp ~len:64 ~label:"unmap";
  Sanitizer.on_dtoh s ~host_addr:base ~dev_addr:dp ~len:64 ~label:"unmap";
  let r = Sanitizer.report s in
  check Alcotest.int "redundant dtoh" 2 r.Sanitizer.r_redundant_dtoh

(* ------------------------------------------------------------------ *)
(* Whole-suite cleanliness: every benchmark at both levels, sanitizer
   armed, output identical to the unsanitized run. *)

let test_suite_clean () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (lname, exec) ->
          let _, plain = Pipeline.run exec src in
          match Pipeline.run ~sanitize:true exec src with
          | exception Errors.Coherence_violation v ->
            Alcotest.failf "%s/%s: %s" name lname (Errors.render_violation v)
          | _, r ->
            check Alcotest.string
              (Printf.sprintf "%s/%s: output" name lname)
              plain.Interp.output r.Interp.output;
            let rep =
              match r.Interp.san_report with
              | Some rep -> rep
              | None -> Alcotest.failf "%s/%s: no sanitizer report" name lname
            in
            check Alcotest.bool
              (Printf.sprintf "%s/%s: checked accesses" name lname)
              true
              (rep.Sanitizer.r_checks > 0))
        [ ("unopt", Pipeline.Cgcm_unoptimized); ("opt", Pipeline.Cgcm_optimized) ])
    Test_pipeline.small_suite

(* Both engines must sanitize identically (the hooks sit on different
   decode paths). *)
let test_engines_agree_under_sanitizer () =
  List.iter
    (fun (name, src) ->
      let _, a =
        Pipeline.run ~sanitize:true ~engine:Interp.Closures
          Pipeline.Cgcm_optimized src
      in
      let _, b =
        Pipeline.run ~sanitize:true ~engine:Interp.Tree_walk
          Pipeline.Cgcm_optimized src
      in
      check Alcotest.string (name ^ ": output") a.Interp.output b.Interp.output;
      (* the closure engine promotes unregistered scalar allocas to
         registers, so raw access counts legitimately differ — but the
         driver-side view (transfers, redundancy) must be identical *)
      let ra = Option.get a.Interp.san_report
      and rb = Option.get b.Interp.san_report in
      check Alcotest.int (name ^ ": transfers") ra.Sanitizer.r_transfers
        rb.Sanitizer.r_transfers;
      check Alcotest.int
        (name ^ ": redundant htod")
        ra.Sanitizer.r_redundant_htod rb.Sanitizer.r_redundant_htod;
      check Alcotest.int
        (name ^ ": redundant dtoh")
        ra.Sanitizer.r_redundant_dtoh rb.Sanitizer.r_redundant_dtoh)
    [ List.nth Test_pipeline.small_suite 0; List.nth Test_pipeline.small_suite 5 ]

(* Sanitizer under the fault-soak plans: recovery (eviction, retry, CPU
   fallback) must also be coherent, not just output-correct. *)
let test_soak_clean () =
  List.iter
    (fun (name, src) ->
      let _, base = Pipeline.run Pipeline.Cgcm_optimized src in
      List.iter
        (fun seed ->
          let faults =
            Faults.parse
              (Printf.sprintf "%d:alloc@1,htod@2,dtoh%%0.1,launch@1,launch%%0.05"
                 seed)
          in
          let caps =
            let p = base.Interp.dev_peak_bytes in
            [ (p * 6 / 10) + 1; (p * 8 / 10) + 1; p ]
          in
          let rec attempt = function
            | [] -> Alcotest.failf "%s/seed %d: no cap succeeded" name seed
            | cap :: rest -> (
              match
                Pipeline.run ~sanitize:true ~faults ~device_mem:cap
                  Pipeline.Cgcm_optimized src
              with
              | exception Runtime.Runtime_error _ -> attempt rest
              | exception Errors.Device_error _ -> attempt rest
              | exception Errors.Coherence_violation v ->
                Alcotest.failf "%s/seed %d/cap %d: %s" name seed cap
                  (Errors.render_violation v)
              | _, r ->
                check Alcotest.string
                  (Printf.sprintf "%s/seed %d: output" name seed)
                  base.Interp.output r.Interp.output)
          in
          attempt caps)
        [ 1; 7; 42 ])
    (* a representative slice: one comm-bound, one gpu-bound, one jagged *)
    (List.filter
       (fun (n, _) -> List.mem n [ "atax"; "gemm"; "srad"; "nw"; "hotspot" ])
       Test_pipeline.small_suite)

(* ------------------------------------------------------------------ *)
(* The mutation test: drop one compiler-inserted unmap and the
   sanitizer must name the unit and the offending host instruction. *)

let mutation_src =
  "global float X[512];\n\
   global float Y[512];\n\
   void init() {\n\
  \  for (int i = 0; i < 512; i++) { X[i] = i * 0.5; Y[i] = 512 - i; }\n\
   }\n\
   void saxpy(float a) {\n\
  \  for (int t = 0; t < 5; t++) {\n\
  \    for (int i = 0; i < 512; i++) { Y[i] = a * X[i] + Y[i]; }\n\
  \  }\n\
   }\n\
   int main() {\n\
  \  init();\n\
  \  saxpy(2.0);\n\
  \  float sum = 0.0;\n\
  \  for (int i = 0; i < 512; i++) { sum = sum + Y[i]; }\n\
  \  print(sum);\n\
  \  return 0;\n\
   }"

let test_dropped_unmap_detected () =
  (* try every unmap site; at least one drop must surface as a stale
     host read naming the unit (the others may be healed by the next
     map's epoch check — that's the run-time doing its job) *)
  let caught = ref None in
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let c = Pipeline.compile ~level:Pipeline.Managed mutation_src in
    if
      Cgcm_transform.Comm_mgmt.drop_nth_call c.Pipeline.modul
        ~intrinsic:Ir.Intrinsic.unmap ~n:!n
    then begin
      (match
         Interp.run
           ~config:{ Interp.default_config with Interp.sanitize = true }
           c.Pipeline.modul
       with
      | exception Errors.Coherence_violation v -> caught := Some v
      | _ -> ());
      incr n
    end
    else continue_ := false
  done;
  check Alcotest.bool "several unmap sites exist" true (!n >= 2);
  match !caught with
  | None -> Alcotest.fail "no dropped unmap was detected"
  | Some v ->
    check Alcotest.string "kind" "stale-host-read"
      (Errors.violation_kind_name v.Errors.v_kind);
    check (Alcotest.option Alcotest.string) "unit named" (Some "Y")
      v.Errors.v_unit.Errors.u_global;
    check Alcotest.bool "offending instruction is the host load" true
      (contains ~sub:"load" v.Errors.v_instr
      && contains ~sub:"main" v.Errors.v_instr);
    check Alcotest.bool "history is populated" true
      (List.length v.Errors.v_history > 0)

(* A dropped map on a heap unit: the kernel dereferences the raw host
   pointer, which the split model must reject one way or another — but
   never silently compute with. *)
let test_dropped_map_not_silent () =
  let src =
    "int main() {\n\
    \  int* p = (int*) malloc(64 * sizeof(int));\n\
    \  for (int i = 0; i < 64; i++) { p[i] = i; }\n\
    \  parallel for (int i = 0; i < 64; i++) { p[i] = p[i] * 3; }\n\
    \  int s = 0;\n\
    \  for (int i = 0; i < 64; i++) { s = s + p[i]; }\n\
    \  print(s);\n\
    \  return 0;\n\
     }"
  in
  let _, plain = Pipeline.run Pipeline.Cgcm_unoptimized src in
  let c = Pipeline.compile ~level:Pipeline.Managed src in
  check Alcotest.bool "dropped a map" true
    (Cgcm_transform.Comm_mgmt.drop_nth_call c.Pipeline.modul
       ~intrinsic:Ir.Intrinsic.map ~n:0);
  match
    Interp.run
      ~config:{ Interp.default_config with Interp.sanitize = true }
      c.Pipeline.modul
  with
  | exception Errors.Coherence_violation _ -> ()
  | exception Runtime.Runtime_error _ -> ()
  | exception Errors.Device_error _ -> ()
  | exception Cgcm_memory.Memspace.Fault _ -> ()
  | exception Interp.Exec_error _ -> ()
  | r ->
    if r.Interp.output = plain.Interp.output then
      Alcotest.fail "dropped map went unnoticed and computed the right answer"

let tests =
  [
    Alcotest.test_case "stale device read" `Quick test_stale_device_read;
    Alcotest.test_case "stale host read" `Quick test_stale_host_read;
    Alcotest.test_case "lost host update" `Quick test_lost_host_update;
    Alcotest.test_case "premature release / double free" `Quick
      test_premature_release_and_double_free;
    Alcotest.test_case "unregister while mapped" `Quick
      test_unregister_while_mapped;
    Alcotest.test_case "dead device value flags on host read" `Quick
      test_dead_device_value_is_lost;
    Alcotest.test_case "redundant transfers are statistics" `Quick
      test_redundant_transfers_are_stats_not_errors;
    Alcotest.test_case "benchmark suite sanitizes clean" `Slow test_suite_clean;
    Alcotest.test_case "engines agree under the sanitizer" `Quick
      test_engines_agree_under_sanitizer;
    Alcotest.test_case "fault soak sanitizes clean" `Slow test_soak_clean;
    Alcotest.test_case "dropped unmap is named" `Quick
      test_dropped_unmap_detected;
    Alcotest.test_case "dropped map is not silent" `Quick
      test_dropped_map_not_silent;
  ]
