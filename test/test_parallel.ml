(* Differential testing of the parallel (domain-pool) kernel engine
   against the sequential closure engine.

   The parallel engine shards every eligible DOALL launch across OCaml 5
   domains, so every program in the suite runs under both engines in
   every execution configuration, at several job counts, and must
   produce bit-identical outputs, simulated clocks, instruction counts,
   device/run-time stats, and traces — the join-order merge (output
   buffers, deferred dirty-span logs, instruction counts) is what makes
   that hold, and these tests are the referee. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Cost_model = Cgcm_gpusim.Cost_model
module Pool = Cgcm_support.Pool

let check = Alcotest.check

(* Force sharding on the scaled-down suite: every launch with at least
   two iterations is eligible, so the differential actually exercises
   cross-domain execution instead of the sequential fallback. *)
let par_cost = { Cost_model.default with Cost_model.par_min_trip = 2 }

let executions =
  [
    ("seq", Pipeline.Sequential);
    ("ie", Pipeline.Inspector_executor_exec);
    ("unopt", Pipeline.Cgcm_unoptimized);
    ("opt", Pipeline.Cgcm_optimized);
  ]

let test_differential (name, src) () =
  List.iter
    (fun (cname, ex) ->
      let _, closures =
        Pipeline.run ~cost:par_cost ~trace:true ~engine:Interp.Closures ex src
      in
      List.iter
        (fun jobs ->
          let _, parallel =
            Pipeline.run ~cost:par_cost ~trace:true ~engine:Interp.Parallel
              ~jobs ex src
          in
          Test_fastpath.check_equal_results
            (Printf.sprintf "%s/%s/j%d" name cname jobs)
            closures parallel)
        [ 2; 4 ])
    executions

(* --jobs 1 must select the exact sequential closure path: no pool, no
   shards, identical everything. *)
let test_jobs1_is_closures () =
  List.iter
    (fun pname ->
      let src = List.assoc pname Test_fastpath.small_programs in
      let _, closures =
        Pipeline.run ~cost:par_cost ~trace:true ~engine:Interp.Closures
          Pipeline.Cgcm_optimized src
      in
      let _, parallel =
        Pipeline.run ~cost:par_cost ~trace:true ~engine:Interp.Parallel ~jobs:1
          Pipeline.Cgcm_optimized src
      in
      Test_fastpath.check_equal_results (pname ^ "/j1") closures parallel)
    [ "gemm"; "srad"; "kmeans"; "blackscholes" ]

(* Prove the pool actually engages (the differential would be vacuous if
   every launch silently fell back to the sequential path): the pool
   spawns workers lazily, exactly when a launch shards, and no other
   test asks for more than 4 domains — so after one run at jobs = 5 the
   pool must be able to bring 5 domains to bear. *)
let test_pool_engages () =
  let src = List.assoc "gemm" Test_fastpath.small_programs in
  let _, r =
    Pipeline.run ~cost:par_cost ~engine:Interp.Parallel ~jobs:5
      Pipeline.Cgcm_optimized src
  in
  check Alcotest.bool "ran" true (String.length r.Interp.output > 0);
  check Alcotest.bool "pool grew to 5 domains" true (Pool.size () >= 5)

(* The sanitizer's byte-version maps are updated concurrently from the
   shards (disjoint bytes by the DOALL guarantee; an atomic check
   counter): a sanitized parallel run must stay violation-free and agree
   with the sanitized sequential run wherever the sanitizer's own
   counters are not involved. *)
let test_sanitized_parallel () =
  List.iter
    (fun pname ->
      let src = List.assoc pname Test_fastpath.small_programs in
      let _, closures =
        Pipeline.run ~cost:par_cost ~sanitize:true ~engine:Interp.Closures
          Pipeline.Cgcm_optimized src
      in
      let _, parallel =
        Pipeline.run ~cost:par_cost ~sanitize:true ~engine:Interp.Parallel
          ~jobs:4 Pipeline.Cgcm_optimized src
      in
      check Alcotest.string (pname ^ " sanitized output") closures.Interp.output
        parallel.Interp.output;
      check Alcotest.int64 (pname ^ " sanitized exit") closures.Interp.exit_code
        parallel.Interp.exit_code;
      match parallel.Interp.san_report with
      | None -> Alcotest.fail "sanitizer did not run"
      | Some rep ->
        check Alcotest.bool (pname ^ " checks happened") true
          (rep.Cgcm_sanitizer.Sanitizer.r_checks > 0))
    [ "gemm"; "hotspot"; "atax" ]

(* Fault-soak: the parallel engine under an injected-fault driver and a
   tight device-memory cap must degrade exactly like the closure engine
   (evictions, retries, CPU fallbacks are all main-domain work; a launch
   whose globals were evicted falls back to the sequential path and
   re-resolves through the run-time). Both engines issue identical
   driver-call sequences, so a replayable fault plan fires identically —
   including runs the driver legitimately cannot recover, which must
   fail with the same error. *)
let test_faulty_parallel () =
  List.iter
    (fun pname ->
      let src = List.assoc pname Test_fastpath.small_programs in
      let _, clean =
        Pipeline.run ~cost:par_cost Pipeline.Cgcm_optimized src
      in
      let cap = (clean.Interp.dev_peak_bytes * 8 / 10) + 1 in
      List.iter
        (fun seed ->
          let faults =
            Cgcm_gpusim.Faults.parse
              (Printf.sprintf "%d:alloc@1,htod@2,dtoh%%0.1,launch@1" seed)
          in
          let attempt engine jobs =
            match
              Pipeline.run ~cost:par_cost ~engine ~jobs ~faults
                ~device_mem:cap ~trace:true Pipeline.Cgcm_optimized src
            with
            | _, r -> Ok r
            | exception e -> Error (Printexc.to_string e)
          in
          let where = Printf.sprintf "%s/faults:%d" pname seed in
          match (attempt Interp.Closures 0, attempt Interp.Parallel 4) with
          | Ok c, Ok p -> Test_fastpath.check_equal_results where c p
          | Error c, Error p -> check Alcotest.string (where ^ " error") c p
          | Ok _, Error p ->
            Alcotest.failf "%s: closures succeeded, parallel failed: %s" where
              p
          | Error c, Ok _ ->
            Alcotest.failf "%s: parallel succeeded, closures failed: %s" where
              c)
        [ 1; 7; 42 ])
    [ "gemm"; "jacobi-2d-imper"; "nw" ]

let tests =
  List.map
    (fun (name, src) ->
      Alcotest.test_case ("parallel vs closures: " ^ name) `Quick
        (test_differential (name, src)))
    Test_fastpath.small_programs
  @ [
      Alcotest.test_case "jobs=1 is the closure engine" `Quick
        test_jobs1_is_closures;
      Alcotest.test_case "domain pool engages" `Quick test_pool_engages;
      Alcotest.test_case "sanitized parallel agrees" `Quick
        test_sanitized_parallel;
      Alcotest.test_case "fault soak parallel vs closures" `Slow
        test_faulty_parallel;
    ]
