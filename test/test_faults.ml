(* Fault injection and self-healing: the deterministic fault-plan DSL,
   the structured error taxonomy, device OOM + eviction under a finite
   memory cap, transfer retry, CPU fallback, the paranoid invariant
   checker, and the fault-soak differential over the whole benchmark
   suite. *)

module Memspace = Cgcm_memory.Memspace
module Device = Cgcm_gpusim.Device
module Cost_model = Cgcm_gpusim.Cost_model
module Faults = Cgcm_gpusim.Faults
module Errors = Cgcm_support.Errors
module Runtime = Cgcm_runtime.Runtime
module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Fault-plan DSL                                                      *)

let test_parse () =
  let s = Faults.parse "42" in
  check Alcotest.int "seed" 42 s.Faults.seed;
  check Alcotest.int "default clauses" 4 (List.length s.Faults.clauses);
  List.iter
    (fun c ->
      match c.Faults.c_mode with
      | Faults.Prob p -> check (Alcotest.float 0.0) "default p" 0.05 p
      | Faults.Nth _ -> Alcotest.fail "default plan should be probabilistic")
    s.Faults.clauses;
  let s = Faults.parse "7:alloc@3,htod%0.25" in
  check Alcotest.int "seed" 7 s.Faults.seed;
  (match s.Faults.clauses with
  | [
   { Faults.c_op = Faults.Alloc; c_mode = Faults.Nth 3 };
   { Faults.c_op = Faults.Htod; c_mode = Faults.Prob p };
  ] ->
    check (Alcotest.float 0.0) "p" 0.25 p
  | _ -> Alcotest.fail "unexpected clauses");
  (* round trip *)
  let rt = Faults.parse (Faults.to_string s) in
  check Alcotest.bool "round trip" true (rt = s);
  (* malformed plans *)
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted malformed plan %S" bad)
    [ ""; "x"; "42:bogus@1"; "42:alloc@0"; "42:alloc@x"; "42:htod%1.5"; "42:htod" ]

let drive t ops = List.map (fun op -> Faults.fires t op) ops

let test_replay_determinism () =
  let spec = Faults.parse "123:alloc%0.3,htod%0.3,dtoh%0.3,launch@2" in
  let ops =
    List.init 200 (fun i ->
        match i mod 4 with
        | 0 -> Faults.Alloc
        | 1 -> Faults.Htod
        | 2 -> Faults.Dtoh
        | _ -> Faults.Launch)
  in
  let a = drive (Faults.make spec) ops in
  let b = drive (Faults.make spec) ops in
  check Alcotest.bool "same plan, same schedule" true (a = b);
  let c = drive (Faults.make (Faults.parse "124:alloc%0.3,htod%0.3,dtoh%0.3,launch@2")) ops in
  check Alcotest.bool "different seed, different schedule" true (a <> c)

let test_nth_fires_once () =
  let t = Faults.make (Faults.parse "9:launch@2") in
  let hits =
    List.init 6 (fun _ -> Faults.fires t Faults.Launch)
  in
  check Alcotest.bool "only the 2nd launch" true
    (hits = [ false; true; false; false; false; false ]);
  (* other ops draw from independent streams and never fire *)
  check Alcotest.bool "alloc untouched" false (Faults.fires t Faults.Alloc)

let test_streams_independent () =
  (* adding a clause for one operation must not perturb another's
     schedule: the htod stream draws the same values either way *)
  let ops = List.init 100 (fun _ -> Faults.Htod) in
  let a = drive (Faults.make (Faults.parse "5:htod%0.2")) ops in
  let b = drive (Faults.make (Faults.parse "5:htod%0.2,alloc%0.9")) ops in
  check Alcotest.bool "htod schedule unperturbed" true (a = b)

(* ------------------------------------------------------------------ *)
(* Structured error taxonomy: rendered diagnostics carry the unit      *)

let mk ?faults ?device_mem () =
  let host =
    Memspace.create ~name:"host" ~range_lo:0x10_0000 ~range_hi:0x4000_0000
  in
  let cost =
    match device_mem with
    | Some bytes -> { Cost_model.default with Cost_model.device_mem_bytes = bytes }
    | None -> Cost_model.default
  in
  let dev = Device.create ?faults:(Option.map Faults.make faults) cost in
  (host, dev, Runtime.create ~paranoid:true ~host ~dev ())

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let assert_mentions what rendered needles =
  List.iter
    (fun n ->
      if not (contains rendered n) then
        Alcotest.failf "%s: diagnostic lacks %S:\n%s" what n rendered)
    needles

let test_release_underflow_diagnostic () =
  let _, _, rt = mk () in
  let base = Memspace.alloc rt.Runtime.host 48 in
  Runtime.register_heap rt ~base ~size:48;
  ignore (Runtime.map rt base);
  Runtime.unmap rt base;
  Runtime.release rt base;
  match Runtime.release rt base with
  | exception Runtime.Runtime_error e ->
    check Alcotest.string "op" "release" e.Errors.op;
    check Alcotest.(option int) "addr" (Some base) e.Errors.addr;
    assert_mentions "release underflow" (Errors.render_runtime e)
      [
        "release";
        Printf.sprintf "0x%x" base;
        "size=48";
        "refcount=0";
        "epoch=";
        "allocation map";
      ]
  | _ -> Alcotest.fail "expected refcount underflow error"

let test_unregister_while_mapped_diagnostic () =
  let _, _, rt = mk () in
  let base = Memspace.alloc rt.Runtime.host 32 in
  Runtime.register_heap rt ~base ~size:32;
  ignore (Runtime.map rt base);
  match Runtime.unregister_heap rt ~base with
  | exception Runtime.Runtime_error e ->
    check Alcotest.string "op" "free" e.Errors.op;
    assert_mentions "free while mapped" (Errors.render_runtime e)
      [ Printf.sprintf "0x%x" base; "size=32"; "refcount=1" ]
  | _ -> Alcotest.fail "expected free-while-mapped error"

let test_expire_alloca_while_mapped_diagnostic () =
  let _, _, rt = mk () in
  let base = Memspace.alloc rt.Runtime.host 24 in
  Runtime.declare_alloca rt ~base ~size:24;
  ignore (Runtime.map rt base);
  match Runtime.expire_alloca rt ~base with
  | exception Runtime.Runtime_error e ->
    check Alcotest.string "op" "expireAlloca" e.Errors.op;
    assert_mentions "expire while mapped" (Errors.render_runtime e)
      [ Printf.sprintf "0x%x" base; "size=24"; "refcount=1" ]
  | _ -> Alcotest.fail "expected expire-while-mapped error"

let test_oom_diagnostic_dumps_map () =
  (* an unrecoverable OOM renders the device fault and the whole
     allocation map, so the user can see what is pinning memory *)
  let _, _, rt = mk ~device_mem:100 () in
  let b1 = Memspace.alloc rt.Runtime.host 64 in
  Runtime.register_heap rt ~base:b1 ~size:64;
  ignore (Runtime.map rt b1);
  let b2 = Memspace.alloc rt.Runtime.host 64 in
  Runtime.register_heap rt ~base:b2 ~size:64;
  match Runtime.map rt b2 with
  | exception Runtime.Runtime_error e ->
    (match e.Errors.device with
    | Some (Errors.Oom { requested; capacity; injected; _ }) ->
      check Alcotest.int "requested" 64 requested;
      check Alcotest.int "capacity" 100 capacity;
      check Alcotest.bool "genuine, not injected" false injected
    | _ -> Alcotest.fail "expected an OOM device fault");
    assert_mentions "oom" (Errors.render_runtime e)
      [
        "device out of memory";
        Printf.sprintf "0x%x" b1;
        Printf.sprintf "0x%x" b2;
        "allocation map";
      ]
  | _ -> Alcotest.fail "expected unrecoverable OOM (b1 is still mapped)"

(* ------------------------------------------------------------------ *)
(* OOM recovery: eviction of zero-refcount residents                   *)

let declare_two_globals rt =
  let host = rt.Runtime.host in
  let ga = Memspace.alloc host 64 in
  Runtime.declare_global rt ~name:"gA" ~base:ga ~size:64 ~read_only:false;
  let gb = Memspace.alloc host 64 in
  Runtime.declare_global rt ~name:"gB" ~base:gb ~size:64 ~read_only:false;
  (ga, gb)

let test_exact_fit_eviction () =
  (* capacity of exactly one unit: mapping the second must evict the
     first (refcount 0, but globals stay resident), and an exact fit
     must succeed — live + size > capacity is a strict comparison *)
  let _, _, rt = mk ~device_mem:64 () in
  let ga, gb = declare_two_globals rt in
  ignore (Runtime.map rt ga);
  Runtime.unmap rt ga;
  Runtime.release rt ga;
  let a = Runtime.lookup_unit rt ga in
  check Alcotest.bool "global stays resident at refcount 0" true
    (a.Runtime.devptr <> None);
  ignore (Runtime.map rt gb);
  check Alcotest.int "one eviction" 1 rt.Runtime.stats.Runtime.evictions;
  check Alcotest.bool "gA evicted" true (a.Runtime.devptr = None);
  check Alcotest.bool "gA marked" true a.Runtime.evicted;
  let b = Runtime.lookup_unit rt gb in
  check Alcotest.bool "gB resident" true (b.Runtime.devptr <> None);
  Runtime.unmap rt gb;
  Runtime.release rt gb

let test_one_byte_short_is_unrecoverable () =
  let _, _, rt = mk ~device_mem:63 () in
  let ga, _ = declare_two_globals rt in
  match Runtime.map rt ga with
  | exception Runtime.Runtime_error e -> (
    match e.Errors.device with
    | Some (Errors.Oom { requested; capacity; _ }) ->
      check Alcotest.int "requested" 64 requested;
      check Alcotest.int "capacity" 63 capacity
    | _ -> Alcotest.fail "expected OOM")
  | _ -> Alcotest.fail "63-byte device cannot hold a 64-byte unit"

let test_eviction_writes_back_dirty () =
  (* a kernel wrote the global on the device; eviction must write the
     device copy back before revoking residence, and a later map must
     restore the written-back value *)
  let host =
    Memspace.create ~name:"host" ~range_lo:0x10_0000 ~range_hi:0x4000_0000
  in
  let dev =
    Device.create { Cost_model.default with Cost_model.device_mem_bytes = 64 }
  in
  (* whole-unit protocol, as in the unoptimized configuration *)
  let rt = Runtime.create ~dirty_spans:false ~paranoid:true ~host ~dev () in
  let ga = Memspace.alloc host 64 in
  Runtime.declare_global rt ~name:"gA" ~base:ga ~size:64 ~read_only:false;
  let gb = Memspace.alloc host 64 in
  Runtime.declare_global rt ~name:"gB" ~base:gb ~size:64 ~read_only:false;
  Memspace.store_i64 host ga 7L;
  let da = Runtime.map rt ga in
  Memspace.store_i64 dev.Device.mem da 99L;
  (* kernel ran *)
  Runtime.bump_epoch rt;
  Runtime.release rt ga;
  check Alcotest.int64 "host still stale" 7L (Memspace.load_i64 host ga);
  ignore (Runtime.map rt gb);
  check Alcotest.int64 "eviction wrote back" 99L (Memspace.load_i64 host ga);
  Runtime.unmap rt gb;
  Runtime.release rt gb;
  (* and the restored copy carries the kernel's value *)
  let da' = Runtime.map rt ga in
  check Alcotest.int64 "restored on device" 99L
    (Memspace.load_i64 dev.Device.mem da');
  Runtime.unmap rt ga;
  Runtime.release rt ga

let test_injected_oom_retries () =
  (* an injected (not capacity) allocation fault heals by retrying *)
  let _, _, rt = mk ~faults:(Faults.parse "3:alloc@1") () in
  let base = Memspace.alloc rt.Runtime.host 32 in
  Runtime.register_heap rt ~base ~size:32;
  ignore (Runtime.map rt base);
  check Alcotest.bool "retried" true (rt.Runtime.stats.Runtime.retries >= 1);
  check Alcotest.bool "resident" true
    ((Runtime.lookup_unit rt base).Runtime.devptr <> None);
  Runtime.unmap rt base;
  Runtime.release rt base

(* ------------------------------------------------------------------ *)
(* Transfer retry                                                      *)

let test_transfer_retry_heals () =
  let _, dev, rt = mk ~faults:(Faults.parse "5:htod@1,dtoh@1") () in
  let host = rt.Runtime.host in
  let base = Memspace.alloc host 32 in
  Runtime.register_heap rt ~base ~size:32;
  Memspace.store_i64 host base 11L;
  let d = Runtime.map rt base in
  check Alcotest.int64 "copied despite fault" 11L
    (Memspace.load_i64 dev.Device.mem d);
  Memspace.store_i64 dev.Device.mem d 12L;
  Runtime.bump_epoch rt;
  Runtime.unmap rt base;
  check Alcotest.int64 "copied back despite fault" 12L
    (Memspace.load_i64 host base);
  check Alcotest.int "two retries" 2 rt.Runtime.stats.Runtime.retries;
  Runtime.release rt base

let test_transfer_retry_gives_up () =
  (* a permanently failing link exhausts the retry budget and surfaces
     as a structured runtime error wrapping the device fault *)
  let _, _, rt = mk ~faults:(Faults.parse "5:htod%1.0") () in
  let base = Memspace.alloc rt.Runtime.host 32 in
  Runtime.register_heap rt ~base ~size:32;
  match Runtime.map rt base with
  | exception Runtime.Runtime_error e -> (
    match e.Errors.device with
    | Some (Errors.Transfer_failed { injected; _ }) ->
      check Alcotest.bool "injected" true injected;
      assert_mentions "transfer" (Errors.render_runtime e) [ "HtoD"; "32" ]
    | _ -> Alcotest.fail "expected a transfer fault")
  | _ -> Alcotest.fail "a p=1.0 fault plan cannot heal"

(* ------------------------------------------------------------------ *)
(* Paranoid invariant checker                                          *)

let test_invariants_catch_corruption () =
  let corrupting f =
    let host =
      Memspace.create ~name:"host" ~range_lo:0x10_0000 ~range_hi:0x4000_0000
    in
    let dev = Device.create Cost_model.default in
    let rt = Runtime.create ~host ~dev () in
    let base = Memspace.alloc host 32 in
    Runtime.register_heap rt ~base ~size:32;
    ignore (Runtime.map rt base);
    let info = Runtime.lookup_unit rt base in
    f info;
    match Runtime.check_invariants rt with
    | exception Runtime.Runtime_error _ -> ()
    | _ -> Alcotest.fail "invariant checker missed the corruption"
  in
  corrupting (fun i -> i.Runtime.refcount <- -1);
  corrupting (fun i -> i.Runtime.devptr <- Some 0xdead_beef);
  corrupting (fun i -> i.Runtime.epoch <- 41);
  (* a devptr forgotten while the block lives = an orphaned device block *)
  corrupting (fun i -> i.Runtime.devptr <- None)

let test_clean_state_passes () =
  let _, _, rt = mk () in
  let base = Memspace.alloc rt.Runtime.host 32 in
  Runtime.register_heap rt ~base ~size:32;
  ignore (Runtime.map rt base);
  Runtime.bump_epoch rt;
  Runtime.unmap rt base;
  Runtime.release rt base;
  Runtime.check_invariants rt

(* ------------------------------------------------------------------ *)
(* End-to-end: CPU fallback and the crafted eviction program           *)

let test_launch_fallback_end_to_end () =
  let src = Cgcm_progs.Polybench.gemm ~n:10 () in
  let _, clean = Pipeline.run ~paranoid:true Pipeline.Cgcm_optimized src in
  let faults = Faults.parse "1:launch@1" in
  let _, r = Pipeline.run ~paranoid:true ~faults Pipeline.Cgcm_optimized src in
  check Alcotest.string "output identical" clean.Interp.output r.Interp.output;
  check Alcotest.int "one fallback" 1
    r.Interp.rt_stats.Runtime.cpu_fallbacks;
  check Alcotest.int "launches conserved"
    clean.Interp.dev_stats.Device.launches
    (r.Interp.dev_stats.Device.launches
    + r.Interp.rt_stats.Runtime.cpu_fallbacks);
  check Alcotest.bool "fallback costs CPU time" true
    (r.Interp.cpu_compute > clean.Interp.cpu_compute)

(* Two single-array phases: when phase 2 maps B the device (sized for
   one array) must evict A, and the final CPU sums check both survived
   the round trip through eviction. *)
let eviction_program =
  {|global float A[200];
global float B[200];
int main() {
  for (int i = 0; i < 200; i++) { A[i] = i * 0.5; }
  for (int i = 0; i < 200; i++) { A[i] = A[i] * 2.0 + 1.0; }
  for (int i = 0; i < 200; i++) { B[i] = 200 - i; }
  for (int i = 0; i < 200; i++) { B[i] = B[i] * 3.0; }
  float sa = 0.0;
  float sb = 0.0;
  for (int i = 0; i < 200; i++) { sa = sa + A[i]; }
  for (int i = 0; i < 200; i++) { sb = sb + B[i]; }
  print(sa); print(sb); return 0;
}
|}

let test_memory_pressure_forces_eviction () =
  let _, clean =
    Pipeline.run ~paranoid:true Pipeline.Cgcm_optimized eviction_program
  in
  let cap = clean.Interp.dev_peak_bytes - 1 in
  let _, r =
    Pipeline.run ~paranoid:true ~device_mem:cap Pipeline.Cgcm_optimized
      eviction_program
  in
  check Alcotest.string "output identical" clean.Interp.output r.Interp.output;
  check Alcotest.bool "evicted under pressure" true
    (r.Interp.rt_stats.Runtime.evictions >= 1);
  check Alcotest.int "leak-free" 0 r.Interp.leaks.Runtime.resident_nonglobal;
  check Alcotest.int "no device leaks" 0 r.Interp.leaks.Runtime.leaked_dev_blocks;
  check Alcotest.bool "capped peak honoured" true
    (r.Interp.dev_peak_bytes <= cap)

(* ------------------------------------------------------------------ *)
(* The fault soak: every benchmark, several plans, a tight memory cap  *)

let soak_seeds = [ 1; 7; 42 ]

let soak_spec seed =
  Faults.parse
    (Printf.sprintf "%d:alloc@1,htod@2,dtoh%%0.1,launch@1,launch%%0.05" seed)

let test_fault_soak () =
  let total = ref 0 in
  List.iter
    (fun (name, src) ->
      let _, base = Pipeline.run ~paranoid:true Pipeline.Cgcm_optimized src in
      check Alcotest.int
        (name ^ ": baseline leak-free")
        0 base.Interp.leaks.Runtime.resident_nonglobal;
      List.iter
        (fun seed ->
          let faults = soak_spec seed in
          (* smallest cap first; genuine OOM with everything pinned is a
             legitimate unrecoverable outcome, so fall back to a looser
             cap (the cap is about exercising eviction, not mandating
             it) *)
          let caps =
            let p = base.Interp.dev_peak_bytes in
            [ (p * 6 / 10) + 1; (p * 8 / 10) + 1; p ]
          in
          let rec attempt = function
            | [] -> Alcotest.failf "%s/seed %d: no cap succeeded" name seed
            | cap :: rest -> (
              match
                Pipeline.run ~paranoid:true ~faults ~device_mem:cap
                  Pipeline.Cgcm_optimized src
              with
              | exception Runtime.Runtime_error _ -> attempt rest
              | exception Errors.Device_error _ -> attempt rest
              | _, r ->
                check Alcotest.string
                  (Printf.sprintf "%s/seed %d/cap %d: output" name seed cap)
                  base.Interp.output r.Interp.output;
                check Alcotest.int
                  (Printf.sprintf "%s/seed %d: exit" name seed)
                  0
                  (Int64.compare base.Interp.exit_code r.Interp.exit_code);
                let l = r.Interp.leaks in
                if
                  l.Runtime.resident_nonglobal <> 0
                  || l.Runtime.refcount_sum <> 0
                  || l.Runtime.leaked_dev_blocks <> 0
                then
                  Alcotest.failf "%s/seed %d: leaks after recovery" name seed;
                (* the run-time call pattern is fault-invariant ... *)
                let bs = base.Interp.rt_stats and rs = r.Interp.rt_stats in
                check Alcotest.int
                  (Printf.sprintf "%s/seed %d: map calls" name seed)
                  bs.Runtime.map_calls rs.Runtime.map_calls;
                check Alcotest.int
                  (Printf.sprintf "%s/seed %d: release calls" name seed)
                  bs.Runtime.release_calls rs.Runtime.release_calls;
                (* ... and every failed launch is accounted as a CPU
                   fallback, never lost *)
                check Alcotest.int
                  (Printf.sprintf "%s/seed %d: launches conserved" name seed)
                  base.Interp.dev_stats.Device.launches
                  (r.Interp.dev_stats.Device.launches
                  + rs.Runtime.cpu_fallbacks);
                total :=
                  !total + rs.Runtime.evictions + rs.Runtime.retries
                  + rs.Runtime.cpu_fallbacks)
          in
          attempt caps)
        soak_seeds)
    Test_pipeline.small_suite;
  check Alcotest.bool "the soak exercised the recovery paths" true (!total > 0)

let tests =
  [
    Alcotest.test_case "fault-plan parsing" `Quick test_parse;
    Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
    Alcotest.test_case "nth-call clause fires once" `Quick test_nth_fires_once;
    Alcotest.test_case "per-op streams independent" `Quick
      test_streams_independent;
    Alcotest.test_case "release underflow diagnostic" `Quick
      test_release_underflow_diagnostic;
    Alcotest.test_case "free-while-mapped diagnostic" `Quick
      test_unregister_while_mapped_diagnostic;
    Alcotest.test_case "expire-while-mapped diagnostic" `Quick
      test_expire_alloca_while_mapped_diagnostic;
    Alcotest.test_case "oom diagnostic dumps the map" `Quick
      test_oom_diagnostic_dumps_map;
    Alcotest.test_case "exact-fit eviction" `Quick test_exact_fit_eviction;
    Alcotest.test_case "one byte short is unrecoverable" `Quick
      test_one_byte_short_is_unrecoverable;
    Alcotest.test_case "eviction writes back dirty data" `Quick
      test_eviction_writes_back_dirty;
    Alcotest.test_case "injected oom heals by retrying" `Quick
      test_injected_oom_retries;
    Alcotest.test_case "transfer retry heals" `Quick test_transfer_retry_heals;
    Alcotest.test_case "transfer retry gives up" `Quick
      test_transfer_retry_gives_up;
    Alcotest.test_case "invariant checker catches corruption" `Quick
      test_invariants_catch_corruption;
    Alcotest.test_case "invariants hold on clean state" `Quick
      test_clean_state_passes;
    Alcotest.test_case "launch fault falls back to CPU" `Quick
      test_launch_fallback_end_to_end;
    Alcotest.test_case "memory pressure forces eviction" `Quick
      test_memory_pressure_forces_eviction;
    Alcotest.test_case "fault soak over the benchmark suite" `Slow
      test_fault_soak;
  ]
