(* Differential testing of the closure-compiled interpreter engine
   against the tree-walking engine, and properties of the dirty-span
   transfer tracker.

   The closure engine is an aggressive reimplementation (pre-decoded
   closure arrays, expression folding, scalar alloca promotion, cached
   block handles), so every program in the suite runs under both engines
   in every execution configuration and must produce bit-identical
   outputs, simulated clocks, instruction counts, device/run-time stats,
   and traces. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Memspace = Cgcm_memory.Memspace
module Trace = Cgcm_gpusim.Trace
module Device = Cgcm_gpusim.Device
module Runtime = Cgcm_runtime.Runtime
module PB = Cgcm_progs.Polybench
module RD = Cgcm_progs.Rodinia
module OT = Cgcm_progs.Others

let check = Alcotest.check

(* Small-size variants of all 24 registry programs: same sources as the
   benchmark registry, scaled down so the whole matrix stays quick. *)
let small_programs =
  [
    ("adi", PB.adi ~n:10 ~steps:3 ());
    ("atax", PB.atax ~n:16 ());
    ("bicg", PB.bicg ~n:16 ());
    ("correlation", PB.correlation ~n:10 ());
    ("covariance", PB.covariance ~n:10 ());
    ("doitgen", PB.doitgen ~n:6 ());
    ("gemm", PB.gemm ~n:12 ());
    ("gemver", PB.gemver ~n:16 ());
    ("gesummv", PB.gesummv ~n:16 ());
    ("gramschmidt", PB.gramschmidt ~n:8 ());
    ("jacobi-2d-imper", PB.jacobi_2d ~n:10 ~steps:4 ());
    ("seidel", PB.seidel ~n:10 ~steps:3 ());
    ("lu", PB.lu ~n:12 ());
    ("ludcmp", PB.ludcmp ~n:12 ());
    ("2mm", PB.twomm ~n:10 ());
    ("3mm", PB.threemm ~n:10 ());
    ("cfd", RD.cfd ~cells:64 ~steps:4 ());
    ("hotspot", RD.hotspot ~n:10 ~steps:4 ());
    ("kmeans", RD.kmeans ~points:48 ~dims:4 ~clusters:4 ~iters:3 ());
    ("lud", RD.lud ~n:12 ());
    ("nw", RD.nw ~n:16 ());
    ("srad", RD.srad ~n:10 ~steps:4 ());
    ("fm", OT.fm ~samples:256 ~taps:4 ());
    ("blackscholes", OT.blackscholes ~options:200 ());
  ]

let executions =
  [
    ("seq", Pipeline.Sequential);
    ("ie", Pipeline.Inspector_executor_exec);
    ("unopt", Pipeline.Cgcm_unoptimized);
    ("opt", Pipeline.Cgcm_optimized);
  ]

let exact = Alcotest.float 0.0

let check_equal_results where (a : Interp.result) (b : Interp.result) =
  let n fmt = where ^ " " ^ fmt in
  check Alcotest.int64 (n "exit") a.Interp.exit_code b.Interp.exit_code;
  check Alcotest.string (n "output") a.Interp.output b.Interp.output;
  check exact (n "wall") a.Interp.wall b.Interp.wall;
  check exact (n "cpu") a.Interp.cpu_compute b.Interp.cpu_compute;
  check exact (n "gpu") a.Interp.gpu b.Interp.gpu;
  check exact (n "comm") a.Interp.comm b.Interp.comm;
  check exact (n "sync") a.Interp.sync b.Interp.sync;
  check Alcotest.int (n "cpu insts") a.Interp.cpu_insts b.Interp.cpu_insts;
  check Alcotest.int (n "kernel insts") a.Interp.kernel_insts
    b.Interp.kernel_insts;
  let da = a.Interp.dev_stats and db = b.Interp.dev_stats in
  check Alcotest.int (n "htod bytes") da.Device.htod_bytes db.Device.htod_bytes;
  check Alcotest.int (n "dtoh bytes") da.Device.dtoh_bytes db.Device.dtoh_bytes;
  check Alcotest.int (n "htod count") da.Device.htod_count db.Device.htod_count;
  check Alcotest.int (n "dtoh count") da.Device.dtoh_count db.Device.dtoh_count;
  check Alcotest.int (n "launches") da.Device.launches db.Device.launches;
  let ra = a.Interp.rt_stats and rb = b.Interp.rt_stats in
  check Alcotest.int (n "map calls") ra.Runtime.map_calls rb.Runtime.map_calls;
  check Alcotest.int (n "unmap calls") ra.Runtime.unmap_calls
    rb.Runtime.unmap_calls;
  check Alcotest.int (n "release calls") ra.Runtime.release_calls
    rb.Runtime.release_calls;
  check Alcotest.int (n "skipped unmaps") ra.Runtime.skipped_unmaps
    rb.Runtime.skipped_unmaps;
  check Alcotest.int (n "partial copies") ra.Runtime.partial_copies
    rb.Runtime.partial_copies;
  check Alcotest.int (n "bytes saved") ra.Runtime.bytes_saved
    rb.Runtime.bytes_saved;
  let ea = Trace.events a.Interp.trace and eb = Trace.events b.Interp.trace in
  check Alcotest.int (n "trace length") (List.length ea) (List.length eb);
  check Alcotest.bool (n "trace events") true (ea = eb)

let test_differential (name, src) () =
  List.iter
    (fun (cname, ex) ->
      let _, closures =
        Pipeline.run ~trace:true ~engine:Interp.Closures ex src
      in
      let _, tree =
        Pipeline.run ~trace:true ~engine:Interp.Tree_walk ex src
      in
      check_equal_results (name ^ "/" ^ cname) closures tree)
    executions

(* Dirty-span transfers must only ever reduce communication: the
   optimized configuration with the tracker on moves no more bytes than
   with whole-unit copies, and prints the same output. *)
let test_dirty_monotone () =
  List.iter
    (fun pname ->
      let src = (List.assoc pname small_programs : string) in
      let _, on =
        Pipeline.run ~dirty_spans:true Pipeline.Cgcm_optimized src
      in
      let _, off =
        Pipeline.run ~dirty_spans:false Pipeline.Cgcm_optimized src
      in
      check Alcotest.string (pname ^ " output") on.Interp.output
        off.Interp.output;
      let bytes (r : Interp.result) =
        ( r.Interp.dev_stats.Device.htod_bytes,
          r.Interp.dev_stats.Device.dtoh_bytes )
      in
      let h_on, d_on = bytes on and h_off, d_off = bytes off in
      check Alcotest.bool (pname ^ " htod no worse") true (h_on <= h_off);
      check Alcotest.bool (pname ^ " dtoh no worse") true (d_on <= d_off))
    [ "gemm"; "hotspot"; "jacobi-2d-imper"; "nw"; "srad" ]

(* Property: the dirty-span tracker never loses a written byte. Random
   writes go into one unit; every written offset must be covered by some
   recorded span, and clearing leaves nothing behind. *)
let prop_dirty_covers =
  QCheck2.Test.make ~name:"dirty spans cover every written byte" ~count:200
    QCheck2.Gen.(list_size (1 -- 40) (pair (int_bound 255) (int_bound 31)))
    (fun writes ->
      let m =
        Memspace.create ~name:"dirty" ~range_lo:0x1000 ~range_hi:0x100000
      in
      let size = 256 in
      let base = Memspace.alloc m size in
      let written = Array.make size false in
      List.iter
        (fun (off, len) ->
          let len = min (len + 1) (size - off) in
          for i = off to off + len - 1 do
            Memspace.store_u8 m (base + i) 0xAB;
            written.(i) <- true
          done)
        writes;
      let spans = Memspace.dirty_spans m base in
      let covered i =
        List.exists (fun (o, l) -> o <= i && i < o + l) spans
      in
      let ok = ref true in
      for i = 0 to size - 1 do
        if written.(i) && not (covered i) then ok := false
      done;
      (* spans never exceed the unit *)
      List.iter
        (fun (o, l) -> if o < 0 || l <= 0 || o + l > size then ok := false)
        spans;
      Memspace.clear_dirty m base;
      !ok && Memspace.dirty_bytes m base = 0)

let tests =
  List.map
    (fun (name, src) ->
      Alcotest.test_case
        (Printf.sprintf "engines agree on %s" name)
        `Quick
        (test_differential (name, src)))
    small_programs
  @ [
      Alcotest.test_case "dirty spans only reduce traffic" `Quick
        test_dirty_monotone;
      QCheck_alcotest.to_alcotest prop_dirty_covers;
    ]
