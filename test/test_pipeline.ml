(* End-to-end differential tests: every execution configuration must
   produce the same observable output as the sequential CPU run, for all
   24 benchmark programs (scaled down) and for property-generated random
   DOALL programs. Also checks cost-model orderings that the paper's
   evaluation depends on. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp
module Doall = Cgcm_frontend.Doall
module Registry = Cgcm_progs.Registry

let check = Alcotest.check

(* Small instances of all 24 programs: fast enough for `dune runtest`. *)
let small_suite =
  [
    ("adi", Cgcm_progs.Polybench.adi ~n:10 ~steps:3 ());
    ("atax", Cgcm_progs.Polybench.atax ~n:12 ());
    ("bicg", Cgcm_progs.Polybench.bicg ~n:12 ());
    ("correlation", Cgcm_progs.Polybench.correlation ~n:10 ());
    ("covariance", Cgcm_progs.Polybench.covariance ~n:10 ());
    ("doitgen", Cgcm_progs.Polybench.doitgen ~n:6 ());
    ("gemm", Cgcm_progs.Polybench.gemm ~n:10 ());
    ("gemver", Cgcm_progs.Polybench.gemver ~n:12 ());
    ("gesummv", Cgcm_progs.Polybench.gesummv ~n:12 ());
    ("gramschmidt", Cgcm_progs.Polybench.gramschmidt ~n:8 ());
    ("jacobi-2d-imper", Cgcm_progs.Polybench.jacobi_2d ~n:10 ~steps:3 ());
    ("seidel", Cgcm_progs.Polybench.seidel ~n:10 ~steps:2 ());
    ("lu", Cgcm_progs.Polybench.lu ~n:10 ());
    ("ludcmp", Cgcm_progs.Polybench.ludcmp ~n:10 ());
    ("2mm", Cgcm_progs.Polybench.twomm ~n:10 ());
    ("3mm", Cgcm_progs.Polybench.threemm ~n:8 ());
    ("cfd", Cgcm_progs.Rodinia.cfd ~cells:40 ~steps:3 ());
    ("hotspot", Cgcm_progs.Rodinia.hotspot ~n:10 ~steps:3 ());
    ("kmeans", Cgcm_progs.Rodinia.kmeans ~points:40 ~dims:4 ~clusters:4 ~iters:3 ());
    ("lud", Cgcm_progs.Rodinia.lud ~n:10 ());
    ("nw", Cgcm_progs.Rodinia.nw ~n:12 ());
    ("srad", Cgcm_progs.Rodinia.srad ~n:10 ~steps:3 ());
    ("fm", Cgcm_progs.Others.fm ~samples:256 ~taps:4 ());
    ("blackscholes", Cgcm_progs.Others.blackscholes ~options:50 ());
  ]

(* Leak-free exit: only module globals may stay device-resident, every
   refcount has drained to zero, and the driver heap holds no live
   blocks the run-time no longer tracks. *)
let assert_leak_free name cname (r : Interp.result) =
  let l = r.Interp.leaks in
  let module Runtime = Cgcm_runtime.Runtime in
  if
    l.Runtime.resident_nonglobal <> 0
    || l.Runtime.refcount_sum <> 0
    || l.Runtime.leaked_dev_blocks <> 0
  then
    Alcotest.fail
      (Printf.sprintf
         "%s: %s leaks at exit: %d resident non-global units, refcount sum \
          %d, %d live device blocks (%d B)"
         name cname l.Runtime.resident_nonglobal l.Runtime.refcount_sum
         l.Runtime.leaked_dev_blocks l.Runtime.leaked_dev_bytes)

let differential name src =
  let _, seq = Pipeline.run Pipeline.Sequential src in
  let configs =
    [
      ("unified-unmanaged", Pipeline.Unified_oracle Pipeline.Unmanaged);
      ("unified-managed", Pipeline.Unified_oracle Pipeline.Managed);
      ("unified-optimized", Pipeline.Unified_oracle Pipeline.Optimized);
      ("inspector-executor", Pipeline.Inspector_executor_exec);
      ("cgcm-unoptimized", Pipeline.Cgcm_unoptimized);
      ("cgcm-optimized", Pipeline.Cgcm_optimized);
    ]
  in
  List.iter
    (fun (cname, exec) ->
      let _, r = Pipeline.run exec src in
      if r.Interp.output <> seq.Interp.output then
        Alcotest.fail
          (Printf.sprintf "%s: %s diverges\nseq: %sgot: %s" name cname
             seq.Interp.output r.Interp.output);
      assert_leak_free name cname r)
    configs

let struct_program =
  {|struct particle { float x; float vx; int id; };
global struct particle ps[64];
int main() {
  for (int i = 0; i < 64; i++) {
    ps[i].x = i * 0.5; ps[i].vx = 1.0 - i * 0.001; ps[i].id = i;
  }
  for (int t = 0; t < 5; t++) {
    for (int i = 0; i < 64; i++) {
      ps[i].x = ps[i].x + ps[i].vx * 0.1;
    }
  }
  float s = 0.0;
  for (int i = 0; i < 64; i++) { s = s + ps[i].x; }
  print(s); return 0;
}
|}

let test_struct_differential () =
  differential "particles" struct_program;
  (* the struct-array loop parallelizes: the whole array is one
     allocation unit, moved wholesale (paper, Section 3.1) *)
  let c = Pipeline.compile ~level:Pipeline.Optimized struct_program in
  check Alcotest.bool "kernels found" true
    (List.length c.Pipeline.doall.Doall.kernels >= 2)

let test_differential_suite () =
  List.iter (fun (name, src) -> differential name src) small_suite

let test_full_size_sources_compile () =
  (* the registry's full-size programs must at least compile through the
     whole pipeline *)
  List.iter
    (fun (p : Registry.program) ->
      ignore
        (Pipeline.compile ~level:Pipeline.Optimized p.Registry.source))
    Registry.all

let test_every_program_finds_kernels () =
  List.iter
    (fun (name, src) ->
      let c = Pipeline.compile ~level:Pipeline.Optimized src in
      let expected_min = if name = "seidel" then 1 else 2 in
      let n = List.length c.Pipeline.doall.Doall.kernels in
      if n < expected_min then
        Alcotest.fail
          (Printf.sprintf "%s: only %d kernels found" name n))
    (List.filter (fun (n, _) -> n <> "blackscholes") small_suite)

let test_cost_orderings () =
  (* the qualitative claims of Section 6 on a time-loop stencil:
     optimized beats unoptimized; unoptimized is slower than sequential;
     optimized transfers far less than unoptimized *)
  let src = Cgcm_progs.Polybench.jacobi_2d ~n:24 ~steps:8 () in
  let _, seq = Pipeline.run Pipeline.Sequential src in
  let _, unopt = Pipeline.run Pipeline.Cgcm_unoptimized src in
  let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
  check Alcotest.bool "unoptimized slower than sequential" true
    (unopt.Interp.wall > seq.Interp.wall);
  check Alcotest.bool "optimization helps" true
    (opt.Interp.wall < unopt.Interp.wall);
  let bytes r =
    r.Interp.dev_stats.Cgcm_gpusim.Device.htod_bytes
    + r.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_bytes
  in
  check Alcotest.bool "acyclic moves less data" true
    (bytes opt * 4 < bytes unopt)

let test_acyclic_trace () =
  (* after map promotion the time loop contains no per-iteration
     transfers: the DtoH count is bounded by the number of arrays (times
     the init/compute phase boundary), independent of the step count *)
  let run_steps steps =
    let src = Cgcm_progs.Polybench.jacobi_2d ~n:16 ~steps () in
    let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
    ( opt.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count,
      opt.Interp.dev_stats.Cgcm_gpusim.Device.htod_count )
  in
  let d6, h6 = run_steps 6 in
  let d12, h12 = run_steps 12 in
  check Alcotest.int "DtoH independent of step count" d6 d12;
  check Alcotest.int "HtoD independent of step count" h6 h12;
  check Alcotest.bool "bounded" true (d6 <= 4 && h6 <= 6)

let test_ie_cyclic_trace () =
  (* the inspector-executor baseline stays cyclic: DtoH transfers are
     interleaved with kernels *)
  let src = Cgcm_progs.Polybench.jacobi_2d ~n:16 ~steps:6 () in
  let _, ie = Pipeline.run ~trace:true Pipeline.Inspector_executor_exec src in
  let d = ie.Interp.dev_stats.Cgcm_gpusim.Device.dtoh_count in
  check Alcotest.bool "many DtoH rounds" true (d >= 6)

(* Property: random DOALL map programs agree across all modes. *)
let random_program_gen =
  QCheck2.Gen.(
    let* n = int_range 4 24 in
    let* scale = int_range 1 9 in
    let* offset = int_range 0 5 in
    let* steps = int_range 1 4 in
    let* use_second = bool in
    let* cpu_reads = bool in
    (* optional CPU access inside the time loop: modOrRef must then keep
       the communication cyclic for that array, and stay correct *)
    let interference =
      if cpu_reads then "s0 = s0 + A[0];" else ""
    in
    return
      (Printf.sprintf
         "global float A[%d];\nglobal float B[%d];\n\
          int main() {\n\
          float s0 = 0.0;\n\
          for (int i = 0; i < %d; i++) { A[i] = i * 0.%d; B[i] = %d - i; }\n\
          for (int t = 0; t < %d; t++) {\n\
          for (int i = 0; i < %d; i++) { %s }\n\
          %s\n\
          }\n\
          float s = s0;\n\
          for (int i = 0; i < %d; i++) { s = s + A[i] + B[i]; }\n\
          print(s); return 0; }"
         n n n scale offset steps n
         (if use_second then "B[i] = B[i] * 1.5 + A[i];"
          else "A[i] = A[i] + 2.0;")
         interference n))

let prop_random_differential =
  QCheck2.Test.make ~name:"random DOALL programs agree across modes" ~count:25
    random_program_gen (fun src ->
      let _, seq = Pipeline.run Pipeline.Sequential src in
      let _, opt = Pipeline.run Pipeline.Cgcm_optimized src in
      let _, unopt = Pipeline.run Pipeline.Cgcm_unoptimized src in
      let _, ie = Pipeline.run Pipeline.Inspector_executor_exec src in
      seq.Interp.output = opt.Interp.output
      && seq.Interp.output = unopt.Interp.output
      && seq.Interp.output = ie.Interp.output)

let tests =
  [
    Alcotest.test_case "24-program differential" `Slow test_differential_suite;
    Alcotest.test_case "struct differential" `Quick test_struct_differential;
    Alcotest.test_case "full-size sources compile" `Slow
      test_full_size_sources_compile;
    Alcotest.test_case "kernels found everywhere" `Quick
      test_every_program_finds_kernels;
    Alcotest.test_case "cost orderings" `Quick test_cost_orderings;
    Alcotest.test_case "optimized trace is acyclic" `Quick test_acyclic_trace;
    Alcotest.test_case "inspector-executor stays cyclic" `Quick
      test_ie_cyclic_trace;
    QCheck_alcotest.to_alcotest prop_random_differential;
  ]
