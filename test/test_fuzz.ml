(* The whole-program fuzzer: generated programs render to valid CGC and
   agree across every configuration (a small campaign runs in-tree; CI
   runs the big one), generation is deterministic, and the shrinker
   contracts failing programs to minimal counterexamples. *)

module Fuzz = Cgcm_fuzz.Fuzz

let check = Alcotest.check

let test_determinism () =
  let a = Fuzz.generate ~seed:12345 and b = Fuzz.generate ~seed:12345 in
  check Alcotest.string "same seed, same program" (Fuzz.render a)
    (Fuzz.render b);
  let c = Fuzz.generate ~seed:54321 in
  check Alcotest.bool "different seed, different program" true
    (Fuzz.render a <> Fuzz.render c)

let test_generated_programs_parse () =
  (* every rendered program must at least compile at every level *)
  for seed = 100 to 130 do
    let src = Fuzz.render (Fuzz.generate ~seed) in
    List.iter
      (fun level ->
        match Cgcm_core.Pipeline.compile ~level src with
        | _ -> ()
        | exception e ->
          Alcotest.failf "seed %d does not compile: %s\n%s" seed
            (Printexc.to_string e) src)
      [ Cgcm_core.Pipeline.Unmanaged; Cgcm_core.Pipeline.Managed;
        Cgcm_core.Pipeline.Optimized ]
  done

let test_small_campaigns_clean () =
  List.iter
    (fun seed ->
      match Fuzz.campaign ~count:25 ~seed () with
      | [] -> ()
      | r :: _ -> Alcotest.failf "campaign failed:\n%s" (Fuzz.render_report r))
    [ 1; 7 ]

(* The shrinker, against a synthetic predicate: "fails whenever any
   Grid phase is present". The minimum under that predicate is one
   phase, one 8-element array, no heap, no jagged table. *)
let test_shrinker_reaches_minimum () =
  let has_grid p =
    List.exists (function Fuzz.Grid _ -> true | _ -> false) p.Fuzz.phases
  in
  let synthetic p =
    if has_grid p then
      Some { Fuzz.f_config = "synthetic"; f_kind = "grid"; f_detail = "" }
    else None
  in
  (* find a generated program that has a Grid phase, then shrink it *)
  let rec find seed =
    if seed > 5000 then Alcotest.fail "no Grid program generated"
    else
      let p = Fuzz.generate ~seed in
      if has_grid p then p else find (seed + 1)
  in
  let p = find 0 in
  let f = Option.get (synthetic p) in
  let minimal, f' = Fuzz.shrink ~check:synthetic p f in
  check Alcotest.string "failure kind preserved" f.Fuzz.f_kind f'.Fuzz.f_kind;
  check Alcotest.int "one phase left" 1 (List.length minimal.Fuzz.phases);
  check Alcotest.bool "the phase is the culprit" true (has_grid minimal);
  check Alcotest.int "one array left" 1 (List.length minimal.Fuzz.arrays);
  check Alcotest.int "array shrunk to 8" 8
    (List.hd minimal.Fuzz.arrays).Fuzz.a_size;
  check Alcotest.bool "heap dropped" true (minimal.Fuzz.heap = None);
  check Alcotest.bool "jagged dropped" true (minimal.Fuzz.jagged = None)

(* Shrinking must respect the budget even when every candidate fails. *)
let test_shrinker_budget () =
  let always p =
    ignore p;
    Some { Fuzz.f_config = "synthetic"; f_kind = "always"; f_detail = "" }
  in
  let p = Fuzz.generate ~seed:7 in
  let calls = ref 0 in
  let counting p =
    incr calls;
    always p
  in
  let _ = Fuzz.shrink ~budget:10 ~check:counting p (Option.get (always p)) in
  check Alcotest.bool "bounded" true (!calls <= 10)

(* The wall-clock budget: with slow checks and a tiny budget, shrinking
   must terminate early and still report the best candidate found so
   far (a strict improvement over the input when one was accepted). *)
let test_shrinker_wall_clock_budget () =
  let phases p = List.length p.Fuzz.phases in
  let slow_always p =
    Unix.sleepf 0.02;
    ignore p;
    Some { Fuzz.f_config = "synthetic"; f_kind = "always"; f_detail = "" }
  in
  let rec find seed =
    let p = Fuzz.generate ~seed in
    if phases p > 1 then p else find (seed + 1)
  in
  let p = find 0 in
  let f = Option.get (slow_always p) in
  let t0 = Unix.gettimeofday () in
  (* 50 ms budget, 20 ms per check: at most a handful of evaluations out
     of a nominal budget of 10000 run before the clock cuts in. *)
  let minimal, f' =
    Fuzz.shrink ~budget:10_000 ~budget_ms:50.0 ~check:slow_always p f
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check Alcotest.bool "terminated early" true (elapsed < 2.0);
  check Alcotest.string "failure kind preserved" f.Fuzz.f_kind f'.Fuzz.f_kind;
  (* every candidate fails, so the first (most aggressive) candidate was
     accepted before the budget lapsed: best-so-far, not the input *)
  check Alcotest.bool "best-so-far reported" true (phases minimal < phases p)

(* End to end: a check function that mis-runs the program (wrong
   engine comparison is impossible here, so simulate a miscompile by
   lying about the reference) must produce a report whose minimal
   program still fails. *)
let test_check_source_detects_mismatch () =
  (* sanity: check_source on a healthy program is clean *)
  check Alcotest.bool "healthy program clean" true
    (Fuzz.check_source
       "global int g[8];\n\
        int main() {\n\
       \  for (int i = 0; i < 8; i++) { g[i] = i; }\n\
       \  parallel for (int i = 0; i < 8; i++) { g[i] = g[i] * 2; }\n\
       \  int s = 0;\n\
       \  for (int i = 0; i < 8; i++) { s = s + g[i]; }\n\
       \  print(s);\n\
       \  return 0;\n\
        }"
    = None)

(* The wire-protocol fuzzer: pristine streams decode exactly, hostile
   ones raise nothing but protocol errors, and the byte-level shrinker
   keeps a failure failing. *)
module Wire_fuzz = Cgcm_fuzz.Wire_fuzz

let test_wire_campaign_clean () =
  List.iter
    (fun seed ->
      match Wire_fuzz.campaign ~count:300 ~seed () with
      | [] -> ()
      | r :: _ ->
        Alcotest.failf "wire campaign failed:\n%s" (Wire_fuzz.render_report r))
    [ 1; 7 ]

let test_wire_case_determinism () =
  let a = Wire_fuzz.case ~seed:99 and b = Wire_fuzz.case ~seed:99 in
  check Alcotest.string "same seed, same bytes" a.Wire_fuzz.wc_bytes
    b.Wire_fuzz.wc_bytes;
  check Alcotest.bool "same seed, same mutation" true
    (a.Wire_fuzz.wc_mutation = b.Wire_fuzz.wc_mutation)

let test_wire_shrinker_preserves_failure () =
  (* synthetic failing case: pristine flag on a corrupted stream makes
     the equality oracle fire, and every shrunk candidate must still
     fail under re-check *)
  let rec find seed =
    if seed > 2000 then Alcotest.fail "no mutated wire case generated"
    else
      let c = Wire_fuzz.case ~seed in
      if c.Wire_fuzz.wc_mutated then
        (* lie about the mutation: the oracle now demands exact decode *)
        let lied = { c with Wire_fuzz.wc_mutated = false } in
        match Wire_fuzz.check lied with
        | Some f -> (lied, f)
        | None -> find (seed + 1)
      else find (seed + 1)
  in
  let c, f = find 0 in
  let minimal, f' = Wire_fuzz.shrink c f in
  check Alcotest.bool "minimal case still fails" true
    (Wire_fuzz.check minimal = Some f');
  check Alcotest.bool "shrinker never grows the stream" true
    (String.length minimal.Wire_fuzz.wc_bytes
    <= String.length c.Wire_fuzz.wc_bytes)

let tests =
  [
    Alcotest.test_case "generation is deterministic" `Quick test_determinism;
    Alcotest.test_case "generated programs compile at every level" `Quick
      test_generated_programs_parse;
    Alcotest.test_case "small campaigns are clean" `Slow
      test_small_campaigns_clean;
    Alcotest.test_case "shrinker reaches the minimum" `Quick
      test_shrinker_reaches_minimum;
    Alcotest.test_case "shrinker respects its budget" `Quick
      test_shrinker_budget;
    Alcotest.test_case "shrinker respects its wall-clock budget" `Quick
      test_shrinker_wall_clock_budget;
    Alcotest.test_case "check_source accepts healthy programs" `Quick
      test_check_source_detects_mismatch;
    Alcotest.test_case "wire fuzz campaigns are clean" `Quick
      test_wire_campaign_clean;
    Alcotest.test_case "wire cases are deterministic" `Quick
      test_wire_case_determinism;
    Alcotest.test_case "wire shrinker preserves the failure" `Quick
      test_wire_shrinker_preserves_failure;
  ]
