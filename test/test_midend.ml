(* Tests for the mid-end architecture: the caching analysis manager
   (hit/miss accounting, invalidation, preservation contracts, paranoid
   staleness detection), golden per-pass IR dumps, and a qcheck property
   that legal pass subsets/orders preserve program output. *)

module Ir = Cgcm_ir.Ir
module Builder = Cgcm_ir.Builder
module Loops = Cgcm_analysis.Loops
module Manager = Cgcm_analysis.Manager
module Pass = Cgcm_transform.Pass
module Rewrite = Cgcm_transform.Rewrite
module Pipeline = Cgcm_core.Pipeline
module Fuzz = Cgcm_fuzz.Fuzz

let check = Alcotest.check

let stat mgr name =
  match List.find_opt (fun (n, _, _) -> n = name) (Manager.stats mgr) with
  | Some (_, h, m) -> (h, m)
  | None -> Alcotest.fail ("no such analysis counter: " ^ name)

let cpu_func (m : Ir.modul) =
  List.find (fun (f : Ir.func) -> f.Ir.fkind = Ir.Cpu) m.Ir.funcs

(* entry -> header; header -> header | exit *)
let loop_func () =
  let b = Builder.create ~name:"f" ~nargs:1 ~kind:Ir.Cpu in
  let header = Builder.new_block b in
  let exit_ = Builder.new_block b in
  Builder.br b header;
  Builder.position_at b header;
  Builder.cbr b (Ir.Reg 0) header exit_;
  Builder.position_at b exit_;
  Builder.ret b None;
  Builder.finish b

let diamond () =
  let b = Builder.create ~name:"f" ~nargs:1 ~kind:Ir.Cpu in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  let b3 = Builder.new_block b in
  Builder.cbr b (Ir.Reg 0) b1 b2;
  Builder.position_at b b1;
  Builder.br b b3;
  Builder.position_at b b2;
  Builder.br b b3;
  Builder.position_at b b3;
  Builder.ret b None;
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* Analysis-manager unit tests *)

let test_cache_hit_after_noop_pass () =
  (* Unmanaged compilation already ran simplify to a fixpoint, so
     re-running it is a no-op: the framework must not invalidate, and
     analyses fetched before the pass must be served from cache after. *)
  let c =
    Pipeline.compile ~level:Pipeline.Unmanaged
      (Cgcm_progs.Polybench.gemm ~n:6 ())
  in
  let mgr = Manager.create c.Pipeline.modul in
  let f = cpu_func c.Pipeline.modul in
  ignore (Manager.loops mgr f);
  ignore (Manager.callgraph mgr);
  Manager.reset_stats mgr;
  Pass.run_plan mgr [ Pass.Atom Pass.simplify ];
  ignore (Manager.loops mgr f);
  ignore (Manager.callgraph mgr);
  check (Alcotest.pair Alcotest.int Alcotest.int)
    "loops served from cache" (1, 0) (stat mgr "loops");
  check (Alcotest.pair Alcotest.int Alcotest.int)
    "callgraph served from cache" (1, 0) (stat mgr "callgraph")

let test_cfg_edit_invalidation () =
  (* A CFG edit through the rewrite helpers must drop dominance but
     patch loop info in place — and the patch must match a fresh
     analysis. *)
  let f = loop_func () in
  let m = { Ir.globals = []; funcs = [ f ] } in
  let mgr = Manager.create m in
  ignore (Manager.dominance mgr f);
  let loops = Manager.loops mgr f in
  Manager.reset_stats mgr;
  (match Rewrite.make_preheader ~mgr f loops ~li:0 with
  | None -> Alcotest.fail "expected a preheader"
  | Some _ -> ());
  let cached = Manager.loops mgr f in
  check (Alcotest.pair Alcotest.int Alcotest.int)
    "loops patched, not recomputed" (1, 0) (stat mgr "loops");
  ignore (Manager.dominance mgr f);
  check (Alcotest.pair Alcotest.int Alcotest.int)
    "dominance dropped by the CFG edit" (0, 1) (stat mgr "dominance");
  let fresh = Loops.analyze f in
  check Alcotest.bool "patched loop info matches a fresh analysis" true
    (Loops.equal cached fresh)

let test_preserves_honored () =
  (* comm-mgmt preserves the call graph (it adds no calls between
     module functions) but clobbers instruction-keyed analyses like
     alias. The framework's module-wide invalidation must honor exactly
     that contract. *)
  let c =
    Pipeline.compile ~level:Pipeline.Unmanaged
      (Cgcm_progs.Polybench.gemm ~n:6 ())
  in
  let mgr = Manager.create c.Pipeline.modul in
  let f = cpu_func c.Pipeline.modul in
  ignore (Manager.callgraph mgr);
  ignore (Manager.alias mgr f);
  Manager.reset_stats mgr;
  Pass.run_plan mgr [ Pass.Atom Pass.comm_mgmt ];
  ignore (Manager.callgraph mgr);
  ignore (Manager.alias mgr f);
  let cg_h, cg_m = stat mgr "callgraph" in
  check Alcotest.bool "callgraph preserved across comm-mgmt" true
    (cg_h >= 1 && cg_m = 0);
  let _, al_m = stat mgr "alias" in
  check Alcotest.bool "alias dropped by comm-mgmt" true (al_m >= 1)

let test_paranoid_detects_stale () =
  (* Mutating the CFG behind the manager's back must trip the paranoid
     cross-check on the next query. *)
  let f = diamond () in
  let m = { Ir.globals = []; funcs = [ f ] } in
  let mgr = Manager.create ~mode:Manager.Paranoid m in
  ignore (Manager.dominance mgr f);
  Rewrite.redirect_edge f ~from_:0 ~to_:1 ~to_':3;
  (match Manager.dominance mgr f with
  | _ -> Alcotest.fail "expected Manager.Stale"
  | exception Manager.Stale _ -> ());
  (* the same edit through the helpers (which invalidate) is fine *)
  let f2 = diamond () in
  let m2 = { Ir.globals = []; funcs = [ f2 ] } in
  let mgr2 = Manager.create ~mode:Manager.Paranoid m2 in
  ignore (Manager.dominance mgr2 f2);
  ignore (Rewrite.split_edge ~mgr:mgr2 f2 ~from_:1 ~to_:3 ~instrs:[]);
  ignore (Manager.dominance mgr2 f2)

let test_uncached_never_hits () =
  let f = loop_func () in
  let m = { Ir.globals = []; funcs = [ f ] } in
  let mgr = Manager.create ~mode:Manager.Uncached m in
  ignore (Manager.loops mgr f);
  ignore (Manager.loops mgr f);
  let h, misses = stat mgr "loops" in
  check Alcotest.int "no hits in uncached mode" 0 h;
  check Alcotest.int "every query recomputes" 2 misses

(* ------------------------------------------------------------------ *)
(* Golden per-pass IR dumps *)

let golden_programs =
  [
    ("gemm-n6", Cgcm_progs.Polybench.gemm ~n:6 ());
    ("atax-n8", Cgcm_progs.Polybench.atax ~n:8 ());
    ("gemver-n8", Cgcm_progs.Polybench.gemver ~n:8 ());
  ]

let dump_passes src =
  let buf = Buffer.create 4096 in
  let hooks =
    {
      Pass.default_hooks with
      Pass.after_pass =
        (fun name m ->
          Buffer.add_string buf (Printf.sprintf ";; === after %s ===\n" name);
          Buffer.add_string buf (Cgcm_ir.Printer.modul_to_string m));
    }
  in
  ignore (Pipeline.compile ~hooks src);
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_dump (name, src) () =
  let got = dump_passes src in
  let file = name ^ ".passes.ir" in
  match Sys.getenv_opt "CGCM_UPDATE_GOLDEN" with
  | Some dir ->
    let oc = open_out_bin (Filename.concat dir file) in
    output_string oc got;
    close_out oc
  | None ->
    (* dune runtest runs in the test directory with golden/ staged as a
       dep; dune exec from the repo root sees the source tree instead *)
    let path =
      List.find_opt Sys.file_exists
        [ Filename.concat "golden" file;
          Filename.concat (Filename.concat "test" "golden") file ]
    in
    (match path with
    | None ->
      Alcotest.fail
        (Printf.sprintf
           "golden file %s missing — regenerate with \
            CGCM_UPDATE_GOLDEN=test/golden dune exec test/test_main.exe -- \
            test midend"
           file)
    | Some path ->
      check Alcotest.string ("per-pass IR dump: " ^ name) (read_file path) got)

(* ------------------------------------------------------------------ *)
(* Pass subset/order property *)

(* Any legal plan preserves program output: schedule-ordered subsets
   containing comm-mgmt run under split memory, arbitrary permutations
   of arbitrary subsets run against the unified-memory oracle. Plans
   derive from the program seed; compilation verifies the module after
   every pass (the default policy), so a plan that produces ill-formed
   IR also fails here. *)
let prop_pass_orders_preserve_output =
  QCheck.Test.make ~count:10 ~name:"legal pass subsets/orders preserve output"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let p = Fuzz.generate ~seed in
      match Fuzz.check_plans ~rounds:2 ~seed (Fuzz.render p) with
      | None -> true
      | Some f ->
        QCheck.Test.fail_reportf "seed %d, %s: %s\n%s" seed f.Fuzz.f_config
          f.Fuzz.f_kind f.Fuzz.f_detail)

let tests =
  [
    Alcotest.test_case "cache hit after no-op pass" `Quick
      test_cache_hit_after_noop_pass;
    Alcotest.test_case "CFG edit invalidates through the manager" `Quick
      test_cfg_edit_invalidation;
    Alcotest.test_case "preserves sets honored" `Quick test_preserves_honored;
    Alcotest.test_case "paranoid mode detects staleness" `Quick
      test_paranoid_detects_stale;
    Alcotest.test_case "uncached mode never hits" `Quick
      test_uncached_never_hits;
  ]
  @ List.map
      (fun (name, src) ->
        Alcotest.test_case ("golden per-pass IR: " ^ name) `Quick
          (test_golden_dump (name, src)))
      golden_programs
  @ [ QCheck_alcotest.to_alcotest prop_pass_orders_preserve_output ]
