(* Differential testing of the frontend + interpreter against an OCaml
   oracle: random integer expression trees are pretty-printed as CGC,
   compiled, executed — and must print exactly what direct evaluation
   computes. This pins down lowering (precedence, conversions, division
   semantics, short-circuit evaluation) end to end. *)

module Pipeline = Cgcm_core.Pipeline
module Interp = Cgcm_interp.Interp

(* A small expression AST with its own evaluator. Division guards keep
   the generated programs well-defined. *)
type e =
  | Lit of int
  | Var of int  (* one of three pre-set variables *)
  | Add of e * e
  | Sub of e * e
  | Mul of e * e
  | Div_guarded of e * e  (* b == 0 ? a : a / b, as a C ternary *)
  | Rem_guarded of e * e  (* b == 0 ? a : a % b *)
  | Shl of e * e  (* count masked mod 64, like the interpreter *)
  | Shr of e * e  (* logical right shift *)
  | Lt of e * e
  | Le of e * e
  | Gt of e * e
  | Ge of e * e
  | Eq of e * e
  | Ne of e * e
  | And of e * e
  | Or of e * e
  | Not of e
  | Neg of e
  | Cond of e * e * e

let vars = [| 7L; -3L; 100L |]

let rec eval = function
  | Lit n -> Int64.of_int n
  | Var i -> vars.(i)
  | Add (a, b) -> Int64.add (eval a) (eval b)
  | Sub (a, b) -> Int64.sub (eval a) (eval b)
  | Mul (a, b) -> Int64.mul (eval a) (eval b)
  | Div_guarded (a, b) ->
    let bv = eval b in
    if bv = 0L then eval a else Int64.div (eval a) bv
  | Rem_guarded (a, b) ->
    let bv = eval b in
    if bv = 0L then eval a else Int64.rem (eval a) bv
  | Shl (a, b) -> Int64.shift_left (eval a) (Int64.to_int (eval b) land 63)
  | Shr (a, b) ->
    Int64.shift_right_logical (eval a) (Int64.to_int (eval b) land 63)
  | Lt (a, b) -> if eval a < eval b then 1L else 0L
  | Le (a, b) -> if eval a <= eval b then 1L else 0L
  | Gt (a, b) -> if eval a > eval b then 1L else 0L
  | Ge (a, b) -> if eval a >= eval b then 1L else 0L
  | Eq (a, b) -> if eval a = eval b then 1L else 0L
  | Ne (a, b) -> if eval a <> eval b then 1L else 0L
  | And (a, b) -> if eval a <> 0L && eval b <> 0L then 1L else 0L
  | Or (a, b) -> if eval a <> 0L || eval b <> 0L then 1L else 0L
  | Not a -> if eval a = 0L then 1L else 0L
  | Neg a -> Int64.neg (eval a)
  | Cond (c, a, b) -> if eval c <> 0L then eval a else eval b

(* Render with full parenthesisation on subexpressions — the point is to
   exercise the evaluator, not the parser's precedence (test_frontend does
   that); ternaries and short-circuits still stress control flow. *)
let rec render = function
  | Lit n -> string_of_int n
  | Var i -> Printf.sprintf "v%d" i
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (render a) (render b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (render a) (render b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (render a) (render b)
  | Div_guarded (a, b) ->
    Printf.sprintf "((%s) == 0 ? (%s) : ((%s) / (%s)))" (render b) (render a)
      (render a) (render b)
  | Rem_guarded (a, b) ->
    Printf.sprintf "((%s) == 0 ? (%s) : ((%s) %% (%s)))" (render b) (render a)
      (render a) (render b)
  | Shl (a, b) -> Printf.sprintf "(%s << %s)" (render a) (render b)
  | Shr (a, b) -> Printf.sprintf "(%s >> %s)" (render a) (render b)
  | Lt (a, b) -> Printf.sprintf "(%s < %s)" (render a) (render b)
  | Le (a, b) -> Printf.sprintf "(%s <= %s)" (render a) (render b)
  | Gt (a, b) -> Printf.sprintf "(%s > %s)" (render a) (render b)
  | Ge (a, b) -> Printf.sprintf "(%s >= %s)" (render a) (render b)
  | Eq (a, b) -> Printf.sprintf "(%s == %s)" (render a) (render b)
  | Ne (a, b) -> Printf.sprintf "(%s != %s)" (render a) (render b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (render a) (render b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (render a) (render b)
  | Not a -> Printf.sprintf "(!%s)" (render a)
  | Neg a -> Printf.sprintf "(- %s)" (render a)  (* space: "--" would lex as decrement *)
  | Cond (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (render c) (render a) (render b)

let gen_expr =
  QCheck2.Gen.(
    sized_size (int_bound 6)
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [ map (fun l -> Lit (l - 8)) (int_bound 16); map (fun v -> Var v) (int_bound 2) ]
           else
             let sub = self (n / 2) in
             oneof
               [
                 map2 (fun a b -> Add (a, b)) sub sub;
                 map2 (fun a b -> Sub (a, b)) sub sub;
                 map2 (fun a b -> Mul (a, b)) sub sub;
                 map2 (fun a b -> Div_guarded (a, b)) sub sub;
                 map2 (fun a b -> Rem_guarded (a, b)) sub sub;
                 map2 (fun a b -> Shl (a, b)) sub sub;
                 map2 (fun a b -> Shr (a, b)) sub sub;
                 map2 (fun a b -> Lt (a, b)) sub sub;
                 map2 (fun a b -> Le (a, b)) sub sub;
                 map2 (fun a b -> Gt (a, b)) sub sub;
                 map2 (fun a b -> Ge (a, b)) sub sub;
                 map2 (fun a b -> Eq (a, b)) sub sub;
                 map2 (fun a b -> Ne (a, b)) sub sub;
                 map2 (fun a b -> And (a, b)) sub sub;
                 map2 (fun a b -> Or (a, b)) sub sub;
                 map (fun a -> Not a) sub;
                 map (fun a -> Neg a) sub;
                 map3 (fun c a b -> Cond (c, a, b)) sub sub sub;
               ]))

let program_of e =
  Printf.sprintf
    "int main() {\n\
    \  int v0 = 7;\n\
    \  int v1 = -3;\n\
    \  int v2 = 100;\n\
    \  print(%s);\n\
    \  return 0;\n\
     }"
    (render e)

let prop_expression_oracle =
  QCheck2.Test.make ~name:"CGC expressions agree with the OCaml oracle"
    ~count:120
    QCheck2.Gen.(map (fun e -> e) gen_expr)
    (fun e ->
      let src = program_of e in
      let _, r = Pipeline.run Pipeline.Sequential src in
      let expected = Printf.sprintf "%Ld\n" (eval e) in
      if r.Interp.output <> expected then
        QCheck2.Test.fail_reportf "src:\n%s\nexpected %s got %s" src expected
          r.Interp.output
      else true)

(* The same expressions, evaluated inside a kernel of one thread, must
   agree when run on the simulated device. *)
let prop_kernel_oracle =
  QCheck2.Test.make ~name:"kernel-side expressions agree with the oracle"
    ~count:40 gen_expr (fun e ->
      let src =
        Printf.sprintf
          "global int out[1];\n\
           kernel void k(int tid, int v0, int v1, int v2) {\n\
          \  out[tid] = %s;\n\
           }\n\
           int main() {\n\
          \  launch k<1>(7, -3, 100);\n\
          \  print(out[0]);\n\
          \  return 0;\n\
           }"
          (render e)
      in
      let _, r = Pipeline.run Pipeline.Cgcm_optimized src in
      r.Interp.output = Printf.sprintf "%Ld\n" (eval e))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_expression_oracle;
    QCheck_alcotest.to_alcotest prop_kernel_oracle;
  ]
