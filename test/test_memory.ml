(* Tests for the simulated memory spaces: allocation units, bounds
   checking, interior-pointer resolution, transfer blits. *)

module Memspace = Cgcm_memory.Memspace

let check = Alcotest.check

let mk () = Memspace.create ~name:"test" ~range_lo:0x1000 ~range_hi:0x100000

let test_alloc_rw () =
  let m = mk () in
  let a = Memspace.alloc m 64 in
  Memspace.store_i64 m a 42L;
  Memspace.store_i64 m (a + 8) (-7L);
  check Alcotest.int64 "load" 42L (Memspace.load_i64 m a);
  check Alcotest.int64 "load2" (-7L) (Memspace.load_i64 m (a + 8));
  Memspace.store_f64 m (a + 16) 3.25;
  check (Alcotest.float 0.0) "float" 3.25 (Memspace.load_f64 m (a + 16))

let test_zero_init () =
  let m = mk () in
  let a = Memspace.alloc m 32 in
  for i = 0 to 3 do
    check Alcotest.int64 "zeroed" 0L (Memspace.load_i64 m (a + (8 * i)))
  done

let test_bytes () =
  let m = mk () in
  let a = Memspace.alloc m 16 in
  Memspace.store_u8 m a 200;
  Memspace.store_u8 m (a + 1) 0x341;  (* truncated to one byte *)
  check Alcotest.int "byte" 200 (Memspace.load_u8 m a);
  check Alcotest.int "truncated" 0x41 (Memspace.load_u8 m (a + 1))

let test_strings () =
  let m = mk () in
  let a = Memspace.alloc m 64 in
  Memspace.store_string m a "hello world";
  check Alcotest.string "string" "hello world" (Memspace.load_string m a);
  check Alcotest.string "interior" "world" (Memspace.load_string m (a + 6))

let expect_fault f =
  match f () with
  | exception Memspace.Fault _ -> ()
  | _ -> Alcotest.fail "expected a memory fault"

let test_out_of_bounds () =
  let m = mk () in
  let a = Memspace.alloc m 16 in
  expect_fault (fun () -> Memspace.load_i64 m (a + 9));  (* spans the end *)
  expect_fault (fun () -> Memspace.load_i64 m (a + 16));
  expect_fault (fun () -> Memspace.store_i64 m (a - 1) 0L)

let test_wild_pointer () =
  let m = mk () in
  ignore (Memspace.alloc m 16);
  expect_fault (fun () -> Memspace.load_i64 m 0x999999)

let test_guard_gap () =
  (* consecutive allocations must not be adjacent: off-by-one arithmetic
     faults instead of touching the neighbour *)
  let m = mk () in
  let a = Memspace.alloc m 16 in
  let b = Memspace.alloc m 16 in
  check Alcotest.bool "gap" true (b - (a + 16) >= 16);
  expect_fault (fun () -> Memspace.load_u8 m (a + 16))

let test_free () =
  let m = mk () in
  let a = Memspace.alloc m 16 in
  Memspace.free m a;
  expect_fault (fun () -> Memspace.load_i64 m a);
  (* double free faults *)
  expect_fault (fun () -> Memspace.free m a)

let test_free_interior () =
  let m = mk () in
  let a = Memspace.alloc m 32 in
  expect_fault (fun () -> Memspace.free m (a + 8))

let test_unit_bounds () =
  let m = mk () in
  let a = Memspace.alloc m 100 in
  let base, size = Memspace.unit_bounds m (a + 57) in
  check Alcotest.int "base" a base;
  check Alcotest.int "size" 100 size

let test_blit () =
  let src = mk () in
  let dst = Memspace.create ~name:"dst" ~range_lo:0x200000 ~range_hi:0x300000 in
  let a = Memspace.alloc src 64 in
  let b = Memspace.alloc dst 64 in
  for i = 0 to 7 do
    Memspace.store_i64 src (a + (8 * i)) (Int64.of_int (i * 11))
  done;
  Memspace.blit ~src ~src_addr:a ~dst ~dst_addr:b ~len:64;
  for i = 0 to 7 do
    check Alcotest.int64 "copied" (Int64.of_int (i * 11))
      (Memspace.load_i64 dst (b + (8 * i)))
  done

let test_accounting () =
  let m = mk () in
  let a = Memspace.alloc m 100 in
  let _b = Memspace.alloc m 50 in
  check Alcotest.int "live" 150 (Memspace.live_bytes m);
  check Alcotest.int "units" 2 (Memspace.live_units m);
  Memspace.free m a;
  check Alcotest.int "after free" 50 (Memspace.live_bytes m);
  check Alcotest.int "peak" 150 (Memspace.peak_bytes m)

let test_zero_size_alloc () =
  let m = mk () in
  let a = Memspace.alloc m 0 in
  (* clamped to one byte: the unit exists and is addressable *)
  Memspace.store_u8 m a 7;
  check Alcotest.int "one byte" 7 (Memspace.load_u8 m a)

(* Regression: an allocation that exactly fills the remaining range must
   succeed — the bound is [base + size > range_hi], not [>=]. *)
let test_exact_fit () =
  let m = Memspace.create ~name:"tight" ~range_lo:0x1000 ~range_hi:0x1100 in
  (* range holds exactly 0x100 bytes *)
  let a = Memspace.alloc m 0x100 in
  check Alcotest.int "base" 0x1000 a;
  Memspace.store_u8 m (a + 0xff) 1;
  check Alcotest.int "last byte" 1 (Memspace.load_u8 m (a + 0xff));
  (* one byte more than the range must still fault *)
  let m2 = Memspace.create ~name:"tight2" ~range_lo:0x1000 ~range_hi:0x1100 in
  match Memspace.alloc m2 0x101 with
  | _ -> Alcotest.fail "oversized alloc must fault"
  | exception Memspace.Fault _ -> ()

let test_local_recycling () =
  let m = mk () in
  let a = Memspace.alloc m 64 in
  Memspace.store_i64 m a 77L;
  Memspace.free_local m a;
  (* dangling pointers to a pooled block still fault *)
  (match Memspace.load_i64 m a with
  | _ -> Alcotest.fail "use after free_local must fault"
  | exception Memspace.Fault _ -> ());
  check Alcotest.int "pooled unit not live" 0 (Memspace.live_units m);
  (* the next same-size alloc reuses the block, zeroed *)
  let b = Memspace.alloc m 64 in
  check Alcotest.int "recycled base" a b;
  check Alcotest.int64 "recycled block zeroed" 0L (Memspace.load_i64 m b);
  check Alcotest.int "live again" 1 (Memspace.live_units m);
  (* pool_flush retires pooled blocks for real *)
  Memspace.free_local m b;
  Memspace.pool_flush m;
  let c = Memspace.alloc m 64 in
  check Alcotest.bool "fresh base after flush" true (c <> a)

(* Property: after arbitrary allocs/frees, live units never overlap and
   every live unit is fully readable. *)
let prop_no_overlap =
  QCheck2.Test.make ~name:"allocations never overlap" ~count:100
    QCheck2.Gen.(list (pair (int_bound 200) bool))
    (fun ops ->
      let m = mk () in
      let live = ref [] in
      List.iter
        (fun (size, do_free) ->
          if do_free && !live <> [] then begin
            match !live with
            | a :: rest ->
              Memspace.free m a;
              live := rest
            | [] -> ()
          end
          else begin
            let a = Memspace.alloc m (size + 1) in
            live := !live @ [ (a) ]
          end)
        ops;
      (* all live units readable and pairwise disjoint *)
      let bounds =
        List.map (fun a -> Memspace.unit_bounds m a) !live
      in
      List.for_all
        (fun (b1, s1) ->
          List.for_all
            (fun (b2, s2) ->
              b1 = b2 || b1 + s1 <= b2 || b2 + s2 <= b1)
            bounds)
        bounds)

let tests =
  [
    Alcotest.test_case "alloc + read/write" `Quick test_alloc_rw;
    Alcotest.test_case "zero initialised" `Quick test_zero_init;
    Alcotest.test_case "byte access" `Quick test_bytes;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "out of bounds faults" `Quick test_out_of_bounds;
    Alcotest.test_case "wild pointer faults" `Quick test_wild_pointer;
    Alcotest.test_case "guard gap" `Quick test_guard_gap;
    Alcotest.test_case "free semantics" `Quick test_free;
    Alcotest.test_case "free of interior pointer" `Quick test_free_interior;
    Alcotest.test_case "unit bounds" `Quick test_unit_bounds;
    Alcotest.test_case "cross-space blit" `Quick test_blit;
    Alcotest.test_case "accounting" `Quick test_accounting;
    Alcotest.test_case "zero-size alloc" `Quick test_zero_size_alloc;
    Alcotest.test_case "exact-fit alloc at range end" `Quick test_exact_fit;
    Alcotest.test_case "frame-local recycling pool" `Quick test_local_recycling;
    QCheck_alcotest.to_alcotest prop_no_overlap;
  ]
