(* Tests for the support library: the AVL map (the paper's allocation-map
   structure) and the numeric helpers. *)

module Avl = Cgcm_support.Avl_map.Int
module Stats = Cgcm_support.Stats

let check = Alcotest.check

(* ------------------------------------------------------------------ *)

let test_empty () =
  check Alcotest.bool "empty" true (Avl.is_empty Avl.empty);
  check Alcotest.int "cardinal" 0 (Avl.cardinal Avl.empty);
  check Alcotest.bool "find" true (Avl.find_opt 3 Avl.empty = None);
  check Alcotest.bool "greatest_leq" true (Avl.greatest_leq 3 Avl.empty = None)

let test_add_find () =
  let t = Avl.of_list [ (10, "a"); (20, "b"); (30, "c") ] in
  check Alcotest.(option string) "find 20" (Some "b") (Avl.find_opt 20 t);
  check Alcotest.(option string) "find 25" None (Avl.find_opt 25 t);
  check Alcotest.int "cardinal" 3 (Avl.cardinal t)

let test_replace () =
  let t = Avl.of_list [ (1, "x"); (1, "y") ] in
  check Alcotest.(option string) "replaced" (Some "y") (Avl.find_opt 1 t);
  check Alcotest.int "cardinal" 1 (Avl.cardinal t)

let test_greatest_leq () =
  let t = Avl.of_list [ (10, "a"); (20, "b"); (30, "c") ] in
  let key k = Option.map fst (Avl.greatest_leq k t) in
  check Alcotest.(option int) "exact" (Some 20) (key 20);
  check Alcotest.(option int) "between" (Some 20) (key 25);
  check Alcotest.(option int) "below all" None (key 5);
  check Alcotest.(option int) "above all" (Some 30) (key 99)

let test_least_geq () =
  let t = Avl.of_list [ (10, "a"); (20, "b") ] in
  let key k = Option.map fst (Avl.least_geq k t) in
  check Alcotest.(option int) "exact" (Some 10) (key 10);
  check Alcotest.(option int) "between" (Some 20) (key 11);
  check Alcotest.(option int) "above" None (key 21)

let test_remove () =
  let t = Avl.of_list [ (1, "a"); (2, "b"); (3, "c") ] in
  let t = Avl.remove 2 t in
  check Alcotest.(option string) "removed" None (Avl.find_opt 2 t);
  check Alcotest.(option string) "kept" (Some "c") (Avl.find_opt 3 t);
  check Alcotest.bool "invariant" true (Avl.invariant t);
  (* removing a missing key is a no-op *)
  let t' = Avl.remove 42 t in
  check Alcotest.int "cardinal" (Avl.cardinal t) (Avl.cardinal t')

let test_bindings_sorted () =
  let t = Avl.of_list [ (3, ()); (1, ()); (2, ()); (5, ()); (4, ()) ] in
  check
    Alcotest.(list int)
    "sorted" [ 1; 2; 3; 4; 5 ]
    (List.map fst (Avl.bindings t))

let test_min_max () =
  let t = Avl.of_list [ (7, "a"); (3, "b"); (9, "c") ] in
  check Alcotest.(option int) "min" (Some 3) (Option.map fst (Avl.min_binding t));
  check Alcotest.(option int) "max" (Some 9) (Option.map fst (Avl.max_binding t))

let test_large_sequential () =
  let t = ref Avl.empty in
  for i = 1 to 1000 do
    t := Avl.add (i * 2) i !t
  done;
  check Alcotest.bool "invariant after 1000 inserts" true (Avl.invariant !t);
  check Alcotest.int "cardinal" 1000 (Avl.cardinal !t);
  (* interior queries *)
  check Alcotest.(option int) "greatest_leq odd" (Some 250)
    (Option.map snd (Avl.greatest_leq 501 !t))

(* ------------------------------------------------------------------ *)
(* Property tests: the AVL map agrees with a sorted association list.   *)

let ops_gen =
  QCheck2.Gen.(
    list
      (oneof
         [
           map (fun k -> `Add (k mod 64)) nat;
           map (fun k -> `Remove (k mod 64)) nat;
         ]))

let apply_ops ops =
  List.fold_left
    (fun (t, model) op ->
      match op with
      | `Add k -> (Avl.add k k t, (k, k) :: List.remove_assoc k model)
      | `Remove k -> (Avl.remove k t, List.remove_assoc k model))
    (Avl.empty, []) ops

let prop_model =
  QCheck2.Test.make ~name:"avl agrees with assoc-list model" ~count:300
    ops_gen (fun ops ->
      let t, model = apply_ops ops in
      Avl.invariant t
      && Avl.cardinal t = List.length model
      && List.for_all (fun (k, v) -> Avl.find_opt k t = Some v) model
      && List.for_all
           (fun k ->
             (Avl.find_opt k t <> None) = List.mem_assoc k model)
           (List.init 64 Fun.id))

let prop_greatest_leq =
  QCheck2.Test.make ~name:"greatest_leq agrees with model" ~count:300
    QCheck2.Gen.(pair ops_gen (int_bound 80))
    (fun (ops, q) ->
      let t, model = apply_ops ops in
      let expect =
        List.filter (fun (k, _) -> k <= q) model
        |> List.sort (fun (a, _) (b, _) -> compare b a)
        |> function
        | [] -> None
        | (k, v) :: _ -> Some (k, v)
      in
      Avl.greatest_leq q t = expect)

(* ------------------------------------------------------------------ *)

let test_geomean () =
  check (Alcotest.float 1e-9) "geomean of equal" 2.0
    (Stats.geomean [ 2.0; 2.0; 2.0 ]);
  check (Alcotest.float 1e-9) "geomean 1,4" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  Alcotest.check_raises "non-positive" (Invalid_argument
    "Stats.geomean: non-positive input") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_mean_percent () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "percent" 25.0 (Stats.percent 1.0 4.0);
  check (Alcotest.float 1e-9) "percent zero total" 0.0 (Stats.percent 1.0 0.0)

let test_rng_deterministic () =
  let a = Cgcm_support.Rng.create 42 in
  let b = Cgcm_support.Rng.create 42 in
  for _ = 1 to 50 do
    check Alcotest.int "same stream" (Cgcm_support.Rng.int a 1000)
      (Cgcm_support.Rng.int b 1000)
  done;
  let c = Cgcm_support.Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Cgcm_support.Rng.int a 1000 <> Cgcm_support.Rng.int c 1000 then
      differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_rng_range () =
  let r = Cgcm_support.Rng.create 7 in
  for _ = 1 to 500 do
    let v = Cgcm_support.Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of range";
    let f = Cgcm_support.Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of range"
  done

(* Stats.Counter must survive concurrent increments from several
   domains: 4 domains hammering one counter (plus a second counter
   taking bulk adds) must lose no updates. *)
let test_counter_hammer () =
  let c = Cgcm_support.Stats.Counter.create () in
  let bulk = Cgcm_support.Stats.Counter.create ~value:5 () in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Cgcm_support.Stats.Counter.incr c
            done;
            Cgcm_support.Stats.Counter.add bulk 3))
  in
  List.iter Domain.join domains;
  check Alcotest.int "no lost increments" 40_000
    (Cgcm_support.Stats.Counter.get c);
  check Alcotest.int "adds accumulate" 17 (Cgcm_support.Stats.Counter.get bulk);
  Cgcm_support.Stats.Counter.set bulk 0;
  check Alcotest.int "set" 0 (Cgcm_support.Stats.Counter.get bulk)

(* The domain pool: every task index runs exactly once, results land in
   the right slots, failures re-raise in the caller, and the pool is
   reusable afterwards. *)
let test_pool_run () =
  let n = 100 in
  let hits = Array.make n 0 in
  (* jobs = 1 stays on the calling domain: strictly sequential. *)
  Cgcm_support.Pool.run ~jobs:1 n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> check Alcotest.int (Printf.sprintf "seq task %d" i) 1 h)
    hits;
  let counts = Array.make n (-1) in
  Cgcm_support.Pool.run ~jobs:4 n (fun i -> counts.(i) <- i * i);
  Array.iteri
    (fun i v -> check Alcotest.int (Printf.sprintf "par task %d" i) (i * i) v)
    counts;
  check Alcotest.bool "pool retained workers" true
    (Cgcm_support.Pool.size () >= 2)

let test_pool_failure () =
  (match
     Cgcm_support.Pool.run ~jobs:4 8 (fun i ->
         if i = 5 then failwith "task five")
   with
  | () -> Alcotest.fail "expected the task failure to re-raise"
  | exception Failure m -> check Alcotest.string "failure message" "task five" m);
  (* the pool must still work after a failed batch *)
  let ok = Atomic.make 0 in
  Cgcm_support.Pool.run ~jobs:4 8 (fun _ -> Atomic.incr ok);
  check Alcotest.int "pool reusable after failure" 8 (Atomic.get ok)

(* Instance pools: worker counts are explicit per pool, two pools
   coexist without sharing workers, and a zero-worker pool degrades to
   sequential execution on the caller. *)
let test_pool_instances () =
  let small = Cgcm_support.Pool.create ~workers:1 () in
  let big = Cgcm_support.Pool.create ~workers:3 () in
  let n = 64 in
  let a = Array.make n 0 and b = Array.make n 0 in
  Cgcm_support.Pool.run_in small ~jobs:2 n (fun i -> a.(i) <- i + 1);
  Cgcm_support.Pool.run_in big ~jobs:4 n (fun i -> b.(i) <- i * 2);
  Array.iteri
    (fun i v -> check Alcotest.int (Printf.sprintf "small task %d" i) (i + 1) v)
    a;
  Array.iteri
    (fun i v -> check Alcotest.int (Printf.sprintf "big task %d" i) (i * 2) v)
    b;
  (* caps are per instance: the small pool never grows past its cap + the
     participating caller, the big pool kept what it spawned *)
  check Alcotest.bool "small pool capped" true
    (Cgcm_support.Pool.size_of small <= 2);
  check Alcotest.bool "big pool retained workers" true
    (Cgcm_support.Pool.size_of big >= 2);
  let seq = Cgcm_support.Pool.create ~workers:0 () in
  let hits = Array.make n 0 in
  Cgcm_support.Pool.run_in seq ~jobs:8 n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> check Alcotest.int (Printf.sprintf "seq-pool task %d" i) 1 h)
    hits;
  check Alcotest.int "zero-worker pool is just the caller" 1
    (Cgcm_support.Pool.size_of seq)

let test_pool_jobs_parse () =
  check Alcotest.(option int) "parse 4" (Some 4)
    (Cgcm_support.Pool.parse_jobs "4");
  check Alcotest.(option int) "parse garbage" None
    (Cgcm_support.Pool.parse_jobs "four");
  check Alcotest.(option int) "parse zero" None
    (Cgcm_support.Pool.parse_jobs "0");
  check Alcotest.(option int) "clamped" (Some Cgcm_support.Pool.max_jobs)
    (Cgcm_support.Pool.parse_jobs "9999")

let tests =
  [
    Alcotest.test_case "avl empty" `Quick test_empty;
    Alcotest.test_case "avl add/find" `Quick test_add_find;
    Alcotest.test_case "avl replace" `Quick test_replace;
    Alcotest.test_case "avl greatest_leq" `Quick test_greatest_leq;
    Alcotest.test_case "avl least_geq" `Quick test_least_geq;
    Alcotest.test_case "avl remove" `Quick test_remove;
    Alcotest.test_case "avl bindings sorted" `Quick test_bindings_sorted;
    Alcotest.test_case "avl min/max" `Quick test_min_max;
    Alcotest.test_case "avl 1000 inserts" `Quick test_large_sequential;
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_greatest_leq;
    Alcotest.test_case "stats geomean" `Quick test_geomean;
    Alcotest.test_case "stats mean/percent" `Quick test_mean_percent;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng range" `Quick test_rng_range;
    Alcotest.test_case "counter 4-domain hammer" `Quick test_counter_hammer;
    Alcotest.test_case "pool runs every task" `Quick test_pool_run;
    Alcotest.test_case "pool re-raises failures" `Quick test_pool_failure;
    Alcotest.test_case "pool instances are independent" `Quick
      test_pool_instances;
    Alcotest.test_case "pool jobs parsing" `Quick test_pool_jobs_parse;
  ]
