(* Tests for the supporting infrastructure: the pass manager, the IR
   rewriting helpers, and the claim validator. *)

module Ir = Cgcm_ir.Ir
module Builder = Cgcm_ir.Builder
module Pass = Cgcm_transform.Pass
module Rewrite = Cgcm_transform.Rewrite
module Pipeline = Cgcm_core.Pipeline
module E = Cgcm_core.Experiments
module Validate = Cgcm_core.Validate

let check = Alcotest.check

(* ------------------------------------------------------------------ *)

let test_pass_registry () =
  check Alcotest.int "five standard passes" 5 (List.length Pass.all);
  check Alcotest.bool "find map-promotion" true
    (Pass.find "map-promotion" <> None);
  check Alcotest.bool "find missing" true (Pass.find "nope" = None);
  check Alcotest.int "optimized extends managed"
    (List.length Pass.managed_pipeline + 3)
    (List.length Pass.optimized_pipeline)

let test_plan_parsing () =
  (match Pass.parse_plan "simplify,comm-mgmt,fixpoint(map-promotion)" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    check Alcotest.string "round-trips"
      "simplify,comm-mgmt,fixpoint(map-promotion)"
      (Pass.plan_to_string plan));
  (match Pass.parse_plan "managed,fixpoint(alloca-promotion,map-promotion)" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    check Alcotest.string "named plans inline"
      "simplify,comm-mgmt,fixpoint(alloca-promotion,map-promotion)"
      (Pass.plan_to_string plan));
  (match Pass.parse_plan "optimized" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    check Alcotest.string "optimized plan spelling"
      (Pass.plan_to_string Pass.optimized_pipeline)
      (Pass.plan_to_string plan));
  check Alcotest.bool "unknown pass rejected" true
    (match Pass.parse_plan "simplify,nope" with
    | Error _ -> true
    | Ok _ -> false);
  check Alcotest.bool "empty item rejected" true
    (match Pass.parse_plan "simplify,," with Error _ -> true | Ok _ -> false)

let test_pass_pipeline_runs () =
  let src = Cgcm_progs.Polybench.gemm ~n:6 () in
  let c = Pipeline.compile ~level:Pipeline.Unmanaged src in
  let before = Pass.instr_count c.Pipeline.modul in
  Pass.run_pipeline Pass.optimized_pipeline c.Pipeline.modul;
  (* comm management adds run-time calls *)
  check Alcotest.bool "instructions added" true
    (Pass.instr_count c.Pipeline.modul > 0);
  ignore before

(* ------------------------------------------------------------------ *)

let diamond () =
  let b = Builder.create ~name:"f" ~nargs:1 ~kind:Ir.Cpu in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  let b3 = Builder.new_block b in
  Builder.cbr b (Ir.Reg 0) b1 b2;
  Builder.position_at b b1;
  Builder.br b b3;
  Builder.position_at b b2;
  Builder.br b b3;
  Builder.position_at b b3;
  Builder.ret b None;
  Builder.finish b

let test_split_edge () =
  let f = diamond () in
  let nb =
    Rewrite.split_edge f ~from_:1 ~to_:3
      ~instrs:[ Ir.Call (None, "print_i64", [ Ir.imm 1 ]) ]
  in
  check Alcotest.int "new block appended" 5 (Array.length f.Ir.blocks);
  (match f.Ir.blocks.(1).Ir.term with
  | Ir.Br t -> check Alcotest.int "redirected" nb t
  | _ -> Alcotest.fail "terminator shape");
  (match f.Ir.blocks.(nb).Ir.term with
  | Ir.Br 3 -> ()
  | _ -> Alcotest.fail "split block must jump to the old target");
  Cgcm_ir.Verifier.verify_func { Ir.globals = []; funcs = [ f ] } f

let test_make_preheader () =
  (* loop: b1 -> b1 with entry from b0 *)
  let b = Builder.create ~name:"f" ~nargs:1 ~kind:Ir.Cpu in
  let header = Builder.new_block b in
  let exit_ = Builder.new_block b in
  Builder.br b header;
  Builder.position_at b header;
  Builder.cbr b (Ir.Reg 0) header exit_;
  Builder.position_at b exit_;
  Builder.ret b None;
  let f = Builder.finish b in
  let loops = Cgcm_analysis.Loops.analyze f in
  check Alcotest.int "one loop" 1 (Array.length loops.Cgcm_analysis.Loops.loops);
  match Rewrite.make_preheader f loops ~li:0 with
  | None -> Alcotest.fail "expected a preheader"
  | Some ph ->
    (* the entry edge now goes through the preheader; the back edge stays *)
    (match f.Ir.blocks.(0).Ir.term with
    | Ir.Br t -> check Alcotest.int "entry redirected" ph t
    | _ -> Alcotest.fail "entry shape");
    (match f.Ir.blocks.(header).Ir.term with
    | Ir.Cbr (_, t1, _) -> check Alcotest.int "back edge intact" header t1
    | _ -> Alcotest.fail "header shape")

let test_substitute_values () =
  let b = Builder.create ~name:"f" ~nargs:1 ~kind:Ir.Cpu in
  let x = Builder.binop b Ir.Add (Ir.Reg 0) (Ir.imm 1) in
  Builder.ret b (Some x);
  let f = Builder.finish b in
  Rewrite.substitute_values f (function
    | Ir.Reg 0 -> Ir.imm 42
    | v -> v);
  match f.Ir.blocks.(0).Ir.instrs with
  | [ Ir.Binop (_, Ir.Add, Ir.Imm_int 42L, Ir.Imm_int 1L) ] -> ()
  | _ -> Alcotest.fail "substitution failed"

(* ------------------------------------------------------------------ *)

let test_validator_detects_failures () =
  (* feed the validator a doctored result where optimization "hurts" and
     outputs mismatch: it must flag both claims *)
  let prog = List.hd Cgcm_progs.Registry.all in
  let r = E.run_program { prog with Cgcm_progs.Registry.source = Cgcm_progs.Polybench.gemm ~n:6 () } in
  let broken =
    { r with E.outputs_match = false; opt = r.E.unopt; unopt = r.E.opt }
  in
  let text, ok = Validate.report [ broken ] in
  check Alcotest.bool "flags failure" false ok;
  let contains_sub hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions FAILED" true (contains_sub text "FAILED")

let tests =
  [
    Alcotest.test_case "pass registry" `Quick test_pass_registry;
    Alcotest.test_case "plan parsing" `Quick test_plan_parsing;
    Alcotest.test_case "pass pipeline runs" `Quick test_pass_pipeline_runs;
    Alcotest.test_case "split edge" `Quick test_split_edge;
    Alcotest.test_case "make preheader" `Quick test_make_preheader;
    Alcotest.test_case "substitute values" `Quick test_substitute_values;
    Alcotest.test_case "validator detects failures" `Quick
      test_validator_detects_failures;
  ]
